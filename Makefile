# Build, test and benchmark entry points. CI runs `make test`, the
# race detector (`make race`), the spill suite (`make spill`), the
# parallel-executor suite (`make par`), the crash-recovery suite
# (`make crash`), the server suite (`make serve-race`), the short bench
# smoke, the fuzz smoke and the docs smoke; `make bench` records the
# perf trajectory into BENCH_pr9.json (one file per PR so regressions
# are diffable).

BENCH_OUT ?= BENCH_pr10.json

.PHONY: all test vet race stress spill crash fuzz par serve-race bench bench-smoke docs-smoke

all: test

test:
	go build ./...
	go test ./...

vet:
	go vet ./...

# The concurrency suite (snapshot stores, sessions, the copy-on-write
# commit-path equivalence property test and the reader/writer stress
# tests) must stay clean under the race detector.
race:
	go test -race ./...

# The randomized reader/writer interleaving stress and the three-path
# commit equivalence property test, by name, under the race detector —
# the explicit CI gate for the copy-on-write commit pipeline (both also
# run as part of `make race`).
stress:
	go test -race -count=2 -run 'TestStoreReaderWriterStress|TestCommitPathsEquivalent|TestStoreConcurrentReadersSeeCommittedEpochsOnly' ./internal/graph
	go test -race -run 'TestConcurrent|TestSession' ./cypher

# The spill suites under the race detector: forced-spill equivalence
# (tiny budgets make every barrier take the external-sort / hash-
# partition path), temp-file cleanup on error and early-LIMIT close,
# and the executor sweep over the script corpus.
spill:
	go test -race -run 'TestExternalSort|TestSpilling|TestSpillFiles|TestSpillCodec|TestOperator' ./internal/plan
	go test -race -run 'TestTinyBudgetSpillEquivalence|TestBudgetBoundsBarrierPeak|TestExecutorTriEquivalence' ./internal/core
	go test -race -run 'TestCorpusExecutorSweep' ./internal/script
	go test -race -run 'TestWithMemoryBudget|TestProfile' ./cypher

# The morsel-parallel executor gate, under the race detector: the
# parallelism sweep (degrees 1/2/8, with and without a spill-forcing
# budget, bit-identical output required), error/cancellation draining
# with zero live spill files, the concurrent spill-registry and budget
# bookkeeping hammer, and the script-corpus sweep whose configs include
# the parallel executor. Degrees are set explicitly in the tests, so
# this gate is meaningful even on single-core CI runners.
par:
	go test -race -run 'TestParallel' ./internal/core
	go test -race -run 'TestSpillBookkeepingConcurrent|TestBudgetShrinkClampConcurrent' ./internal/plan
	go test -race -run 'TestCorpusExecutorSweep' ./internal/script

# The server gate, under the race detector: the wire-protocol
# conformance scripts, the concurrent-client soak (mixed auto-commit /
# explicit-transaction / rollback workloads with exact isolation
# accounting), drain-under-load, and the loopback wire-equivalence
# sweep that requires served results to be bit-identical to the
# embedded session over the whole script corpus.
serve-race:
	go test -race -count=1 ./internal/server
	go test -race -run 'TestCorpusWireEquivalence|TestWireValueExtremes' ./internal/script
	go test -race -run 'TestPlanCache' ./cypher

# The durability gate: the kill-at-random-point property test, 250
# randomized iterations under the race detector. Each iteration runs a
# random workload against a store whose filesystem dies at a random
# byte offset, recovers with the real filesystem, and requires the
# recovered graph to be bit-identical to a published epoch (and, under
# fsync-per-commit, no older than the last successful commit).
crash:
	CRASH_ITERS=250 go test -race -count=1 -run TestKillAtRandomPointRecovery ./internal/graph

# Short fuzz runs over the codecs that parse untrusted bytes: WAL
# records, binary spill/WAL values, the graph JSON snapshot, and the
# server's wire frames and value tags (the only codec fed by remote
# peers). Each must reject or round-trip canonically, never panic.
# The expression fuzzer additionally proves folding is invisible:
# whatever parses evaluates to the same value/error folded or not.
fuzz:
	go test -run '^$$' -fuzz FuzzWALRecordRoundTrip -fuzztime 15s ./internal/graph
	go test -run '^$$' -fuzz FuzzBinaryValueRoundTrip -fuzztime 15s ./internal/graph
	go test -run '^$$' -fuzz FuzzCodecRoundTrip -fuzztime 15s ./cypher
	go test -run '^$$' -fuzz FuzzWireFrameDecode -fuzztime 15s ./internal/server
	go test -run '^$$' -fuzz FuzzWireValueRoundTrip -fuzztime 15s ./internal/server
	go test -run '^$$' -fuzz FuzzExprEval -fuzztime 15s ./internal/expr

# Full benchmark run, serialized to JSON. -benchtime is modest because
# the B-suite covers 12 benchmark families; raise it for stable numbers.
# The go test exit status gates the JSON step, so a panicking benchmark
# cannot record a silently truncated BENCH file.
bench:
	go test -run '^$$' -bench 'BenchmarkB' -benchmem -benchtime 10x . > bench.out
	cat bench.out
	go run ./cmd/benchjson -in bench.out -out $(BENCH_OUT)
	rm -f bench.out

# One iteration of every benchmark: catches panics and broken bench
# inputs on every push without CI paying for real measurement.
bench-smoke:
	go test -run '^$$' -bench 'BenchmarkB' -benchtime 1x .

# Executes every runnable snippet of docs/language.md and the exported-
# symbol godoc check, so documentation cannot rot. Both also run as part
# of the ordinary test suite; this target is the explicit CI gate.
docs-smoke:
	go test ./internal/script -run TestLanguageReferenceSnippets
	go test ./internal/doccheck
