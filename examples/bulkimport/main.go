// Bulkimport demonstrates the dominant MERGE use case the paper's user
// survey identified (Section 5): populating a graph from tabular data
// (a CSV export of a relational orders table), and how the choice of
// MERGE semantics (Section 6) changes the resulting graph.
//
// The program writes a small orders.csv, loads it with LOAD CSV, and
// imports it under MERGE ALL (atomic) and MERGE SAME (strong collapse),
// printing the resulting graph shapes — the Figure 7a vs 7c contrast at
// CSV scale.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/cypher"
)

const ordersCSV = `cid,pid,date
98,125,2018-06-23
98,125,2018-07-06
98,,
98,,
99,125,2018-03-11
99,,
`

func main() {
	dir, err := os.MkdirTemp("", "bulkimport")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "orders.csv")
	if err := os.WriteFile(path, []byte(ordersCSV), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Println("orders.csv holds Example 5's driving table (duplicates + nulls)")

	// MERGE ALL: one pattern instance per failing record (Figure 7a).
	all := cypher.Open()
	mustExec(all, fmt.Sprintf(`
		LOAD CSV WITH HEADERS FROM 'file://%s' AS row
		MERGE ALL (:User{id:toInteger(row.cid)})-[:ORDERED]->(:Product{id:toInteger(row.pid)})`, path))
	fmt.Println("MERGE ALL  (atomic):          ", all.Stats())

	// MERGE SAME: equal nodes and relationships collapse (Figure 7c).
	same := cypher.Open()
	mustExec(same, fmt.Sprintf(`
		LOAD CSV WITH HEADERS FROM 'file://%s' AS row
		MERGE SAME (:User{id:toInteger(row.cid)})-[:ORDERED]->(:Product{id:toInteger(row.pid)})`, path))
	fmt.Println("MERGE SAME (strong collapse): ", same.Stats())

	// Intermediate proposals from Section 6 via the strategy override.
	for _, s := range []struct {
		name     string
		strategy cypher.MergeStrategy
	}{
		{"grouping", cypher.MergeGrouping},
		{"weak-collapse", cypher.MergeWeakCollapse},
		{"collapse", cypher.MergeCollapse},
	} {
		db := cypher.Open(cypher.WithMergeStrategy(s.strategy))
		mustExec(db, fmt.Sprintf(`
			LOAD CSV WITH HEADERS FROM 'file://%s' AS row
			MERGE ALL (:User{id:toInteger(row.cid)})-[:ORDERED]->(:Product{id:toInteger(row.pid)})`, path))
		fmt.Printf("MERGE %-22s %v\n", "("+s.name+"):", db.Stats())
	}

	// Idempotence: re-importing the rows with non-null keys under
	// MERGE SAME changes nothing — the property users expect of a
	// deterministic merge. (Null-keyed rows are different: a pattern
	// property {id: null} never *matches* under ternary equality, so
	// re-importing them would create fresh nodes; and per Definition 1
	// of the paper, new nodes never collapse with pre-existing ones.
	// This is exactly the Figure 7c semantics, not a bug.)
	before := same.Stats()
	mustExec(same, fmt.Sprintf(`
		LOAD CSV WITH HEADERS FROM 'file://%s' AS row
		WITH row WHERE row.pid IS NOT NULL
		MERGE SAME (:User{id:toInteger(row.cid)})-[:ORDERED]->(:Product{id:toInteger(row.pid)})`, path))
	fmt.Printf("re-import (non-null rows) under MERGE SAME: before %v, after %v\n", before, same.Stats())
}

func mustExec(db *cypher.DB, q string) *cypher.Result {
	res, err := db.Exec(q, nil)
	if err != nil {
		log.Fatalf("%s\n-> %v", q, err)
	}
	return res
}
