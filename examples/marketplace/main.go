// Marketplace walks through the paper's running example (Sections 2-3):
// it builds the Figure 1 graph with Cypher, then executes Queries (1)
// through (5) and shows their effects, finishing with the Section 4
// pitfalls demonstrated side by side in both dialects.
package main

import (
	"fmt"
	"log"

	"repro/cypher"
)

func main() {
	// The paper's examples run under the legacy Cypher 9 semantics.
	db := cypher.Open(cypher.WithDialect(cypher.Cypher9))

	fmt.Println("== building Figure 1 (solid lines)")
	mustExec(db, `
		CREATE (v1:Vendor{id:60, name:'cStore'}),
		       (p1:Product{id:125, name:'laptop'}),
		       (p2:Product{id:125, name:'notebook'}),
		       (u1:User{id:89, name:'Bob'}),
		       (u2:User{id:99, name:'Jane'}),
		       (p3:Product{id:85, name:'tablet'}),
		       (v1)-[:OFFERS]->(p1), (v1)-[:OFFERS]->(p2),
		       (u1)-[:ORDERED]->(p1), (u1)-[:ORDERED]->(p3),
		       (u2)-[:ORDERED]->(p3), (u2)-[:ORDERED]->(p2)`)
	fmt.Println("  ", db.Stats())

	fmt.Println("== Query (1): vendors offering two products, one named laptop")
	res := mustExec(db, `
		MATCH (p:Product)<-[:OFFERS]-(v:Vendor)-[:OFFERS]->(q:Product)
		WHERE p.name = "laptop"
		RETURN v.name AS vendor`)
	printRows(res)

	fmt.Println("== Query (2): insert a new product ordered by user 89")
	mustExec(db, `
		MATCH (u:User{id:89})
		CREATE (u)-[:ORDERED]->(:New_Product{id:0})`)
	fmt.Println("  ", db.Stats())

	fmt.Println("== Query (3): relabel and update the new product")
	mustExec(db, `
		MATCH (p:New_Product{id:0})
		SET p:Product, p.id=120, p.name="smartphone"
		REMOVE p:New_Product`)
	fmt.Println("  ", db.Stats())

	fmt.Println("== plain DELETE fails while relationships are attached")
	if _, err := db.Exec(`MATCH (p:Product{id:120}) DELETE p`, nil); err != nil {
		fmt.Println("   error (expected):", err)
	}

	fmt.Println("== Query (4): DETACH DELETE removes node and relationships")
	mustExec(db, `MATCH (p:Product{id:120}) DETACH DELETE p`)
	fmt.Println("  ", db.Stats())

	fmt.Println("== Query (5): MERGE guarantees every product has a vendor")
	res = mustExec(db, `
		MATCH (p:Product)
		MERGE (p)<-[:OFFERS]-(v:Vendor)
		RETURN p.name AS product, v.name AS vendor`)
	printRows(res)
	fmt.Println("  ", db.Stats(), " <- a fresh vendor was created for the tablet")

	fmt.Println()
	fmt.Println("== Section 4 pitfall: the ID swap (Example 1)")
	fmt.Println("   legacy Cypher 9:")
	legacy := db.Snapshot()
	mustExec(legacy, `
		MATCH (a:Product{name:"laptop"}), (b:Product{name:"tablet"})
		SET a.id = b.id, b.id = a.id`)
	printRows(mustExec(legacy, `
		MATCH (p:Product) WHERE p.name IN ['laptop','tablet']
		RETURN p.name AS name, p.id AS id ORDER BY name`))

	fmt.Println("   revised semantics:")
	revised := db.Snapshot(cypher.WithDialect(cypher.Revised))
	mustExec(revised, `
		MATCH (a:Product{name:"laptop"}), (b:Product{name:"tablet"})
		SET a.id = b.id, b.id = a.id`)
	printRows(mustExec(revised, `
		MATCH (p:Product) WHERE p.name IN ['laptop','tablet']
		RETURN p.name AS name, p.id AS id ORDER BY name`))
}

func mustExec(db *cypher.DB, q string) *cypher.Result {
	res, err := db.Exec(q, nil)
	if err != nil {
		log.Fatalf("%s\n-> %v", q, err)
	}
	return res
}

func printRows(res *cypher.Result) {
	for _, row := range res.Rows() {
		fmt.Print("   ")
		for _, c := range res.Columns() {
			fmt.Printf("%s=%v  ", c, row[c])
		}
		fmt.Println()
	}
}
