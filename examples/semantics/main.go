// Semantics runs the paper's Example 3 / Figure 6 nondeterminism
// demonstration side by side: the same MERGE over the same driving table
// yields different graphs under the legacy semantics depending on record
// order, while every proposed strategy of Section 6 is order-independent.
package main

import (
	"fmt"
	"log"

	"repro/cypher"
)

// newTable builds the Example 3 driving table over a relationship-free
// graph with nodes u1, u2, p, v1, v2. Because the public API addresses
// nodes through queries, we create them first and collect their ids.
func setup() (*cypher.DB, map[string]int64) {
	db := cypher.Open(cypher.WithDialect(cypher.Cypher9))
	if _, err := db.Exec(`
		CREATE (:N{name:'u1'}), (:N{name:'u2'}), (:N{name:'p'}),
		       (:N{name:'v1'}), (:N{name:'v2'})`, nil); err != nil {
		log.Fatal(err)
	}
	ids := make(map[string]int64)
	for _, n := range db.Nodes() {
		name := n.Props["name"].String()
		ids[name[1:len(name)-1]] = n.ID // strip quotes
	}
	return db, ids
}

func driving(db *cypher.DB, ids map[string]int64) *cypher.Table {
	t := cypher.NewTable("user", "product", "vendor")
	row := func(u, p, v string) {
		// Bind graph nodes into the driving table by id lookup queries.
		res, err := db.Exec(`MATCH (n:N{name:$name}) RETURN n`, map[string]any{"name": u})
		if err != nil || res.NumRows() != 1 {
			log.Fatalf("lookup %s: %v", u, err)
		}
		un := res.Row(0)["n"]
		res2, _ := db.Exec(`MATCH (n:N{name:$name}) RETURN n`, map[string]any{"name": p})
		pn := res2.Row(0)["n"]
		res3, _ := db.Exec(`MATCH (n:N{name:$name}) RETURN n`, map[string]any{"name": v})
		vn := res3.Row(0)["n"]
		if err := t.Append(un, pn, vn); err != nil {
			log.Fatal(err)
		}
	}
	row("u1", "p", "v1")
	row("u2", "p", "v2")
	row("u1", "p", "v2")
	_ = ids
	return t
}

const mergeQuery = `MERGE (user)-[:ORDERED]->(product)<-[:OFFERS]-(vendor)`

func main() {
	fmt.Println("Example 3 / Figure 6: MERGE (user)-[:ORDERED]->(product)<-[:OFFERS]-(vendor)")
	fmt.Println("driving table: (u1,p,v1), (u2,p,v2), (u1,p,v2)")
	fmt.Println()

	// Legacy, top-down: the third record matches the creations of the
	// first two -> Figure 6b.
	db, ids := setup()
	if _, err := db.ExecTable(mergeQuery, driving(db, ids), nil); err != nil {
		log.Fatal(err)
	}
	fmt.Println("legacy MERGE, top-down :", db.Stats(), " (Figure 6b)")

	// Legacy, bottom-up: nothing matches -> Figure 6a.
	db2, ids2 := setup()
	tbl := driving(db2, ids2)
	tbl.Reverse()
	if _, err := db2.ExecTable(mergeQuery, tbl, nil); err != nil {
		log.Fatal(err)
	}
	fmt.Println("legacy MERGE, bottom-up:", db2.Stats(), " (Figure 6a)")
	fmt.Println("same shape?", cypher.SameShape(db, db2), " <- the paper's nondeterminism")
	fmt.Println()

	// Every Section 6 proposal is order-independent.
	for _, s := range []struct {
		name     string
		strategy cypher.MergeStrategy
	}{
		{"atomic (MERGE ALL)", cypher.MergeAtomic},
		{"grouping", cypher.MergeGrouping},
		{"weak-collapse", cypher.MergeWeakCollapse},
		{"collapse", cypher.MergeCollapse},
		{"strong-collapse (MERGE SAME)", cypher.MergeStrongCollapse},
	} {
		fwd, fids := setup()
		fwd = fwd.Snapshot(cypher.WithMergeStrategy(s.strategy))
		if _, err := fwd.ExecTable(mergeQuery, driving(fwd, fids), nil); err != nil {
			log.Fatal(err)
		}
		rev, rids := setup()
		rev = rev.Snapshot(cypher.WithMergeStrategy(s.strategy))
		rtbl := driving(rev, rids)
		rtbl.Reverse()
		if _, err := rev.ExecTable(mergeQuery, rtbl, nil); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-29s %v, order-independent=%v\n", s.name+":", fwd.Stats(), cypher.SameShape(fwd, rev))
	}
}
