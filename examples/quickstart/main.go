// Quickstart: open an embedded graph database, create data, query it,
// and update it with the revised (atomic, deterministic) semantics.
package main

import (
	"fmt"
	"log"

	"repro/cypher"
)

func main() {
	db := cypher.Open() // revised dialect by default

	// Create a small social graph.
	mustExec(db, `
		CREATE (:Person{name:'Ada', born:1815})-[:KNOWS{since:1832}]->(:Person{name:'Charles', born:1791}),
		       (:Person{name:'Alan', born:1912})`)

	// Parameterized creation.
	mustExec2(db, `CREATE (:Person $props)`, map[string]any{
		"props": map[string]any{"name": "Grace", "born": 1906},
	})

	// Connect people born in the same century with MERGE SAME: the
	// deterministic merge of the paper (duplicates collapse).
	mustExec(db, `
		MATCH (a:Person), (b:Person)
		WHERE a.born < b.born AND b.born - a.born < 100
		MERGE SAME (a)-[:CONTEMPORARY]->(b)`)

	// Query with aggregation.
	res := mustExec(db, `
		MATCH (p:Person)
		RETURN count(*) AS people, min(p.born) AS earliest, collect(p.name) AS names`)
	row := res.Row(0)
	fmt.Printf("people=%v earliest=%v names=%v\n", row["people"], row["earliest"], row["names"])

	// Update atomically: the revised SET evaluates all right-hand sides
	// against the input graph, so value swaps work (paper, Example 1).
	mustExec(db, `
		MATCH (a:Person{name:'Ada'}), (c:Person{name:'Charles'})
		SET a.born = c.born, c.born = a.born`)
	res = mustExec(db, `MATCH (p:Person) RETURN p.name AS name, p.born AS born ORDER BY name`)
	for _, r := range res.Rows() {
		fmt.Printf("%-8v %v\n", r["name"], r["born"])
	}

	fmt.Println("graph:", db.Stats())
}

func mustExec(db *cypher.DB, q string) *cypher.Result {
	return mustExec2(db, q, nil)
}

func mustExec2(db *cypher.DB, q string, params map[string]any) *cypher.Result {
	res, err := db.Exec(q, params)
	if err != nil {
		log.Fatalf("%s\n-> %v", q, err)
	}
	return res
}
