package main

import (
	"testing"

	"repro/cypher"
)

func TestMetaCommands(t *testing.T) {
	db := cypher.Open()

	// Dialect switch preserves data.
	db.Exec(`CREATE (:Keep)`, nil)
	db2, dialect, quit := meta(db, "revised", ":dialect cypher9")
	if quit || dialect != "cypher9" {
		t.Fatalf("dialect switch: %q quit=%v", dialect, quit)
	}
	if db2.NumNodes() != 1 {
		t.Error("dialect switch lost data")
	}
	if db2.Dialect() != cypher.Cypher9 {
		t.Error("dialect not applied")
	}
	// And back.
	db3, dialect, _ := meta(db2, "cypher9", ":dialect revised")
	if dialect != "revised" || db3.Dialect() != cypher.Revised {
		t.Error("switch back failed")
	}

	// Merge strategy switch.
	db4, _, _ := meta(db3, "revised", ":merge collapse")
	if db4.NumNodes() != 1 {
		t.Error("merge switch lost data")
	}

	// Clear resets.
	db5, _, _ := meta(db4, "revised", ":clear")
	if db5.NumNodes() != 0 {
		t.Error("clear did not reset")
	}

	// Quit.
	if _, _, quit := meta(db5, "revised", ":quit"); !quit {
		t.Error(":quit should quit")
	}
	if _, _, quit := meta(db5, "revised", ":q"); !quit {
		t.Error(":q should quit")
	}

	// Unknown commands and malformed args do not crash or quit. (:stats,
	// :indexes and :epoch never reach meta(): the shell routes them
	// through the session before falling back here, so an open
	// transaction's own writes are visible to them.)
	for _, cmd := range []string{":frob", ":dialect", ":dialect marsian", ":merge", ":merge bogus", ":help"} {
		if _, _, quit := meta(db5, "revised", cmd); quit {
			t.Errorf("%q should not quit", cmd)
		}
	}
}

// TestInspectionMetasSeeOwnWrites is the audit test for the
// graph-inspection metas inside an explicit transaction: the shell's
// :stats and :indexes read the session, so a transaction's uncommitted
// writes must show up — and vanish again after ROLLBACK.
func TestInspectionMetasSeeOwnWrites(t *testing.T) {
	db := cypher.Open()
	sess := db.Session()
	defer sess.Close()

	execute(sess, "BEGIN;")
	execute(sess, "CREATE (:Tx{v:1});")
	execute(sess, "CREATE INDEX ON :Tx(v);")

	// The session (what :stats and :indexes print) sees the open
	// transaction's writes…
	if got := sess.Stats().Labels["Tx"]; got != 1 {
		t.Errorf(":stats source shows %d :Tx nodes inside the txn, want 1", got)
	}
	if ixs := sess.Indexes(); len(ixs) != 1 || ixs[0].Label != "Tx" {
		t.Errorf(":indexes source shows %v inside the txn", ixs)
	}
	// …while the committed state (what a bypassing meta would read)
	// does not.
	if got := db.Stats().Labels["Tx"]; got != 0 {
		t.Errorf("committed state already shows %d :Tx nodes mid-txn", got)
	}
	if len(db.Indexes()) != 0 {
		t.Error("committed state already shows the uncommitted index")
	}

	execute(sess, "ROLLBACK;")
	if got := sess.Stats().Labels["Tx"]; got != 0 {
		t.Errorf(":stats still shows %d :Tx nodes after ROLLBACK", got)
	}
	if len(sess.Indexes()) != 0 {
		t.Error(":indexes still lists the rolled-back index")
	}
}

func TestExecuteRendersAndRecovers(t *testing.T) {
	db := cypher.Open()
	sess := db.Session()
	defer sess.Close()
	// Successful statement with rows.
	execute(sess, "RETURN 1 AS x;")
	// Update-only statement (stats path).
	execute(sess, "CREATE (:N)")
	// Error path must not panic.
	execute(sess, "MATCH (")
	// Empty statement is a no-op.
	execute(sess, "  ;")
	if db.NumNodes() != 1 {
		t.Errorf("nodes = %d", db.NumNodes())
	}
}

// TestExecuteTransactionFlow drives BEGIN/COMMIT/ROLLBACK through the
// shell's execute path.
func TestExecuteTransactionFlow(t *testing.T) {
	db := cypher.Open()
	sess := db.Session()
	defer sess.Close()

	execute(sess, "BEGIN;")
	if !sess.InTransaction() {
		t.Fatal("BEGIN did not open a transaction")
	}
	execute(sess, "CREATE (:T);")
	if db.NumNodes() != 0 {
		t.Error("uncommitted write visible through DB")
	}
	execute(sess, "COMMIT;")
	if sess.InTransaction() {
		t.Fatal("COMMIT left the transaction open")
	}
	if db.NumNodes() != 1 {
		t.Errorf("nodes = %d after commit", db.NumNodes())
	}

	execute(sess, "BEGIN;")
	execute(sess, "CREATE (:T);")
	execute(sess, "ROLLBACK;")
	if db.NumNodes() != 1 {
		t.Errorf("nodes = %d after rollback", db.NumNodes())
	}

	// Meta commands that replace the DB are refused mid-transaction.
	execute(sess, "BEGIN;")
	if !switchesDatabase(":dialect") || !switchesDatabase(":clear") || switchesDatabase(":stats") {
		t.Error("switchesDatabase classification wrong")
	}
	execute(sess, "ROLLBACK;")
}
