// Command cypher-shell is an interactive REPL over the embedded graph
// database. Statements end with a semicolon; meta commands start with
// a colon:
//
//	:help                 show help
//	:dialect cypher9      switch to the legacy Cypher 9 semantics
//	:dialect revised      switch to the revised (Section 7) semantics
//	:merge <strategy>     force a MERGE strategy (legacy, atomic,
//	                      grouping, weak-collapse, collapse,
//	                      strong-collapse, from-form)
//	:set budget <bytes>   cap per-statement barrier memory (0 = unlimited);
//	                      barriers beyond the cap spill to temp files
//	:set parallelism <n>  worker-pool degree for read statements
//	                      (0 = GOMAXPROCS, 1 = serial)
//	:stats                print graph statistics
//	:indexes              list property indexes
//	:epoch                print the committed transaction epoch
//	:wal                  print write-ahead log status (durable mode)
//	:wal checkpoint       force a checkpoint (snapshot + log truncate)
//	:save <path>          write a JSON snapshot atomically to <path>
//	:clear                reset the database
//	:quit                 exit
//
// With -data <dir> the shell opens the database durably: committed
// statements are appended to <dir>/wal.log (fsync policy -sync
// always|interval|never, default always) and the next start recovers
// exactly the committed state. Without -data the database is
// in-memory and vanishes on exit. The database-replacing metas
// (:dialect, :merge, :set, :clear) are refused in durable mode — they
// switch to a detached in-memory copy, which would silently stop
// persisting; restart with different flags instead.
//
// The graph-inspection metas (:stats, :indexes) are routed through the
// shell's session: inside an open transaction they read the
// transaction's working graph — its own uncommitted writes included —
// not a freshly pinned committed snapshot.
//
// The shell runs one session against the database, so the
// transaction-control statements work as statements:
//
//	BEGIN;      open an explicit transaction (prompt shows "txn")
//	COMMIT;     publish its writes atomically
//	ROLLBACK;   discard them
//
// Statements between BEGIN and COMMIT see the transaction's own writes;
// a failing statement rolls back by itself and leaves the transaction
// open. Without BEGIN every statement auto-commits, exactly as before.
//
// Schema statements work as statements too: CREATE INDEX ON
// :Label(prop); builds a property index (the planner then anchors
// equality lookups as index seeks) and DROP INDEX ON :Label(prop);
// removes it. :indexes lists the current indexes.
//
// A statement prefixed with EXPLAIN prints the streaming operator plan
// (with its transaction boundaries) instead of executing it; when a
// memory budget is set, the plan header states the effective budget. A
// statement prefixed with PROFILE executes it and prints the plan
// annotated with observed per-operator rows/batches and, for barriers,
// peak accounted memory and spill-run counts. Parallel plans show
// their exchange boundaries with workers= and morsels= counters.
//
// Switching dialects or setting a budget preserves the graph contents;
// both are refused while a transaction is open.
//
// With -connect <addr> the shell is a network client instead: it
// dials a cypherd server (see cmd/cypherd) and runs every statement —
// EXPLAIN/PROFILE prefixes and BEGIN/COMMIT/ROLLBACK included — over
// the wire through one server session. Database-mutating metas and
// local inspection metas are unavailable remotely; only :help and
// :quit work.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/cypher"
	"repro/cypherclient"
)

func main() {
	dataDir := flag.String("data", "", "data directory for durable operation (empty = in-memory)")
	syncMode := flag.String("sync", "always", "wal fsync policy with -data: always|interval|never")
	connect := flag.String("connect", "", "connect to a cypherd server at host:port instead of embedding a database")
	flag.Parse()

	if *connect != "" {
		if *dataDir != "" {
			fmt.Fprintln(os.Stderr, "-connect and -data are mutually exclusive")
			os.Exit(1)
		}
		remoteREPL(*connect)
		return
	}

	fmt.Println("cypher-shell — graph updates per Green et al., PVLDB 2019")
	fmt.Println("dialect: revised (use :dialect cypher9 for the legacy semantics); :help for help")

	var db *cypher.DB
	if *dataDir != "" {
		var d cypher.Durability
		switch *syncMode {
		case "always":
			d.Sync = cypher.SyncAlways
		case "interval":
			d.Sync = cypher.SyncInterval
		case "never":
			d.Sync = cypher.SyncNever
		default:
			fmt.Fprintln(os.Stderr, "unknown -sync mode:", *syncMode)
			os.Exit(1)
		}
		var err error
		db, err = cypher.OpenDir(*dataDir, cypher.WithDurability(d))
		if err != nil {
			fmt.Fprintln(os.Stderr, "open:", err)
			os.Exit(1)
		}
		st, _ := db.WALStatus()
		fmt.Printf("data: %s (wal sync=%s, epoch %d, %d record(s) replayed)\n",
			*dataDir, st.Sync, db.Epoch(), st.Replayed)
	} else {
		db = cypher.Open()
	}
	defer func() { closeDB(db) }()
	sess := db.Session()
	dialect := "revised"
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder

	prompt := func() {
		switch {
		case buf.Len() > 0:
			fmt.Print("   ... ")
		case sess.InTransaction():
			fmt.Printf("%s txn> ", dialect)
		default:
			fmt.Printf("%s> ", dialect)
		}
	}

	prompt()
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, ":") {
			if sess.InTransaction() && switchesDatabase(trimmed) {
				fmt.Println("a transaction is open; COMMIT or ROLLBACK it first")
				prompt()
				continue
			}
			if db.Durable() && switchesDatabase(trimmed) {
				// These metas swap in a detached in-memory copy, which
				// would silently stop persisting to the data directory.
				fmt.Println("refused in durable (-data) mode: restart the shell with different flags instead")
				prompt()
				continue
			}
			// Graph-inspection metas go through the session, never the
			// bare DB: inside an open transaction they must read the
			// transaction's working graph (reads-see-own-writes), not
			// pin a fresh committed snapshot.
			switch strings.Fields(trimmed)[0] {
			case ":stats":
				fmt.Println(sess.Stats())
				prompt()
				continue
			case ":indexes":
				// An open transaction's uncommitted CREATE/DROP INDEX
				// statements show here.
				printIndexes(sess.Indexes())
				prompt()
				continue
			case ":epoch":
				// The committed epoch is store state, not session state;
				// an open transaction has not produced an epoch yet.
				if sess.InTransaction() {
					fmt.Printf("epoch %d (transaction open; its writes are not an epoch until COMMIT)\n", db.Epoch())
				} else {
					fmt.Printf("epoch %d\n", db.Epoch())
				}
				prompt()
				continue
			}
			newDB, newDialect, quit := meta(db, dialect, trimmed)
			if quit {
				sess.Close()
				return
			}
			if newDB != db {
				sess.Close()
				db, sess = newDB, newDB.Session()
			}
			dialect = newDialect
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteString("\n")
		if strings.HasSuffix(trimmed, ";") {
			execute(sess, buf.String())
			buf.Reset()
		}
		prompt()
	}
	sess.Close()
}

// remoteREPL runs the shell against a cypherd server: one wire-level
// session, statements executed remotely, results printed exactly like
// the embedded path.
func remoteREPL(addr string) {
	c, err := cypherclient.Dial(addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "connect:", err)
		os.Exit(1)
	}
	defer c.Close()
	srvName, dialect := c.ServerInfo()
	fmt.Printf("connected to %s at %s (dialect: %s)\n", srvName, addr, dialect)
	fmt.Println("statements end with ';'; :help for help, :quit to exit")

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	inTxn := false

	prompt := func() {
		switch {
		case buf.Len() > 0:
			fmt.Print("   ... ")
		case inTxn:
			fmt.Printf("%s txn> ", dialect)
		default:
			fmt.Printf("%s> ", dialect)
		}
	}
	prompt()
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, ":") {
			switch strings.Fields(trimmed)[0] {
			case ":quit", ":exit", ":q":
				return
			case ":functions":
				// The function registry is compiled into the client and
				// identical on the server, so this prints locally.
				printFunctions()
			case ":help":
				fmt.Println("remote shell: every statement runs on the server over the wire.")
				fmt.Println("EXPLAIN <query>; and PROFILE <query>; work; BEGIN/COMMIT/ROLLBACK manage a server-side transaction.")
				fmt.Println(":functions lists the built-in functions; other local metas (:dialect, :set, :stats, ...) are unavailable over -connect.")
			default:
				fmt.Println("meta commands are unavailable over -connect (only :functions, :help, :quit)")
			}
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteString("\n")
		if strings.HasSuffix(trimmed, ";") {
			inTxn = executeRemote(c, buf.String(), inTxn)
			buf.Reset()
		}
		prompt()
	}
}

// executeRemote runs one statement over the wire and returns the new
// transaction-open state for the prompt.
func executeRemote(c *cypherclient.Conn, query string, inTxn bool) bool {
	query = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(query), ";"))
	if query == "" {
		return inTxn
	}
	if rest, ok := cutPrefixFold(query, "EXPLAIN"); ok {
		tree, err := c.Explain(strings.TrimSpace(rest))
		if err != nil {
			fmt.Println("error:", err)
			return inTxn
		}
		fmt.Println(tree)
		return inTxn
	}
	if rest, ok := cutPrefixFold(query, "PROFILE"); ok {
		res, tree, err := c.Profile(strings.TrimSpace(rest), nil)
		if err != nil {
			fmt.Println("error:", err)
			return inTxn
		}
		fmt.Println(tree)
		printRemoteResult(res)
		return inTxn
	}
	res, err := c.Exec(query, nil)
	if err != nil {
		fmt.Println("error:", err)
		return inTxn
	}
	printRemoteResult(res)
	// Track the prompt's transaction marker from the statement text (the
	// server holds the authoritative state).
	switch strings.ToUpper(query) {
	case "BEGIN":
		return true
	case "COMMIT", "ROLLBACK":
		return false
	}
	return inTxn
}

func printRemoteResult(res *cypherclient.Result) {
	if len(res.Columns) > 0 {
		fmt.Println(strings.Join(res.Columns, " | "))
		for _, row := range res.Rows {
			var parts []string
			for _, v := range row {
				parts = append(parts, v.String())
			}
			fmt.Println(strings.Join(parts, " | "))
		}
	}
	st := res.Stats
	if st != (cypherclient.UpdateStats{}) {
		fmt.Printf("(nodes +%d -%d, rels +%d -%d, props %d, labels +%d -%d)\n",
			st.NodesCreated, st.NodesDeleted, st.RelsCreated, st.RelsDeleted,
			st.PropsSet, st.LabelsAdded, st.LabelsRemoved)
	}
}

// switchesDatabase reports whether a meta command replaces the DB (and
// so must not run while a transaction is open).
func switchesDatabase(cmd string) bool {
	switch strings.Fields(cmd)[0] {
	case ":dialect", ":merge", ":clear", ":set":
		return true
	}
	return false
}

func meta(db *cypher.DB, dialect, cmd string) (*cypher.DB, string, bool) {
	fields := strings.Fields(cmd)
	switch fields[0] {
	case ":quit", ":exit", ":q":
		return db, dialect, true
	case ":wal":
		if len(fields) == 2 && fields[1] == "checkpoint" {
			if err := db.Checkpoint(); err != nil {
				fmt.Println("error:", err)
				break
			}
		} else if len(fields) != 1 {
			fmt.Println("usage: :wal [checkpoint]")
			break
		}
		printWALStatus(db)
	case ":save":
		path := strings.TrimSpace(strings.TrimPrefix(cmd, ":save"))
		if path == "" {
			fmt.Println("usage: :save <path>")
			break
		}
		if err := db.SaveFile(path); err != nil {
			fmt.Println("error:", err)
			break
		}
		fmt.Println("saved", path)
	case ":functions":
		printFunctions()
	case ":help":
		fmt.Println("statements end with ';'. EXPLAIN <query>; prints the operator plan with its transaction boundaries.")
		fmt.Println("PROFILE <query>; executes it and prints the plan with observed rows/batches/peak-mem/spill counters.")
		fmt.Println("transactions: BEGIN; opens one (statements see its writes; errors roll back the statement only),")
		fmt.Println("COMMIT; publishes it atomically, ROLLBACK; discards it. Without BEGIN, statements auto-commit.")
		fmt.Println("indexes: CREATE INDEX ON :Label(prop); / DROP INDEX ON :Label(prop); — :indexes lists them.")
		fmt.Println("memory: :set budget <bytes> caps per-statement barrier memory (spill to disk beyond it; 0 = unlimited).")
		fmt.Println("parallelism: :set parallelism <n> sets the worker-pool degree for read statements (0 = GOMAXPROCS, 1 = serial).")
		fmt.Println("durability: run with -data <dir> to persist commits to a write-ahead log; :wal shows its status,")
		fmt.Println(":wal checkpoint compacts it, and :save <path> writes an atomic JSON snapshot anywhere.")
		fmt.Println("Meta: :dialect cypher9|revised, :merge <strategy>, :set budget <bytes>, :set parallelism <n>, :functions, :stats, :indexes, :epoch, :wal, :save <path>, :clear, :quit")
	case ":clear":
		opt := cypher.WithDialect(cypher.Revised)
		if dialect == "cypher9" {
			opt = cypher.WithDialect(cypher.Cypher9)
		}
		return cypher.Open(opt), dialect, false
	case ":dialect":
		if len(fields) != 2 {
			fmt.Println("usage: :dialect cypher9|revised")
			break
		}
		switch fields[1] {
		case "cypher9":
			return db.Snapshot(cypher.WithDialect(cypher.Cypher9)), "cypher9", false
		case "revised":
			return db.Snapshot(cypher.WithDialect(cypher.Revised)), "revised", false
		default:
			fmt.Println("unknown dialect:", fields[1])
		}
	case ":merge":
		if len(fields) != 2 {
			fmt.Println("usage: :merge legacy|atomic|grouping|weak-collapse|collapse|strong-collapse|from-form")
			break
		}
		strategies := map[string]cypher.MergeStrategy{
			"legacy": cypher.MergeLegacy, "atomic": cypher.MergeAtomic,
			"grouping": cypher.MergeGrouping, "weak-collapse": cypher.MergeWeakCollapse,
			"collapse": cypher.MergeCollapse, "strong-collapse": cypher.MergeStrongCollapse,
			"from-form": cypher.MergeFromForm,
		}
		s, ok := strategies[fields[1]]
		if !ok {
			fmt.Println("unknown strategy:", fields[1])
			break
		}
		return db.Snapshot(cypher.WithMergeStrategy(s)), dialect, false
	case ":set":
		if len(fields) != 3 || (fields[1] != "budget" && fields[1] != "parallelism") {
			fmt.Println("usage: :set budget <bytes> | :set parallelism <n>   (0 = unlimited / GOMAXPROCS)")
			break
		}
		n, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil || n < 0 {
			fmt.Printf("%s must be a non-negative integer: %s\n", fields[1], fields[2])
			break
		}
		if fields[1] == "parallelism" {
			if n == 0 {
				fmt.Println("parallelism: GOMAXPROCS (read statements use all cores)")
			} else if n == 1 {
				fmt.Println("parallelism: 1 (serial execution)")
			} else {
				fmt.Printf("parallelism: %d workers for read statements\n", n)
			}
			return db.Snapshot(cypher.WithParallelism(int(n))), dialect, false
		}
		if n == 0 {
			fmt.Println("memory budget: unlimited")
		} else {
			fmt.Printf("memory budget: %d bytes per statement (barriers beyond it spill to temp files)\n", n)
		}
		// Snapshot carries the budget in the DB's options, so it survives
		// later :dialect and :merge switches.
		return db.Snapshot(cypher.WithMemoryBudget(n)), dialect, false
	default:
		fmt.Println("unknown meta command:", fields[0])
	}
	return db, dialect, false
}

func printWALStatus(db *cypher.DB) {
	st, ok := db.WALStatus()
	if !ok {
		fmt.Println("in-memory database (start with -data <dir> for durability)")
		return
	}
	fmt.Printf("wal: %s (sync=%s)\n", st.Dir, st.Sync)
	fmt.Printf("  log: %d bytes, last epoch %d, %d record(s) appended, %d replayed at open\n",
		st.Bytes, st.LastEpoch, st.Records, st.Replayed)
	fmt.Printf("  checkpoint: epoch %d, %d taken since open\n", st.CheckpointEpoch, st.Checkpoints)
	if st.Err != nil {
		fmt.Println("  FAILED:", st.Err)
	}
}

func closeDB(db *cypher.DB) {
	if err := db.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "close:", err)
	}
}

// printFunctions lists the built-in scalar functions with the planner
// flags that govern them: pure+deterministic functions participate in
// constant folding, and pure+total ones in speculative predicate
// pushdown.
func printFunctions() {
	fns := cypher.Functions()
	width := 0
	for _, f := range fns {
		if len(f.Sig) > width {
			width = len(f.Sig)
		}
	}
	for _, f := range fns {
		flags := make([]byte, 0, 3)
		if f.Pure {
			flags = append(flags, 'p')
		}
		if f.Total {
			flags = append(flags, 't')
		}
		if f.Deterministic {
			flags = append(flags, 'd')
		}
		fmt.Printf("  %-*s  [%-3s]  %s\n", width, f.Sig, flags, f.Doc)
	}
	fmt.Printf("%d functions. Flags: p=pure t=total (never errors) d=deterministic.\n", len(fns))
}

func printIndexes(ixs []cypher.IndexView) {
	if len(ixs) == 0 {
		fmt.Println("no indexes")
		return
	}
	for _, ix := range ixs {
		fmt.Printf("INDEX ON :%s(%s)\n", ix.Label, ix.Prop)
	}
}

func execute(sess *cypher.Session, query string) {
	query = strings.TrimSpace(query)
	query = strings.TrimSuffix(query, ";")
	if query == "" {
		return
	}
	// EXPLAIN <query> prints the streaming operator plan instead of
	// executing the statement.
	if rest, ok := cutPrefixFold(query, "EXPLAIN"); ok {
		tree, err := sess.Explain(strings.TrimSpace(rest))
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Println(tree)
		return
	}
	// PROFILE <query> executes the statement and prints the operator
	// plan annotated with observed execution counters.
	if rest, ok := cutPrefixFold(query, "PROFILE"); ok {
		res, tree, err := sess.Profile(strings.TrimSpace(rest), nil)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Println(tree)
		printResult(res)
		return
	}
	res, err := sess.Exec(query, nil)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	printResult(res)
}

func printResult(res *cypher.Result) {
	cols := res.Columns()
	if len(cols) > 0 {
		fmt.Println(strings.Join(cols, " | "))
		for i := 0; i < res.NumRows(); i++ {
			var parts []string
			for _, v := range res.Values(i) {
				parts = append(parts, v.String())
			}
			fmt.Println(strings.Join(parts, " | "))
		}
	}
	st := res.Stats()
	if st != (cypher.UpdateStats{}) {
		fmt.Printf("(nodes +%d -%d, rels +%d -%d, props %d, labels +%d -%d)\n",
			st.NodesCreated, st.NodesDeleted, st.RelsCreated, st.RelsDeleted,
			st.PropsSet, st.LabelsAdded, st.LabelsRemoved)
	}
}

// cutPrefixFold strips a case-insensitive keyword prefix, requiring a
// word boundary after it (so a query starting with an identifier like
// `explainFoo` is not treated as EXPLAIN).
func cutPrefixFold(s, prefix string) (string, bool) {
	if len(s) <= len(prefix) || !strings.EqualFold(s[:len(prefix)], prefix) {
		return s, false
	}
	rest := s[len(prefix):]
	if rest[0] != ' ' && rest[0] != '\t' && rest[0] != '\n' && rest[0] != '\r' {
		return s, false
	}
	return rest, true
}
