// Command cypherd serves the graph database over TCP, speaking the
// length-prefixed JSON wire protocol of internal/server. Each accepted
// connection gets its own session: statements auto-commit until BEGIN
// opens an explicit transaction, exactly as in the embedded API.
//
//	cypherd -addr :7687                      # in-memory, revised dialect
//	cypherd -addr :7687 -data ./graphdb      # durable (write-ahead log)
//	cypherd -dialect cypher9                 # legacy Cypher 9 semantics
//
// Connect with cypher-shell -connect <addr>, or programmatically with
// the repro/cypherclient package.
//
// Operational flags:
//
//	-statement-timeout   cap one statement's execution (0 = none)
//	-idle-timeout        close connections idle this long (0 = none)
//	-max-write-queue     bound on queued/running writers before new
//	                     writes are refused with ServerBusy
//	-max-frame           largest accepted request frame, in bytes
//
// On SIGTERM or SIGINT the server drains gracefully: it stops
// accepting, lets in-flight statements finish (new RUNs are refused
// with ServerDraining), rolls back transactions left open, and exits;
// a second signal — or the -drain-timeout deadline — forces it.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/cypher"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7687", "listen address (host:port)")
	dataDir := flag.String("data", "", "data directory for durable operation (empty = in-memory)")
	syncMode := flag.String("sync", "always", "wal fsync policy with -data: always|interval|never")
	dialect := flag.String("dialect", "revised", "update dialect: revised|cypher9")
	stmtTimeout := flag.Duration("statement-timeout", 0, "per-statement execution timeout (0 = none)")
	idleTimeout := flag.Duration("idle-timeout", 0, "close connections idle this long (0 = none)")
	maxWriteQueue := flag.Int("max-write-queue", server.DefaultMaxWriteQueue, "max queued/running writers before ServerBusy (<0 = unbounded)")
	maxFrame := flag.Int("max-frame", server.DefaultMaxFrame, "largest accepted request frame in bytes")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long a graceful shutdown may take before connections are closed forcibly")
	flag.Parse()

	var opts []cypher.Option
	switch *dialect {
	case "revised":
		opts = append(opts, cypher.WithDialect(cypher.Revised))
	case "cypher9":
		opts = append(opts, cypher.WithDialect(cypher.Cypher9))
	default:
		fmt.Fprintln(os.Stderr, "unknown -dialect:", *dialect)
		os.Exit(1)
	}

	var db *cypher.DB
	if *dataDir != "" {
		var d cypher.Durability
		switch *syncMode {
		case "always":
			d.Sync = cypher.SyncAlways
		case "interval":
			d.Sync = cypher.SyncInterval
		case "never":
			d.Sync = cypher.SyncNever
		default:
			fmt.Fprintln(os.Stderr, "unknown -sync mode:", *syncMode)
			os.Exit(1)
		}
		opts = append(opts, cypher.WithDurability(d))
		var err error
		db, err = cypher.OpenDir(*dataDir, opts...)
		if err != nil {
			fmt.Fprintln(os.Stderr, "open:", err)
			os.Exit(1)
		}
	} else {
		db = cypher.Open(opts...)
	}

	srv := server.New(db, server.Options{
		MaxFrame:         *maxFrame,
		IdleTimeout:      *idleTimeout,
		StatementTimeout: *stmtTimeout,
		MaxWriteQueue:    *maxWriteQueue,
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "listen:", err)
		os.Exit(1)
	}
	fmt.Printf("cypherd listening on %s (dialect=%s, durable=%v)\n", ln.Addr(), db.Dialect(), db.Durable())

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	select {
	case sig := <-sigc:
		fmt.Printf("received %s; draining (%v timeout, signal again to force)\n", sig, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		go func() {
			<-sigc
			cancel()
		}()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "forced shutdown:", err)
		}
		cancel()
	case err := <-done:
		if err != nil {
			fmt.Fprintln(os.Stderr, "serve:", err)
		}
	}
	if err := db.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "close:", err)
		os.Exit(1)
	}
}
