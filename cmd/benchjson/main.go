// Command benchjson converts `go test -bench` text output into a JSON
// document, so benchmark runs can be committed and diffed across PRs
// (the BENCH_*.json perf trajectory).
//
// Usage:
//
//	go test -run '^$' -bench BenchmarkB -benchmem . | go run ./cmd/benchjson -out BENCH.json
//
// Lines that are not benchmark results (the goos/pkg header, PASS/ok)
// are captured as metadata or skipped.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Doc is the output document.
type Doc struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	in := flag.String("in", "-", "benchmark output file ('-' for stdin)")
	out := flag.String("out", "-", "JSON output file ('-' for stdout)")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}

	doc, err := parse(r)
	if err != nil {
		fatal(err)
	}
	if len(doc.Results) == 0 {
		fatal(fmt.Errorf("no benchmark results found in input"))
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
}

func parse(r io.Reader) (*Doc, error) {
	doc := &Doc{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			doc.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			res, err := parseResult(line)
			if err != nil {
				return nil, err
			}
			doc.Results = append(doc.Results, res)
		}
	}
	return doc, sc.Err()
}

// parseResult parses one line of the form
//
//	BenchmarkName-8   100   123456 ns/op   789 B/op   12 allocs/op
func parseResult(line string) (Result, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, fmt.Errorf("malformed benchmark line: %q", line)
	}
	res := Result{Name: fields[0]}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, fmt.Errorf("iterations in %q: %w", line, err)
	}
	res.Iterations = iters
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			res.NsPerOp, err = strconv.ParseFloat(val, 64)
		case "B/op":
			res.BytesPerOp, err = strconv.ParseInt(val, 10, 64)
		case "allocs/op":
			res.AllocsPerOp, err = strconv.ParseInt(val, 10, 64)
		}
		if err != nil {
			return Result{}, fmt.Errorf("%s in %q: %w", unit, line, err)
		}
	}
	return res, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
