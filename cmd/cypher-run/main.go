// Command cypher-run executes a Cypher script file (statements separated
// by semicolons) against a fresh database and prints the result of each
// statement. The whole script runs through one session, so scripts may
// use BEGIN/COMMIT/ROLLBACK and the schema statements CREATE INDEX /
// DROP INDEX alongside queries; an unclosed transaction rolls back at
// exit.
//
// With -data <dir> the script runs against the durable database rooted
// there: previously committed state is recovered before the script
// starts, and every statement the script commits is on the write-ahead
// log (fsynced per commit) before the next one runs.
//
// Usage:
//
//	cypher-run [-dialect revised|cypher9] [-merge strategy] [-data dir] script.cypher
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/cypher"
	"repro/internal/script"
)

func main() {
	os.Exit(run())
}

func run() int {
	dialect := flag.String("dialect", "revised", "update dialect: revised or cypher9")
	mergeStrategy := flag.String("merge", "from-form",
		"MERGE strategy: from-form, legacy, atomic, grouping, weak-collapse, collapse, strong-collapse")
	dataDir := flag.String("data", "", "data directory for durable operation (empty = in-memory)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: cypher-run [-dialect d] [-merge s] [-data dir] script.cypher")
		return 2
	}

	var opts []cypher.Option
	switch *dialect {
	case "revised":
		opts = append(opts, cypher.WithDialect(cypher.Revised))
	case "cypher9":
		opts = append(opts, cypher.WithDialect(cypher.Cypher9))
	default:
		fmt.Fprintln(os.Stderr, "unknown dialect:", *dialect)
		return 2
	}
	strategies := map[string]cypher.MergeStrategy{
		"from-form": cypher.MergeFromForm, "legacy": cypher.MergeLegacy,
		"atomic": cypher.MergeAtomic, "grouping": cypher.MergeGrouping,
		"weak-collapse": cypher.MergeWeakCollapse, "collapse": cypher.MergeCollapse,
		"strong-collapse": cypher.MergeStrongCollapse,
	}
	s, ok := strategies[*mergeStrategy]
	if !ok {
		fmt.Fprintln(os.Stderr, "unknown merge strategy:", *mergeStrategy)
		return 2
	}
	opts = append(opts, cypher.WithMergeStrategy(s))

	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		return 1
	}

	var db *cypher.DB
	if *dataDir != "" {
		db, err = cypher.OpenDir(*dataDir, opts...)
		if err != nil {
			fmt.Fprintln(os.Stderr, "open:", err)
			return 1
		}
		fmt.Printf("-- data: %s (recovered epoch %d)\n", *dataDir, db.Epoch())
	} else {
		db = cypher.Open(opts...)
	}
	// One session for the whole script, so BEGIN/COMMIT/ROLLBACK work as
	// script statements (an unclosed transaction rolls back at exit).
	sess := db.Session()
	code := 0
	for i, stmt := range script.Split(string(src)) {
		fmt.Printf("-- statement %d\n%s\n", i+1, stmt)
		res, err := sess.Exec(stmt, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			code = 1
			break
		}
		cols := res.Columns()
		if len(cols) > 0 {
			fmt.Println(strings.Join(cols, " | "))
			for r := 0; r < res.NumRows(); r++ {
				var parts []string
				for _, v := range res.Values(r) {
					parts = append(parts, v.String())
				}
				fmt.Println(strings.Join(parts, " | "))
			}
		}
		fmt.Println()
	}
	sess.Close()
	if err := db.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "close:", err)
		code = 1
	}
	if code == 0 {
		fmt.Println("final graph:", db.Stats())
	}
	return code
}
