// Command cypher-run executes a Cypher script file (statements separated
// by semicolons) against a fresh database and prints the result of each
// statement. The whole script runs through one session, so scripts may
// use BEGIN/COMMIT/ROLLBACK and the schema statements CREATE INDEX /
// DROP INDEX alongside queries; an unclosed transaction rolls back at
// exit.
//
// Usage:
//
//	cypher-run [-dialect revised|cypher9] [-merge strategy] script.cypher
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/cypher"
	"repro/internal/script"
)

func main() {
	dialect := flag.String("dialect", "revised", "update dialect: revised or cypher9")
	mergeStrategy := flag.String("merge", "from-form",
		"MERGE strategy: from-form, legacy, atomic, grouping, weak-collapse, collapse, strong-collapse")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: cypher-run [-dialect d] [-merge s] script.cypher")
		os.Exit(2)
	}

	var opts []cypher.Option
	switch *dialect {
	case "revised":
		opts = append(opts, cypher.WithDialect(cypher.Revised))
	case "cypher9":
		opts = append(opts, cypher.WithDialect(cypher.Cypher9))
	default:
		fmt.Fprintln(os.Stderr, "unknown dialect:", *dialect)
		os.Exit(2)
	}
	strategies := map[string]cypher.MergeStrategy{
		"from-form": cypher.MergeFromForm, "legacy": cypher.MergeLegacy,
		"atomic": cypher.MergeAtomic, "grouping": cypher.MergeGrouping,
		"weak-collapse": cypher.MergeWeakCollapse, "collapse": cypher.MergeCollapse,
		"strong-collapse": cypher.MergeStrongCollapse,
	}
	s, ok := strategies[*mergeStrategy]
	if !ok {
		fmt.Fprintln(os.Stderr, "unknown merge strategy:", *mergeStrategy)
		os.Exit(2)
	}
	opts = append(opts, cypher.WithMergeStrategy(s))

	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}

	db := cypher.Open(opts...)
	// One session for the whole script, so BEGIN/COMMIT/ROLLBACK work as
	// script statements (an unclosed transaction rolls back at exit).
	sess := db.Session()
	defer sess.Close()
	for i, stmt := range script.Split(string(src)) {
		fmt.Printf("-- statement %d\n%s\n", i+1, stmt)
		res, err := sess.Exec(stmt, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		cols := res.Columns()
		if len(cols) > 0 {
			fmt.Println(strings.Join(cols, " | "))
			for r := 0; r < res.NumRows(); r++ {
				var parts []string
				for _, v := range res.Values(r) {
					parts = append(parts, v.String())
				}
				fmt.Println(strings.Join(parts, " | "))
			}
		}
		fmt.Println()
	}
	fmt.Println("final graph:", db.Stats())
}
