package main

import (
	"testing"

	"repro/internal/script"
)

func TestSplitStatements(t *testing.T) {
	cases := []struct {
		src  string
		want []string
	}{
		{"CREATE (n); MATCH (n) RETURN n", []string{"CREATE (n)", "MATCH (n) RETURN n"}},
		{"RETURN 1", []string{"RETURN 1"}},
		{"RETURN ';'; RETURN 2", []string{"RETURN ';'", "RETURN 2"}},
		{`RETURN "a;b"; RETURN 'c\';d'`, []string{`RETURN "a;b"`, `RETURN 'c\';d'`}},
		{"// comment; with semicolon\nRETURN 1;", []string{"RETURN 1"}},
		{"; ;;", nil},
		{"", nil},
		{"RETURN 1;\n\nRETURN 2;\n", []string{"RETURN 1", "RETURN 2"}},
	}
	for _, c := range cases {
		got := script.Split(c.src)
		if len(got) != len(c.want) {
			t.Errorf("split(%q) = %v, want %v", c.src, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("split(%q)[%d] = %q, want %q", c.src, i, got[i], c.want[i])
			}
		}
	}
}
