// Command experiments regenerates every figure and worked example of
// "Updating Graph Databases with Cypher" (Green et al., PVLDB 2019) and
// prints paper-expected versus measured outcomes.
//
// Usage:
//
//	experiments            # run all experiments (E01..E11)
//	experiments -run E05   # run one experiment
//	experiments -list      # list experiment ids and titles
//	experiments -dot DIR   # write Graphviz renderings of every figure
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/experiments"
)

func main() {
	runID := flag.String("run", "", "run a single experiment by id (e.g. E05)")
	list := flag.Bool("list", false, "list experiments")
	dotDir := flag.String("dot", "", "write figure graphs as Graphviz .dot files into this directory")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Printf("%s  %s\n", id, experiments.Title(id))
		}
		return
	}

	if *dotDir != "" {
		if err := writeFigures(*dotDir); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		return
	}

	var reports []*experiments.Report
	if *runID != "" {
		r, err := experiments.Run(*runID)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		reports = append(reports, r)
	} else {
		var err error
		reports, err = experiments.RunAll()
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	}

	failed := 0
	for _, r := range reports {
		fmt.Printf("=== %s: %s\n", r.ID, r.Title)
		for _, line := range r.Lines {
			fmt.Println("  " + line)
		}
		if !r.Pass {
			failed++
		}
		fmt.Println()
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "%d experiment(s) FAILED\n", failed)
		os.Exit(1)
	}
	fmt.Printf("all %d experiment(s) passed\n", len(reports))
}

// writeFigures regenerates each paper figure and writes a .dot file.
func writeFigures(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	graphs, err := experiments.FigureGraphs()
	if err != nil {
		return err
	}
	for _, name := range experiments.FigureNames() {
		path := filepath.Join(dir, name+".dot")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := graphs[name].WriteDOT(f, name); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Println("wrote", path)
	}
	return nil
}
