// Benchmark harness for the reproduction. The paper itself reports no
// performance numbers (it is a semantics paper); these benchmarks answer
// the systems question its design leaves open — what the revised,
// atomic/deterministic semantics costs relative to the legacy pipeline —
// and exercise every strategy of Section 6 at scale. EXPERIMENTS.md
// records a captured run; the B-ids below are indexed in DESIGN.md.
//
//	B1  bulk import (Example 5 at scale): legacy MERGE vs MERGE ALL vs MERGE SAME
//	B2  all five Section 6 strategies on the same import
//	B3  SET: legacy immediate writes vs revised two-phase change sets
//	B4  DELETE: legacy unchecked vs revised strict (collect+check+null)
//	B5  pattern matching (Query 1 shape) on marketplace graphs
//	B6  CREATE throughput
//	B7  isomorphism checking (the determinism-verification primitive)
//	B8  relationship-isomorphic vs homomorphic matching
//	B9  collapse strategies on the Example 7 clickstream shape
//	B10 LIMIT early exit under the streaming executor
//	B11 cost-based anchor selection on a label-skewed graph
//	B12 WHERE pushdown pruning relationship expansion
//	B13 concurrent snapshot readers vs lock-serialized execution
//	B14 property-index seeks: equality-anchored MATCH and bulk MERGE
//	B15 commit latency under pinned readers: copy-on-write vs deep clone
//	B16 vectorized batch execution vs row-at-a-time streaming
//	B17 spilling barriers under a memory budget vs unlimited in-memory
//	B18 durable commit latency: WAL off / no-sync / grouped fsync / fsync-per-commit
//	B19 morsel-parallel read scaling: worker degrees 1/2/4/8 on scan- and match-heavy pipelines
//	B20 served QPS: N concurrent wire clients vs one, shared plan cache across sessions
//	B21 expression-heavy pipelines: plan-time constant folding and purity-aware pushdown
package repro_test

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/cypher"
	"repro/cypherclient"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/match"
	"repro/internal/parser"
	"repro/internal/server"
	"repro/internal/table"
	"repro/internal/value"
	"repro/internal/workload"
)

func execBench(b *testing.B, cfg core.Config, g *graph.Graph, src string, t0 *table.Table) *core.Result {
	b.Helper()
	stmt, err := parser.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	res, err := core.NewEngine(cfg).ExecuteWithTable(g, stmt, nil, t0)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

const importQueryLegacy = `MERGE (:User{id:cid})-[:ORDERED]->(:Product{id:pid})`
const importQueryAll = `MERGE ALL (:User{id:cid})-[:ORDERED]->(:Product{id:pid})`
const importQuerySame = `MERGE SAME (:User{id:cid})-[:ORDERED]->(:Product{id:pid})`

// B1: bulk import under the three surface forms.
func BenchmarkB1BulkImport(b *testing.B) {
	for _, rows := range []int{100, 1000} {
		tbl := workload.DefaultOrderImport(rows).Build()
		cases := []struct {
			name  string
			cfg   core.Config
			query string
		}{
			{"legacy-merge", core.Config{Dialect: core.DialectCypher9}, importQueryLegacy},
			{"merge-all", core.Config{Dialect: core.DialectRevised}, importQueryAll},
			{"merge-same", core.Config{Dialect: core.DialectRevised}, importQuerySame},
		}
		for _, c := range cases {
			b.Run(fmt.Sprintf("%s/rows=%d", c.name, rows), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					g := graph.New()
					execBench(b, c.cfg, g, c.query, tbl.Clone())
				}
			})
		}
	}
}

// B2: the five Section 6 strategies on the same import table.
func BenchmarkB2MergeStrategies(b *testing.B) {
	tbl := workload.DefaultOrderImport(1000).Build()
	for _, s := range []core.MergeStrategy{
		core.StrategyAtomic, core.StrategyGrouping, core.StrategyWeakCollapse,
		core.StrategyCollapse, core.StrategyStrongCollapse,
	} {
		cfg := core.Config{Dialect: core.DialectRevised, MergeStrategy: s}
		b.Run(s.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g := graph.New()
				execBench(b, cfg, g, importQueryAll, tbl.Clone())
			}
		})
	}
}

// B3: SET over every product — legacy immediate vs revised two-phase.
func BenchmarkB3Set(b *testing.B) {
	base := workload.DefaultMarketplace().Build()
	query := `MATCH (p:Product) SET p.flag = true, p.score = p.id * 2`
	for _, c := range []struct {
		name string
		cfg  core.Config
	}{
		{"legacy", core.Config{Dialect: core.DialectCypher9}},
		{"revised-atomic", core.Config{Dialect: core.DialectRevised}},
	} {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				g := base.Clone()
				b.StartTimer()
				execBench(b, c.cfg, g, query, nil)
			}
		})
	}
}

// B4: DETACH DELETE of all users — legacy unchecked vs revised strict.
func BenchmarkB4Delete(b *testing.B) {
	base := workload.DefaultMarketplace().Build()
	query := `MATCH (u:User) DETACH DELETE u`
	for _, c := range []struct {
		name string
		cfg  core.Config
	}{
		{"legacy", core.Config{Dialect: core.DialectCypher9}},
		{"revised-strict", core.Config{Dialect: core.DialectRevised}},
	} {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				g := base.Clone()
				b.StartTimer()
				execBench(b, c.cfg, g, query, nil)
			}
		})
	}
}

// B5: read-only pattern matching (the Query 1 shape) at two scales,
// under the streaming (default) and materializing executors.
func BenchmarkB5Match(b *testing.B) {
	for _, scale := range []int{1, 4} {
		m := workload.DefaultMarketplace()
		m.Products *= scale
		m.Users *= scale
		m.Vendors *= scale
		g := m.Build()
		query := `
			MATCH (p:Product)<-[:OFFERS]-(v:Vendor)-[:OFFERS]->(q:Product)
			WHERE p.id < 10
			RETURN count(*) AS c`
		for _, ex := range []core.Executor{core.ExecStreaming, core.ExecMaterializing} {
			cfg := core.Config{Dialect: core.DialectRevised, Executor: ex}
			b.Run(fmt.Sprintf("%s/scale=%d", ex, scale), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					execBench(b, cfg, g, query, nil)
				}
			})
		}
	}
}

// B6: CREATE throughput (nodes+relationships per statement).
func BenchmarkB6Create(b *testing.B) {
	cfg := core.Config{Dialect: core.DialectRevised}
	query := `UNWIND range(1, 1000) AS i CREATE (:A{id:i})-[:T]->(:B{id:i})`
	b.Run("rows=1000", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g := graph.New()
			execBench(b, cfg, g, query, nil)
		}
	})
}

// B7: the isomorphism checker used by the determinism experiments.
func BenchmarkB7Isomorphism(b *testing.B) {
	m := workload.DefaultMarketplace()
	m.Seed = 1
	g1 := m.Build()
	g2 := m.Build()
	b.Run("marketplace", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if !graph.Isomorphic(g1, g2) {
				b.Fatal("equal builds must be isomorphic")
			}
		}
	})
}

// B8: relationship-isomorphic vs homomorphic matching (the Example 7
// matching-mode dimension) on a dense pattern.
func BenchmarkB8MatchModes(b *testing.B) {
	m := workload.DefaultMarketplace()
	g := m.Build()
	query := `
		MATCH (a:Product)<-[:OFFERS]-(v:Vendor)-[:OFFERS]->(bp:Product)
		WHERE a.id < 5
		RETURN count(*) AS c`
	for _, c := range []struct {
		name string
		mode match.Mode
	}{
		{"isomorphism", match.Isomorphism},
		{"homomorphism", match.Homomorphism},
	} {
		for _, ex := range []core.Executor{core.ExecStreaming, core.ExecMaterializing} {
			cfg := core.Config{Dialect: core.DialectRevised, MatchMode: c.mode, Executor: ex}
			b.Run(fmt.Sprintf("%s/%s", c.name, ex), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					execBench(b, cfg, g, query, nil)
				}
			})
		}
	}
}

// B9: the collapse strategies on the Example 7 clickstream shape, where
// long paths with repeated endpoints stress the collapse pass.
func BenchmarkB9ClickstreamCollapse(b *testing.B) {
	c := workload.Clickstream{Sessions: 300, PathLen: 5, Products: 40, Seed: 3}
	query := `MERGE ALL ` + c.PathQuery()
	for _, s := range []core.MergeStrategy{
		core.StrategyAtomic, core.StrategyCollapse, core.StrategyStrongCollapse,
	} {
		cfg := core.Config{Dialect: core.DialectRevised, MergeStrategy: s}
		b.Run(s.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				g, tbl := c.Build()
				b.StartTimer()
				execBench(b, cfg, g, query, tbl)
			}
		})
	}
}

// B10: LIMIT early exit. The streaming executor stops pattern
// enumeration after k rows; the materializing executor enumerates every
// match before slicing. The gap grows with graph size.
func BenchmarkB10LimitEarlyExit(b *testing.B) {
	g := graph.New()
	const n = 20000
	for i := 0; i < n; i++ {
		g.CreateNode([]string{"N"}, value.Map{"i": value.Int(int64(i))})
	}
	query := `MATCH (m:N) WHERE m.i % 3 = 0 RETURN m.i AS i LIMIT 5`
	for _, ex := range []core.Executor{core.ExecStreaming, core.ExecMaterializing} {
		cfg := core.Config{Dialect: core.DialectRevised, Executor: ex}
		b.Run(ex.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := execBench(b, cfg, g, query, nil)
				if res.Table.Len() != 5 {
					b.Fatal("expected 5 rows")
				}
			}
		})
	}
}

// B11: cost-based anchor selection. The rare label sits at the RIGHT
// end of the path over a heavily skewed graph, so the pre-planner
// enumeration (left-to-right from the first node) scans every :Common
// node, while the planner anchors at :Rare and expands backwards.
func BenchmarkB11SelectiveAnchor(b *testing.B) {
	g := graph.New()
	const common, rare = 20000, 10
	var rares []graph.NodeID
	for i := 0; i < rare; i++ {
		rares = append(rares, g.CreateNode([]string{"Rare"}, value.Map{"r": value.Int(int64(i))}).ID)
	}
	for i := 0; i < common; i++ {
		c := g.CreateNode([]string{"Common"}, value.Map{"i": value.Int(int64(i))})
		// One in twenty Common nodes links to a Rare node, spread
		// round-robin across the Rare nodes.
		if i%20 == 0 {
			if _, err := g.CreateRel(c.ID, rares[(i/20)%rare], "R", nil); err != nil {
				b.Fatal(err)
			}
		}
	}
	query := `MATCH (c:Common)-[:R]->(r:Rare) RETURN count(*) AS n`
	for _, c := range []struct {
		name    string
		planner core.PlannerMode
	}{
		{"naive", core.PlannerLeftToRight},
		{"planned", core.PlannerCostBased},
	} {
		cfg := core.Config{Dialect: core.DialectRevised, Planner: c.planner}
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := execBench(b, cfg, g, query, nil)
				if n, _ := value.AsInt(res.Table.Get(0, "n")); n != common/20 {
					b.Fatalf("count = %v, want %d", res.Table.Get(0, "n"), common/20)
				}
			}
		})
	}
}

// B12: WHERE pushdown. The predicate on the anchor node decides 99% of
// candidates before their relationships are expanded; without pushdown
// every node's adjacency is enumerated and the filter runs on complete
// rows only.
func BenchmarkB12WherePushdown(b *testing.B) {
	g := graph.New()
	const nodes, fanout = 5000, 8
	var ids []graph.NodeID
	for i := 0; i < nodes; i++ {
		ids = append(ids, g.CreateNode([]string{"N"}, value.Map{"hot": value.Bool(i%100 == 0)}).ID)
	}
	for i, id := range ids {
		for j := 1; j <= fanout; j++ {
			if _, err := g.CreateRel(id, ids[(i+j)%nodes], "T", nil); err != nil {
				b.Fatal(err)
			}
		}
	}
	query := `MATCH (a:N)-[:T]->(b:N) WHERE a.hot RETURN count(*) AS n`
	for _, c := range []struct {
		name    string
		planner core.PlannerMode
	}{
		{"naive", core.PlannerLeftToRight},
		{"planned", core.PlannerCostBased},
	} {
		cfg := core.Config{Dialect: core.DialectRevised, Planner: c.planner}
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := execBench(b, cfg, g, query, nil)
				if n, _ := value.AsInt(res.Table.Get(0, "n")); n != nodes/100*fanout {
					b.Fatalf("count = %v, want %d", res.Table.Get(0, "n"), nodes/100*fanout)
				}
			}
		})
	}
}

// B13: aggregate read throughput of the transactional session layer.
// Eight reader goroutines run a B5-style match+aggregate workload
// through the public API in two regimes:
//
//   - serialized: the pre-snapshot design — every statement takes one
//     global mutex, and a multi-statement transaction must hold it from
//     BEGIN to COMMIT (without snapshot isolation, a reader interleaved
//     mid-transaction would observe torn state);
//   - concurrent: the session layer's native path — readers pin a
//     snapshot and stream with no lock held, while the writer works on
//     the side.
//
// The bulk-txn cases run the read workload while one writer commits an
// 8-statement bulk create/delete transaction; the clock stops when the
// read workload completes (the writer drains off-clock, performing
// identical work in both regimes), so ns/op is the inverse of aggregate
// read throughput under identical write load. The readonly cases
// isolate pure reader fan-out, which additionally scales with
// GOMAXPROCS on multicore hosts; the bulk-txn gap — readers not
// queueing behind a bulk transaction — shows even on one CPU.
func BenchmarkB13ConcurrentReaders(b *testing.B) {
	const (
		readers        = 8
		readsPerReader = 3
		writeBatch     = 16000
	)
	load := func() *cypher.DB {
		g := workload.DefaultMarketplace().Build()
		var buf bytes.Buffer
		if err := g.WriteJSON(&buf); err != nil {
			b.Fatal(err)
		}
		db, err := cypher.Load(&buf)
		if err != nil {
			b.Fatal(err)
		}
		return db
	}
	readQ := `
		MATCH (v:Vendor)-[:OFFERS]->(p:Product)<-[:ORDERED]-(u:User)
		RETURN count(*) AS c`
	writeQs := []string{
		fmt.Sprintf(`UNWIND range(1, %d) AS i CREATE (:Tmp{i:i})`, writeBatch),
		`MATCH (t:Tmp) DELETE t`,
	}

	const writerStmts = 8
	run := func(b *testing.B, withWriter bool, serialize bool) {
		db := load()
		var mu sync.Mutex
		lock := func() func() {
			if !serialize {
				return func() {}
			}
			mu.Lock()
			return mu.Unlock
		}
		read := func() {
			defer lock()()
			if _, err := db.Exec(readQ, nil); err != nil {
				b.Error(err)
			}
		}
		// The writer's bulk transaction: identical statements in both
		// regimes. Serialized execution must hold the global lock from
		// BEGIN to COMMIT — without snapshots, that is the only way
		// readers cannot observe the transaction's intermediate states.
		writeTxn := func() {
			defer lock()()
			sess := db.Session()
			defer sess.Close()
			if _, err := sess.Exec(`BEGIN`, nil); err != nil {
				b.Error(err)
				return
			}
			for j := 0; j < writerStmts; j++ {
				if _, err := sess.Exec(writeQs[j%len(writeQs)], nil); err != nil {
					b.Error(err)
					return
				}
			}
			if _, err := sess.Exec(`COMMIT`, nil); err != nil {
				b.Error(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			writerDone := make(chan struct{})
			if withWriter {
				go func() {
					defer close(writerDone)
					writeTxn()
				}()
			} else {
				close(writerDone)
			}
			var wg sync.WaitGroup
			for r := 0; r < readers; r++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for k := 0; k < readsPerReader; k++ {
						read()
					}
				}()
			}
			wg.Wait()
			b.StopTimer()
			<-writerDone
			b.StartTimer()
		}
	}
	b.Run("serialized/readonly", func(b *testing.B) { run(b, false, true) })
	b.Run("concurrent/readonly", func(b *testing.B) { run(b, false, false) })
	b.Run("serialized/bulk-txn", func(b *testing.B) { run(b, true, true) })
	b.Run("concurrent/bulk-txn", func(b *testing.B) { run(b, true, false) })
}

// B14: property-index seeks. The match cases run a point lookup
// (`u.id = k`) over 100k single-label nodes: the label scan visits all
// of them, the index seek reads one bucket. The merge cases run a bulk
// upsert whose read phase re-matches the key per record — without an
// index each record rescans the growing label (O(n²) overall); with an
// index maintained incrementally under MERGE's own writes, every
// lookup is a bucket probe.
func BenchmarkB14IndexSeek(b *testing.B) {
	const n = 100000
	build := func(withIndex bool) *graph.Graph {
		g := graph.New()
		if withIndex {
			g.CreateIndex("User", "id")
		}
		for i := 0; i < n; i++ {
			g.CreateNode([]string{"User"}, value.Map{"id": value.Int(int64(i))})
		}
		return g
	}
	matchQ := `MATCH (u:User) WHERE u.id = 99999 RETURN u.id AS id`
	cfg := core.Config{Dialect: core.DialectRevised}
	for _, c := range []struct {
		name      string
		withIndex bool
	}{
		{"match/label-scan", false},
		{"match/index-seek", true},
	} {
		g := build(c.withIndex)
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := execBench(b, cfg, g, matchQ, nil)
				if res.Table.Len() != 1 {
					b.Fatal("expected 1 row")
				}
			}
		})
	}

	const rows = 2000
	upsert := table.New("cid")
	for i := 0; i < rows; i++ {
		upsert.AppendRow(value.Int(int64(i % (rows / 2)))) // every key hit twice
	}
	mergeQ := `MERGE (:User{id:cid})`
	legacy := core.Config{Dialect: core.DialectCypher9}
	for _, c := range []struct {
		name      string
		withIndex bool
	}{
		{"merge/label-scan", false},
		{"merge/index-seek", true},
	} {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				g := graph.New()
				if c.withIndex {
					g.CreateIndex("User", "id")
				}
				b.StartTimer()
				res := execBench(b, legacy, g, mergeQ, upsert.Clone())
				if res.Stats.NodesCreated != rows/2 {
					b.Fatalf("created %d nodes, want %d", res.Stats.NodesCreated, rows/2)
				}
			}
		})
	}
}

// B15: commit latency of a small write transaction while a reader
// keeps the published snapshot pinned, at two graph scales. The pinned
// reader forces the writer off the in-place path; the copy-on-write
// clone copies only the container directories plus the buckets the
// transaction touches, so its latency tracks the transaction size and
// stays nearly flat across graph scales. The deep-clone cases replay
// what the store did before PR 5 — Clone() the whole graph per
// transaction, mutate under a journal, publish the clone — and their
// latency tracks the graph size instead (the ≥10x acceptance gap at
// 100k nodes). Each transaction creates one node, links it, and
// updates one indexed property: every container family (entity maps,
// adjacency, label sets, statistics, property-index buckets) takes a
// write.
func BenchmarkB15CommitUnderReaders(b *testing.B) {
	build := func(n int) *graph.Graph {
		g := graph.New()
		g.CreateIndex("User", "id")
		for i := 0; i < n; i++ {
			g.CreateNode([]string{"User"}, value.Map{"id": value.Int(int64(i))})
		}
		return g
	}
	smallTxn := func(b *testing.B, g *graph.Graph, i int) {
		b.Helper()
		n := g.CreateNode([]string{"User"}, value.Map{"id": value.Int(int64(1_000_000 + i))})
		if _, err := g.CreateRel(n.ID, graph.NodeID(1), "KNOWS", nil); err != nil {
			b.Fatal(err)
		}
		if err := g.SetNodeProp(graph.NodeID(1), "id", value.Int(int64(-i))); err != nil {
			b.Fatal(err)
		}
	}
	for _, scale := range []int{10000, 100000} {
		b.Run(fmt.Sprintf("cow-commit/nodes=%d", scale), func(b *testing.B) {
			s := graph.NewStore(build(scale))
			// The reader re-pins every committed epoch, so EVERY
			// BeginWrite sees a pinned current snapshot and takes the
			// copy-on-write path (pinning only the first epoch would let
			// iterations 2..N go in place and benchmark the wrong path).
			pin := s.Acquire()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w := s.BeginWrite()
				smallTxn(b, w.Graph(), i)
				w.Commit()
				next := s.Acquire()
				pin.Release()
				pin = next
			}
			b.StopTimer()
			pin.Release()
		})
		b.Run(fmt.Sprintf("deep-clone-commit/nodes=%d", scale), func(b *testing.B) {
			published := build(scale) // the pre-PR5 writer: whole-graph clone per txn
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				working := published.Clone()
				j := working.BeginJournal()
				smallTxn(b, working, i)
				j.Commit()
				published = working
			}
		})
	}
}

// B16: the vectorized executor against the row-at-a-time streaming
// baseline on read pipelines — the per-row map allocations and pull
// calls the batch discipline amortizes show up as allocs/op and ns/row.
func BenchmarkB16BatchedExecutor(b *testing.B) {
	const n = 20000
	g := graph.New()
	for i := 0; i < n; i++ {
		g.CreateNode([]string{"U"}, value.Map{
			"i": value.Int(int64(i)),
			"g": value.Int(int64(i % 64)),
		})
	}
	tbl := table.New("x")
	for i := 0; i < 50000; i++ {
		tbl.AppendRow(value.Int(int64(i)))
	}
	queries := []struct {
		name, q string
		t0      *table.Table
	}{
		{"match-filter-project", `MATCH (u:U) WITH u.i AS i WHERE i % 3 = 0 RETURN i % 7 AS r, i`, nil},
		{"table-filter-project", `WITH x WHERE x % 2 = 0 RETURN x % 997 AS r, x`, tbl},
		{"table-distinct", `RETURN DISTINCT x % 512 AS r`, tbl},
	}
	execs := []struct {
		name string
		ex   core.Executor
	}{
		{"batched", core.ExecStreaming},
		{"row-at-a-time", core.ExecStreamingRows},
	}
	for _, q := range queries {
		for _, e := range execs {
			b.Run(fmt.Sprintf("%s/%s/nodes=%d", q.name, e.name, n), func(b *testing.B) {
				cfg := core.Config{Dialect: core.DialectRevised, Executor: e.ex}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					execBench(b, cfg, g, q.q, q.t0)
				}
			})
		}
	}
}

// B17: barrier-heavy pipelines (ORDER BY over everything, then a
// high-cardinality aggregation) whose working set exceeds a small
// memory budget. The budgeted run spills sorted runs and hash
// partitions to temp files; the benchmark first asserts its output is
// bit-identical to the unlimited in-memory run, then measures the cost
// of bounded peak memory.
func BenchmarkB17SpillingBarriers(b *testing.B) {
	const n = 30000
	g := graph.New()
	for i := 0; i < n; i++ {
		g.CreateNode([]string{"E"}, value.Map{
			"i": value.Int(int64(i)),
			"k": value.Int(int64((i * 7919) % n)), // high-cardinality group key
		})
	}
	query := `MATCH (e:E) WITH e.k AS k, e.i AS i ORDER BY k DESC, i RETURN k % 1000 AS bucket, count(*) AS c, min(i) AS lo ORDER BY bucket`
	budgets := []struct {
		name   string
		budget int64
	}{
		{"unlimited", 0},
		{"budget=256KB", 256 << 10},
		{"budget=64KB", 64 << 10},
	}
	render := func(cfg core.Config) string {
		res := execBench(b, cfg, g, query, nil)
		return res.Table.String()
	}
	want := render(core.Config{Dialect: core.DialectRevised})
	for _, c := range budgets[1:] {
		if got := render(core.Config{Dialect: core.DialectRevised, MemoryBudget: c.budget}); got != want {
			b.Fatalf("%s output diverges from unlimited run", c.name)
		}
	}
	for _, c := range budgets {
		b.Run(fmt.Sprintf("%s/nodes=%d", c.name, n), func(b *testing.B) {
			cfg := core.Config{Dialect: core.DialectRevised, MemoryBudget: c.budget}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				execBench(b, cfg, g, query, nil)
			}
		})
	}
}

// B18: durable commit latency. The same small write transaction
// against the in-memory store and against WAL-backed stores in each
// sync mode: no sync (crash loses the tail), grouped fsync every 2ms
// (bounded loss window, amortized sync), and fsync-per-commit (the
// durability contract, dominated by the disk's flush latency).
func BenchmarkB18DurableCommit(b *testing.B) {
	smallTxn := func(b *testing.B, g *graph.Graph, i int) {
		b.Helper()
		n := g.CreateNode([]string{"User"}, value.Map{"id": value.Int(int64(i))})
		m := g.CreateNode([]string{"User"}, value.Map{"id": value.Int(int64(-i))})
		if _, err := g.CreateRel(n.ID, m.ID, "KNOWS", nil); err != nil {
			b.Fatal(err)
		}
	}
	run := func(b *testing.B, st *graph.Store) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w := st.BeginWrite()
			smallTxn(b, w.Graph(), i)
			if _, err := w.Commit(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("memory", func(b *testing.B) {
		run(b, graph.NewStore(graph.New()))
	})
	for _, mode := range []struct {
		name string
		d    graph.Durability
	}{
		{"wal-sync-never", graph.Durability{Sync: graph.SyncNever}},
		{"wal-sync-2ms", graph.Durability{Sync: graph.SyncInterval, SyncEvery: 2 * time.Millisecond}},
		{"wal-sync-always", graph.Durability{Sync: graph.SyncAlways}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			st, wal, err := graph.Recover(b.TempDir(), mode.d)
			if err != nil {
				b.Fatal(err)
			}
			run(b, st)
			b.StopTimer()
			if err := wal.Close(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// B19: morsel-parallel read scaling. Two read pipelines over a 100k-
// node graph — a scan-filter-aggregate and a relationship-expanding
// match-filter — at explicit worker degrees 1, 2, 4 and 8, so one run
// records the whole scaling curve (the degree is the engine's worker-
// pool size, not GOMAXPROCS; pass -cpu to scale the hardware too).
// Before timing, every parallel degree's output is asserted
// bit-identical to the serial run. par=1 measures the exchange-free
// serial plan, i.e. the overhead baseline.
func BenchmarkB19ParallelScaling(b *testing.B) {
	const n = 100000
	g := graph.New()
	ids := make([]graph.NodeID, n)
	for i := 0; i < n; i++ {
		nd := g.CreateNode([]string{"U"}, value.Map{
			"i": value.Int(int64(i)),
			"g": value.Int(int64(i % 64)),
		})
		ids[i] = nd.ID
	}
	for i := 0; i < n; i++ {
		if _, err := g.CreateRel(ids[i], ids[(i+1)%n], "F", nil); err != nil {
			b.Fatal(err)
		}
		if i%5 == 0 {
			if _, err := g.CreateRel(ids[i], ids[(i*7919+13)%n], "F", nil); err != nil {
				b.Fatal(err)
			}
		}
	}
	queries := []struct{ name, q string }{
		{"scan-filter-aggregate", `MATCH (u:U) WHERE u.i % 3 = 0 RETURN u.g AS g, count(*) AS c, min(u.i) AS lo`},
		{"match-heavy", `MATCH (u:U)-[:F]->(v:U) WHERE v.i % 17 = 0 AND u.i < v.i RETURN u.g AS a, count(*) AS c`},
	}
	for _, q := range queries {
		want := execBench(b, core.Config{Dialect: core.DialectRevised, Parallelism: 1}, g, q.q, nil).Table.String()
		for _, par := range []int{2, 4, 8} {
			cfg := core.Config{Dialect: core.DialectRevised, Parallelism: par}
			if got := execBench(b, cfg, g, q.q, nil).Table.String(); got != want {
				b.Fatalf("%s par=%d output diverges from serial", q.name, par)
			}
		}
		for _, par := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/par=%d/nodes=%d", q.name, par, n), func(b *testing.B) {
				cfg := core.Config{Dialect: core.DialectRevised, Parallelism: par}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					execBench(b, cfg, g, q.q, nil)
				}
			})
		}
	}
}

func BenchmarkB20ServerConcurrentClients(b *testing.B) {
	const n = 20000
	db := cypher.Open()
	if _, err := db.Exec(`UNWIND range(0, `+fmt.Sprint(n-1)+`) AS i CREATE (:User{id:i, name:'u'})`, nil); err != nil {
		b.Fatal(err)
	}
	if _, err := db.Exec(`CREATE INDEX ON :User(id)`, nil); err != nil {
		b.Fatal(err)
	}
	srv := server.New(db, server.Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			b.Fatal(err)
		}
		<-done
	}()
	addr := ln.Addr().String()

	const q = `MATCH (u:User{id:$i}) RETURN u.name AS name`
	for _, clients := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("clients=%d/nodes=%d", clients, n), func(b *testing.B) {
			conns := make([]*cypherclient.Conn, clients)
			for i := range conns {
				c, err := cypherclient.Dial(addr)
				if err != nil {
					b.Fatal(err)
				}
				defer c.Close()
				conns[i] = c
			}
			before := db.CacheStats()
			var next atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			start := time.Now()
			var wg sync.WaitGroup
			for _, c := range conns {
				wg.Add(1)
				go func(c *cypherclient.Conn) {
					defer wg.Done()
					for {
						op := next.Add(1) - 1
						if op >= int64(b.N) {
							return
						}
						res, err := c.Exec(q, map[string]any{"i": op * 7919 % n})
						if err != nil {
							b.Error(err)
							return
						}
						if len(res.Rows) != 1 {
							b.Errorf("op %d: %d rows", op, len(res.Rows))
							return
						}
					}
				}(c)
			}
			wg.Wait()
			b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "qps")
			b.StopTimer()
			// The whole point of the engine-level cache: concurrent
			// sessions running the same text plan once and hit after.
			after := db.CacheStats()
			if b.N > 1 && after.Plan.Hits <= before.Plan.Hits {
				b.Fatalf("no cross-session plan-cache hits: %+v -> %+v", before.Plan, after.Plan)
			}
			if b.N > 1 && after.StmtHits <= before.StmtHits {
				b.Fatalf("no cross-session statement-cache hits: %+v -> %+v", before, after)
			}
		})
	}
}

// B21: expression-heavy read pipelines over 100k rows — string and
// list functions (split, reduce, size, toUpper) in the projection, a
// registry-gated conjunct pair in the WHERE. Two axes:
//
//   - folded vs unfolded: the filter threshold is a parameter-free
//     pure subtree (size of a literal string) in the folded variants,
//     so the planner collapses it to a constant at plan time; the
//     unfolded variants route the same value through a parameter,
//     which folding never touches, so the subtree re-evaluates on
//     every row.
//   - pushdown vs deferred: the cost-based planner pushes the
//     pure+total conjuncts (exists above all) into the scan; the
//     left-to-right planner defers the whole WHERE to a post-match
//     filter.
func BenchmarkB21ExpressionPipeline(b *testing.B) {
	const n = 100000
	g := graph.New()
	tags := []string{"alpha,beta", "gamma", "delta,epsilon,zeta", "eta,theta"}
	for i := 0; i < n; i++ {
		g.CreateNode([]string{"R"}, value.Map{
			"v":   value.Int(int64(i)),
			"tag": value.String(tags[i%len(tags)]),
		})
	}
	const body = ` RETURN sum(reduce(s = 0, w IN split(r.tag, ',') | s + size(w))) AS letters,
	       count(*) AS n`
	const foldedQ = `MATCH (r:R) WHERE exists(r.tag) AND r.v % size('abcdefghij') = 0` + body
	const unfoldedQ = `MATCH (r:R) WHERE exists(r.tag) AND r.v % size($s) = 0` + body
	params := map[string]value.Value{"s": value.String("abcdefghij")}

	for _, c := range []struct {
		name    string
		query   string
		params  map[string]value.Value
		planner core.PlannerMode
	}{
		{"folded/pushdown", foldedQ, nil, core.PlannerCostBased},
		{"unfolded/pushdown", unfoldedQ, params, core.PlannerCostBased},
		{"folded/deferred", foldedQ, nil, core.PlannerLeftToRight},
		{"unfolded/deferred", unfoldedQ, params, core.PlannerLeftToRight},
	} {
		cfg := core.Config{Dialect: core.DialectRevised, Planner: c.planner}
		stmt, err := parser.Parse(c.query)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(c.name+fmt.Sprintf("/rows=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := core.NewEngine(cfg).ExecuteStatement(g, stmt, c.params)
				if err != nil {
					b.Fatal(err)
				}
				if cnt, _ := value.AsInt(res.Table.Get(0, "n")); cnt != n/10 {
					b.Fatalf("count = %v, want %d", res.Table.Get(0, "n"), n/10)
				}
			}
		})
	}
}

// Sanity checks keep the benchmark inputs honest (run under `go test`).
func TestBenchWorkloadsAreValid(t *testing.T) {
	tbl := workload.DefaultOrderImport(100).Build()
	if tbl.Len() != 100 {
		t.Fatal("order import rows")
	}
	g := graph.New()
	stmt, err := parser.Parse(importQuerySame)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.NewEngine(core.Config{Dialect: core.DialectRevised}).
		ExecuteWithTable(g, stmt, nil, tbl)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.NodesCreated == 0 {
		t.Fatal("import created nothing")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Imported ids must be unique per label under MERGE SAME.
	seen := map[string]bool{}
	for _, id := range g.NodeIDs() {
		n := g.Node(id)
		key := fmt.Sprint(n.SortedLabels(), value.MapKey(n.PropMap()))
		if seen[key] {
			t.Fatalf("duplicate collapsed node %s", key)
		}
		seen[key] = true
	}
}
