// An inventory/import workload for the revised dialect, in the spirit
// of the paper's Example 5 bulk import: MERGE ALL for per-record
// inserts, MERGE SAME for deduplicated dimension nodes.

UNWIND [
  {sku:'A-1', name:'bolt',   bin:'N1', qty:120},
  {sku:'A-2', name:'nut',    bin:'N1', qty:300},
  {sku:'B-1', name:'washer', bin:'S4', qty:80},
  {sku:'B-2', name:'screw',  bin:'S4', qty:200}
] AS row
MERGE SAME (:Item{sku:row.sku, name:row.name})-[:STORED_IN]->(:Bin{code:row.bin});

// A property index turns the per-row sku lookups below into index
// seeks (EXPLAIN shows anchor=[index-seek(:Item.sku)]); it is
// maintained incrementally under every later update in this script.
CREATE INDEX ON :Item(sku);

// Quantities arrive separately; atomic SET applies them in one step.
UNWIND [
  {sku:'A-1', qty:120}, {sku:'A-2', qty:300},
  {sku:'B-1', qty:80},  {sku:'B-2', qty:200}
] AS row
MATCH (i:Item{sku:row.sku})
SET i.qty = row.qty;

// Restock low items (MERGE ALL: one restock order per failing record).
MATCH (i:Item)
WITH i WHERE i.qty < 100
MERGE ALL (i)-[:NEEDS]->(:Restock{open:true});

// Bin occupancy report.
MATCH (b:Bin)<-[:STORED_IN]-(i:Item)
RETURN b.code AS bin, count(i) AS items, sum(i.qty) AS units
ORDER BY bin;
