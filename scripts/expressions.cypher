// An expression-heavy workload for the revised dialect: the function
// registry (strings, numerics, lists, temporal), list comprehensions,
// both CASE forms and reduce, driven through full read and update
// statements so every executor sweep exercises the whole registry.

UNWIND [
  {handle:'ada',  joined:0,             langs:'ml,logic,math'},
  {handle:'bob',  joined:86400000,      langs:'go'},
  {handle:'cyd',  joined:1566777600000, langs:'cypher,sql,datalog'},
  {handle:'dee',  joined:946684800000,  langs:''}
] AS row
CREATE (:Member{handle:row.handle, joined:row.joined, langs:row.langs});

// String functions compute derived properties; constant subtrees in
// the SET expressions fold at plan time.
MATCH (m:Member)
SET m.display = toUpper(left(m.handle, 1)) + substring(m.handle, 1),
    m.year    = datetime(m.joined).year;

// A searched CASE buckets members; a simple CASE names their cohort.
MATCH (m:Member)
SET m.band = CASE WHEN m.year < 1990 THEN 'epoch'
                  WHEN m.year < 2010 THEN 'early'
                  ELSE 'recent' END,
    m.cohort = CASE m.year WHEN 1970 THEN 'origin' ELSE 'later' END;

// Comprehensions and reduce over the split language lists; the WHERE
// conjuncts here are pure and total, so they are pushed into the
// match and shown under pushed= in EXPLAIN.
MATCH (m:Member)
WHERE exists(m.langs) AND size(m.langs) > 1 + 1
RETURN m.display AS who,
       [l IN split(m.langs, ',') WHERE size(l) > 2 | toUpper(l)] AS langs,
       reduce(s = 0, l IN split(m.langs, ',') | s + size(l)) AS letters
ORDER BY who;

// Numeric and list functions in one projection; every constant
// argument chain folds.
UNWIND range(1, 6) AS i
RETURN i,
       sign(i - 3) AS s,
       round(i / 7.0, 3) AS r,
       tail(range(0, i)) AS t,
       last(range(0, i * size([1, 2]))) AS l
ORDER BY i;

// Null propagation end-to-end: missing properties flow through the
// string family to null, and coalesce recovers.
MATCH (m:Member)
RETURN m.handle AS who,
       coalesce(replace(m.nickname, 'x', 'y'), 'none') AS nick,
       rTrim(lTrim(coalesce(m.nickname, '  pad  '))) AS trimmed
ORDER BY who;

// Case-insensitive function names are part of the language: this
// statement spells the same registry entries three ways.
MATCH (m:Member)
WHERE EXISTS(m.langs) AND TOUPPER(m.handle) <> tOlOwEr(m.handle)
RETURN count(m) AS shouty;

// reverse and right over computed strings, with a quantifier.
MATCH (m:Member)
WHERE all(l IN split(m.langs, ',') WHERE size(l) < 10)
RETURN reverse(m.display) AS rev, right(m.display, 2) AS tail2
ORDER BY rev;
