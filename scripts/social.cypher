// A small social-network workload for the revised (Section 7) dialect:
// atomic SET, strict DELETE with null replacement, and MERGE ALL /
// MERGE SAME instead of the legacy MERGE.

CREATE (:Person{name:'Ada', joined:2019}),
       (:Person{name:'Bob', joined:2020}),
       (:Person{name:'Cay', joined:2021}),
       (:Person{name:'Dan', joined:2021});

MATCH (a:Person{name:'Ada'}), (b:Person{name:'Bob'})
CREATE (a)-[:FOLLOWS{since:2020}]->(b);

MATCH (b:Person{name:'Bob'}), (c:Person{name:'Cay'})
CREATE (b)-[:FOLLOWS{since:2021}]->(c), (c)-[:FOLLOWS{since:2021}]->(b);

// MERGE SAME collapses equal instances: every follower pair gets at
// most one INTERACTED edge even when matched twice.
MATCH (x:Person)-[:FOLLOWS]->(y:Person)
MERGE SAME (x)-[:INTERACTED]->(y);

// Atomic SET: everyone's follower count is computed against the input
// graph, then applied in one step.
MATCH (p:Person)
OPTIONAL MATCH (f:Person)-[:FOLLOWS]->(p)
WITH p, count(f) AS followers
SET p.followers = followers;

// Revised DELETE is strict: detach-delete a leaver, references null out.
MATCH (p:Person{name:'Dan'})
DETACH DELETE p;

MATCH (p:Person)
RETURN p.name AS name, p.followers AS followers
ORDER BY followers DESC, name;
