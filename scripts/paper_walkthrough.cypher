// The running example of "Updating Graph Databases with Cypher"
// (Green et al., PVLDB 2019), Sections 2-3: the Figure 1 marketplace
// graph and Queries (1)-(5). Intended dialect: cypher9 (the legacy
// semantics the paper walks through). Final state: 7 nodes / 7 rels,
// two :Vendor nodes (v2 added by Query (5)).

// Figure 1, solid lines: one vendor, three products, two users.
CREATE (v1:Vendor{id:60, name:'cStore'}),
       (p1:Product{id:125, name:'laptop'}),
       (p2:Product{id:125, name:'notebook'}),
       (u1:User{id:89, name:'Bob'}),
       (u2:User{id:99, name:'Jane'}),
       (p3:Product{id:85, name:'tablet'}),
       (v1)-[:OFFERS]->(p1),
       (v1)-[:OFFERS]->(p2),
       (u1)-[:ORDERED]->(p1),
       (u1)-[:ORDERED]->(p3),
       (u2)-[:ORDERED]->(p3),
       (u2)-[:ORDERED]->(p2);

// Query (1): vendors offering the laptop together with another product.
MATCH (p:Product)<-[:OFFERS]-(v:Vendor)-[:OFFERS]->(q:Product)
WHERE p.name = 'laptop'
RETURN v;

// Query (2): Bob orders a new product (dotted additions of Figure 1).
MATCH (u:User{id:89})
CREATE (u)-[:ORDERED]->(:New_Product{id:0});

// Query (3): promote the placeholder to a real product.
MATCH (p:New_Product{id:0})
SET p:Product, p.id = 120, p.name = 'smartphone'
REMOVE p:New_Product;

// Deleting the attached product requires deleting its relationship too
// (plain DELETE of just the node "would fail", Section 3).
MATCH ()-[rel]->(p:Product{id:120})
DELETE rel, p;

// Query (4): the same removal via DETACH DELETE.
MATCH (u:User{id:89})
CREATE (u)-[:ORDERED]->(:Product{id:120});
MATCH (p:Product{id:120})
DETACH DELETE p;

// Query (5): ensure every product has a vendor — the legacy MERGE
// creates a fresh :Vendor (v2) with an OFFERS relationship for the
// unoffered tablet.
MATCH (p:Product)
MERGE (p)<-[:OFFERS]-(v:Vendor)
RETURN p, v;
