package cypher

import (
	"fmt"
	"testing"
)

// must executes a statement and fails the test on error.
func must(t *testing.T, db *DB, q string, params map[string]any) *Result {
	t.Helper()
	res, err := db.Exec(q, params)
	if err != nil {
		t.Fatalf("%s\n-> %v", q, err)
	}
	return res
}

// A social-network lifecycle: build, query, evolve, prune — exercising
// most clauses through the public API in one coherent scenario.
func TestIntegrationSocialNetwork(t *testing.T) {
	db := Open()

	// Bulk-create people and friendships.
	must(t, db, `
		UNWIND range(1, 20) AS i
		CREATE (:Person{id: i, name: 'person-' + toString(i), active: i % 3 <> 0})`, nil)
	must(t, db, `
		MATCH (a:Person), (b:Person)
		WHERE a.id < b.id AND b.id - a.id <= 2
		MERGE SAME (a)-[:FRIEND]->(b)`, nil)

	res := must(t, db, `MATCH (:Person)-[f:FRIEND]->(:Person) RETURN count(f) AS c`, nil)
	friends := res.Row(0)["c"].String()
	if friends != "37" { // 19 pairs at distance 1 + 18 at distance 2
		t.Errorf("friendships = %s, want 37", friends)
	}

	// Friends-of-friends via variable-length paths.
	res = must(t, db, `
		MATCH (p:Person{id:1})-[:FRIEND*1..2]->(q:Person)
		RETURN count(DISTINCT q) AS reach`, nil)
	if res.Row(0)["reach"].String() != "4" { // ids 2,3,4,5
		t.Errorf("reach = %v", res.Row(0)["reach"])
	}

	// Aggregate per activity flag.
	res = must(t, db, `
		MATCH (p:Person)
		RETURN p.active AS active, count(*) AS c ORDER BY active`, nil)
	if res.NumRows() != 2 {
		t.Fatalf("groups = %d", res.NumRows())
	}

	// Deactivate a range atomically, then prune inactive people.
	must(t, db, `MATCH (p:Person) WHERE p.id > 15 SET p.active = false`, nil)
	res = must(t, db, `MATCH (p:Person{active: false}) DETACH DELETE p RETURN count(*) AS gone`, nil)
	if db.NumNodes() != 20-res.Stats().NodesDeleted {
		t.Errorf("node accounting: %d left, %d deleted", db.NumNodes(), res.Stats().NodesDeleted)
	}
	// Graph invariant holds.
	if err := db.Exec2Validate(); err != nil {
		t.Error(err)
	}
}

// Exec2Validate re-checks the structural invariant from the outside.
func (db *DB) Exec2Validate() error {
	snap := db.store.Acquire()
	defer snap.Release()
	return snap.Graph().Validate()
}

// An inventory/orders scenario mirroring the paper's marketplace at a
// slightly larger scale, driven entirely by Cypher statements.
func TestIntegrationMarketplace(t *testing.T) {
	db := Open()

	// Catalog.
	for i := 1; i <= 10; i++ {
		must(t, db, `CREATE (:Product{id: $id, name: $name, price: $price})`, map[string]any{
			"id": i, "name": fmt.Sprintf("product-%d", i), "price": float64(i) * 2.5,
		})
	}
	must(t, db, `
		UNWIND range(1, 3) AS v
		CREATE (:Vendor{id: v, name: 'vendor-' + toString(v)})`, nil)
	// Vendors offer products deterministically: vendor v offers products
	// with id % 3 == v % 3.
	must(t, db, `
		MATCH (v:Vendor), (p:Product)
		WHERE p.id % 3 = v.id % 3
		MERGE SAME (v)-[:OFFERS]->(p)`, nil)

	// Every product must have a vendor — the Query (5) idiom, revised:
	// first check which products lack vendors.
	res := must(t, db, `
		MATCH (p:Product)
		OPTIONAL MATCH (p)<-[:OFFERS]-(v:Vendor)
		WITH p, count(v) AS vendors WHERE vendors = 0
		RETURN count(p) AS uncovered`, nil)
	if res.Row(0)["uncovered"].String() != "0" {
		t.Errorf("uncovered products = %v", res.Row(0)["uncovered"])
	}

	// Orders via a driving table. First the WRONG way, pinned: merging
	// the whole path creates duplicate Product nodes carrying only the
	// id, because the pattern as a whole has no match — exactly the
	// "unintended creation of duplicate nodes" the paper's user survey
	// identifies as the dominant MERGE error (Section 5).
	naive := db.Snapshot()
	orders := NewTable("uid", "pid")
	for i := 0; i < 30; i++ {
		orders.Append(i%5+1, i%10+1)
	}
	if _, err := naive.ExecTable(`
		MERGE SAME (:User{id: uid})-[:ORDERED]->(p:Product{id: pid})`, orders, nil); err != nil {
		t.Fatal(err)
	}
	res = must(t, naive, `MATCH (p:Product) WHERE p.name IS NULL RETURN count(*) AS dups`, nil)
	if res.Row(0)["dups"].String() != "10" {
		t.Errorf("duplicate products = %v, want 10 (the Section 5 pitfall)", res.Row(0)["dups"])
	}

	// The correct idiom the paper reports from practice: "input nodes
	// first and relationships later" (Section 5).
	if _, err := db.ExecTable(`MERGE SAME (:User{id: uid})`, orders, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := db.ExecTable(`
		MATCH (u:User{id: uid}), (p:Product{id: pid})
		MERGE SAME (u)-[:ORDERED]->(p)`, orders, nil); err != nil {
		t.Fatal(err)
	}
	res = must(t, db, `MATCH (u:User) RETURN count(*) AS users`, nil)
	if res.Row(0)["users"].String() != "5" {
		t.Errorf("users = %v", res.Row(0)["users"])
	}
	// User u orders products u and u+5: two distinct products each,
	// deduplicated by MERGE SAME.
	res = must(t, db, `
		MATCH (u:User)-[:ORDERED]->(p:Product)
		RETURN u.id AS uid, count(p) AS k ORDER BY uid`, nil)
	for _, row := range res.Rows() {
		if row["k"].String() != "2" {
			t.Errorf("user %v ordered %v products, want 2", row["uid"], row["k"])
		}
	}

	// Revenue report: top products by total price of orders.
	res = must(t, db, `
		MATCH (:User)-[:ORDERED]->(p:Product)
		RETURN p.name AS name, sum(p.price) AS revenue
		ORDER BY revenue DESC, name LIMIT 3`, nil)
	if res.NumRows() != 3 {
		t.Fatalf("report rows = %d", res.NumRows())
	}
	if res.Row(0)["name"].String() != "'product-10'" {
		t.Errorf("top product = %v", res.Row(0)["name"])
	}
}

// The full Section 3 script through the legacy dialect, then replayed
// under the revised dialect from a snapshot — both must agree on the
// final graph because the script has no cross-record interference.
func TestIntegrationDialectAgreementOnCleanScript(t *testing.T) {
	script := []string{
		`CREATE (v1:Vendor{id:60, name:'cStore'}),
		        (p1:Product{id:125, name:'laptop'}),
		        (p2:Product{id:126, name:'notebook'}),
		        (u1:User{id:89, name:'Bob'}),
		        (v1)-[:OFFERS]->(p1), (v1)-[:OFFERS]->(p2),
		        (u1)-[:ORDERED]->(p1)`,
		`MATCH (u:User{id:89}) CREATE (u)-[:ORDERED]->(:New_Product{id:0})`,
		`MATCH (p:New_Product{id:0})
		 SET p:Product, p.id=120, p.name="smartphone"
		 REMOVE p:New_Product`,
		`MATCH (p:Product{id:120}) DETACH DELETE p`,
	}
	legacy := Open(WithDialect(Cypher9))
	revised := Open(WithDialect(Revised))
	for _, stmt := range script {
		must(t, legacy, stmt, nil)
		must(t, revised, stmt, nil)
	}
	if !SameShape(legacy, revised) {
		t.Error("dialects disagree on an interference-free script")
	}
}

// Failure atomicity at the API level: a long statement that fails late
// must leave the database exactly as before, in both dialects.
func TestIntegrationFailureAtomicity(t *testing.T) {
	for _, d := range []Dialect{Cypher9, Revised} {
		db := Open(WithDialect(d))
		must(t, db, `CREATE (:Base{v:1})-[:T]->(:Base{v:2})`, nil)
		before, _ := db.Exec(`MATCH (n) RETURN count(*) AS c`, nil)

		// The division by zero strikes after the creations.
		_, err := db.Exec(`
			MATCH (b:Base)
			CREATE (b)-[:EXTRA]->(:Junk)
			WITH b
			RETURN 1 / (b.v - b.v) AS boom`, nil)
		if err == nil {
			t.Fatalf("[%v] expected failure", d)
		}
		after, _ := db.Exec(`MATCH (n) RETURN count(*) AS c`, nil)
		if before.Row(0)["c"].String() != after.Row(0)["c"].String() {
			t.Errorf("[%v] failed statement left residue", d)
		}
		if db.NumRels() != 1 {
			t.Errorf("[%v] rels = %d", d, db.NumRels())
		}
	}
}
