package cypher

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestOpenDirRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !db.Durable() {
		t.Fatal("OpenDir database not durable")
	}
	mustExec := func(q string) {
		t.Helper()
		if _, err := db.Exec(q, nil); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}
	mustExec(`CREATE (:User {name: 'ada', score: 1.5})-[:KNOWS {since: 1843}]->(:User {name: 'charles'})`)
	mustExec(`CREATE INDEX ON :User(name)`)
	mustExec(`MATCH (u:User {name: 'charles'}) SET u.score = 2.0`)
	epoch := db.Epoch()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.Epoch() != epoch {
		t.Fatalf("recovered epoch %d, want %d", db2.Epoch(), epoch)
	}
	res, err := db2.Exec(`MATCH (u:User) RETURN u.name, u.score ORDER BY u.name`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 2 || res.Values(0)[0].String() != "'ada'" {
		t.Fatalf("recovered data wrong: %d rows", res.NumRows())
	}
	if len(db2.Indexes()) != 1 {
		t.Fatalf("index definition not recovered: %v", db2.Indexes())
	}
	status, ok := db2.WALStatus()
	if !ok || status.Dir != dir {
		t.Fatalf("WALStatus = %+v, %v", status, ok)
	}
}

func TestOpenDirSyncModes(t *testing.T) {
	for _, d := range []Durability{
		{Sync: SyncAlways},
		{Sync: SyncInterval},
		{Sync: SyncNever},
	} {
		dir := t.TempDir()
		db, err := OpenDir(dir, WithDurability(d))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := db.Exec(`CREATE (:N {m: 'x'})`, nil); err != nil {
			t.Fatal(err)
		}
		if err := db.Close(); err != nil {
			t.Fatalf("sync mode %v: close: %v", d.Sync, err)
		}
		db2, err := OpenDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		if db2.NumNodes() != 1 {
			t.Fatalf("sync mode %v: node lost across clean close", d.Sync)
		}
		db2.Close()
	}
}

func TestCheckpointCompactsAndSurvives(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := db.Exec(`CREATE (:Row {pad: 'xxxxxxxxxxxxxxxxxxxxxxxx'})`, nil); err != nil {
			t.Fatal(err)
		}
	}
	before, _ := db.WALStatus()
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	after, _ := db.WALStatus()
	if after.Checkpoints != before.Checkpoints+1 || after.Bytes >= before.Bytes {
		t.Fatalf("checkpoint did not compact: %+v -> %+v", before, after)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.NumNodes() != 20 {
		t.Fatalf("post-checkpoint recovery lost rows: %d", db2.NumNodes())
	}
}

func TestExplicitTransactionDurability(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	sess := db.Session()
	for _, q := range []string{
		"BEGIN", `CREATE (:Kept {a: 1})`, "COMMIT",
		"BEGIN", `CREATE (:Dropped {b: 2})`, "ROLLBACK",
	} {
		if _, err := sess.Exec(q, nil); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}
	sess.Close()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	res, err := db2.Exec(`MATCH (n) RETURN labels(n)`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 1 || !strings.Contains(res.Values(0)[0].String(), "Kept") {
		t.Fatalf("transaction durability wrong: %d rows", res.NumRows())
	}
}

func TestInMemoryHasNoWAL(t *testing.T) {
	db := Open()
	if db.Durable() {
		t.Fatal("in-memory database claims durability")
	}
	if _, ok := db.WALStatus(); ok {
		t.Fatal("in-memory database reports a WAL status")
	}
	if err := db.Checkpoint(); err == nil {
		t.Fatal("in-memory Checkpoint did not error")
	}
	if err := db.Close(); err != nil {
		t.Fatalf("in-memory Close: %v", err)
	}
}

func TestSaveFileAtomic(t *testing.T) {
	db := Open()
	if _, err := db.Exec(`CREATE (:A {x: 1})`, nil); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "graph.json")
	if err := db.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	first, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Overwrite in place: still atomic, still loadable.
	if _, err := db.Exec(`CREATE (:B {y: 2})`, nil); err != nil {
		t.Fatal(err)
	}
	if err := db.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	second, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(first) == string(second) {
		t.Fatal("second save did not change the file")
	}
	data, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	db2, err := Load(data)
	data.Close()
	if err != nil {
		t.Fatal(err)
	}
	if db2.NumNodes() != 2 {
		t.Fatalf("loaded %d nodes, want 2", db2.NumNodes())
	}
	// Saving into a directory that does not exist fails without
	// touching the existing file or leaving temp litter.
	if err := db.SaveFile(filepath.Join(dir, "missing", "graph.json")); err == nil {
		t.Fatal("SaveFile into a missing directory did not error")
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(second) {
		t.Fatal("failed save clobbered the existing file")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("temp litter left behind: %v", entries)
	}
}
