package cypher

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// TestIndexEndToEnd drives the acceptance scenario through the public
// API: CREATE INDEX, an equality MATCH whose EXPLAIN shows an
// index-seek anchor, DROP INDEX turning the same plan back into a plain
// scan, with identical results either way.
func TestIndexEndToEnd(t *testing.T) {
	db := Open()
	if _, err := db.Exec(`UNWIND range(1, 200) AS i CREATE (:User{id:i, name:'u'})`, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`CREATE INDEX ON :User(id)`, nil); err != nil {
		t.Fatal(err)
	}
	if got := db.Indexes(); !reflect.DeepEqual(got, []IndexView{{Label: "User", Prop: "id"}}) {
		t.Fatalf("Indexes() = %v", got)
	}

	const q = `MATCH (u:User) WHERE u.id = 137 RETURN u.id AS id`
	plan, err := db.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "index-seek(:User.id)") {
		t.Fatalf("EXPLAIN with index missing index-seek:\n%s", plan)
	}
	withIndex, err := db.Exec(q, nil)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := db.Exec(`DROP INDEX ON :User(id)`, nil); err != nil {
		t.Fatal(err)
	}
	if got := db.Indexes(); len(got) != 0 {
		t.Fatalf("Indexes() after drop = %v", got)
	}
	plan, err = db.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plan, "index-seek") {
		t.Fatalf("EXPLAIN after DROP INDEX still seeks:\n%s", plan)
	}
	withoutIndex, err := db.Exec(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(withIndex.Rows(), withoutIndex.Rows()) {
		t.Fatalf("results diverged: %v vs %v", withIndex.Rows(), withoutIndex.Rows())
	}
	if withIndex.NumRows() != 1 {
		t.Fatalf("expected one row, got %d", withIndex.NumRows())
	}
}

// TestIndexExplicitTransactionRollback: CREATE INDEX inside an explicit
// transaction is visible to the transaction's own statements, invisible
// to other sessions, and ROLLBACK leaves the committed epoch without it
// — identical to never having run.
func TestIndexExplicitTransactionRollback(t *testing.T) {
	db := Open()
	if _, err := db.Exec(`UNWIND range(1, 50) AS i CREATE (:User{id:i})`, nil); err != nil {
		t.Fatal(err)
	}
	sess := db.Session()
	defer sess.Close()

	if _, err := sess.Exec(`BEGIN`, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Exec(`CREATE INDEX ON :User(id)`, nil); err != nil {
		t.Fatal(err)
	}
	if got := sess.Indexes(); len(got) != 1 {
		t.Fatalf("transaction does not see its own index: %v", got)
	}
	if got := db.Indexes(); len(got) != 0 {
		t.Fatalf("uncommitted index leaked to the committed epoch: %v", got)
	}
	plan, err := sess.Explain(`MATCH (u:User{id:7}) RETURN u.id AS id`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "index-seek(:User.id)") {
		t.Fatalf("in-transaction EXPLAIN missing index-seek:\n%s", plan)
	}
	if _, err := sess.Exec(`ROLLBACK`, nil); err != nil {
		t.Fatal(err)
	}
	if got := db.Indexes(); len(got) != 0 {
		t.Fatalf("rolled-back index survived: %v", got)
	}
	if got := sess.Indexes(); len(got) != 0 {
		t.Fatalf("session still sees rolled-back index: %v", got)
	}

	// And the commit path publishes it.
	if _, err := sess.Exec(`BEGIN`, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Exec(`CREATE INDEX ON :User(id)`, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Exec(`COMMIT`, nil); err != nil {
		t.Fatal(err)
	}
	if got := db.Indexes(); len(got) != 1 {
		t.Fatalf("committed index not published: %v", got)
	}
}

// TestIndexStatementLevelRollback: a failing statement inside an open
// transaction rolls back to its journal mark; index maintenance must be
// undone with it, leaving lookups identical to never having run the
// statement.
func TestIndexStatementLevelRollback(t *testing.T) {
	db := Open()
	if _, err := db.Exec(`CREATE INDEX ON :User(id)`, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`UNWIND range(1, 20) AS i CREATE (:User{id:i})`, nil); err != nil {
		t.Fatal(err)
	}
	sess := db.Session()
	defer sess.Close()
	if _, err := sess.Exec(`BEGIN`, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Exec(`CREATE (:User{id:100})`, nil); err != nil {
		t.Fatal(err)
	}
	// The statement creates an indexed node, then errors: its index
	// entries must vanish with the rollback while id:100 stays.
	if _, err := sess.Exec(`CREATE (:User{id:200}) WITH 1 AS one MATCH (u:User) WHERE u.id/0 = 1 RETURN one`, nil); err == nil {
		t.Fatal("expected division error")
	}
	if !sess.InTransaction() {
		t.Fatal("failed statement closed the transaction")
	}
	count := func(q string) int {
		res, err := sess.Exec(q, nil)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		return res.NumRows()
	}
	if got := count(`MATCH (u:User) WHERE u.id = 200 RETURN u`); got != 0 {
		t.Fatalf("rolled-back node still found via index: %d rows", got)
	}
	if got := count(`MATCH (u:User) WHERE u.id = 100 RETURN u`); got != 1 {
		t.Fatalf("pre-mark node lost: %d rows", got)
	}
	if _, err := sess.Exec(`COMMIT`, nil); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec(`MATCH (u:User) WHERE u.id = 100 RETURN u.id AS id`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 1 {
		t.Fatalf("committed node not visible: %d rows", res.NumRows())
	}
}

// TestIndexSaveLoadRoundTrip: Save serializes index definitions and
// Load rebuilds their contents.
func TestIndexSaveLoadRoundTrip(t *testing.T) {
	db := Open()
	if _, err := db.Exec(`UNWIND range(1, 30) AS i CREATE (:User{id:i})`, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`CREATE INDEX ON :User(id)`, nil); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	db2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := db2.Indexes(); !reflect.DeepEqual(got, []IndexView{{Label: "User", Prop: "id"}}) {
		t.Fatalf("loaded Indexes() = %v", got)
	}
	plan, err := db2.Explain(`MATCH (u:User{id:3}) RETURN u.id AS id`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "index-seek(:User.id)") {
		t.Fatalf("loaded database does not seek:\n%s", plan)
	}
	res, err := db2.Exec(`MATCH (u:User{id:3}) RETURN u.id AS id`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 1 {
		t.Fatalf("loaded index returned %d rows", res.NumRows())
	}
}
