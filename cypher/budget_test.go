package cypher

import (
	"reflect"
	"strings"
	"testing"
)

// TestWithMemoryBudgetSpillsIdentically opens the same graph with and
// without a memory budget and requires identical query output — the
// budget changes where barriers hold rows (disk vs memory), never what
// they produce.
func TestWithMemoryBudgetSpillsIdentically(t *testing.T) {
	db := Open()
	if _, err := db.Exec(`UNWIND range(0, 300) AS i CREATE (:N{i:i, g:i % 11})`, nil); err != nil {
		t.Fatal(err)
	}
	tiny := db.Snapshot(WithMemoryBudget(1))
	q := `MATCH (a:N) RETURN a.g AS g, count(*) AS c ORDER BY g DESC`
	want, err := db.Exec(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := tiny.Exec(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Rows(), want.Rows()) {
		t.Errorf("budgeted result diverges:\n%v\nvs\n%v", got.Rows(), want.Rows())
	}
	// EXPLAIN surfaces the effective budget.
	out, err := tiny.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "budget=1 bytes") {
		t.Errorf("explain header missing budget:\n%s", out)
	}
}

// TestProfileAnnotatesPlan checks DB.Profile executes the statement and
// returns the counter-annotated plan, and that Session.Profile sees an
// open transaction's writes.
func TestProfileAnnotatesPlan(t *testing.T) {
	db := Open(WithMemoryBudget(1))
	if _, err := db.Exec(`UNWIND range(0, 50) AS i CREATE (:N{i:i})`, nil); err != nil {
		t.Fatal(err)
	}
	res, planText, err := db.Profile(`MATCH (a:N) RETURN a.i AS i ORDER BY i LIMIT 4`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 4 {
		t.Fatalf("rows = %d, want 4", res.NumRows())
	}
	if !strings.Contains(planText, "rows=") || !strings.Contains(planText, "spill-runs=") {
		t.Errorf("profile plan lacks counters:\n%s", planText)
	}

	sess := db.Session()
	defer sess.Close()
	if err := sess.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Exec(`CREATE (:N{i:999})`, nil); err != nil {
		t.Fatal(err)
	}
	res, _, err = sess.Profile(`MATCH (a:N{i:999}) RETURN a.i AS i`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 1 {
		t.Errorf("profile inside txn saw %d rows, want the uncommitted write", res.NumRows())
	}
	if err := sess.Rollback(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.Profile(`BEGIN`, nil); err == nil {
		t.Error("profiling BEGIN must be rejected")
	}
}
