package cypher

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestSessionTransactionLifecycle(t *testing.T) {
	db := Open()
	sess := db.Session()
	defer sess.Close()

	if _, err := sess.Exec(`BEGIN`, nil); err != nil {
		t.Fatal(err)
	}
	if !sess.InTransaction() {
		t.Fatal("not in transaction after BEGIN")
	}
	if _, err := sess.Exec(`CREATE (:U{id:1})-[:KNOWS]->(:U{id:2})`, nil); err != nil {
		t.Fatal(err)
	}
	// The transaction reads its own writes; the DB reads committed state.
	res, err := sess.Exec(`MATCH (u:U) RETURN count(*) AS c`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c := res.Row(0)["c"].String(); c != "2" {
		t.Errorf("txn sees %s :U nodes, want 2", c)
	}
	if db.NumNodes() != 0 {
		t.Errorf("DB sees %d uncommitted nodes", db.NumNodes())
	}
	stats, err := sess.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if stats.NodesCreated != 2 || stats.RelsCreated != 1 {
		t.Errorf("commit stats = %+v", stats)
	}
	if db.NumNodes() != 2 {
		t.Errorf("DB sees %d nodes post-commit, want 2", db.NumNodes())
	}

	// Programmatic Begin/Rollback.
	if err := sess.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Exec(`MATCH (u:U) DETACH DELETE u`, nil); err != nil {
		t.Fatal(err)
	}
	if err := sess.Rollback(); err != nil {
		t.Fatal(err)
	}
	if db.NumNodes() != 2 {
		t.Errorf("rollback lost committed nodes: %d", db.NumNodes())
	}

	// Epochs advance per transaction.
	if db.Epoch() < 2 {
		t.Errorf("epoch = %d after two transactions", db.Epoch())
	}
}

func TestDBExecRejectsTxnControl(t *testing.T) {
	db := Open()
	for _, q := range []string{"BEGIN", "COMMIT", "ROLLBACK"} {
		_, err := db.Exec(q, nil)
		if err == nil || !strings.Contains(err.Error(), "Session") {
			t.Errorf("DB.Exec(%s) = %v, want session-required error", q, err)
		}
	}
}

func TestSessionExplainShowsTxnBoundaries(t *testing.T) {
	db := Open()
	sess := db.Session()
	defer sess.Close()
	out, err := sess.Explain(`MATCH (n) RETURN n`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "pinned snapshot") {
		t.Errorf("read explain:\n%s", out)
	}
	out, err = db.Explain(`CREATE (:X)`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "writer lock") || !strings.Contains(out, "[barrier:writer-lock]") {
		t.Errorf("write explain:\n%s", out)
	}
}

// TestConcurrentReadersSingleWriter is the snapshot-isolation stress
// test: 8 goroutine readers stream B5-style match+aggregate queries
// while one writer commits and rolls back multi-statement transactions.
// The committed invariant is "every :Vendor has exactly fanout OFFERS";
// the writer deliberately transits states that violate it (vendor
// created in one statement, offers in later ones, and some transactions
// abandoned half-way), so any reader observing a violation has seen a
// torn, non-snapshot state.
func TestConcurrentReadersSingleWriter(t *testing.T) {
	const (
		readers         = 8
		checksPerReader = 12
		fanout          = 4
	)
	db := Open()
	var (
		wg        sync.WaitGroup
		done      atomic.Bool
		committed atomic.Int64
		checks    atomic.Int64
	)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < checksPerReader; k++ {
				// Per-vendor offer degree: must be exactly fanout for
				// every vendor in any committed snapshot.
				res, err := db.Exec(`
					MATCH (v:Vendor)
					OPTIONAL MATCH (v)-[:OFFERS]->(p:Product)
					RETURN v.id AS id, count(p) AS deg`, nil)
				if err != nil {
					t.Errorf("reader: %v", err)
					return
				}
				for i := 0; i < res.NumRows(); i++ {
					row := res.Row(i)
					if deg := row["deg"].String(); deg != fmt.Sprint(fanout) {
						t.Errorf("torn snapshot: vendor %s has %s offers, want %d", row["id"], deg, fanout)
						return
					}
				}
				if int64(res.NumRows()) > committed.Load() {
					// committed is incremented after COMMIT returns, so a
					// reader may briefly see MORE vendors than the counter
					// — but only by the single in-flight transaction.
					if int64(res.NumRows()) > committed.Load()+1 {
						t.Errorf("reader saw %d vendors, committed %d", res.NumRows(), committed.Load())
						return
					}
				}
				checks.Add(1)
			}
		}()
	}

	go func() {
		wg.Wait()
		done.Store(true)
	}()

	// The writer keeps committing/rolling back transactions until every
	// reader has finished its checks, so the two sides genuinely
	// overlap regardless of scheduling.
	sess := db.Session()
	defer sess.Close()
	rolledBack := 0
	for i := 0; !done.Load(); i++ {
		if _, err := sess.Exec(`BEGIN`, nil); err != nil {
			t.Fatal(err)
		}
		// Statement 1: a vendor with no offers yet — a state that
		// violates the committed invariant until statement 2 lands.
		if _, err := sess.Exec(`CREATE (:Vendor{id:$id})`, map[string]any{"id": i}); err != nil {
			t.Fatal(err)
		}
		rollingBack := i%4 == 3
		n := fanout
		if rollingBack {
			n = fanout / 2 // abandon half-way: never visible at all
		}
		if _, err := sess.Exec(`
			MATCH (v:Vendor{id:$id})
			UNWIND range(1, $n) AS k
			CREATE (v)-[:OFFERS]->(:Product{vid:$id, k:k})`,
			map[string]any{"id": i, "n": n}); err != nil {
			t.Fatal(err)
		}
		if rollingBack {
			if _, err := sess.Exec(`ROLLBACK`, nil); err != nil {
				t.Fatal(err)
			}
			rolledBack++
		} else {
			if _, err := sess.Exec(`COMMIT`, nil); err != nil {
				t.Fatal(err)
			}
			committed.Add(1)
		}
	}
	wg.Wait()

	if checks.Load() != readers*checksPerReader {
		t.Fatalf("readers completed %d checks, want %d", checks.Load(), readers*checksPerReader)
	}
	if committed.Load() == 0 || rolledBack == 0 {
		t.Fatalf("workload too one-sided: %d commits, %d rollbacks", committed.Load(), rolledBack)
	}
	res, err := db.Exec(`MATCH (v:Vendor) RETURN count(*) AS c`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c := res.Row(0)["c"].String(); c != fmt.Sprint(committed.Load()) {
		t.Errorf("final vendors = %s, want %d", c, committed.Load())
	}
}

// TestConcurrentAutoCommitWriters: implicit transactions from many
// goroutines serialize through the writer pipeline; readers only ever
// see whole statements (multiples of the batch size).
func TestConcurrentAutoCommitWriters(t *testing.T) {
	const (
		writers = 4
		perW    = 10
		batch   = 5
	)
	db := Open()
	var wg sync.WaitGroup
	var done atomic.Bool
	readerErrs := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !done.Load() {
			res, err := db.Exec(`MATCH (k:K) RETURN count(*) AS c`, nil)
			if err != nil {
				select {
				case readerErrs <- err:
				default:
				}
				return
			}
			var c int
			fmt.Sscan(res.Row(0)["c"].String(), &c)
			if c%batch != 0 {
				select {
				case readerErrs <- fmt.Errorf("reader saw %d :K nodes, not a multiple of %d", c, batch):
				default:
				}
				return
			}
		}
	}()
	var writerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for i := 0; i < perW; i++ {
				if _, err := db.Exec(`UNWIND range(1, $n) AS i CREATE (:K{w:$w, i:i})`,
					map[string]any{"n": batch, "w": w}); err != nil {
					t.Errorf("writer: %v", err)
					return
				}
			}
		}(w)
	}
	writerWG.Wait()
	done.Store(true)
	wg.Wait()
	select {
	case err := <-readerErrs:
		t.Fatal(err)
	default:
	}
	if got := db.NumNodes(); got != writers*perW*batch {
		t.Errorf("final nodes = %d, want %d", got, writers*perW*batch)
	}
}
