package cypher

import (
	"fmt"
	"strings"
	"testing"
)

// TestPlanCacheCrossSessionHits checks that the engine-wide caches are
// genuinely shared: a query planned in one session is answered from the
// statement and plan caches when a different session runs the same
// text. This is the property the server relies on — a thousand
// connections running the same parameterized lookup plan once.
func TestPlanCacheCrossSessionHits(t *testing.T) {
	db := Open()
	for i := 0; i < 64; i++ {
		if _, err := db.Exec(`CREATE (:User{id:$i})`, map[string]any{"i": int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	const q = `MATCH (u:User{id:$i}) RETURN u.id AS id`

	s1 := db.Session()
	defer s1.Close()
	if _, err := s1.Exec(q, map[string]any{"i": int64(3)}); err != nil {
		t.Fatal(err)
	}
	after1 := db.CacheStats()
	if after1.Plan.Entries == 0 {
		t.Fatal("first execution cached no plan")
	}

	// A different session, same text, different parameter: both caches
	// must hit — the statement cache on the text, the plan cache on the
	// shared AST identity.
	s2 := db.Session()
	defer s2.Close()
	res, err := s2.Exec(q, map[string]any{"i": int64(7)})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 1 || res.Row(0)["id"].String() != "7" {
		t.Fatalf("wrong result through cached plan: %v", res.Rows())
	}
	after2 := db.CacheStats()
	if after2.StmtHits <= after1.StmtHits {
		t.Errorf("statement cache did not hit cross-session: %+v -> %+v", after1, after2)
	}
	if after2.Plan.Hits <= after1.Plan.Hits {
		t.Errorf("plan cache did not hit cross-session: %+v -> %+v", after1.Plan, after2.Plan)
	}
	if after2.Plan.Entries != after1.Plan.Entries {
		t.Errorf("cross-session re-run grew the plan cache: %+v -> %+v", after1.Plan, after2.Plan)
	}
}

// TestPlanCacheDriftInvalidation checks statistics-based validity: a
// cached plan survives small graph changes but is invalidated and
// re-planned once the anchor estimates drift beyond tolerance (a
// factor of driftFactor past the driftFloor).
func TestPlanCacheDriftInvalidation(t *testing.T) {
	db := Open()
	// Seed enough :A nodes to clear the drift floor, so growth is
	// measured by ratio rather than absorbed by the absolute slack.
	for i := 0; i < 24; i++ {
		if _, err := db.Exec(`CREATE (:A{id:$i})`, map[string]any{"i": int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	const q = `MATCH (a:A) RETURN count(a) AS c`
	if _, err := db.Exec(q, nil); err != nil {
		t.Fatal(err)
	}
	before := db.CacheStats().Plan

	// A single extra node moves the graph version but not the estimates
	// materially: the entry must revalidate, not invalidate.
	if _, err := db.Exec(`CREATE (:A{id:1000})`, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(q, nil); err != nil {
		t.Fatal(err)
	}
	mid := db.CacheStats().Plan
	if mid.Invalidations != before.Invalidations {
		t.Errorf("tolerable drift invalidated the plan: %+v -> %+v", before, mid)
	}
	if mid.Hits <= before.Hits {
		t.Errorf("version-stale entry was not revalidated as a hit: %+v -> %+v", before, mid)
	}

	// Grow the label cardinality well past driftFactor: the cached plan
	// is stale and must be discarded and re-planned.
	for i := 0; i < 200; i++ {
		if _, err := db.Exec(fmt.Sprintf(`CREATE (:A{id:%d})`, 2000+i), nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Exec(q, nil); err != nil {
		t.Fatal(err)
	}
	after := db.CacheStats().Plan
	if after.Invalidations <= mid.Invalidations {
		t.Errorf("material drift did not invalidate the plan: %+v -> %+v", mid, after)
	}
}

// TestPlanCacheIndexEpochInvalidation checks that CREATE INDEX and DROP
// INDEX each invalidate cached plans outright: a new index can enable a
// seek anchor (and a drop must disable one) with zero cardinality
// drift, so epoch changes cannot be absorbed by revalidation.
func TestPlanCacheIndexEpochInvalidation(t *testing.T) {
	db := Open()
	for i := 0; i < 32; i++ {
		if _, err := db.Exec(`CREATE (:User{id:$i})`, map[string]any{"i": int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	const q = `MATCH (u:User{id:$i}) RETURN u.id AS id`
	run := func() {
		t.Helper()
		res, err := db.Exec(q, map[string]any{"i": int64(5)})
		if err != nil {
			t.Fatal(err)
		}
		if res.NumRows() != 1 {
			t.Fatalf("want 1 row, got %d", res.NumRows())
		}
	}
	run()
	before := db.CacheStats().Plan

	if _, err := db.Exec(`CREATE INDEX ON :User(id)`, nil); err != nil {
		t.Fatal(err)
	}
	run()
	mid := db.CacheStats().Plan
	if mid.Invalidations <= before.Invalidations {
		t.Errorf("CREATE INDEX did not invalidate the cached plan: %+v -> %+v", before, mid)
	}
	// The re-planned query now seeks the index.
	plan, err := db.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "index-seek(:User.id)") {
		t.Errorf("plan after CREATE INDEX does not seek:\n%s", plan)
	}

	if _, err := db.Exec(`DROP INDEX ON :User(id)`, nil); err != nil {
		t.Fatal(err)
	}
	run()
	after := db.CacheStats().Plan
	if after.Invalidations <= mid.Invalidations {
		t.Errorf("DROP INDEX did not invalidate the cached plan: %+v -> %+v", mid, after)
	}
}
