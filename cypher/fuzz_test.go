package cypher

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/script"
)

// FuzzCodecRoundTrip fuzzes the graph JSON codec behind Save/Load.
// Anything Load accepts must Save canonically: Save(Load(b)) is a
// fixed point, so a saved graph survives any number of load/save
// cycles bit-identically. Seeds come from the example scripts —
// real graphs with labels, relationships, properties, and indexes.
func FuzzCodecRoundTrip(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"nodes":[{"id":1,"labels":["A"],"props":{"x":1.5}}],"nextNode":2}`))
	scripts, _ := filepath.Glob(filepath.Join("..", "scripts", "*.cypher"))
	for _, path := range scripts {
		src, err := os.ReadFile(path)
		if err != nil {
			continue
		}
		db := Open()
		sess := db.Session()
		for _, stmt := range script.Split(string(src)) {
			// Statement errors are fine: the corpus wants whatever
			// graph the script manages to build.
			sess.Exec(stmt, nil)
		}
		sess.Close()
		var buf bytes.Buffer
		if err := db.Save(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		db, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		var b1 bytes.Buffer
		if err := db.Save(&b1); err != nil {
			t.Fatalf("loaded graph does not save: %v", err)
		}
		db2, err := Load(bytes.NewReader(b1.Bytes()))
		if err != nil {
			t.Fatalf("saved graph does not load: %v", err)
		}
		var b2 bytes.Buffer
		if err := db2.Save(&b2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
			t.Fatal("graph JSON encoding is not canonical")
		}
	})
}
