package cypher

import (
	"bytes"
	"strings"
	"testing"
)

func TestOpenAndExec(t *testing.T) {
	db := Open()
	res, err := db.Exec(`CREATE (:User{id:1, name:'Ada'})-[:KNOWS]->(:User{id:2, name:'Bob'})`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats().NodesCreated != 2 || res.Stats().RelsCreated != 1 {
		t.Errorf("stats: %+v", res.Stats())
	}
	if db.NumNodes() != 2 || db.NumRels() != 1 {
		t.Errorf("graph: %d/%d", db.NumNodes(), db.NumRels())
	}

	res, err = db.Exec(`MATCH (a:User)-[:KNOWS]->(b) RETURN a.name AS a, b.name AS b`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 1 {
		t.Fatalf("rows = %d", res.NumRows())
	}
	row := res.Row(0)
	if row["a"].String() != "'Ada'" || row["b"].String() != "'Bob'" {
		t.Errorf("row = %v", row)
	}
	cols := res.Columns()
	if len(cols) != 2 || cols[0] != "a" {
		t.Errorf("cols = %v", cols)
	}
	if len(res.Rows()) != 1 || len(res.Values(0)) != 2 {
		t.Error("Rows/Values accessors")
	}
}

func TestExecParams(t *testing.T) {
	db := Open()
	if _, err := db.Exec(`CREATE (:N $props)`, map[string]any{
		"props": map[string]any{"k": 42, "s": "x"},
	}); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec(`MATCH (n:N) WHERE n.k = $k RETURN n.s AS s`, map[string]any{"k": 42})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 1 {
		t.Errorf("rows = %d", res.NumRows())
	}
	// Unconvertible parameter.
	if _, err := db.Exec(`RETURN $x`, map[string]any{"x": struct{}{}}); err == nil {
		t.Error("bad param should fail")
	}
}

func TestDialectOption(t *testing.T) {
	legacy := Open(WithDialect(Cypher9))
	if legacy.Dialect() != Cypher9 {
		t.Error("dialect option lost")
	}
	// Bare MERGE works in Cypher9 but not in Revised.
	if _, err := legacy.Exec(`MERGE (n:X{id:1})`, nil); err != nil {
		t.Errorf("legacy MERGE: %v", err)
	}
	revised := Open()
	if _, err := revised.Exec(`MERGE (n:X{id:1})`, nil); err == nil {
		t.Error("bare MERGE must fail in revised dialect")
	}
	if err := revised.Parse(`MERGE (n:X{id:1})`); err == nil {
		t.Error("Parse must report dialect violations")
	}
	if err := revised.Parse(`MERGE ALL (n:X{id:1})`); err != nil {
		t.Errorf("Parse of valid statement: %v", err)
	}
}

func TestExecTable(t *testing.T) {
	db := Open()
	tbl := NewTable("cid", "pid")
	if err := tbl.Append(98, 125); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Append(98, nil); err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 2 {
		t.Fatal("table len")
	}
	res, err := db.ExecTable(`MERGE SAME (:User{id:cid})-[:ORDERED]->(:Product{id:pid})`, tbl, nil)
	if err != nil {
		t.Fatal(err)
	}
	if db.NumNodes() != 3 || db.NumRels() != 2 {
		t.Errorf("graph: %d/%d, want 3/2", db.NumNodes(), db.NumRels())
	}
	if res.NumRows() != 0 { // no RETURN clause
		t.Errorf("rows = %d", res.NumRows())
	}
}

func TestSnapshotAndSameShape(t *testing.T) {
	db := Open()
	db.Exec(`CREATE (:A)-[:T]->(:B)`, nil)
	snap := db.Snapshot()
	if !SameShape(db, snap) {
		t.Error("snapshot should be isomorphic")
	}
	snap.Exec(`CREATE (:C)`, nil)
	if SameShape(db, snap) {
		t.Error("diverged snapshot should differ")
	}
	if db.NumNodes() != 2 {
		t.Error("snapshot mutation leaked")
	}
	// Snapshot with a different dialect.
	leg := db.Snapshot(WithDialect(Cypher9))
	if leg.Dialect() != Cypher9 {
		t.Error("snapshot option lost")
	}
}

func TestNodeAndRelViews(t *testing.T) {
	db := Open()
	db.Exec(`CREATE (:User{name:'a'})-[:KNOWS{w:1}]->(:User{name:'b'})`, nil)
	nodes := db.Nodes()
	if len(nodes) != 2 || nodes[0].Labels[0] != "User" {
		t.Errorf("nodes = %+v", nodes)
	}
	rels := db.Rels()
	if len(rels) != 1 || rels[0].Type != "KNOWS" {
		t.Errorf("rels = %+v", rels)
	}
	if rels[0].Src != nodes[0].ID || rels[0].Tgt != nodes[1].ID {
		t.Error("rel endpoints")
	}
	st := db.Stats()
	if st.Nodes != 2 || st.Rels != 1 {
		t.Errorf("stats = %v", st)
	}
}

func TestErrorsLeaveDBUnchanged(t *testing.T) {
	db := Open()
	db.Exec(`CREATE (:P{id:125, name:'a'}), (:P{id:125, name:'b'}), (:Q{id:85})`, nil)
	before := db.NumNodes()
	_, err := db.Exec(`MATCH (q:Q),(p:P{id:125}) CREATE (:Extra) WITH q, p SET q.name = p.name`, nil)
	if err == nil {
		t.Fatal("expected conflict")
	}
	if db.NumNodes() != before {
		t.Error("failed statement mutated the database")
	}
}

func TestExplain(t *testing.T) {
	s, err := Explain(`match (n) return n`)
	if err != nil {
		t.Fatal(err)
	}
	if s != "MATCH (n) RETURN n" {
		t.Errorf("Explain = %q", s)
	}
	if _, err := Explain(`match (`); err == nil {
		t.Error("Explain of invalid query should fail")
	}
}

func TestParseError(t *testing.T) {
	db := Open()
	if _, err := db.Exec(`MATCH (`, nil); err == nil {
		t.Error("syntax error should surface")
	}
}

func TestConcurrentReads(t *testing.T) {
	db := Open()
	db.Exec(`UNWIND range(1, 50) AS i CREATE (:N{v:i})`, nil)
	done := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func() {
			for i := 0; i < 20; i++ {
				res, err := db.Exec(`MATCH (n:N) RETURN count(*) AS c`, nil)
				if err != nil {
					done <- err
					return
				}
				if res.NumRows() != 1 {
					done <- nil
					return
				}
			}
			done <- nil
		}()
	}
	for w := 0; w < 8; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestSaveAndLoad(t *testing.T) {
	db := Open()
	db.Exec(`CREATE (:User{id:1, score:1.5, tags:['a','b']})-[:KNOWS{w:2}]->(:User{id:2})`, nil)
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	db2, err := Load(&buf, WithDialect(Cypher9))
	if err != nil {
		t.Fatal(err)
	}
	if !SameShape(db, db2) {
		t.Error("loaded database differs")
	}
	if db2.Dialect() != Cypher9 {
		t.Error("Load options lost")
	}
	// The loaded database is fully usable.
	res, err := db2.Exec(`MATCH (u:User) RETURN count(*) AS c`, nil)
	if err != nil || res.Row(0)["c"].String() != "2" {
		t.Errorf("query after load: %v, %v", res, err)
	}
	if _, err := Load(bytes.NewBufferString("junk")); err == nil {
		t.Error("corrupt snapshot should fail")
	}
}

func TestExportDOT(t *testing.T) {
	db := Open()
	db.Exec(`CREATE (:A)-[:T]->(:B)`, nil)
	var buf bytes.Buffer
	if err := db.ExportDOT(&buf, "test"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "digraph") || !strings.Contains(buf.String(), ":T") {
		t.Errorf("DOT output: %s", buf.String())
	}
}
