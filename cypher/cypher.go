// Package cypher is the public API of the graph database: an embedded,
// in-memory property graph store queried and updated with Cypher, as
// described in "Updating Graph Databases with Cypher" (Green et al.,
// PVLDB 12(12), 2019).
//
// The database supports two update dialects:
//
//   - Cypher9 reproduces the legacy record-by-record update pipeline
//     of Neo4j's Cypher 9, including the atomicity and determinism
//     defects the paper catalogues in Section 4 (use it to study them);
//   - Revised (the default) implements the corrected semantics of
//     Sections 7-8: atomic SET with conflict detection, strict DELETE
//     with null replacement, and the MERGE ALL / MERGE SAME clauses.
//
// Quickstart:
//
//	db := cypher.Open()
//	db.Exec(`CREATE (:User{id:1, name:'Ada'})-[:KNOWS]->(:User{id:2, name:'Bob'})`, nil)
//	res, _ := db.Exec(`MATCH (a:User)-[:KNOWS]->(b) RETURN a.name AS a, b.name AS b`, nil)
//	for _, row := range res.Rows() {
//	    fmt.Println(row["a"], row["b"])
//	}
package cypher

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/graph"
	"repro/internal/match"
	"repro/internal/parser"
	"repro/internal/table"
	"repro/internal/value"
)

// Dialect selects the update semantics of a database.
type Dialect = core.Dialect

// Dialects.
const (
	// Cypher9 is the legacy pipeline of Section 3 with the Section 4
	// defects preserved.
	Cypher9 = core.DialectCypher9
	// Revised is the atomic, deterministic semantics of Section 7.
	Revised = core.DialectRevised
)

// MergeStrategy selects among the Section 6 proposals for MERGE.
type MergeStrategy = core.MergeStrategy

// Merge strategies (see the paper's Section 6).
const (
	MergeFromForm       = core.StrategyFromForm
	MergeLegacy         = core.StrategyLegacy
	MergeAtomic         = core.StrategyAtomic
	MergeGrouping       = core.StrategyGrouping
	MergeWeakCollapse   = core.StrategyWeakCollapse
	MergeCollapse       = core.StrategyCollapse
	MergeStrongCollapse = core.StrategyStrongCollapse
)

// ScanOrder controls legacy-mode record iteration (Example 3).
type ScanOrder = core.ScanOrder

// Scan orders.
const (
	ScanForward = core.ScanForward
	ScanReverse = core.ScanReverse
)

// PlannerMode selects cost-based match planning (the default) or the
// naive left-to-right enumeration.
type PlannerMode = core.PlannerMode

// Planner modes.
const (
	// PlannerCostBased anchors each pattern part at its most selective
	// node, reorders comma-separated parts, and prunes with pushed WHERE
	// conjuncts, using statistics maintained incrementally under updates.
	PlannerCostBased = core.PlannerCostBased
	// PlannerLeftToRight is the pre-planner enumeration, kept for A/B
	// comparison.
	PlannerLeftToRight = core.PlannerLeftToRight
)

// MatchMode selects pattern matching semantics.
type MatchMode = match.Mode

// Match modes.
const (
	// Isomorphism is Cypher's default: distinct relationship slots bind
	// distinct relationships (Section 2).
	Isomorphism = match.Isomorphism
	// Homomorphism allows relationship reuse (Example 7 discussion).
	Homomorphism = match.Homomorphism
)

// Value is a Cypher runtime value (see repro/internal/value for kinds).
type Value = value.Value

// Durability configures the write-ahead log of a database opened with
// OpenDir: the fsync policy and the log size that triggers automatic
// checkpoints. The zero value is the safe default (fsync every commit,
// checkpoint every 4 MiB of log).
type Durability = graph.Durability

// SyncMode selects when the write-ahead log is fsynced.
type SyncMode = graph.SyncMode

// Sync modes.
const (
	// SyncAlways fsyncs on every commit (the default): committed means
	// crash-proof.
	SyncAlways = graph.SyncAlways
	// SyncInterval fsyncs in the background every Durability.SyncEvery:
	// a crash loses at most the last interval's commits.
	SyncInterval = graph.SyncInterval
	// SyncNever leaves flushing to the operating system.
	SyncNever = graph.SyncNever
)

// WALStatus is a point-in-time summary of a durable database's
// write-ahead log (see DB.WALStatus and the shell's :wal command).
type WALStatus = graph.WALStatus

// UpdateStats counts the effects of a statement.
type UpdateStats = core.UpdateStats

// Option configures a database.
type Option func(*options)

type options struct {
	cfg core.Config
}

// WithDialect selects the update dialect (default Revised).
func WithDialect(d Dialect) Option {
	return func(o *options) { o.cfg.Dialect = d }
}

// WithMergeStrategy overrides the strategy used by MERGE clauses
// (default: derived from the clause form).
func WithMergeStrategy(s MergeStrategy) Option {
	return func(o *options) { o.cfg.MergeStrategy = s }
}

// WithScanOrder sets the record iteration order of legacy update clauses.
func WithScanOrder(s ScanOrder) Option {
	return func(o *options) { o.cfg.ScanOrder = s }
}

// WithMatchMode selects isomorphic (default) or homomorphic matching.
func WithMatchMode(m MatchMode) Option {
	return func(o *options) { o.cfg.MatchMode = m }
}

// WithPlanner selects the match planning mode (default cost-based).
func WithPlanner(p PlannerMode) Option {
	return func(o *options) { o.cfg.Planner = p }
}

// WithMemoryBudget caps the bytes each statement's blocking operators
// (ORDER BY, aggregation, DISTINCT) may hold in memory. A statement
// whose barriers exceed the budget spills sorted runs and hash
// partitions to temporary files and merges them back, trading disk I/O
// for bounded peak memory; results are identical either way. Zero or
// negative (the default) means unlimited.
func WithMemoryBudget(bytes int64) Option {
	return func(o *options) { o.cfg.MemoryBudget = bytes }
}

// WithParallelism sets the worker-pool degree for morsel-driven
// parallel execution of read-only statements: large scans and pattern
// matches are split into morsels executed by up to n workers, with
// results gathered in order so output is identical to a serial run.
// Zero (the default) means GOMAXPROCS; 1 disables parallelism.
// Updating statements and statements inside explicit transactions
// always run serially regardless of this setting.
func WithParallelism(n int) Option {
	return func(o *options) { o.cfg.Parallelism = n }
}

// WithDurability sets the write-ahead log configuration used when the
// database is opened against a data directory (OpenDir). It has no
// effect on a purely in-memory database.
func WithDurability(d Durability) Option {
	return func(o *options) { o.cfg.Durability = d }
}

// DB is an embedded graph database. All methods are safe for concurrent
// use. Statements execute transactionally: updating statements are
// serialized through a single-writer commit pipeline, while read-only
// statements stream concurrently from pinned snapshots of the last
// committed epoch — readers never block each other, and never observe
// a partially applied statement or transaction.
//
// DB.Exec auto-commits every statement. For explicit multi-statement
// transactions (BEGIN/COMMIT/ROLLBACK), open a Session.
type DB struct {
	store  *graph.Store
	engine *core.Engine
	opts   options
	wal    *graph.WAL // non-nil when opened durably (OpenDir)
}

// Open creates an empty database.
func Open(opts ...Option) *DB {
	var o options
	o.cfg.Dialect = core.DialectRevised
	for _, opt := range opts {
		opt(&o)
	}
	return &DB{
		store:  graph.NewStore(graph.New()),
		engine: core.NewEngine(o.cfg),
		opts:   o,
	}
}

// OpenDir opens a durable database rooted at dir, creating the
// directory if needed. The latest checkpoint snapshot is loaded and
// the write-ahead log replayed over it, so the database resumes at
// exactly the committed state that reached disk — a torn record left
// by a crash mid-commit is detected by its checksum and discarded.
// Every further commit is appended to the log (and fsynced, under the
// default Durability) before it is observable. Close the database when
// done; configure logging with WithDurability.
func OpenDir(dir string, opts ...Option) (*DB, error) {
	var o options
	o.cfg.Dialect = core.DialectRevised
	for _, opt := range opts {
		opt(&o)
	}
	store, wal, err := graph.Recover(dir, o.cfg.Durability)
	if err != nil {
		return nil, err
	}
	return &DB{
		store:  store,
		engine: core.NewEngine(o.cfg),
		opts:   o,
		wal:    wal,
	}, nil
}

// Durable reports whether the database persists commits to a
// write-ahead log (it was opened with OpenDir).
func (db *DB) Durable() bool { return db.wal != nil }

// Close flushes and closes the write-ahead log of a durable database;
// it reports any sticky log failure, so a caller that checks no other
// commit errors learns here whether everything reached disk. Closing
// an in-memory database is a no-op. The database must not be used
// afterwards.
func (db *DB) Close() error {
	if db.wal == nil {
		return nil
	}
	return db.wal.Close()
}

// Checkpoint forces a durability checkpoint: the current committed
// state is written as the snapshot file and the write-ahead log is
// truncated, bounding the work of the next recovery. Checkpoints also
// happen automatically as the log grows (Durability.CheckpointBytes).
// Errors if the database is not durable.
func (db *DB) Checkpoint() error { return db.store.Checkpoint() }

// WALStatus reports the write-ahead log's current counters (size,
// epochs, records appended and replayed, checkpoints, sticky failure).
// ok is false for an in-memory database.
func (db *DB) WALStatus() (status WALStatus, ok bool) {
	if db.wal == nil {
		return WALStatus{}, false
	}
	return db.wal.Status(), true
}

// Dialect reports the database's dialect.
func (db *DB) Dialect() Dialect { return db.engine.Config().Dialect }

// Result is the outcome of a statement.
type Result struct {
	cols  []string
	rows  [][]Value
	stats UpdateStats
}

// Columns returns the output column names.
func (r *Result) Columns() []string { return append([]string(nil), r.cols...) }

// NumRows reports the number of result records.
func (r *Result) NumRows() int { return len(r.rows) }

// Row returns record i as a column-name map.
func (r *Result) Row(i int) map[string]Value {
	m := make(map[string]Value, len(r.cols))
	for j, c := range r.cols {
		m[c] = r.rows[i][j]
	}
	return m
}

// Rows returns all records as column-name maps.
func (r *Result) Rows() []map[string]Value {
	out := make([]map[string]Value, len(r.rows))
	for i := range r.rows {
		out[i] = r.Row(i)
	}
	return out
}

// Values returns record i as a slice in column order.
func (r *Result) Values(i int) []Value { return append([]Value(nil), r.rows[i]...) }

// Stats returns the update statistics of the statement.
func (r *Result) Stats() UpdateStats { return r.stats }

// Exec parses and runs a Cypher statement as its own implicit
// transaction (auto-commit). Parameters may be native Go values (see
// value.FromGo) or Values. A failing statement leaves the database
// unchanged. Read-only statements run on a pinned snapshot and do not
// block (or get blocked by) other statements; updating statements
// serialize through the single-writer commit pipeline.
//
// BEGIN/COMMIT/ROLLBACK are session state and are rejected here; use
// DB.Session for explicit transactions.
func (db *DB) Exec(query string, params map[string]any) (*Result, error) {
	return db.exec(query, nil, params)
}

// ExecTable runs a statement against an explicit driving table instead
// of the unit table — the execution mode of the paper's Section 6
// experiments, where "the input table is already populated". Build the
// table with NewTable.
func (db *DB) ExecTable(query string, t *Table, params map[string]any) (*Result, error) {
	return db.exec(query, t.t, params)
}

func (db *DB) exec(query string, t0 *table.Table, params map[string]any) (*Result, error) {
	stmt, err := db.engine.Parse(query)
	if err != nil {
		return nil, err
	}
	if stmt.TxnControl != ast.TxnNone {
		return nil, fmt.Errorf("%s outside a session: DB.Exec statements auto-commit; open a Session for explicit transactions", stmt.TxnControl)
	}
	vparams, err := convertParams(params)
	if err != nil {
		return nil, err
	}
	res, err := core.NewSession(db.engine, db.store).ExecuteWithTable(stmt, vparams, t0)
	if err != nil {
		return nil, err
	}
	return wrapResult(res), nil
}

// Explain returns the streaming operator plan for a statement without
// executing it: a `txn:` header stating the statement's transaction
// boundary (pinned-snapshot reads vs. writer-lock execution), then one
// operator per line, children indented, with `[barrier]` marking
// materialization points (ORDER BY, aggregation) and
// `[barrier:writer-lock]` marking every update clause.
func (db *DB) Explain(query string) (string, error) {
	stmt, err := db.engine.Parse(query)
	if err != nil {
		return "", err
	}
	return core.NewSession(db.engine, db.store).Explain(stmt, nil)
}

// Profile runs a statement on the streaming executor and returns its
// result together with the operator plan annotated with observed
// execution counters: per-operator rows and batches, and for barriers
// the peak accounted memory and spill-run count when a memory budget is
// in force. Unlike Explain, Profile EXECUTES the statement — updates
// apply exactly as with Exec.
func (db *DB) Profile(query string, params map[string]any) (*Result, string, error) {
	stmt, err := db.engine.Parse(query)
	if err != nil {
		return nil, "", err
	}
	vparams, err := convertParams(params)
	if err != nil {
		return nil, "", err
	}
	res, planText, err := core.NewSession(db.engine, db.store).Profile(stmt, vparams)
	if err != nil {
		return nil, "", err
	}
	return wrapResult(res), planText, nil
}

// Parse checks a statement for syntactic and dialect validity without
// executing it.
func (db *DB) Parse(query string) error {
	stmt, err := db.engine.Parse(query)
	if err != nil {
		return err
	}
	return core.Validate(stmt, db.engine.Config().Dialect)
}

func wrapResult(res *core.Result) *Result {
	out := &Result{cols: res.Table.Columns(), stats: res.Stats}
	for i := 0; i < res.Table.Len(); i++ {
		out.rows = append(out.rows, res.Table.Values(i))
	}
	return out
}

func convertParams(params map[string]any) (map[string]value.Value, error) {
	if params == nil {
		return nil, nil
	}
	out := make(map[string]value.Value, len(params))
	for k, v := range params {
		cv, err := value.FromGo(v)
		if err != nil {
			return nil, fmt.Errorf("parameter $%s: %w", k, err)
		}
		out[k] = cv
	}
	return out, nil
}

// Table is a driving table for ExecTable.
type Table struct {
	t *table.Table
}

// NewTable creates a driving table with the given columns.
func NewTable(cols ...string) *Table {
	return &Table{t: table.New(cols...)}
}

// Append adds a record; values may be native Go values or Values, and
// nil means null.
func (t *Table) Append(vals ...any) error {
	row := make([]value.Value, len(vals))
	for i, v := range vals {
		cv, err := value.FromGo(v)
		if err != nil {
			return err
		}
		row[i] = cv
	}
	t.t.AppendRow(row...)
	return nil
}

// Len reports the number of records.
func (t *Table) Len() int { return t.t.Len() }

// Reverse reverses the record order (the "bottom-up" evaluation of
// Example 3).
func (t *Table) Reverse() { t.t.Reverse() }

// Permute reorders the records by the given permutation.
func (t *Table) Permute(perm []int) { t.t.Permute(perm) }

// NodeView is a read-only snapshot of a node.
type NodeView struct {
	ID     int64
	Labels []string
	Props  map[string]Value
}

// RelView is a read-only snapshot of a relationship.
type RelView struct {
	ID       int64
	Type     string
	Src, Tgt int64
	Props    map[string]Value
}

// NumNodes reports the number of nodes in the graph.
func (db *DB) NumNodes() int {
	snap := db.store.Acquire()
	defer snap.Release()
	return snap.Graph().NumNodes()
}

// NumRels reports the number of relationships in the graph.
func (db *DB) NumRels() int {
	snap := db.store.Acquire()
	defer snap.Release()
	return snap.Graph().NumRels()
}

// Nodes returns snapshots of all nodes in id order.
func (db *DB) Nodes() []NodeView {
	snap := db.store.Acquire()
	defer snap.Release()
	var out []NodeView
	g := snap.Graph()
	for _, id := range g.NodeIDs() {
		n := g.Node(id)
		nv := NodeView{ID: int64(id), Labels: n.SortedLabels(), Props: map[string]Value{}}
		for k, v := range n.Props {
			nv.Props[k] = v
		}
		out = append(out, nv)
	}
	return out
}

// Rels returns snapshots of all relationships in id order.
func (db *DB) Rels() []RelView {
	snap := db.store.Acquire()
	defer snap.Release()
	var out []RelView
	g := snap.Graph()
	for _, id := range g.RelIDs() {
		r := g.Rel(id)
		rv := RelView{ID: int64(id), Type: r.Type, Src: int64(r.Src), Tgt: int64(r.Tgt), Props: map[string]Value{}}
		for k, v := range r.Props {
			rv.Props[k] = v
		}
		out = append(out, rv)
	}
	return out
}

// Stats summarizes the graph (node/relationship counts by label/type).
func (db *DB) Stats() graph.Stats {
	snap := db.store.Acquire()
	defer snap.Release()
	return graph.ComputeStats(snap.Graph())
}

// IndexView describes one property index: nodes carrying Label are
// indexed by the value of their Prop property.
type IndexView struct {
	Label string
	Prop  string
}

// Indexes lists the database's property indexes (created with
// `CREATE INDEX ON :Label(prop)`) sorted by label, then property.
func (db *DB) Indexes() []IndexView {
	snap := db.store.Acquire()
	defer snap.Release()
	return indexViews(snap.Graph().Indexes())
}

func indexViews(keys []graph.IndexKey) []IndexView {
	out := make([]IndexView, len(keys))
	for i, k := range keys {
		out[i] = IndexView{Label: k.Label, Prop: k.Prop}
	}
	return out
}

// Epoch reports the database's committed transaction epoch: it
// advances every time a transaction (implicit or explicit) finishes.
// Committed deltas can be correlated against it by change-feed
// consumers.
func (db *DB) Epoch() int64 { return db.store.Epoch() }

// CacheStats is a point-in-time snapshot of the engine's statement and
// plan cache counters (see DB.CacheStats).
type CacheStats = core.CacheStats

// CacheStats reports the engine's cache counters: statement-cache
// hits/misses (parsed ASTs shared across all sessions of this
// database) and the shared plan cache's hits, misses, invalidations
// and live entries. Useful for asserting that repeated parameterized
// queries — from one session or many — plan once.
func (db *DB) CacheStats() CacheStats { return db.engine.CacheStats() }

// StatementInfo classifies a parsed statement for schedulers (the
// server uses it to route statements through writer-admission
// backpressure without executing them first).
type StatementInfo struct {
	// Updating reports whether the statement contains update clauses
	// (CREATE, MERGE, SET, REMOVE, DELETE, index DDL).
	Updating bool
	// TxnControl is "BEGIN", "COMMIT" or "ROLLBACK" for transaction
	// control statements, and "" for ordinary queries.
	TxnControl string
}

// ClassifyStatement parses query (through the shared statement cache)
// and reports whether it updates the graph and whether it is
// transaction control, without executing it.
func (db *DB) ClassifyStatement(query string) (StatementInfo, error) {
	stmt, err := db.engine.Parse(query)
	if err != nil {
		return StatementInfo{}, err
	}
	info := StatementInfo{Updating: stmt.Updating()}
	if stmt.TxnControl != ast.TxnNone {
		info.TxnControl = stmt.TxnControl.String()
	}
	return info, nil
}

// PinnedSnapshots reports how many reader snapshots of the current
// committed epoch are pinned right now (acquired and not yet
// released). It is a diagnostic for leak checks: a quiescent database
// has zero pinned snapshots.
func (db *DB) PinnedSnapshots() int { return int(db.store.PinnedReaders()) }

// Delta is the net structural change one committed transaction applied:
// which nodes/relationships were created or deleted, which properties
// and labels changed on surviving entities, and which indexes were
// created or dropped, all relative to the previous epoch (see
// graph.Delta for field semantics). Entities created and deleted within
// the same transaction cancel out; rolled-back transactions produce no
// delta at all.
type Delta = graph.Delta

// OnCommit registers fn as a change-feed consumer: after every
// transaction (implicit auto-commit or explicit BEGIN…COMMIT) that
// changed anything, fn is called once with the committed epoch's Delta,
// in strict epoch order, on the committing goroutine. fn must return
// promptly and must not execute updating statements against the same
// database (the writer slot is still held); reads are fine. Use it to
// maintain materialized views incrementally, invalidate caches by
// delta, or ship epochs to a replica.
func (db *DB) OnCommit(fn func(*Delta)) { db.store.OnCommit(fn) }

// Snapshot returns an independent deep copy of the database (same
// dialect and options), useful for comparing semantics side by side.
func (db *DB) Snapshot(opts ...Option) *DB {
	snap := db.store.Acquire()
	defer snap.Release()
	o := db.opts
	for _, opt := range opts {
		opt(&o)
	}
	return &DB{
		store:  graph.NewStore(snap.Graph().Clone()),
		engine: core.NewEngine(o.cfg),
		opts:   o,
	}
}

// SameShape reports whether two databases hold isomorphic graphs
// ("equal up to id renaming", Section 8).
func SameShape(a, b *DB) bool {
	sa := a.store.Acquire()
	defer sa.Release()
	sb := b.store.Acquire()
	defer sb.Release()
	return graph.Isomorphic(sa.Graph(), sb.Graph())
}

// Session is a connection-like handle carrying transaction state.
// Statements run through Exec exactly as on DB (auto-commit, snapshot
// reads) until BEGIN opens an explicit transaction; from then on every
// statement — reads included — runs against the transaction's working
// graph and sees its uncommitted writes, until COMMIT publishes them
// atomically as a new epoch or ROLLBACK discards them. Other sessions
// and DB.Exec keep reading the last committed epoch throughout.
//
// A transaction holds the database's single writer slot: a second
// session's BEGIN (or updating auto-commit statement) blocks until the
// first commits or rolls back. A failing statement inside a
// transaction is rolled back by itself; the transaction stays open.
//
// Sessions are safe for concurrent use, but their point is
// per-connection state: use one session per goroutine.
type Session struct {
	mu sync.Mutex
	cs *core.Session
}

// Session opens a session on the database.
func (db *DB) Session() *Session {
	return &Session{cs: core.NewSession(db.engine, db.store)}
}

// Exec parses and runs one statement in the session, including the
// transaction-control statements BEGIN, COMMIT and ROLLBACK.
func (s *Session) Exec(query string, params map[string]any) (*Result, error) {
	stmt, err := s.cs.Parse(query)
	if err != nil {
		return nil, err
	}
	vparams, err := convertParams(params)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	res, err := s.cs.Execute(stmt, vparams)
	if err != nil {
		return nil, err
	}
	return wrapResult(res), nil
}

// Begin opens an explicit transaction (equivalent to Exec("BEGIN")).
func (s *Session) Begin() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cs.Begin()
}

// Commit publishes the open transaction atomically and returns its
// accumulated update statistics.
func (s *Session) Commit() (UpdateStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cs.Commit()
}

// Rollback discards the open transaction.
func (s *Session) Rollback() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cs.Rollback()
}

// InTransaction reports whether an explicit transaction is open.
func (s *Session) InTransaction() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cs.InTransaction()
}

// Explain renders a statement's plan with its transaction boundaries,
// against the graph state the statement would actually run on (the open
// transaction's working graph, or the latest committed snapshot).
func (s *Session) Explain(query string) (string, error) {
	stmt, err := s.cs.Parse(query)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cs.Explain(stmt, nil)
}

// Profile runs a statement in the session (inside the open transaction,
// if any) and returns its result together with the operator plan
// annotated with observed execution counters. See DB.Profile.
func (s *Session) Profile(query string, params map[string]any) (*Result, string, error) {
	stmt, err := s.cs.Parse(query)
	if err != nil {
		return nil, "", err
	}
	vparams, err := convertParams(params)
	if err != nil {
		return nil, "", err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	res, planText, err := s.cs.Profile(stmt, vparams)
	if err != nil {
		return nil, "", err
	}
	return wrapResult(res), planText, nil
}

// Stats summarizes the graph state the session's next statement would
// see: inside a transaction, the working graph including its own
// uncommitted writes; otherwise the last committed snapshot.
func (s *Session) Stats() graph.Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cs.Stats()
}

// Indexes lists the property indexes the session's next statement would
// see: inside a transaction, the working graph including its own
// uncommitted CREATE/DROP INDEX statements; otherwise the last
// committed snapshot.
func (s *Session) Indexes() []IndexView {
	s.mu.Lock()
	defer s.mu.Unlock()
	return indexViews(s.cs.Indexes())
}

// Close rolls back any open transaction. The session must not be used
// afterwards.
func (s *Session) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cs.Close()
}

// Explain parses a statement and returns its canonical rendering (the
// AST printed back as Cypher), useful for debugging.
func Explain(query string) (string, error) {
	stmt, err := parser.Parse(query)
	if err != nil {
		return "", err
	}
	return stmt.String(), nil
}

// Save serializes the graph as a JSON snapshot to w. Snapshots preserve
// entity ids exactly and round-trip all property values (including NaN
// and infinities).
func (db *DB) Save(w io.Writer) error {
	snap := db.store.Acquire()
	defer snap.Release()
	return snap.Graph().WriteJSON(w)
}

// SaveFile writes the Save snapshot to path atomically: the snapshot
// is written to a temporary file in path's directory, fsynced, and
// renamed into place, so an interrupted or failing save can never
// truncate or corrupt an existing file at path.
func (db *DB) SaveFile(path string) error {
	snap := db.store.Acquire()
	defer snap.Release()
	return graph.AtomicWriteFile(path, func(w io.Writer) error {
		return snap.Graph().WriteJSON(w)
	})
}

// Load opens a database from a JSON snapshot produced by Save.
func Load(r io.Reader, opts ...Option) (*DB, error) {
	g, err := graph.ReadJSON(r)
	if err != nil {
		return nil, err
	}
	db := Open(opts...)
	db.store = graph.NewStore(g)
	return db, nil
}

// ExportDOT renders the graph in Graphviz DOT format for visualization.
func (db *DB) ExportDOT(w io.Writer, title string) error {
	snap := db.store.Acquire()
	defer snap.Release()
	return snap.Graph().WriteDOT(w, title)
}

// FuncInfo describes one built-in scalar function: its signature, its
// documentation line, and the semantic properties the planner consults
// (purity for constant folding, totality for predicate pushdown,
// determinism for both).
type FuncInfo struct {
	// Name is the canonical (lowercase) function name. Lookup in
	// queries is case-insensitive.
	Name string
	// Sig is the human-readable signature, e.g. "substring(s, start[, len])".
	Sig string
	// Doc is a one-line description.
	Doc string
	// MinArgs and MaxArgs bound the accepted argument count; MaxArgs
	// is -1 for variadic functions.
	MinArgs, MaxArgs int
	// Pure: the result depends only on the arguments (no graph reads,
	// no clock, no randomness).
	Pure bool
	// Total: never returns an evaluation error for any argument values.
	Total bool
	// Deterministic: same arguments always yield the same result.
	Deterministic bool
}

// Functions lists every built-in scalar function in the expression
// registry, sorted by name. Aggregates (count, sum, min, max, avg,
// collect) live in the projection machinery and are not listed here.
func Functions() []FuncInfo {
	defs := expr.Defs()
	out := make([]FuncInfo, len(defs))
	for i, d := range defs {
		out[i] = FuncInfo{
			Name: d.Name, Sig: d.Sig, Doc: d.Doc,
			MinArgs: d.MinArgs, MaxArgs: d.MaxArgs,
			Pure: d.Pure, Total: d.Total, Deterministic: d.Deterministic,
		}
	}
	return out
}
