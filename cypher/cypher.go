// Package cypher is the public API of the graph database: an embedded,
// in-memory property graph store queried and updated with Cypher, as
// described in "Updating Graph Databases with Cypher" (Green et al.,
// PVLDB 12(12), 2019).
//
// The database supports two update dialects:
//
//   - Cypher9 reproduces the legacy record-by-record update pipeline
//     of Neo4j's Cypher 9, including the atomicity and determinism
//     defects the paper catalogues in Section 4 (use it to study them);
//   - Revised (the default) implements the corrected semantics of
//     Sections 7-8: atomic SET with conflict detection, strict DELETE
//     with null replacement, and the MERGE ALL / MERGE SAME clauses.
//
// Quickstart:
//
//	db := cypher.Open()
//	db.Exec(`CREATE (:User{id:1, name:'Ada'})-[:KNOWS]->(:User{id:2, name:'Bob'})`, nil)
//	res, _ := db.Exec(`MATCH (a:User)-[:KNOWS]->(b) RETURN a.name AS a, b.name AS b`, nil)
//	for _, row := range res.Rows() {
//	    fmt.Println(row["a"], row["b"])
//	}
package cypher

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/match"
	"repro/internal/parser"
	"repro/internal/table"
	"repro/internal/value"
)

// Dialect selects the update semantics of a database.
type Dialect = core.Dialect

// Dialects.
const (
	// Cypher9 is the legacy pipeline of Section 3 with the Section 4
	// defects preserved.
	Cypher9 = core.DialectCypher9
	// Revised is the atomic, deterministic semantics of Section 7.
	Revised = core.DialectRevised
)

// MergeStrategy selects among the Section 6 proposals for MERGE.
type MergeStrategy = core.MergeStrategy

// Merge strategies (see the paper's Section 6).
const (
	MergeFromForm       = core.StrategyFromForm
	MergeLegacy         = core.StrategyLegacy
	MergeAtomic         = core.StrategyAtomic
	MergeGrouping       = core.StrategyGrouping
	MergeWeakCollapse   = core.StrategyWeakCollapse
	MergeCollapse       = core.StrategyCollapse
	MergeStrongCollapse = core.StrategyStrongCollapse
)

// ScanOrder controls legacy-mode record iteration (Example 3).
type ScanOrder = core.ScanOrder

// Scan orders.
const (
	ScanForward = core.ScanForward
	ScanReverse = core.ScanReverse
)

// PlannerMode selects cost-based match planning (the default) or the
// naive left-to-right enumeration.
type PlannerMode = core.PlannerMode

// Planner modes.
const (
	// PlannerCostBased anchors each pattern part at its most selective
	// node, reorders comma-separated parts, and prunes with pushed WHERE
	// conjuncts, using statistics maintained incrementally under updates.
	PlannerCostBased = core.PlannerCostBased
	// PlannerLeftToRight is the pre-planner enumeration, kept for A/B
	// comparison.
	PlannerLeftToRight = core.PlannerLeftToRight
)

// MatchMode selects pattern matching semantics.
type MatchMode = match.Mode

// Match modes.
const (
	// Isomorphism is Cypher's default: distinct relationship slots bind
	// distinct relationships (Section 2).
	Isomorphism = match.Isomorphism
	// Homomorphism allows relationship reuse (Example 7 discussion).
	Homomorphism = match.Homomorphism
)

// Value is a Cypher runtime value (see repro/internal/value for kinds).
type Value = value.Value

// UpdateStats counts the effects of a statement.
type UpdateStats = core.UpdateStats

// Option configures a database.
type Option func(*options)

type options struct {
	cfg core.Config
}

// WithDialect selects the update dialect (default Revised).
func WithDialect(d Dialect) Option {
	return func(o *options) { o.cfg.Dialect = d }
}

// WithMergeStrategy overrides the strategy used by MERGE clauses
// (default: derived from the clause form).
func WithMergeStrategy(s MergeStrategy) Option {
	return func(o *options) { o.cfg.MergeStrategy = s }
}

// WithScanOrder sets the record iteration order of legacy update clauses.
func WithScanOrder(s ScanOrder) Option {
	return func(o *options) { o.cfg.ScanOrder = s }
}

// WithMatchMode selects isomorphic (default) or homomorphic matching.
func WithMatchMode(m MatchMode) Option {
	return func(o *options) { o.cfg.MatchMode = m }
}

// WithPlanner selects the match planning mode (default cost-based).
func WithPlanner(p PlannerMode) Option {
	return func(o *options) { o.cfg.Planner = p }
}

// DB is an embedded graph database. All methods are safe for concurrent
// use; statements are serialized by an internal lock (single-writer).
type DB struct {
	mu     sync.Mutex
	graph  *graph.Graph
	engine *core.Engine
	opts   options
}

// Open creates an empty database.
func Open(opts ...Option) *DB {
	var o options
	o.cfg.Dialect = core.DialectRevised
	for _, opt := range opts {
		opt(&o)
	}
	return &DB{
		graph:  graph.New(),
		engine: core.NewEngine(o.cfg),
		opts:   o,
	}
}

// Dialect reports the database's dialect.
func (db *DB) Dialect() Dialect { return db.engine.Config().Dialect }

// Result is the outcome of a statement.
type Result struct {
	cols  []string
	rows  [][]Value
	stats UpdateStats
}

// Columns returns the output column names.
func (r *Result) Columns() []string { return append([]string(nil), r.cols...) }

// NumRows reports the number of result records.
func (r *Result) NumRows() int { return len(r.rows) }

// Row returns record i as a column-name map.
func (r *Result) Row(i int) map[string]Value {
	m := make(map[string]Value, len(r.cols))
	for j, c := range r.cols {
		m[c] = r.rows[i][j]
	}
	return m
}

// Rows returns all records as column-name maps.
func (r *Result) Rows() []map[string]Value {
	out := make([]map[string]Value, len(r.rows))
	for i := range r.rows {
		out[i] = r.Row(i)
	}
	return out
}

// Values returns record i as a slice in column order.
func (r *Result) Values(i int) []Value { return append([]Value(nil), r.rows[i]...) }

// Stats returns the update statistics of the statement.
func (r *Result) Stats() UpdateStats { return r.stats }

// Exec parses and runs a Cypher statement. Parameters may be native Go
// values (see value.FromGo) or Values. A failing statement leaves the
// database unchanged.
func (db *DB) Exec(query string, params map[string]any) (*Result, error) {
	stmt, err := parser.Parse(query)
	if err != nil {
		return nil, err
	}
	vparams, err := convertParams(params)
	if err != nil {
		return nil, err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	res, err := db.engine.ExecuteStatement(db.graph, stmt, vparams)
	if err != nil {
		return nil, err
	}
	return wrapResult(res), nil
}

// ExecTable runs a statement against an explicit driving table instead
// of the unit table — the execution mode of the paper's Section 6
// experiments, where "the input table is already populated". Build the
// table with NewTable.
func (db *DB) ExecTable(query string, t *Table, params map[string]any) (*Result, error) {
	stmt, err := parser.Parse(query)
	if err != nil {
		return nil, err
	}
	vparams, err := convertParams(params)
	if err != nil {
		return nil, err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	res, err := db.engine.ExecuteWithTable(db.graph, stmt, vparams, t.t)
	if err != nil {
		return nil, err
	}
	return wrapResult(res), nil
}

// Explain returns the streaming operator plan for a statement without
// executing it: one operator per line, children indented, with
// `[barrier]` marking the materialization points (ORDER BY,
// aggregation, and every update clause).
func (db *DB) Explain(query string) (string, error) {
	stmt, err := parser.Parse(query)
	if err != nil {
		return "", err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.engine.ExplainStatement(db.graph, stmt, nil)
}

// Parse checks a statement for syntactic and dialect validity without
// executing it.
func (db *DB) Parse(query string) error {
	stmt, err := parser.Parse(query)
	if err != nil {
		return err
	}
	return core.Validate(stmt, db.engine.Config().Dialect)
}

func wrapResult(res *core.Result) *Result {
	out := &Result{cols: res.Table.Columns(), stats: res.Stats}
	for i := 0; i < res.Table.Len(); i++ {
		out.rows = append(out.rows, res.Table.Values(i))
	}
	return out
}

func convertParams(params map[string]any) (map[string]value.Value, error) {
	if params == nil {
		return nil, nil
	}
	out := make(map[string]value.Value, len(params))
	for k, v := range params {
		cv, err := value.FromGo(v)
		if err != nil {
			return nil, fmt.Errorf("parameter $%s: %w", k, err)
		}
		out[k] = cv
	}
	return out, nil
}

// Table is a driving table for ExecTable.
type Table struct {
	t *table.Table
}

// NewTable creates a driving table with the given columns.
func NewTable(cols ...string) *Table {
	return &Table{t: table.New(cols...)}
}

// Append adds a record; values may be native Go values or Values, and
// nil means null.
func (t *Table) Append(vals ...any) error {
	row := make([]value.Value, len(vals))
	for i, v := range vals {
		cv, err := value.FromGo(v)
		if err != nil {
			return err
		}
		row[i] = cv
	}
	t.t.AppendRow(row...)
	return nil
}

// Len reports the number of records.
func (t *Table) Len() int { return t.t.Len() }

// Reverse reverses the record order (the "bottom-up" evaluation of
// Example 3).
func (t *Table) Reverse() { t.t.Reverse() }

// Permute reorders the records by the given permutation.
func (t *Table) Permute(perm []int) { t.t.Permute(perm) }

// NodeView is a read-only snapshot of a node.
type NodeView struct {
	ID     int64
	Labels []string
	Props  map[string]Value
}

// RelView is a read-only snapshot of a relationship.
type RelView struct {
	ID       int64
	Type     string
	Src, Tgt int64
	Props    map[string]Value
}

// NumNodes reports the number of nodes in the graph.
func (db *DB) NumNodes() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.graph.NumNodes()
}

// NumRels reports the number of relationships in the graph.
func (db *DB) NumRels() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.graph.NumRels()
}

// Nodes returns snapshots of all nodes in id order.
func (db *DB) Nodes() []NodeView {
	db.mu.Lock()
	defer db.mu.Unlock()
	var out []NodeView
	for _, id := range db.graph.NodeIDs() {
		n := db.graph.Node(id)
		nv := NodeView{ID: int64(id), Labels: n.SortedLabels(), Props: map[string]Value{}}
		for k, v := range n.Props {
			nv.Props[k] = v
		}
		out = append(out, nv)
	}
	return out
}

// Rels returns snapshots of all relationships in id order.
func (db *DB) Rels() []RelView {
	db.mu.Lock()
	defer db.mu.Unlock()
	var out []RelView
	for _, id := range db.graph.RelIDs() {
		r := db.graph.Rel(id)
		rv := RelView{ID: int64(id), Type: r.Type, Src: int64(r.Src), Tgt: int64(r.Tgt), Props: map[string]Value{}}
		for k, v := range r.Props {
			rv.Props[k] = v
		}
		out = append(out, rv)
	}
	return out
}

// Stats summarizes the graph (node/relationship counts by label/type).
func (db *DB) Stats() graph.Stats {
	db.mu.Lock()
	defer db.mu.Unlock()
	return graph.ComputeStats(db.graph)
}

// Snapshot returns an independent deep copy of the database (same
// dialect and options), useful for comparing semantics side by side.
func (db *DB) Snapshot(opts ...Option) *DB {
	db.mu.Lock()
	defer db.mu.Unlock()
	o := db.opts
	for _, opt := range opts {
		opt(&o)
	}
	return &DB{
		graph:  db.graph.Clone(),
		engine: core.NewEngine(o.cfg),
		opts:   o,
	}
}

// SameShape reports whether two databases hold isomorphic graphs
// ("equal up to id renaming", Section 8).
func SameShape(a, b *DB) bool {
	a.mu.Lock()
	ga := a.graph.Clone()
	a.mu.Unlock()
	b.mu.Lock()
	gb := b.graph.Clone()
	b.mu.Unlock()
	return graph.Isomorphic(ga, gb)
}

// Explain parses a statement and returns its canonical rendering (the
// AST printed back as Cypher), useful for debugging.
func Explain(query string) (string, error) {
	stmt, err := parser.Parse(query)
	if err != nil {
		return "", err
	}
	return stmt.String(), nil
}

// Save serializes the graph as a JSON snapshot to w. Snapshots preserve
// entity ids exactly and round-trip all property values (including NaN
// and infinities).
func (db *DB) Save(w io.Writer) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.graph.WriteJSON(w)
}

// Load opens a database from a JSON snapshot produced by Save.
func Load(r io.Reader, opts ...Option) (*DB, error) {
	g, err := graph.ReadJSON(r)
	if err != nil {
		return nil, err
	}
	db := Open(opts...)
	db.graph = g
	return db, nil
}

// ExportDOT renders the graph in Graphviz DOT format for visualization.
func (db *DB) ExportDOT(w io.Writer, title string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.graph.WriteDOT(w, title)
}
