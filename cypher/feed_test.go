package cypher

import (
	"testing"
)

// TestOnCommitChangeFeed drives the public change-feed hook through
// real statements: auto-commit statements and explicit transactions
// each deliver one delta, rollbacks deliver none, and the delta nets
// within-transaction churn.
func TestOnCommitChangeFeed(t *testing.T) {
	db := Open()
	var deltas []*Delta
	db.OnCommit(func(d *Delta) { deltas = append(deltas, d) })

	if _, err := db.Exec(`CREATE (:User{id:1})-[:KNOWS]->(:User{id:2})`, nil); err != nil {
		t.Fatal(err)
	}
	if len(deltas) != 1 {
		t.Fatalf("after auto-commit: %d deltas, want 1", len(deltas))
	}
	d := deltas[0]
	if len(d.NodesCreated) != 2 || len(d.RelsCreated) != 1 {
		t.Fatalf("auto-commit delta = %+v, want 2 nodes + 1 rel created", d)
	}
	if d.Epoch != db.Epoch() {
		t.Fatalf("delta epoch %d, DB epoch %d", d.Epoch, db.Epoch())
	}

	// An explicit transaction delivers one delta at COMMIT, with
	// created-then-deleted churn netted out.
	sess := db.Session()
	defer sess.Close()
	mustExec := func(q string) {
		t.Helper()
		if _, err := sess.Exec(q, nil); err != nil {
			t.Fatal(err)
		}
	}
	mustExec(`BEGIN`)
	mustExec(`CREATE (:Tmp)`)
	mustExec(`MATCH (x:Tmp) DELETE x`)
	mustExec(`MATCH (u:User{id:1}) SET u.name = 'Ada'`)
	if len(deltas) != 1 {
		t.Fatalf("mid-transaction: %d deltas, want still 1", len(deltas))
	}
	mustExec(`COMMIT`)
	if len(deltas) != 2 {
		t.Fatalf("after COMMIT: %d deltas, want 2", len(deltas))
	}
	d = deltas[1]
	if len(d.NodesCreated) != 0 || len(d.NodesDeleted) != 0 {
		t.Fatalf("txn delta = %+v, want churned :Tmp netted away", d)
	}
	if len(d.PropsTouched) != 1 || d.PropsTouched[0].Key != "name" {
		t.Fatalf("txn delta props = %+v, want one 'name' touch", d.PropsTouched)
	}

	// Rolled-back transactions and failing statements feed nothing.
	mustExec(`BEGIN`)
	mustExec(`CREATE (:Gone)`)
	mustExec(`ROLLBACK`)
	if _, err := db.Exec(`MATCH (u:User) DELETE u`, nil); err == nil {
		t.Fatal("expected strict DELETE to fail on attached relationships")
	}
	if len(deltas) != 2 {
		t.Fatalf("after rollback + failed statement: %d deltas, want 2", len(deltas))
	}

	// Reads inside a hook are allowed: the delta arrives with its epoch
	// already published.
	db.OnCommit(func(d *Delta) {
		if got := db.Epoch(); got != d.Epoch {
			t.Errorf("hook ran before epoch %d published (DB at %d)", d.Epoch, got)
		}
	})
	if _, err := db.Exec(`CREATE INDEX ON :User(id)`, nil); err != nil {
		t.Fatal(err)
	}
	d = deltas[len(deltas)-1]
	if len(d.IndexesCreated) != 1 || d.IndexesCreated[0].Label != "User" {
		t.Fatalf("schema delta = %+v, want one index creation", d)
	}
}
