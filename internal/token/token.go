// Package token defines the lexical tokens of Cypher as used by the
// lexer and parser. Keyword recognition is case-insensitive, following
// Cypher convention.
package token

import "strings"

// Type identifies a class of token.
type Type int

// Token types.
const (
	Illegal Type = iota
	EOF

	Ident  // identifiers, including backquoted `weird id`
	Int    // 123
	Float  // 1.5, 1e10
	String // 'abc', "abc"
	Param  // $name

	// Punctuation and operators.
	LParen   // (
	RParen   // )
	LBracket // [
	RBracket // ]
	LBrace   // {
	RBrace   // }
	Comma    // ,
	Colon    // :
	Semi     // ;
	Dot      // .
	DotDot   // ..
	Plus     // +
	Minus    // -
	Star     // *
	Slash    // /
	Percent  // %
	Caret    // ^
	Eq       // =
	Neq      // <>
	Lt       // <
	Leq      // <=
	Gt       // >
	Geq      // >=
	PlusEq   // +=
	Pipe     // |

	// Reserved keywords.
	keywordStart
	MATCH
	OPTIONAL
	WHERE
	RETURN
	WITH
	UNWIND
	AS
	CREATE
	DELETE
	DETACH
	SET
	REMOVE
	MERGE
	ON
	FOREACH
	IN
	UNION
	ORDER
	BY
	ASC
	DESC
	SKIP
	LIMIT
	DISTINCT
	AND
	OR
	XOR
	NOT
	TRUE
	FALSE
	NULL
	IS
	STARTS
	ENDS
	CONTAINS
	CASE
	WHEN
	THEN
	ELSE
	END
	ALL
	SAME
	LOAD
	CSV
	FROM
	HEADERS
	FIELDTERMINATOR
	BEGIN
	COMMIT
	ROLLBACK
	INDEX
	DROP
	keywordEnd
)

var typeNames = map[Type]string{
	Illegal: "ILLEGAL", EOF: "EOF", Ident: "IDENT", Int: "INT",
	Float: "FLOAT", String: "STRING", Param: "PARAM",
	LParen: "(", RParen: ")", LBracket: "[", RBracket: "]",
	LBrace: "{", RBrace: "}", Comma: ",", Colon: ":", Semi: ";",
	Dot: ".", DotDot: "..", Plus: "+", Minus: "-", Star: "*",
	Slash: "/", Percent: "%", Caret: "^", Eq: "=", Neq: "<>",
	Lt: "<", Leq: "<=", Gt: ">", Geq: ">=", PlusEq: "+=", Pipe: "|",
	MATCH: "MATCH", OPTIONAL: "OPTIONAL", WHERE: "WHERE", RETURN: "RETURN",
	WITH: "WITH", UNWIND: "UNWIND", AS: "AS", CREATE: "CREATE",
	DELETE: "DELETE", DETACH: "DETACH", SET: "SET", REMOVE: "REMOVE",
	MERGE: "MERGE", ON: "ON", FOREACH: "FOREACH", IN: "IN",
	UNION: "UNION", ORDER: "ORDER", BY: "BY", ASC: "ASC", DESC: "DESC",
	SKIP: "SKIP", LIMIT: "LIMIT", DISTINCT: "DISTINCT", AND: "AND",
	OR: "OR", XOR: "XOR", NOT: "NOT", TRUE: "TRUE", FALSE: "FALSE",
	NULL: "NULL", IS: "IS", STARTS: "STARTS", ENDS: "ENDS",
	CONTAINS: "CONTAINS", CASE: "CASE", WHEN: "WHEN", THEN: "THEN",
	ELSE: "ELSE", END: "END", ALL: "ALL", SAME: "SAME",
	LOAD: "LOAD", CSV: "CSV", FROM: "FROM", HEADERS: "HEADERS",
	FIELDTERMINATOR: "FIELDTERMINATOR", BEGIN: "BEGIN",
	COMMIT: "COMMIT", ROLLBACK: "ROLLBACK",
	INDEX: "INDEX", DROP: "DROP",
}

// String returns a printable name for the token type.
func (t Type) String() string {
	if s, ok := typeNames[t]; ok {
		return s
	}
	return "UNKNOWN"
}

// IsKeyword reports whether the type is a reserved keyword.
func (t Type) IsKeyword() bool { return t > keywordStart && t < keywordEnd }

var keywords = func() map[string]Type {
	m := make(map[string]Type)
	for t := keywordStart + 1; t < keywordEnd; t++ {
		m[typeNames[t]] = t
	}
	// Long-form synonyms.
	m["ASCENDING"] = ASC
	m["DESCENDING"] = DESC
	return m
}()

// Lookup maps an identifier to its keyword type, or Ident.
// The comparison is case-insensitive.
func Lookup(ident string) Type {
	if t, ok := keywords[strings.ToUpper(ident)]; ok {
		return t
	}
	return Ident
}

// Position locates a token in the source text (1-based line and column).
type Position struct {
	Line   int
	Column int
}

// Token is a lexical token with its source text and position.
type Token struct {
	Type Type
	Lit  string // literal text (unquoted for strings/idents, raw for numbers)
	Pos  Position
}

// Is reports whether the token has the given type.
func (t Token) Is(tt Type) bool { return t.Type == tt }
