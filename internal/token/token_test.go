package token

import "testing"

func TestLookupCaseInsensitive(t *testing.T) {
	cases := map[string]Type{
		"MATCH": MATCH, "match": MATCH, "Match": MATCH,
		"merge": MERGE, "ALL": ALL, "same": SAME,
		"ascending": ASC, "DESCENDING": DESC,
		"notakeyword": Ident, "foo": Ident,
	}
	for lit, want := range cases {
		if got := Lookup(lit); got != want {
			t.Errorf("Lookup(%q) = %v, want %v", lit, got, want)
		}
	}
}

func TestIsKeyword(t *testing.T) {
	for _, kw := range []Type{MATCH, RETURN, MERGE, ALL, SAME, FIELDTERMINATOR} {
		if !kw.IsKeyword() {
			t.Errorf("%v should be a keyword", kw)
		}
	}
	for _, not := range []Type{Ident, Int, String, LParen, Eq, EOF, Illegal} {
		if not.IsKeyword() {
			t.Errorf("%v should not be a keyword", not)
		}
	}
}

func TestTypeString(t *testing.T) {
	if MATCH.String() != "MATCH" || LParen.String() != "(" || EOF.String() != "EOF" {
		t.Error("String of known types")
	}
	if Type(9999).String() != "UNKNOWN" {
		t.Error("String of unknown type")
	}
}

func TestTokenIs(t *testing.T) {
	tok := Token{Type: MATCH, Lit: "MATCH"}
	if !tok.Is(MATCH) || tok.Is(RETURN) {
		t.Error("Token.Is")
	}
}

// Every keyword must round-trip through Lookup on its own name.
func TestAllKeywordsRoundTrip(t *testing.T) {
	for tt := Type(0); tt < Type(200); tt++ {
		if !tt.IsKeyword() {
			continue
		}
		name := tt.String()
		if name == "UNKNOWN" {
			t.Errorf("keyword %d has no name", tt)
			continue
		}
		if got := Lookup(name); got != tt {
			t.Errorf("Lookup(%q) = %v, want %v", name, got, tt)
		}
	}
}
