package match

import (
	"testing"

	"repro/internal/expr"
	"repro/internal/graph"
	"repro/internal/value"
)

func TestPreBoundRelVariable(t *testing.T) {
	g := graph.New()
	a := g.CreateNode(nil, nil)
	b := g.CreateNode(nil, nil)
	r1, _ := g.CreateRel(a.ID, b.ID, "T", nil)
	g.CreateRel(a.ID, b.ID, "T", nil) // a second parallel rel
	m := matcher(g)

	// A bound rel variable restricts candidates to exactly that rel.
	env := expr.Env{"r": value.Rel{ID: int64(r1.ID)}}
	res, err := m.Match(patternOf(t, "(x)-[r:T]->(y)"), env)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("bound rel matches = %d, want 1", len(res))
	}
	if res[0]["r"].(value.Rel).ID != int64(r1.ID) {
		t.Error("wrong rel bound")
	}

	// Bound to null: no matches.
	res, err = m.Match(patternOf(t, "(x)-[r:T]->(y)"), expr.Env{"r": value.NullValue})
	if err != nil || len(res) != 0 {
		t.Errorf("null rel binding: %d, %v", len(res), err)
	}

	// Bound to a non-rel: error.
	if _, err := m.Match(patternOf(t, "(x)-[r:T]->(y)"), expr.Env{"r": value.Int(1)}); err == nil {
		t.Error("non-rel binding should error")
	}

	// Type filter still applies to the bound rel.
	res, _ = m.Match(patternOf(t, "(x)-[r:OTHER]->(y)"), env)
	if len(res) != 0 {
		t.Error("bound rel must still satisfy the type filter")
	}
}

func TestVarLengthPreBoundErrors(t *testing.T) {
	g := graph.New()
	a := g.CreateNode(nil, nil)
	b := g.CreateNode(nil, nil)
	r, _ := g.CreateRel(a.ID, b.ID, "T", nil)
	m := matcher(g)
	env := expr.Env{"rs": value.Rel{ID: int64(r.ID)}}
	if _, err := m.Match(patternOf(t, "(x)-[rs:T*1..2]->(y)"), env); err == nil {
		t.Error("pre-bound var-length variable should error")
	}
}

func TestEndNodeBoundMismatch(t *testing.T) {
	g := graph.New()
	a := g.CreateNode(nil, nil)
	b := g.CreateNode(nil, nil)
	c := g.CreateNode(nil, nil)
	g.CreateRel(a.ID, b.ID, "T", nil)
	m := matcher(g)
	// y is bound to c, but the only T-rel ends at b: no match, no error.
	env := expr.Env{"y": value.Node{ID: int64(c.ID)}}
	res, err := m.Match(patternOf(t, "(x)-[:T]->(y)"), env)
	if err != nil || len(res) != 0 {
		t.Errorf("mismatched end binding: %d, %v", len(res), err)
	}
	// y bound to a non-node: error only when reachable.
	if _, err := m.Match(patternOf(t, "(x)-[:T]->(y)"), expr.Env{"y": value.Int(1)}); err == nil {
		t.Error("non-node end binding should error")
	}
	// y bound to null: no matches.
	res, err = m.Match(patternOf(t, "(x)-[:T]->(y)"), expr.Env{"y": value.NullValue})
	if err != nil || len(res) != 0 {
		t.Errorf("null end binding: %d, %v", len(res), err)
	}
}

func TestVarLengthRelPropsFilter(t *testing.T) {
	g := graph.New()
	var ids []graph.NodeID
	for i := 0; i < 3; i++ {
		ids = append(ids, g.CreateNode(nil, nil).ID)
	}
	g.CreateRel(ids[0], ids[1], "T", value.Map{"w": value.Int(1)})
	g.CreateRel(ids[1], ids[2], "T", value.Map{"w": value.Int(2)})
	m := matcher(g)
	// Only w:1 edges are traversable: a single 1-hop path.
	res, err := m.Match(patternOf(t, "(x)-[:T*1..2 {w:1}]->(y)"), expr.Env{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Errorf("filtered var-length = %d, want 1", len(res))
	}
}

func TestVarLengthZeroHops(t *testing.T) {
	g := graph.New()
	a := g.CreateNode([]string{"X"}, nil)
	m := matcher(g)
	// *0.. includes the empty path where start = end.
	res, err := m.Match(patternOf(t, "(x:X)-[:T*0..1]->(y)"), expr.Env{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("zero-hop matches = %d, want 1", len(res))
	}
	if res[0]["x"] != res[0]["y"] {
		t.Error("zero-hop path must bind x = y")
	}
	_ = a
}

func TestPropsErrorPropagation(t *testing.T) {
	g := graph.New()
	g.CreateNode([]string{"A"}, nil)
	m := matcher(g)
	// A property expression referencing an unbound variable errors.
	if _, err := m.Match(patternOf(t, "(x:A{k: nosuch.prop})"), expr.Env{}); err == nil {
		t.Error("bad property expression should error")
	}
}

func TestMultipleLabelsUseSmallestIndex(t *testing.T) {
	g := graph.New()
	for i := 0; i < 50; i++ {
		g.CreateNode([]string{"Common"}, nil)
	}
	n := g.CreateNode([]string{"Common", "Rare"}, nil)
	m := matcher(g)
	res, err := m.Match(patternOf(t, "(x:Common:Rare)"), expr.Env{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0]["x"].(value.Node).ID != int64(n.ID) {
		t.Errorf("multi-label match = %v", res)
	}
}

func TestMatchEmitsDeterministicOrder(t *testing.T) {
	g := graph.New()
	for i := 0; i < 5; i++ {
		g.CreateNode([]string{"N"}, value.Map{"i": value.Int(int64(i))})
	}
	m := matcher(g)
	res, _ := m.Match(patternOf(t, "(x:N)"), expr.Env{})
	for i := 1; i < len(res); i++ {
		prev := res[i-1]["x"].(value.Node).ID
		cur := res[i]["x"].(value.Node).ID
		if prev >= cur {
			t.Fatal("match enumeration must be in ascending id order")
		}
	}
}
