// Anchor partitioning for morsel-driven parallel matching.
//
// The planner anchors the first planned part at its most selective node
// slot and enumerates that slot's candidates in ascending id order; the
// rest of the search is a pure function of each anchor candidate (the
// isomorphism `used` set is fully backtracked between candidates, see
// expandRel/expandVarLength). Splitting the candidate list into
// contiguous chunks and enumerating each chunk independently therefore
// produces exactly the corresponding subsequences of the serial
// enumeration — which is what lets the executor fan anchor candidates
// out as morsels over a pinned immutable snapshot and gather the
// results back in morsel order, bit-identical to a serial run.
package match

import (
	"errors"

	"repro/internal/ast"
	"repro/internal/expr"
	"repro/internal/graph"
	"repro/internal/value"
)

// AnchorPlan is a planned, partitionable pattern enumeration: the
// per-part plans plus the anchor candidate list of the first planned
// part. It is immutable after PlanAnchors and safe to share across
// worker matchers enumerating disjoint anchor subsets concurrently.
type AnchorPlan struct {
	parts   []*ast.PatternPart
	plans   []partPlan
	anchors []graph.NodeID
}

// Anchors returns the anchor candidate list (ascending entity id). The
// caller partitions it; slices index the returned list directly.
func (ap *AnchorPlan) Anchors() []graph.NodeID { return ap.anchors }

// PlanAnchors plans parts for env's bound variables and, when the
// enumeration is partitionable by anchor candidate, returns the shared
// plan plus the first planned part's candidate list. It returns
// ok=false — and the caller must fall back to serial Stream — when any
// per-row dimension could differ from the build-time plan:
//
//   - the naive seed walk is (or could become) required: DisablePlan,
//     ForceAnchor test hooks, or naiveRequired on the seed env;
//   - the first part anchors on a pre-bound variable or an index seek
//     (both are evaluated per driving record, and a seek's bucket is
//     tiny anyway — nothing worth partitioning).
//
// The plan is computed against the current graph; callers must execute
// it on the same (immutable snapshot) graph.
func (m *Matcher) PlanAnchors(parts []*ast.PatternPart, env expr.Env) (*AnchorPlan, bool) {
	if m.DisablePlan || m.ForceAnchor != nil || len(parts) == 0 {
		return nil, false
	}
	if m.naiveRequired(parts, env) {
		return nil, false
	}
	plans := m.plansFor(parts, env)
	if len(plans) == 0 {
		return nil, false
	}
	p0 := plans[0]
	np := p0.part.Nodes[p0.anchor]
	if p0.seek != nil {
		return nil, false
	}
	if np.Var != "" {
		if _, bound := env[np.Var]; bound {
			return nil, false
		}
	}
	return &AnchorPlan{parts: parts, plans: plans, anchors: m.nodeCandidates(np)}, true
}

// StreamAnchors enumerates matches exactly like Stream, except that the
// first planned part's anchor candidates are restricted to the given
// subset (a sub-slice of ap.Anchors()). The receiving matcher performs
// the enumeration — workers each use their own Matcher (own Stats), with
// the same pushdown installed as the planning matcher had — while the
// AnchorPlan itself is shared read-only.
func (m *Matcher) StreamAnchors(ap *AnchorPlan, anchors []graph.NodeID, env expr.Env, yield func(expr.Env) error) error {
	m.runNaive = false
	// Pre-predicates reference only already-bound variables: same
	// wholesale skip as Stream. Each morsel re-checks them (cheap, and
	// the result is identical for every morsel of one statement).
	for _, p := range m.PrePreds {
		tri, err := m.Ev.EvalBool(p, env)
		if err == nil && tri != value.True {
			return nil
		}
	}
	used := make(map[graph.RelID]bool)
	err := m.matchPartFrom(ap.plans[0], anchors, env, used, func(e expr.Env) error {
		return m.matchParts(ap.plans, 1, e, used, func(e2 expr.Env) error {
			if m.Stats != nil {
				m.Stats.Emitted++
			}
			return yield(e2)
		})
	})
	if errors.Is(err, ErrStop) {
		return nil
	}
	return err
}

// NewAnchorCursor is NewCursor over StreamAnchors: batched pulling of
// the matches whose first-part anchor lies in the given candidate
// subset. See NewCursor for the max/filter contract.
func (m *Matcher) NewAnchorCursor(ap *AnchorPlan, anchors []graph.NodeID, env expr.Env, max int, filter func(expr.Env) (bool, error)) *Cursor {
	return newCursor(func(yield func(expr.Env) error) error {
		return m.StreamAnchors(ap, anchors, env, yield)
	}, max, filter)
}
