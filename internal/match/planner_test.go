package match

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/expr"
	"repro/internal/graph"
	"repro/internal/parser"
	"repro/internal/value"
)

// mustExpr parses a predicate expression via a WHERE clause.
func mustExpr(t *testing.T, src string) ast.Expr {
	t.Helper()
	stmt, err := parser.Parse("MATCH (zz_) WHERE " + src + " RETURN 1")
	if err != nil {
		t.Fatalf("parse expr %q: %v", src, err)
	}
	return stmt.Queries[0].Clauses[0].(*ast.MatchClause).Where
}

// envKey renders one match environment order-insensitively.
func envKey(e expr.Env) string {
	keys := make([]string, 0, len(e))
	for k := range e {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		sb.WriteString(k)
		sb.WriteString("=")
		sb.WriteString(value.Key(e[k]))
		sb.WriteString(";")
	}
	return sb.String()
}

func multiset(t *testing.T, m *Matcher, pattern string, env expr.Env) []string {
	t.Helper()
	res, err := m.Match(patternOf(t, pattern), env)
	if err != nil {
		t.Fatalf("%s: %v", pattern, err)
	}
	keys := make([]string, len(res))
	for i, e := range res {
		keys[i] = envKey(e)
	}
	sort.Strings(keys)
	return keys
}

// TestPlannedMatchesNaiveRandomGraphs cross-checks the planned
// (anchored, bidirectional, reordered) enumeration against the naive
// left-to-right walk over random skewed graphs: same match multiset for
// every pattern shape, in both uniqueness modes. This is the
// order-insensitivity argument of the planner made executable at the
// matcher level.
func TestPlannedMatchesNaiveRandomGraphs(t *testing.T) {
	patterns := []string{
		`(a:A)-[:R]->(b:B)`,
		`(a:A)<-[:R]-(b:B)`,
		`(a)-[r]-(b)`,
		`(a:A)-[:R]->(b:B)-[:S]->(c:C)`,
		`(a:C)<-[:S]-(b:B)<-[:R]-(c:A)`,
		`(a:A)-[:R]->(b)-[:S]->(c:C), (d:B)`,
		`(a:A)-[:R*1..3]->(b)`,
		`(a)-[:S*1..2]-(b:C)`,
		`pth = (a:A)-[:R]->(b)-[:S*1..2]->(c)`,
		`(a:A)-[r1:R]->(b), (c)-[r2:S]->(b)`,
		`(a)-[:R]->(a)`,
		`(a:A)-[:R]->(b:B{v:1})`,
	}
	labels := [][]string{{"A"}, {"B"}, {"C"}, {"A", "B"}, {}}
	types := []string{"R", "S"}

	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := graph.New()
		var ids []graph.NodeID
		// Skewed label distribution so anchors genuinely flip.
		for i := 0; i < 30; i++ {
			li := 0
			if i >= 3 {
				li = 1 + rng.Intn(len(labels)-1)
			}
			n := g.CreateNode(labels[li], value.Map{"v": value.Int(int64(rng.Intn(3)))})
			ids = append(ids, n.ID)
		}
		for i := 0; i < 60; i++ {
			src := ids[rng.Intn(len(ids))]
			tgt := ids[rng.Intn(len(ids))]
			if _, err := g.CreateRel(src, tgt, types[rng.Intn(len(types))], nil); err != nil {
				t.Fatal(err)
			}
		}

		for _, mode := range []Mode{Isomorphism, Homomorphism} {
			planned := &Matcher{Graph: g, Ev: &expr.Evaluator{Graph: g}, Mode: mode}
			naive := &Matcher{Graph: g, Ev: &expr.Evaluator{Graph: g}, Mode: mode, DisablePlan: true}
			for _, pat := range patterns {
				got := multiset(t, planned, pat, expr.Env{})
				want := multiset(t, naive, pat, expr.Env{})
				if len(got) != len(want) {
					t.Fatalf("seed=%d mode=%v %s: planned %d matches, naive %d",
						seed, mode, pat, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("seed=%d mode=%v %s: multiset diverged at %d:\n%s\nvs\n%s",
							seed, mode, pat, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestForcedAnchorsSweepMultiset forces every anchor position of a
// 3-node path and requires identical multisets.
func TestForcedAnchorsSweepMultiset(t *testing.T) {
	g := graph.New()
	a := g.CreateNode([]string{"A"}, nil)
	b1 := g.CreateNode([]string{"B"}, nil)
	b2 := g.CreateNode([]string{"B"}, nil)
	c := g.CreateNode([]string{"C"}, nil)
	for _, b := range []graph.NodeID{b1.ID, b2.ID} {
		if _, err := g.CreateRel(a.ID, b, "R", nil); err != nil {
			t.Fatal(err)
		}
		if _, err := g.CreateRel(b, c.ID, "S", nil); err != nil {
			t.Fatal(err)
		}
	}
	pat := `(x:A)-[:R]->(y:B)-[:S]->(z:C)`
	base := multiset(t, &Matcher{Graph: g, Ev: &expr.Evaluator{Graph: g}}, pat, expr.Env{})
	if len(base) != 2 {
		t.Fatalf("base matches = %d, want 2", len(base))
	}
	for anchor := 0; anchor < 3; anchor++ {
		m := &Matcher{Graph: g, Ev: &expr.Evaluator{Graph: g},
			ForceAnchor: func(int, *ast.PatternPart) int { return anchor }}
		got := multiset(t, m, pat, expr.Env{})
		if fmt.Sprint(got) != fmt.Sprint(base) {
			t.Errorf("anchor=%d multiset diverged:\n%v\nvs\n%v", anchor, got, base)
		}
	}
}

// TestPushdownClassification pins which conjuncts are pushed where.
func TestPushdownClassification(t *testing.T) {
	parts := patternOf(t, `(a:A)-[r:R]->(b:B)-[vs:S*1..2]->(c)`)
	where := mustExpr(t, `a.v = 1 AND r.w > 2 AND a.v < b.v AND vs IS NULL AND outer = 3 AND c.k = outer`)
	pd := NewPushdown(where, parts, []string{"outer"})
	if pd == nil {
		t.Fatal("expected pushdown")
	}
	count := func(m map[*ast.NodePattern][]ast.Expr) int {
		n := 0
		for _, v := range m {
			n += len(v)
		}
		return n
	}
	// a.v = 1 → node a; c.k = outer → node c.
	if got := count(pd.Node); got != 2 {
		t.Errorf("node preds = %d, want 2 (%v)", got, pd.Node)
	}
	// r.w > 2 → rel r.
	relCount := 0
	for _, v := range pd.Rel {
		relCount += len(v)
	}
	if relCount != 1 {
		t.Errorf("rel preds = %d, want 1", relCount)
	}
	// outer = 3 → pre-predicate.
	if len(pd.Pre) != 1 {
		t.Errorf("pre preds = %d, want 1", len(pd.Pre))
	}
	// a.v < b.v spans two slots and vs is a var-length variable: neither
	// may be pushed (but both are total, so they do not block the rest).
	// Total pushed = 4 of 6 conjuncts.
}

// TestPushdownBlockedByFallibleConjunct: when any conjunct can error,
// the other conjuncts must not prune — pruning would suppress the
// error the seed semantics raises on complete matches.
func TestPushdownBlockedByFallibleConjunct(t *testing.T) {
	parts := patternOf(t, `(a:A)-[:R]->(b:B)`)
	// The total conjunct b.v = 1 must not prune: pruning would hide the
	// runtime error a.v / 0 raises on completions. The fallible conjunct
	// itself MAY prune — its errors defer, and its sibling cannot error.
	pd := NewPushdown(mustExpr(t, `a.v / 0 = 1 AND b.v = 1`), parts, nil)
	if pd == nil {
		t.Fatal("expected the fallible conjunct itself to be pushed")
	}
	var pushed []string
	for _, cs := range pd.Node {
		for _, c := range cs {
			pushed = append(pushed, c.String())
		}
	}
	if len(pushed) != 1 || !strings.Contains(pushed[0], "/ 0") {
		t.Errorf("pushed = %v, want only the fallible conjunct", pushed)
	}
	// Two fallible conjuncts block each other entirely.
	pd = NewPushdown(mustExpr(t, `a.v / 0 = 1 AND b.v / 0 = 1`), parts, nil)
	if !pd.Empty() {
		t.Errorf("two fallible conjuncts must block all pushdown, got %+v", pd)
	}
	// A lone fallible conjunct is eligible: its own errors defer.
	pd = NewPushdown(mustExpr(t, `a.v / 0 = 1`), parts, nil)
	if pd.Empty() {
		t.Error("lone conjunct should be pushable (errors defer)")
	}
}

// TestPushdownErrorsDeferred: a pushed conjunct that errors on a
// candidate must not fail the match — the error belongs to the full
// WHERE evaluation, which only sees complete matches.
func TestPushdownErrorsDeferred(t *testing.T) {
	g := graph.New()
	// v holds a string on one node: v + 1 errors there.
	bad := g.CreateNode([]string{"A"}, value.Map{"v": value.String("oops")})
	good := g.CreateNode([]string{"A"}, value.Map{"v": value.Int(1)})
	tgt := g.CreateNode([]string{"B"}, nil)
	// Only the good node has an edge; the bad node never completes a
	// match, so the seed semantics never evaluates WHERE on it.
	if _, err := g.CreateRel(good.ID, tgt.ID, "R", nil); err != nil {
		t.Fatal(err)
	}
	_ = bad
	parts := patternOf(t, `(a:A)-[:R]->(b:B)`)
	where := mustExpr(t, `a.v + 1 = 2`)
	m := &Matcher{Graph: g, Ev: &expr.Evaluator{Graph: g}}
	m.SetPushdown(NewPushdown(where, parts, nil))
	// The pushdown evaluates a.v + 1 on the bad candidate too; the
	// error must be swallowed (candidate kept, pruned by no edge).
	var res []expr.Env
	err := m.Stream(parts, expr.Env{}, func(e expr.Env) error {
		ok, err := m.Ev.EvalBool(where, e)
		if err != nil {
			return err
		}
		if ok == value.True {
			res = append(res, e)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("pushed predicate error leaked: %v", err)
	}
	if len(res) != 1 {
		t.Errorf("matches = %d, want 1", len(res))
	}
}

// TestDescribePlan checks the EXPLAIN rendering: order, anchors and
// estimates reflect the statistics.
func TestDescribePlan(t *testing.T) {
	g := graph.New()
	for i := 0; i < 50; i++ {
		g.CreateNode([]string{"Common"}, nil)
	}
	rare := g.CreateNode([]string{"Rare"}, nil)
	if _, err := g.CreateRel(g.CreateNode([]string{"Common"}, nil).ID, rare.ID, "R", nil); err != nil {
		t.Fatal(err)
	}
	m := &Matcher{Graph: g, Ev: &expr.Evaluator{Graph: g}}
	desc := m.DescribePlan(patternOf(t, `(c:Common)-[:R]->(r:Rare)`), nil)
	for _, want := range []string{"order=[0]", "anchor=[r]", "est=[1]"} {
		if !strings.Contains(desc, want) {
			t.Errorf("DescribePlan missing %q: %s", want, desc)
		}
	}
}

// TestPlanCacheSurvivesUndriftedMutation: small structural mutations
// bump graph.Version, but a cached plan whose anchor estimates have not
// drifted is reused (identity of the cached slice), so interleaved
// writes do not force a replan per record.
func TestPlanCacheSurvivesUndriftedMutation(t *testing.T) {
	g := graph.New()
	for i := 0; i < 10; i++ {
		g.CreateNode([]string{"A"}, nil)
	}
	for i := 0; i < 1000; i++ {
		g.CreateNode([]string{"B"}, nil)
	}
	m := &Matcher{Graph: g, Ev: &expr.Evaluator{Graph: g}}
	parts := patternOf(t, "(a:A)-[:R]->(b:B)")
	plans1 := m.plansFor(parts, expr.Env{})
	if plans1[0].anchor != 0 {
		t.Fatalf("anchor = %d, want 0 (the rare :A slot)", plans1[0].anchor)
	}
	ver := g.Version()
	g.CreateNode([]string{"B"}, nil) // version bump, negligible drift
	if g.Version() == ver {
		t.Fatal("mutation did not bump the version")
	}
	plans2 := m.plansFor(parts, expr.Env{})
	if &plans1[0] != &plans2[0] {
		t.Error("undrifted version bump discarded the cached plan")
	}
}

// TestPlanCacheSurvivesRolledBackTxn is the regression test for the
// copy-on-write rollback path: a transaction that creates an index and
// bulk-loads nodes but then rolls back leaves the published graph
// content-identical, so a plan cached before the transaction must be
// reused afterwards — the rollback must not bump the cache-relevant
// counters (Version, IndexEpoch) or drift the statistics. Before the
// fix, the store published the undo-restored clone, whose churned
// counters invalidated every cached plan for no content change.
func TestPlanCacheSurvivesRolledBackTxn(t *testing.T) {
	g := graph.New()
	g.CreateIndex("A", "v")
	for i := 0; i < 10; i++ {
		g.CreateNode([]string{"A"}, value.Map{"v": value.Int(int64(i))})
	}
	for i := 0; i < 1000; i++ {
		g.CreateNode([]string{"B"}, nil)
	}
	s := graph.NewStore(g)

	snap := s.Acquire()
	m := &Matcher{Graph: snap.Graph(), Ev: &expr.Evaluator{Graph: snap.Graph()}}
	parts := patternOf(t, "(a:A{v:1})-[:R]->(b:B)")
	plans1 := m.plansFor(parts, expr.Env{})
	if plans1[0].seek == nil {
		t.Fatal("expected an index-seek anchor on :A(v)")
	}
	preVersion, preIdxEpoch := snap.Graph().Version(), snap.Graph().IndexEpoch()

	// Clone-path transaction (the snapshot above keeps the reader
	// pinned): schema op + heavy skew, then a full rollback.
	w := s.BeginWrite()
	w.Graph().CreateIndex("B", "v")
	w.Graph().DropIndex("A", "v")
	for i := 0; i < 5000; i++ {
		w.Graph().CreateNode([]string{"A"}, nil)
	}
	w.Rollback()
	snap.Release()

	after := s.Acquire()
	defer after.Release()
	if got := after.Graph().Version(); got != preVersion {
		t.Fatalf("rolled-back txn moved Version %d -> %d", preVersion, got)
	}
	if got := after.Graph().IndexEpoch(); got != preIdxEpoch {
		t.Fatalf("rolled-back txn moved IndexEpoch %d -> %d", preIdxEpoch, got)
	}
	// Re-point the matcher at the newly published epoch, as the next
	// statement would: the cached plan must survive.
	m.Graph = after.Graph()
	m.Ev = &expr.Evaluator{Graph: after.Graph()}
	plans2 := m.plansFor(parts, expr.Env{})
	if &plans1[0] != &plans2[0] {
		t.Error("rolled-back transaction invalidated the cached plan")
	}
	if plans2[0].seek == nil {
		t.Error("cached plan lost its index seek anchor")
	}
}

// TestPlanCacheReplansOnStatsDrift is the regression test for stale
// anchors: a skewed bulk load inverts which label is rare, and the
// cached plan must be re-planned onto the new anchor rather than kept
// on version-blind reuse.
func TestPlanCacheReplansOnStatsDrift(t *testing.T) {
	g := graph.New()
	for i := 0; i < 10; i++ {
		g.CreateNode([]string{"A"}, nil)
	}
	for i := 0; i < 200; i++ {
		g.CreateNode([]string{"B"}, nil)
	}
	m := &Matcher{Graph: g, Ev: &expr.Evaluator{Graph: g}}
	parts := patternOf(t, "(a:A)-[:R]->(b:B)")
	plans := m.plansFor(parts, expr.Env{})
	if plans[0].anchor != 0 {
		t.Fatalf("pre-load anchor = %d, want 0 (:A is rare)", plans[0].anchor)
	}
	// Skewed bulk load: :A becomes the common label by far.
	for i := 0; i < 5000; i++ {
		g.CreateNode([]string{"A"}, nil)
	}
	plans = m.plansFor(parts, expr.Env{})
	if plans[0].anchor != 1 {
		t.Errorf("post-load anchor = %d, want 1 (:B is now rare); stale plan survived the drift", plans[0].anchor)
	}
	// And the matcher still enumerates correctly after the replan.
	if _, err := g.CreateRel(g.NodeIDsByLabel("A")[0], g.NodeIDsByLabel("B")[0], "R", nil); err != nil {
		t.Fatal(err)
	}
	res, err := m.Match(parts, expr.Env{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("matches = %d, want 1", len(res))
	}
}
