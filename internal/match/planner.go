// Cost-based planning for pattern matching.
//
// The seed matcher walked every pattern part left to right from its
// first node, so `MATCH (a:Rare)<-[:R]-(b:Common)` scanned the huge
// Common label instead of the tiny Rare one. The planner fixes that
// with three levers, all driven by the graph's O(1) statistics
// (internal/graph/stats.go):
//
//   - Anchor selection: each part starts at its most selective node —
//     pre-bound variables beat everything, then the smallest label
//     cardinality, discounted for inline property maps and pushed WHERE
//     predicates — and the walk expands bidirectionally from there.
//   - Side orientation: when the anchor is in the middle of a path, the
//     side with the lower estimated first-hop fanout (average degree per
//     (label, rel-type)) is expanded first, so the cheaper constraint
//     prunes before the expensive one runs.
//   - Part ordering: comma-separated parts run in greedy order of
//     estimated anchor cardinality; parts connected to already-bound
//     variables naturally come first because a bound anchor costs ~0.
//
// Correctness: a pattern is a conjunction of constraints, and the
// relationship-uniqueness side condition is a set-membership test, so
// the multiset of matches is independent of the order in which slots
// are bound — only the enumeration ORDER of the results changes. Both
// executors share this planner (it runs inside Matcher.Stream), so the
// streaming-vs-materializing golden equivalence stays bit-for-bit, and
// the planner equivalence suite in internal/core checks multiset
// equality across forced anchor choices.
package match

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/ast"
	"repro/internal/expr"
	"repro/internal/value"
)

// step is one relationship expansion of a planned walk: traverse
// Part.Rels[rel] from the already-bound node slot `from` to bind node
// slot `to`. reversed marks right-to-left traversal (the pattern
// direction is flipped when consulting adjacency).
type step struct {
	rel      int
	from, to int
	reversed bool
}

// seekPlan describes an index-backed anchor: instead of scanning the
// anchor label, enumeration reads one bucket of the (label, prop)
// property index — the nodes whose stored prop equals the seek value.
// The value is either the anchor slot's inline property map entry
// (fromProps) or the opposite side of a pushed `v.prop = expr` WHERE
// conjunct (val); it is evaluated per driving record at enumeration
// time, and any evaluation failure falls back to the plain label scan
// so runtime errors surface exactly as they would without the index.
type seekPlan struct {
	label, prop string
	val         ast.Expr // equality conjunct's value side; nil when fromProps
	fromProps   bool     // value comes from the slot's inline property map
}

// partPlan is the execution plan of one pattern part.
type partPlan struct {
	part    *ast.PatternPart
	origIdx int     // position in the written pattern tuple
	anchor  int     // node slot enumeration starts from
	est     float64 // estimated anchor candidate count
	seek    *seekPlan
	steps   []step
}

// planParts orders the parts and picks an anchor and walk for each.
// bound is the set of variables already bound when enumeration starts
// (the driving-table columns); variables bound by earlier parts extend
// it as the greedy order is fixed.
func (m *Matcher) planParts(parts []*ast.PatternPart, bound map[string]bool) []partPlan {
	// Inline property maps may reference pattern variables bound by the
	// written left-to-right walk, e.g. (x:A)-[:T]->(y {k: x.k}). Any
	// other slot order would evaluate such a map before its dependency
	// is bound. Rather than track per-slot dependencies, fall back to
	// the written order and anchors for the whole clause — the seed
	// behaviour, errors included — whenever a pattern's own variables
	// appear in its property maps.
	if m.ForceAnchor == nil && dependentProps(parts, bound) {
		plans := make([]partPlan, len(parts))
		for i, part := range parts {
			plans[i] = partPlan{part: part, origIdx: i, anchor: 0, est: m.anchorEstimate(part.Nodes[0], bound), steps: forwardSteps(part)}
		}
		return plans
	}
	// Forced anchors (the planner-equivalence debug hook) and the
	// disabled planner keep the written part order, so the hook controls
	// exactly one dimension.
	fixedOrder := m.DisablePlan || m.ForceAnchor != nil
	plans := make([]partPlan, 0, len(parts))
	remaining := make([]int, len(parts))
	for i := range parts {
		remaining[i] = i
	}
	for len(remaining) > 0 {
		pick := 0
		var best partPlan
		if fixedOrder {
			best = m.planPart(parts[remaining[0]], remaining[0], bound)
		} else {
			bestCost := math.Inf(1)
			for ri, idx := range remaining {
				p := m.planPart(parts[idx], idx, bound)
				if p.est < bestCost {
					bestCost, best, pick = p.est, p, ri
				}
			}
		}
		plans = append(plans, best)
		remaining = append(remaining[:pick], remaining[pick+1:]...)
		for _, v := range PatternVariables([]*ast.PatternPart{best.part}) {
			bound[v] = true
		}
	}
	return plans
}

// dependentProps reports whether any inline property map in parts
// references a pattern variable that is not already bound on entry —
// the condition under which slot evaluation order is observable.
func dependentProps(parts []*ast.PatternPart, bound map[string]bool) bool {
	vars := make(map[string]bool)
	for _, v := range PatternVariables(parts) {
		if !bound[v] {
			vars[v] = true
		}
	}
	refs := func(e ast.Expr) bool {
		if e == nil {
			return false
		}
		for _, v := range ast.Variables(e) {
			if vars[v] {
				return true
			}
		}
		return false
	}
	for _, part := range parts {
		for _, np := range part.Nodes {
			if refs(np.Props) {
				return true
			}
		}
		for _, rp := range part.Rels {
			if refs(rp.Props) {
				return true
			}
		}
	}
	return false
}

// forwardSteps is the written left-to-right walk from node 0.
func forwardSteps(part *ast.PatternPart) []step {
	var out []step
	for i := range part.Rels {
		out = append(out, step{rel: i, from: i, to: i + 1})
	}
	return out
}

// naivePlans is the seed's enumeration: written part order, first-node
// anchors, forward walks. Estimates are irrelevant for execution.
func naivePlans(parts []*ast.PatternPart) []partPlan {
	plans := make([]partPlan, len(parts))
	for i, part := range parts {
		plans[i] = partPlan{part: part, origIdx: i, anchor: 0, steps: forwardSteps(part)}
	}
	return plans
}

// naiveRequired reports whether this row must take the seed's walk with
// pruning disabled, because a planned walk could change which runtime
// error surfaces:
//
//   - a pattern variable bound to a value of the wrong kind (the seed
//     raises a type error at that slot exactly when its walk reaches
//     it, and a variable-length slot rejects any pre-binding);
//   - an inline property expression that can error at evaluation time
//     (arithmetic, missing parameters, …) — anchoring or reordering
//     changes whether the erroring slot is ever reached.
//
// The check reads the row's actual values, so a mis-typed binding only
// forces the naive walk for the rows that have it.
func (m *Matcher) naiveRequired(parts []*ast.PatternPart, env expr.Env) bool {
	for _, part := range parts {
		for _, np := range part.Nodes {
			if np.Var != "" {
				if v, ok := env[np.Var]; ok && !value.IsNull(v) {
					if _, isNode := v.(value.Node); !isNode {
						return true
					}
				}
			}
			if m.propsFallible(parts, np.Props, env) {
				return true
			}
		}
		for _, rp := range part.Rels {
			if rp.Var != "" {
				if v, ok := env[rp.Var]; ok {
					if rp.VarLength {
						// Pre-bound var-length variables are an error
						// (even null): surface it in seed order.
						return true
					}
					if !value.IsNull(v) {
						if _, isRel := v.(value.Rel); !isRel {
							return true
						}
					}
				}
			}
			if m.propsFallible(parts, rp.Props, env) {
				return true
			}
		}
	}
	return false
}

// propsFallible reports whether an inline property expression could
// error when evaluated on this row. Total forms: literal maps whose
// values are literals (possibly sign-prefixed), defined variables, or
// single property accesses on values that property access accepts
// (nodes, relationships, maps, null — checked against the row for outer
// variables, guaranteed for node/relationship slot variables); and
// parameters that are present and hold maps. Anything else is
// conservatively fallible.
func (m *Matcher) propsFallible(parts []*ast.PatternPart, props ast.Expr, env expr.Env) bool {
	switch p := props.(type) {
	case nil:
		return false
	case *ast.MapLit:
		for _, v := range p.Vals {
			if m.propValueFallible(parts, v, env) {
				return true
			}
		}
		return false
	case *ast.Parameter:
		if m.Ev == nil {
			return true
		}
		v, ok := m.Ev.Params[p.Name]
		if !ok {
			return true
		}
		_, isMap := v.(value.Map)
		return !isMap
	}
	return true
}

func (m *Matcher) propValueFallible(parts []*ast.PatternPart, e ast.Expr, env expr.Env) bool {
	switch x := e.(type) {
	case *ast.Literal:
		return false
	case *ast.UnaryOp:
		if x.Op == ast.OpNeg || x.Op == ast.OpPos {
			if lit, ok := x.Expr.(*ast.Literal); ok {
				switch lit.Value.(type) {
				case int64, float64:
					return false
				}
			}
		}
		return true
	case *ast.Parameter:
		if m.Ev == nil {
			return true
		}
		_, ok := m.Ev.Params[x.Name]
		return !ok
	case *ast.Variable:
		if _, ok := env[x.Name]; ok {
			return false
		}
		return !isSlotVar(parts, x.Name)
	case *ast.PropAccess:
		v, isVar := x.Expr.(*ast.Variable)
		if !isVar {
			return true
		}
		if bv, ok := env[v.Name]; ok {
			switch bv.(type) {
			case value.Node, value.Rel, value.Map, value.Null:
				return false
			}
			return true
		}
		return !isSlotVar(parts, v.Name)
	case *ast.ListLit:
		for _, el := range x.Elems {
			if m.propValueFallible(parts, el, env) {
				return true
			}
		}
		return false
	}
	return true
}

// isSlotVar reports whether name is a node or single-relationship slot
// variable of the pattern — guaranteed to hold an entity in any row the
// walk evaluates it on.
func isSlotVar(parts []*ast.PatternPart, name string) bool {
	for _, part := range parts {
		for _, np := range part.Nodes {
			if np.Var == name {
				return true
			}
		}
		for _, rp := range part.Rels {
			if rp.Var == name && !rp.VarLength {
				return true
			}
		}
	}
	return false
}

// planPart picks the anchor slot for one part and lays out the walk.
func (m *Matcher) planPart(part *ast.PatternPart, origIdx int, bound map[string]bool) partPlan {
	anchor := -1
	var seek *seekPlan
	if m.ForceAnchor != nil {
		if a := m.ForceAnchor(origIdx, part); a >= 0 && a < len(part.Nodes) {
			anchor = a
		}
	}
	est := math.Inf(1)
	if anchor >= 0 {
		est, seek = m.anchorChoice(part.Nodes[anchor], bound)
	} else if m.DisablePlan {
		anchor = 0
		est = m.anchorEstimate(part.Nodes[0], bound)
	} else {
		for i, np := range part.Nodes {
			if e, s := m.anchorChoice(np, bound); e < est {
				est, anchor, seek = e, i, s
			}
		}
	}
	return partPlan{
		part:    part,
		origIdx: origIdx,
		anchor:  anchor,
		est:     est,
		seek:    seek,
		steps:   m.planSteps(part, anchor),
	}
}

// estimateFingerprint captures the statistics inputs of a plan: the
// anchor estimate of every node slot of every part, in written order,
// against the entry-bound variable set. The plan cache re-validates a
// cached plan by recomputing this vector (O(1) statistic reads per
// slot) and checking it for drift, instead of discarding the plan on
// every structural version bump.
func (m *Matcher) estimateFingerprint(parts []*ast.PatternPart, bound map[string]bool) []float64 {
	var fp []float64
	for _, part := range parts {
		for _, np := range part.Nodes {
			e, _ := m.anchorChoice(np, bound)
			fp = append(fp, e)
		}
	}
	return fp
}

// Drift tolerance for cached plans: an estimate may move by a factor of
// driftFactor before the plan is re-planned, and estimates below
// driftFloor candidates are considered equivalent (tiny cardinalities
// reorder cheaply at execution time anyway, and absolute slack keeps a
// near-empty graph from thrashing the cache while it fills).
const (
	driftFactor = 2.0
	driftFloor  = 16.0
)

// estimatesDrifted reports whether the statistics moved enough since a
// plan was cached that its anchor/order choices may be stale.
func estimatesDrifted(old, cur []float64) bool {
	if len(old) != len(cur) {
		return true
	}
	for i := range old {
		lo, hi := old[i], cur[i]
		if lo > hi {
			lo, hi = hi, lo
		}
		if hi <= driftFloor {
			continue
		}
		if lo*driftFactor < hi {
			return true
		}
	}
	return false
}

// anchorEstimate scores a node slot: the estimated number of candidate
// nodes enumeration would start from. Lower is better.
func (m *Matcher) anchorEstimate(np *ast.NodePattern, bound map[string]bool) float64 {
	if np.Var != "" && bound[np.Var] {
		// A bound variable is a single candidate (or an immediate miss).
		return 0.5
	}
	est := float64(m.Graph.NumNodes())
	if len(np.Labels) > 0 {
		min := m.Graph.NodeCountByLabel(np.Labels[0])
		for _, l := range np.Labels[1:] {
			if c := m.Graph.NodeCountByLabel(l); c < min {
				min = c
			}
		}
		est = float64(min)
	}
	// Inline property maps and pushed WHERE predicates are selective;
	// the factors are crude but only relative order matters.
	if np.Props != nil {
		keys := 1
		if ml, ok := np.Props.(*ast.MapLit); ok {
			keys = len(ml.Keys)
		}
		est *= math.Pow(0.1, float64(keys))
	}
	if !m.DisablePlan {
		est *= math.Pow(0.5, float64(len(m.NodePreds[np])))
	}
	return est
}

// anchorChoice scores a node slot like anchorEstimate and additionally
// considers index-backed seeks: when a property index covers one of
// the slot's labels and an equality constraint on that property is
// available — an inline property map entry, or a pushed `v.prop = expr`
// WHERE conjunct whose value side does not reference v — the slot
// anchors on the seek with the smallest estimated bucket
// (IndexAvgBucket, O(1)). A seek is preferred whenever one exists: it
// enumerates a subset of the label scan's candidates under the same
// per-candidate checks, so it can never visit more than the scan. The
// returned estimate is the scan estimate capped by the bucket size, so
// part ordering sees the tighter bound.
func (m *Matcher) anchorChoice(np *ast.NodePattern, bound map[string]bool) (float64, *seekPlan) {
	est := m.anchorEstimate(np, bound)
	if m.DisablePlan || (np.Var != "" && bound[np.Var]) {
		return est, nil
	}
	best, seek := math.Inf(1), (*seekPlan)(nil)
	for _, label := range np.Labels {
		if ml, ok := np.Props.(*ast.MapLit); ok {
			for _, k := range ml.Keys {
				if b := m.Graph.IndexAvgBucket(label, k); b >= 0 && b < best {
					best, seek = b, &seekPlan{label: label, prop: k, fromProps: true}
				}
			}
		}
		for _, c := range m.NodePreds[np] {
			prop, rhs := equalitySeek(c, np.Var)
			if prop == "" {
				continue
			}
			if b := m.Graph.IndexAvgBucket(label, prop); b >= 0 && b < best {
				best, seek = b, &seekPlan{label: label, prop: prop, val: rhs}
			}
		}
	}
	if seek != nil && best < est {
		est = best
	}
	return est, seek
}

// equalitySeek recognizes a `v.prop = expr` or `expr = v.prop`
// conjunct whose expr side does not reference v, returning the property
// name and the value expression ("" and nil when the conjunct has no
// such shape). Only these conjuncts can seed an index seek: the value
// must be computable before the slot is bound.
func equalitySeek(c ast.Expr, varName string) (string, ast.Expr) {
	b, ok := c.(*ast.BinaryOp)
	if !ok || b.Op != ast.OpEq || varName == "" {
		return "", nil
	}
	try := func(l, r ast.Expr) (string, ast.Expr) {
		pa, ok := l.(*ast.PropAccess)
		if !ok {
			return "", nil
		}
		v, ok := pa.Expr.(*ast.Variable)
		if !ok || v.Name != varName {
			return "", nil
		}
		for _, rv := range ast.Variables(r) {
			if rv == varName {
				return "", nil
			}
		}
		return pa.Key, r
	}
	if prop, e := try(b.Left, b.Right); prop != "" {
		return prop, e
	}
	return try(b.Right, b.Left)
}

// planSteps lays out the relationship expansions for a part anchored at
// the given node slot: one contiguous run towards each end of the path,
// lower estimated first-hop fanout first.
func (m *Matcher) planSteps(part *ast.PatternPart, anchor int) []step {
	var right, left []step
	for i := anchor; i < len(part.Rels); i++ {
		right = append(right, step{rel: i, from: i, to: i + 1})
	}
	for i := anchor - 1; i >= 0; i-- {
		left = append(left, step{rel: i, from: i + 1, to: i, reversed: true})
	}
	if len(left) == 0 {
		return right
	}
	if len(right) == 0 {
		return left
	}
	if m.DisablePlan || m.stepFanout(part, right[0]) <= m.stepFanout(part, left[0]) {
		return append(right, left...)
	}
	return append(left, right...)
}

// stepFanout estimates how many relationships one expansion step visits
// per source node, from the average-degree statistics.
func (m *Matcher) stepFanout(part *ast.PatternPart, st step) float64 {
	rp := part.Rels[st.rel]
	from := part.Nodes[st.from]
	label := ""
	if len(from.Labels) > 0 {
		label = from.Labels[0]
		best := m.Graph.NodeCountByLabel(label)
		for _, l := range from.Labels[1:] {
			if c := m.Graph.NodeCountByLabel(l); c < best {
				best, label = c, l
			}
		}
	}
	deg := func(relType string) float64 {
		var out float64
		d := effectiveDir(rp.Direction, st.reversed)
		if d == ast.DirOut || d == ast.DirBoth {
			out += m.Graph.AvgOutDegree(label, relType)
		}
		if d == ast.DirIn || d == ast.DirBoth {
			out += m.Graph.AvgInDegree(label, relType)
		}
		return out
	}
	if len(rp.Types) == 0 {
		return deg("")
	}
	var total float64
	for _, t := range rp.Types {
		total += deg(t)
	}
	return total
}

// effectiveDir flips a pattern direction for right-to-left traversal.
func effectiveDir(d ast.Direction, reversed bool) ast.Direction {
	if !reversed {
		return d
	}
	switch d {
	case ast.DirOut:
		return ast.DirIn
	case ast.DirIn:
		return ast.DirOut
	}
	return ast.DirBoth
}

// ---------------------------------------------------------------------
// WHERE pushdown classification
// ---------------------------------------------------------------------

// Conjuncts flattens the top-level AND tree of a predicate.
func Conjuncts(e ast.Expr) []ast.Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*ast.BinaryOp); ok && b.Op == ast.OpAnd {
		return append(Conjuncts(b.Left), Conjuncts(b.Right)...)
	}
	return []ast.Expr{e}
}

// Pushdown classifies the WHERE conjuncts of a MATCH clause against its
// pattern. outer lists the variables bound before the clause runs (the
// driving-table columns). The result maps single-slot conjuncts to
// their node or relationship pattern, and collects conjuncts over outer
// variables only as pre-predicates checked before enumeration starts.
//
// Pushed predicates are used to PRUNE only: a candidate on which a
// conjunct evaluates to false or null can never satisfy the full WHERE,
// so skipping it changes neither the result multiset nor the order of
// the surviving rows; evaluation errors defer the conjunct to the full
// WHERE, which every consumer still applies to complete matches. That
// argument is what keeps pushdown semantically invisible — including
// for OPTIONAL MATCH, whose null row depends only on whether any match
// survives the WHERE.
//
// Errors are part of the contract too. Pruning a candidate suppresses
// the evaluation of the OTHER conjuncts on that candidate's
// completions, so if one of them would error (`1/0 = 1 AND a.x = 1`),
// pruning on `a.x = 1` would turn the seed's runtime error into a
// silent empty result. A conjunct is therefore eligible for pushdown
// only when every other conjunct is total — statically incapable of
// erroring (comparisons and IS NULL over literals, defined variables
// and slot-variable property accesses; see totalBool). A lone conjunct
// is always eligible: there is nobody else's error to hide, and its own
// errors defer.
type Pushdown struct {
	Node map[*ast.NodePattern][]ast.Expr
	Rel  map[*ast.RelPattern][]ast.Expr
	Pre  []ast.Expr
}

// Empty reports whether nothing was pushed.
func (p *Pushdown) Empty() bool {
	return p == nil || (len(p.Node) == 0 && len(p.Rel) == 0 && len(p.Pre) == 0)
}

// NewPushdown classifies where's conjuncts. A nil result means no
// conjunct is pushable.
func NewPushdown(where ast.Expr, parts []*ast.PatternPart, outer []string) *Pushdown {
	if where == nil {
		return nil
	}
	nodeSlots := make(map[string][]*ast.NodePattern)
	relSlots := make(map[string][]*ast.RelPattern)
	unpushable := make(map[string]bool) // path vars, var-length rel vars
	for _, part := range parts {
		if part.Var != "" {
			unpushable[part.Var] = true
		}
		for _, np := range part.Nodes {
			if np.Var != "" {
				nodeSlots[np.Var] = append(nodeSlots[np.Var], np)
			}
		}
		for _, rp := range part.Rels {
			if rp.Var == "" {
				continue
			}
			if rp.VarLength {
				unpushable[rp.Var] = true
			} else {
				relSlots[rp.Var] = append(relSlots[rp.Var], rp)
			}
		}
	}
	outerSet := make(map[string]bool, len(outer))
	for _, c := range outer {
		outerSet[c] = true
	}

	// defined: every variable a complete match row provides; entity:
	// slot variables guaranteed to hold a node or relationship there.
	defined := make(map[string]bool, len(outer))
	entity := make(map[string]bool)
	for _, c := range outer {
		defined[c] = true
	}
	for _, v := range PatternVariables(parts) {
		defined[v] = true
	}
	for v := range nodeSlots {
		entity[v] = true
	}
	for v := range relSlots {
		entity[v] = true
	}

	conjs := Conjuncts(where)
	nonTotal := 0
	totals := make([]bool, len(conjs))
	for i, c := range conjs {
		totals[i] = totalBool(c, defined, entity)
		if !totals[i] {
			nonTotal++
		}
	}
	eligible := func(i int) bool {
		return nonTotal == 0 || (nonTotal == 1 && !totals[i])
	}

	pd := &Pushdown{}
	for ci, c := range conjs {
		if !eligible(ci) {
			continue
		}
		// A pushed conjunct is evaluated once to prune and again when
		// the full WHERE re-applies, so a nondeterministic or impure
		// function call (rand(), timestamp(), graph readers) inside it
		// could disagree between the two evaluations and change the
		// result multiset. Such conjuncts are never pushed.
		if containsUnstableCall(c) {
			continue
		}
		var slotVars []string
		ok := true
		for _, v := range ast.Variables(c) {
			if outerSet[v] {
				continue
			}
			if unpushable[v] || (nodeSlots[v] == nil && relSlots[v] == nil) {
				ok = false // not decidable before the full match
				break
			}
			slotVars = append(slotVars, v)
		}
		if !ok {
			continue
		}
		switch len(slotVars) {
		case 0:
			pd.Pre = append(pd.Pre, c)
		case 1:
			v := slotVars[0]
			if nps := nodeSlots[v]; nps != nil {
				if pd.Node == nil {
					pd.Node = make(map[*ast.NodePattern][]ast.Expr)
				}
				for _, np := range nps {
					pd.Node[np] = append(pd.Node[np], c)
				}
			} else {
				if pd.Rel == nil {
					pd.Rel = make(map[*ast.RelPattern][]ast.Expr)
				}
				for _, rp := range relSlots[v] {
					pd.Rel[rp] = append(pd.Rel[rp], c)
				}
			}
		}
	}
	if pd.Empty() {
		return nil
	}
	return pd
}

// containsUnstableCall reports whether the expression contains a
// function call whose two evaluations on the same row could disagree:
// nondeterministic (rand, timestamp) or impure (graph readers — safe
// today because reads run against an immutable snapshot, but excluded
// so the pushdown contract does not depend on that).
func containsUnstableCall(e ast.Expr) bool {
	unstable := false
	ast.Walk(e, func(x ast.Expr) bool {
		if f, ok := x.(*ast.FuncCall); ok {
			if def := expr.LookupFunc(f.Name); def != nil && (!def.Deterministic || !def.Pure) {
				unstable = true
			}
		}
		return !unstable
	})
	return unstable
}

// totalBool reports whether e is statically guaranteed to evaluate via
// EvalBool without error (yielding true/false/null) on any complete
// match row: ternary comparisons, IS NULL, boolean combinations
// thereof, and calls of registered boolean-valued total functions, over
// total operands. Conservative by design — arithmetic, string
// predicates, IN, indexing, parameters and any function the registry
// does not vouch for (pure + total + deterministic) count as fallible.
func totalBool(e ast.Expr, defined, entity map[string]bool) bool {
	switch x := e.(type) {
	case *ast.Literal:
		_, isBool := x.Value.(bool)
		return isBool || x.Value == nil
	case *ast.Const:
		_, isBool := x.Val.(value.Bool)
		return isBool || value.IsNull(x.Val)
	case *ast.IsNull:
		return totalOperand(x.Expr, defined, entity)
	case *ast.UnaryOp:
		return x.Op == ast.OpNot && totalBool(x.Expr, defined, entity)
	case *ast.FuncCall:
		return totalCall(x, defined, entity, true)
	case *ast.BinaryOp:
		switch x.Op {
		case ast.OpEq, ast.OpNeq, ast.OpLt, ast.OpLeq, ast.OpGt, ast.OpGeq:
			return totalOperand(x.Left, defined, entity) && totalOperand(x.Right, defined, entity)
		case ast.OpAnd, ast.OpOr, ast.OpXor:
			return totalBool(x.Left, defined, entity) && totalBool(x.Right, defined, entity)
		}
	}
	return false
}

// totalCall consults the function registry: a call is total when its
// definition is pure, total and deterministic (so pruning on it neither
// errors nor double-draws), its arity is statically valid, and every
// argument is a total operand. In predicate position (boolCtx) the
// result must additionally be boolean-valued, because EvalBool errors
// on other kinds.
func totalCall(f *ast.FuncCall, defined, entity map[string]bool, boolCtx bool) bool {
	if f.Distinct || f.Star {
		return false
	}
	def := expr.LookupFunc(f.Name)
	if def == nil || !def.Pure || !def.Total || !def.Deterministic {
		return false
	}
	if boolCtx && !def.BoolValued {
		return false
	}
	if def.CheckArity(len(f.Args)) != nil {
		return false
	}
	for _, a := range f.Args {
		if !totalOperand(a, defined, entity) {
			return false
		}
	}
	return true
}

// totalOperand reports whether e evaluates without error on any
// complete match row: literals, plan-time constants, defined variables,
// property access on a variable that is guaranteed to hold an entity
// (property access on nulls and entities is total; on scalars it
// type-errors), and calls of total registry functions over total
// operands.
func totalOperand(e ast.Expr, defined, entity map[string]bool) bool {
	switch x := e.(type) {
	case *ast.Literal:
		return true
	case *ast.Const:
		return true
	case *ast.Variable:
		return defined[x.Name]
	case *ast.PropAccess:
		v, isVar := x.Expr.(*ast.Variable)
		return isVar && entity[v.Name]
	case *ast.FuncCall:
		return totalCall(x, defined, entity, false)
	}
	return false
}

// Describe renders the pushed predicates for EXPLAIN.
func (p *Pushdown) Describe() string {
	if p.Empty() {
		return ""
	}
	var preds []string
	for _, c := range p.Pre {
		preds = append(preds, c.String())
	}
	for _, cs := range p.Node {
		for _, c := range cs {
			preds = append(preds, c.String())
		}
	}
	for _, cs := range p.Rel {
		for _, c := range cs {
			preds = append(preds, c.String())
		}
	}
	sort.Strings(preds)
	return "[" + strings.Join(preds, " AND ") + "]"
}

// ---------------------------------------------------------------------
// EXPLAIN support
// ---------------------------------------------------------------------

// DescribePlan renders the plan the matcher would choose for the given
// pattern with the given variables bound: the part execution order
// (indices into the written pattern), each part's anchor, and the
// estimated anchor cardinalities. Statistics are read at call time, so
// the description matches what execution would do on the current graph.
func (m *Matcher) DescribePlan(parts []*ast.PatternPart, outer []string) string {
	bound := make(map[string]bool, len(outer))
	for _, c := range outer {
		bound[c] = true
	}
	plans := m.planParts(parts, bound)
	order := make([]string, len(plans))
	anchors := make([]string, len(plans))
	ests := make([]string, len(plans))
	for i, p := range plans {
		order[i] = fmt.Sprint(p.origIdx)
		a := p.part.Nodes[p.anchor]
		switch {
		case p.seek != nil:
			anchors[i] = fmt.Sprintf("index-seek(:%s.%s)", p.seek.label, p.seek.prop)
		case a.Var != "":
			anchors[i] = a.Var
		default:
			anchors[i] = a.String()
		}
		ests[i] = formatEst(p.est)
	}
	return fmt.Sprintf("order=[%s] anchor=[%s] est=[%s]",
		strings.Join(order, ","), strings.Join(anchors, ","), strings.Join(ests, ","))
}

func formatEst(est float64) string {
	if est == math.Trunc(est) && est < 1e9 {
		return fmt.Sprintf("%.0f", est)
	}
	return fmt.Sprintf("%.2g", est)
}
