// Package match implements Cypher pattern matching: given a property
// graph, a tuple of path patterns and an assignment of already-bound
// variables, it enumerates all assignments of the pattern's variables to
// graph entities such that the pattern is satisfied — the relation
// (p, G, u) |= pi of the paper's Section 8.1.
//
// Two matching modes are provided:
//
//   - Isomorphism (the Cypher default described in Section 2): distinct
//     relationship slots in one MATCH must bind distinct relationships,
//     which keeps query outputs finite for variable-length patterns.
//   - Homomorphism: relationship slots may share relationships. The paper
//     discusses this mode in Example 7, where a pattern inserted by
//     MERGE with Strong Collapse semantics can only be re-matched under
//     homomorphism.
//
// Enumeration is cost-based (planner.go): statistics maintained by the
// graph store choose each part's anchor node, the walk direction, and
// the order of comma-separated parts. The order of results is still
// deterministic for a given graph state — anchor candidates ascend by
// entity id and expansions follow sorted adjacency — which the engine
// relies on for reproducible legacy-mode runs; both executors share
// this planner, so they agree bit for bit.
package match

import (
	"errors"
	"fmt"

	"repro/internal/ast"
	"repro/internal/expr"
	"repro/internal/graph"
	"repro/internal/value"
)

// Mode selects the relationship-uniqueness regime.
type Mode int

// Matching modes.
const (
	Isomorphism Mode = iota
	Homomorphism
)

// Stats counts the work a Matcher performs. The streaming executor
// attaches one per MATCH operator so tests (and EXPLAIN output) can
// observe how much of the search space an early-exiting pipeline
// actually visited.
type Stats struct {
	// NodeVisits counts candidate nodes considered for a node pattern.
	NodeVisits int64
	// RelVisits counts candidate relationships considered for expansion.
	RelVisits int64
	// Emitted counts environments yielded to the consumer.
	Emitted int64
}

// Matcher finds pattern matches in a graph.
type Matcher struct {
	Graph *graph.Graph
	Ev    *expr.Evaluator
	Mode  Mode
	// Stats, when non-nil, accumulates visit counters during matching.
	Stats *Stats

	// DisablePlan turns cost-based planning off: parts run in written
	// order, every part anchors at its first node, and pushed predicates
	// are ignored. Kept for A/B benchmarking against the pre-planner
	// enumeration and for bisecting planner bugs.
	DisablePlan bool
	// ForceAnchor, when non-nil, overrides anchor selection for testing:
	// it receives each part's index in the written pattern and may
	// return a node-slot index (or a negative value to keep the cost-
	// based choice). While forced, parts stay in written order so the
	// hook controls exactly one planning dimension.
	ForceAnchor func(partIdx int, part *ast.PatternPart) int

	// Pushed WHERE conjuncts (see Pushdown): consulted during
	// enumeration to prune candidates early. Pruning is speculative —
	// the full WHERE is still evaluated by the consumer, and a conjunct
	// whose evaluation errors is simply deferred there.
	NodePreds map[*ast.NodePattern][]ast.Expr
	RelPreds  map[*ast.RelPattern][]ast.Expr
	PrePreds  []ast.Expr

	// Cache, when non-nil, is the engine's shared cross-statement plan
	// cache: plans built by this matcher are published there, and a
	// per-matcher (L1) miss consults it before planning from scratch,
	// so sessions running the same query text share one plan. Sound
	// because the engine's statement cache shares one parsed AST per
	// query text (see PlanCache).
	Cache *PlanCache

	// Plan cache: Stream is called once per driving-table record, but
	// the plan depends only on the pattern, the set of bound column
	// names and the graph's statistics. A cached plan survives
	// structural version bumps as long as the anchor estimates have not
	// drifted materially (see plansFor and estimateFingerprint) — so a
	// legacy MERGE mutating the graph between records keeps its plan —
	// and is re-planned the moment a skewed load moves the statistics.
	cachedPlans   []partPlan
	cacheParts    *ast.PatternPart
	cacheN        int
	cacheBound    []string
	cacheVer      int64
	cacheEst      []float64
	cacheIdxEpoch int64

	// runNaive, set per Stream call, forces the seed's written-order
	// walk and disables all pushed-predicate pruning for rows where any
	// deviation could change which runtime error surfaces: a pattern
	// variable bound to a value of the wrong kind, or an inline
	// property expression that can error (see naiveRequired).
	runNaive bool
}

// SetPushdown installs the pushed predicates of a classified WHERE.
func (m *Matcher) SetPushdown(pd *Pushdown) {
	if pd == nil {
		m.NodePreds, m.RelPreds, m.PrePreds = nil, nil, nil
		return
	}
	m.NodePreds, m.RelPreds, m.PrePreds = pd.Node, pd.Rel, pd.Pre
}

// ErrStop, returned from a Stream yield callback, terminates enumeration
// early without error: Stream swallows it and returns nil.
var ErrStop = errors.New("match: stop enumeration")

// Stream enumerates all extensions of env that satisfy all pattern
// parts, invoking yield for each one as soon as it is found — no
// intermediate collection is built, so a consumer that stops early (via
// ErrStop) prunes the remaining search space. Variables already bound in
// env constrain the match; unbound pattern variables are bound in the
// yielded environments. Named paths bind their path variable to a
// value.Path.
//
// The yielded environment shares structure with env; consumers that
// retain it across yields must copy it (the engine's operators do so by
// normalizing rows into their own column sets).
func (m *Matcher) Stream(parts []*ast.PatternPart, env expr.Env, yield func(expr.Env) error) error {
	m.runNaive = m.DisablePlan || m.naiveRequired(parts, env)
	var plans []partPlan
	if m.runNaive {
		// The seed's walk, bit for bit: written order, first-node
		// anchors, no pruning — so every runtime error (mistyped
		// binding, erroring property expression) surfaces exactly when
		// and where it always did.
		plans = naivePlans(parts)
	} else {
		// Pre-predicates reference only already-bound variables: when
		// one is definitively not true, no extension of env can pass
		// the full WHERE, so enumeration is skipped wholesale. Errors
		// defer to the consumer's WHERE evaluation over complete rows.
		for _, p := range m.PrePreds {
			tri, err := m.Ev.EvalBool(p, env)
			if err == nil && tri != value.True {
				return nil
			}
		}
		plans = m.plansFor(parts, env)
	}
	used := make(map[graph.RelID]bool)
	err := m.matchParts(plans, 0, env, used, func(e expr.Env) error {
		if m.Stats != nil {
			m.Stats.Emitted++
		}
		return yield(e)
	})
	if errors.Is(err, ErrStop) {
		return nil
	}
	return err
}

// Match enumerates all matches eagerly, collecting them into a slice.
// It is retained for the materializing executor and for callers that
// genuinely need the full set (e.g. legacy MERGE outcome bookkeeping).
func (m *Matcher) Match(parts []*ast.PatternPart, env expr.Env) ([]expr.Env, error) {
	var results []expr.Env
	err := m.Stream(parts, env, func(e expr.Env) error {
		results = append(results, e)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// MatchExists reports whether at least one match exists (early exit).
func (m *Matcher) MatchExists(parts []*ast.PatternPart, env expr.Env) (bool, error) {
	found := false
	err := m.Stream(parts, env, func(expr.Env) error {
		found = true
		return ErrStop
	})
	if err != nil {
		return false, err
	}
	return found, nil
}

// plansFor returns the execution plan for parts under env's bound
// variables, reusing the cached plan when the pattern and the bound
// column set are unchanged since the last call — the common case for an
// operator streaming many records. Cache validity is statistics-based,
// not version-based: when the graph's structural version has moved, the
// anchor estimates are recomputed (O(1) statistic reads per node slot)
// and the plan is kept unless they drifted materially — so interleaved
// writes (a legacy MERGE mutating between records) do not force a
// replan per record, while a skewed bulk load that moves the label
// cardinalities does invalidate the stale anchor choice.
func (m *Matcher) plansFor(parts []*ast.PatternPart, env expr.Env) []partPlan {
	newBound := func() map[string]bool {
		bound := make(map[string]bool, len(env))
		for k := range env {
			bound[k] = true
		}
		return bound
	}
	if m.ForceAnchor != nil {
		// Test hooks may be stateful; never cache around them.
		return m.planParts(parts, newBound())
	}
	var key *ast.PatternPart
	if len(parts) > 0 {
		key = parts[0]
	}
	if m.cachedPlans != nil && m.cacheParts == key && m.cacheN == len(parts) &&
		len(m.cacheBound) == len(env) && m.cacheIdxEpoch == m.Graph.IndexEpoch() {
		// The index-epoch check invalidates the cache outright when an
		// index was created or dropped since the plan was built: a new
		// index may enable a seek anchor (and a drop must disable one)
		// even when the cardinality estimates have not drifted.
		hit := true
		for _, name := range m.cacheBound {
			if _, ok := env[name]; !ok {
				hit = false
				break
			}
		}
		if hit {
			if m.cacheVer == m.Graph.Version() {
				return m.cachedPlans
			}
			// The graph changed structurally: re-validate the plan
			// against the current statistics instead of discarding it.
			fp := m.estimateFingerprint(parts, newBound())
			if !estimatesDrifted(m.cacheEst, fp) {
				m.cacheVer = m.Graph.Version()
				return m.cachedPlans
			}
		}
	}
	names := make([]string, 0, len(env))
	for k := range env {
		names = append(names, k)
	}
	// L1 miss: consult the engine's shared cross-statement cache, then
	// plan from scratch. Either way the result is installed in the L1
	// fields, so per-record lookups for the rest of this operator's
	// life never touch the shared mutex. DisablePlan matchers skip the
	// shared cache: their trivial written-order plans are cheaper to
	// rebuild than to share, and keying them would double every entry.
	var (
		shared   *PlanCache
		cacheKey planCacheKey
	)
	if m.Cache != nil && !m.DisablePlan {
		shared = m.Cache
		cacheKey = planCacheKey{part0: key, n: len(parts), bound: boundKey(names), mode: m.Mode}
	}
	ver, idxEpoch := m.Graph.Version(), m.Graph.IndexEpoch()
	var plans []partPlan
	var fp []float64
	if shared != nil {
		plans = shared.lookup(m, cacheKey, parts, newBound())
	}
	if plans == nil {
		bound := newBound()
		fp = m.estimateFingerprint(parts, bound)
		plans = m.planParts(parts, bound) // mutates bound; fingerprint first
		if shared != nil {
			shared.store(cacheKey, plans, fp, ver, idxEpoch)
		}
	} else {
		fp = m.estimateFingerprint(parts, newBound())
	}
	m.cachedPlans, m.cacheParts, m.cacheN = plans, key, len(parts)
	m.cacheBound, m.cacheVer, m.cacheEst = names, ver, fp
	m.cacheIdxEpoch = idxEpoch
	return plans
}

func (m *Matcher) matchParts(plans []partPlan, i int, env expr.Env, used map[graph.RelID]bool, yield func(expr.Env) error) error {
	if i == len(plans) {
		return yield(env)
	}
	return m.matchPart(plans[i], env, used, func(e expr.Env) error {
		return m.matchParts(plans, i+1, e, used, yield)
	})
}

// matchPart enumerates one path pattern following its plan: anchor
// candidates first, then the planned expansion steps, which may walk the
// written pattern in both directions. Slot bindings are tracked by node
// and relationship position so path values come out in written
// left-to-right order regardless of the walk.
func (m *Matcher) matchPart(pp partPlan, env expr.Env, used map[graph.RelID]bool, yield func(expr.Env) error) error {
	return m.matchPartFrom(pp, nil, env, used, yield)
}

// matchPartFrom is matchPart with an optional explicit anchor candidate
// list: non-nil anchors restrict the anchor slot to that subset (the
// morsel-parallel entry point, see StreamAnchors); nil enumerates the
// planned candidates as usual.
func (m *Matcher) matchPartFrom(pp partPlan, anchors []graph.NodeID, env expr.Env, used map[graph.RelID]bool, yield func(expr.Env) error) error {
	part := pp.part
	nodeIDs := make([]graph.NodeID, len(part.Nodes))
	relIDs := make([][]graph.RelID, len(part.Rels))

	var walk func(si int, env expr.Env) error
	walk = func(si int, env expr.Env) error {
		if si == len(pp.steps) {
			out := env
			if part.Var != "" {
				p := value.Path{}
				for _, n := range nodeIDs {
					p.Nodes = append(p.Nodes, int64(n))
				}
				for _, rs := range relIDs {
					// Var-length slots contribute their whole traversal (in
					// written order); for path values we record only slot
					// endpoint nodes (intermediate node ids are recoverable
					// from the relationships).
					for _, r := range rs {
						p.Rels = append(p.Rels, int64(r))
					}
				}
				out = env.With(part.Var, p)
			}
			return yield(out)
		}
		st := pp.steps[si]
		rp := part.Rels[st.rel]
		np := part.Nodes[st.to]
		at := nodeIDs[st.from]
		if rp.VarLength {
			return m.expandVarLength(rp, np, at, st.reversed, env, used, func(relList []graph.RelID, end graph.NodeID, env2 expr.Env) error {
				nodeIDs[st.to] = end
				relIDs[st.rel] = relList
				return walk(si+1, env2)
			})
		}
		return m.expandRel(rp, np, at, st.reversed, env, used, func(rid graph.RelID, end graph.NodeID, env2 expr.Env) error {
			nodeIDs[st.to] = end
			if part.Var != "" {
				relIDs[st.rel] = []graph.RelID{rid}
			}
			return walk(si+1, env2)
		})
	}

	anchorFn := func(n graph.NodeID, env2 expr.Env) error {
		nodeIDs[pp.anchor] = n
		return walk(0, env2)
	}
	if anchors != nil {
		return m.matchNodeFrom(part.Nodes[pp.anchor], anchors, env, anchorFn)
	}
	return m.matchNode(part.Nodes[pp.anchor], pp.seek, env, anchorFn)
}

// matchNode enumerates candidate nodes for a node pattern, extending
// env. A non-nil seek narrows the candidates to one bucket of a
// property index (see seekCandidates); the full per-candidate checks
// still run, so the seek is semantically invisible.
func (m *Matcher) matchNode(np *ast.NodePattern, seek *seekPlan, env expr.Env, yield func(graph.NodeID, expr.Env) error) error {
	// Pre-bound variable: check, do not enumerate.
	if np.Var != "" {
		if bound, ok := env[np.Var]; ok {
			nv, isNode := bound.(value.Node)
			if !isNode {
				if value.IsNull(bound) {
					return nil // null never matches a node pattern
				}
				return fmt.Errorf("variable `%s` is bound to %s, expected Node", np.Var, bound.Kind())
			}
			id := graph.NodeID(nv.ID)
			ok2, err := m.nodeSatisfies(id, np, env)
			if err != nil || !ok2 {
				return err
			}
			return yield(id, env)
		}
	}
	var candidates []graph.NodeID
	seeked := false
	if seek != nil {
		candidates, seeked = m.seekCandidates(seek, np, env)
	}
	if !seeked {
		candidates = m.nodeCandidates(np)
	}
	return m.matchNodeFrom(np, candidates, env, yield)
}

// matchNodeFrom runs matchNode's per-candidate checks over an explicit
// candidate list.
func (m *Matcher) matchNodeFrom(np *ast.NodePattern, candidates []graph.NodeID, env expr.Env, yield func(graph.NodeID, expr.Env) error) error {
	for _, id := range candidates {
		if m.Stats != nil {
			m.Stats.NodeVisits++
		}
		ok, err := m.nodeSatisfies(id, np, env)
		if err != nil {
			return err
		}
		if !ok {
			continue
		}
		env2 := env
		if np.Var != "" {
			env2 = env.With(np.Var, value.Node{ID: int64(id)})
		}
		if err := yield(id, env2); err != nil {
			return err
		}
	}
	return nil
}

// nodeCandidates uses the label index when the pattern names labels.
func (m *Matcher) nodeCandidates(np *ast.NodePattern) []graph.NodeID {
	if len(np.Labels) > 0 {
		// Use the most selective label.
		best := m.Graph.NodeIDsByLabel(np.Labels[0])
		for _, l := range np.Labels[1:] {
			ids := m.Graph.NodeIDsByLabel(l)
			if len(ids) < len(best) {
				best = ids
			}
		}
		return best
	}
	return m.Graph.NodeIDs()
}

// seekCandidates resolves an index seek for one driving record: it
// evaluates the seek value against env and returns the matching index
// bucket in ascending id order. The second result is false when the
// seek cannot be executed — the value expression errored (errors must
// surface, or stay silent, exactly as on the scan path, so the caller
// falls back to the label scan) or the index has vanished. A null seek
// value returns an empty candidate set: `prop = null` is never true,
// and an inline `{prop: null}` entry matches no stored property.
func (m *Matcher) seekCandidates(seek *seekPlan, np *ast.NodePattern, env expr.Env) ([]graph.NodeID, bool) {
	var v value.Value
	if seek.fromProps {
		pm, err := m.Ev.EvalPropMap(np.Props, env)
		if err != nil {
			return nil, false
		}
		pv, ok := pm[seek.prop]
		if !ok {
			return nil, false
		}
		v = pv
	} else {
		ev, err := m.Ev.Eval(seek.val, env)
		if err != nil {
			return nil, false
		}
		v = ev
	}
	if value.IsNull(v) {
		return nil, true
	}
	if !m.Graph.HasIndex(seek.label, seek.prop) {
		return nil, false
	}
	return m.Graph.NodeIDsByProp(seek.label, seek.prop, v), true
}

func (m *Matcher) nodeSatisfies(id graph.NodeID, np *ast.NodePattern, env expr.Env) (bool, error) {
	n := m.Graph.Node(id)
	if n == nil {
		return false, nil
	}
	for _, l := range np.Labels {
		if !n.HasLabel(l) {
			return false, nil
		}
	}
	ok, err := m.propsSatisfy(n.Props, np.Props, env)
	if err != nil || !ok {
		return ok, err
	}
	// Pushed WHERE conjuncts over this slot alone prune the candidate
	// before any expansion happens. A conjunct that is false or null
	// here makes the full WHERE non-true on every completion, so
	// pruning is invisible; evaluation errors defer to the consumer's
	// full WHERE over complete rows.
	if !m.runNaive && np.Var != "" && len(m.NodePreds) > 0 {
		if preds := m.NodePreds[np]; len(preds) > 0 {
			e2 := env
			if _, bound := env[np.Var]; !bound {
				e2 = env.With(np.Var, value.Node{ID: int64(id)})
			}
			for _, p := range preds {
				tri, err := m.Ev.EvalBool(p, e2)
				if err == nil && tri != value.True {
					return false, nil
				}
			}
		}
	}
	return true, nil
}

// propsSatisfy checks a pattern property map against stored properties
// with ternary equality: every entry must compare True.
func (m *Matcher) propsSatisfy(stored map[string]value.Value, propsExpr ast.Expr, env expr.Env) (bool, error) {
	if propsExpr == nil {
		return true, nil
	}
	want, err := m.Ev.EvalPropMap(propsExpr, env)
	if err != nil {
		return false, err
	}
	for k, wv := range want {
		sv, ok := stored[k]
		if !ok {
			sv = value.NullValue
		}
		if value.Equal(sv, wv) != value.True {
			return false, nil
		}
	}
	return true, nil
}

// expandRel enumerates single-hop relationship candidates from node
// `at`; reversed means `at` is the written pattern's right endpoint and
// the pattern direction is flipped against the adjacency lists.
func (m *Matcher) expandRel(rp *ast.RelPattern, np *ast.NodePattern, at graph.NodeID, reversed bool, env expr.Env, used map[graph.RelID]bool, yield func(graph.RelID, graph.NodeID, expr.Env) error) error {
	// Pre-bound relationship variable restricts candidates to one.
	var preBound *graph.RelID
	if rp.Var != "" {
		if bound, ok := env[rp.Var]; ok {
			rv, isRel := bound.(value.Rel)
			if !isRel {
				if value.IsNull(bound) {
					return nil
				}
				return fmt.Errorf("variable `%s` is bound to %s, expected Relationship", rp.Var, bound.Kind())
			}
			id := graph.RelID(rv.ID)
			preBound = &id
		}
	}

	tryCandidate := func(rid graph.RelID, end graph.NodeID) error {
		if m.Stats != nil {
			m.Stats.RelVisits++
		}
		if m.Mode == Isomorphism && used[rid] {
			return nil
		}
		r := m.Graph.Rel(rid)
		if r == nil || !typeMatches(r, rp.Types) {
			return nil
		}
		ok, err := m.propsSatisfy(r.Props, rp.Props, env)
		if err != nil || !ok {
			return err
		}
		env2 := env
		if rp.Var != "" && preBound == nil {
			env2 = env.With(rp.Var, value.Rel{ID: int64(rid)})
		}
		// Pushed WHERE conjuncts over the relationship slot prune before
		// the far endpoint is even considered (same contract as the node
		// predicates in nodeSatisfies).
		if !m.runNaive && rp.Var != "" && len(m.RelPreds) > 0 {
			for _, p := range m.RelPreds[rp] {
				tri, err := m.Ev.EvalBool(p, env2)
				if err == nil && tri != value.True {
					return nil
				}
			}
		}
		// Check the far node pattern.
		return m.checkEndNode(np, end, env2, func(env3 expr.Env) error {
			used[rid] = true
			err := yield(rid, end, env3)
			delete(used, rid)
			return err
		})
	}

	candidates := m.relCandidates(rp, at, preBound, reversed)
	for _, c := range candidates {
		if err := tryCandidate(c.rid, c.end); err != nil {
			return err
		}
	}
	return nil
}

type relCandidate struct {
	rid graph.RelID
	end graph.NodeID
}

// relCandidates lists (relationship, far-endpoint) pairs consistent with
// the pattern's direction, starting at node `at`; reversed flips the
// direction for right-to-left traversal.
func (m *Matcher) relCandidates(rp *ast.RelPattern, at graph.NodeID, preBound *graph.RelID, reversed bool) []relCandidate {
	var out []relCandidate
	add := func(rid graph.RelID, end graph.NodeID) {
		if preBound != nil && rid != *preBound {
			return
		}
		out = append(out, relCandidate{rid: rid, end: end})
	}
	dir := effectiveDir(rp.Direction, reversed)
	if dir == ast.DirOut || dir == ast.DirBoth {
		for _, rid := range m.Graph.Outgoing(at) {
			add(rid, m.Graph.Rel(rid).Tgt)
		}
	}
	if dir == ast.DirIn || dir == ast.DirBoth {
		for _, rid := range m.Graph.Incoming(at) {
			r := m.Graph.Rel(rid)
			// A self-loop was already produced by the outgoing scan in
			// DirBoth mode.
			if dir == ast.DirBoth && r.Src == r.Tgt {
				continue
			}
			add(rid, r.Src)
		}
	}
	return out
}

func typeMatches(r *graph.Rel, types []string) bool {
	if len(types) == 0 {
		return true
	}
	for _, t := range types {
		if r.Type == t {
			return true
		}
	}
	return false
}

// checkEndNode validates the far endpoint against its node pattern,
// binding its variable if fresh.
func (m *Matcher) checkEndNode(np *ast.NodePattern, end graph.NodeID, env expr.Env, yield func(expr.Env) error) error {
	if np.Var != "" {
		if bound, ok := env[np.Var]; ok {
			nv, isNode := bound.(value.Node)
			if !isNode {
				if value.IsNull(bound) {
					return nil
				}
				return fmt.Errorf("variable `%s` is bound to %s, expected Node", np.Var, bound.Kind())
			}
			if graph.NodeID(nv.ID) != end {
				return nil
			}
			ok2, err := m.nodeSatisfies(end, np, env)
			if err != nil || !ok2 {
				return err
			}
			return yield(env)
		}
	}
	ok, err := m.nodeSatisfies(end, np, env)
	if err != nil || !ok {
		return err
	}
	if np.Var != "" {
		env = env.With(np.Var, value.Node{ID: int64(end)})
	}
	return yield(env)
}

// expandVarLength enumerates variable-length paths of rp's type starting
// at `at`, with hop count in [min, max]. Relationship uniqueness is
// enforced within the traversed path in both modes (guaranteeing
// termination); in Isomorphism mode the path's relationships additionally
// respect the clause-wide used set. With reversed set, `at` is the
// written pattern's right endpoint: traversal runs right to left, and
// the relationship list is flipped before use so bound list values and
// path values always read in written order.
func (m *Matcher) expandVarLength(rp *ast.RelPattern, np *ast.NodePattern, at graph.NodeID, reversed bool, env expr.Env, used map[graph.RelID]bool, yield func([]graph.RelID, graph.NodeID, expr.Env) error) error {
	minHops := rp.MinHops
	if minHops < 0 {
		minHops = 1
	}
	maxHops := rp.MaxHops // -1 = unbounded
	if rp.Var != "" {
		if _, ok := env[rp.Var]; ok {
			return fmt.Errorf("variable-length relationship variable `%s` cannot be pre-bound", rp.Var)
		}
	}

	inPath := make(map[graph.RelID]bool)
	var path []graph.RelID

	emit := func(end graph.NodeID) error {
		relsCopy := append([]graph.RelID(nil), path...)
		if reversed {
			// The traversal collected relationships right to left.
			for i, j := 0, len(relsCopy)-1; i < j; i, j = i+1, j-1 {
				relsCopy[i], relsCopy[j] = relsCopy[j], relsCopy[i]
			}
		}
		env2 := env
		if rp.Var != "" {
			lst := make(value.List, len(relsCopy))
			for i, rid := range relsCopy {
				lst[i] = value.Rel{ID: int64(rid)}
			}
			env2 = env.With(rp.Var, lst)
		}
		return m.checkEndNode(np, end, env2, func(env3 expr.Env) error {
			for _, rid := range relsCopy {
				used[rid] = true
			}
			err := yield(relsCopy, end, env3)
			for _, rid := range relsCopy {
				delete(used, rid)
			}
			return err
		})
	}

	var dfs func(cur graph.NodeID) error
	dfs = func(cur graph.NodeID) error {
		if len(path) >= minHops {
			if err := emit(cur); err != nil {
				return err
			}
		}
		if maxHops >= 0 && len(path) >= maxHops {
			return nil
		}
		for _, c := range m.relCandidates(rp, cur, nil, reversed) {
			if m.Stats != nil {
				m.Stats.RelVisits++
			}
			if inPath[c.rid] {
				continue
			}
			if m.Mode == Isomorphism && used[c.rid] {
				continue
			}
			r := m.Graph.Rel(c.rid)
			if r == nil || !typeMatches(r, rp.Types) {
				continue
			}
			ok, err := m.propsSatisfy(r.Props, rp.Props, env)
			if err != nil {
				return err
			}
			if !ok {
				continue
			}
			inPath[c.rid] = true
			path = append(path, c.rid)
			err = dfs(c.end)
			path = path[:len(path)-1]
			delete(inPath, c.rid)
			if err != nil {
				return err
			}
		}
		return nil
	}
	return dfs(at)
}

// PatternVariables lists the variables a pattern tuple would bind, in
// first-appearance order: path variables, node variables, relationship
// variables.
func PatternVariables(parts []*ast.PatternPart) []string {
	var out []string
	seen := make(map[string]bool)
	add := func(name string) {
		if name != "" && !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	for _, part := range parts {
		add(part.Var)
		for i, n := range part.Nodes {
			add(n.Var)
			if i < len(part.Rels) {
				add(part.Rels[i].Var)
			}
		}
	}
	return out
}
