// Package match implements Cypher pattern matching: given a property
// graph, a tuple of path patterns and an assignment of already-bound
// variables, it enumerates all assignments of the pattern's variables to
// graph entities such that the pattern is satisfied — the relation
// (p, G, u) |= pi of the paper's Section 8.1.
//
// Two matching modes are provided:
//
//   - Isomorphism (the Cypher default described in Section 2): distinct
//     relationship slots in one MATCH must bind distinct relationships,
//     which keeps query outputs finite for variable-length patterns.
//   - Homomorphism: relationship slots may share relationships. The paper
//     discusses this mode in Example 7, where a pattern inserted by
//     MERGE with Strong Collapse semantics can only be re-matched under
//     homomorphism.
//
// Enumeration order is deterministic (ascending entity ids), which the
// engine relies on for reproducible legacy-mode runs.
package match

import (
	"errors"
	"fmt"

	"repro/internal/ast"
	"repro/internal/expr"
	"repro/internal/graph"
	"repro/internal/value"
)

// Mode selects the relationship-uniqueness regime.
type Mode int

// Matching modes.
const (
	Isomorphism Mode = iota
	Homomorphism
)

// Stats counts the work a Matcher performs. The streaming executor
// attaches one per MATCH operator so tests (and EXPLAIN output) can
// observe how much of the search space an early-exiting pipeline
// actually visited.
type Stats struct {
	// NodeVisits counts candidate nodes considered for a node pattern.
	NodeVisits int64
	// RelVisits counts candidate relationships considered for expansion.
	RelVisits int64
	// Emitted counts environments yielded to the consumer.
	Emitted int64
}

// Matcher finds pattern matches in a graph.
type Matcher struct {
	Graph *graph.Graph
	Ev    *expr.Evaluator
	Mode  Mode
	// Stats, when non-nil, accumulates visit counters during matching.
	Stats *Stats
}

// ErrStop, returned from a Stream yield callback, terminates enumeration
// early without error: Stream swallows it and returns nil.
var ErrStop = errors.New("match: stop enumeration")

// Stream enumerates all extensions of env that satisfy all pattern
// parts, invoking yield for each one as soon as it is found — no
// intermediate collection is built, so a consumer that stops early (via
// ErrStop) prunes the remaining search space. Variables already bound in
// env constrain the match; unbound pattern variables are bound in the
// yielded environments. Named paths bind their path variable to a
// value.Path.
//
// The yielded environment shares structure with env; consumers that
// retain it across yields must copy it (the engine's operators do so by
// normalizing rows into their own column sets).
func (m *Matcher) Stream(parts []*ast.PatternPart, env expr.Env, yield func(expr.Env) error) error {
	used := make(map[graph.RelID]bool)
	err := m.matchParts(parts, 0, env, used, func(e expr.Env) error {
		if m.Stats != nil {
			m.Stats.Emitted++
		}
		return yield(e)
	})
	if errors.Is(err, ErrStop) {
		return nil
	}
	return err
}

// Match enumerates all matches eagerly, collecting them into a slice.
// It is retained for the materializing executor and for callers that
// genuinely need the full set (e.g. legacy MERGE outcome bookkeeping).
func (m *Matcher) Match(parts []*ast.PatternPart, env expr.Env) ([]expr.Env, error) {
	var results []expr.Env
	err := m.Stream(parts, env, func(e expr.Env) error {
		results = append(results, e)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// MatchExists reports whether at least one match exists (early exit).
func (m *Matcher) MatchExists(parts []*ast.PatternPart, env expr.Env) (bool, error) {
	found := false
	err := m.Stream(parts, env, func(expr.Env) error {
		found = true
		return ErrStop
	})
	if err != nil {
		return false, err
	}
	return found, nil
}

func (m *Matcher) matchParts(parts []*ast.PatternPart, i int, env expr.Env, used map[graph.RelID]bool, yield func(expr.Env) error) error {
	if i == len(parts) {
		return yield(env)
	}
	return m.matchPart(parts[i], env, used, func(e expr.Env) error {
		return m.matchParts(parts, i+1, e, used, yield)
	})
}

// matchPart walks one path pattern left to right.
func (m *Matcher) matchPart(part *ast.PatternPart, env expr.Env, used map[graph.RelID]bool, yield func(expr.Env) error) error {
	type pathState struct {
		nodes []graph.NodeID
		rels  []graph.RelID
	}
	var walk func(relIdx int, at graph.NodeID, env expr.Env, st pathState) error
	walk = func(relIdx int, at graph.NodeID, env expr.Env, st pathState) error {
		if relIdx == len(part.Rels) {
			out := env
			if part.Var != "" {
				p := value.Path{}
				for _, n := range st.nodes {
					p.Nodes = append(p.Nodes, int64(n))
				}
				for _, r := range st.rels {
					p.Rels = append(p.Rels, int64(r))
				}
				out = env.With(part.Var, p)
			}
			return yield(out)
		}
		rp := part.Rels[relIdx]
		np := part.Nodes[relIdx+1]
		if rp.VarLength {
			return m.expandVarLength(rp, np, at, env, used, func(relList []graph.RelID, end graph.NodeID, env2 expr.Env) error {
				st2 := pathState{nodes: append(append([]graph.NodeID{}, st.nodes...), end), rels: append(append([]graph.RelID{}, st.rels...), relList...)}
				// Var-length traverses multiple nodes; for path values we
				// record only the endpoint (intermediate node ids are
				// recoverable from the relationships).
				return walk(relIdx+1, end, env2, st2)
			})
		}
		return m.expandRel(rp, np, at, env, used, func(rid graph.RelID, end graph.NodeID, env2 expr.Env) error {
			st2 := pathState{nodes: append(append([]graph.NodeID{}, st.nodes...), end), rels: append(append([]graph.RelID{}, st.rels...), rid)}
			return walk(relIdx+1, end, env2, st2)
		})
	}

	return m.matchNode(part.Nodes[0], env, func(n graph.NodeID, env2 expr.Env) error {
		return walk(0, n, env2, pathState{nodes: []graph.NodeID{n}})
	})
}

// matchNode enumerates candidate nodes for a node pattern, extending env.
func (m *Matcher) matchNode(np *ast.NodePattern, env expr.Env, yield func(graph.NodeID, expr.Env) error) error {
	// Pre-bound variable: check, do not enumerate.
	if np.Var != "" {
		if bound, ok := env[np.Var]; ok {
			nv, isNode := bound.(value.Node)
			if !isNode {
				if value.IsNull(bound) {
					return nil // null never matches a node pattern
				}
				return fmt.Errorf("variable `%s` is bound to %s, expected Node", np.Var, bound.Kind())
			}
			id := graph.NodeID(nv.ID)
			ok2, err := m.nodeSatisfies(id, np, env)
			if err != nil || !ok2 {
				return err
			}
			return yield(id, env)
		}
	}
	candidates := m.nodeCandidates(np)
	for _, id := range candidates {
		if m.Stats != nil {
			m.Stats.NodeVisits++
		}
		ok, err := m.nodeSatisfies(id, np, env)
		if err != nil {
			return err
		}
		if !ok {
			continue
		}
		env2 := env
		if np.Var != "" {
			env2 = env.With(np.Var, value.Node{ID: int64(id)})
		}
		if err := yield(id, env2); err != nil {
			return err
		}
	}
	return nil
}

// nodeCandidates uses the label index when the pattern names labels.
func (m *Matcher) nodeCandidates(np *ast.NodePattern) []graph.NodeID {
	if len(np.Labels) > 0 {
		// Use the most selective label.
		best := m.Graph.NodeIDsByLabel(np.Labels[0])
		for _, l := range np.Labels[1:] {
			ids := m.Graph.NodeIDsByLabel(l)
			if len(ids) < len(best) {
				best = ids
			}
		}
		return best
	}
	return m.Graph.NodeIDs()
}

func (m *Matcher) nodeSatisfies(id graph.NodeID, np *ast.NodePattern, env expr.Env) (bool, error) {
	n := m.Graph.Node(id)
	if n == nil {
		return false, nil
	}
	for _, l := range np.Labels {
		if !n.HasLabel(l) {
			return false, nil
		}
	}
	return m.propsSatisfy(n.Props, np.Props, env)
}

// propsSatisfy checks a pattern property map against stored properties
// with ternary equality: every entry must compare True.
func (m *Matcher) propsSatisfy(stored map[string]value.Value, propsExpr ast.Expr, env expr.Env) (bool, error) {
	if propsExpr == nil {
		return true, nil
	}
	want, err := m.Ev.EvalPropMap(propsExpr, env)
	if err != nil {
		return false, err
	}
	for k, wv := range want {
		sv, ok := stored[k]
		if !ok {
			sv = value.NullValue
		}
		if value.Equal(sv, wv) != value.True {
			return false, nil
		}
	}
	return true, nil
}

// expandRel enumerates single-hop relationship candidates from node `at`.
func (m *Matcher) expandRel(rp *ast.RelPattern, np *ast.NodePattern, at graph.NodeID, env expr.Env, used map[graph.RelID]bool, yield func(graph.RelID, graph.NodeID, expr.Env) error) error {
	// Pre-bound relationship variable restricts candidates to one.
	var preBound *graph.RelID
	if rp.Var != "" {
		if bound, ok := env[rp.Var]; ok {
			rv, isRel := bound.(value.Rel)
			if !isRel {
				if value.IsNull(bound) {
					return nil
				}
				return fmt.Errorf("variable `%s` is bound to %s, expected Relationship", rp.Var, bound.Kind())
			}
			id := graph.RelID(rv.ID)
			preBound = &id
		}
	}

	tryCandidate := func(rid graph.RelID, end graph.NodeID) error {
		if m.Stats != nil {
			m.Stats.RelVisits++
		}
		if m.Mode == Isomorphism && used[rid] {
			return nil
		}
		r := m.Graph.Rel(rid)
		if r == nil || !typeMatches(r, rp.Types) {
			return nil
		}
		ok, err := m.propsSatisfy(r.Props, rp.Props, env)
		if err != nil || !ok {
			return err
		}
		env2 := env
		if rp.Var != "" && preBound == nil {
			env2 = env.With(rp.Var, value.Rel{ID: int64(rid)})
		}
		// Check the far node pattern.
		return m.checkEndNode(np, end, env2, func(env3 expr.Env) error {
			used[rid] = true
			err := yield(rid, end, env3)
			delete(used, rid)
			return err
		})
	}

	candidates := m.relCandidates(rp, at, preBound)
	for _, c := range candidates {
		if err := tryCandidate(c.rid, c.end); err != nil {
			return err
		}
	}
	return nil
}

type relCandidate struct {
	rid graph.RelID
	end graph.NodeID
}

// relCandidates lists (relationship, far-endpoint) pairs consistent with
// the pattern's direction, starting at node `at`.
func (m *Matcher) relCandidates(rp *ast.RelPattern, at graph.NodeID, preBound *graph.RelID) []relCandidate {
	var out []relCandidate
	add := func(rid graph.RelID, end graph.NodeID) {
		if preBound != nil && rid != *preBound {
			return
		}
		out = append(out, relCandidate{rid: rid, end: end})
	}
	if rp.Direction == ast.DirOut || rp.Direction == ast.DirBoth {
		for _, rid := range m.Graph.Outgoing(at) {
			add(rid, m.Graph.Rel(rid).Tgt)
		}
	}
	if rp.Direction == ast.DirIn || rp.Direction == ast.DirBoth {
		for _, rid := range m.Graph.Incoming(at) {
			r := m.Graph.Rel(rid)
			// A self-loop was already produced by the outgoing scan in
			// DirBoth mode.
			if rp.Direction == ast.DirBoth && r.Src == r.Tgt {
				continue
			}
			add(rid, r.Src)
		}
	}
	return out
}

func typeMatches(r *graph.Rel, types []string) bool {
	if len(types) == 0 {
		return true
	}
	for _, t := range types {
		if r.Type == t {
			return true
		}
	}
	return false
}

// checkEndNode validates the far endpoint against its node pattern,
// binding its variable if fresh.
func (m *Matcher) checkEndNode(np *ast.NodePattern, end graph.NodeID, env expr.Env, yield func(expr.Env) error) error {
	if np.Var != "" {
		if bound, ok := env[np.Var]; ok {
			nv, isNode := bound.(value.Node)
			if !isNode {
				if value.IsNull(bound) {
					return nil
				}
				return fmt.Errorf("variable `%s` is bound to %s, expected Node", np.Var, bound.Kind())
			}
			if graph.NodeID(nv.ID) != end {
				return nil
			}
			ok2, err := m.nodeSatisfies(end, np, env)
			if err != nil || !ok2 {
				return err
			}
			return yield(env)
		}
	}
	ok, err := m.nodeSatisfies(end, np, env)
	if err != nil || !ok {
		return err
	}
	if np.Var != "" {
		env = env.With(np.Var, value.Node{ID: int64(end)})
	}
	return yield(env)
}

// expandVarLength enumerates variable-length paths of rp's type starting
// at `at`, with hop count in [min, max]. Relationship uniqueness is
// enforced within the traversed path in both modes (guaranteeing
// termination); in Isomorphism mode the path's relationships additionally
// respect the clause-wide used set.
func (m *Matcher) expandVarLength(rp *ast.RelPattern, np *ast.NodePattern, at graph.NodeID, env expr.Env, used map[graph.RelID]bool, yield func([]graph.RelID, graph.NodeID, expr.Env) error) error {
	minHops := rp.MinHops
	if minHops < 0 {
		minHops = 1
	}
	maxHops := rp.MaxHops // -1 = unbounded
	if rp.Var != "" {
		if _, ok := env[rp.Var]; ok {
			return fmt.Errorf("variable-length relationship variable `%s` cannot be pre-bound", rp.Var)
		}
	}

	inPath := make(map[graph.RelID]bool)
	var path []graph.RelID

	emit := func(end graph.NodeID) error {
		env2 := env
		if rp.Var != "" {
			lst := make(value.List, len(path))
			for i, rid := range path {
				lst[i] = value.Rel{ID: int64(rid)}
			}
			env2 = env.With(rp.Var, lst)
		}
		relsCopy := append([]graph.RelID(nil), path...)
		return m.checkEndNode(np, end, env2, func(env3 expr.Env) error {
			for _, rid := range relsCopy {
				used[rid] = true
			}
			err := yield(relsCopy, end, env3)
			for _, rid := range relsCopy {
				delete(used, rid)
			}
			return err
		})
	}

	var dfs func(cur graph.NodeID) error
	dfs = func(cur graph.NodeID) error {
		if len(path) >= minHops {
			if err := emit(cur); err != nil {
				return err
			}
		}
		if maxHops >= 0 && len(path) >= maxHops {
			return nil
		}
		for _, c := range m.relCandidates(rp, cur, nil) {
			if m.Stats != nil {
				m.Stats.RelVisits++
			}
			if inPath[c.rid] {
				continue
			}
			if m.Mode == Isomorphism && used[c.rid] {
				continue
			}
			r := m.Graph.Rel(c.rid)
			if r == nil || !typeMatches(r, rp.Types) {
				continue
			}
			ok, err := m.propsSatisfy(r.Props, rp.Props, env)
			if err != nil {
				return err
			}
			if !ok {
				continue
			}
			inPath[c.rid] = true
			path = append(path, c.rid)
			err = dfs(c.end)
			path = path[:len(path)-1]
			delete(inPath, c.rid)
			if err != nil {
				return err
			}
		}
		return nil
	}
	return dfs(at)
}

// PatternVariables lists the variables a pattern tuple would bind, in
// first-appearance order: path variables, node variables, relationship
// variables.
func PatternVariables(parts []*ast.PatternPart) []string {
	var out []string
	seen := make(map[string]bool)
	add := func(name string) {
		if name != "" && !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	for _, part := range parts {
		add(part.Var)
		for i, n := range part.Nodes {
			add(n.Var)
			if i < len(part.Rels) {
				add(part.Rels[i].Var)
			}
		}
	}
	return out
}
