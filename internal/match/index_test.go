package match

import (
	"strings"
	"testing"

	"repro/internal/expr"
	"repro/internal/graph"
	"repro/internal/value"
)

// seekGraph builds n :U nodes with v:0..n-1.
func seekGraph(n int) *graph.Graph {
	g := graph.New()
	for i := 0; i < n; i++ {
		g.CreateNode([]string{"U"}, value.Map{"v": value.Int(int64(i))})
	}
	return g
}

// TestPlannerChoosesIndexSeekInlineProps: with an index on (U, v), an
// inline property map anchors as an index seek — one candidate visited
// instead of the whole label — and the seek disappears with the index.
func TestPlannerChoosesIndexSeekInlineProps(t *testing.T) {
	g := seekGraph(100)
	g.CreateIndex("U", "v")

	m := matcher(g)
	var stats Stats
	m.Stats = &stats
	res := multiset(t, m, `(u:U {v: 42})`, expr.Env{})
	if len(res) != 1 {
		t.Fatalf("expected 1 match, got %d", len(res))
	}
	if stats.NodeVisits != 1 {
		t.Errorf("index seek visited %d nodes, want 1", stats.NodeVisits)
	}
	if d := m.DescribePlan(patternOf(t, `(u:U {v: 42})`), nil); !strings.Contains(d, "index-seek(:U.v)") {
		t.Errorf("DescribePlan missing index-seek: %s", d)
	}

	g.DropIndex("U", "v")
	stats = Stats{}
	res2 := multiset(t, m, `(u:U {v: 42})`, expr.Env{})
	if len(res2) != 1 || res2[0] != res[0] {
		t.Fatalf("results diverged after DROP INDEX: %v vs %v", res2, res)
	}
	if stats.NodeVisits != 100 {
		t.Errorf("label scan visited %d nodes, want 100", stats.NodeVisits)
	}
	if d := m.DescribePlan(patternOf(t, `(u:U {v: 42})`), nil); strings.Contains(d, "index-seek") {
		t.Errorf("DescribePlan still shows index-seek after drop: %s", d)
	}
}

// TestPlannerChoosesIndexSeekPushedEquality: a pushed `u.v = <expr>`
// WHERE conjunct (either operand order) seeds the seek, and the full
// result multiset equals the label scan's.
func TestPlannerChoosesIndexSeekPushedEquality(t *testing.T) {
	g := seekGraph(100)
	g.CreateIndex("U", "v")
	for _, where := range []string{`u.v = 41 + 1`, `42 = u.v`} {
		m := matcher(g)
		var stats Stats
		m.Stats = &stats
		parts := patternOf(t, `(u:U)`)
		m.SetPushdown(NewPushdown(mustExpr(t, where), parts, nil))
		res, err := m.Match(parts, expr.Env{})
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != 1 {
			t.Fatalf("WHERE %s: expected 1 pruned match, got %d", where, len(res))
		}
		if v, _ := res[0]["u"].(value.Node); g.Node(graph.NodeID(v.ID)).Props["v"] != value.Int(42) {
			t.Fatalf("WHERE %s: wrong node matched", where)
		}
		if stats.NodeVisits != 1 {
			t.Errorf("WHERE %s: visited %d nodes, want 1", where, stats.NodeVisits)
		}
	}

	// `u.v = u.v` references the slot on both sides: no seek possible.
	m := matcher(g)
	var stats Stats
	m.Stats = &stats
	parts := patternOf(t, `(u:U)`)
	m.SetPushdown(NewPushdown(mustExpr(t, `u.v = u.v`), parts, nil))
	if _, err := m.Match(parts, expr.Env{}); err != nil {
		t.Fatal(err)
	}
	if stats.NodeVisits != 100 {
		t.Errorf("self-referential equality seeked (%d visits), must scan", stats.NodeVisits)
	}
}

// TestPlanCacheInvalidatesOnIndexEpoch: a matcher that cached a
// scan-anchored plan must re-plan the moment an index is created (and
// again when it is dropped), even though the cardinality estimates have
// not drifted.
func TestPlanCacheInvalidatesOnIndexEpoch(t *testing.T) {
	g := seekGraph(100)
	m := matcher(g)
	var stats Stats
	m.Stats = &stats

	if got := multiset(t, m, `(u:U {v: 7})`, expr.Env{}); len(got) != 1 {
		t.Fatalf("expected 1 match, got %d", len(got))
	}
	if stats.NodeVisits != 100 {
		t.Fatalf("pre-index scan visited %d, want 100", stats.NodeVisits)
	}

	g.CreateIndex("U", "v")
	stats = Stats{}
	if got := multiset(t, m, `(u:U {v: 7})`, expr.Env{}); len(got) != 1 {
		t.Fatalf("expected 1 match, got %d", len(got))
	}
	if stats.NodeVisits != 1 {
		t.Errorf("plan cache survived CREATE INDEX: %d visits, want 1", stats.NodeVisits)
	}

	g.DropIndex("U", "v")
	stats = Stats{}
	if got := multiset(t, m, `(u:U {v: 7})`, expr.Env{}); len(got) != 1 {
		t.Fatalf("expected 1 match, got %d", len(got))
	}
	if stats.NodeVisits != 100 {
		t.Errorf("plan cache survived DROP INDEX: %d visits, want 100", stats.NodeVisits)
	}
}

// TestIndexSeekNullAndNaN: a null seek value yields no matches (ternary
// `= null` is never true) and NaN-valued lookups keep Cypher equality
// (NaN <> NaN), both identical to the label-scan behaviour.
func TestIndexSeekNullAndNaN(t *testing.T) {
	g := graph.New()
	g.CreateNode([]string{"U"}, value.Map{"v": value.Int(1)})
	g.CreateNode([]string{"U"}, value.Map{"v": value.Float(mathNaN())})
	g.CreateIndex("U", "v")

	for _, env := range []expr.Env{{"x": value.NullValue}, {"x": value.Float(mathNaN())}} {
		m := matcher(g)
		parts := patternOf(t, `(u:U)`)
		m.SetPushdown(NewPushdown(mustExpr(t, `u.v = x`), parts, []string{"x"}))
		res, err := m.Match(parts, env)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != 0 {
			t.Fatalf("seek value %v matched %d nodes, want 0", env["x"], len(res))
		}
	}
}

func mathNaN() float64 {
	f := 0.0
	return f / f
}

// TestIndexSeekMultisetEqualsScanRandom cross-checks seek-anchored
// enumeration against the label scan over random graphs with colliding
// property values and multi-label nodes.
func TestIndexSeekMultisetEqualsScanRandom(t *testing.T) {
	patterns := []string{
		`(u:U {v: 2})`,
		`(u:U {v: 2})-[:R]->(w:U)`,
		`(w:U)-[:R]->(u:U {v: 1})`,
		`(u:U {v: 2, w: 1})`,
	}
	for seed := 0; seed < 3; seed++ {
		g := graph.New()
		var ids []graph.NodeID
		for i := 0; i < 60; i++ {
			props := value.Map{"v": value.Int(int64(i % 5))}
			if i%3 == 0 {
				props["w"] = value.Int(int64(i % 2))
			}
			labels := []string{"U"}
			if i%4 == 0 {
				labels = append(labels, "X")
			}
			ids = append(ids, g.CreateNode(labels, props).ID)
		}
		for i, id := range ids {
			if _, err := g.CreateRel(id, ids[(i*7+seed)%len(ids)], "R", nil); err != nil {
				t.Fatal(err)
			}
		}
		for _, p := range patterns {
			scan := multiset(t, matcher(g), p, expr.Env{})
			g.CreateIndex("U", "v")
			g.CreateIndex("U", "w")
			seeked := multiset(t, matcher(g), p, expr.Env{})
			g.DropIndex("U", "v")
			g.DropIndex("U", "w")
			if strings.Join(scan, "\n") != strings.Join(seeked, "\n") {
				t.Fatalf("seed=%d pattern %s: seek multiset diverged from scan\nscan: %v\nseek: %v", seed, p, scan, seeked)
			}
		}
	}
}
