package match

import (
	"sort"
	"strings"
	"sync"

	"repro/internal/ast"
)

// PlanCache is a shared, cross-statement (and cross-session) cache of
// match plans. The per-matcher cache fields on Matcher amortize
// planning across the driving records of ONE operator; a PlanCache
// amortizes it across statements, sessions and connections: every
// matcher of the same engine points at the same PlanCache, so a million
// identical parameterized point lookups — from one session or a
// thousand — plan once.
//
// Entries are keyed on the pattern's AST identity, the bound-column
// set and the matching mode. AST identity works cross-session because
// the engine's statement cache (internal/core) shares one parsed AST
// per distinct query text: the same query text yields pointer-equal
// pattern parts, and a pattern part determines its statement — and
// therefore the WHERE pushdown that feeds the planner — uniquely.
//
// Validity is statistics-based, exactly like the per-matcher cache: an
// entry remembers the graph version, the index epoch and the anchor
// estimate fingerprint it was planned under. A lookup against a graph
// whose version moved re-validates the fingerprint (O(1) statistic
// reads per node slot) and keeps the plan unless the estimates drifted
// materially; a changed index epoch (CREATE/DROP INDEX) invalidates
// outright, because a new index can enable a seek anchor (and a drop
// must disable one) without any cardinality drift.
//
// A PlanCache is safe for concurrent use. Matchers consult it only on
// a per-matcher (L1) miss, so steady-state streaming never touches the
// shared mutex.
type PlanCache struct {
	mu      sync.Mutex
	entries map[planCacheKey]*planCacheEntry
	clock   int64

	hits          int64
	misses        int64
	invalidations int64
}

// planCacheMaxEntries bounds the cache; beyond it the least recently
// used entry is evicted. The bound also bounds how much parsed AST the
// cache can pin (entries hold pattern pointers).
const planCacheMaxEntries = 4096

// planCacheKey identifies a plan: the pattern tuple (by AST identity),
// the set of variables bound on entry, and the matching mode.
type planCacheKey struct {
	part0 *ast.PatternPart
	n     int
	bound string // sorted bound names, \x1f-joined
	mode  Mode
}

// planCacheEntry is one cached plan with its validity stamps.
type planCacheEntry struct {
	plans    []partPlan
	est      []float64
	ver      int64
	idxEpoch int64
	lastUse  int64
}

// NewPlanCache returns an empty shared plan cache.
func NewPlanCache() *PlanCache {
	return &PlanCache{entries: make(map[planCacheKey]*planCacheEntry)}
}

// PlanCacheStats is a point-in-time snapshot of a PlanCache's counters.
type PlanCacheStats struct {
	// Hits counts lookups answered from the shared cache (including
	// plans revalidated against drifted-but-tolerable statistics).
	Hits int64
	// Misses counts lookups that had to plan from scratch because no
	// entry existed for the key.
	Misses int64
	// Invalidations counts lookups that found an entry but discarded it
	// — the statistics drifted beyond tolerance or the index epoch
	// changed — and re-planned.
	Invalidations int64
	// Entries is the current number of cached plans.
	Entries int
}

// Stats returns the cache's counters.
func (c *PlanCache) Stats() PlanCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return PlanCacheStats{Hits: c.hits, Misses: c.misses, Invalidations: c.invalidations, Entries: len(c.entries)}
}

// boundKey canonicalizes a bound-variable set for keying.
func boundKey(names []string) string {
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	return strings.Join(sorted, "\x1f")
}

// lookup returns a valid cached plan for the key against the matcher's
// current graph, or nil. A version-stale entry is revalidated by
// recomputing the estimate fingerprint; a drifted or index-stale entry
// is treated as a miss (and counted as an invalidation). The matcher m
// is used only for statistic reads.
func (c *PlanCache) lookup(m *Matcher, key planCacheKey, parts []*ast.PatternPart, bound map[string]bool) []partPlan {
	ver, idxEpoch := m.Graph.Version(), m.Graph.IndexEpoch()
	c.mu.Lock()
	e := c.entries[key]
	if e == nil {
		c.misses++
		c.mu.Unlock()
		return nil
	}
	c.clock++
	e.lastUse = c.clock
	if e.idxEpoch == idxEpoch && e.ver == ver {
		c.hits++
		plans := e.plans
		c.mu.Unlock()
		return plans
	}
	if e.idxEpoch != idxEpoch {
		c.invalidations++
		delete(c.entries, key)
		c.mu.Unlock()
		return nil
	}
	// Version moved: revalidate against the live statistics outside the
	// estimate snapshot race is benign — a concurrent writer can at
	// worst make us re-plan or keep a plan one lookup longer, never
	// return a wrong result (plans only order enumeration).
	oldEst := e.est
	c.mu.Unlock()
	fp := m.estimateFingerprint(parts, bound)
	c.mu.Lock()
	defer c.mu.Unlock()
	e2 := c.entries[key]
	if e2 == nil {
		c.misses++
		return nil
	}
	if estimatesDrifted(oldEst, fp) {
		c.invalidations++
		delete(c.entries, key)
		return nil
	}
	e2.ver = ver
	c.hits++
	return e2.plans
}

// store inserts a freshly built plan, evicting the least recently used
// entry when the cache is full.
func (c *PlanCache) store(key planCacheKey, plans []partPlan, est []float64, ver, idxEpoch int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.entries) >= planCacheMaxEntries {
		var lruKey planCacheKey
		lru := int64(1<<63 - 1)
		for k, e := range c.entries {
			if e.lastUse < lru {
				lru, lruKey = e.lastUse, k
			}
		}
		delete(c.entries, lruKey)
	}
	c.clock++
	c.entries[key] = &planCacheEntry{plans: plans, est: est, ver: ver, idxEpoch: idxEpoch, lastUse: c.clock}
}
