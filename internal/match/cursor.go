package match

import (
	"iter"

	"repro/internal/ast"
	"repro/internal/expr"
)

// Cursor adapts Stream's push-style enumeration to batched pulling for
// the vectorized executor. The enumeration runs in a coroutine
// (iter.Pull) that buffers up to max yielded environments per resume,
// so one coroutine switch amortizes over a whole batch of matches
// instead of costing one per row.
//
// Buffering environments across resumes is safe: Stream extends the
// seed environment through Env.With, which copies, so every yielded
// environment is a distinct map.
type Cursor struct {
	next    func() ([]expr.Env, bool)
	stop    func()
	err     *error
	stopped bool
}

// NewCursor starts enumerating matches of parts seeded by env and
// returns a cursor over batches of at most max result environments.
// When filter is non-nil it is applied inside the enumeration: only
// environments it reports true for are yielded (and count toward batch
// boundaries); an error from the filter aborts the enumeration.
func (m *Matcher) NewCursor(parts []*ast.PatternPart, env expr.Env, max int, filter func(expr.Env) (bool, error)) *Cursor {
	return newCursor(func(yield func(expr.Env) error) error {
		return m.Stream(parts, env, yield)
	}, max, filter)
}

// newCursor adapts any push-style enumeration to the Cursor pull
// discipline (NewCursor and NewAnchorCursor share it).
func newCursor(stream func(yield func(expr.Env) error) error, max int, filter func(expr.Env) (bool, error)) *Cursor {
	if max < 1 {
		max = 1
	}
	errp := new(error)
	seq := func(yield func([]expr.Env) bool) {
		buf := make([]expr.Env, 0, max)
		*errp = stream(func(me expr.Env) error {
			if filter != nil {
				keep, err := filter(me)
				if err != nil {
					return err
				}
				if !keep {
					return nil
				}
			}
			buf = append(buf, me)
			if len(buf) >= max {
				out := buf
				buf = make([]expr.Env, 0, max)
				if !yield(out) {
					return ErrStop
				}
			}
			return nil
		})
		if *errp == nil && len(buf) > 0 {
			yield(buf)
		}
	}
	next, stop := iter.Pull(seq)
	return &Cursor{next: next, stop: stop, err: errp}
}

// Next returns the next batch of match environments; ok is false once
// the enumeration is exhausted or has failed. After ok=false the caller
// must call Stop to collect any enumeration error.
func (c *Cursor) Next() ([]expr.Env, bool) {
	if c.stopped {
		return nil, false
	}
	return c.next()
}

// Stop ends the enumeration (abandoning any unconsumed matches) and
// returns the error it hit, if any. Safe to call multiple times.
func (c *Cursor) Stop() error {
	if !c.stopped {
		c.stopped = true
		c.stop()
	}
	return *c.err
}
