package match

import (
	"testing"

	"repro/internal/ast"
	"repro/internal/expr"
	"repro/internal/graph"
	"repro/internal/parser"
	"repro/internal/value"
)

// figure1 builds the solid-line part of Figure 1 of the paper and returns
// the graph plus a name->id map.
func figure1() (*graph.Graph, map[string]graph.NodeID) {
	g := graph.New()
	ids := make(map[string]graph.NodeID)
	mk := func(name, label string, props value.Map) {
		ids[name] = g.CreateNode([]string{label}, props).ID
	}
	mk("v1", "Vendor", value.Map{"id": value.Int(60), "name": value.String("cStore")})
	mk("p1", "Product", value.Map{"id": value.Int(125), "name": value.String("laptop")})
	mk("p2", "Product", value.Map{"id": value.Int(125), "name": value.String("notebook")})
	mk("u1", "User", value.Map{"id": value.Int(89), "name": value.String("Bob")})
	mk("u2", "User", value.Map{"id": value.Int(99), "name": value.String("Jane")})
	mk("p3", "Product", value.Map{"id": value.Int(85), "name": value.String("tablet")})
	rel := func(src, tgt, typ string) {
		if _, err := g.CreateRel(ids[src], ids[tgt], typ, nil); err != nil {
			panic(err)
		}
	}
	rel("v1", "p1", "OFFERS")
	rel("v1", "p2", "OFFERS")
	rel("u1", "p1", "ORDERED")
	rel("u1", "p3", "ORDERED")
	rel("u2", "p3", "ORDERED")
	rel("u2", "p2", "ORDERED")
	return g, ids
}

func patternOf(t *testing.T, src string) []*ast.PatternPart {
	t.Helper()
	stmt, err := parser.Parse("MATCH " + src + " RETURN 1")
	if err != nil {
		t.Fatalf("parse pattern %q: %v", src, err)
	}
	return stmt.Queries[0].Clauses[0].(*ast.MatchClause).Pattern
}

func matcher(g *graph.Graph) *Matcher {
	return &Matcher{Graph: g, Ev: &expr.Evaluator{Graph: g}}
}

func TestMatchSingleNode(t *testing.T) {
	g, _ := figure1()
	m := matcher(g)
	res, err := m.Match(patternOf(t, "(p:Product)"), expr.Env{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Errorf("products = %d, want 3", len(res))
	}
	res, _ = m.Match(patternOf(t, "(p:Product{name:'laptop'})"), expr.Env{})
	if len(res) != 1 {
		t.Errorf("laptop = %d, want 1", len(res))
	}
	res, _ = m.Match(patternOf(t, "(n)"), expr.Env{})
	if len(res) != 6 {
		t.Errorf("all nodes = %d, want 6", len(res))
	}
	res, _ = m.Match(patternOf(t, "(n:Nope)"), expr.Env{})
	if len(res) != 0 {
		t.Errorf("missing label = %d", len(res))
	}
}

// Query (1) of the paper: vendors offering two products, one named laptop.
// The driving table before WHERE has two records; the relationship-
// isomorphism rule excludes p = q.
func TestPaperQuery1Matching(t *testing.T) {
	g, ids := figure1()
	m := matcher(g)
	pat := patternOf(t, "(p:Product)<-[:OFFERS]-(v:Vendor)-[:OFFERS]->(q:Product)")
	res, err := m.Match(pat, expr.Env{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("matches = %d, want 2 (relationship isomorphism)", len(res))
	}
	for _, r := range res {
		p := r["p"].(value.Node)
		q := r["q"].(value.Node)
		if p.ID == q.ID {
			t.Error("p and q must differ under relationship isomorphism")
		}
		if r["v"].(value.Node).ID != int64(ids["v1"]) {
			t.Error("vendor must be v1")
		}
	}
}

func TestHomomorphismAllowsRelReuse(t *testing.T) {
	g, _ := figure1()
	m := matcher(g)
	m.Mode = Homomorphism
	pat := patternOf(t, "(p:Product)<-[:OFFERS]-(v:Vendor)-[:OFFERS]->(q:Product)")
	res, err := m.Match(pat, expr.Env{})
	if err != nil {
		t.Fatal(err)
	}
	// Under homomorphism p=q via the same OFFERS edge is allowed:
	// 2 (distinct) + 2 (p=q over same edge) = 4.
	if len(res) != 4 {
		t.Errorf("homomorphism matches = %d, want 4", len(res))
	}
}

func TestDirections(t *testing.T) {
	g, ids := figure1()
	m := matcher(g)
	out, _ := m.Match(patternOf(t, "(v:Vendor)-[:OFFERS]->(p)"), expr.Env{})
	if len(out) != 2 {
		t.Errorf("outgoing = %d", len(out))
	}
	in, _ := m.Match(patternOf(t, "(p)<-[:OFFERS]-(v:Vendor)"), expr.Env{})
	if len(in) != 2 {
		t.Errorf("incoming = %d", len(in))
	}
	both, _ := m.Match(patternOf(t, "(u:User{id:89})-[:ORDERED]-(p)"), expr.Env{})
	if len(both) != 2 {
		t.Errorf("undirected from u1 = %d", len(both))
	}
	_ = ids
}

func TestSelfLoopUndirectedNoDuplicate(t *testing.T) {
	g := graph.New()
	n := g.CreateNode([]string{"X"}, nil)
	g.CreateRel(n.ID, n.ID, "LOOP", nil)
	m := matcher(g)
	res, _ := m.Match(patternOf(t, "(a:X)-[r]-(b)"), expr.Env{})
	if len(res) != 1 {
		t.Errorf("self loop undirected matches = %d, want 1", len(res))
	}
}

func TestPreBoundVariables(t *testing.T) {
	g, ids := figure1()
	m := matcher(g)
	env := expr.Env{"u": value.Node{ID: int64(ids["u1"])}}
	res, err := m.Match(patternOf(t, "(u)-[:ORDERED]->(p)"), env)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Errorf("u1 orders = %d, want 2", len(res))
	}
	// Bound to null: no matches, no error.
	res, err = m.Match(patternOf(t, "(u)-[:ORDERED]->(p)"), expr.Env{"u": value.NullValue})
	if err != nil || len(res) != 0 {
		t.Errorf("null binding: %d, %v", len(res), err)
	}
	// Bound to a non-node: error.
	if _, err := m.Match(patternOf(t, "(u)"), expr.Env{"u": value.Int(1)}); err == nil {
		t.Error("non-node binding should error")
	}
	// Bound node must still satisfy labels.
	res, _ = m.Match(patternOf(t, "(u:Vendor)"), env)
	if len(res) != 0 {
		t.Error("bound node should fail label filter")
	}
}

func TestSharedVariableJoin(t *testing.T) {
	g, _ := figure1()
	m := matcher(g)
	// Two parts sharing p: vendors and users connected through a product.
	pat := patternOf(t, "(v:Vendor)-[:OFFERS]->(p), (u:User)-[:ORDERED]->(p)")
	res, err := m.Match(pat, expr.Env{})
	if err != nil {
		t.Fatal(err)
	}
	// v1 offers p1 (ordered by u1) and p2 (ordered by u2): 2 joins.
	if len(res) != 2 {
		t.Errorf("join matches = %d, want 2", len(res))
	}
}

func TestRelVariableAndTypeAlternatives(t *testing.T) {
	g, _ := figure1()
	m := matcher(g)
	res, err := m.Match(patternOf(t, "(a)-[r:OFFERS|ORDERED]->(b)"), expr.Env{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 6 {
		t.Errorf("typed rels = %d, want 6", len(res))
	}
	for _, e := range res {
		if _, ok := e["r"].(value.Rel); !ok {
			t.Fatal("r not bound to a relationship")
		}
	}
}

func TestRelPropsFilter(t *testing.T) {
	g := graph.New()
	a := g.CreateNode(nil, nil)
	b := g.CreateNode(nil, nil)
	g.CreateRel(a.ID, b.ID, "T", value.Map{"w": value.Int(1)})
	g.CreateRel(a.ID, b.ID, "T", value.Map{"w": value.Int(2)})
	m := matcher(g)
	res, _ := m.Match(patternOf(t, "(a)-[r:T{w:2}]->(b)"), expr.Env{})
	if len(res) != 1 {
		t.Errorf("prop-filtered rels = %d, want 1", len(res))
	}
	// A null-valued pattern property never matches (ternary equality).
	res, _ = m.Match(patternOf(t, "(a)-[r:T{w:null}]->(b)"), expr.Env{})
	if len(res) != 0 {
		t.Errorf("null prop filter matched %d", len(res))
	}
}

func TestVarLength(t *testing.T) {
	// Chain a->b->c->d.
	g := graph.New()
	var ids []graph.NodeID
	for i := 0; i < 4; i++ {
		ids = append(ids, g.CreateNode([]string{"N"}, value.Map{"i": value.Int(int64(i))}).ID)
	}
	for i := 0; i < 3; i++ {
		g.CreateRel(ids[i], ids[i+1], "NEXT", nil)
	}
	m := matcher(g)

	res, err := m.Match(patternOf(t, "(a{i:0})-[:NEXT*]->(b)"), expr.Env{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Errorf("*: %d paths, want 3", len(res))
	}
	res, _ = m.Match(patternOf(t, "(a{i:0})-[:NEXT*2]->(b)"), expr.Env{})
	if len(res) != 1 {
		t.Errorf("*2: %d, want 1", len(res))
	}
	res, _ = m.Match(patternOf(t, "(a{i:0})-[:NEXT*1..2]->(b)"), expr.Env{})
	if len(res) != 2 {
		t.Errorf("*1..2: %d, want 2", len(res))
	}
	res, _ = m.Match(patternOf(t, "(a{i:0})-[:NEXT*0..]->(b)"), expr.Env{})
	if len(res) != 4 {
		t.Errorf("*0..: %d, want 4 (incl. empty path)", len(res))
	}
	// Var-length var binds to the list of relationships.
	res, _ = m.Match(patternOf(t, "(a{i:0})-[rs:NEXT*2]->(b)"), expr.Env{})
	if lst, ok := res[0]["rs"].(value.List); !ok || len(lst) != 2 {
		t.Errorf("rs binding = %#v", res[0]["rs"])
	}
}

// The paper's Section 2 example: MATCH (v)-[*]->(v) over a single loop
// must terminate and return finitely many results thanks to relationship
// isomorphism.
func TestVarLengthLoopTerminates(t *testing.T) {
	g := graph.New()
	v := g.CreateNode(nil, nil)
	g.CreateRel(v.ID, v.ID, "L", nil)
	m := matcher(g)
	res, err := m.Match(patternOf(t, "(v)-[*]->(v)"), expr.Env{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Errorf("loop paths = %d, want 1", len(res))
	}
}

func TestIsomorphismAcrossParts(t *testing.T) {
	g := graph.New()
	a := g.CreateNode(nil, nil)
	b := g.CreateNode(nil, nil)
	g.CreateRel(a.ID, b.ID, "T", nil)
	m := matcher(g)
	// Two rel slots, only one relationship: no iso match, one homo match
	// per orientation combination.
	pat := patternOf(t, "(a)-[r1:T]->(b), (c)-[r2:T]->(d)")
	res, _ := m.Match(pat, expr.Env{})
	if len(res) != 0 {
		t.Errorf("iso: %d, want 0", len(res))
	}
	m.Mode = Homomorphism
	res, _ = m.Match(pat, expr.Env{})
	if len(res) != 1 {
		t.Errorf("homo: %d, want 1", len(res))
	}
}

func TestNamedPathBinding(t *testing.T) {
	g, ids := figure1()
	m := matcher(g)
	res, err := m.Match(patternOf(t, "pth = (u:User{id:89})-[:ORDERED]->(p{name:'laptop'})"), expr.Env{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("path matches = %d", len(res))
	}
	pth, ok := res[0]["pth"].(value.Path)
	if !ok {
		t.Fatalf("pth = %#v", res[0]["pth"])
	}
	if len(pth.Nodes) != 2 || len(pth.Rels) != 1 {
		t.Errorf("path shape: %v", pth)
	}
	if pth.Nodes[0] != int64(ids["u1"]) {
		t.Error("path start")
	}
}

func TestMatchExists(t *testing.T) {
	g, _ := figure1()
	m := matcher(g)
	ok, err := m.MatchExists(patternOf(t, "(v:Vendor)"), expr.Env{})
	if err != nil || !ok {
		t.Error("vendor should exist")
	}
	ok, err = m.MatchExists(patternOf(t, "(v:Nope)"), expr.Env{})
	if err != nil || ok {
		t.Error("Nope should not exist")
	}
}

func TestPatternVariables(t *testing.T) {
	pat := patternOf(t, "pth = (a)-[r:T]->(b), (a)-[:U]->(c)")
	vars := PatternVariables(pat)
	want := []string{"pth", "a", "r", "b", "c"}
	if len(vars) != len(want) {
		t.Fatalf("vars = %v", vars)
	}
	for i := range want {
		if vars[i] != want[i] {
			t.Fatalf("vars = %v, want %v", vars, want)
		}
	}
}

func TestPropsReferencingEarlierBindings(t *testing.T) {
	g := graph.New()
	a := g.CreateNode([]string{"A"}, value.Map{"k": value.Int(7)})
	b := g.CreateNode([]string{"B"}, value.Map{"k": value.Int(7)})
	c := g.CreateNode([]string{"B"}, value.Map{"k": value.Int(8)})
	g.CreateRel(a.ID, b.ID, "T", nil)
	g.CreateRel(a.ID, c.ID, "T", nil)
	m := matcher(g)
	// The far node's property map references the first node's binding.
	res, err := m.Match(patternOf(t, "(x:A)-[:T]->(y:B{k: x.k})"), expr.Env{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Errorf("dependent props matches = %d, want 1", len(res))
	}
}
