package script

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/parser"
)

// TestScriptCorpusExplain replays every script statement by statement
// and, for each statement that matches a pattern, renders its plan
// first: EXPLAIN must surface the planner's anchor choice, part
// execution order and cardinality estimates against the graph state the
// statement would actually run on; somewhere in the corpus a WHERE
// conjunct must be shown as pushed into the match, and an equality
// lookup on an indexed property must anchor as an index seek.
func TestScriptCorpusExplain(t *testing.T) {
	manifest := map[string]core.Dialect{
		"paper_walkthrough.cypher": core.DialectCypher9,
		"social.cypher":            core.DialectRevised,
		"inventory.cypher":         core.DialectRevised,
		"expressions.cypher":       core.DialectRevised,
	}
	dir := filepath.Join("..", "..", "scripts")
	explained := 0
	sawPushed := false
	sawSeek := false
	for name, dialect := range manifest {
		src, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		eng := core.NewEngine(core.Config{Dialect: dialect})
		g := graph.New()
		for i, stmtSrc := range Split(string(src)) {
			stmt, err := parser.Parse(stmtSrc)
			if err != nil {
				t.Fatalf("%s stmt %d: %v", name, i+1, err)
			}
			if containsMatch(stmt) {
				out, err := eng.ExplainStatement(g, stmt, nil)
				if err != nil {
					t.Fatalf("%s stmt %d explain: %v", name, i+1, err)
				}
				for _, want := range []string{"order=[", "anchor=[", "est=["} {
					if !strings.Contains(out, want) {
						t.Errorf("%s stmt %d: EXPLAIN missing %q:\n%s", name, i+1, want, out)
					}
				}
				if strings.Contains(out, "pushed=[") {
					sawPushed = true
				}
				if strings.Contains(out, "index-seek(") {
					sawSeek = true
				}
				explained++
			}
			if _, err := eng.ExecuteStatement(g, stmt, nil); err != nil {
				t.Fatalf("%s stmt %d exec: %v", name, i+1, err)
			}
		}
	}
	if explained == 0 {
		t.Fatal("corpus contained no MATCH statements to explain")
	}
	if !sawPushed {
		t.Error("no corpus query showed a pushed WHERE conjunct")
	}
	if !sawSeek {
		t.Error("no corpus query anchored on an index seek")
	}
}

func containsMatch(stmt *ast.Statement) bool {
	for _, q := range stmt.Queries {
		for _, c := range q.Clauses {
			if _, ok := c.(*ast.MatchClause); ok {
				return true
			}
		}
	}
	return false
}
