// Package script splits Cypher script files into statements and runs
// them against an engine. It backs cmd/cypher-run and the script corpus
// tests under scripts/.
package script

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/parser"
	"repro/internal/table"
	"repro/internal/value"
)

// Split splits Cypher source into statements at semicolons that are
// outside string literals and line comments. A trailing statement
// without a semicolon is included; empty statements are dropped.
func Split(src string) []string {
	var out []string
	var cur strings.Builder
	inStr := byte(0)
	for i := 0; i < len(src); i++ {
		c := src[i]
		switch {
		case inStr != 0:
			cur.WriteByte(c)
			if c == '\\' && i+1 < len(src) {
				i++
				cur.WriteByte(src[i])
			} else if c == inStr {
				inStr = 0
			}
		case c == '\'' || c == '"':
			inStr = c
			cur.WriteByte(c)
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				i++
			}
			cur.WriteByte('\n')
		case c == ';':
			if stmt := strings.TrimSpace(cur.String()); stmt != "" {
				out = append(out, stmt)
			}
			cur.Reset()
		default:
			cur.WriteByte(c)
		}
	}
	if stmt := strings.TrimSpace(cur.String()); stmt != "" {
		out = append(out, stmt)
	}
	return out
}

// StatementResult captures one statement's outcome for reporting.
type StatementResult struct {
	Source string
	Table  *table.Table
	Stats  core.UpdateStats
}

// Run executes every statement of a script against g, stopping at the
// first error. Parameters apply to all statements.
func Run(engine *core.Engine, g *graph.Graph, src string, params map[string]value.Value) ([]StatementResult, error) {
	var out []StatementResult
	for i, stmtSrc := range Split(src) {
		stmt, err := parser.Parse(stmtSrc)
		if err != nil {
			return out, fmt.Errorf("statement %d: %w", i+1, err)
		}
		res, err := engine.ExecuteStatement(g, stmt, params)
		if err != nil {
			return out, fmt.Errorf("statement %d: %w", i+1, err)
		}
		out = append(out, StatementResult{Source: stmtSrc, Table: res.Table, Stats: res.Stats})
	}
	return out, nil
}
