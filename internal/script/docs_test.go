package script

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/cypher"
)

// docBlock is one fenced cypher snippet from the language reference.
type docBlock struct {
	line    int    // 1-based line of the opening fence
	info    string // fence info string ("cypher", "cypher cypher9", "cypher norun")
	source  string
	dialect cypher.Dialect
	norun   bool
}

// extractCypherBlocks pulls every ```cypher fenced block out of a
// markdown document. Fences with other info strings are ignored.
func extractCypherBlocks(t *testing.T, doc string) []docBlock {
	t.Helper()
	var blocks []docBlock
	lines := strings.Split(doc, "\n")
	for i := 0; i < len(lines); i++ {
		info, ok := strings.CutPrefix(strings.TrimSpace(lines[i]), "```")
		if !ok || !strings.HasPrefix(info, "cypher") {
			continue
		}
		b := docBlock{line: i + 1, info: info, dialect: cypher.Revised}
		switch strings.TrimSpace(strings.TrimPrefix(info, "cypher")) {
		case "":
		case "cypher9":
			b.dialect = cypher.Cypher9
		case "norun":
			b.norun = true
		default:
			t.Fatalf("docs line %d: unknown cypher fence info %q", b.line, info)
		}
		var body []string
		for i++; i < len(lines); i++ {
			if strings.TrimSpace(lines[i]) == "```" {
				break
			}
			body = append(body, lines[i])
		}
		if i == len(lines) {
			t.Fatalf("docs line %d: unterminated fence", b.line)
		}
		b.source = strings.Join(body, "\n")
		blocks = append(blocks, b)
	}
	return blocks
}

// TestLanguageReferenceSnippets executes every runnable snippet of
// docs/language.md: each block runs top to bottom on a fresh database
// through one session (so BEGIN/COMMIT/ROLLBACK work as statements)
// and every statement must succeed. norun blocks are parsed and
// dialect-validated instead of executed. This is what keeps the
// language reference from rotting: a snippet that stops working fails
// the suite.
func TestLanguageReferenceSnippets(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("..", "..", "docs", "language.md"))
	if err != nil {
		t.Fatal(err)
	}
	blocks := extractCypherBlocks(t, string(raw))
	if len(blocks) < 15 {
		t.Fatalf("expected a substantial snippet corpus, found %d blocks", len(blocks))
	}
	sawTxn, sawIndex, sawCypher9, sawNorun := false, false, false, false
	for _, b := range blocks {
		db := cypher.Open(cypher.WithDialect(b.dialect))
		if b.norun {
			sawNorun = true
			for _, stmt := range Split(b.source) {
				if err := db.Parse(stmt); err != nil {
					t.Errorf("docs line %d: norun snippet does not parse: %v\n%s", b.line, err, stmt)
				}
			}
			continue
		}
		if b.dialect == cypher.Cypher9 {
			sawCypher9 = true
		}
		sess := db.Session()
		for _, stmt := range Split(b.source) {
			switch strings.ToUpper(strings.Fields(stmt)[0]) {
			case "BEGIN", "COMMIT", "ROLLBACK":
				sawTxn = true
			}
			if strings.Contains(strings.ToUpper(stmt), "INDEX ON") {
				sawIndex = true
			}
			if _, err := sess.Exec(stmt, nil); err != nil {
				t.Errorf("docs line %d: snippet statement failed: %v\n%s", b.line, err, stmt)
				break
			}
		}
		sess.Close()
	}
	// The reference must keep covering the statement families the issue
	// names: transactions, indexes, the legacy dialect, and LOAD CSV
	// (the norun block).
	if !sawTxn {
		t.Error("language reference has no runnable BEGIN/COMMIT/ROLLBACK snippet")
	}
	if !sawIndex {
		t.Error("language reference has no runnable CREATE/DROP INDEX snippet")
	}
	if !sawCypher9 {
		t.Error("language reference has no Cypher 9 dialect snippet")
	}
	if !sawNorun {
		t.Error("language reference has no syntax-checked (norun) snippet")
	}
}
