package script

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/plan"
)

// TestCorpusExecutorSweep replays every script in scripts/ under the
// batched streaming executor (the default), the row-at-a-time streaming
// baseline, the materializing interpreter, a budget=1 spill-forced
// batched run, and the morsel-parallel executor at degrees 2 and 8
// (plus a spill-forced parallel run). All must produce identical
// per-statement result tables and identical final graphs — the
// end-to-end equivalence sweep for the vectorized path, the spilling
// barriers, and the exchange operators. Parallelism is set explicitly
// because CI machines may report GOMAXPROCS=1, which would silently
// skip the parallel paths.
func TestCorpusExecutorSweep(t *testing.T) {
	manifest := map[string]core.Dialect{
		"paper_walkthrough.cypher": core.DialectCypher9,
		"social.cypher":            core.DialectRevised,
		"inventory.cypher":         core.DialectRevised,
		"expressions.cypher":       core.DialectRevised,
	}
	configs := []struct {
		name string
		cfg  func(d core.Dialect) core.Config
	}{
		{"batched", func(d core.Dialect) core.Config {
			return core.Config{Dialect: d, Executor: core.ExecStreaming}
		}},
		{"rows", func(d core.Dialect) core.Config {
			return core.Config{Dialect: d, Executor: core.ExecStreamingRows}
		}},
		{"materializing", func(d core.Dialect) core.Config {
			return core.Config{Dialect: d, Executor: core.ExecMaterializing}
		}},
		{"batched-budget1", func(d core.Dialect) core.Config {
			return core.Config{Dialect: d, Executor: core.ExecStreaming, MemoryBudget: 1}
		}},
		{"par2", func(d core.Dialect) core.Config {
			return core.Config{Dialect: d, Executor: core.ExecStreaming, Parallelism: 2}
		}},
		{"par8", func(d core.Dialect) core.Config {
			return core.Config{Dialect: d, Executor: core.ExecStreaming, Parallelism: 8}
		}},
		{"par8-budget1", func(d core.Dialect) core.Config {
			return core.Config{Dialect: d, Executor: core.ExecStreaming, Parallelism: 8, MemoryBudget: 1}
		}},
	}
	dir := filepath.Join("..", "..", "scripts")
	for name, dialect := range manifest {
		src, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			var baseTables []string
			var basePrint string
			for ci, c := range configs {
				g := graph.New()
				eng := core.NewEngine(c.cfg(dialect))
				results, err := Run(eng, g, string(src), nil)
				if err != nil {
					t.Fatalf("%s: %v", c.name, err)
				}
				var tables []string
				for _, r := range results {
					if r.Table != nil {
						tables = append(tables, r.Table.String())
					} else {
						tables = append(tables, "")
					}
				}
				print := graph.Fingerprint(g)
				if ci == 0 {
					baseTables, basePrint = tables, print
					continue
				}
				if len(tables) != len(baseTables) {
					t.Fatalf("%s: %d statements vs %d under %s", c.name, len(tables), len(baseTables), configs[0].name)
				}
				for i := range tables {
					if tables[i] != baseTables[i] {
						t.Errorf("%s: statement %d table divergence:\n%s\nvs %s:\n%s",
							c.name, i, tables[i], configs[0].name, baseTables[i])
					}
				}
				if print != basePrint {
					t.Errorf("%s: final graph diverges from %s", c.name, configs[0].name)
				}
			}
			if live := plan.SpillFilesLive(); live != 0 {
				t.Errorf("%d spill files still live after sweep", live)
			}
		})
	}
}
