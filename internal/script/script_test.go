package script

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/value"
)

func TestSplit(t *testing.T) {
	cases := []struct {
		src  string
		want []string
	}{
		{"A; B", []string{"A", "B"}},
		{"A", []string{"A"}},
		{"RETURN ';'; B", []string{"RETURN ';'", "B"}},
		{`RETURN "x;y"`, []string{`RETURN "x;y"`}},
		{"// c;omment\nA;", []string{"A"}},
		{"; ;", nil},
		{`RETURN 'esc\';q'; B`, []string{`RETURN 'esc\';q'`, "B"}},
	}
	for _, c := range cases {
		got := Split(c.src)
		if len(got) != len(c.want) {
			t.Errorf("Split(%q) = %v, want %v", c.src, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("Split(%q)[%d] = %q, want %q", c.src, i, got[i], c.want[i])
			}
		}
	}
}

func TestRun(t *testing.T) {
	eng := core.NewEngine(core.Config{Dialect: core.DialectRevised})
	g := graph.New()
	results, err := Run(eng, g, `
		CREATE (:N{v: $base});
		MATCH (n:N) RETURN n.v AS v;
	`, map[string]value.Value{"base": value.Int(7)})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	if results[0].Stats.NodesCreated != 1 {
		t.Error("stats missing")
	}
	if results[1].Table.Get(0, "v") != value.Int(7) {
		t.Errorf("v = %v", results[1].Table.Get(0, "v"))
	}
	// Errors carry the statement number.
	_, err = Run(eng, g, `RETURN 1 AS x; FROB;`, nil)
	if err == nil {
		t.Fatal("expected error")
	}
}

// Every script under scripts/ must run cleanly under its intended
// dialect — the script corpus doubles as an end-to-end test.
func TestScriptCorpus(t *testing.T) {
	manifest := map[string]core.Dialect{
		"paper_walkthrough.cypher": core.DialectCypher9,
		"social.cypher":            core.DialectRevised,
		"inventory.cypher":         core.DialectRevised,
		"expressions.cypher":       core.DialectRevised,
	}
	dir := filepath.Join("..", "..", "scripts")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	for _, e := range entries {
		dialect, ok := manifest[e.Name()]
		if !ok {
			t.Errorf("script %s missing from the test manifest", e.Name())
			continue
		}
		seen++
		src, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		eng := core.NewEngine(core.Config{Dialect: dialect})
		g := graph.New()
		results, err := Run(eng, g, string(src), nil)
		if err != nil {
			t.Errorf("%s: %v", e.Name(), err)
			continue
		}
		if len(results) < 3 {
			t.Errorf("%s: only %d statements, expected a real script", e.Name(), len(results))
		}
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", e.Name(), err)
		}
	}
	if seen != len(manifest) {
		t.Errorf("scripts present %d, manifest %d", seen, len(manifest))
	}
}

// The paper walkthrough script must leave the Figure 1 + Query (5) final
// state: 7 nodes (v2 added), 7 rels.
func TestPaperWalkthroughFinalState(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("..", "..", "scripts", "paper_walkthrough.cypher"))
	if err != nil {
		t.Fatal(err)
	}
	eng := core.NewEngine(core.Config{Dialect: core.DialectCypher9})
	g := graph.New()
	if _, err := Run(eng, g, string(src), nil); err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 7 || g.NumRels() != 7 {
		t.Errorf("final state: %s, want 7 nodes / 7 rels", graph.ComputeStats(g))
	}
	if len(g.NodeIDsByLabel("Vendor")) != 2 {
		t.Error("v2 not created by Query (5)")
	}
}
