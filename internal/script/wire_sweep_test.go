package script

import (
	"bytes"
	"context"
	"math"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/cypher"
	"repro/cypherclient"
	"repro/internal/server"
	"repro/internal/value"
)

// TestCorpusWireEquivalence replays every script in scripts/ twice —
// through an embedded cypher.Session and through a loopback cypherd
// server via the cypherclient wire protocol — in both dialects, and
// requires per-statement results to be bit-identical (columns, row
// values compared by exact bits, update stats) and the final graphs to
// serialize to identical snapshot bytes. This is the acceptance gate
// for the wire codec: everything the engine can produce must survive
// the protocol unchanged.
func TestCorpusWireEquivalence(t *testing.T) {
	manifest := map[string]cypher.Dialect{
		"paper_walkthrough.cypher": cypher.Cypher9,
		"social.cypher":            cypher.Revised,
		"inventory.cypher":         cypher.Revised,
		"expressions.cypher":       cypher.Revised,
	}
	dir := filepath.Join("..", "..", "scripts")
	for name, dialect := range manifest {
		src, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			embDB := cypher.Open(cypher.WithDialect(dialect))
			sess := embDB.Session()
			defer sess.Close()

			remDB := cypher.Open(cypher.WithDialect(dialect))
			srv := server.New(remDB, server.Options{})
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			done := make(chan error, 1)
			go func() { done <- srv.Serve(ln) }()
			defer func() {
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				defer cancel()
				if err := srv.Shutdown(ctx); err != nil {
					t.Errorf("shutdown: %v", err)
				}
				if err := <-done; err != nil {
					t.Errorf("serve: %v", err)
				}
			}()
			client, err := cypherclient.Dial(ln.Addr().String())
			if err != nil {
				t.Fatal(err)
			}
			defer client.Close()

			for i, stmt := range Split(string(src)) {
				embRes, embErr := sess.Exec(stmt, nil)
				remRes, remErr := client.Exec(stmt, nil)
				if (embErr == nil) != (remErr == nil) {
					t.Fatalf("statement %d (%q): embedded err %v, remote err %v", i+1, stmt, embErr, remErr)
				}
				if embErr != nil {
					continue
				}
				compareResults(t, i+1, stmt, embRes, remRes)
			}

			// The final graphs serialize to identical bytes (Save is
			// deterministic: sorted ids, sorted JSON keys).
			var embSnap, remSnap bytes.Buffer
			if err := embDB.Save(&embSnap); err != nil {
				t.Fatal(err)
			}
			if err := remDB.Save(&remSnap); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(embSnap.Bytes(), remSnap.Bytes()) {
				t.Errorf("final graph snapshots differ (%d vs %d bytes)", embSnap.Len(), remSnap.Len())
			}
		})
	}
}

// compareResults requires a remote result to be bit-identical to the
// embedded one.
func compareResults(t *testing.T, stmtNo int, stmt string, emb *cypher.Result, rem *cypherclient.Result) {
	t.Helper()
	embCols := emb.Columns()
	if len(embCols) != len(rem.Columns) {
		t.Fatalf("statement %d (%q): %d columns embedded vs %d remote", stmtNo, stmt, len(embCols), len(rem.Columns))
	}
	for i := range embCols {
		if embCols[i] != rem.Columns[i] {
			t.Fatalf("statement %d: column %d is %q embedded vs %q remote", stmtNo, i, embCols[i], rem.Columns[i])
		}
	}
	if emb.NumRows() != len(rem.Rows) {
		t.Fatalf("statement %d (%q): %d rows embedded vs %d remote", stmtNo, stmt, emb.NumRows(), len(rem.Rows))
	}
	for i := 0; i < emb.NumRows(); i++ {
		embRow := emb.Values(i)
		for j := range embRow {
			if !bitIdentical(embRow[j], rem.Rows[i][j]) {
				t.Fatalf("statement %d (%q): row %d col %d: embedded %s vs remote %s",
					stmtNo, stmt, i, j, embRow[j], rem.Rows[i][j])
			}
		}
	}
	es, rs := emb.Stats(), rem.Stats
	if es.NodesCreated != rs.NodesCreated || es.NodesDeleted != rs.NodesDeleted ||
		es.RelsCreated != rs.RelsCreated || es.RelsDeleted != rs.RelsDeleted ||
		es.PropsSet != rs.PropsSet || es.LabelsAdded != rs.LabelsAdded ||
		es.LabelsRemoved != rs.LabelsRemoved {
		t.Fatalf("statement %d (%q): stats %+v embedded vs %+v remote", stmtNo, stmt, es, rs)
	}
}

// bitIdentical compares two values exactly: floats by their bit
// pattern (so NaN equals NaN and -0.0 differs from 0.0 — stricter than
// Cypher equivalence, which is the point of a codec test), entities by
// id, containers recursively.
func bitIdentical(a, b value.Value) bool {
	if a.Kind() != b.Kind() {
		return false
	}
	switch x := a.(type) {
	case value.Null:
		return true
	case value.Bool:
		return x == b.(value.Bool)
	case value.Int:
		return x == b.(value.Int)
	case value.Float:
		fa, fb := float64(x), float64(b.(value.Float))
		if math.IsNaN(fa) || math.IsNaN(fb) {
			// The wire canonicalizes NaN payloads (floatSpecial "nan"),
			// as does the persistence codec; any-NaN equals any-NaN.
			return math.IsNaN(fa) && math.IsNaN(fb)
		}
		return math.Float64bits(fa) == math.Float64bits(fb)
	case value.String:
		return x == b.(value.String)
	case value.List:
		y := b.(value.List)
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if !bitIdentical(x[i], y[i]) {
				return false
			}
		}
		return true
	case value.Map:
		y := b.(value.Map)
		if len(x) != len(y) {
			return false
		}
		for k, v := range x {
			w, ok := y[k]
			if !ok || !bitIdentical(v, w) {
				return false
			}
		}
		return true
	case value.Node:
		return x.ID == b.(value.Node).ID
	case value.Rel:
		return x.ID == b.(value.Rel).ID
	case value.Path:
		y := b.(value.Path)
		if len(x.Nodes) != len(y.Nodes) || len(x.Rels) != len(y.Rels) {
			return false
		}
		for i := range x.Nodes {
			if x.Nodes[i] != y.Nodes[i] {
				return false
			}
		}
		for i := range x.Rels {
			if x.Rels[i] != y.Rels[i] {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// TestWireValueExtremes pushes the wire through the value system's
// hard cases — NaN, the infinities, -0.0, min/max int64, unicode,
// nested containers with nulls, entities and paths — and requires
// bit-identical round-trips.
func TestWireValueExtremes(t *testing.T) {
	db := cypher.Open()
	srv := server.New(db, server.Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		<-done
	}()
	client, err := cypherclient.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	sess := db.Session()
	defer sess.Close()

	if _, err := client.Exec(`CREATE (:E{id:1})-[:R{w:1.5}]->(:E{id:2})`, nil); err != nil {
		t.Fatal(err)
	}
	queries := []string{
		`RETURN 0.0/0.0 AS nan, 1.0/0.0 AS pinf, -1.0/0.0 AS ninf`,
		`RETURN -0.0 AS negzero, 9223372036854775807 AS maxint, -9223372036854775807 - 1 AS minint`,
		`RETURN 'héllo wörld 👋' AS s, [1, null, [2.5, 'x']] AS nested, {a: null, b: [true]} AS m`,
		`MATCH (a:E{id:1})-[r:R]->(b:E{id:2}) RETURN a, r, b`,
		`MATCH p = (a:E{id:1})-[:R]->(:E) RETURN p`,
	}
	for _, q := range queries {
		embRes, embErr := sess.Exec(q, nil)
		remRes, remErr := client.Exec(q, nil)
		if embErr != nil || remErr != nil {
			t.Fatalf("%s: embedded err %v, remote err %v", q, embErr, remErr)
		}
		compareResults(t, 0, q, embRes, remRes)
	}
	// Parameters round-trip the same extremes client -> server.
	params := map[string]any{
		"nan":  math.NaN(),
		"inf":  math.Inf(-1),
		"list": []any{int64(-9223372036854775808), "x", nil},
	}
	embRes, embErr := sess.Exec(`RETURN $nan AS a, $inf AS b, $list AS c`, params)
	remRes, remErr := client.Exec(`RETURN $nan AS a, $inf AS b, $list AS c`, params)
	if embErr != nil || remErr != nil {
		t.Fatalf("params: embedded err %v, remote err %v", embErr, remErr)
	}
	compareResults(t, 0, "params", embRes, remRes)
}
