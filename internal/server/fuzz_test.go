package server

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"testing"
)

// FuzzWireFrameDecode throws hostile bytes at the frame decoder:
// lying length prefixes, truncated frames, invalid JSON, valid JSON
// that is not a message. The decoder must never panic and never
// allocate the declared length before checking it; any outcome other
// than a clean (*Message, nil) must be a clean error.
func FuzzWireFrameDecode(f *testing.F) {
	frame := func(body string) []byte {
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
		return append(hdr[:], body...)
	}
	f.Add(frame(`{"type":"hello"}`), 1024)
	f.Add(frame(`{"type":"run","query":"RETURN 1","params":{"x":{"int":7}}}`), 1<<20)
	f.Add(frame(`{}`), 1024)
	f.Add(frame(`{"type":"pull","n":-3}`), 1024)
	f.Add(frame(`not json at all`), 1024)
	f.Add([]byte{0xff, 0xff, 0xff, 0xff}, 1024)       // length 4 GiB, no body
	f.Add([]byte{0x00, 0x00, 0x00, 0x00}, 1024)       // length 0
	f.Add([]byte{0x00, 0x00, 0x00, 0x10, 0x7b}, 1024) // truncated body
	f.Add([]byte{0x00, 0x00}, 1024)                   // truncated header
	f.Add(frame(`{"type":"run","mode":"explain"}`)[:7], 64)
	f.Fuzz(func(t *testing.T, data []byte, maxFrame int) {
		r := bytes.NewReader(data)
		msg, err := ReadFrame(r, maxFrame)
		if err != nil {
			if msg != nil {
				t.Fatal("non-nil message alongside error")
			}
			return
		}
		if msg.Type == "" {
			t.Fatal("decoded message with empty type")
		}
		// A decoded frame must re-encode and decode back to the same
		// message (the codec is canonical for its own output).
		var buf bytes.Buffer
		if err := WriteFrame(&buf, msg); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		again, err := ReadFrame(&buf, DefaultMaxFrame)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if again.Type != msg.Type || again.Query != msg.Query || again.N != msg.N || again.Code != msg.Code {
			t.Fatalf("round-trip mismatch: %+v vs %+v", msg, again)
		}
	})
}

// FuzzWireValueRoundTrip checks DecodeValue tolerates arbitrary tag
// combinations and, when it accepts one, the value re-encodes and
// decodes to the same runtime value.
func FuzzWireValueRoundTrip(f *testing.F) {
	f.Add(`{"int":7}`)
	f.Add(`{"floatSpecial":"nan"}`)
	f.Add(`{"isList":true,"list":[{"null":true},{"string":"x"}]}`)
	f.Add(`{"node":3}`)
	f.Add(`{"path":{"nodes":[1,2],"rels":[9]}}`)
	f.Add(`{"path":{"nodes":[1],"rels":[9]}}`)
	f.Add(`{"bool":true,"int":1}`)
	f.Fuzz(func(t *testing.T, body string) {
		var wv WireValue
		if err := jsonUnmarshalStrictish([]byte(body), &wv); err != nil {
			return
		}
		v, err := DecodeValue(wv)
		if err != nil {
			return
		}
		wv2, err := EncodeValue(v)
		if err != nil {
			t.Fatalf("re-encode of accepted value %v: %v", v, err)
		}
		v2, err := DecodeValue(wv2)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if v.Kind() != v2.Kind() || v.String() != v2.String() {
			t.Fatalf("round-trip mismatch: %v vs %v", v, v2)
		}
	})
}

func jsonUnmarshalStrictish(data []byte, v any) error {
	return json.Unmarshal(data, v)
}
