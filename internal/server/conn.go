package server

import (
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"repro/cypher"
)

// conn is one accepted connection: a wire-protocol state machine
// wrapped around one cypher.Session. All frame writes happen on the
// serve goroutine; statements execute on a helper goroutine so the
// serve loop can enforce the statement timeout.
type conn struct {
	srv  *Server
	id   int64
	nc   net.Conn
	sess *cypher.Session

	helloed   bool
	writeSlot bool // holds a writer-admission slot across an explicit txn
	pending   *pendingResult
}

// pendingResult buffers a run's rows between RUN and PULL.
type pendingResult struct {
	cols []string
	rows [][]cypher.Value
	next int
}

// serve runs the connection until it closes or errors.
func (c *conn) serve() {
	defer c.cleanup()
	for {
		if c.srv.isDraining() {
			return
		}
		if t := c.srv.opts.IdleTimeout; t > 0 {
			c.nc.SetReadDeadline(time.Now().Add(t))
		}
		msg, err := ReadFrame(c.nc, c.srv.opts.MaxFrame)
		if err != nil {
			switch {
			case errors.Is(err, io.EOF):
				// Client went away cleanly.
			case errors.Is(err, ErrFrameTooLarge):
				c.send(failure(CodeFrameTooLarge, err.Error()))
			case isTimeout(err):
				// Idle timeout or drain kick: close silently.
			default:
				c.send(failure(CodeProtocolError, err.Error()))
			}
			return
		}
		if !c.dispatch(msg) {
			return
		}
	}
}

// dispatch handles one message; false means close the connection.
func (c *conn) dispatch(msg *Message) bool {
	if !c.helloed && msg.Type != MsgHello {
		c.send(failure(CodeProtocolError, fmt.Sprintf("%s before hello", msg.Type)))
		return false
	}
	switch msg.Type {
	case MsgHello:
		if c.helloed {
			c.send(failure(CodeProtocolError, "duplicate hello"))
			return false
		}
		c.helloed = true
		return c.send(&Message{Type: MsgSuccess, Server: ServerName, Dialect: c.srv.db.Dialect().String()})
	case MsgRun:
		return c.handleRun(msg)
	case MsgPull:
		return c.handlePull(msg)
	case MsgBegin:
		return c.handleBegin()
	case MsgCommit:
		return c.handleCommit()
	case MsgRollback:
		return c.handleRollback()
	case MsgReset:
		return c.handleReset()
	case MsgGoodbye:
		return false
	default:
		c.send(failure(CodeProtocolError, fmt.Sprintf("unknown message type %q", msg.Type)))
		return false
	}
}

// handleRun classifies, schedules and executes one statement.
func (c *conn) handleRun(msg *Message) bool {
	if c.srv.isDraining() {
		return c.send(failure(CodeServerDraining, "server is shutting down"))
	}
	info, err := c.srv.db.ClassifyStatement(msg.Query)
	if err != nil {
		return c.send(failure(CodeSyntaxError, err.Error()))
	}
	switch info.TxnControl {
	case "BEGIN":
		return c.handleBegin()
	case "COMMIT":
		return c.handleCommit()
	case "ROLLBACK":
		return c.handleRollback()
	}
	params, err := decodeParams(msg.Params)
	if err != nil {
		return c.send(failure(CodeInvalidParameter, err.Error()))
	}
	c.pending = nil

	// Backpressure: an updating auto-commit statement claims a
	// writer-admission slot for its duration. Inside an explicit
	// transaction the slot acquired at BEGIN already covers it.
	needSlot := info.Updating && !c.writeSlot && msg.Mode != "explain"
	if needSlot && !c.srv.acquireWriteSlot() {
		return c.send(failure(CodeServerBusy, "write queue full"))
	}

	type outcome struct {
		res  *cypher.Result
		plan string
		err  error
	}
	done := make(chan outcome, 1)
	go func() {
		var o outcome
		switch msg.Mode {
		case "explain":
			o.plan, o.err = c.sess.Explain(msg.Query)
		case "profile":
			o.res, o.plan, o.err = c.sess.Profile(msg.Query, params)
		default:
			o.res, o.err = c.sess.Exec(msg.Query, params)
		}
		done <- o
	}()

	var o outcome
	timedOut := false
	if t := c.srv.opts.StatementTimeout; t > 0 {
		timer := time.NewTimer(t)
		select {
		case o = <-done:
			timer.Stop()
		case <-timer.C:
			timedOut = true
			c.send(failure(CodeStatementTimeout, fmt.Sprintf("statement exceeded %v", t)))
			// The engine cannot abandon a running statement; wait it out
			// so the session is quiescent before teardown, then close.
			o = <-done
		}
	} else {
		o = <-done
	}
	if needSlot {
		c.srv.releaseWriteSlot()
	}
	if timedOut {
		return false
	}
	if o.err != nil {
		return c.send(failure(CodeExecutionError, o.err.Error()))
	}
	reply := &Message{Type: MsgSuccess, Plan: o.plan}
	if o.res != nil {
		reply.Columns = o.res.Columns()
		reply.Stats = statsToWire(o.res.Stats())
		pr := &pendingResult{cols: reply.Columns}
		for i := 0; i < o.res.NumRows(); i++ {
			pr.rows = append(pr.rows, o.res.Values(i))
		}
		c.pending = pr
	}
	return c.send(reply)
}

// handlePull pages buffered rows to the client.
func (c *conn) handlePull(msg *Message) bool {
	if c.pending == nil {
		return c.send(failure(CodeNoPendingResult, "no statement result to pull"))
	}
	pr := c.pending
	remaining := len(pr.rows) - pr.next
	n := msg.N
	if n <= 0 || n > remaining {
		n = remaining
	}
	out := make([][]WireValue, 0, n)
	for _, row := range pr.rows[pr.next : pr.next+n] {
		wrow := make([]WireValue, len(row))
		for j, v := range row {
			wv, err := EncodeValue(v)
			if err != nil {
				c.send(failure(CodeExecutionError, err.Error()))
				return false
			}
			wrow[j] = wv
		}
		out = append(out, wrow)
	}
	pr.next += n
	more := pr.next < len(pr.rows)
	if !more {
		c.pending = nil
	}
	return c.send(&Message{Type: MsgSuccess, Rows: out, More: more})
}

// handleBegin opens an explicit transaction, claiming a writer slot.
func (c *conn) handleBegin() bool {
	if c.srv.isDraining() {
		return c.send(failure(CodeServerDraining, "server is shutting down"))
	}
	if c.sess.InTransaction() {
		return c.send(failure(CodeTransactionState, "transaction already open"))
	}
	if !c.writeSlot && !c.srv.acquireWriteSlot() {
		return c.send(failure(CodeServerBusy, "write queue full"))
	}
	c.writeSlot = true
	if err := c.sess.Begin(); err != nil {
		c.dropWriteSlot()
		return c.send(failure(CodeTransactionState, err.Error()))
	}
	return c.send(&Message{Type: MsgSuccess})
}

// handleCommit publishes the open transaction and frees the slot.
func (c *conn) handleCommit() bool {
	stats, err := c.sess.Commit()
	c.dropWriteSlot()
	if err != nil {
		return c.send(failure(CodeTransactionState, err.Error()))
	}
	return c.send(&Message{Type: MsgSuccess, Stats: statsToWire(stats)})
}

// handleRollback discards the open transaction and frees the slot.
func (c *conn) handleRollback() bool {
	err := c.sess.Rollback()
	c.dropWriteSlot()
	if err != nil {
		return c.send(failure(CodeTransactionState, err.Error()))
	}
	return c.send(&Message{Type: MsgSuccess})
}

// handleReset returns the connection to a clean ready state: pending
// rows are discarded and any open transaction rolls back.
func (c *conn) handleReset() bool {
	c.pending = nil
	if c.sess.InTransaction() {
		c.sess.Rollback()
	}
	c.dropWriteSlot()
	return c.send(&Message{Type: MsgSuccess})
}

// dropWriteSlot releases the explicit-transaction writer slot, if held.
func (c *conn) dropWriteSlot() {
	if c.writeSlot {
		c.writeSlot = false
		c.srv.releaseWriteSlot()
	}
}

// cleanup rolls back any open transaction, frees the writer slot and
// unregisters the connection.
func (c *conn) cleanup() {
	c.sess.Close()
	c.dropWriteSlot()
	c.srv.remove(c)
	c.nc.Close()
}

// send writes one frame; false means the connection is broken.
func (c *conn) send(msg *Message) bool {
	return WriteFrame(c.nc, msg) == nil
}

// failure builds a failure message.
func failure(code, text string) *Message {
	return &Message{Type: MsgFailure, Code: code, Error: text}
}

// isTimeout reports whether err is a network timeout.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// decodeParams converts wire parameters for cypher.Session.Exec.
func decodeParams(in map[string]WireValue) (map[string]any, error) {
	if len(in) == 0 {
		return nil, nil
	}
	out := make(map[string]any, len(in))
	for k, wv := range in {
		v, err := DecodeValue(wv)
		if err != nil {
			return nil, fmt.Errorf("parameter $%s: %w", k, err)
		}
		out[k] = v
	}
	return out, nil
}

// statsToWire converts update statistics for the wire.
func statsToWire(s cypher.UpdateStats) *WireStats {
	return &WireStats{
		NodesCreated:  s.NodesCreated,
		NodesDeleted:  s.NodesDeleted,
		RelsCreated:   s.RelsCreated,
		RelsDeleted:   s.RelsDeleted,
		PropsSet:      s.PropsSet,
		LabelsAdded:   s.LabelsAdded,
		LabelsRemoved: s.LabelsRemoved,
	}
}
