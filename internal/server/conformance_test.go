package server

import (
	"context"
	"encoding/binary"
	"net"
	"testing"
	"time"

	"repro/cypher"
)

// startServer runs a loopback server for db and returns its address.
// The server is drained when the test ends.
func startServer(t *testing.T, db *cypher.DB, opts Options) (*Server, string) {
	t.Helper()
	srv := New(db, opts)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return srv, ln.Addr().String()
}

// wireConn is a raw test client speaking frames directly.
type wireConn struct {
	t  *testing.T
	nc net.Conn
}

func dialWire(t *testing.T, addr string) *wireConn {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	nc.SetDeadline(time.Now().Add(30 * time.Second))
	return &wireConn{t: t, nc: nc}
}

func (w *wireConn) send(msg *Message) {
	w.t.Helper()
	if err := WriteFrame(w.nc, msg); err != nil {
		w.t.Fatalf("write frame: %v", err)
	}
}

func (w *wireConn) recv() *Message {
	w.t.Helper()
	msg, err := ReadFrame(w.nc, DefaultMaxFrame)
	if err != nil {
		w.t.Fatalf("read frame: %v", err)
	}
	return msg
}

// expectClosed asserts the server closed the connection.
func (w *wireConn) expectClosed() {
	w.t.Helper()
	if _, err := ReadFrame(w.nc, DefaultMaxFrame); err == nil {
		w.t.Fatal("connection still open; want server-side close")
	}
}

func (w *wireConn) hello() {
	w.t.Helper()
	w.send(&Message{Type: MsgHello})
	if got := w.recv(); got.Type != MsgSuccess {
		w.t.Fatalf("hello reply = %+v", got)
	}
}

// step is one exchange of a conformance script.
type step struct {
	send     *Message
	wantType string
	wantCode string // for failure replies
	check    func(t *testing.T, got *Message)
}

// TestConformanceScripts drives table-driven wire scripts against a
// fresh server each and checks every reply's type (and failure code).
func TestConformanceScripts(t *testing.T) {
	hello := step{send: &Message{Type: MsgHello}, wantType: MsgSuccess,
		check: func(t *testing.T, got *Message) {
			if got.Server != ServerName || got.Dialect != "revised" {
				t.Errorf("hello reply = server %q dialect %q", got.Server, got.Dialect)
			}
		}}
	cases := []struct {
		name       string
		steps      []step
		wantClosed bool // server closes the connection after the last reply
	}{
		{
			name:       "run-before-hello",
			steps:      []step{{send: &Message{Type: MsgRun, Query: "RETURN 1"}, wantType: MsgFailure, wantCode: CodeProtocolError}},
			wantClosed: true,
		},
		{
			name:       "duplicate-hello",
			steps:      []step{hello, {send: &Message{Type: MsgHello}, wantType: MsgFailure, wantCode: CodeProtocolError}},
			wantClosed: true,
		},
		{
			name:       "unknown-message-type",
			steps:      []step{hello, {send: &Message{Type: "discard"}, wantType: MsgFailure, wantCode: CodeProtocolError}},
			wantClosed: true,
		},
		{
			name: "syntax-error-not-fatal",
			steps: []step{
				hello,
				{send: &Message{Type: MsgRun, Query: "MATCH ("}, wantType: MsgFailure, wantCode: CodeSyntaxError},
				{send: &Message{Type: MsgRun, Query: "RETURN 1 AS x"}, wantType: MsgSuccess,
					check: func(t *testing.T, got *Message) {
						if len(got.Columns) != 1 || got.Columns[0] != "x" {
							t.Errorf("columns = %v", got.Columns)
						}
					}},
				{send: &Message{Type: MsgPull}, wantType: MsgSuccess,
					check: func(t *testing.T, got *Message) {
						if len(got.Rows) != 1 || got.Rows[0][0].Int == nil || *got.Rows[0][0].Int != 1 {
							t.Errorf("rows = %+v", got.Rows)
						}
						if got.More {
							t.Error("more = true after final pull")
						}
					}},
			},
		},
		{
			name: "pull-without-run",
			steps: []step{
				hello,
				{send: &Message{Type: MsgPull}, wantType: MsgFailure, wantCode: CodeNoPendingResult},
			},
		},
		{
			name: "pull-paging",
			steps: []step{
				hello,
				{send: &Message{Type: MsgRun, Query: "UNWIND range(1,5) AS x RETURN x"}, wantType: MsgSuccess},
				{send: &Message{Type: MsgPull, N: 2}, wantType: MsgSuccess,
					check: func(t *testing.T, got *Message) {
						if len(got.Rows) != 2 || !got.More {
							t.Errorf("rows=%d more=%v", len(got.Rows), got.More)
						}
					}},
				{send: &Message{Type: MsgPull, N: 2}, wantType: MsgSuccess,
					check: func(t *testing.T, got *Message) {
						if len(got.Rows) != 2 || !got.More {
							t.Errorf("rows=%d more=%v", len(got.Rows), got.More)
						}
					}},
				{send: &Message{Type: MsgPull}, wantType: MsgSuccess,
					check: func(t *testing.T, got *Message) {
						if len(got.Rows) != 1 || got.More {
							t.Errorf("rows=%d more=%v", len(got.Rows), got.More)
						}
					}},
				{send: &Message{Type: MsgPull}, wantType: MsgFailure, wantCode: CodeNoPendingResult},
			},
		},
		{
			name: "reset-mid-transaction",
			steps: []step{
				hello,
				{send: &Message{Type: MsgBegin}, wantType: MsgSuccess},
				{send: &Message{Type: MsgRun, Query: "CREATE (:Tmp)"}, wantType: MsgSuccess},
				{send: &Message{Type: MsgReset}, wantType: MsgSuccess},
				// The transaction rolled back: COMMIT has nothing to commit...
				{send: &Message{Type: MsgCommit}, wantType: MsgFailure, wantCode: CodeTransactionState},
				// ...and the create is gone.
				{send: &Message{Type: MsgRun, Query: "MATCH (n:Tmp) RETURN count(n) AS c"}, wantType: MsgSuccess},
				{send: &Message{Type: MsgPull}, wantType: MsgSuccess,
					check: func(t *testing.T, got *Message) {
						if got.Rows[0][0].Int == nil || *got.Rows[0][0].Int != 0 {
							t.Errorf("count after reset = %+v", got.Rows[0][0])
						}
					}},
			},
		},
		{
			name: "txn-control-as-run-text",
			steps: []step{
				hello,
				{send: &Message{Type: MsgRun, Query: "BEGIN"}, wantType: MsgSuccess},
				{send: &Message{Type: MsgRun, Query: "CREATE (:T2)"}, wantType: MsgSuccess,
					check: func(t *testing.T, got *Message) {
						if got.Stats == nil || got.Stats.NodesCreated != 1 {
							t.Errorf("stats = %+v", got.Stats)
						}
					}},
				{send: &Message{Type: MsgRun, Query: "ROLLBACK"}, wantType: MsgSuccess},
				{send: &Message{Type: MsgCommit}, wantType: MsgFailure, wantCode: CodeTransactionState},
			},
		},
		{
			name: "commit-without-begin",
			steps: []step{
				hello,
				{send: &Message{Type: MsgCommit}, wantType: MsgFailure, wantCode: CodeTransactionState},
				{send: &Message{Type: MsgRollback}, wantType: MsgFailure, wantCode: CodeTransactionState},
				{send: &Message{Type: MsgBegin}, wantType: MsgSuccess},
				{send: &Message{Type: MsgBegin}, wantType: MsgFailure, wantCode: CodeTransactionState},
				{send: &Message{Type: MsgCommit}, wantType: MsgSuccess},
			},
		},
		{
			name: "execution-error-not-fatal",
			steps: []step{
				hello,
				{send: &Message{Type: MsgRun, Query: "RETURN 1/0 AS x"}, wantType: MsgFailure, wantCode: CodeExecutionError},
				{send: &Message{Type: MsgRun, Query: "RETURN 2 AS x"}, wantType: MsgSuccess},
			},
		},
		{
			name: "explain-mode",
			steps: []step{
				hello,
				{send: &Message{Type: MsgRun, Query: "MATCH (n) RETURN n", Mode: "explain"}, wantType: MsgSuccess,
					check: func(t *testing.T, got *Message) {
						if got.Plan == "" {
							t.Error("explain returned empty plan")
						}
						if len(got.Columns) != 0 {
							t.Errorf("explain returned columns %v", got.Columns)
						}
					}},
				// Explain buffers no result.
				{send: &Message{Type: MsgPull}, wantType: MsgFailure, wantCode: CodeNoPendingResult},
			},
		},
		{
			name: "profile-mode",
			steps: []step{
				hello,
				{send: &Message{Type: MsgRun, Query: "UNWIND [1,2] AS x RETURN x", Mode: "profile"}, wantType: MsgSuccess,
					check: func(t *testing.T, got *Message) {
						if got.Plan == "" {
							t.Error("profile returned empty plan")
						}
					}},
				{send: &Message{Type: MsgPull}, wantType: MsgSuccess,
					check: func(t *testing.T, got *Message) {
						if len(got.Rows) != 2 {
							t.Errorf("profile rows = %d", len(got.Rows))
						}
					}},
			},
		},
		{
			name: "params-round-trip",
			steps: []step{
				hello,
				{send: &Message{Type: MsgRun, Query: "RETURN $x AS x, $s AS s",
					Params: map[string]WireValue{
						"x": mustEncode(t, listOf(intWire(7), floatSpecialWire("nan"))),
						"s": strWire("héllo"),
					}}, wantType: MsgSuccess},
				{send: &Message{Type: MsgPull}, wantType: MsgSuccess,
					check: func(t *testing.T, got *Message) {
						row := got.Rows[0]
						if !row[0].IsList || len(row[0].List) != 2 {
							t.Fatalf("x = %+v", row[0])
						}
						if row[0].List[0].Int == nil || *row[0].List[0].Int != 7 {
							t.Errorf("x[0] = %+v", row[0].List[0])
						}
						if row[0].List[1].FloatS != "nan" {
							t.Errorf("x[1] = %+v", row[0].List[1])
						}
						if row[1].Str == nil || *row[1].Str != "héllo" {
							t.Errorf("s = %+v", row[1])
						}
					}},
			},
		},
		{
			name: "bad-parameter",
			steps: []step{
				hello,
				{send: &Message{Type: MsgRun, Query: "RETURN $x",
					Params: map[string]WireValue{"x": {FloatS: "bogus"}}}, wantType: MsgFailure, wantCode: CodeInvalidParameter},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			db := cypher.Open()
			_, addr := startServer(t, db, Options{})
			w := dialWire(t, addr)
			for i, st := range tc.steps {
				w.send(st.send)
				got := w.recv()
				if got.Type != st.wantType {
					t.Fatalf("step %d (%s): reply type %q (code=%q msg=%q), want %q",
						i, st.send.Type, got.Type, got.Code, got.Error, st.wantType)
				}
				if st.wantCode != "" && got.Code != st.wantCode {
					t.Fatalf("step %d (%s): failure code %q (%s), want %q", i, st.send.Type, got.Code, got.Error, st.wantCode)
				}
				if st.check != nil {
					st.check(t, got)
				}
			}
			if tc.wantClosed {
				w.expectClosed()
			}
		})
	}
}

// TestConformanceGoodbye checks GOODBYE closes without a reply.
func TestConformanceGoodbye(t *testing.T) {
	db := cypher.Open()
	_, addr := startServer(t, db, Options{})
	w := dialWire(t, addr)
	w.hello()
	w.send(&Message{Type: MsgGoodbye})
	w.expectClosed()
}

// TestConformanceOversizedFrame checks the server rejects a frame
// whose declared length exceeds its maximum, with a failure frame
// before closing.
func TestConformanceOversizedFrame(t *testing.T) {
	db := cypher.Open()
	_, addr := startServer(t, db, Options{MaxFrame: 1024})
	w := dialWire(t, addr)
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 10<<20)
	if _, err := w.nc.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	got := w.recv()
	if got.Type != MsgFailure || got.Code != CodeFrameTooLarge {
		t.Fatalf("reply = %+v, want FrameTooLarge failure", got)
	}
	w.expectClosed()
}

// TestConformanceMalformedFrame checks invalid JSON bodies produce a
// ProtocolError failure and a close.
func TestConformanceMalformedFrame(t *testing.T) {
	db := cypher.Open()
	_, addr := startServer(t, db, Options{})
	w := dialWire(t, addr)
	body := []byte("{not json")
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.nc.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	if _, err := w.nc.Write(body); err != nil {
		t.Fatal(err)
	}
	got := w.recv()
	if got.Type != MsgFailure || got.Code != CodeProtocolError {
		t.Fatalf("reply = %+v, want ProtocolError failure", got)
	}
	w.expectClosed()
}

// TestConformanceDrainRefusesRun checks that a draining server refuses
// new statements with ServerDraining.
func TestConformanceDrainRefusesRun(t *testing.T) {
	db := cypher.Open()
	srv := New(db, Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	w := dialWire(t, ln.Addr().String())
	w.hello()

	// Shutdown in the background; the open connection keeps it waiting.
	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()
	// Wait until the server reports draining.
	for !srv.Stats().Draining {
		time.Sleep(time.Millisecond)
	}
	// The drain kick closes parked connections; either our RUN gets a
	// ServerDraining failure (it raced in before the close) or the
	// connection is already gone — both are clean drain outcomes.
	if err := WriteFrame(w.nc, &Message{Type: MsgRun, Query: "CREATE (:N)"}); err == nil {
		if reply, err := ReadFrame(w.nc, DefaultMaxFrame); err == nil {
			if reply.Type != MsgFailure || reply.Code != CodeServerDraining {
				t.Fatalf("reply = %+v, want ServerDraining failure", reply)
			}
		}
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("serve: %v", err)
	}
	// Nothing committed during drain.
	if n := db.NumNodes(); n != 0 {
		t.Fatalf("%d nodes committed during drain", n)
	}
}

// TestConformanceIdleTimeout checks idle connections are closed.
func TestConformanceIdleTimeout(t *testing.T) {
	db := cypher.Open()
	_, addr := startServer(t, db, Options{IdleTimeout: 50 * time.Millisecond})
	w := dialWire(t, addr)
	w.hello()
	deadline := time.Now().Add(10 * time.Second)
	w.nc.SetReadDeadline(deadline)
	if _, err := ReadFrame(w.nc, DefaultMaxFrame); err == nil || !time.Now().Before(deadline) {
		t.Fatal("idle connection was not closed by the server")
	}
}

// TestConformanceStatementTimeout checks a long statement gets a
// StatementTimeout failure and the connection is torn down.
func TestConformanceStatementTimeout(t *testing.T) {
	db := cypher.Open()
	_, addr := startServer(t, db, Options{StatementTimeout: 30 * time.Millisecond})
	w := dialWire(t, addr)
	w.hello()
	w.send(&Message{Type: MsgRun, Query: "UNWIND range(1,4000000) AS x WITH x WHERE x % 7 = 0 RETURN count(x) AS c"})
	got := w.recv()
	if got.Type != MsgFailure || got.Code != CodeStatementTimeout {
		t.Fatalf("reply = %+v, want StatementTimeout failure", got)
	}
	w.expectClosed()
}

// TestConformanceServerBusy checks writer-admission backpressure: with
// a queue bound of 1, a second concurrent writer is refused.
func TestConformanceServerBusy(t *testing.T) {
	db := cypher.Open()
	_, addr := startServer(t, db, Options{MaxWriteQueue: 1})
	w1 := dialWire(t, addr)
	w1.hello()
	w2 := dialWire(t, addr)
	w2.hello()

	// w1 claims the only slot with an explicit transaction.
	w1.send(&Message{Type: MsgBegin})
	if got := w1.recv(); got.Type != MsgSuccess {
		t.Fatalf("begin: %+v", got)
	}
	// w2's write (and BEGIN) bounce with ServerBusy.
	w2.send(&Message{Type: MsgRun, Query: "CREATE (:B)"})
	if got := w2.recv(); got.Type != MsgFailure || got.Code != CodeServerBusy {
		t.Fatalf("busy write reply = %+v", got)
	}
	w2.send(&Message{Type: MsgBegin})
	if got := w2.recv(); got.Type != MsgFailure || got.Code != CodeServerBusy {
		t.Fatalf("busy begin reply = %+v", got)
	}
	// Reads stay admissible under write backpressure.
	w2.send(&Message{Type: MsgRun, Query: "RETURN 1 AS x"})
	if got := w2.recv(); got.Type != MsgSuccess {
		t.Fatalf("read under backpressure: %+v", got)
	}
	// Releasing the slot readmits writers.
	w1.send(&Message{Type: MsgRollback})
	if got := w1.recv(); got.Type != MsgSuccess {
		t.Fatalf("rollback: %+v", got)
	}
	w2.send(&Message{Type: MsgRun, Query: "CREATE (:B)"})
	if got := w2.recv(); got.Type != MsgSuccess {
		t.Fatalf("write after release: %+v", got)
	}
}

// Helpers building WireValues for test tables.

func intWire(i int64) WireValue           { return WireValue{Int: &i} }
func strWire(s string) WireValue          { return WireValue{Str: &s} }
func floatSpecialWire(s string) WireValue { return WireValue{FloatS: s} }
func listOf(els ...WireValue) WireValue   { return WireValue{IsList: true, List: els} }
func mustEncode(t *testing.T, w WireValue) WireValue {
	t.Helper()
	// Round-trip through the codec to catch asymmetries early.
	v, err := DecodeValue(w)
	if err != nil {
		t.Fatal(err)
	}
	out, err := EncodeValue(v)
	if err != nil {
		t.Fatal(err)
	}
	return out
}
