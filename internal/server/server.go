package server

import (
	"context"
	"errors"
	"net"
	"sync"
	"time"

	"repro/cypher"
)

// ServerName identifies this implementation in hello replies.
const ServerName = "cypherd/1"

// Options configures a Server. The zero value is usable: default
// frame limit, no idle timeout, no statement timeout, a writer
// admission queue of DefaultMaxWriteQueue.
type Options struct {
	// MaxFrame bounds the accepted frame body size in bytes
	// (default DefaultMaxFrame).
	MaxFrame int
	// IdleTimeout closes a connection that sends no frame for this
	// long. Zero means no idle timeout.
	IdleTimeout time.Duration
	// StatementTimeout bounds one statement's execution. A statement
	// exceeding it gets a StatementTimeout failure and the connection is
	// torn down once the statement completes server-side (the engine
	// cannot abandon a running statement). Zero means no timeout.
	StatementTimeout time.Duration
	// MaxWriteQueue bounds how many connections may simultaneously hold
	// or wait for the single-writer baton (backpressure): an updating
	// statement or BEGIN arriving beyond the bound is refused with
	// ServerBusy instead of queueing without limit. Zero means
	// DefaultMaxWriteQueue; negative means unbounded.
	MaxWriteQueue int
}

// DefaultMaxWriteQueue is the default writer admission bound.
const DefaultMaxWriteQueue = 64

// Server serves the wire protocol over a listener, one cypher.Session
// per accepted connection.
type Server struct {
	db   *cypher.DB
	opts Options

	writeSem chan struct{} // nil = unbounded

	mu       sync.Mutex
	ln       net.Listener
	conns    map[*conn]struct{}
	draining bool
	nextID   int64

	wg sync.WaitGroup // accept loop + one per connection
}

// Stats is a point-in-time summary of a server's state.
type Stats struct {
	// Connections is the number of live connections.
	Connections int
	// Draining reports whether a graceful shutdown is in progress.
	Draining bool
}

// New creates a server for db. Call Serve to start it.
func New(db *cypher.DB, opts Options) *Server {
	if opts.MaxFrame <= 0 {
		opts.MaxFrame = DefaultMaxFrame
	}
	if opts.MaxWriteQueue == 0 {
		opts.MaxWriteQueue = DefaultMaxWriteQueue
	}
	s := &Server{db: db, opts: opts, conns: make(map[*conn]struct{})}
	if opts.MaxWriteQueue > 0 {
		s.writeSem = make(chan struct{}, opts.MaxWriteQueue)
	}
	return s
}

// Serve accepts connections on ln until Shutdown (or a fatal listener
// error) and blocks while doing so. The listener is closed on return.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		ln.Close()
		return errors.New("server: already shut down")
	}
	s.ln = ln
	s.mu.Unlock()
	defer ln.Close()
	for {
		nc, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			nc.Close()
			continue
		}
		s.nextID++
		c := &conn{srv: s, id: s.nextID, nc: nc, sess: s.db.Session()}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			c.serve()
		}()
	}
}

// Addr returns the listener address (nil before Serve).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Stats returns the server's current counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{Connections: len(s.conns), Draining: s.draining}
}

// Shutdown drains the server gracefully: it stops accepting, lets
// in-flight statements finish (new RUNs are refused with
// ServerDraining), rolls back transactions left open, and closes every
// connection. It blocks until all connection goroutines exit or ctx
// expires; on expiry remaining connections are closed forcibly and
// ctx.Err() is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	if s.ln != nil {
		s.ln.Close()
	}
	// Kick connections parked in a blocking read: an immediate read
	// deadline unblocks them; connections mid-statement hit the expired
	// deadline only after finishing (and replying to) the statement.
	for c := range s.conns {
		c.nc.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for c := range s.conns {
			c.nc.Close()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// draining reports whether a graceful shutdown is in progress.
func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// acquireWriteSlot claims a writer-admission slot, reporting false
// when the bounded queue is full (ServerBusy).
func (s *Server) acquireWriteSlot() bool {
	if s.writeSem == nil {
		return true
	}
	select {
	case s.writeSem <- struct{}{}:
		return true
	default:
		return false
	}
}

// releaseWriteSlot returns a writer-admission slot.
func (s *Server) releaseWriteSlot() {
	if s.writeSem == nil {
		return
	}
	<-s.writeSem
}

// remove unregisters a finished connection.
func (s *Server) remove(c *conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}
