// Package server implements cypherd's network layer: a TCP server
// speaking a length-prefixed JSON wire protocol where each connection
// maps onto one cypher.Session. The protocol is deliberately small —
// eight client message types, two server message types — and carries
// the full value system (including NaN/±Inf floats and node/rel/path
// entities) with explicit type tags, so remote results are
// bit-identical to embedded execution.
//
// # Framing
//
// Every message is one frame: a 4-byte big-endian unsigned length N
// followed by N bytes of JSON encoding a single message object. N must
// be at least 2 ("{}") and at most the server's configured maximum
// (Options.MaxFrame, default 16 MiB); violations are protocol errors
// that close the connection after a failure frame.
//
// # Messages
//
// Client to server (the "type" field selects):
//
//	hello                                  — must be first; negotiates
//	run    {query, params, mode}           — execute; mode "" | "explain" | "profile"
//	pull   {n}                             — fetch up to n buffered rows (n<=0: all)
//	begin / commit / rollback              — explicit transaction control
//	reset                                  — discard pending rows, roll back any open txn
//	goodbye                                — close the connection
//
// Server to client:
//
//	success {server?, dialect?, columns?, rows?, more?, stats?, plan?}
//	failure {code, message}
//
// RUN executes the statement to completion and buffers the result
// rows server-side; PULL pages them to the client. Failure frames
// carry a machine-readable code (see the Code* constants); protocol
// violations are fatal (the server closes the connection after the
// failure frame), statement-level errors are not.
package server

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/value"
)

// Message types (the "type" field of a frame's JSON object).
const (
	// MsgHello must be the first message on a connection.
	MsgHello = "hello"
	// MsgRun executes a statement.
	MsgRun = "run"
	// MsgPull fetches buffered result rows of the last run.
	MsgPull = "pull"
	// MsgBegin opens an explicit transaction.
	MsgBegin = "begin"
	// MsgCommit publishes the open transaction.
	MsgCommit = "commit"
	// MsgRollback discards the open transaction.
	MsgRollback = "rollback"
	// MsgReset discards pending rows and rolls back any open transaction.
	MsgReset = "reset"
	// MsgGoodbye closes the connection (no reply).
	MsgGoodbye = "goodbye"
	// MsgSuccess is the server's positive reply.
	MsgSuccess = "success"
	// MsgFailure is the server's negative reply.
	MsgFailure = "failure"
)

// Failure codes carried by failure frames.
const (
	// CodeProtocolError marks a protocol-state violation (RUN before
	// HELLO, double HELLO, unknown message type, malformed frame). Fatal:
	// the server closes the connection after the failure frame.
	CodeProtocolError = "ProtocolError"
	// CodeFrameTooLarge rejects a frame whose declared length exceeds
	// the server's maximum. Fatal.
	CodeFrameTooLarge = "FrameTooLarge"
	// CodeSyntaxError marks a statement that failed to parse or
	// validate. Not fatal.
	CodeSyntaxError = "SyntaxError"
	// CodeExecutionError marks a statement that failed at runtime. The
	// statement rolled back; the connection (and any open transaction)
	// stays usable.
	CodeExecutionError = "ExecutionError"
	// CodeTransactionState marks invalid transaction control (COMMIT
	// without BEGIN, nested BEGIN). Not fatal.
	CodeTransactionState = "TransactionState"
	// CodeNoPendingResult marks a PULL with no buffered result. Not fatal.
	CodeNoPendingResult = "NoPendingResult"
	// CodeServerBusy rejects a write when the bounded writer-admission
	// queue is full. Not fatal; the client may retry.
	CodeServerBusy = "ServerBusy"
	// CodeServerDraining rejects new statements while the server shuts
	// down gracefully. Not fatal, but the connection will close soon.
	CodeServerDraining = "ServerDraining"
	// CodeStatementTimeout reports a statement that exceeded the
	// per-statement timeout. Fatal: the engine cannot abandon a running
	// statement mid-flight, so the server tears the connection down once
	// the statement completes server-side.
	CodeStatementTimeout = "StatementTimeout"
	// CodeInvalidParameter marks a RUN whose params failed to decode.
	CodeInvalidParameter = "InvalidParameter"
)

// Message is the wire message object; one struct covers both
// directions (unused fields stay empty and are omitted from JSON).
type Message struct {
	// Type is the message type (one of the Msg* constants).
	Type string `json:"type"`

	// Query is the statement text of a run message.
	Query string `json:"query,omitempty"`
	// Params are the statement parameters of a run message.
	Params map[string]WireValue `json:"params,omitempty"`
	// Mode selects run behaviour: "" executes, "explain" plans without
	// executing, "profile" executes and returns the annotated plan.
	Mode string `json:"mode,omitempty"`
	// N is the maximum number of rows a pull fetches; n <= 0 fetches
	// all remaining rows.
	N int `json:"n,omitempty"`

	// Server identifies the server software in a hello reply.
	Server string `json:"server,omitempty"`
	// Dialect is the database's update dialect in a hello reply.
	Dialect string `json:"dialect,omitempty"`
	// Columns are the result column names in a run success.
	Columns []string `json:"columns,omitempty"`
	// Rows are result records in a pull success.
	Rows [][]WireValue `json:"rows,omitempty"`
	// More reports, in a pull success, whether rows remain buffered.
	More bool `json:"more,omitempty"`
	// Stats carries update counters in a run/commit success.
	Stats *WireStats `json:"stats,omitempty"`
	// Plan is the rendered operator plan of an explain/profile success.
	Plan string `json:"plan,omitempty"`

	// Code is the machine-readable failure code of a failure message.
	Code string `json:"code,omitempty"`
	// Error is the human-readable failure message.
	Error string `json:"message,omitempty"`
}

// WireStats mirrors cypher.UpdateStats on the wire.
type WireStats struct {
	// NodesCreated counts nodes created.
	NodesCreated int `json:"nodesCreated,omitempty"`
	// NodesDeleted counts nodes deleted.
	NodesDeleted int `json:"nodesDeleted,omitempty"`
	// RelsCreated counts relationships created.
	RelsCreated int `json:"relsCreated,omitempty"`
	// RelsDeleted counts relationships deleted.
	RelsDeleted int `json:"relsDeleted,omitempty"`
	// PropsSet counts properties set or removed.
	PropsSet int `json:"propsSet,omitempty"`
	// LabelsAdded counts labels added.
	LabelsAdded int `json:"labelsAdded,omitempty"`
	// LabelsRemoved counts labels removed.
	LabelsRemoved int `json:"labelsRemoved,omitempty"`
}

// WireValue is the tagged JSON encoding of a Cypher value. Exactly one
// tag is set; explicit tags make integers, floats (including NaN and
// the infinities, via floatSpecial) and entity references round-trip
// bit-identically — a bare JSON number would not.
type WireValue struct {
	// Null marks the null value.
	Null bool `json:"null,omitempty"`
	// Bool carries a boolean.
	Bool *bool `json:"bool,omitempty"`
	// Int carries a 64-bit integer.
	Int *int64 `json:"int,omitempty"`
	// Float carries a finite 64-bit float.
	Float *float64 `json:"float,omitempty"`
	// FloatS carries a non-finite float: "nan", "+inf" or "-inf".
	FloatS string `json:"floatSpecial,omitempty"`
	// Str carries a string.
	Str *string `json:"string,omitempty"`
	// List carries list elements when IsList is set.
	List []WireValue `json:"list,omitempty"`
	// IsList marks a (possibly empty) list.
	IsList bool `json:"isList,omitempty"`
	// Map carries map entries when IsMap is set.
	Map map[string]WireValue `json:"map,omitempty"`
	// IsMap marks a (possibly empty) map.
	IsMap bool `json:"isMap,omitempty"`
	// Node carries a node reference by id.
	Node *int64 `json:"node,omitempty"`
	// Rel carries a relationship reference by id.
	Rel *int64 `json:"rel,omitempty"`
	// Path carries a path as alternating node/relationship ids.
	Path *WirePath `json:"path,omitempty"`
}

// WirePath is the wire encoding of a path value.
type WirePath struct {
	// Nodes are the path's node ids (len(Nodes) == len(Rels)+1).
	Nodes []int64 `json:"nodes"`
	// Rels are the path's relationship ids.
	Rels []int64 `json:"rels"`
}

// EncodeValue converts a runtime value to its wire encoding.
func EncodeValue(v value.Value) (WireValue, error) {
	switch x := v.(type) {
	case nil, value.Null:
		return WireValue{Null: true}, nil
	case value.Bool:
		b := bool(x)
		return WireValue{Bool: &b}, nil
	case value.Int:
		i := int64(x)
		return WireValue{Int: &i}, nil
	case value.Float:
		f := float64(x)
		switch {
		case math.IsNaN(f):
			return WireValue{FloatS: "nan"}, nil
		case math.IsInf(f, 1):
			return WireValue{FloatS: "+inf"}, nil
		case math.IsInf(f, -1):
			return WireValue{FloatS: "-inf"}, nil
		}
		return WireValue{Float: &f}, nil
	case value.String:
		s := string(x)
		return WireValue{Str: &s}, nil
	case value.List:
		out := WireValue{IsList: true, List: make([]WireValue, len(x))}
		for i, el := range x {
			ev, err := EncodeValue(el)
			if err != nil {
				return WireValue{}, err
			}
			out.List[i] = ev
		}
		return out, nil
	case value.Map:
		out := WireValue{IsMap: true, Map: make(map[string]WireValue, len(x))}
		for k, el := range x {
			ev, err := EncodeValue(el)
			if err != nil {
				return WireValue{}, err
			}
			out.Map[k] = ev
		}
		return out, nil
	case value.Node:
		id := x.ID
		return WireValue{Node: &id}, nil
	case value.Rel:
		id := x.ID
		return WireValue{Rel: &id}, nil
	case value.Path:
		p := &WirePath{Nodes: append([]int64(nil), x.Nodes...), Rels: append([]int64(nil), x.Rels...)}
		if p.Rels == nil {
			p.Rels = []int64{}
		}
		return WireValue{Path: p}, nil
	default:
		return WireValue{}, fmt.Errorf("server: cannot encode %s value", v.Kind())
	}
}

// DecodeValue converts a wire encoding back to a runtime value.
func DecodeValue(w WireValue) (value.Value, error) {
	switch {
	case w.Null:
		return value.NullValue, nil
	case w.Bool != nil:
		return value.Bool(*w.Bool), nil
	case w.Int != nil:
		return value.Int(*w.Int), nil
	case w.Float != nil:
		return value.Float(*w.Float), nil
	case w.FloatS != "":
		switch w.FloatS {
		case "nan":
			return value.Float(math.NaN()), nil
		case "+inf":
			return value.Float(math.Inf(1)), nil
		case "-inf":
			return value.Float(math.Inf(-1)), nil
		}
		return nil, fmt.Errorf("server: unknown float special %q", w.FloatS)
	case w.Str != nil:
		return value.String(*w.Str), nil
	case w.IsList:
		out := make(value.List, len(w.List))
		for i, el := range w.List {
			v, err := DecodeValue(el)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	case w.IsMap:
		out := make(value.Map, len(w.Map))
		for k, el := range w.Map {
			v, err := DecodeValue(el)
			if err != nil {
				return nil, err
			}
			out[k] = v
		}
		return out, nil
	case w.Node != nil:
		return value.Node{ID: *w.Node}, nil
	case w.Rel != nil:
		return value.Rel{ID: *w.Rel}, nil
	case w.Path != nil:
		if len(w.Path.Nodes) != len(w.Path.Rels)+1 {
			return nil, fmt.Errorf("server: malformed path (%d nodes, %d rels)", len(w.Path.Nodes), len(w.Path.Rels))
		}
		return value.Path{
			Nodes: append([]int64(nil), w.Path.Nodes...),
			Rels:  append([]int64(nil), w.Path.Rels...),
		}, nil
	default:
		return nil, errors.New("server: malformed wire value (no tag set)")
	}
}

// DefaultMaxFrame is the default maximum frame body size.
const DefaultMaxFrame = 16 << 20

// minFrame is the smallest well-formed frame body ("{}").
const minFrame = 2

// ErrFrameTooLarge reports a frame whose declared length exceeds the
// configured maximum. The reader returns it wrapped with the length.
var ErrFrameTooLarge = errors.New("frame exceeds maximum size")

// ErrMalformedFrame reports a frame whose body is not a valid message
// object (bad JSON, empty body, or missing type).
var ErrMalformedFrame = errors.New("malformed frame")

// ReadFrame reads one length-prefixed message from r. maxFrame bounds
// the accepted body size (<= 0 means DefaultMaxFrame). A clean EOF
// before the first length byte returns io.EOF; a truncated frame
// returns io.ErrUnexpectedEOF; an oversized declared length returns an
// error wrapping ErrFrameTooLarge without consuming the body; invalid
// JSON returns an error wrapping ErrMalformedFrame.
func ReadFrame(r io.Reader, maxFrame int) (*Message, error) {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		// io.ReadFull already maps a partial header to ErrUnexpectedEOF;
		// other errors (timeouts, resets) pass through for the caller to
		// classify.
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > uint32(maxFrame) {
		return nil, fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, n, maxFrame)
	}
	if n < minFrame {
		return nil, fmt.Errorf("%w: body length %d", ErrMalformedFrame, n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
	var msg Message
	if err := json.Unmarshal(body, &msg); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrMalformedFrame, err)
	}
	if msg.Type == "" {
		return nil, fmt.Errorf("%w: missing message type", ErrMalformedFrame)
	}
	return &msg, nil
}

// WriteFrame writes one length-prefixed message to w.
func WriteFrame(w io.Writer, msg *Message) error {
	body, err := json.Marshal(msg)
	if err != nil {
		return err
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}
