package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/cypher"
	"repro/cypherclient"
)

// TestSoakConcurrentClients runs N clients with mixed read/write/txn
// workloads against one server and asserts:
//
//   - no torn reads: every snapshot a reader sees is internally
//     consistent (two aggregates over the same data always agree);
//   - per-session isolation: each client's committed node count is
//     exactly what it committed (rolled-back work never surfaces);
//   - clean drain: shutdown leaves no connections, no pinned
//     snapshots, no leaked goroutines, and a free writer baton.
//
// Run it under -race (make serve-race / CI) to turn any cross-session
// memory misuse into a hard failure.
func TestSoakConcurrentClients(t *testing.T) {
	const (
		clients = 8
		iters   = 30
	)
	baseline := runtime.NumGoroutine()
	db := cypher.Open()
	srv := New(db, Options{})
	ln, addr := listenLocal(t)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	var wg sync.WaitGroup
	committed := make([]int, clients) // nodes each client successfully committed
	errs := make(chan error, clients)
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			errs <- soakClient(addr, ci, iters, &committed[ci])
		}(ci)
	}
	wg.Wait()
	for i := 0; i < clients; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}

	// Every client's committed work — and nothing else — is visible.
	total := 0
	for ci, n := range committed {
		res, err := db.Exec(`MATCH (n:Soak{owner:$o}) RETURN count(n) AS c`, map[string]any{"o": int64(ci)})
		if err != nil {
			t.Fatal(err)
		}
		c := res.Row(0)["c"]
		if c.String() != fmt.Sprint(n) {
			t.Errorf("client %d: committed %d nodes, server sees %s", ci, n, c.String())
		}
		total += n
	}
	res, err := db.Exec(`MATCH (n:Soak) RETURN count(n) AS c`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Row(0)["c"].String() != fmt.Sprint(total) {
		t.Errorf("total = %s, want %d", res.Row(0)["c"].String(), total)
	}

	// Clean drain.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("serve: %v", err)
	}
	if st := srv.Stats(); st.Connections != 0 {
		t.Errorf("%d connections alive after drain", st.Connections)
	}
	if pins := db.PinnedSnapshots(); pins != 0 {
		t.Errorf("%d snapshots still pinned after drain", pins)
	}
	// The writer baton is free: an auto-commit write proceeds instantly.
	if _, err := db.Exec(`CREATE (:PostDrain)`, nil); err != nil {
		t.Fatalf("write after drain: %v", err)
	}
	waitForGoroutines(t, baseline)
}

// soakClient runs one client's mixed workload; *commits tracks nodes
// it successfully committed.
func soakClient(addr string, ci, iters int, commits *int) error {
	c, err := cypherclient.Dial(addr)
	if err != nil {
		return fmt.Errorf("client %d: dial: %w", ci, err)
	}
	defer c.Close()
	owner := map[string]any{"o": int64(ci)}
	for j := 0; j < iters; j++ {
		switch j % 4 {
		case 0: // auto-commit write
			res, err := c.Exec(`CREATE (:Soak{owner:$o})`, owner)
			if err != nil {
				return fmt.Errorf("client %d: create: %w", ci, err)
			}
			if res.Stats.NodesCreated != 1 {
				return fmt.Errorf("client %d: create stats %+v", ci, res.Stats)
			}
			*commits++
		case 1: // explicit transaction, committed
			if err := c.Begin(); err != nil {
				return fmt.Errorf("client %d: begin: %w", ci, err)
			}
			for k := 0; k < 2; k++ {
				if _, err := c.Exec(`CREATE (:Soak{owner:$o})`, owner); err != nil {
					return fmt.Errorf("client %d: txn create: %w", ci, err)
				}
			}
			// Reads inside the transaction see its own uncommitted writes.
			res, err := c.Exec(`MATCH (n:Soak{owner:$o}) RETURN count(n) AS c`, owner)
			if err != nil {
				return fmt.Errorf("client %d: txn read: %w", ci, err)
			}
			if got := res.Rows[0][0].String(); got != fmt.Sprint(*commits+2) {
				return fmt.Errorf("client %d: txn sees %s own nodes, want %d", ci, got, *commits+2)
			}
			if _, err := c.Commit(); err != nil {
				return fmt.Errorf("client %d: commit: %w", ci, err)
			}
			*commits += 2
		case 2: // explicit transaction, rolled back: leaves no trace
			if err := c.Begin(); err != nil {
				return fmt.Errorf("client %d: begin: %w", ci, err)
			}
			if _, err := c.Exec(`CREATE (:Soak{owner:$o})`, owner); err != nil {
				return fmt.Errorf("client %d: txn create: %w", ci, err)
			}
			if err := c.Rollback(); err != nil {
				return fmt.Errorf("client %d: rollback: %w", ci, err)
			}
		case 3: // reads: no torn snapshots, exact own count
			res, err := c.Exec(`MATCH (n:Soak) RETURN count(n) AS all, count(n.owner) AS tagged`, nil)
			if err != nil {
				return fmt.Errorf("client %d: read: %w", ci, err)
			}
			all, tagged := res.Rows[0][0].String(), res.Rows[0][1].String()
			if all != tagged {
				return fmt.Errorf("client %d: torn read: %s nodes but %s owner properties", ci, all, tagged)
			}
			own, err := c.Exec(`MATCH (n:Soak{owner:$o}) RETURN count(n) AS c`, owner)
			if err != nil {
				return fmt.Errorf("client %d: own read: %w", ci, err)
			}
			// Own commits are immediately visible to the same session
			// (and rolled-back work never is): the count is exact.
			if got := own.Rows[0][0].String(); got != fmt.Sprint(*commits) {
				return fmt.Errorf("client %d: isolation violation: sees %s own nodes, committed %d", ci, got, *commits)
			}
		}
	}
	return nil
}

// TestSoakDrainUnderLoad shuts the server down while clients hammer
// it, then verifies the database is quiescent and consistent: no
// half-applied statements, no pinned snapshots, writer baton free.
func TestSoakDrainUnderLoad(t *testing.T) {
	const clients = 6
	db := cypher.Open()
	srv := New(db, Options{})
	ln, addr := listenLocal(t)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			c, err := cypherclient.Dial(addr)
			if err != nil {
				return
			}
			defer c.Close()
			for j := 0; ; j++ {
				select {
				case <-stop:
					return
				default:
				}
				var err error
				if j%3 == 0 {
					// Leave a transaction open on purpose sometimes; drain
					// must roll it back.
					if err = c.Begin(); err == nil {
						_, err = c.Exec(`CREATE (:Load{owner:$o})`, map[string]any{"o": int64(ci)})
					}
					if err == nil && j%6 == 0 {
						_, err = c.Commit()
					}
				} else {
					_, err = c.Exec(`CREATE (:Load{owner:$o})`, map[string]any{"o": int64(ci)})
				}
				if err != nil {
					// Draining: server refused or closed — expected.
					var se *cypherclient.ServerError
					if errors.As(err, &se) && se.Code != CodeServerDraining && se.Code != CodeServerBusy && se.Code != CodeTransactionState {
						t.Errorf("client %d: unexpected server error %v", ci, se)
					}
					return
				}
			}
		}(ci)
	}
	// Let load build, then drain mid-flight.
	time.Sleep(50 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	close(stop)
	wg.Wait()
	if err := <-done; err != nil {
		t.Fatalf("serve: %v", err)
	}
	if pins := db.PinnedSnapshots(); pins != 0 {
		t.Errorf("%d snapshots pinned after drain", pins)
	}
	// All open transactions rolled back: the single-writer baton is
	// free, so a write completes instead of deadlocking.
	writeDone := make(chan error, 1)
	go func() {
		_, err := db.Exec(`CREATE (:PostDrain)`, nil)
		writeDone <- err
	}()
	select {
	case err := <-writeDone:
		if err != nil {
			t.Fatalf("write after drain: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("write after drain blocked: a transaction survived the drain holding the writer baton")
	}
}

// listenLocal opens a loopback listener for a soak server.
func listenLocal(t *testing.T) (net.Listener, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return ln, ln.Addr().String()
}

// waitForGoroutines polls until the goroutine count returns to (near)
// baseline, failing after a deadline.
func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d now vs %d at start", runtime.NumGoroutine(), baseline)
}
