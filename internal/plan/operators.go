package plan

import (
	"fmt"
	"iter"

	"repro/internal/ast"
	"repro/internal/expr"
	"repro/internal/match"
	"repro/internal/table"
	"repro/internal/value"
)

var nullValue = value.NullValue

// ---------------------------------------------------------------------
// Sources
// ---------------------------------------------------------------------

// Unit emits the single empty record T() that starts query evaluation
// (Section 8.1 of the paper).
type Unit struct {
	done    bool
	st      opState
	rows    int64
	batches int64
}

// NewUnit returns the unit source.
func NewUnit() *Unit { return &Unit{} }

// Columns implements Operator.
func (o *Unit) Columns() []string { return nil }

// Open implements Operator.
func (o *Unit) Open() error { return o.st.open("Unit") }

// Next implements Operator.
func (o *Unit) Next() (Row, bool, error) {
	if o.done {
		return Row{}, false, nil
	}
	o.done = true
	o.rows++
	return Row{Env: expr.Env{}}, true, nil
}

// Close implements Operator.
func (o *Unit) Close() { o.st.close() }

// Name implements Operator.
func (o *Unit) Name() string { return "Unit" + statsSuffix(o.rows, o.batches) }

// Children implements Operator.
func (o *Unit) Children() []Operator { return nil }

// RowsEmitted implements Operator.
func (o *Unit) RowsEmitted() int64 { return o.rows }

// TableScan streams the records of a pre-built driving table (the
// ExecuteWithTable entry point of the Section 6 experiments, and the
// output side of every materialization barrier).
type TableScan struct {
	t       *table.Table
	cur     *table.Cursor
	bpos    int
	st      opState
	rows    int64
	batches int64
}

// NewTableScan returns a scan over t.
func NewTableScan(t *table.Table) *TableScan { return &TableScan{t: t} }

// Columns implements Operator.
func (o *TableScan) Columns() []string { return o.t.Columns() }

// Open implements Operator.
func (o *TableScan) Open() error {
	if err := o.st.open("Scan"); err != nil {
		return err
	}
	o.cur = o.t.Iter()
	return nil
}

// Next implements Operator.
func (o *TableScan) Next() (Row, bool, error) {
	if !o.cur.Next() {
		return Row{}, false, nil
	}
	o.rows++
	return Row{Env: o.cur.Row()}, true, nil
}

// Close implements Operator.
func (o *TableScan) Close() { o.st.close() }

// Name implements Operator.
func (o *TableScan) Name() string {
	return fmt.Sprintf("Scan(%d×%d)", o.t.Len(), len(o.t.Columns())) + statsSuffix(o.rows, o.batches)
}

// Children implements Operator.
func (o *TableScan) Children() []Operator { return nil }

// RowsEmitted implements Operator.
func (o *TableScan) RowsEmitted() int64 { return o.rows }

// ---------------------------------------------------------------------
// Match
// ---------------------------------------------------------------------

// Match implements MATCH and OPTIONAL MATCH as a streaming expansion:
// for each input record it pulls pattern matches one at a time from the
// matcher's enumeration, applying the clause's WHERE inside the stream.
// A consumer that stops pulling (LIMIT, EXISTS) aborts the enumeration
// mid-search; MatchStats exposes how many candidates were visited.
type Match struct {
	child   Operator
	cl      *ast.MatchClause
	matcher *match.Matcher
	ev      *expr.Evaluator
	cols    []string
	stats   match.Stats
	pushed  *match.Pushdown

	cur     *matchCursor
	curRow  expr.Env
	emitted int
	rows    int64

	// Batch-pull state (see NextBatch in batch.go). Each parent commits
	// to one pull discipline per execution, so row and batch state never
	// coexist.
	st      opState
	batches int64
	bin     *Batch
	binIdx  int
	bcur    *match.Cursor
	bbuf    []expr.Env
	bdone   bool
}

// NewMatch builds a Match operator over child. newVars are the pattern
// variables not already bound by the child's columns. WHERE conjuncts
// decidable on a single pattern slot are pushed into the matcher, which
// uses them to prune candidates during expansion; the full WHERE is
// still evaluated on every complete match, so pushdown never changes
// results (see match.Pushdown).
func NewMatch(child Operator, cl *ast.MatchClause, m *match.Matcher, ev *expr.Evaluator, newVars []string) *Match {
	o := &Match{
		child:   child,
		cl:      cl,
		matcher: m,
		ev:      ev,
		cols:    append(append([]string(nil), child.Columns()...), newVars...),
		pushed:  match.NewPushdown(cl.Where, cl.Pattern, child.Columns()),
	}
	o.matcher.Stats = &o.stats
	o.matcher.SetPushdown(o.pushed)
	return o
}

// matchCursor adapts the matcher's push-style enumeration (Stream) to
// the pull discipline using iter.Pull: the enumeration runs in a
// coroutine that is suspended between yields, so pulling row k performs
// only the search work needed to find match k.
type matchCursor struct {
	next func() (expr.Env, bool)
	stop func()
	err  *error
}

func newMatchCursor(m *match.Matcher, ev *expr.Evaluator, cl *ast.MatchClause, env expr.Env) *matchCursor {
	var streamErr error
	seq := func(yield func(expr.Env) bool) {
		streamErr = m.Stream(cl.Pattern, env, func(me expr.Env) error {
			if cl.Where != nil {
				ok, err := ev.EvalBool(cl.Where, me)
				if err != nil {
					return err
				}
				if ok != value.True {
					return nil
				}
			}
			if !yield(me) {
				return match.ErrStop
			}
			return nil
		})
	}
	next, stop := iter.Pull(seq)
	return &matchCursor{next: next, stop: stop, err: &streamErr}
}

// Columns implements Operator.
func (o *Match) Columns() []string { return o.cols }

// Open implements Operator.
func (o *Match) Open() error {
	if err := o.st.open("Match"); err != nil {
		return err
	}
	return o.child.Open()
}

// Next implements Operator.
func (o *Match) Next() (Row, bool, error) {
	for {
		if o.cur == nil {
			in, ok, err := o.child.Next()
			if err != nil || !ok {
				return Row{}, false, err
			}
			o.curRow = in.Env
			o.emitted = 0
			o.cur = newMatchCursor(o.matcher, o.ev, o.cl, in.Env)
		}
		me, ok := o.cur.next()
		if ok {
			o.emitted++
			o.rows++
			return Row{Env: normalize(o.cols, me)}, true, nil
		}
		// Enumeration for the current input record is exhausted.
		o.cur.stop()
		err := *o.cur.err
		optional := o.cl.Optional && o.emitted == 0
		o.cur = nil
		if err != nil {
			return Row{}, false, err
		}
		if optional {
			// normalize fills the unbound pattern variables with nulls.
			row := normalize(o.cols, o.curRow)
			o.rows++
			return Row{Env: row}, true, nil
		}
	}
}

// Close implements Operator.
func (o *Match) Close() {
	if !o.st.close() {
		return
	}
	if o.cur != nil {
		o.cur.stop()
		o.cur = nil
	}
	if o.bcur != nil {
		o.bcur.Stop()
		o.bcur = nil
	}
	o.child.Close()
}

// Name implements Operator. Beyond the pattern it renders the planner's
// choices — part execution order, per-part anchors (index-seek(:L.p)
// when a part anchors on a property index), estimated anchor
// cardinalities (from the current graph statistics), and the pushed
// WHERE conjuncts — which is what the shell's EXPLAIN surfaces.
func (o *Match) Name() string {
	kw := "Match"
	if o.cl.Optional {
		kw = "OptionalMatch"
	}
	var parts []string
	for _, p := range o.cl.Pattern {
		parts = append(parts, p.String())
	}
	s := fmt.Sprintf("%s(%s)", kw, joinTrunc(parts, 60))
	s += " " + o.matcher.DescribePlan(o.cl.Pattern, o.child.Columns())
	if !o.pushed.Empty() {
		s += " pushed=" + o.pushed.Describe()
	}
	if o.cl.Where != nil {
		s += " WHERE …"
	}
	return s + statsSuffix(o.rows, o.batches)
}

// Children implements Operator.
func (o *Match) Children() []Operator { return []Operator{o.child} }

// RowsEmitted implements Operator.
func (o *Match) RowsEmitted() int64 { return o.rows }

// MatchStats reports the matcher's visit counters (candidates
// considered so far), for early-exit assertions and EXPLAIN.
func (o *Match) MatchStats() match.Stats { return o.stats }

func joinTrunc(parts []string, max int) string {
	s := ""
	for i, p := range parts {
		if i > 0 {
			s += ", "
		}
		s += p
	}
	if len(s) > max {
		r := []rune(s)
		if len(r) > max-1 {
			r = r[:max-1]
		}
		s = string(r) + "…"
	}
	return s
}

// ---------------------------------------------------------------------
// Unwind / LoadCSV
// ---------------------------------------------------------------------

// Unwind expands a list expression into one record per element. Null
// yields no records; a non-list value is treated as a singleton.
type Unwind struct {
	child Operator
	cl    *ast.UnwindClause
	ev    *expr.Evaluator
	cols  []string

	curRow  expr.Env
	elems   value.List
	idx     int
	st      opState
	rows    int64
	batches int64

	// Batch-path state (see NextBatch in batch.go): the current input
	// batch, the next row to expand, the row the live element list came
	// from, and a scratch environment for evaluating the list expression.
	bin      *Batch
	binIdx   int
	bcur     int
	bdone    bool
	bscratch expr.Env
}

// NewUnwind builds an Unwind operator over child.
func NewUnwind(child Operator, cl *ast.UnwindClause, ev *expr.Evaluator) *Unwind {
	return &Unwind{
		child: child, cl: cl, ev: ev,
		cols: append(append([]string(nil), child.Columns()...), cl.Var),
	}
}

// Columns implements Operator.
func (o *Unwind) Columns() []string { return o.cols }

// Open implements Operator.
func (o *Unwind) Open() error {
	if err := o.st.open("Unwind"); err != nil {
		return err
	}
	return o.child.Open()
}

// Next implements Operator.
func (o *Unwind) Next() (Row, bool, error) {
	for {
		if o.idx < len(o.elems) {
			row := normalize(o.cols, o.curRow)
			row[o.cl.Var] = o.elems[o.idx]
			o.idx++
			o.rows++
			return Row{Env: row}, true, nil
		}
		in, ok, err := o.child.Next()
		if err != nil || !ok {
			return Row{}, false, err
		}
		v, err := o.ev.Eval(o.cl.Expr, in.Env)
		if err != nil {
			return Row{}, false, err
		}
		switch lv := v.(type) {
		case value.Null:
			continue
		case value.List:
			o.curRow, o.elems, o.idx = in.Env, lv, 0
		default:
			o.curRow, o.elems, o.idx = in.Env, value.List{v}, 0
		}
	}
}

// Close implements Operator.
func (o *Unwind) Close() {
	if !o.st.close() {
		return
	}
	o.child.Close()
}

// Name implements Operator.
func (o *Unwind) Name() string {
	return fmt.Sprintf("Unwind(%s AS %s)", o.cl.Expr.String(), o.cl.Var) + statsSuffix(o.rows, o.batches)
}

// Children implements Operator.
func (o *Unwind) Children() []Operator { return []Operator{o.child} }

// RowsEmitted implements Operator.
func (o *Unwind) RowsEmitted() int64 { return o.rows }

// LoadCSV reads a CSV file per input record, binding each data row to
// the clause variable: a map with WITH HEADERS, a list of strings
// otherwise. Rows are read from the file one at a time as the consumer
// pulls — nothing is buffered, so LIMIT-style early exit stops reading
// the file mid-way and huge imports stream in constant memory.
type LoadCSV struct {
	child Operator
	cl    *ast.LoadCSVClause
	ev    *expr.Evaluator
	cols  []string

	curRow  expr.Env
	reader  *CSVReader
	st      opState
	rows    int64
	batches int64

	// Batch-path state (see NextBatch in batch.go).
	bin      *Batch
	binIdx   int
	bcur     int
	bdone    bool
	bscratch expr.Env
}

// NewLoadCSV builds a LoadCSV operator over child.
func NewLoadCSV(child Operator, cl *ast.LoadCSVClause, ev *expr.Evaluator) *LoadCSV {
	return &LoadCSV{
		child: child, cl: cl, ev: ev,
		cols: append(append([]string(nil), child.Columns()...), cl.Var),
	}
}

// Columns implements Operator.
func (o *LoadCSV) Columns() []string { return o.cols }

// Open implements Operator.
func (o *LoadCSV) Open() error {
	if err := o.st.open("LoadCSV"); err != nil {
		return err
	}
	return o.child.Open()
}

// Next implements Operator.
func (o *LoadCSV) Next() (Row, bool, error) {
	for {
		if o.reader != nil {
			v, ok, err := o.reader.Next()
			if err != nil {
				return Row{}, false, err
			}
			if ok {
				row := normalize(o.cols, o.curRow)
				row[o.cl.Var] = v
				o.rows++
				return Row{Env: row}, true, nil
			}
			o.reader.Close()
			o.reader = nil
		}
		in, ok, err := o.child.Next()
		if err != nil || !ok {
			return Row{}, false, err
		}
		urlVal, err := o.ev.Eval(o.cl.URL, in.Env)
		if err != nil {
			return Row{}, false, err
		}
		url, oks := value.AsString(urlVal)
		if !oks {
			return Row{}, false, fmt.Errorf("LOAD CSV FROM expects a string, got %s", urlVal.Kind())
		}
		r, err := OpenCSV(string(url), o.cl.FieldTerm, o.cl.WithHeaders)
		if err != nil {
			return Row{}, false, err
		}
		o.curRow, o.reader = in.Env, r
	}
}

// Close implements Operator.
func (o *LoadCSV) Close() {
	if !o.st.close() {
		return
	}
	if o.reader != nil {
		o.reader.Close()
		o.reader = nil
	}
	o.child.Close()
}

// Name implements Operator.
func (o *LoadCSV) Name() string {
	return fmt.Sprintf("LoadCSV(%s AS %s)", o.cl.URL.String(), o.cl.Var) + statsSuffix(o.rows, o.batches)
}

// Children implements Operator.
func (o *LoadCSV) Children() []Operator { return []Operator{o.child} }

// RowsEmitted implements Operator.
func (o *LoadCSV) RowsEmitted() int64 { return o.rows }

// ---------------------------------------------------------------------
// Filter / Project / Distinct / Skip / Limit
// ---------------------------------------------------------------------

// Filter keeps records whose predicate evaluates to True (ternary
// logic: null and false are both dropped). It implements WITH … WHERE.
type Filter struct {
	child Operator
	pred  ast.Expr
	ev    *expr.Evaluator

	st      opState
	rows    int64
	batches int64
	scratch expr.Env
	selbuf  []int
}

// NewFilter builds a Filter over child.
func NewFilter(child Operator, pred ast.Expr, ev *expr.Evaluator) *Filter {
	return &Filter{child: child, pred: pred, ev: ev}
}

// Columns implements Operator.
func (o *Filter) Columns() []string { return o.child.Columns() }

// Open implements Operator.
func (o *Filter) Open() error {
	if err := o.st.open("Filter"); err != nil {
		return err
	}
	return o.child.Open()
}

// Next implements Operator.
func (o *Filter) Next() (Row, bool, error) {
	for {
		in, ok, err := o.child.Next()
		if err != nil || !ok {
			return Row{}, false, err
		}
		keep, err := o.ev.EvalBool(o.pred, in.Env)
		if err != nil {
			return Row{}, false, err
		}
		if keep == value.True {
			o.rows++
			return in, true, nil
		}
	}
}

// Close implements Operator.
func (o *Filter) Close() {
	if !o.st.close() {
		return
	}
	o.child.Close()
}

// Name implements Operator.
func (o *Filter) Name() string {
	return fmt.Sprintf("Filter(%s)", o.pred.String()) + statsSuffix(o.rows, o.batches)
}

// Children implements Operator.
func (o *Filter) Children() []Operator { return []Operator{o.child} }

// RowsEmitted implements Operator.
func (o *Filter) RowsEmitted() int64 { return o.rows }

// Item is one projection item: an expression and its output column.
type Item struct {
	Expr  ast.Expr
	Alias string
}

// Project evaluates a non-aggregating projection record by record. With
// keepSrc it attaches each input environment to the output row so a
// downstream Sort can evaluate ORDER BY keys over pre-projection
// variables (legal when the projection neither aggregates nor
// deduplicates — the cardinality is unchanged).
type Project struct {
	child   Operator
	items   []Item
	cols    []string
	ev      *expr.Evaluator
	keepSrc bool

	st         opState
	rows       int64
	batches    int64
	scratch    expr.Env
	outScratch expr.Env
}

// NewProject builds a Project over child.
func NewProject(child Operator, items []Item, cols []string, ev *expr.Evaluator, keepSrc bool) *Project {
	return &Project{child: child, items: items, cols: cols, ev: ev, keepSrc: keepSrc}
}

// Columns implements Operator.
func (o *Project) Columns() []string { return o.cols }

// Open implements Operator.
func (o *Project) Open() error {
	if err := o.st.open("Project"); err != nil {
		return err
	}
	return o.child.Open()
}

// Next implements Operator.
func (o *Project) Next() (Row, bool, error) {
	in, ok, err := o.child.Next()
	if err != nil || !ok {
		return Row{}, false, err
	}
	out := make(expr.Env, len(o.items))
	for _, it := range o.items {
		v, err := o.ev.Eval(it.Expr, in.Env)
		if err != nil {
			return Row{}, false, err
		}
		out[it.Alias] = v
	}
	row := Row{Env: normalize(o.cols, out)}
	if o.keepSrc {
		row.Src = in.Env
	}
	o.rows++
	return row, true, nil
}

// Close implements Operator.
func (o *Project) Close() {
	if !o.st.close() {
		return
	}
	o.child.Close()
}

// Name implements Operator.
func (o *Project) Name() string {
	return "Project" + describeItems(o.items) + statsSuffix(o.rows, o.batches)
}

// Children implements Operator.
func (o *Project) Children() []Operator { return []Operator{o.child} }

// RowsEmitted implements Operator.
func (o *Project) RowsEmitted() int64 { return o.rows }

func describeItems(items []Item) string {
	var parts []string
	for _, it := range items {
		parts = append(parts, it.Alias)
	}
	return "[" + joinTrunc(parts, 60) + "]"
}

// Distinct drops duplicate records under value equivalence, keeping
// first occurrences in order. Unlike Sort it needs no barrier: the
// first occurrence can be forwarded the moment it arrives. Its
// seen-set, however, is barrier-like state: under a memory budget the
// batch path caps it and spills overflow keys to hash partitions (see
// distinctNextBatch in spill.go).
type Distinct struct {
	child  Operator
	seen   map[string]bool
	budget *budget
	rows   int64

	// Batch-pull state (see spill.go).
	st       opState
	batches  int64
	dcols    []string
	keybuf   []value.Value
	selbuf   []int
	seq      int64
	drained  bool
	spilling bool
	parts    []*spillFile
	merged   *runMerger
	held     int64
	peak     int64
	spills   int64
}

// NewDistinct builds a Distinct over child.
func NewDistinct(child Operator) *Distinct { return &Distinct{child: child} }

// Columns implements Operator.
func (o *Distinct) Columns() []string { return o.child.Columns() }

// Open implements Operator.
func (o *Distinct) Open() error {
	if err := o.st.open("Distinct"); err != nil {
		return err
	}
	o.seen = make(map[string]bool)
	return o.child.Open()
}

// Next implements Operator.
func (o *Distinct) Next() (Row, bool, error) {
	cols := o.child.Columns()
	for {
		in, ok, err := o.child.Next()
		if err != nil || !ok {
			return Row{}, false, err
		}
		vals := make([]value.Value, len(cols))
		for i, c := range cols {
			vals[i] = in.Env[c]
		}
		k := value.KeyList(vals)
		if o.seen[k] {
			continue
		}
		o.seen[k] = true
		o.rows++
		// Distinct breaks the row/source-record correspondence, so the
		// source environment must not travel past it.
		return Row{Env: in.Env}, true, nil
	}
}

// Close implements Operator. It releases any spill state: partition
// files still on disk (early-LIMIT abandonment, errors) are removed
// and the accounted budget is returned.
func (o *Distinct) Close() {
	if !o.st.close() {
		return
	}
	if o.merged != nil {
		o.merged.close()
		o.merged = nil
	}
	for _, p := range o.parts {
		p.discard()
	}
	o.parts = nil
	o.budget.shrink(o.held)
	o.held = 0
	o.child.Close()
}

// Name implements Operator.
func (o *Distinct) Name() string {
	return "Distinct" + barrierSuffix(o.rows, o.batches, o.peak, o.spills)
}

// Children implements Operator.
func (o *Distinct) Children() []Operator { return []Operator{o.child} }

// RowsEmitted implements Operator.
func (o *Distinct) RowsEmitted() int64 { return o.rows }

// PeakBytes reports the peak accounted seen-set memory.
func (o *Distinct) PeakBytes() int64 { return o.peak }

// SpillRuns reports how many partition files were spilled and replayed.
func (o *Distinct) SpillRuns() int64 { return o.spills }

// Skip drops the first n records; Limit stops after n. Both evaluate
// their count expression lazily on first pull (parameters only — the
// expression has no variables in scope).
type Skip struct {
	child   Operator
	expr    ast.Expr
	ev      *expr.Evaluator
	n       int
	ready   bool
	st      opState
	rows    int64
	batches int64
}

// NewSkip builds a Skip over child.
func NewSkip(child Operator, e ast.Expr, ev *expr.Evaluator) *Skip {
	return &Skip{child: child, expr: e, ev: ev}
}

// Columns implements Operator.
func (o *Skip) Columns() []string { return o.child.Columns() }

// Open implements Operator.
func (o *Skip) Open() error {
	if err := o.st.open("Skip"); err != nil {
		return err
	}
	return o.child.Open()
}

// ensure evaluates the count expression once, on first pull.
func (o *Skip) ensure() error {
	if o.ready {
		return nil
	}
	v, err := o.ev.Eval(o.expr, expr.Env{})
	if err != nil {
		return err
	}
	s, ok := value.AsInt(v)
	if !ok || s < 0 {
		return fmt.Errorf("SKIP expects a non-negative integer, got %s", v)
	}
	o.n, o.ready = int(s), true
	return nil
}

// Next implements Operator.
func (o *Skip) Next() (Row, bool, error) {
	if !o.ready {
		if err := o.ensure(); err != nil {
			return Row{}, false, err
		}
		for i := 0; i < o.n; i++ {
			if _, ok, err := o.child.Next(); err != nil || !ok {
				return Row{}, false, err
			}
		}
	}
	row, ok, err := o.child.Next()
	if ok {
		o.rows++
	}
	return row, ok, err
}

// Close implements Operator.
func (o *Skip) Close() {
	if !o.st.close() {
		return
	}
	o.child.Close()
}

// Name implements Operator.
func (o *Skip) Name() string {
	return fmt.Sprintf("Skip(%s)", o.expr.String()) + statsSuffix(o.rows, o.batches)
}

// Children implements Operator.
func (o *Skip) Children() []Operator { return []Operator{o.child} }

// RowsEmitted implements Operator.
func (o *Skip) RowsEmitted() int64 { return o.rows }

// Limit forwards at most n records, then reports end of stream without
// pulling its child again — the early exit that prunes upstream
// enumeration.
type Limit struct {
	child   Operator
	expr    ast.Expr
	ev      *expr.Evaluator
	n       int
	ready   bool
	st      opState
	rows    int64
	batches int64
}

// NewLimit builds a Limit over child.
func NewLimit(child Operator, e ast.Expr, ev *expr.Evaluator) *Limit {
	return &Limit{child: child, expr: e, ev: ev}
}

// Columns implements Operator.
func (o *Limit) Columns() []string { return o.child.Columns() }

// Open implements Operator.
func (o *Limit) Open() error {
	if err := o.st.open("Limit"); err != nil {
		return err
	}
	return o.child.Open()
}

// ensure evaluates the count expression once, on first pull.
func (o *Limit) ensure() error {
	if o.ready {
		return nil
	}
	v, err := o.ev.Eval(o.expr, expr.Env{})
	if err != nil {
		return err
	}
	l, ok := value.AsInt(v)
	if !ok || l < 0 {
		return fmt.Errorf("LIMIT expects a non-negative integer, got %s", v)
	}
	o.n, o.ready = int(l), true
	return nil
}

// Next implements Operator.
func (o *Limit) Next() (Row, bool, error) {
	if err := o.ensure(); err != nil {
		return Row{}, false, err
	}
	if o.rows >= int64(o.n) {
		return Row{}, false, nil
	}
	row, ok, err := o.child.Next()
	if ok {
		o.rows++
	}
	return row, ok, err
}

// Close implements Operator.
func (o *Limit) Close() {
	if !o.st.close() {
		return
	}
	o.child.Close()
}

// Name implements Operator.
func (o *Limit) Name() string {
	return fmt.Sprintf("Limit(%s)", o.expr.String()) + statsSuffix(o.rows, o.batches)
}

// Children implements Operator.
func (o *Limit) Children() []Operator { return []Operator{o.child} }

// RowsEmitted implements Operator.
func (o *Limit) RowsEmitted() int64 { return o.rows }

// ---------------------------------------------------------------------
// Barriers: Sort, Aggregate, Apply, Discard
// ---------------------------------------------------------------------

// Sort is a materialization barrier implementing ORDER BY as an
// external sort: rows accumulate in memory (keys computed at intake,
// which may reference pre-projection variables when rows carry their
// source environments — see Project.keepSrc); under a memory budget,
// full runs are sorted and spilled to temp files and replay is a k-way
// merge. A unique intake sequence number breaks ties, reproducing the
// stable in-memory order exactly. See fill/next1 in spill.go.
type Sort struct {
	child  Operator
	sorts  []*ast.SortItem
	ev     *expr.Evaluator
	budget *budget

	st      opState
	filled  bool
	ocols   []string
	mem     []spillRow
	memIdx  int
	runs    []*spillFile
	merged  *runMerger
	rows    int64
	batches int64
	held    int64
	peak    int64
	spills  int64
}

// NewSort builds a Sort barrier over child.
func NewSort(child Operator, sorts []*ast.SortItem, ev *expr.Evaluator) *Sort {
	return &Sort{child: child, sorts: sorts, ev: ev}
}

// Columns implements Operator.
func (o *Sort) Columns() []string { return o.child.Columns() }

// Open implements Operator.
func (o *Sort) Open() error {
	if err := o.st.open("Sort"); err != nil {
		return err
	}
	return o.child.Open()
}

// Next implements Operator.
func (o *Sort) Next() (Row, bool, error) {
	if !o.filled {
		if err := o.fill(); err != nil {
			return Row{}, false, err
		}
		o.filled = true
	}
	r, ok, err := o.next1()
	if err != nil || !ok {
		return Row{}, false, err
	}
	o.rows++
	return Row{Env: envFromVals(o.ocols, r.vals)}, true, nil
}

// Close implements Operator. It releases the sort's state: any run
// files still on disk (early-LIMIT abandonment, errors) are removed
// and the accounted budget is returned.
func (o *Sort) Close() {
	if !o.st.close() {
		return
	}
	if o.merged != nil {
		o.merged.close()
		o.merged = nil
	}
	for _, f := range o.runs {
		f.discard()
	}
	o.runs = nil
	o.mem = nil
	o.budget.shrink(o.held)
	o.held = 0
	o.child.Close()
}

// Name implements Operator.
func (o *Sort) Name() string {
	var parts []string
	for _, s := range o.sorts {
		p := s.Expr.String()
		if s.Desc {
			p += " DESC"
		}
		parts = append(parts, p)
	}
	return fmt.Sprintf("Sort[barrier](%s)", joinTrunc(parts, 50)) + barrierSuffix(o.rows, o.batches, o.peak, o.spills)
}

// Children implements Operator.
func (o *Sort) Children() []Operator { return []Operator{o.child} }

// RowsEmitted implements Operator.
func (o *Sort) RowsEmitted() int64 { return o.rows }

// PeakBytes reports the peak accounted intake memory.
func (o *Sort) PeakBytes() int64 { return o.peak }

// SpillRuns reports how many sorted runs were spilled to disk.
func (o *Sort) SpillRuns() int64 { return o.spills }

// Aggregate is a materialization barrier implementing grouped
// projection: records group by the non-aggregating items, aggregates
// accumulate per group, and one row per group is emitted in
// first-appearance order. Zero input records with no grouping keys
// produce the single global group (count(*) = 0).
type Aggregate struct {
	child  Operator
	items  []Item
	cols   []string
	ev     *expr.Evaluator
	budget *budget

	out  []expr.Env
	idx  int
	done bool

	st       opState
	rows     int64
	batches  int64
	spilling bool
	parts    []*spillFile
	held     int64
	peak     int64
	spills   int64
}

// NewAggregate builds an Aggregate barrier over child.
func NewAggregate(child Operator, items []Item, cols []string, ev *expr.Evaluator) *Aggregate {
	return &Aggregate{child: child, items: items, cols: cols, ev: ev}
}

// Columns implements Operator.
func (o *Aggregate) Columns() []string { return o.cols }

// Open implements Operator.
func (o *Aggregate) Open() error {
	if err := o.st.open("Aggregate"); err != nil {
		return err
	}
	return o.child.Open()
}

// fill (the spilling hash aggregation) lives in spill.go.

// Next implements Operator.
func (o *Aggregate) Next() (Row, bool, error) {
	if !o.done {
		if err := o.fill(); err != nil {
			return Row{}, false, err
		}
		o.done = true
	}
	if o.idx >= len(o.out) {
		return Row{}, false, nil
	}
	env := o.out[o.idx]
	o.idx++
	o.rows++
	return Row{Env: env}, true, nil
}

// Close implements Operator. It releases any spill state: partition
// files still on disk (early-LIMIT abandonment, errors) are removed
// and the accounted budget is returned.
func (o *Aggregate) Close() {
	if !o.st.close() {
		return
	}
	for _, p := range o.parts {
		p.discard()
	}
	o.parts = nil
	o.budget.shrink(o.held)
	o.held = 0
	o.child.Close()
}

// Name implements Operator.
func (o *Aggregate) Name() string {
	return "Aggregate[barrier]" + describeItems(o.items) + barrierSuffix(o.rows, o.batches, o.peak, o.spills)
}

// Children implements Operator.
func (o *Aggregate) Children() []Operator { return []Operator{o.child} }

// RowsEmitted implements Operator.
func (o *Aggregate) RowsEmitted() int64 { return o.rows }

// PeakBytes reports the peak accounted group-state memory.
func (o *Aggregate) PeakBytes() int64 { return o.peak }

// SpillRuns reports how many hash partitions were spilled and replayed.
func (o *Aggregate) SpillRuns() int64 { return o.spills }

// Apply is the update barrier: it materializes its child into a driving
// table (in stream order — exactly the table the materializing executor
// would hand the clause) and applies an update-clause function to it,
// then streams the clause's output table. The barrier is what preserves
// the legacy dialect's record-order-dependent semantics (Section 4,
// Example 3) and the revised dialect's two-phase ChangeSet semantics
// under the streaming executor.
type Apply struct {
	child Operator
	label string
	cols  []string
	fn    func(*table.Table) (*table.Table, error)

	cur     *table.Cursor
	out     *table.Table
	outIdx  int
	done    bool
	st      opState
	rows    int64
	batches int64
}

// NewApply builds an update barrier over child. cols is the planner's
// prediction of the clause's output columns; fn's result must match.
func NewApply(child Operator, label string, cols []string, fn func(*table.Table) (*table.Table, error)) *Apply {
	return &Apply{child: child, label: label, cols: cols, fn: fn}
}

// Columns implements Operator.
func (o *Apply) Columns() []string { return o.cols }

// Open implements Operator.
func (o *Apply) Open() error {
	if err := o.st.open("Update"); err != nil {
		return err
	}
	return o.child.Open()
}

// fill materializes the child batch-at-a-time (one row-slice
// allocation per record, no per-record map) and applies the update
// function. Stream order is preserved — exactly the table the
// materializing executor would hand the clause.
func (o *Apply) fill() error {
	in := table.New(o.child.Columns()...)
	for {
		b, ok, err := o.child.NextBatch(BatchTarget)
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		in.AppendColumns(b.vals, b.n)
	}
	out, err := o.fn(in)
	if err != nil {
		return err
	}
	got := out.Columns()
	if len(got) != len(o.cols) {
		return internalErrorf("%s produced columns %v, planner predicted %v", o.label, got, o.cols)
	}
	for i := range got {
		if got[i] != o.cols[i] {
			return internalErrorf("%s produced columns %v, planner predicted %v", o.label, got, o.cols)
		}
	}
	o.out = out
	o.cur = out.Iter()
	return nil
}

// Next implements Operator.
func (o *Apply) Next() (Row, bool, error) {
	if !o.done {
		if err := o.fill(); err != nil {
			return Row{}, false, err
		}
		o.done = true
	}
	if !o.cur.Next() {
		return Row{}, false, nil
	}
	o.rows++
	return Row{Env: o.cur.Row()}, true, nil
}

// Close implements Operator.
func (o *Apply) Close() {
	if !o.st.close() {
		return
	}
	o.child.Close()
}

// Name implements Operator.
func (o *Apply) Name() string {
	return fmt.Sprintf("Update[barrier:writer-lock](%s)", o.label) + statsSuffix(o.rows, o.batches)
}

// Children implements Operator.
func (o *Apply) Children() []Operator { return []Operator{o.child} }

// RowsEmitted implements Operator.
func (o *Apply) RowsEmitted() int64 { return o.rows }

// Discard drains its child for effects and emits nothing: the plan of a
// query without RETURN, which outputs the empty zero-column table.
type Discard struct {
	child   Operator
	done    bool
	st      opState
	batches int64
}

// NewDiscard builds a Discard over child.
func NewDiscard(child Operator) *Discard { return &Discard{child: child} }

// Columns implements Operator.
func (o *Discard) Columns() []string { return nil }

// Open implements Operator.
func (o *Discard) Open() error {
	if err := o.st.open("Discard"); err != nil {
		return err
	}
	return o.child.Open()
}

// Next implements Operator.
func (o *Discard) Next() (Row, bool, error) {
	if o.done {
		return Row{}, false, nil
	}
	o.done = true
	for {
		_, ok, err := o.child.Next()
		if err != nil {
			return Row{}, false, err
		}
		if !ok {
			return Row{}, false, nil
		}
	}
}

// Close implements Operator.
func (o *Discard) Close() {
	if !o.st.close() {
		return
	}
	o.child.Close()
}

// Name implements Operator.
func (o *Discard) Name() string { return "Discard" + statsSuffix(0, o.batches) }

// Children implements Operator.
func (o *Discard) Children() []Operator { return []Operator{o.child} }

// RowsEmitted implements Operator.
func (o *Discard) RowsEmitted() int64 { return 0 }

// ---------------------------------------------------------------------
// Union
// ---------------------------------------------------------------------

// Union streams its members left to right: member i+1 is not pulled
// (and so none of its update barriers fire) until member i is
// exhausted, preserving the paper's sequential UNION semantics — each
// member sees the graph as modified by its predecessors (Section 8.2).
type Union struct {
	children []Operator
	idx      int
	st       opState
	rows     int64
	batches  int64
}

// NewUnion builds a Union. Members must agree on columns (checked by
// the builder).
func NewUnion(children []Operator) *Union { return &Union{children: children} }

// Columns implements Operator.
func (o *Union) Columns() []string { return o.children[0].Columns() }

// Open implements Operator.
func (o *Union) Open() error {
	if err := o.st.open("Union"); err != nil {
		return err
	}
	for _, c := range o.children {
		if err := c.Open(); err != nil {
			return err
		}
	}
	return nil
}

// Next implements Operator.
func (o *Union) Next() (Row, bool, error) {
	for o.idx < len(o.children) {
		row, ok, err := o.children[o.idx].Next()
		if err != nil {
			return Row{}, false, err
		}
		if ok {
			o.rows++
			return row, true, nil
		}
		o.idx++
	}
	return Row{}, false, nil
}

// Close implements Operator.
func (o *Union) Close() {
	if !o.st.close() {
		return
	}
	for _, c := range o.children {
		c.Close()
	}
}

// Name implements Operator.
func (o *Union) Name() string {
	return fmt.Sprintf("Union(%d members)", len(o.children)) + statsSuffix(o.rows, o.batches)
}

// Children implements Operator.
func (o *Union) Children() []Operator { return o.children }

// RowsEmitted implements Operator.
func (o *Union) RowsEmitted() int64 { return o.rows }
