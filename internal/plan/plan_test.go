package plan

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/expr"
	"repro/internal/table"
	"repro/internal/value"
)

// countingScan is a source operator that records how many rows were
// actually pulled from it — the direct observation that LIMIT-style
// early exit prunes upstream work.
type countingScan struct {
	n     int
	col   string
	i     int
	pulls int
	rows  int64
}

func (o *countingScan) Columns() []string { return []string{o.col} }
func (o *countingScan) Open() error       { o.i = 0; return nil }
func (o *countingScan) Next() (Row, bool, error) {
	o.pulls++
	if o.i >= o.n {
		return Row{}, false, nil
	}
	env := expr.Env{o.col: value.Int(int64(o.i))}
	o.i++
	o.rows++
	return Row{Env: env}, true, nil
}
func (o *countingScan) NextBatch(max int) (*Batch, bool, error) {
	return testBatchFromRows(o, max)
}
func (o *countingScan) Close()               {}
func (o *countingScan) Name() string         { return "CountingScan" }
func (o *countingScan) Children() []Operator { return nil }
func (o *countingScan) RowsEmitted() int64   { return o.rows }

// testBatchFromRows adapts a test source's Next to the batch
// discipline, pulling exactly as many rows as the batch holds (never a
// probe row past max) so early-exit pull counts stay observable. The
// production operators all batch natively; this adapter exists only
// for the synthetic test sources above.
func testBatchFromRows(op Operator, max int) (*Batch, bool, error) {
	max = clampMax(max)
	var b *Batch
	for i := 0; i < max; i++ {
		row, ok, err := op.Next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			break
		}
		if b == nil {
			b = newBatch(op.Columns(), max)
		}
		b.appendEnv(row.Env)
		if row.Src != nil || b.src != nil {
			for len(b.src) < b.n-1 {
				b.src = append(b.src, nil)
			}
			b.src = append(b.src, row.Src)
		}
	}
	if b == nil {
		return nil, false, nil
	}
	return b, true, nil
}

func intLit(n int64) ast.Expr { return &ast.Literal{Value: n} }

func TestLimitPullsExactlyK(t *testing.T) {
	src := &countingScan{n: 1000, col: "x"}
	lim := NewLimit(src, intLit(5), &expr.Evaluator{})
	out, err := Collect(lim)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 5 {
		t.Fatalf("rows = %d, want 5", out.Len())
	}
	if src.pulls != 5 {
		t.Errorf("source pulled %d times, want exactly 5 (early exit)", src.pulls)
	}
}

func TestLimitZeroPullsNothing(t *testing.T) {
	src := &countingScan{n: 1000, col: "x"}
	out, err := Collect(NewLimit(src, intLit(0), &expr.Evaluator{}))
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Fatalf("rows = %d, want 0", out.Len())
	}
	if src.pulls != 0 {
		t.Errorf("source pulled %d times, want 0", src.pulls)
	}
}

func TestSkipLimitComposition(t *testing.T) {
	src := &countingScan{n: 100, col: "x"}
	ev := &expr.Evaluator{}
	root := NewLimit(NewSkip(src, intLit(10), ev), intLit(3), ev)
	out, err := Collect(root)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 3 {
		t.Fatalf("rows = %d, want 3", out.Len())
	}
	if got := out.Get(0, "x"); got != value.Int(10) {
		t.Errorf("first row = %v, want 10", got)
	}
	if src.pulls != 13 {
		t.Errorf("source pulled %d times, want 13 (skip 10 + take 3)", src.pulls)
	}
}

func TestDistinctStreamsFirstOccurrences(t *testing.T) {
	tbl := table.New("x")
	for _, v := range []int64{3, 1, 3, 2, 1} {
		tbl.AppendRow(value.Int(v))
	}
	out, err := Collect(NewDistinct(NewTableScan(tbl)))
	if err != nil {
		t.Fatal(err)
	}
	var got []value.Value
	for i := 0; i < out.Len(); i++ {
		got = append(got, out.Get(i, "x"))
	}
	want := []value.Value{value.Int(3), value.Int(1), value.Int(2)}
	if len(got) != len(want) {
		t.Fatalf("rows = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("row %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestFilterAndProject(t *testing.T) {
	src := &countingScan{n: 10, col: "x"}
	ev := &expr.Evaluator{}
	pred := &ast.BinaryOp{Op: ast.OpGeq, Left: &ast.Variable{Name: "x"}, Right: intLit(8)}
	proj := NewProject(NewFilter(src, pred, ev),
		[]Item{{Expr: &ast.BinaryOp{Op: ast.OpMul, Left: &ast.Variable{Name: "x"}, Right: intLit(2)}, Alias: "y"}},
		[]string{"y"}, ev, false)
	out, err := Collect(proj)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 || out.Get(0, "y") != value.Int(16) || out.Get(1, "y") != value.Int(18) {
		t.Errorf("unexpected output:\n%s", out)
	}
}

func TestUnionSequencesMembers(t *testing.T) {
	a := &countingScan{n: 2, col: "x"}
	b := &countingScan{n: 2, col: "x"}
	out, err := Collect(NewUnion([]Operator{a, b}))
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 4 {
		t.Fatalf("rows = %d, want 4", out.Len())
	}
	if a.rows != 2 || b.rows != 2 {
		t.Errorf("member rows = %d, %d; want 2, 2", a.rows, b.rows)
	}
}

func TestExplainRendersTree(t *testing.T) {
	src := &countingScan{n: 10, col: "x"}
	ev := &expr.Evaluator{}
	root := NewLimit(NewDistinct(src), intLit(3), ev)
	out := Explain(root)
	lines := strings.Split(out, "\n")
	if len(lines) != 3 {
		t.Fatalf("explain lines = %d, want 3:\n%s", len(lines), out)
	}
	if lines[0] != "Limit(3)" || !strings.Contains(lines[1], "Distinct") || !strings.Contains(lines[2], "CountingScan") {
		t.Errorf("unexpected explain output:\n%s", out)
	}
	if !strings.HasPrefix(lines[1], "└─ ") || !strings.HasPrefix(lines[2], "   └─ ") {
		t.Errorf("unexpected indentation:\n%s", out)
	}
}

func TestCollectClosesAfterError(t *testing.T) {
	src := &countingScan{n: 10, col: "x"}
	ev := &expr.Evaluator{}
	// LIMIT 'x' is a type error surfaced on first pull.
	_, err := Collect(NewLimit(src, &ast.Literal{Value: "x"}, ev))
	if err == nil || !strings.Contains(err.Error(), "LIMIT expects a non-negative integer") {
		t.Fatalf("err = %v", err)
	}
}
