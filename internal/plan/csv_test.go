package plan

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/value"
)

func writeCSV(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "data.csv")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCSVReaderStreamsRows checks row-at-a-time binding in both header
// modes, including the short-row padding and empty-field-to-null
// conventions BindCSV has always applied.
func TestCSVReaderStreamsRows(t *testing.T) {
	path := writeCSV(t, "id,name\n1,ada\n2,\n3\n")

	r, err := OpenCSV(path, "", true)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var rows []value.Value
	for {
		v, ok, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		rows = append(rows, v)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	m2 := rows[1].(value.Map)
	if !value.IsNull(m2["name"]) {
		t.Errorf("empty field should bind null, got %v", m2["name"])
	}
	m3 := rows[2].(value.Map)
	if !value.IsNull(m3["name"]) {
		t.Errorf("missing field should bind null, got %v", m3["name"])
	}

	// The whole-file helper must agree with the streamed rows.
	bound, err := BindCSV(path, "", true)
	if err != nil {
		t.Fatal(err)
	}
	if len(bound) != len(rows) {
		t.Fatalf("BindCSV rows = %d, want %d", len(bound), len(rows))
	}
	for i := range rows {
		if value.Key(bound[i]) != value.Key(rows[i]) {
			t.Errorf("row %d: BindCSV %v != streamed %v", i, bound[i], rows[i])
		}
	}
}

// TestCSVReaderListMode covers the no-headers list binding and custom
// field terminators.
func TestCSVReaderListMode(t *testing.T) {
	path := writeCSV(t, "a;b\nc;d\n")
	r, err := OpenCSV(path, ";", false)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	v, ok, err := r.Next()
	if err != nil || !ok {
		t.Fatalf("first row: ok=%v err=%v", ok, err)
	}
	lst := v.(value.List)
	if len(lst) != 2 || lst[0] != value.String("a") {
		t.Errorf("row = %v", lst)
	}
}

// TestLoadCSVOperatorEarlyExit: the operator must not read past the
// rows the consumer pulls — a malformed record beyond the cut-off is
// never reached.
func TestLoadCSVOperatorEarlyExit(t *testing.T) {
	content := "1\n2\n\"unterminated\n"
	path := writeCSV(t, content)
	r, err := OpenCSV(path, "", false)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for i := 0; i < 2; i++ {
		if _, ok, err := r.Next(); !ok || err != nil {
			t.Fatalf("row %d: ok=%v err=%v", i, ok, err)
		}
	}
	// The third record is malformed; the error surfaces only if pulled.
	if _, ok, err := r.Next(); ok || err == nil {
		t.Fatalf("malformed record: ok=%v err=%v, want error", ok, err)
	}
}
