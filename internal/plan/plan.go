// Package plan lowers parsed Cypher statements into trees of streaming
// operators and executes them with a cursor (Volcano-style pull) model.
//
// The paper's clause semantics [[C]] : (G, T) -> (G', T') composes
// clauses as functions over whole driving tables. Operationally that
// composition does not require materializing every intermediate table:
// read-only clauses (MATCH, UNWIND, WITH/RETURN projections, WHERE,
// SKIP/LIMIT, DISTINCT) are linear in the records they consume and can
// stream row-at-a-time, which makes LIMIT-style early exit prune the
// pattern-match search space instead of enumerating it fully.
//
// Two kinds of operators deliberately break the stream with an explicit
// materialization barrier:
//
//   - Sort and Aggregate, which need the whole input by definition; and
//   - Apply, which wraps an update clause (CREATE, SET, REMOVE, DELETE,
//     MERGE, FOREACH). Updates consume their entire driving table before
//     any downstream clause runs, in both dialects: the legacy Cypher 9
//     semantics is record-order dependent (the paper's Section 4,
//     Example 3), so the barrier hands the update function a fully
//     materialized table in exactly the order the stream produced —
//     bit-for-bit the table the materializing executor would have built
//     — and the revised dialect's two-phase ChangeSet semantics needs
//     the full table for conflict detection anyway.
//
// Row order is deterministic end to end: every streaming operator
// preserves its input order and the pull discipline reproduces the
// nested-loop order of the materializing executor, so the paper's
// record-order reproductions (ScanOrder, Example 3) are unaffected.
//
// Operators support two pull disciplines: Next (one record at a time)
// and NextBatch (columnar batches of up to a requested row count, see
// Batch in batch.go). Both produce identical row sequences; batches
// amortize per-row overhead (map allocation, coroutine switches) and
// are the default executor path. A parent commits to exactly one
// discipline per child for a whole execution — the disciplines share
// underlying state (match cursors, barrier fills) and must not be
// mixed on the same edge.
//
// Barriers account the bytes they hold against an optional per-
// statement memory budget (see Builder.MemoryBudget): when over
// budget, Sort spills sorted runs to temp files and merges them back,
// and Aggregate/Distinct cap their hash state and spill overflow keys
// to hash partitions processed one at a time. Results — including row
// order and DISTINCT's first-occurrence choice — are identical with
// and without spilling; only peak memory changes.
package plan

import (
	"fmt"
	"strings"

	"repro/internal/expr"
	"repro/internal/table"
)

// Row is one record flowing through a pipeline: an environment defined
// on exactly the operator's columns (absent values are explicit nulls,
// mirroring table.Row). Src optionally carries the pre-projection
// environment of the record so a downstream Sort can evaluate ORDER BY
// keys over the input variables (Cypher allows this when the projection
// neither aggregates nor deduplicates).
type Row struct {
	Env expr.Env
	Src expr.Env
}

// Operator is a streaming operator: a cursor over records. The contract
// is Open, then Next until it reports no row, then Close. Operators are
// single-use; Close must be called even after an error (it releases
// match cursors and child resources).
type Operator interface {
	// Columns is the output column set, in order, known at build time.
	Columns() []string
	// Open prepares the operator and its children. It performs no work
	// on the graph: all effects and errors of execution surface in Next.
	Open() error
	// Next returns the next record. ok=false means end of stream.
	Next() (row Row, ok bool, err error)
	// NextBatch returns the next batch of 1..max records; ok=false means
	// end of stream (an empty batch is never returned with ok=true).
	// Row sequence is identical to Next's. A parent must use either
	// Next or NextBatch for a given child, never both.
	NextBatch(max int) (b *Batch, ok bool, err error)
	// Close releases resources, cascading to children. Idempotent.
	Close()
	// Name is a one-line description for EXPLAIN output.
	Name() string
	// Children returns the operator's inputs, for plan inspection.
	Children() []Operator
	// RowsEmitted reports how many records Next has returned so far,
	// making early-exit behaviour observable in tests and EXPLAIN.
	RowsEmitted() int64
}

// Collect executes a plan to completion, materializing its output into
// a table (the engine's statement boundary). Close is always called.
// It pulls columnar batches and appends them without per-row map
// allocation; CollectRows is the row-at-a-time equivalent.
func Collect(root Operator) (*table.Table, error) {
	defer root.Close()
	if err := root.Open(); err != nil {
		return nil, err
	}
	out := table.New(root.Columns()...)
	for {
		b, ok, err := root.NextBatch(BatchTarget)
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out.AppendColumns(b.vals, b.n)
	}
}

// CollectRows executes a plan to completion using the row-at-a-time
// pull discipline. Semantically identical to Collect; kept as the
// baseline the vectorized path is benchmarked and cross-checked
// against (core.ExecStreamingRows).
func CollectRows(root Operator) (*table.Table, error) {
	defer root.Close()
	if err := root.Open(); err != nil {
		return nil, err
	}
	out := table.New(root.Columns()...)
	for {
		row, ok, err := root.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out.AppendMap(row.Env)
	}
}

// Explain renders the operator tree, one operator per line, children
// indented under their parent.
func Explain(root Operator) string {
	var sb strings.Builder
	var rec func(op Operator, prefix string, childPrefix string)
	rec = func(op Operator, prefix, childPrefix string) {
		sb.WriteString(prefix)
		sb.WriteString(op.Name())
		sb.WriteString("\n")
		kids := op.Children()
		for i, k := range kids {
			if i == len(kids)-1 {
				rec(k, childPrefix+"└─ ", childPrefix+"   ")
			} else {
				rec(k, childPrefix+"├─ ", childPrefix+"│  ")
			}
		}
	}
	rec(root, "", "")
	return strings.TrimRight(sb.String(), "\n")
}

// normalize returns an environment defined on exactly cols, copying
// values from env and filling absent columns with explicit nulls. Every
// operator emits normalized rows so downstream pattern matching treats
// a projected-away or optional-null variable exactly like a null table
// cell (the materializing executor gets this from table.Row).
func normalize(cols []string, env expr.Env) expr.Env {
	out := make(expr.Env, len(cols))
	for _, c := range cols {
		if v, ok := env[c]; ok && v != nil {
			out[c] = v
		} else {
			out[c] = nullValue
		}
	}
	return out
}

// internalErrorf marks invariant violations of the planner itself
// (e.g. an update clause producing columns the planner did not
// predict); user-level errors never use it.
func internalErrorf(format string, args ...any) error {
	return fmt.Errorf("plan: internal error: "+format, args...)
}
