package plan

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"

	"repro/internal/ast"
	"repro/internal/expr"
	"repro/internal/graph"
	"repro/internal/value"
)

// Spill tuning. minSpillRows keeps runs from degenerating to one row
// under absurdly small budgets (so peak memory is budget plus at most
// minSpillRows rows of slack); maxMergeWidth bounds simultaneously
// open run files — when exceeded, existing runs are compacted into one
// by an intermediate merge. spillParts is the hash-partition fan-out
// of the spilling Aggregate/Distinct: each deferred partition is
// processed alone, so their resident state is roughly 1/spillParts of
// the overflowed key space (single-level partitioning, documented
// limitation).
const (
	minSpillRows  = 16
	maxMergeWidth = 16
	spillParts    = 8
)

// spillRow is the unit of spilled data: a row's values plus whichever
// ordering metadata its barrier needs — a global intake sequence
// number (all barriers; ties and first-occurrence order), sort keys
// (external sort), and the group/distinct key string (hash
// partitioning).
type spillRow struct {
	seq  int64
	key  string
	keys []value.Value
	vals []value.Value
}

var spillLive atomic.Int64

// SpillFilesLive reports the number of spill temp files currently on
// disk across the process, for leak assertions in tests (barriers
// remove each file as soon as its run is consumed, and Close removes
// any remainder even on error or early-LIMIT abandonment).
func SpillFilesLive() int64 { return spillLive.Load() }

// spillDirCfg holds the configured spill directory ("" = os.TempDir()).
var spillDirCfg atomic.Value

// SetSpillDir directs subsequent spill temp files to dir for the whole
// process (the empty string restores the default, os.TempDir()).
func SetSpillDir(dir string) { spillDirCfg.Store(dir) }

// SpillDir reports the directory spill temp files are created in.
func SpillDir() string {
	if d, ok := spillDirCfg.Load().(string); ok && d != "" {
		return d
	}
	return os.TempDir()
}

// spillFilePrefix tags this process's spill files with its pid, so a
// sweep after a crash can tell dead owners' orphans from files of
// still-running engines.
func spillFilePrefix() string { return fmt.Sprintf("repro-spill-p%d-", os.Getpid()) }

// SweepSpillOrphans removes spill temp files in dir (the configured
// spill directory when dir is empty) whose owning process is no longer
// alive — the files a killed process had no chance to clean up. Files
// of live processes, of this process, and files whose owner cannot be
// determined are left alone. It returns the number of files removed.
// Engine construction calls this once per process, so restarting after
// a crash reclaims the disk the crash leaked.
func SweepSpillOrphans(dir string) (int, error) {
	if dir == "" {
		dir = SpillDir()
	}
	matches, err := filepath.Glob(filepath.Join(dir, "repro-spill-p*"))
	if err != nil {
		return 0, err
	}
	removed := 0
	for _, path := range matches {
		rest := strings.TrimPrefix(filepath.Base(path), "repro-spill-p")
		dash := strings.IndexByte(rest, '-')
		if dash <= 0 {
			continue
		}
		pid, err := strconv.Atoi(rest[:dash])
		if err != nil || pid <= 0 || pid == os.Getpid() {
			continue
		}
		if pidAlive(pid) {
			continue
		}
		if err := os.Remove(path); err == nil {
			removed++
		}
	}
	return removed, nil
}

// pidAlive reports whether a process with the given pid exists (signal
// 0 probes existence without delivering anything; EPERM still means
// the process is there).
func pidAlive(pid int) bool {
	proc, err := os.FindProcess(pid)
	if err != nil {
		return false
	}
	err = proc.Signal(syscall.Signal(0))
	return err == nil || errors.Is(err, syscall.EPERM)
}

// ---------------------------------------------------------------------
// Value codec — delegated to the shared binary codec in internal/graph
// (binval.go), which the write-ahead log uses too. Floats round-trip
// by bit pattern (NaN included), entities by id, lists/maps/paths
// recursively — every value kind is covered, so any row the executor
// produces can spill.
// ---------------------------------------------------------------------

func writeVarint(w *bufio.Writer, x int64) error   { return graph.WriteVarint(w, x) }
func writeUvarint(w *bufio.Writer, x uint64) error { return graph.WriteUvarint(w, x) }

func writeSpillString(w *bufio.Writer, s string) error { return graph.WriteBinaryString(w, s) }

func readSpillString(r *bufio.Reader) (string, error) { return graph.ReadBinaryString(r) }

func writeVal(w *bufio.Writer, v value.Value) error { return graph.WriteBinaryValue(w, v) }

func readVal(r *bufio.Reader) (value.Value, error) { return graph.ReadBinaryValue(r) }

func writeSpillRow(w *bufio.Writer, row spillRow) error {
	if err := writeVarint(w, row.seq); err != nil {
		return err
	}
	if err := writeSpillString(w, row.key); err != nil {
		return err
	}
	if err := writeUvarint(w, uint64(len(row.keys))); err != nil {
		return err
	}
	for _, v := range row.keys {
		if err := writeVal(w, v); err != nil {
			return err
		}
	}
	if err := writeUvarint(w, uint64(len(row.vals))); err != nil {
		return err
	}
	for _, v := range row.vals {
		if err := writeVal(w, v); err != nil {
			return err
		}
	}
	return nil
}

func readSpillRow(r *bufio.Reader) (spillRow, error) {
	var row spillRow
	var err error
	if row.seq, err = binary.ReadVarint(r); err != nil {
		return row, err
	}
	if row.key, err = readSpillString(r); err != nil {
		return row, err
	}
	nk, err := binary.ReadUvarint(r)
	if err != nil {
		return row, err
	}
	if nk > 0 {
		row.keys = make([]value.Value, nk)
		for i := range row.keys {
			if row.keys[i], err = readVal(r); err != nil {
				return row, err
			}
		}
	}
	nv, err := binary.ReadUvarint(r)
	if err != nil {
		return row, err
	}
	if nv > 0 {
		row.vals = make([]value.Value, nv)
		for i := range row.vals {
			if row.vals[i], err = readVal(r); err != nil {
				return row, err
			}
		}
	}
	return row, nil
}

// ---------------------------------------------------------------------
// Spill files and run merging
// ---------------------------------------------------------------------

// spillFile is a temp file holding encoded spill rows: write-once via
// add, then read back via stream. discard (or stream-close) removes
// the file from disk.
type spillFile struct {
	f *os.File
	w *bufio.Writer
	n int
}

func newSpillFile() (*spillFile, error) {
	f, err := os.CreateTemp(SpillDir(), spillFilePrefix()+"*")
	if err != nil {
		return nil, fmt.Errorf("spill: %w", err)
	}
	spillLive.Add(1)
	return &spillFile{f: f, w: bufio.NewWriterSize(f, 64<<10)}, nil
}

func (s *spillFile) add(r spillRow) error {
	s.n++
	return writeSpillRow(s.w, r)
}

// stream flushes and rewinds the file for reading. On error the file
// is discarded.
func (s *spillFile) stream() (*spillStream, error) {
	if err := s.w.Flush(); err != nil {
		s.discard()
		return nil, err
	}
	if _, err := s.f.Seek(0, io.SeekStart); err != nil {
		s.discard()
		return nil, err
	}
	return &spillStream{sf: s, r: bufio.NewReaderSize(s.f, 64<<10), remaining: s.n}, nil
}

// discard closes and removes the file. Idempotent.
func (s *spillFile) discard() {
	if s == nil || s.f == nil {
		return
	}
	name := s.f.Name()
	s.f.Close()
	os.Remove(name)
	s.f = nil
	spillLive.Add(-1)
}

type spillStream struct {
	sf        *spillFile
	r         *bufio.Reader
	remaining int
}

func (st *spillStream) next() (spillRow, bool, error) {
	if st.remaining == 0 {
		return spillRow{}, false, nil
	}
	st.remaining--
	row, err := readSpillRow(st.r)
	if err != nil {
		return spillRow{}, false, err
	}
	return row, true, nil
}

func (st *spillStream) close() { st.sf.discard() }

// mergeSource is one pre-sorted input of a k-way merge.
type mergeSource interface {
	next() (spillRow, bool, error)
	close()
}

// memStream replays an in-memory (already sorted) run.
type memStream struct {
	rows []spillRow
	i    int
}

func (m *memStream) next() (spillRow, bool, error) {
	if m.i >= len(m.rows) {
		return spillRow{}, false, nil
	}
	r := m.rows[m.i]
	m.i++
	return r, true, nil
}

func (m *memStream) close() {}

// runMerger merges pre-sorted sources into one stream under less.
// Sources are closed (removing their files) the moment they exhaust.
// The source count is small — bounded by maxMergeWidth plus one — so a
// linear scan over the current heads beats heap bookkeeping.
type runMerger struct {
	srcs  []mergeSource
	heads []spillRow
	live  []bool
	less  func(a, b spillRow) bool
}

// newRunMerger primes every source; on error all sources are closed.
func newRunMerger(srcs []mergeSource, less func(a, b spillRow) bool) (*runMerger, error) {
	m := &runMerger{srcs: srcs, heads: make([]spillRow, len(srcs)), live: make([]bool, len(srcs)), less: less}
	for i, s := range srcs {
		r, ok, err := s.next()
		if err != nil {
			m.close()
			return nil, err
		}
		if ok {
			m.heads[i], m.live[i] = r, true
		} else {
			s.close()
			m.srcs[i] = nil
		}
	}
	return m, nil
}

func (m *runMerger) next() (spillRow, bool, error) {
	best := -1
	for i, ok := range m.live {
		if !ok {
			continue
		}
		if best < 0 || m.less(m.heads[i], m.heads[best]) {
			best = i
		}
	}
	if best < 0 {
		return spillRow{}, false, nil
	}
	out := m.heads[best]
	r, ok, err := m.srcs[best].next()
	if err != nil {
		return spillRow{}, false, err
	}
	if ok {
		m.heads[best] = r
	} else {
		m.live[best] = false
		m.srcs[best].close()
		m.srcs[best] = nil
	}
	return out, true, nil
}

func (m *runMerger) close() {
	for i, s := range m.srcs {
		if s != nil {
			s.close()
			m.srcs[i] = nil
		}
		m.live[i] = false
	}
}

// writeRun spills the given (already sorted) rows into a fresh file.
func writeRun(rows []spillRow) (*spillFile, error) {
	f, err := newSpillFile()
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		if err := f.add(r); err != nil {
			f.discard()
			return nil, err
		}
	}
	return f, nil
}

// compactRuns merges sorted runs into one bigger run on disk, bounding
// the number of files the final merge must hold open. Merging sorted
// runs yields a sorted run under the same comparator (the seq
// tie-break keeps it total), so compaction never perturbs the final
// order.
func compactRuns(runs []*spillFile, less func(a, b spillRow) bool) (*spillFile, error) {
	srcs := make([]mergeSource, 0, len(runs))
	for _, f := range runs {
		st, err := f.stream()
		if err != nil {
			for _, s := range srcs {
				s.close()
			}
			return nil, err
		}
		srcs = append(srcs, st)
	}
	m, err := newRunMerger(srcs, less)
	if err != nil {
		return nil, err
	}
	out, err := newSpillFile()
	if err != nil {
		m.close()
		return nil, err
	}
	for {
		r, ok, err := m.next()
		if err != nil {
			m.close()
			out.discard()
			return nil, err
		}
		if !ok {
			break
		}
		if err := out.add(r); err != nil {
			m.close()
			out.discard()
			return nil, err
		}
	}
	m.close()
	return out, nil
}

func openSpillParts() ([]*spillFile, error) {
	parts := make([]*spillFile, spillParts)
	for i := range parts {
		f, err := newSpillFile()
		if err != nil {
			for _, p := range parts[:i] {
				p.discard()
			}
			return nil, err
		}
		parts[i] = f
	}
	return parts, nil
}

func spillPart(key string) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % spillParts)
}

// ---------------------------------------------------------------------
// Byte accounting helpers
// ---------------------------------------------------------------------

func spillRowBytes(r spillRow) int64 {
	n := int64(64) + int64(len(r.key))
	for _, v := range r.keys {
		n += value.ApproxSize(v)
	}
	for _, v := range r.vals {
		n += value.ApproxSize(v)
	}
	return n
}

func envApproxBytes(e expr.Env) int64 {
	n := int64(48)
	for k, v := range e {
		n += 16 + int64(len(k)) + value.ApproxSize(v)
	}
	return n
}

func envFromVals(cols []string, vals []value.Value) expr.Env {
	env := make(expr.Env, len(cols))
	for j, c := range cols {
		env[c] = vals[j]
	}
	return env
}

// ---------------------------------------------------------------------
// External sort (Sort barrier)
// ---------------------------------------------------------------------

// sortRowLess orders spill rows by the ORDER BY keys with the global
// intake sequence as final tie-break. Because every row has a unique
// seq the order is total, so a plain sort.Slice of a run — and any
// merge of runs under the same comparator — reproduces exactly the
// order sort.SliceStable over the whole input would have produced.
func sortRowLess(sorts []*ast.SortItem) func(a, b spillRow) bool {
	return func(a, b spillRow) bool {
		for s, item := range sorts {
			c := value.CompareOrder(a.keys[s], b.keys[s])
			if item.Desc {
				c = -c
			}
			if c != 0 {
				return c < 0
			}
		}
		return a.seq < b.seq
	}
}

func sortSpillRows(rows []spillRow, less func(a, b spillRow) bool) {
	sort.Slice(rows, func(i, j int) bool { return less(rows[i], rows[j]) })
}

// fill drains the child, computing each row's sort keys at intake
// (over the row's source environment overlaid with its columns, as the
// in-memory sort did) and accumulating rows up to the memory budget.
// Over budget, the pending rows are sorted and spilled as one run;
// replay is then a k-way merge of the runs plus the final in-memory
// tail. With no budget (the default) nothing ever spills and replay is
// a plain in-memory sorted slice.
func (o *Sort) fill() (err error) {
	defer func() {
		if err != nil {
			for _, f := range o.runs {
				f.discard()
			}
			o.runs = nil
		}
	}()
	if ex, ok := o.child.(*Exchange); ok {
		return o.fillParallel(ex)
	}
	less := sortRowLess(o.sorts)
	cols := o.child.Columns()
	o.ocols = cols
	scratch := make(expr.Env, len(cols)+4)
	var pend []spillRow
	var pendBytes int64
	seq := int64(0)
	for {
		b, ok, err2 := o.child.NextBatch(BatchTarget)
		if err2 != nil {
			return err2
		}
		if !ok {
			break
		}
		for i := 0; i < b.n; i++ {
			if b.src != nil && b.src[i] != nil {
				for k, v := range b.src[i] {
					scratch[k] = v
				}
			}
			b.loadEnv(scratch, i)
			r := spillRow{seq: seq, keys: make([]value.Value, len(o.sorts)), vals: b.rowVals(i)}
			seq++
			for s, item := range o.sorts {
				v, err2 := o.ev.Eval(item.Expr, scratch)
				if err2 != nil {
					return err2
				}
				r.keys[s] = v
			}
			pend = append(pend, r)
			if o.budget.limited() {
				nb := spillRowBytes(r)
				pendBytes += nb
				o.held += nb
				o.budget.grow(nb)
				if o.held > o.peak {
					o.peak = o.held
				}
				if o.budget.over() && len(pend) >= minSpillRows {
					sortSpillRows(pend, less)
					f, err2 := writeRun(pend)
					if err2 != nil {
						return err2
					}
					o.runs = append(o.runs, f)
					o.spills++
					o.budget.shrink(pendBytes)
					o.held -= pendBytes
					pend, pendBytes = pend[:0], 0
					if len(o.runs) >= maxMergeWidth {
						merged, err2 := compactRuns(o.runs, less)
						if err2 != nil {
							o.runs = nil // compactRuns closed them
							return err2
						}
						o.runs = []*spillFile{merged}
					}
				}
			}
		}
	}
	sortSpillRows(pend, less)
	if len(o.runs) == 0 {
		o.mem = pend
		return nil
	}
	srcs := make([]mergeSource, 0, len(o.runs)+1)
	for _, f := range o.runs {
		st, err2 := f.stream()
		if err2 != nil {
			for _, s := range srcs {
				s.close()
			}
			o.runs = nil // stream/discard handled the rest via defer
			return err2
		}
		srcs = append(srcs, st)
	}
	o.runs = nil // ownership moved to the merge streams
	srcs = append(srcs, &memStream{rows: pend})
	o.merged, err = newRunMerger(srcs, less)
	return err
}

// fillParallel is the parallel-aware intake: instead of gathering the
// exchange's morsels serially, it drains them in callback mode —
// each worker sorts and (over budget) spills its own runs, with the
// statement's memory budget shared atomically across workers — and
// merges everything with the ordinary k-way run merger.
//
// Output is bit-identical to the serial sort: every row gets the
// composite sequence morsel<<morselSeqBits | rowInMorsel, whose
// lexicographic (morsel, row) order is exactly the serial intake
// order, so the comparator's seq tie-break reproduces
// sort.SliceStable's stability at any parallelism. Sort keys are
// evaluated on the workers (shared evaluator, pure reads), so ORDER BY
// key computation parallelizes too.
//
// Called from fill, whose defer discards o.runs on error.
func (o *Sort) fillParallel(ex *Exchange) error {
	less := sortRowLess(o.sorts)
	cols := ex.Columns()
	o.ocols = cols
	type wstate struct {
		scratch   expr.Env
		pend      []spillRow
		pendBytes int64
		morsel    int
		inMorsel  int64
		runs      []*spillFile
	}
	states := make([]*wstate, ex.poolSize())
	var held, peak, spills atomic.Int64
	err := ex.drainParallel(func(wid, morsel int, b *Batch) error {
		ws := states[wid]
		if ws == nil {
			ws = &wstate{scratch: make(expr.Env, len(cols)+4), morsel: -1}
			states[wid] = ws
		}
		if morsel != ws.morsel {
			ws.morsel, ws.inMorsel = morsel, 0
		}
		for i := 0; i < b.n; i++ {
			if b.src != nil && b.src[i] != nil {
				for k, v := range b.src[i] {
					ws.scratch[k] = v
				}
			}
			b.loadEnv(ws.scratch, i)
			r := spillRow{
				seq:  int64(morsel)<<morselSeqBits | ws.inMorsel,
				keys: make([]value.Value, len(o.sorts)),
				vals: b.rowVals(i),
			}
			ws.inMorsel++
			for s, item := range o.sorts {
				v, err := o.ev.Eval(item.Expr, ws.scratch)
				if err != nil {
					return err
				}
				r.keys[s] = v
			}
			ws.pend = append(ws.pend, r)
			if o.budget.limited() {
				nb := spillRowBytes(r)
				ws.pendBytes += nb
				o.budget.grow(nb)
				if h := held.Add(nb); h > peak.Load() {
					// Racy max is fine: peak is a reporting counter.
					peak.Store(h)
				}
				if o.budget.over() && len(ws.pend) >= minSpillRows {
					sortSpillRows(ws.pend, less)
					f, err := writeRun(ws.pend)
					if err != nil {
						return err
					}
					ws.runs = append(ws.runs, f)
					spills.Add(1)
					o.budget.shrink(ws.pendBytes)
					held.Add(-ws.pendBytes)
					ws.pend, ws.pendBytes = ws.pend[:0], 0
					if len(ws.runs) >= maxMergeWidth {
						merged, err := compactRuns(ws.runs, less)
						ws.runs = nil // compactRuns closed them
						if err != nil {
							return err
						}
						ws.runs = []*spillFile{merged}
					}
				}
			}
		}
		return nil
	})
	// Workers have exited: collect their runs and in-memory tails (no
	// concurrency from here on). Runs go to o.runs first so fill's
	// defer discards them on any error below.
	var tails [][]spillRow
	for _, ws := range states {
		if ws == nil {
			continue
		}
		o.runs = append(o.runs, ws.runs...)
		if len(ws.pend) > 0 {
			sortSpillRows(ws.pend, less)
			tails = append(tails, ws.pend)
		}
	}
	o.held, o.peak, o.spills = held.Load(), peak.Load(), spills.Load()
	if err != nil {
		return err
	}
	if len(o.runs) == 0 {
		switch len(tails) {
		case 0:
			o.mem = nil
			return nil
		case 1:
			o.mem = tails[0]
			return nil
		}
	}
	// Bound the final merge width over the combined file runs (each
	// worker already bounded its own, but their union may exceed it).
	for len(o.runs) > maxMergeWidth {
		merged, err := compactRuns(o.runs[:maxMergeWidth], less)
		if err != nil {
			o.runs = o.runs[maxMergeWidth:] // compacted ones are closed
			return err
		}
		o.runs = append(o.runs[maxMergeWidth:], merged)
	}
	srcs := make([]mergeSource, 0, len(o.runs)+len(tails))
	for i, f := range o.runs {
		st, err := f.stream()
		if err != nil {
			for _, s := range srcs {
				s.close()
			}
			o.runs = o.runs[i+1:] // f discarded itself; defer discards the rest
			return err
		}
		srcs = append(srcs, st)
	}
	o.runs = nil // ownership moved to the merge streams
	for _, t := range tails {
		srcs = append(srcs, &memStream{rows: t})
	}
	var err2 error
	o.merged, err2 = newRunMerger(srcs, less)
	return err2
}

// next1 replays one row of the sorted output.
func (o *Sort) next1() (spillRow, bool, error) {
	if o.merged != nil {
		return o.merged.next()
	}
	if o.memIdx >= len(o.mem) {
		return spillRow{}, false, nil
	}
	r := o.mem[o.memIdx]
	o.memIdx++
	return r, true, nil
}

// ---------------------------------------------------------------------
// Spilling hash aggregation (Aggregate barrier)
// ---------------------------------------------------------------------

// fill drains the child into a resident hash of groups. When the
// budget overflows, no further resident groups are admitted: rows of
// already-resident keys keep aggregating in place, rows of new keys
// spill to hash partitions by group key. Each partition is then
// processed alone (its groups are disjoint from the residents' and
// from other partitions'), so deferred state is roughly 1/spillParts
// of the overflowed key space at a time.
//
// Output order is first-appearance of the group key: residents were
// all admitted before the first spilled row (admission stops at
// overflow), so every deferred group's first occurrence is later than
// every resident's — emitting residents in admission order, then
// deferred groups sorted by their first-occurrence sequence, is
// exactly the order the in-memory operator produces.
func (o *Aggregate) fill() (err error) {
	defer func() {
		if err != nil {
			for _, p := range o.parts {
				p.discard()
			}
			o.parts = nil
		}
	}()
	var keyItems []int
	var aggCalls []*ast.FuncCall
	for idx, it := range o.items {
		if !ast.ContainsAggregate(it.Expr) {
			keyItems = append(keyItems, idx)
		}
		ast.Walk(it.Expr, func(e ast.Expr) bool {
			if f, ok := e.(*ast.FuncCall); ok && ast.AggregateFuncs[f.Name] {
				aggCalls = append(aggCalls, f)
				return false // aggregates cannot nest
			}
			return true
		})
	}

	type group struct {
		rep      expr.Env
		aggs     []expr.Aggregator
		firstSeq int64
	}
	newGroup := func(rep expr.Env, seq int64) (*group, error) {
		grp := &group{rep: rep, firstSeq: seq}
		for _, f := range aggCalls {
			agg, err := expr.NewAggregator(f.Name, f.Distinct, f.Star)
			if err != nil {
				return nil, err
			}
			grp.aggs = append(grp.aggs, agg)
		}
		return grp, nil
	}
	addRow := func(grp *group, env expr.Env) error {
		for ai, f := range aggCalls {
			var v value.Value = nullValue
			if !f.Star {
				if len(f.Args) != 1 {
					return fmt.Errorf("%s() expects 1 argument", f.Name)
				}
				var err error
				v, err = o.ev.Eval(f.Args[0], env)
				if err != nil {
					return err
				}
			}
			if o.budget.limited() {
				if nb := grp.aggs[ai].Retains(v); nb > 0 {
					o.held += nb
					o.budget.grow(nb)
					if o.held > o.peak {
						o.peak = o.held
					}
				}
			}
			if err := grp.aggs[ai].Add(v); err != nil {
				return err
			}
		}
		return nil
	}
	finalize := func(grp *group) (expr.Env, error) {
		aggResults := make(map[ast.Expr]value.Value, len(aggCalls))
		for ai, f := range aggCalls {
			aggResults[f] = grp.aggs[ai].Result()
		}
		o.ev.AggResults = aggResults
		defer func() { o.ev.AggResults = nil }()
		out := make(expr.Env, len(o.items))
		for _, it := range o.items {
			v, err := o.ev.Eval(it.Expr, grp.rep)
			if err != nil {
				return nil, err
			}
			out[it.Alias] = v
		}
		return normalize(o.cols, out), nil
	}

	groups := make(map[string]*group)
	var order []string
	cols := o.child.Columns()
	scratch := make(expr.Env, len(cols))
	n := 0
	seq := int64(0)
	for {
		b, ok, err2 := o.child.NextBatch(BatchTarget)
		if err2 != nil {
			return err2
		}
		if !ok {
			break
		}
		for i := 0; i < b.n; i++ {
			n++
			b.loadEnv(scratch, i)
			keyVals := make([]value.Value, len(keyItems))
			for k, ki := range keyItems {
				v, err2 := o.ev.Eval(o.items[ki].Expr, scratch)
				if err2 != nil {
					return err2
				}
				keyVals[k] = v
			}
			key := value.KeyList(keyVals)
			grp, resident := groups[key]
			if !resident {
				if o.spilling {
					if err2 := o.parts[spillPart(key)].add(spillRow{seq: seq, key: key, vals: b.rowVals(i)}); err2 != nil {
						return err2
					}
					seq++
					continue
				}
				grp, err = newGroup(b.Env(i), seq)
				if err != nil {
					return err
				}
				groups[key] = grp
				order = append(order, key)
				if o.budget.limited() {
					nb := int64(len(key)) + envApproxBytes(grp.rep) + 96
					o.held += nb
					o.budget.grow(nb)
					if o.held > o.peak {
						o.peak = o.held
					}
					if o.budget.over() && !o.spilling {
						if o.parts, err = openSpillParts(); err != nil {
							return err
						}
						o.spilling = true
					}
				}
			}
			if err = addRow(grp, scratch); err != nil {
				return err
			}
			seq++
		}
	}

	// Zero input rows with no grouping keys: a single global group.
	if n == 0 && len(keyItems) == 0 {
		grp, err2 := newGroup(expr.Env{}, 0)
		if err2 != nil {
			return err2
		}
		groups["_"] = grp
		order = append(order, "_")
	}

	for _, key := range order {
		env, err2 := finalize(groups[key])
		if err2 != nil {
			return err2
		}
		o.out = append(o.out, env)
	}
	if !o.spilling {
		return nil
	}

	// Deferred phase: process each partition alone. Group keys hash to
	// exactly one partition, so a partition's groups are complete and
	// disjoint from everything else. Finalized output rows accumulate
	// in o.out like any result set — the budget bounds barrier state,
	// not the statement's output.
	type outGroup struct {
		firstSeq int64
		env      expr.Env
	}
	var deferred []outGroup
	parts := o.parts
	o.parts = nil
	defer func() {
		if err != nil {
			for _, p := range parts {
				p.discard()
			}
		}
	}()
	for pi, p := range parts {
		st, err2 := p.stream()
		if err2 != nil {
			parts[pi] = nil
			return err2
		}
		parts[pi] = nil
		o.spills++
		pgroups := make(map[string]*group)
		var porder []string
		partStart := o.held
		for {
			r, ok, err2 := st.next()
			if err2 != nil {
				st.close()
				return err2
			}
			if !ok {
				break
			}
			for j, c := range cols {
				scratch[c] = r.vals[j]
			}
			grp, ok2 := pgroups[r.key]
			if !ok2 {
				grp, err = newGroup(envFromVals(cols, r.vals), r.seq)
				if err != nil {
					st.close()
					return err
				}
				pgroups[r.key] = grp
				porder = append(porder, r.key)
				if o.budget.limited() {
					nb := int64(len(r.key)) + envApproxBytes(grp.rep) + 96
					o.held += nb
					o.budget.grow(nb)
					if o.held > o.peak {
						o.peak = o.held
					}
				}
			}
			if err = addRow(grp, scratch); err != nil {
				st.close()
				return err
			}
		}
		st.close()
		for _, key := range porder {
			env, err2 := finalize(pgroups[key])
			if err2 != nil {
				return err2
			}
			deferred = append(deferred, outGroup{firstSeq: pgroups[key].firstSeq, env: env})
		}
		// Release this partition's accounted state before the next.
		o.budget.shrink(o.held - partStart)
		o.held = partStart
	}
	sort.Slice(deferred, func(i, j int) bool { return deferred[i].firstSeq < deferred[j].firstSeq })
	for _, g := range deferred {
		o.out = append(o.out, g.env)
	}
	return nil
}

// ---------------------------------------------------------------------
// Spilling DISTINCT (batch path)
// ---------------------------------------------------------------------

// distinctNextBatch implements the batched DISTINCT. Under budget it
// streams first occurrences exactly like the row path. On overflow the
// seen-set stops growing: rows whose key is resident are duplicates
// and are dropped; rows with new keys spill (with their intake
// sequence number) to hash partitions. After the child is exhausted,
// each partition is processed alone — first occurrence per key within
// a partition is decidable in file order, which is seq order — and the
// survivors, re-spilled per partition, are merged back by seq.
//
// Every spilled row's seq is greater than every streamed row's (the
// seen-set stops admitting at overflow), so streamed-then-merged
// output is globally in first-occurrence order: identical to the row
// path's.
func (o *Distinct) distinctNextBatch(max int) (*Batch, bool, error) {
	if o.dcols == nil {
		o.dcols = o.child.Columns()
		o.keybuf = make([]value.Value, len(o.dcols))
	}
	for !o.drained {
		in, ok, err := o.child.NextBatch(max)
		if err != nil {
			return nil, false, err
		}
		if !ok {
			o.drained = true
			break
		}
		sel := o.selbuf[:0]
		for i := 0; i < in.n; i++ {
			for j := range o.dcols {
				o.keybuf[j] = in.vals[j][i]
			}
			key := value.KeyList(o.keybuf)
			seq := o.seq
			o.seq++
			if o.seen[key] {
				continue
			}
			if o.spilling {
				if err := o.parts[spillPart(key)].add(spillRow{seq: seq, key: key, vals: in.rowVals(i)}); err != nil {
					return nil, false, err
				}
				continue
			}
			o.seen[key] = true
			if o.budget.limited() {
				nb := int64(len(key)) + 48
				o.held += nb
				o.budget.grow(nb)
				if o.held > o.peak {
					o.peak = o.held
				}
				if o.budget.over() && !o.spilling {
					if o.parts, err = openSpillParts(); err != nil {
						return nil, false, err
					}
					o.spilling = true
				}
			}
			sel = append(sel, i)
		}
		o.selbuf = sel
		if len(sel) == 0 {
			continue
		}
		o.rows += int64(len(sel))
		o.batches++
		if len(sel) == in.n {
			// Distinct breaks the row/source-record correspondence, so
			// the source environments must not travel past it.
			in.src = nil
			return in, true, nil
		}
		out := newBatch(in.cols, len(sel))
		for j := range out.vals {
			for _, i := range sel {
				out.vals[j] = append(out.vals[j], in.vals[j][i])
			}
		}
		out.n = len(sel)
		return out, true, nil
	}
	if !o.spilling {
		return nil, false, nil
	}
	if o.merged == nil {
		if err := o.buildDeferred(); err != nil {
			return nil, false, err
		}
	}
	max = clampMax(max)
	b := newBatch(o.dcols, max)
	for b.n < max {
		r, ok, err := o.merged.next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			break
		}
		b.appendVals(r.vals)
	}
	if b.n == 0 {
		return nil, false, nil
	}
	o.rows += int64(b.n)
	o.batches++
	return b, true, nil
}

// buildDeferred runs the per-partition survivor pass and sets up the
// seq-order merge of the survivor files. Only one partition's seen-set
// is resident at a time.
func (o *Distinct) buildDeferred() (err error) {
	var srcs []mergeSource
	defer func() {
		if err != nil {
			for _, s := range srcs {
				s.close()
			}
		}
	}()
	parts := o.parts
	o.parts = nil
	defer func() {
		if err != nil {
			for _, p := range parts {
				p.discard()
			}
		}
	}()
	for pi, p := range parts {
		st, err2 := p.stream()
		if err2 != nil {
			parts[pi] = nil
			return err2
		}
		parts[pi] = nil
		o.spills++
		surv, err2 := newSpillFile()
		if err2 != nil {
			st.close()
			return err2
		}
		pseen := make(map[string]bool)
		pheld := int64(0)
		for {
			r, ok, err2 := st.next()
			if err2 != nil {
				st.close()
				surv.discard()
				return err2
			}
			if !ok {
				break
			}
			if pseen[r.key] {
				continue
			}
			pseen[r.key] = true
			if o.budget.limited() {
				pheld += int64(len(r.key)) + 48
				if o.held+pheld > o.peak {
					o.peak = o.held + pheld
				}
			}
			if err2 := surv.add(spillRow{seq: r.seq, vals: r.vals}); err2 != nil {
				st.close()
				surv.discard()
				return err2
			}
		}
		st.close()
		ss, err2 := surv.stream()
		if err2 != nil {
			return err2
		}
		srcs = append(srcs, ss)
	}
	o.merged, err = newRunMerger(srcs, func(a, b spillRow) bool { return a.seq < b.seq })
	if err != nil {
		srcs = nil // newRunMerger closed them
	}
	return err
}
