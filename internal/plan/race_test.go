package plan

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/value"
)

// TestSpillBookkeepingConcurrent hammers the process-wide spill-file
// registry and a shared statement budget from many goroutines at once —
// the exact sharing shape of a parallel Sort intake, where every worker
// writes, compacts and discards its own runs while all of them account
// against one budget. Run under -race (the `make par` target does);
// the assertions here catch leaks, the race detector catches unsynced
// access.
func TestSpillBookkeepingConcurrent(t *testing.T) {
	const (
		workers = 8
		iters   = 12
		perRun  = 48
	)
	if live := SpillFilesLive(); live != 0 {
		t.Fatalf("pre-existing live spill files: %d", live)
	}
	b := newBudget(1 << 10)
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			fail := func(err error) {
				select {
				case errs <- err:
				default:
				}
			}
			for iter := 0; iter < iters; iter++ {
				// Build a sorted run, accounting each row like sortSpillRows
				// intake does.
				rows := make([]spillRow, 0, perRun)
				var held int64
				for i := 0; i < perRun; i++ {
					r := spillRow{
						seq:  int64(i),
						key:  fmt.Sprintf("w%d-%d", w, i),
						keys: []value.Value{value.Int(int64(i % 7))},
						vals: []value.Value{value.Int(int64(i)), value.String("padding-padding")},
					}
					sz := spillRowBytes(r)
					b.grow(sz)
					held += sz
					rows = append(rows, r)
				}
				_ = b.over()
				// Spill the run, release the memory accounting, read it
				// back, and let stream-close discard the temp file.
				sf, err := writeRun(rows)
				if err != nil {
					b.shrink(held)
					fail(err)
					return
				}
				b.shrink(held)
				// Every other iteration also exercises compactRuns, which
				// merges sibling spill files into a fresh one.
				if iter%2 == 1 {
					sf2, err := writeRun(rows)
					if err != nil {
						sf.discard()
						fail(err)
						return
					}
					merged, err := compactRuns([]*spillFile{sf, sf2}, func(a, c spillRow) bool { return a.seq < c.seq })
					if err != nil {
						fail(err)
						return
					}
					sf = merged
				}
				st, err := sf.stream()
				if err != nil {
					fail(err)
					return
				}
				n := 0
				for {
					_, ok, err := st.next()
					if err != nil {
						st.close()
						fail(err)
						return
					}
					if !ok {
						break
					}
					n++
				}
				st.close()
				want := perRun
				if iter%2 == 1 {
					want = 2 * perRun
				}
				if n != want {
					fail(fmt.Errorf("worker %d iter %d: replayed %d rows, want %d", w, iter, n, want))
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	if live := SpillFilesLive(); live != 0 {
		t.Fatalf("%d spill files still live", live)
	}
	if got := b.used.Load(); got != 0 {
		t.Fatalf("budget residue after balanced grow/shrink: %d", got)
	}
}

// TestBudgetShrinkClampConcurrent drives unbalanced concurrent shrinks
// (more shrink than grow, as a worker releasing rows another worker
// accounted can transiently produce) and checks the CAS clamp keeps the
// counter at zero rather than letting it go — and stay — negative.
func TestBudgetShrinkClampConcurrent(t *testing.T) {
	b := newBudget(1 << 20)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				b.grow(64)
				b.shrink(64)
				b.shrink(8) // deliberate over-release
			}
		}()
	}
	wg.Wait()
	if got := b.used.Load(); got < 0 {
		t.Fatalf("budget stayed negative: %d", got)
	}
}
