package plan

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/value"
)

// CSVReader streams the data rows of a CSV file for LOAD CSV, one row
// per Next call — the file is never buffered in memory. file:// URLs
// and plain paths are accepted; fieldTerm overrides the comma
// separator. With headers, the header row is consumed on open and each
// data row binds as a header-keyed map (short rows pad with null, the
// empty field reads as null per the paper's Example 5 convention);
// without, each row binds as a list of strings.
type CSVReader struct {
	f           *os.File
	r           *csv.Reader
	headers     []string
	withHeaders bool
}

// OpenCSV opens a CSV file for streaming row binds.
func OpenCSV(url, fieldTerm string, withHeaders bool) (*CSVReader, error) {
	path := strings.TrimPrefix(url, "file://")
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("LOAD CSV: %w", err)
	}
	r := csv.NewReader(f)
	r.FieldsPerRecord = -1
	if fieldTerm != "" {
		runes := []rune(fieldTerm)
		if len(runes) != 1 {
			f.Close()
			return nil, fmt.Errorf("FIELDTERMINATOR must be a single character")
		}
		r.Comma = runes[0]
	}
	cr := &CSVReader{f: f, r: r, withHeaders: withHeaders}
	if withHeaders {
		rec, err := r.Read()
		if err == io.EOF {
			return cr, nil // empty file: no headers, no rows
		}
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("LOAD CSV: %w", err)
		}
		cr.headers = rec
	}
	return cr, nil
}

// Next returns the bound value of the next data row; ok=false means the
// file is exhausted.
func (c *CSVReader) Next() (v value.Value, ok bool, err error) {
	rec, err := c.r.Read()
	if err == io.EOF {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("LOAD CSV: %w", err)
	}
	return c.bind(rec), true, nil
}

func (c *CSVReader) bind(rec []string) value.Value {
	if c.withHeaders {
		m := make(value.Map, len(c.headers))
		for j, h := range c.headers {
			if j < len(rec) {
				m[h] = CSVField(rec[j])
			} else {
				m[h] = value.NullValue
			}
		}
		return m
	}
	lst := make(value.List, len(rec))
	for j, f := range rec {
		lst[j] = value.String(f)
	}
	return lst
}

// Close releases the underlying file. Idempotent.
func (c *CSVReader) Close() {
	if c.f != nil {
		c.f.Close()
		c.f = nil
	}
}

// CSVField maps the empty CSV field to null, matching the relational
// import convention the paper's Example 5 relies on.
func CSVField(s string) value.Value {
	if s == "" {
		return value.NullValue
	}
	return value.String(s)
}

// BindCSV reads a whole CSV file and converts each data row to the
// value a LOAD CSV clause binds. It is the materializing executor's
// entry point, implemented over the streaming reader.
func BindCSV(url, fieldTerm string, withHeaders bool) ([]value.Value, error) {
	r, err := OpenCSV(url, fieldTerm, withHeaders)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	var out []value.Value
	for {
		v, ok, err := r.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, v)
	}
}
