package plan

import (
	"encoding/csv"
	"fmt"
	"os"
	"strings"

	"repro/internal/value"
)

// ReadCSV reads the rows of a CSV file for LOAD CSV. file:// URLs and
// plain paths are accepted; fieldTerm overrides the comma separator.
func ReadCSV(url, fieldTerm string) ([][]string, error) {
	path := strings.TrimPrefix(url, "file://")
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("LOAD CSV: %w", err)
	}
	defer f.Close()
	r := csv.NewReader(f)
	r.FieldsPerRecord = -1
	if fieldTerm != "" {
		runes := []rune(fieldTerm)
		if len(runes) != 1 {
			return nil, fmt.Errorf("FIELDTERMINATOR must be a single character")
		}
		r.Comma = runes[0]
	}
	return r.ReadAll()
}

// CSVField maps the empty CSV field to null, matching the relational
// import convention the paper's Example 5 relies on.
func CSVField(s string) value.Value {
	if s == "" {
		return value.NullValue
	}
	return value.String(s)
}

// BindCSV reads a CSV file and converts each data row to the value a
// LOAD CSV clause binds: a header-keyed map with WITH HEADERS, a list
// of strings otherwise.
func BindCSV(url, fieldTerm string, withHeaders bool) ([]value.Value, error) {
	rows, err := ReadCSV(url, fieldTerm)
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, nil
	}
	start := 0
	var headers []string
	if withHeaders {
		headers = rows[0]
		start = 1
	}
	out := make([]value.Value, 0, len(rows)-start)
	for _, rec := range rows[start:] {
		if withHeaders {
			m := make(value.Map, len(headers))
			for j, h := range headers {
				if j < len(rec) {
					m[h] = CSVField(rec[j])
				} else {
					m[h] = value.NullValue
				}
			}
			out = append(out, m)
		} else {
			lst := make(value.List, len(rec))
			for j, f := range rec {
				lst[j] = value.String(f)
			}
			out = append(out, lst)
		}
	}
	return out, nil
}
