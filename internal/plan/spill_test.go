package plan

import (
	"bufio"
	"bytes"
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/expr"
	"repro/internal/table"
	"repro/internal/value"
)

// ---------------------------------------------------------------------
// Operator lifecycle (single-use contract)
// ---------------------------------------------------------------------

func TestOperatorDoubleOpenErrors(t *testing.T) {
	o := NewTableScan(table.New("x"))
	if err := o.Open(); err != nil {
		t.Fatal(err)
	}
	if err := o.Open(); err == nil || !strings.Contains(err.Error(), "single-use") {
		t.Fatalf("second Open = %v, want single-use error", err)
	}
	o.Close()
}

func TestOperatorOpenAfterCloseErrors(t *testing.T) {
	o := NewTableScan(table.New("x"))
	if err := o.Open(); err != nil {
		t.Fatal(err)
	}
	o.Close()
	if err := o.Open(); err == nil || !strings.Contains(err.Error(), "single-use") {
		t.Fatalf("Open after Close = %v, want single-use error", err)
	}
}

func TestOperatorCloseIdempotentAndBeforeOpen(t *testing.T) {
	// Close before Open must be a no-op (EXPLAIN closes plans it never
	// opened), and double Close must not panic or double-release.
	tbl := table.New("x")
	tbl.AppendRow(value.Int(1))
	o := NewDistinct(NewTableScan(tbl))
	o.Close()
	o.Close()
	// A fresh operator still works after the above pattern on another.
	o2 := NewDistinct(NewTableScan(tbl))
	out, err := Collect(o2)
	if err != nil || out.Len() != 1 {
		t.Fatalf("Collect = (%v rows, %v)", out.Len(), err)
	}
	o2.Close() // Collect already closed it; must stay idempotent.
}

// errAfter yields n good rows, then fails. It drives the
// cleanup-on-error paths of the spilling barriers.
type errAfter struct {
	n, i int
	st   opState
}

func (o *errAfter) Columns() []string { return []string{"x"} }
func (o *errAfter) Open() error       { return o.st.open("ErrAfter") }
func (o *errAfter) Next() (Row, bool, error) {
	if o.i >= o.n {
		return Row{}, false, fmt.Errorf("synthetic source failure")
	}
	o.i++
	return Row{Env: expr.Env{"x": value.Int(int64(o.i))}}, true, nil
}
func (o *errAfter) NextBatch(max int) (*Batch, bool, error) {
	return testBatchFromRows(o, max)
}
func (o *errAfter) Close()               { o.st.close() }
func (o *errAfter) Name() string         { return "ErrAfter" }
func (o *errAfter) Children() []Operator { return nil }
func (o *errAfter) RowsEmitted() int64   { return int64(o.i) }

func TestOperatorOpenAfterErrorErrors(t *testing.T) {
	// A child error does not reset the consumer: re-opening after a
	// failed execution must be refused, not silently half-work.
	ev := &expr.Evaluator{}
	s := NewSort(&errAfter{n: 3}, []*ast.SortItem{{Expr: &ast.Variable{Name: "x"}}}, ev)
	if _, err := Collect(s); err == nil || !strings.Contains(err.Error(), "synthetic source failure") {
		t.Fatalf("Collect err = %v, want synthetic source failure", err)
	}
	if err := s.Open(); err == nil || !strings.Contains(err.Error(), "single-use") {
		t.Fatalf("Open after failed run = %v, want single-use error", err)
	}
}

// ---------------------------------------------------------------------
// Spill codec
// ---------------------------------------------------------------------

func TestSpillCodecRoundTripsAllKinds(t *testing.T) {
	vals := []value.Value{
		value.NullValue,
		value.Bool(true),
		value.Bool(false),
		value.Int(-9_000_000_000),
		value.Int(0),
		value.Float(3.5),
		value.Float(math.NaN()),
		value.Float(math.Inf(-1)),
		value.String(""),
		value.String("héllo\x00world"),
		value.Node{ID: 42},
		value.Rel{ID: 7},
		value.Path{Nodes: []int64{1, 2, 3}, Rels: []int64{10, 11}},
		value.List{value.Int(1), value.List{value.String("nested")}, value.NullValue},
		value.Map{"a": value.Int(1), "b": value.Map{"c": value.Float(math.NaN())}},
	}
	row := spillRow{seq: 123, key: "k\x00ey", keys: vals[:3], vals: vals}

	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := writeSpillRow(w, row); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := readSpillRow(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if got.seq != row.seq || got.key != row.key {
		t.Fatalf("seq/key = %d/%q, want %d/%q", got.seq, got.key, row.seq, row.key)
	}
	if len(got.keys) != len(row.keys) || len(got.vals) != len(row.vals) {
		t.Fatalf("lengths = %d/%d, want %d/%d", len(got.keys), len(got.vals), len(row.keys), len(row.vals))
	}
	for i, want := range vals {
		if !sameValue(got.vals[i], want) {
			t.Errorf("vals[%d] = %#v, want %#v", i, got.vals[i], want)
		}
	}
}

// sameValue compares values treating NaN as equal to itself (the codec
// must round-trip NaN by bit pattern, which == cannot check).
func sameValue(a, b value.Value) bool {
	if fa, ok := a.(value.Float); ok {
		fb, ok := b.(value.Float)
		return ok && math.Float64bits(float64(fa)) == math.Float64bits(float64(fb))
	}
	switch xa := a.(type) {
	case value.List:
		xb, ok := b.(value.List)
		if !ok || len(xa) != len(xb) {
			return false
		}
		for i := range xa {
			if !sameValue(xa[i], xb[i]) {
				return false
			}
		}
		return true
	case value.Map:
		xb, ok := b.(value.Map)
		if !ok || len(xa) != len(xb) {
			return false
		}
		for k, va := range xa {
			vb, ok := xb[k]
			if !ok || !sameValue(va, vb) {
				return false
			}
		}
		return true
	case value.Path:
		xb, ok := b.(value.Path)
		if !ok || len(xa.Nodes) != len(xb.Nodes) || len(xa.Rels) != len(xb.Rels) {
			return false
		}
		for i := range xa.Nodes {
			if xa.Nodes[i] != xb.Nodes[i] {
				return false
			}
		}
		for i := range xa.Rels {
			if xa.Rels[i] != xb.Rels[i] {
				return false
			}
		}
		return true
	}
	return a == b
}

// ---------------------------------------------------------------------
// Forced-spill equivalence: barriers under a tiny budget must produce
// byte-identical output to the unlimited in-memory path.
// ---------------------------------------------------------------------

// sortInput builds a table with repeated keys (x) and a unique payload
// (y), so tie order is observable.
func sortInput(n int) *table.Table {
	tbl := table.New("x", "y")
	for i := 0; i < n; i++ {
		tbl.AppendRow(value.Int(int64((n-i)%17)), value.Int(int64(i)))
	}
	return tbl
}

func collectSorted(t *testing.T, n int, bud *budget) (*table.Table, *Sort) {
	t.Helper()
	ev := &expr.Evaluator{}
	s := NewSort(NewTableScan(sortInput(n)),
		[]*ast.SortItem{{Expr: &ast.Variable{Name: "x"}}}, ev)
	s.budget = bud
	out, err := Collect(s)
	if err != nil {
		t.Fatal(err)
	}
	return out, s
}

func TestExternalSortMatchesInMemoryAndKeepsTieOrder(t *testing.T) {
	const n = 500
	want, s0 := collectSorted(t, n, nil)
	if s0.SpillRuns() != 0 {
		t.Fatalf("unlimited sort spilled %d runs", s0.SpillRuns())
	}
	got, s1 := collectSorted(t, n, newBudget(1))
	if s1.SpillRuns() == 0 {
		t.Fatal("budget=1 sort did not spill")
	}
	if live := SpillFilesLive(); live != 0 {
		t.Fatalf("%d spill files still live after Collect", live)
	}
	if got.Len() != want.Len() {
		t.Fatalf("rows = %d, want %d", got.Len(), want.Len())
	}
	for i := 0; i < want.Len(); i++ {
		if got.Get(i, "x") != want.Get(i, "x") || got.Get(i, "y") != want.Get(i, "y") {
			t.Fatalf("row %d = (%v,%v), want (%v,%v)", i,
				got.Get(i, "x"), got.Get(i, "y"), want.Get(i, "x"), want.Get(i, "y"))
		}
	}
	// Stability spot check: within equal keys, payloads keep input order.
	for i := 1; i < got.Len(); i++ {
		if got.Get(i, "x") == got.Get(i-1, "x") && got.Get(i, "y").(value.Int) < got.Get(i-1, "y").(value.Int) {
			t.Fatalf("tie order violated at row %d", i)
		}
	}
}

func TestSpillingDistinctKeepsFirstOccurrenceOrder(t *testing.T) {
	tbl := table.New("x")
	const n = 600
	for i := 0; i < n; i++ {
		tbl.AppendRow(value.Int(int64((i * 7) % 97)))
	}
	want, err := Collect(NewDistinct(NewTableScan(tbl)))
	if err != nil {
		t.Fatal(err)
	}
	d := NewDistinct(NewTableScan(tbl))
	d.budget = newBudget(1)
	got, err := Collect(d)
	if err != nil {
		t.Fatal(err)
	}
	if d.SpillRuns() == 0 {
		t.Fatal("budget=1 distinct did not spill")
	}
	if live := SpillFilesLive(); live != 0 {
		t.Fatalf("%d spill files still live after Collect", live)
	}
	if got.Len() != want.Len() {
		t.Fatalf("rows = %d, want %d", got.Len(), want.Len())
	}
	for i := 0; i < want.Len(); i++ {
		if got.Get(i, "x") != want.Get(i, "x") {
			t.Fatalf("row %d = %v, want %v (first-occurrence order)", i, got.Get(i, "x"), want.Get(i, "x"))
		}
	}
}

func TestSpillingAggregateMatchesInMemory(t *testing.T) {
	tbl := table.New("x")
	const n = 800
	for i := 0; i < n; i++ {
		tbl.AppendRow(value.Int(int64(i % 131)))
	}
	ev := &expr.Evaluator{}
	items := []Item{
		{Expr: &ast.Variable{Name: "x"}, Alias: "x"},
		{Expr: &ast.FuncCall{Name: "count", Star: true}, Alias: "n"},
	}
	cols := []string{"x", "n"}
	want, err := Collect(NewAggregate(NewTableScan(tbl.Clone()), items, cols, ev))
	if err != nil {
		t.Fatal(err)
	}
	a := NewAggregate(NewTableScan(tbl), items, cols, ev)
	a.budget = newBudget(1)
	got, err := Collect(a)
	if err != nil {
		t.Fatal(err)
	}
	if a.SpillRuns() == 0 {
		t.Fatal("budget=1 aggregate did not spill")
	}
	if live := SpillFilesLive(); live != 0 {
		t.Fatalf("%d spill files still live after Collect", live)
	}
	if got.Len() != want.Len() {
		t.Fatalf("groups = %d, want %d", got.Len(), want.Len())
	}
	for i := 0; i < want.Len(); i++ {
		if got.Get(i, "x") != want.Get(i, "x") || got.Get(i, "n") != want.Get(i, "n") {
			t.Fatalf("group %d = (%v,%v), want (%v,%v)", i,
				got.Get(i, "x"), got.Get(i, "n"), want.Get(i, "x"), want.Get(i, "n"))
		}
	}
}

// ---------------------------------------------------------------------
// Temp-file cleanup on abnormal paths
// ---------------------------------------------------------------------

func TestSpillFilesFreedOnChildError(t *testing.T) {
	ev := &expr.Evaluator{}
	// Enough rows to force several runs before the child fails.
	s := NewSort(&errAfter{n: 300}, []*ast.SortItem{{Expr: &ast.Variable{Name: "x"}}}, ev)
	s.budget = newBudget(1)
	if _, err := Collect(s); err == nil || !strings.Contains(err.Error(), "synthetic source failure") {
		t.Fatalf("Collect err = %v, want synthetic source failure", err)
	}
	if live := SpillFilesLive(); live != 0 {
		t.Fatalf("%d spill files still live after child error", live)
	}
}

func TestSpillFilesFreedOnEarlyLimitClose(t *testing.T) {
	ev := &expr.Evaluator{}
	s := NewSort(NewTableScan(sortInput(500)),
		[]*ast.SortItem{{Expr: &ast.Variable{Name: "x"}}}, ev)
	s.budget = newBudget(1)
	lim := NewLimit(s, &ast.Literal{Value: int64(3)}, ev)
	out, err := Collect(lim)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 3 {
		t.Fatalf("rows = %d, want 3", out.Len())
	}
	if s.SpillRuns() == 0 {
		t.Fatal("sort did not spill (budget not honored?)")
	}
	// LIMIT closed the plan long before the merge was drained; the
	// run files must be released anyway.
	if live := SpillFilesLive(); live != 0 {
		t.Fatalf("%d spill files still live after early LIMIT close", live)
	}
}

// ---------------------------------------------------------------------
// Native batch sources
// ---------------------------------------------------------------------

// TestUnwindNextBatchRespectsMax drives Unwind's native batch path: a
// 3-element list per input row over 10 input rows is 30 output rows,
// which must arrive in batches of at most max with input pulled only
// as needed (an early-exiting consumer must not force extra expansion).
func TestUnwindNextBatchRespectsMax(t *testing.T) {
	src := &countingScan{n: 10, col: "x"}
	list := &ast.ListLit{Elems: []ast.Expr{intLit(1), intLit(2), intLit(3)}}
	u := NewUnwind(src, &ast.UnwindClause{Expr: list, Var: "k"}, &expr.Evaluator{})
	if err := u.Open(); err != nil {
		t.Fatal(err)
	}
	defer u.Close()
	b, ok, err := u.NextBatch(4)
	if err != nil || !ok || b.Len() != 4 {
		t.Fatalf("batch = (%v, %v, %v), want 4 rows", b, ok, err)
	}
	if got := b.Value(0, 1); got != value.Int(1) {
		t.Fatalf("first unwound element = %v, want 1", got)
	}
	total := b.Len()
	for {
		b, ok, err = u.NextBatch(7)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if b.Len() > 7 {
			t.Fatalf("batch of %d rows exceeds max=7", b.Len())
		}
		total += b.Len()
	}
	if total != 30 {
		t.Fatalf("total rows = %d, want 30", total)
	}
	if _, ok, _ := u.NextBatch(4); ok {
		t.Fatal("Unwind yielded a batch past end of input")
	}
}

// TestUnwindNextBatchEarlyExit confirms the native path pulls no more
// input rows than the consumer's demand requires.
func TestUnwindNextBatchEarlyExit(t *testing.T) {
	src := &countingScan{n: 1000, col: "x"}
	list := &ast.ListLit{Elems: []ast.Expr{intLit(1), intLit(2)}}
	u := NewUnwind(src, &ast.UnwindClause{Expr: list, Var: "k"}, &expr.Evaluator{})
	lim := NewLimit(u, intLit(6), &expr.Evaluator{})
	out, err := Collect(lim)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 6 {
		t.Fatalf("rows = %d, want 6", out.Len())
	}
	// 6 output rows need only 3 input rows; the batched pull may fetch
	// up to one batch of the consumer's max, never the whole input.
	if src.pulls > 8 {
		t.Errorf("source pulled %d rows for LIMIT 6 over a 2-element unwind", src.pulls)
	}
}

func TestExplainShowsBarrierStatsAfterRun(t *testing.T) {
	d := NewDistinct(NewTableScan(sortInput(100)))
	d.budget = newBudget(1)
	if _, err := Collect(d); err != nil {
		t.Fatal(err)
	}
	out := Explain(d)
	if !strings.Contains(out, "rows=") || !strings.Contains(out, "spill-runs=") {
		t.Fatalf("post-run explain lacks counters:\n%s", out)
	}
}
