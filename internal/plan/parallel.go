// Morsel-driven parallel execution for read pipelines.
//
// An Exchange operator partitions a pipeline source into morsels —
// contiguous row ranges of a driving table, or contiguous chunks of a
// MATCH clause's anchor candidate list (match.AnchorPlan) — and runs
// the pipeline segment above the source (Match/Filter/Project/Unwind
// stages) once per morsel on a bounded worker pool. Each worker owns
// its evaluator, matchers and scratch state; the graph snapshot and the
// driving table are shared read-only.
//
// Gathering is ORDERED: morsel outputs are reassembled in morsel-index
// order, so the Exchange emits exactly the row sequence the serial
// pipeline would — parallel plans are bit-identical to serial ones,
// not merely multiset-equal, which keeps ORDER BY/LIMIT, DISTINCT
// first-occurrence order and aggregate first-appearance grouping
// byte-for-byte stable at any parallelism. Order restoration costs no
// extra buffering discipline: each morsel's stream is a bounded
// channel, registered in claim order, and the gatherer drains streams
// in registration order while workers run ahead within the in-flight
// window (backpressure bounds memory).
//
// Errors surface with serial identity too: morsels are claimed in
// index order and the gatherer reads streams in that order, so the
// first error it sees is the error the serial run would have hit first
// (a failed morsel also stops workers claiming further morsels).
//
// A barrier above an Exchange may instead drain it in callback mode
// (drainParallel): batches are delivered on the worker goroutines,
// tagged with (worker, morsel), which is how Sort builds per-worker
// sorted spill runs in parallel and merges them with the ordinary
// k-way run merger (see Sort.fillParallel in spill.go).
package plan

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/ast"
	"repro/internal/expr"
	"repro/internal/graph"
	"repro/internal/match"
	"repro/internal/table"
	"repro/internal/value"
)

const (
	// morselChanCap bounds the batches buffered per in-flight morsel
	// stream; together with the registration queue this caps gather-side
	// memory at roughly (3·workers)·morselChanCap·BatchTarget rows.
	morselChanCap = 4
	// scanMorselRows is the row-range granularity for table-scan
	// morsels.
	scanMorselRows = 4 * BatchTarget
	// Anchor-morsel granularity bounds: small enough to balance skewed
	// per-anchor match costs, large enough to amortize the per-morsel
	// operator-chain construction.
	minAnchorChunk = 16
	maxAnchorChunk = 4096
	// morselSeqBits is the in-morsel row width of the composite sequence
	// number a parallel Sort intake assigns: seq = morsel<<bits | row.
	// Lexicographic (morsel, row) order equals serial intake order, so
	// the existing seq tie-break reproduces sort.SliceStable exactly.
	morselSeqBits = 36
)

// workerCtx is one worker's private execution state: an evaluator that
// is not shared with any other goroutine, and per-stage matchers reused
// across the worker's morsels (so a Match stage's plan cache survives
// from morsel to morsel).
type workerCtx struct {
	ev       *expr.Evaluator
	mf       func(ev *expr.Evaluator) *match.Matcher
	matchers map[int]*match.Matcher
}

// matcherFor returns the worker's matcher for pipeline stage idx,
// creating it on first use. NewMatch re-points Stats and pushdown at
// each morsel's operator, which is safe: one worker runs one morsel at
// a time.
func (w *workerCtx) matcherFor(idx int) *match.Matcher {
	if m, ok := w.matchers[idx]; ok {
		return m
	}
	m := w.mf(w.ev)
	w.matchers[idx] = m
	return m
}

// stageFn rebuilds one pipeline stage over a morsel's source chain,
// using the worker's private evaluator and matchers. The builder
// records one per absorbed clause, mirroring the serial prototype
// chain operator for operator.
type stageFn func(child Operator, w *workerCtx) Operator

// morselSource partitions a pipeline source into independently
// enumerable morsels. Implementations are immutable after build and
// shared by all workers; operator() is called on the claiming worker.
type morselSource interface {
	morsels() int
	operator(i int, w *workerCtx) Operator
	label() string
}

// ---------------------------------------------------------------------
// Table-scan morsels
// ---------------------------------------------------------------------

// scanSource splits a driving table into contiguous row ranges. The
// table is shared read-only with the serial prototype scan.
type scanSource struct {
	t     *table.Table
	cols  []string
	chunk int
}

func newScanSource(t *table.Table) *scanSource {
	return &scanSource{t: t, cols: t.Columns(), chunk: scanMorselRows}
}

func (s *scanSource) morsels() int {
	return (s.t.Len() + s.chunk - 1) / s.chunk
}

func (s *scanSource) operator(i int, _ *workerCtx) Operator {
	lo := i * s.chunk
	hi := lo + s.chunk
	if hi > s.t.Len() {
		hi = s.t.Len()
	}
	return &scanRange{t: s.t, cols: s.cols, pos: lo, end: hi}
}

func (s *scanSource) label() string {
	return fmt.Sprintf("scan-morsels(%d rows × chunk %d)", s.t.Len(), s.chunk)
}

// scanRange reads rows [pos, end) of a shared table. Unlike TableScan
// it never clones the table: morsel scans are pure columnar window
// reads over storage no one mutates during the statement.
type scanRange struct {
	t    *table.Table
	cols []string
	pos  int
	end  int

	st      opState
	rows    int64
	batches int64
	rb      *Batch // row-pull adapter
	rbIdx   int
}

// Columns implements Operator.
func (o *scanRange) Columns() []string { return o.cols }

// Open implements Operator.
func (o *scanRange) Open() error { return o.st.open("ScanRange") }

// NextBatch implements Operator.
func (o *scanRange) NextBatch(max int) (*Batch, bool, error) {
	max = clampMax(max)
	if o.pos >= o.end {
		return nil, false, nil
	}
	end := o.pos + max
	if end > o.end {
		end = o.end
	}
	b := newBatch(o.cols, end-o.pos)
	o.t.ReadColumns(o.pos, end, b.vals)
	b.n = end - o.pos
	o.pos = end
	o.rows += int64(b.n)
	o.batches++
	return b, true, nil
}

// Next implements Operator via the batch path.
func (o *scanRange) Next() (Row, bool, error) { return rowFromBatches(o, &o.rb, &o.rbIdx) }

// Close implements Operator.
func (o *scanRange) Close() { o.st.close() }

// Name implements Operator.
func (o *scanRange) Name() string {
	return fmt.Sprintf("ScanRange[%d:%d)", o.pos, o.end) + statsSuffix(o.rows, o.batches)
}

// Children implements Operator.
func (o *scanRange) Children() []Operator { return nil }

// RowsEmitted implements Operator.
func (o *scanRange) RowsEmitted() int64 { return o.rows }

// rowFromBatches adapts a batch-only source to the row discipline by
// buffering one batch at a time (used by the morsel source operators,
// which are normally consumed via NextBatch only).
func rowFromBatches(op Operator, buf **Batch, idx *int) (Row, bool, error) {
	for {
		if *buf != nil && *idx < (*buf).n {
			row := Row{Env: (*buf).Env(*idx)}
			if (*buf).src != nil {
				row.Src = (*buf).src[*idx]
			}
			*idx++
			return row, true, nil
		}
		b, ok, err := op.NextBatch(BatchTarget)
		if err != nil || !ok {
			return Row{}, false, err
		}
		*buf, *idx = b, 0
	}
}

// ---------------------------------------------------------------------
// Match anchor morsels
// ---------------------------------------------------------------------

// anchorSource splits a leading non-optional MATCH clause's anchor
// candidate list (planned once at build time over the pinned snapshot)
// into contiguous chunks. Enumerating a chunk yields exactly the
// corresponding subsequence of the serial enumeration — the isomorphism
// bookkeeping is fully backtracked between anchor candidates (see
// match.PlanAnchors).
type anchorSource struct {
	ap     *match.AnchorPlan
	cl     *ast.MatchClause
	pushed *match.Pushdown
	cols   []string
	chunk  int
}

func (s *anchorSource) morsels() int {
	n := len(s.ap.Anchors())
	return (n + s.chunk - 1) / s.chunk
}

func (s *anchorSource) operator(i int, w *workerCtx) Operator {
	anchors := s.ap.Anchors()
	lo := i * s.chunk
	hi := lo + s.chunk
	if hi > len(anchors) {
		hi = len(anchors)
	}
	m := w.matcherFor(-1) // the anchor-scan matcher slot, shared across morsels
	m.SetPushdown(s.pushed)
	return &anchorScan{src: s, anchors: anchors[lo:hi], m: m, ev: w.ev}
}

func (s *anchorSource) label() string {
	return fmt.Sprintf("anchor-morsels(%d anchors × chunk %d)", len(s.ap.Anchors()), s.chunk)
}

// anchorChunk sizes anchor morsels: aim for several morsels per worker
// (balancing skewed per-anchor costs) within the amortization bounds.
func anchorChunk(anchors, workers int) int {
	c := anchors / (workers * 8)
	if c < minAnchorChunk {
		c = minAnchorChunk
	}
	if c > maxAnchorChunk {
		c = maxAnchorChunk
	}
	return c
}

// anchorScan enumerates the matches of one anchor chunk, applying the
// clause's WHERE inside the enumeration exactly as the serial Match
// operator's batch path does.
type anchorScan struct {
	src     *anchorSource
	anchors []graph.NodeID
	m       *match.Matcher
	ev      *expr.Evaluator

	st      opState
	cur     *match.Cursor
	buf     []expr.Env
	done    bool
	rows    int64
	batches int64
	rb      *Batch
	rbIdx   int
}

// Columns implements Operator.
func (o *anchorScan) Columns() []string { return o.src.cols }

// Open implements Operator.
func (o *anchorScan) Open() error { return o.st.open("AnchorScan") }

// NextBatch implements Operator.
func (o *anchorScan) NextBatch(max int) (*Batch, bool, error) {
	max = clampMax(max)
	out := newBatch(o.src.cols, max)
	for out.n < max && !o.done {
		if len(o.buf) > 0 {
			take := max - out.n
			if take > len(o.buf) {
				take = len(o.buf)
			}
			for _, me := range o.buf[:take] {
				out.appendEnv(me)
			}
			o.buf = o.buf[take:]
			continue
		}
		if o.cur == nil {
			var filter func(expr.Env) (bool, error)
			if o.src.cl.Where != nil {
				filter = func(me expr.Env) (bool, error) {
					ok, err := o.ev.EvalBool(o.src.cl.Where, me)
					if err != nil {
						return false, err
					}
					return ok == value.True, nil
				}
			}
			o.cur = o.m.NewAnchorCursor(o.src.ap, o.anchors, expr.Env{}, max, filter)
		}
		envs, ok := o.cur.Next()
		if ok {
			o.buf = envs
			continue
		}
		err := o.cur.Stop()
		o.cur = nil
		o.done = true
		if err != nil {
			return nil, false, err
		}
	}
	if out.n == 0 {
		return nil, false, nil
	}
	o.rows += int64(out.n)
	o.batches++
	return out, true, nil
}

// Next implements Operator via the batch path.
func (o *anchorScan) Next() (Row, bool, error) { return rowFromBatches(o, &o.rb, &o.rbIdx) }

// Close implements Operator.
func (o *anchorScan) Close() {
	if !o.st.close() {
		return
	}
	if o.cur != nil {
		o.cur.Stop()
		o.cur = nil
	}
}

// Name implements Operator.
func (o *anchorScan) Name() string {
	return fmt.Sprintf("AnchorScan(%d anchors)", len(o.anchors)) + statsSuffix(o.rows, o.batches)
}

// Children implements Operator.
func (o *anchorScan) Children() []Operator { return nil }

// RowsEmitted implements Operator.
func (o *anchorScan) RowsEmitted() int64 { return o.rows }

// ---------------------------------------------------------------------
// Exchange
// ---------------------------------------------------------------------

// morselMsg is one delivery on a morsel stream: a batch, or a terminal
// error. The stream channel is closed when the morsel is exhausted.
type morselMsg struct {
	b   *Batch
	err error
}

type morselStream struct {
	idx int
	ch  chan morselMsg
}

// Exchange fans a partitioned source out over a worker pool and
// gathers the results back in morsel order. The serial prototype chain
// (the operators the builder would have produced without parallelism)
// is kept as the explain child: it is never opened, it only renders
// the plan shape below the exchange boundary.
type Exchange struct {
	src     morselSource
	stages  []stageFn
	proto   Operator
	cols    []string
	workers int
	newCtx  func() *workerCtx

	st      opState
	started bool
	mode    string // "", "gather" or "drain"
	mu      sync.Mutex
	next    int
	queue   chan *morselStream
	done    chan struct{}
	wg      sync.WaitGroup
	failed  atomic.Bool

	cur     *morselStream
	pending *Batch
	pendOff int

	rows     int64
	batches  int64
	morselsN atomic.Int64
	launched int

	rb    *Batch
	rbIdx int
}

// NewExchange builds an Exchange over a partitioned source. proto is
// the serial prototype chain (source plus absorbed stages) used for
// column resolution and EXPLAIN rendering only.
func NewExchange(src morselSource, stages []stageFn, proto Operator, workers int, newCtx func() *workerCtx) *Exchange {
	return &Exchange{
		src:     src,
		stages:  stages,
		proto:   proto,
		cols:    proto.Columns(),
		workers: workers,
		newCtx:  newCtx,
	}
}

// Columns implements Operator.
func (e *Exchange) Columns() []string { return e.cols }

// Open implements Operator. Workers launch lazily on first pull (or
// drain), so building and EXPLAINing a plan costs nothing.
func (e *Exchange) Open() error { return e.st.open("Exchange") }

// poolSize caps the worker count by the morsel count — extra workers
// would only idle.
func (e *Exchange) poolSize() int {
	w := e.workers
	if n := e.src.morsels(); w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// start launches the gather-mode pool: workers claim morsels in index
// order, register each morsel's stream on the queue under the claim
// mutex (so queue order is morsel order), run the rebuilt chain and
// push its batches through the stream.
func (e *Exchange) start() {
	e.started = true
	e.mode = "gather"
	e.done = make(chan struct{})
	w := e.poolSize()
	e.launched = w
	// Queue capacity bounds how far ahead of the gatherer claims may
	// run; each in-flight stream additionally buffers morselChanCap
	// batches.
	e.queue = make(chan *morselStream, 2*w)
	for i := 0; i < w; i++ {
		e.wg.Add(1)
		go e.gatherWorker()
	}
	go func() {
		e.wg.Wait()
		close(e.queue)
	}()
}

func (e *Exchange) gatherWorker() {
	defer e.wg.Done()
	w := e.newCtx()
	total := e.src.morsels()
	for {
		if e.failed.Load() {
			return
		}
		e.mu.Lock()
		if e.next >= total {
			e.mu.Unlock()
			return
		}
		idx := e.next
		e.next++
		ms := &morselStream{idx: idx, ch: make(chan morselMsg, morselChanCap)}
		select {
		case e.queue <- ms:
		case <-e.done:
			e.mu.Unlock()
			return
		}
		e.mu.Unlock()
		e.runMorsel(idx, ms, w)
	}
}

// runMorsel builds and drains one morsel's operator chain, delivering
// its batches (and at most one terminal error) on ms. The stream is
// always closed, and the chain always Closed, before returning.
func (e *Exchange) runMorsel(idx int, ms *morselStream, w *workerCtx) {
	defer close(ms.ch)
	e.morselsN.Add(1)
	op := e.src.operator(idx, w)
	for _, st := range e.stages {
		op = st(op, w)
	}
	defer op.Close()
	fail := func(err error) {
		e.failed.Store(true)
		select {
		case ms.ch <- morselMsg{err: err}:
		case <-e.done:
		}
	}
	if err := op.Open(); err != nil {
		fail(err)
		return
	}
	for {
		b, ok, err := op.NextBatch(BatchTarget)
		if err != nil {
			fail(err)
			return
		}
		if !ok {
			return
		}
		select {
		case ms.ch <- morselMsg{b: b}:
		case <-e.done:
			return
		}
	}
}

// NextBatch implements Operator: the ordered gather. Batches are
// served morsel by morsel in index order; a batch larger than max is
// handed out in slices.
func (e *Exchange) NextBatch(max int) (*Batch, bool, error) {
	max = clampMax(max)
	if !e.started {
		e.start()
	}
	if e.mode != "gather" {
		return nil, false, internalErrorf("Exchange: NextBatch after drainParallel")
	}
	for {
		if e.pending != nil {
			b := e.pending
			if e.pendOff == 0 && b.n <= max {
				e.pending = nil
				e.rows += int64(b.n)
				e.batches++
				return b, true, nil
			}
			end := e.pendOff + max
			if end > b.n {
				end = b.n
			}
			out := b.slice(e.pendOff, end)
			e.pendOff = end
			if e.pendOff >= b.n {
				e.pending, e.pendOff = nil, 0
			}
			e.rows += int64(out.n)
			e.batches++
			return out, true, nil
		}
		if e.cur == nil {
			ms, ok := <-e.queue
			if !ok {
				return nil, false, nil
			}
			e.cur = ms
		}
		msg, ok := <-e.cur.ch
		if !ok {
			e.cur = nil
			continue
		}
		if msg.err != nil {
			return nil, false, msg.err
		}
		e.pending, e.pendOff = msg.b, 0
	}
}

// Next implements Operator via the batch path.
func (e *Exchange) Next() (Row, bool, error) { return rowFromBatches(e, &e.rb, &e.rbIdx) }

// drainParallel runs the exchange in callback mode: every morsel's
// batches are delivered to fn ON THE WORKER GOROUTINE, tagged with the
// worker slot (0..workers-1) and the morsel index. fn must be safe for
// concurrent calls from distinct worker slots; calls within one slot
// are sequential, and one morsel's batches arrive in order on one
// slot. Used by parallel-aware barriers (Sort) that reduce per worker
// and merge. Returns the lowest-morsel error, matching the error the
// serial run would surface first. Must be the first (and only) pull
// mode used on this exchange.
func (e *Exchange) drainParallel(fn func(worker, morsel int, b *Batch) error) error {
	if e.started {
		return internalErrorf("Exchange: drainParallel after NextBatch")
	}
	e.started = true
	e.mode = "drain"
	e.done = make(chan struct{})
	total := e.src.morsels()
	w := e.poolSize()
	e.launched = w
	var (
		errMu       sync.Mutex
		firstErr    error
		firstMorsel int
	)
	record := func(idx int, err error) {
		errMu.Lock()
		if firstErr == nil || idx < firstMorsel {
			firstErr, firstMorsel = err, idx
		}
		errMu.Unlock()
		e.failed.Store(true)
	}
	for i := 0; i < w; i++ {
		wid := i
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			wctx := e.newCtx()
			for {
				if e.failed.Load() {
					return
				}
				e.mu.Lock()
				if e.next >= total {
					e.mu.Unlock()
					return
				}
				idx := e.next
				e.next++
				e.mu.Unlock()
				e.morselsN.Add(1)
				op := e.src.operator(idx, wctx)
				for _, st := range e.stages {
					op = st(op, wctx)
				}
				if err := op.Open(); err != nil {
					record(idx, err)
					op.Close()
					return
				}
				for {
					b, ok, err := op.NextBatch(BatchTarget)
					if err != nil {
						record(idx, err)
						break
					}
					if !ok {
						break
					}
					e.mu.Lock()
					e.rows += int64(b.n)
					e.batches++
					e.mu.Unlock()
					if err := fn(wid, idx, b); err != nil {
						record(idx, err)
						break
					}
				}
				op.Close()
			}
		}()
	}
	e.wg.Wait()
	return firstErr
}

// Close implements Operator: cancels in-flight morsels (workers see
// the done channel on every blocking send and claim), waits for the
// pool to drain — so every morsel chain, match cursor and coroutine is
// closed before Close returns — and closes the prototype chain.
func (e *Exchange) Close() {
	if !e.st.close() {
		return
	}
	if e.started {
		close(e.done)
		e.wg.Wait()
	}
	e.proto.Close()
}

// Name implements Operator. The static part states the exchange degree
// and the morsel partitioning; after execution the counter suffix adds
// the workers actually launched and the morsels claimed.
func (e *Exchange) Name() string {
	s := fmt.Sprintf("Exchange(workers=%d, %s)", e.workers, e.src.label())
	if m := e.morselsN.Load(); m > 0 || e.rows > 0 || e.batches > 0 {
		s += fmt.Sprintf(" {rows=%d batches=%d workers=%d morsels=%d}", e.rows, e.batches, e.launched, m)
	}
	return s
}

// Children implements Operator: the serial prototype chain, rendered
// by EXPLAIN as the plan below the exchange boundary.
func (e *Exchange) Children() []Operator { return []Operator{e.proto} }

// RowsEmitted implements Operator.
func (e *Exchange) RowsEmitted() int64 { return e.rows }

// Workers reports the configured exchange degree (for tests).
func (e *Exchange) Workers() int { return e.workers }

// Morsels reports how many morsels have been claimed so far.
func (e *Exchange) Morsels() int64 { return e.morselsN.Load() }
