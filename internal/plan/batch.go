package plan

import (
	"fmt"
	"sync/atomic"

	"repro/internal/expr"
	"repro/internal/value"
)

// BatchTarget is the default number of rows per batch. Consumers pass
// it to NextBatch unless they need fewer rows (LIMIT passes its
// remaining count so early exit keeps pruning upstream enumeration).
const BatchTarget = 256

// Batch is a columnar slice of records over an operator's column set:
// vals[j][r] is row r of column j, with absent values stored as
// explicit nulls (never nil), mirroring Row.Env's normalization. A
// batch is produced by one operator and owned by its consumer; it is
// never reused after being handed off.
//
// src optionally carries the pre-projection source environment of each
// row (Row.Src's batched counterpart) so a downstream Sort can
// evaluate ORDER BY keys over input variables; it is dropped at the
// same operators that drop Row.Src.
type Batch struct {
	cols []string
	vals [][]value.Value
	src  []expr.Env
	n    int
}

func newBatch(cols []string, capacity int) *Batch {
	b := &Batch{cols: cols, vals: make([][]value.Value, len(cols))}
	for j := range b.vals {
		b.vals[j] = make([]value.Value, 0, capacity)
	}
	return b
}

// Len reports the number of rows in the batch.
func (b *Batch) Len() int { return b.n }

// Columns returns the column names, in order. The slice is shared.
func (b *Batch) Columns() []string { return b.cols }

// Value returns column j of row i.
func (b *Batch) Value(i, j int) value.Value { return b.vals[j][i] }

// appendEnv appends one row given as an environment, normalizing:
// missing or nil columns become explicit nulls.
func (b *Batch) appendEnv(env expr.Env) {
	for j, c := range b.cols {
		v, ok := env[c]
		if !ok || v == nil {
			v = nullValue
		}
		b.vals[j] = append(b.vals[j], v)
	}
	b.n++
}

// appendVals appends one row given as a value slice in column order.
// Values are shared; the slice itself is not retained.
func (b *Batch) appendVals(vals []value.Value) {
	for j := range b.cols {
		v := vals[j]
		if v == nil {
			v = nullValue
		}
		b.vals[j] = append(b.vals[j], v)
	}
	b.n++
}

// appendRowFrom appends row i of src, including its source environment
// when present.
func (b *Batch) appendRowFrom(src *Batch, i int) {
	for j := range b.vals {
		b.vals[j] = append(b.vals[j], src.vals[j][i])
	}
	if src.src != nil {
		b.src = append(b.src, src.src[i])
	}
	b.n++
}

// slice returns a view of rows [from, to) sharing column storage.
func (b *Batch) slice(from, to int) *Batch {
	out := &Batch{cols: b.cols, vals: make([][]value.Value, len(b.vals)), n: to - from}
	for j := range b.vals {
		out.vals[j] = b.vals[j][from:to]
	}
	if b.src != nil {
		out.src = b.src[from:to]
	}
	return out
}

// Env materializes row i as a fresh normalized environment.
func (b *Batch) Env(i int) expr.Env {
	env := make(expr.Env, len(b.cols))
	for j, c := range b.cols {
		env[c] = b.vals[j][i]
	}
	return env
}

// loadEnv overwrites the batch's columns of env with row i's values.
// Operators reuse one scratch environment across the rows of a batch:
// this is safe because expression evaluation never retains the
// environment it is handed — every extension goes through Env.With,
// which copies.
func (b *Batch) loadEnv(env expr.Env, i int) {
	for j, c := range b.cols {
		env[c] = b.vals[j][i]
	}
}

// rowVals copies row i into a fresh value slice in column order.
func (b *Batch) rowVals(i int) []value.Value {
	out := make([]value.Value, len(b.cols))
	for j := range b.cols {
		out[j] = b.vals[j][i]
	}
	return out
}

func clampMax(max int) int {
	if max < 1 {
		return 1
	}
	if max > BatchTarget {
		return BatchTarget
	}
	return max
}

// ---------------------------------------------------------------------
// Single-use state guard
// ---------------------------------------------------------------------

// opState makes the operator contract's single-use rule explicit:
// Open errors on reuse (double Open, or Open after Close), and Close
// is idempotent. Close before Open is allowed — EXPLAIN closes plans
// it never opened.
type opState struct {
	opened, closed bool
}

func (s *opState) open(name string) error {
	if s.closed {
		return internalErrorf("%s: Open after Close (operators are single-use)", name)
	}
	if s.opened {
		return internalErrorf("%s: double Open (operators are single-use)", name)
	}
	s.opened = true
	return nil
}

// close reports whether this is the first Close.
func (s *opState) close() bool {
	if s.closed {
		return false
	}
	s.closed = true
	return true
}

// ---------------------------------------------------------------------
// Memory budget
// ---------------------------------------------------------------------

// budget tracks a statement's accounted barrier memory against a
// limit. One budget is shared by every barrier of a statement (union
// members included), so concurrent barriers cannot each claim the full
// allowance — including the workers of a parallel Sort intake, which is
// why the counter is atomic. A nil budget or a non-positive limit means
// unlimited: no accounting and no spilling, the default.
type budget struct {
	limit int64
	used  atomic.Int64
}

func newBudget(limit int64) *budget { return &budget{limit: limit} }

// limited reports whether accounting (and spilling) is enabled at all.
// The limit is immutable after newBudget, so this needs no atomics.
func (b *budget) limited() bool { return b != nil && b.limit > 0 }

func (b *budget) grow(n int64) {
	if b != nil {
		b.used.Add(n)
	}
}

func (b *budget) shrink(n int64) {
	if b != nil && b.used.Add(-n) < 0 {
		// Clamp at zero; a transient negative from a concurrent shrink
		// race only under-counts for the instant before the racing grow
		// lands, which is safe (spilling is best-effort bounding).
		for {
			cur := b.used.Load()
			if cur >= 0 || b.used.CompareAndSwap(cur, 0) {
				return
			}
		}
	}
}

func (b *budget) over() bool { return b.limited() && b.used.Load() > b.limit }

// ---------------------------------------------------------------------
// EXPLAIN statistics
// ---------------------------------------------------------------------

// statsSuffix renders the per-operator execution counters appended to
// Name(). Before execution both counters are zero and the suffix is
// empty, so a plain (non-executing) EXPLAIN renders exactly as before.
func statsSuffix(rows, batches int64) string {
	if rows == 0 && batches == 0 {
		return ""
	}
	return fmt.Sprintf(" {rows=%d batches=%d}", rows, batches)
}

// barrierSuffix additionally renders the barrier's peak accounted
// memory and spill-run count when a memory budget was in force.
func barrierSuffix(rows, batches, peak, spills int64) string {
	if peak == 0 && spills == 0 {
		return statsSuffix(rows, batches)
	}
	if rows == 0 && batches == 0 && peak == 0 && spills == 0 {
		return ""
	}
	return fmt.Sprintf(" {rows=%d batches=%d peak=%s spill-runs=%d}", rows, batches, humanBytes(peak), spills)
}

func humanBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// ---------------------------------------------------------------------
// NextBatch: sources
// ---------------------------------------------------------------------

// NextBatch implements Operator: the unit table's single empty row as
// a zero-column batch.
func (o *Unit) NextBatch(max int) (*Batch, bool, error) {
	if o.done {
		return nil, false, nil
	}
	o.done = true
	b := newBatch(nil, 1)
	b.n = 1
	o.rows++
	o.batches++
	return b, true, nil
}

// NextBatch implements Operator: rows are copied straight out of the
// table's columnar window, with no per-row map.
func (o *TableScan) NextBatch(max int) (*Batch, bool, error) {
	max = clampMax(max)
	if o.bpos >= o.t.Len() {
		return nil, false, nil
	}
	end := o.bpos + max
	if end > o.t.Len() {
		end = o.t.Len()
	}
	b := newBatch(o.Columns(), end-o.bpos)
	o.t.ReadColumns(o.bpos, end, b.vals)
	b.n = end - o.bpos
	o.bpos = end
	o.rows += int64(b.n)
	o.batches++
	return b, true, nil
}

// ---------------------------------------------------------------------
// NextBatch: Match
// ---------------------------------------------------------------------

// NextBatch implements Operator. Matches are drained from the
// matcher's enumeration in slices of up to max (one coroutine switch
// per slice, not per match — see match.Cursor) and written straight
// into the output columns, skipping the per-match environment
// normalization of the row path. Input is pulled with the consumer's
// max so a LIMIT above still bounds enumeration.
func (o *Match) NextBatch(max int) (*Batch, bool, error) {
	max = clampMax(max)
	out := newBatch(o.cols, max)
	for out.n < max {
		if len(o.bbuf) > 0 {
			take := max - out.n
			if take > len(o.bbuf) {
				take = len(o.bbuf)
			}
			for _, me := range o.bbuf[:take] {
				out.appendEnv(me)
				o.emitted++
			}
			o.bbuf = o.bbuf[take:]
			continue
		}
		if o.bcur == nil {
			if o.bin == nil || o.binIdx >= o.bin.n {
				if o.bdone {
					break
				}
				in, ok, err := o.child.NextBatch(max)
				if err != nil {
					return nil, false, err
				}
				if !ok {
					o.bdone = true
					break
				}
				o.bin, o.binIdx = in, 0
			}
			env := o.bin.Env(o.binIdx)
			o.binIdx++
			o.curRow = env
			o.emitted = 0
			o.bcur = o.matcher.NewCursor(o.cl.Pattern, env, max, o.whereFilter())
			continue
		}
		envs, ok := o.bcur.Next()
		if ok {
			o.bbuf = envs
			continue
		}
		err := o.bcur.Stop()
		optional := o.cl.Optional && o.emitted == 0
		o.bcur = nil
		if err != nil {
			return nil, false, err
		}
		if optional {
			// appendEnv fills the unbound pattern variables with nulls.
			out.appendEnv(o.curRow)
		}
	}
	if out.n == 0 {
		return nil, false, nil
	}
	o.rows += int64(out.n)
	o.batches++
	return out, true, nil
}

// whereFilter returns the clause's WHERE as a cursor filter, or nil.
func (o *Match) whereFilter() func(expr.Env) (bool, error) {
	if o.cl.Where == nil {
		return nil
	}
	return func(me expr.Env) (bool, error) {
		ok, err := o.ev.EvalBool(o.cl.Where, me)
		if err != nil {
			return false, err
		}
		return ok == value.True, nil
	}
}

// ---------------------------------------------------------------------
// NextBatch: Unwind / LoadCSV
// ---------------------------------------------------------------------

// NextBatch implements Operator natively: output rows are written
// straight into the output columns — the input row's values are copied
// columnar, with no per-row environment map — and the list expression
// is evaluated once per input row over a reused scratch environment.
// Like the row path, a null list contributes nothing and a non-list
// value unwinds as a single element.
func (o *Unwind) NextBatch(max int) (*Batch, bool, error) {
	max = clampMax(max)
	out := newBatch(o.cols, max)
	nchild := len(o.cols) - 1
	for out.n < max {
		if o.idx < len(o.elems) {
			take := len(o.elems) - o.idx
			if take > max-out.n {
				take = max - out.n
			}
			for k := 0; k < take; k++ {
				for j := 0; j < nchild; j++ {
					out.vals[j] = append(out.vals[j], o.bin.vals[j][o.bcur])
				}
				v := o.elems[o.idx+k]
				if v == nil {
					v = nullValue
				}
				out.vals[nchild] = append(out.vals[nchild], v)
				out.n++
			}
			o.idx += take
			continue
		}
		if o.bin == nil || o.binIdx >= o.bin.n {
			if o.bdone {
				break
			}
			in, ok, err := o.child.NextBatch(max)
			if err != nil {
				return nil, false, err
			}
			if !ok {
				o.bdone = true
				break
			}
			o.bin, o.binIdx = in, 0
			continue
		}
		if o.bscratch == nil {
			o.bscratch = make(expr.Env, len(o.cols)+4)
		}
		o.bin.loadEnv(o.bscratch, o.binIdx)
		v, err := o.ev.Eval(o.cl.Expr, o.bscratch)
		if err != nil {
			return nil, false, err
		}
		o.bcur = o.binIdx
		o.binIdx++
		switch lv := v.(type) {
		case value.Null:
			// contributes no rows
		case value.List:
			o.elems, o.idx = lv, 0
		default:
			o.elems, o.idx = value.List{v}, 0
		}
	}
	if out.n == 0 {
		return nil, false, nil
	}
	o.rows += int64(out.n)
	o.batches++
	return out, true, nil
}

// NextBatch implements Operator natively: each CSV data row is written
// straight into the output columns next to a columnar copy of the
// input row that opened the file. Rows are still read from the file
// one at a time as the consumer pulls, so early exit stops reading
// mid-file exactly as in the row path.
func (o *LoadCSV) NextBatch(max int) (*Batch, bool, error) {
	max = clampMax(max)
	out := newBatch(o.cols, max)
	nchild := len(o.cols) - 1
	for out.n < max {
		if o.reader != nil {
			v, ok, err := o.reader.Next()
			if err != nil {
				return nil, false, err
			}
			if ok {
				for j := 0; j < nchild; j++ {
					out.vals[j] = append(out.vals[j], o.bin.vals[j][o.bcur])
				}
				if v == nil {
					v = nullValue
				}
				out.vals[nchild] = append(out.vals[nchild], v)
				out.n++
				continue
			}
			o.reader.Close()
			o.reader = nil
		}
		if o.bin == nil || o.binIdx >= o.bin.n {
			if o.bdone {
				break
			}
			in, ok, err := o.child.NextBatch(max)
			if err != nil {
				return nil, false, err
			}
			if !ok {
				o.bdone = true
				break
			}
			o.bin, o.binIdx = in, 0
			continue
		}
		if o.bscratch == nil {
			o.bscratch = make(expr.Env, len(o.cols)+4)
		}
		o.bin.loadEnv(o.bscratch, o.binIdx)
		urlVal, err := o.ev.Eval(o.cl.URL, o.bscratch)
		if err != nil {
			return nil, false, err
		}
		url, oks := value.AsString(urlVal)
		if !oks {
			return nil, false, fmt.Errorf("LOAD CSV FROM expects a string, got %s", urlVal.Kind())
		}
		r, err := OpenCSV(string(url), o.cl.FieldTerm, o.cl.WithHeaders)
		if err != nil {
			return nil, false, err
		}
		o.bcur = o.binIdx
		o.binIdx++
		o.reader = r
	}
	if out.n == 0 {
		return nil, false, nil
	}
	o.rows += int64(out.n)
	o.batches++
	return out, true, nil
}

// ---------------------------------------------------------------------
// NextBatch: Filter / Project / Distinct / Skip / Limit
// ---------------------------------------------------------------------

// NextBatch implements Operator. The predicate is evaluated over a
// scratch environment reused across rows; a batch that passes in full
// is forwarded without copying.
func (o *Filter) NextBatch(max int) (*Batch, bool, error) {
	for {
		in, ok, err := o.child.NextBatch(max)
		if err != nil || !ok {
			return nil, false, err
		}
		if o.scratch == nil {
			o.scratch = make(expr.Env, len(in.cols))
		}
		sel := o.selbuf[:0]
		for i := 0; i < in.n; i++ {
			in.loadEnv(o.scratch, i)
			keep, err := o.ev.EvalBool(o.pred, o.scratch)
			if err != nil {
				return nil, false, err
			}
			if keep == value.True {
				sel = append(sel, i)
			}
		}
		o.selbuf = sel
		if len(sel) == 0 {
			continue
		}
		o.rows += int64(len(sel))
		o.batches++
		if len(sel) == in.n {
			return in, true, nil
		}
		out := newBatch(in.cols, len(sel))
		for _, i := range sel {
			out.appendRowFrom(in, i)
		}
		return out, true, nil
	}
}

// NextBatch implements Operator. Items are evaluated over a reused
// scratch environment and written into fresh output columns; the only
// per-row allocation on the hot path is the values themselves. With
// keepSrc each input row's environment is materialized and attached so
// a downstream Sort can evaluate ORDER BY keys over it.
func (o *Project) NextBatch(max int) (*Batch, bool, error) {
	in, ok, err := o.child.NextBatch(max)
	if err != nil || !ok {
		return nil, false, err
	}
	if o.scratch == nil {
		o.scratch = make(expr.Env, len(in.cols))
		o.outScratch = make(expr.Env, len(o.items))
	}
	out := newBatch(o.cols, in.n)
	for i := 0; i < in.n; i++ {
		in.loadEnv(o.scratch, i)
		for _, it := range o.items {
			v, err := o.ev.Eval(it.Expr, o.scratch)
			if err != nil {
				return nil, false, err
			}
			o.outScratch[it.Alias] = v
		}
		out.appendEnv(o.outScratch)
		if o.keepSrc {
			out.src = append(out.src, in.Env(i))
		}
	}
	o.rows += int64(out.n)
	o.batches++
	return out, true, nil
}

// NextBatch implements Operator; see distinctNextBatch in spill.go for
// the spilling seen-set.
func (o *Distinct) NextBatch(max int) (*Batch, bool, error) {
	return o.distinctNextBatch(max)
}

// NextBatch implements Operator. The skip phase pulls batches sized to
// the remaining skip count, so the total child pulls match the row
// discipline exactly.
func (o *Skip) NextBatch(max int) (*Batch, bool, error) {
	if !o.ready {
		if err := o.ensure(); err != nil {
			return nil, false, err
		}
		rem := o.n
		for rem > 0 {
			want := rem
			if want > BatchTarget {
				want = BatchTarget
			}
			if m := clampMax(max); want < m {
				want = m
			}
			b, ok, err := o.child.NextBatch(want)
			if err != nil {
				return nil, false, err
			}
			if !ok {
				return nil, false, nil
			}
			if b.n <= rem {
				rem -= b.n
				continue
			}
			out := b.slice(rem, b.n)
			o.rows += int64(out.n)
			o.batches++
			return out, true, nil
		}
	}
	b, ok, err := o.child.NextBatch(max)
	if ok {
		o.rows += int64(b.n)
		o.batches++
	}
	return b, ok, err
}

// NextBatch implements Operator. The child is pulled with the
// remaining row allowance, so upstream operators (Match enumeration in
// particular) never do more than one batch of excess work.
func (o *Limit) NextBatch(max int) (*Batch, bool, error) {
	if !o.ready {
		if err := o.ensure(); err != nil {
			return nil, false, err
		}
	}
	rem := int64(o.n) - o.rows
	if rem <= 0 {
		return nil, false, nil
	}
	want := clampMax(max)
	if int64(want) > rem {
		want = int(rem)
	}
	b, ok, err := o.child.NextBatch(want)
	if err != nil || !ok {
		return nil, false, err
	}
	if int64(b.n) > rem {
		b = b.slice(0, int(rem))
	}
	o.rows += int64(b.n)
	o.batches++
	return b, true, nil
}

// ---------------------------------------------------------------------
// NextBatch: barriers
// ---------------------------------------------------------------------

// NextBatch implements Operator, replaying the externally sorted
// stream in batches.
func (o *Sort) NextBatch(max int) (*Batch, bool, error) {
	if !o.filled {
		if err := o.fill(); err != nil {
			return nil, false, err
		}
		o.filled = true
	}
	max = clampMax(max)
	b := newBatch(o.Columns(), max)
	for b.n < max {
		r, ok, err := o.next1()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			break
		}
		b.appendVals(r.vals)
	}
	if b.n == 0 {
		return nil, false, nil
	}
	o.rows += int64(b.n)
	o.batches++
	return b, true, nil
}

// NextBatch implements Operator, replaying the finalized groups in
// batches.
func (o *Aggregate) NextBatch(max int) (*Batch, bool, error) {
	if !o.done {
		if err := o.fill(); err != nil {
			return nil, false, err
		}
		o.done = true
	}
	if o.idx >= len(o.out) {
		return nil, false, nil
	}
	max = clampMax(max)
	b := newBatch(o.cols, max)
	for b.n < max && o.idx < len(o.out) {
		b.appendEnv(o.out[o.idx])
		o.idx++
	}
	o.rows += int64(b.n)
	o.batches++
	return b, true, nil
}

// NextBatch implements Operator, replaying the update's output table
// in columnar batches.
func (o *Apply) NextBatch(max int) (*Batch, bool, error) {
	if !o.done {
		if err := o.fill(); err != nil {
			return nil, false, err
		}
		o.done = true
	}
	if o.outIdx >= o.out.Len() {
		return nil, false, nil
	}
	end := o.outIdx + clampMax(max)
	if end > o.out.Len() {
		end = o.out.Len()
	}
	b := newBatch(o.cols, end-o.outIdx)
	o.out.ReadColumns(o.outIdx, end, b.vals)
	b.n = end - o.outIdx
	o.outIdx = end
	o.rows += int64(b.n)
	o.batches++
	return b, true, nil
}

// NextBatch implements Operator: the child is drained batch-at-a-time
// for effects, emitting nothing.
func (o *Discard) NextBatch(max int) (*Batch, bool, error) {
	if o.done {
		return nil, false, nil
	}
	o.done = true
	for {
		_, ok, err := o.child.NextBatch(BatchTarget)
		if err != nil {
			return nil, false, err
		}
		if !ok {
			return nil, false, nil
		}
		o.batches++
	}
}

// NextBatch implements Operator, streaming members left to right like
// Next. Member batches are forwarded as-is when the member's column
// order matches the union's, and re-mapped otherwise.
func (o *Union) NextBatch(max int) (*Batch, bool, error) {
	for o.idx < len(o.children) {
		b, ok, err := o.children[o.idx].NextBatch(max)
		if err != nil {
			return nil, false, err
		}
		if !ok {
			o.idx++
			continue
		}
		if o.idx > 0 {
			b = remapBatch(b, o.Columns())
		}
		o.rows += int64(b.n)
		o.batches++
		return b, true, nil
	}
	return nil, false, nil
}

// remapBatch reorders a batch's columns to the given order (a
// permutation of its own). Shares column storage; no copying.
func remapBatch(b *Batch, cols []string) *Batch {
	same := len(cols) == len(b.cols)
	if same {
		for j := range cols {
			if cols[j] != b.cols[j] {
				same = false
				break
			}
		}
	}
	if same {
		return b
	}
	out := &Batch{cols: cols, vals: make([][]value.Value, len(cols)), src: b.src, n: b.n}
	for j, c := range cols {
		for k, bc := range b.cols {
			if bc == c {
				out.vals[j] = b.vals[k]
				break
			}
		}
	}
	return out
}
