package plan

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/expr"
	"repro/internal/match"
	"repro/internal/table"
)

// Builder lowers parsed statements into operator trees. The engine
// supplies the evaluator, a matcher factory (so each Match operator
// carries its own visit counters), and the update-clause hook: plan
// knows *where* a write barrier goes, core knows *what* the write does
// (dialect, merge strategy, scan order).
type Builder struct {
	// Ev evaluates expressions; shared with the engine so aggregate
	// result plumbing and parameters behave identically in both
	// executors.
	Ev *expr.Evaluator
	// NewMatcher returns a fresh matcher for one MATCH operator.
	NewMatcher func() *match.Matcher
	// Write applies an update clause to a materialized driving table
	// and returns the clause's output table (the [[C]](G, T) of the
	// paper, with the graph mutated in place).
	Write func(c ast.Clause, in *table.Table) (*table.Table, error)
	// MemoryBudget caps the accounted bytes the statement's barriers
	// (Sort, Aggregate, Distinct) may hold in memory before spilling to
	// temp files. Zero or negative means unlimited (no accounting).
	// One budget is shared across all barriers of the statement.
	MemoryBudget int64

	bud *budget
}

// BuildStatement lowers a whole statement: one pipeline per UNION
// member over its own copy of the initial table (nil t0 means the unit
// table), a sequential Union on top, and a Distinct when any plain
// UNION asks for bag deduplication.
func (b *Builder) BuildStatement(stmt *ast.Statement, t0 *table.Table) (Operator, error) {
	if b.MemoryBudget > 0 {
		b.bud = newBudget(b.MemoryBudget)
	} else {
		b.bud = nil
	}
	members := make([]Operator, 0, len(stmt.Queries))
	for _, q := range stmt.Queries {
		var src Operator
		if t0 != nil {
			src = NewTableScan(t0.Clone())
		} else {
			src = NewUnit()
		}
		root, err := b.BuildQuery(q.Clauses, src)
		if err != nil {
			return nil, err
		}
		members = append(members, root)
	}
	if len(members) == 1 {
		return members[0], nil
	}
	first := members[0].Columns()
	for _, m := range members[1:] {
		if err := unionCompatible(first, m.Columns()); err != nil {
			return nil, err
		}
	}
	var root Operator = NewUnion(members)
	// Plain UNION deduplicates; UNION ALL everywhere keeps duplicates
	// (mixed unions apply the strictest form, as in the materializing
	// executor).
	allAll := true
	for _, a := range stmt.UnionAll {
		if !a {
			allAll = false
		}
	}
	if !allAll {
		d := NewDistinct(root)
		d.budget = b.bud
		root = d
	}
	return root, nil
}

func unionCompatible(a, b []string) error {
	if len(a) != len(b) {
		return fmt.Errorf("UNION requires the same return columns (%v vs %v)", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			return fmt.Errorf("UNION requires the same return columns (%v vs %v)", a, b)
		}
	}
	return nil
}

// BuildQuery lowers one single query's clause list over the given
// source operator. Reading clauses and projections become streaming
// operators; every update clause becomes an Apply barrier delegating to
// the Write hook; a query without RETURN is wrapped in Discard (it
// outputs no table, only effects).
func (b *Builder) BuildQuery(clauses []ast.Clause, src Operator) (Operator, error) {
	cur := src
	returned := false
	for _, c := range clauses {
		var err error
		switch cl := c.(type) {
		case *ast.MatchClause:
			newVars := freshVars(match.PatternVariables(cl.Pattern), cur.Columns())
			cur = NewMatch(cur, cl, b.NewMatcher(), b.Ev, newVars)
		case *ast.UnwindClause:
			if hasColumn(cur.Columns(), cl.Var) {
				return nil, fmt.Errorf("variable `%s` already declared", cl.Var)
			}
			cur = NewUnwind(cur, cl, b.Ev)
		case *ast.LoadCSVClause:
			if hasColumn(cur.Columns(), cl.Var) {
				return nil, fmt.Errorf("variable `%s` already declared", cl.Var)
			}
			cur = NewLoadCSV(cur, cl, b.Ev)
		case *ast.WithClause:
			cur, err = b.buildProjection(cur, &cl.Projection, cl.Where)
		case *ast.ReturnClause:
			cur, err = b.buildProjection(cur, &cl.Projection, nil)
			returned = true
		default:
			cur, err = b.buildWrite(cur, c)
		}
		if err != nil {
			return nil, err
		}
	}
	if !returned {
		cur = NewDiscard(cur)
	}
	return cur, nil
}

// buildWrite wraps an update clause in an Apply barrier, predicting its
// output columns (CREATE and MERGE extend the table with the pattern's
// fresh variables; SET, REMOVE, DELETE and FOREACH preserve columns).
func (b *Builder) buildWrite(child Operator, c ast.Clause) (Operator, error) {
	if b.Write == nil {
		return nil, fmt.Errorf("unsupported clause %T", c)
	}
	cols := append([]string(nil), child.Columns()...)
	label := fmt.Sprintf("%T", c)
	switch cl := c.(type) {
	case *ast.CreateClause:
		cols = append(cols, freshVars(patternVarsCreateOrder(cl.Pattern), cols)...)
		label = "CREATE"
	case *ast.MergeClause:
		cols = append(cols, freshVars(patternVarsCreateOrder(cl.Pattern), cols)...)
		label = cl.Form.String()
	case *ast.SetClause:
		label = "SET"
	case *ast.RemoveClause:
		label = "REMOVE"
	case *ast.DeleteClause:
		label = "DELETE"
		if cl.Detach {
			label = "DETACH DELETE"
		}
	case *ast.ForeachClause:
		label = "FOREACH"
	}
	fn := func(in *table.Table) (*table.Table, error) { return b.Write(c, in) }
	return NewApply(child, label, cols, fn), nil
}

func (b *Builder) buildProjection(child Operator, proj *ast.Projection, where ast.Expr) (Operator, error) {
	items, err := expandItems(proj, child.Columns())
	if err != nil {
		return nil, err
	}
	cols := make([]string, len(items))
	seen := make(map[string]bool, len(items))
	for i, it := range items {
		cols[i] = it.Alias
		if seen[it.Alias] {
			return nil, fmt.Errorf("duplicate column name %q in projection", it.Alias)
		}
		seen[it.Alias] = true
	}

	hasAgg := false
	for _, it := range items {
		if ast.ContainsAggregate(it.Expr) {
			hasAgg = true
			break
		}
	}

	var cur Operator
	if hasAgg {
		agg := NewAggregate(child, items, cols, b.Ev)
		agg.budget = b.bud
		cur = agg
	} else {
		// ORDER BY over a plain projection may also reference the
		// pre-projection variables (the projection is row-to-row), so
		// keep each record's source environment until the sort — unless
		// DISTINCT breaks the correspondence first.
		keepSrc := len(proj.OrderBy) > 0 && !proj.Distinct
		cur = NewProject(child, items, cols, b.Ev, keepSrc)
	}
	if proj.Distinct {
		d := NewDistinct(cur)
		d.budget = b.bud
		cur = d
	}
	if len(proj.OrderBy) > 0 {
		s := NewSort(cur, proj.OrderBy, b.Ev)
		s.budget = b.bud
		cur = s
	}
	if proj.Skip != nil {
		cur = NewSkip(cur, proj.Skip, b.Ev)
	}
	if proj.Limit != nil {
		cur = NewLimit(cur, proj.Limit, b.Ev)
	}
	if where != nil {
		cur = NewFilter(cur, where, b.Ev)
	}
	return cur, nil
}

// expandItems resolves * and default aliases against the columns in
// scope, mirroring the materializing executor.
func expandItems(proj *ast.Projection, cols []string) ([]Item, error) {
	var items []Item
	if proj.Star {
		if len(cols) == 0 && len(proj.Items) == 0 {
			return nil, fmt.Errorf("RETURN * is not allowed when there are no variables in scope")
		}
		for _, c := range cols {
			items = append(items, Item{Expr: &ast.Variable{Name: c}, Alias: c})
		}
	}
	for _, it := range proj.Items {
		alias := it.Alias
		if alias == "" {
			if v, ok := it.Expr.(*ast.Variable); ok {
				alias = v.Name
			} else {
				alias = it.Expr.String()
			}
		}
		items = append(items, Item{Expr: it.Expr, Alias: alias})
	}
	return items, nil
}

// patternVarsCreateOrder lists a pattern tuple's variables in the order
// CREATE/MERGE bind them: per part, the path variable, then node and
// relationship variables interleaved left to right.
func patternVarsCreateOrder(parts []*ast.PatternPart) []string {
	var out []string
	seen := make(map[string]bool)
	add := func(name string) {
		if name != "" && !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	for _, part := range parts {
		add(part.Var)
		for i, n := range part.Nodes {
			add(n.Var)
			if i < len(part.Rels) {
				add(part.Rels[i].Var)
			}
		}
	}
	return out
}

func freshVars(vars, cols []string) []string {
	var out []string
	for _, v := range vars {
		if !hasColumn(cols, v) {
			out = append(out, v)
		}
	}
	return out
}

func hasColumn(cols []string, name string) bool {
	for _, c := range cols {
		if c == name {
			return true
		}
	}
	return false
}
