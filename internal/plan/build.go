package plan

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/expr"
	"repro/internal/match"
	"repro/internal/table"
)

// Builder lowers parsed statements into operator trees. The engine
// supplies the evaluator, a matcher factory (so each Match operator
// carries its own visit counters), and the update-clause hook: plan
// knows *where* a write barrier goes, core knows *what* the write does
// (dialect, merge strategy, scan order).
type Builder struct {
	// Ev evaluates expressions; shared with the engine so aggregate
	// result plumbing and parameters behave identically in both
	// executors.
	Ev *expr.Evaluator
	// NewMatcher returns a fresh matcher for one MATCH operator, bound
	// to the given evaluator (parallel workers pass their private
	// evaluator; the serial pipeline passes Ev).
	NewMatcher func(ev *expr.Evaluator) *match.Matcher
	// Write applies an update clause to a materialized driving table
	// and returns the clause's output table (the [[C]](G, T) of the
	// paper, with the graph mutated in place).
	Write func(c ast.Clause, in *table.Table) (*table.Table, error)
	// MemoryBudget caps the accounted bytes the statement's barriers
	// (Sort, Aggregate, Distinct) may hold in memory before spilling to
	// temp files. Zero or negative means unlimited (no accounting).
	// One budget is shared across all barriers of the statement.
	MemoryBudget int64
	// Parallelism is the exchange degree for morsel-driven parallel
	// read segments. Values <= 1 build fully serial plans. The engine
	// passes 1 for update statements and explicit-transaction pipelines
	// (the single-writer baton stays untouched) and for the row-at-a-time
	// and materializing executors.
	Parallelism int

	bud *budget
}

// segBuild tracks a parallelizable pipeline segment while BuildQuery
// walks the clause list: the partitioned source (once found) and the
// stage constructors absorbed so far. The serial chain is built
// alongside as the exchange's prototype; endSeg either wraps it in an
// Exchange or — when no partitionable source materialized — leaves it
// as the actual pipeline.
type segBuild struct {
	source morselSource
	stages []stageFn
	dead   bool
}

func (s *segBuild) alive() bool { return s != nil && !s.dead }

// newSegment opens a segment at a pipeline source. A driving table
// partitions by row ranges immediately; the unit table defers to the
// first MATCH clause, whose anchor candidates may partition instead.
func (b *Builder) newSegment(src Operator) *segBuild {
	if b.Parallelism <= 1 {
		return nil
	}
	switch op := src.(type) {
	case *TableScan:
		if op.t.Len() < 2*scanMorselRows {
			return nil // too small for the fan-out to pay for itself
		}
		return &segBuild{source: newScanSource(op.t)}
	case *Unit:
		return &segBuild{}
	}
	return nil
}

// newWorkerCtx builds one worker's private execution context: an
// evaluator sharing the graph snapshot and parameters but nothing
// mutable, plus the per-stage matcher cache.
func (b *Builder) newWorkerCtx() *workerCtx {
	ev := &expr.Evaluator{Graph: b.Ev.Graph, Params: b.Ev.Params}
	return &workerCtx{ev: ev, mf: b.NewMatcher, matchers: map[int]*match.Matcher{}}
}

// endSeg terminates a segment: if it found a partitionable source and
// absorbed at least one stage worth running in parallel, the serial
// chain built so far becomes the prototype of an Exchange, which
// replaces it as the pipeline; otherwise the serial chain stands.
func (b *Builder) endSeg(seg *segBuild, cur Operator) Operator {
	if !seg.alive() {
		return cur
	}
	seg.dead = true
	if seg.source == nil {
		return cur
	}
	if _, bare := seg.source.(*scanSource); bare && len(seg.stages) == 0 {
		return cur // a bare scan gains nothing from fan-out
	}
	return NewExchange(seg.source, seg.stages, cur, b.Parallelism, b.newWorkerCtx)
}

// BuildStatement lowers a whole statement: one pipeline per UNION
// member over its own copy of the initial table (nil t0 means the unit
// table), a sequential Union on top, and a Distinct when any plain
// UNION asks for bag deduplication.
func (b *Builder) BuildStatement(stmt *ast.Statement, t0 *table.Table) (Operator, error) {
	if b.MemoryBudget > 0 {
		b.bud = newBudget(b.MemoryBudget)
	} else {
		b.bud = nil
	}
	members := make([]Operator, 0, len(stmt.Queries))
	for _, q := range stmt.Queries {
		var src Operator
		if t0 != nil {
			src = NewTableScan(t0.Clone())
		} else {
			src = NewUnit()
		}
		root, err := b.BuildQuery(q.Clauses, src)
		if err != nil {
			return nil, err
		}
		members = append(members, root)
	}
	if len(members) == 1 {
		return members[0], nil
	}
	first := members[0].Columns()
	for _, m := range members[1:] {
		if err := unionCompatible(first, m.Columns()); err != nil {
			return nil, err
		}
	}
	var root Operator = NewUnion(members)
	// Plain UNION deduplicates; UNION ALL everywhere keeps duplicates
	// (mixed unions apply the strictest form, as in the materializing
	// executor).
	allAll := true
	for _, a := range stmt.UnionAll {
		if !a {
			allAll = false
		}
	}
	if !allAll {
		d := NewDistinct(root)
		d.budget = b.bud
		root = d
	}
	return root, nil
}

func unionCompatible(a, b []string) error {
	if len(a) != len(b) {
		return fmt.Errorf("UNION requires the same return columns (%v vs %v)", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			return fmt.Errorf("UNION requires the same return columns (%v vs %v)", a, b)
		}
	}
	return nil
}

// BuildQuery lowers one single query's clause list over the given
// source operator. Reading clauses and projections become streaming
// operators; every update clause becomes an Apply barrier delegating to
// the Write hook; a query without RETURN is wrapped in Discard (it
// outputs no table, only effects).
func (b *Builder) BuildQuery(clauses []ast.Clause, src Operator) (Operator, error) {
	cur := src
	seg := b.newSegment(src)
	returned := false
	for _, c := range clauses {
		var err error
		switch cl := c.(type) {
		case *ast.MatchClause:
			cl = b.foldMatchClause(cl)
			newVars := freshVars(match.PatternVariables(cl.Pattern), cur.Columns())
			if seg.alive() && seg.source == nil {
				// A segment waiting on the unit source: this first MATCH
				// either supplies anchor morsels or the segment dies (a
				// later clause cannot become the partitioned source).
				if asrc := b.anchorSegSource(cl, cur.Columns()); asrc != nil {
					seg.source = asrc
				} else {
					seg.dead = true
				}
				cur = NewMatch(cur, cl, b.NewMatcher(b.Ev), b.Ev, newVars)
			} else if seg.alive() {
				cur = NewMatch(cur, cl, b.NewMatcher(b.Ev), b.Ev, newVars)
				idx := len(seg.stages)
				seg.stages = append(seg.stages, func(child Operator, w *workerCtx) Operator {
					return NewMatch(child, cl, w.matcherFor(idx), w.ev, newVars)
				})
			} else {
				cur = NewMatch(cur, cl, b.NewMatcher(b.Ev), b.Ev, newVars)
			}
		case *ast.UnwindClause:
			if hasColumn(cur.Columns(), cl.Var) {
				return nil, fmt.Errorf("variable `%s` already declared", cl.Var)
			}
			cl = b.foldUnwindClause(cl)
			cur = NewUnwind(cur, cl, b.Ev)
			if seg.alive() && seg.source != nil {
				seg.stages = append(seg.stages, func(child Operator, w *workerCtx) Operator {
					return NewUnwind(child, cl, w.ev)
				})
			} else {
				seg.kill()
			}
		case *ast.LoadCSVClause:
			if hasColumn(cur.Columns(), cl.Var) {
				return nil, fmt.Errorf("variable `%s` already declared", cl.Var)
			}
			// CSV reading is a serial file cursor: it terminates the
			// segment rather than becoming a stage.
			cur = b.endSeg(seg, cur)
			cur = NewLoadCSV(cur, cl, b.Ev)
		case *ast.WithClause:
			cur, err = b.buildProjection(cur, &cl.Projection, cl.Where, seg)
		case *ast.ReturnClause:
			cur, err = b.buildProjection(cur, &cl.Projection, nil, seg)
			returned = true
		default:
			cur = b.endSeg(seg, cur)
			cur, err = b.buildWrite(cur, c)
		}
		if err != nil {
			return nil, err
		}
	}
	cur = b.endSeg(seg, cur)
	if !returned {
		cur = NewDiscard(cur)
	}
	return cur, nil
}

// kill marks a segment unusable without flushing it (used when a
// clause can be neither source nor stage before a source was found).
func (s *segBuild) kill() {
	if s != nil {
		s.dead = true
	}
}

// anchorSegSource plans anchor-candidate morsels for a leading
// non-optional MATCH over the unit table. It returns nil — and the
// pipeline stays serial — when the clause is OPTIONAL (each empty
// partition would emit a spurious null row), when the planner cannot
// guarantee a partitionable enumeration (see match.PlanAnchors), or
// when there are too few candidates to be worth fanning out.
func (b *Builder) anchorSegSource(cl *ast.MatchClause, outer []string) *anchorSource {
	if cl.Optional {
		return nil
	}
	m := b.NewMatcher(b.Ev)
	pushed := match.NewPushdown(cl.Where, cl.Pattern, outer)
	m.SetPushdown(pushed)
	ap, ok := m.PlanAnchors(cl.Pattern, expr.Env{})
	if !ok || len(ap.Anchors()) < 2*minAnchorChunk {
		return nil
	}
	newVars := freshVars(match.PatternVariables(cl.Pattern), outer)
	cols := append(append([]string(nil), outer...), newVars...)
	return &anchorSource{
		ap:     ap,
		cl:     cl,
		pushed: pushed,
		cols:   cols,
		chunk:  anchorChunk(len(ap.Anchors()), b.Parallelism),
	}
}

// buildWrite wraps an update clause in an Apply barrier, predicting its
// output columns (CREATE and MERGE extend the table with the pattern's
// fresh variables; SET, REMOVE, DELETE and FOREACH preserve columns).
func (b *Builder) buildWrite(child Operator, c ast.Clause) (Operator, error) {
	if b.Write == nil {
		return nil, fmt.Errorf("unsupported clause %T", c)
	}
	cols := append([]string(nil), child.Columns()...)
	label := fmt.Sprintf("%T", c)
	switch cl := c.(type) {
	case *ast.CreateClause:
		cols = append(cols, freshVars(patternVarsCreateOrder(cl.Pattern), cols)...)
		label = "CREATE"
	case *ast.MergeClause:
		cols = append(cols, freshVars(patternVarsCreateOrder(cl.Pattern), cols)...)
		label = cl.Form.String()
	case *ast.SetClause:
		label = "SET"
	case *ast.RemoveClause:
		label = "REMOVE"
	case *ast.DeleteClause:
		label = "DELETE"
		if cl.Detach {
			label = "DETACH DELETE"
		}
	case *ast.ForeachClause:
		label = "FOREACH"
	}
	fn := func(in *table.Table) (*table.Table, error) { return b.Write(c, in) }
	return NewApply(child, label, cols, fn), nil
}

func (b *Builder) buildProjection(child Operator, proj *ast.Projection, where ast.Expr, seg *segBuild) (Operator, error) {
	items, err := expandItems(proj, child.Columns())
	if err != nil {
		return nil, err
	}
	// Constant-fold after aliasing: default column names come from the
	// ORIGINAL expression text, so folding cannot rename a column.
	// Items containing aggregates are skipped wholesale because the
	// aggregation machinery keys per-group results by FuncCall node
	// identity.
	for i := range items {
		if !ast.ContainsAggregate(items[i].Expr) {
			items[i].Expr = b.fold(items[i].Expr)
		}
	}
	orderBy := b.foldSortItems(proj.OrderBy)
	if where != nil && !ast.ContainsAggregate(where) {
		where = b.fold(where)
	}
	cols := make([]string, len(items))
	seen := make(map[string]bool, len(items))
	for i, it := range items {
		cols[i] = it.Alias
		if seen[it.Alias] {
			return nil, fmt.Errorf("duplicate column name %q in projection", it.Alias)
		}
		seen[it.Alias] = true
	}

	hasAgg := false
	for _, it := range items {
		if ast.ContainsAggregate(it.Expr) {
			hasAgg = true
			break
		}
	}

	var cur Operator
	if hasAgg {
		// Aggregation is a barrier: the segment ends here and the
		// Aggregate consumes the exchange's ordered gather (parallel
		// below the barrier, serial intake above it).
		child = b.endSeg(seg, child)
		agg := NewAggregate(child, items, cols, b.Ev)
		agg.budget = b.bud
		cur = agg
	} else {
		// ORDER BY over a plain projection may also reference the
		// pre-projection variables (the projection is row-to-row), so
		// keep each record's source environment until the sort — unless
		// DISTINCT breaks the correspondence first.
		keepSrc := len(proj.OrderBy) > 0 && !proj.Distinct
		cur = NewProject(child, items, cols, b.Ev, keepSrc)
		if seg.alive() && seg.source != nil {
			seg.stages = append(seg.stages, func(c Operator, w *workerCtx) Operator {
				return NewProject(c, items, cols, w.ev, keepSrc)
			})
		} else {
			seg.kill()
		}
	}
	if proj.Distinct {
		cur = b.endSeg(seg, cur)
		d := NewDistinct(cur)
		d.budget = b.bud
		cur = d
	}
	if len(orderBy) > 0 {
		// Sort is parallel-aware: when its child ends up being an
		// Exchange it drains it in callback mode, building per-worker
		// sorted runs merged by the ordinary k-way merger.
		cur = b.endSeg(seg, cur)
		s := NewSort(cur, orderBy, b.Ev)
		s.budget = b.bud
		cur = s
	}
	if proj.Skip != nil {
		cur = b.endSeg(seg, cur)
		cur = NewSkip(cur, proj.Skip, b.Ev)
	}
	if proj.Limit != nil {
		cur = b.endSeg(seg, cur)
		cur = NewLimit(cur, proj.Limit, b.Ev)
	}
	if where != nil {
		if seg.alive() && seg.source != nil {
			seg.stages = append(seg.stages, func(c Operator, w *workerCtx) Operator {
				return NewFilter(c, where, w.ev)
			})
		}
		cur = NewFilter(cur, where, b.Ev)
	}
	return cur, nil
}

// fold runs the expression constant-folding pass (see expr.Fold); the
// result is semantically identical, with closed pure subtrees collapsed
// to plan-time constants that EXPLAIN renders in place of the original
// text.
func (b *Builder) fold(e ast.Expr) ast.Expr {
	if e == nil || b.Ev == nil {
		return e
	}
	return expr.Fold(e, b.Ev)
}

// foldMatchClause folds a MATCH clause's WHERE. The folded clause is a
// shallow copy sharing the original Pattern slice: match plan cache
// entries key on pattern-part pointer identity, so the fold must leave
// every pattern node untouched for cross-execution cache hits to keep
// working.
func (b *Builder) foldMatchClause(cl *ast.MatchClause) *ast.MatchClause {
	folded := b.fold(cl.Where)
	if folded == cl.Where {
		return cl
	}
	return &ast.MatchClause{Optional: cl.Optional, Pattern: cl.Pattern, Where: folded}
}

func (b *Builder) foldUnwindClause(cl *ast.UnwindClause) *ast.UnwindClause {
	folded := b.fold(cl.Expr)
	if folded == cl.Expr {
		return cl
	}
	return &ast.UnwindClause{Expr: folded, Var: cl.Var}
}

func (b *Builder) foldSortItems(items []*ast.SortItem) []*ast.SortItem {
	out := items
	for i, it := range items {
		if ast.ContainsAggregate(it.Expr) {
			continue
		}
		folded := b.fold(it.Expr)
		if folded == it.Expr {
			continue
		}
		if len(out) == len(items) && &out[0] == &items[0] {
			out = append([]*ast.SortItem(nil), items...)
		}
		out[i] = &ast.SortItem{Expr: folded, Desc: it.Desc}
	}
	return out
}

// expandItems resolves * and default aliases against the columns in
// scope, mirroring the materializing executor.
func expandItems(proj *ast.Projection, cols []string) ([]Item, error) {
	var items []Item
	if proj.Star {
		if len(cols) == 0 && len(proj.Items) == 0 {
			return nil, fmt.Errorf("RETURN * is not allowed when there are no variables in scope")
		}
		for _, c := range cols {
			items = append(items, Item{Expr: &ast.Variable{Name: c}, Alias: c})
		}
	}
	for _, it := range proj.Items {
		alias := it.Alias
		if alias == "" {
			if v, ok := it.Expr.(*ast.Variable); ok {
				alias = v.Name
			} else {
				alias = it.Expr.String()
			}
		}
		items = append(items, Item{Expr: it.Expr, Alias: alias})
	}
	return items, nil
}

// patternVarsCreateOrder lists a pattern tuple's variables in the order
// CREATE/MERGE bind them: per part, the path variable, then node and
// relationship variables interleaved left to right.
func patternVarsCreateOrder(parts []*ast.PatternPart) []string {
	var out []string
	seen := make(map[string]bool)
	add := func(name string) {
		if name != "" && !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	for _, part := range parts {
		add(part.Var)
		for i, n := range part.Nodes {
			add(n.Var)
			if i < len(part.Rels) {
				add(part.Rels[i].Var)
			}
		}
	}
	return out
}

func freshVars(vars, cols []string) []string {
	var out []string
	for _, v := range vars {
		if !hasColumn(cols, v) {
			out = append(out, v)
		}
	}
	return out
}

func hasColumn(cols []string, name string) bool {
	for _, c := range cols {
		if c == name {
			return true
		}
	}
	return false
}
