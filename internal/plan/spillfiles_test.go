package plan

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSpillDirConfigurable(t *testing.T) {
	defer SetSpillDir("")
	if SpillDir() != os.TempDir() {
		t.Fatalf("default spill dir = %q, want os.TempDir()", SpillDir())
	}
	dir := t.TempDir()
	SetSpillDir(dir)
	if SpillDir() != dir {
		t.Fatalf("spill dir = %q after SetSpillDir(%q)", SpillDir(), dir)
	}
	f, err := newSpillFile()
	if err != nil {
		t.Fatal(err)
	}
	name := f.f.Name()
	f.discard()
	if filepath.Dir(name) != dir {
		t.Fatalf("spill file %q not in configured dir %q", name, dir)
	}
	if !strings.HasPrefix(filepath.Base(name), spillFilePrefix()) {
		t.Fatalf("spill file %q lacks the recognizable prefix %q", name, spillFilePrefix())
	}
}

func TestSweepSpillOrphans(t *testing.T) {
	dir := t.TempDir()
	// An orphan from a process that no longer exists, a live file from
	// this process, and an unrelated file.
	orphan := filepath.Join(dir, "repro-spill-p999999999-x")
	ours := filepath.Join(dir, spillFilePrefix()+"y")
	other := filepath.Join(dir, "unrelated.tmp")
	for _, p := range []string{orphan, ours, other} {
		if err := os.WriteFile(p, []byte("x"), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	n, err := SweepSpillOrphans(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("swept %d files, want 1", n)
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatal("dead process's spill file survived the sweep")
	}
	for _, p := range []string{ours, other} {
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("sweep removed %s, which it must not touch", p)
		}
	}
}
