package lexer

import (
	"strings"
	"testing"

	"repro/internal/token"
)

func types(t *testing.T, src string) []token.Type {
	t.Helper()
	toks, err := Tokenize(src)
	if err != nil {
		t.Fatalf("Tokenize(%q): %v", src, err)
	}
	out := make([]token.Type, 0, len(toks))
	for _, tk := range toks {
		out = append(out, tk.Type)
	}
	return out
}

func TestKeywordsCaseInsensitive(t *testing.T) {
	for _, src := range []string{"MATCH", "match", "Match", "mAtCh"} {
		got := types(t, src)
		if got[0] != token.MATCH {
			t.Errorf("%q lexed as %v", src, got[0])
		}
	}
	if types(t, "merge all same")[0] != token.MERGE {
		t.Error("merge keyword")
	}
	got := types(t, "MERGE ALL SAME")
	want := []token.Type{token.MERGE, token.ALL, token.SAME, token.EOF}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MERGE ALL SAME lexed as %v", got)
		}
	}
	// Synonyms.
	if types(t, "ascending")[0] != token.ASC || types(t, "DESCENDING")[0] != token.DESC {
		t.Error("ASC/DESC synonyms")
	}
}

func TestIdentifiers(t *testing.T) {
	toks, err := Tokenize("foo _bar baz9 `weird id` `tick``inside`")
	if err != nil {
		t.Fatal(err)
	}
	wantLits := []string{"foo", "_bar", "baz9", "weird id", "tick`inside"}
	for i, want := range wantLits {
		if toks[i].Type != token.Ident || toks[i].Lit != want {
			t.Errorf("token %d = %v %q, want Ident %q", i, toks[i].Type, toks[i].Lit, want)
		}
	}
}

func TestNumbers(t *testing.T) {
	toks, err := Tokenize("0 42 1.5 1e10 2.5e-3 0x1F .5")
	if err != nil {
		t.Fatal(err)
	}
	wants := []struct {
		typ token.Type
		lit string
	}{
		{token.Int, "0"}, {token.Int, "42"}, {token.Float, "1.5"},
		{token.Float, "1e10"}, {token.Float, "2.5e-3"}, {token.Int, "0x1F"},
		{token.Float, "0.5"},
	}
	for i, w := range wants {
		if toks[i].Type != w.typ || toks[i].Lit != w.lit {
			t.Errorf("token %d = %v %q, want %v %q", i, toks[i].Type, toks[i].Lit, w.typ, w.lit)
		}
	}
}

func TestRangeVsFloat(t *testing.T) {
	// "1..3" must lex as INT DOTDOT INT, not FLOAT.
	got := types(t, "*1..3")
	want := []token.Type{token.Star, token.Int, token.DotDot, token.Int, token.EOF}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("*1..3 lexed as %v", got)
		}
	}
}

func TestStrings(t *testing.T) {
	toks, err := Tokenize(`'abc' "dq" 'es\'c' "tab\tend" 'A'`)
	if err != nil {
		t.Fatal(err)
	}
	wants := []string{"abc", "dq", "es'c", "tab\tend", "A"}
	for i, w := range wants {
		if toks[i].Type != token.String || toks[i].Lit != w {
			t.Errorf("token %d = %q, want %q", i, toks[i].Lit, w)
		}
	}
}

func TestParams(t *testing.T) {
	toks, err := Tokenize("$p $limit $`weird name`")
	if err != nil {
		t.Fatal(err)
	}
	wants := []string{"p", "limit", "weird name"}
	for i, w := range wants {
		if toks[i].Type != token.Param || toks[i].Lit != w {
			t.Errorf("token %d = %v %q, want Param %q", i, toks[i].Type, toks[i].Lit, w)
		}
	}
}

func TestOperators(t *testing.T) {
	got := types(t, "( ) [ ] { } , : ; . .. + - * / % ^ = <> < <= > >= += |")
	want := []token.Type{
		token.LParen, token.RParen, token.LBracket, token.RBracket,
		token.LBrace, token.RBrace, token.Comma, token.Colon, token.Semi,
		token.Dot, token.DotDot, token.Plus, token.Minus, token.Star,
		token.Slash, token.Percent, token.Caret, token.Eq, token.Neq,
		token.Lt, token.Leq, token.Gt, token.Geq, token.PlusEq, token.Pipe,
		token.EOF,
	}
	if len(got) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestPatternTokens(t *testing.T) {
	// The ASCII-art pattern syntax decomposes into single-char tokens.
	got := types(t, "(u)-[:ORDERED]->(p)<-[:OFFERS]-(v)")
	want := []token.Type{
		token.LParen, token.Ident, token.RParen,
		token.Minus, token.LBracket, token.Colon, token.Ident, token.RBracket, token.Minus, token.Gt,
		token.LParen, token.Ident, token.RParen,
		token.Lt, token.Minus, token.LBracket, token.Colon, token.Ident, token.RBracket, token.Minus,
		token.LParen, token.Ident, token.RParen,
		token.EOF,
	}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %v, want %v (full: %v)", i, got[i], want[i], got)
		}
	}
}

func TestComments(t *testing.T) {
	got := types(t, "MATCH // line comment\n/* block\ncomment */ RETURN")
	want := []token.Type{token.MATCH, token.RETURN, token.EOF}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v", got)
		}
	}
}

func TestPositions(t *testing.T) {
	toks, err := Tokenize("MATCH\n  (n)")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos.Line != 1 || toks[0].Pos.Column != 1 {
		t.Errorf("MATCH pos = %+v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Column != 3 {
		t.Errorf("LParen pos = %+v", toks[1].Pos)
	}
}

func TestLexErrors(t *testing.T) {
	bad := []string{
		"'unterminated",
		"\"unterminated",
		"`unterminated",
		"/* unterminated",
		"'bad \\q escape'",
		"'bad \\u00ZZ'",
		"@",
		"$ ",
		"1e+",
		"0x",
	}
	for _, src := range bad {
		if _, err := Tokenize(src); err == nil {
			t.Errorf("Tokenize(%q): expected error", src)
		} else if !strings.Contains(err.Error(), "lex error") {
			t.Errorf("Tokenize(%q): error %q lacks position prefix", src, err)
		}
	}
}

func TestFullQuery(t *testing.T) {
	src := `MATCH (p:Product)<-[:OFFERS]-(v:Vendor)-[:OFFERS]->(q:Product)
WHERE p.name = "laptop"
RETURN v`
	toks, err := Tokenize(src)
	if err != nil {
		t.Fatal(err)
	}
	if toks[len(toks)-1].Type != token.EOF {
		t.Error("missing EOF")
	}
	// Spot checks.
	if toks[0].Type != token.MATCH {
		t.Error("first token")
	}
}
