// Package lexer tokenizes Cypher source text.
//
// It supports the lexical syntax used throughout the paper: identifiers
// (including backquoted), case-insensitive keywords, integer and float
// literals, single- and double-quoted strings with escapes, parameters
// ($name), line comments (//...) and block comments (/* ... */).
package lexer

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"

	"repro/internal/token"
)

// Error is a lexical error with position information.
type Error struct {
	Pos token.Position
	Msg string
}

// Error implements error.
func (e *Error) Error() string {
	return fmt.Sprintf("lex error at %d:%d: %s", e.Pos.Line, e.Pos.Column, e.Msg)
}

// Lexer scans Cypher source text into tokens.
type Lexer struct {
	src  string
	off  int // byte offset of next rune
	line int
	col  int
	err  *Error
}

// New returns a lexer over src.
func New(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Tokenize scans the entire input, returning all tokens up to and
// including EOF, or the first lexical error.
func Tokenize(src string) ([]token.Token, error) {
	lx := New(src)
	var out []token.Token
	for {
		t := lx.Next()
		if t.Type == token.Illegal {
			return nil, lx.err
		}
		out = append(out, t)
		if t.Type == token.EOF {
			return out, nil
		}
	}
}

func (l *Lexer) peek() rune {
	if l.off >= len(l.src) {
		return 0
	}
	r, _ := utf8.DecodeRuneInString(l.src[l.off:])
	return r
}

func (l *Lexer) peek2() rune {
	if l.off >= len(l.src) {
		return 0
	}
	_, w := utf8.DecodeRuneInString(l.src[l.off:])
	if l.off+w >= len(l.src) {
		return 0
	}
	r, _ := utf8.DecodeRuneInString(l.src[l.off+w:])
	return r
}

func (l *Lexer) advance() rune {
	if l.off >= len(l.src) {
		return 0
	}
	r, w := utf8.DecodeRuneInString(l.src[l.off:])
	l.off += w
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

func (l *Lexer) pos() token.Position { return token.Position{Line: l.line, Column: l.col} }

func (l *Lexer) errorf(pos token.Position, format string, args ...any) token.Token {
	l.err = &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
	return token.Token{Type: token.Illegal, Pos: pos}
}

// Next scans and returns the next token.
func (l *Lexer) Next() token.Token {
	l.skipSpaceAndComments()
	if l.err != nil {
		return token.Token{Type: token.Illegal, Pos: l.err.Pos}
	}
	pos := l.pos()
	r := l.peek()
	switch {
	case r == 0:
		return token.Token{Type: token.EOF, Pos: pos}
	case isIdentStart(r):
		return l.scanIdent(pos)
	case unicode.IsDigit(r):
		return l.scanNumber(pos)
	case r == '\'' || r == '"':
		return l.scanString(pos)
	case r == '`':
		return l.scanBackquoted(pos)
	case r == '$':
		return l.scanParam(pos)
	}
	l.advance()
	simple := func(t token.Type) token.Token {
		return token.Token{Type: t, Lit: t.String(), Pos: pos}
	}
	switch r {
	case '(':
		return simple(token.LParen)
	case ')':
		return simple(token.RParen)
	case '[':
		return simple(token.LBracket)
	case ']':
		return simple(token.RBracket)
	case '{':
		return simple(token.LBrace)
	case '}':
		return simple(token.RBrace)
	case ',':
		return simple(token.Comma)
	case ':':
		return simple(token.Colon)
	case ';':
		return simple(token.Semi)
	case '|':
		return simple(token.Pipe)
	case '.':
		if l.peek() == '.' {
			l.advance()
			return simple(token.DotDot)
		}
		if unicode.IsDigit(l.peek()) {
			return l.scanFloatFraction(pos)
		}
		return simple(token.Dot)
	case '+':
		if l.peek() == '=' {
			l.advance()
			return simple(token.PlusEq)
		}
		return simple(token.Plus)
	case '-':
		return simple(token.Minus)
	case '*':
		return simple(token.Star)
	case '/':
		return simple(token.Slash)
	case '%':
		return simple(token.Percent)
	case '^':
		return simple(token.Caret)
	case '=':
		return simple(token.Eq)
	case '<':
		switch l.peek() {
		case '=':
			l.advance()
			return simple(token.Leq)
		case '>':
			l.advance()
			return simple(token.Neq)
		}
		return simple(token.Lt)
	case '>':
		if l.peek() == '=' {
			l.advance()
			return simple(token.Geq)
		}
		return simple(token.Gt)
	}
	return l.errorf(pos, "unexpected character %q", r)
}

func (l *Lexer) skipSpaceAndComments() {
	for {
		r := l.peek()
		switch {
		case r == ' ' || r == '\t' || r == '\r' || r == '\n':
			l.advance()
		case r == '/' && l.peek2() == '/':
			for l.peek() != 0 && l.peek() != '\n' {
				l.advance()
			}
		case r == '/' && l.peek2() == '*':
			pos := l.pos()
			l.advance()
			l.advance()
			closed := false
			for l.peek() != 0 {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				l.errorf(pos, "unterminated block comment")
				return
			}
		default:
			return
		}
	}
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func (l *Lexer) scanIdent(pos token.Position) token.Token {
	var sb strings.Builder
	for isIdentPart(l.peek()) {
		sb.WriteRune(l.advance())
	}
	lit := sb.String()
	return token.Token{Type: token.Lookup(lit), Lit: lit, Pos: pos}
}

func (l *Lexer) scanBackquoted(pos token.Position) token.Token {
	l.advance() // consume `
	var sb strings.Builder
	for {
		r := l.peek()
		if r == 0 {
			return l.errorf(pos, "unterminated backquoted identifier")
		}
		l.advance()
		if r == '`' {
			if l.peek() == '`' { // escaped backquote
				l.advance()
				sb.WriteRune('`')
				continue
			}
			return token.Token{Type: token.Ident, Lit: sb.String(), Pos: pos}
		}
		sb.WriteRune(r)
	}
}

func (l *Lexer) scanParam(pos token.Position) token.Token {
	l.advance() // consume $
	r := l.peek()
	if r == '`' {
		t := l.scanBackquoted(l.pos())
		if t.Type == token.Illegal {
			return t
		}
		return token.Token{Type: token.Param, Lit: t.Lit, Pos: pos}
	}
	if !isIdentStart(r) && !unicode.IsDigit(r) {
		return l.errorf(pos, "invalid parameter name")
	}
	var sb strings.Builder
	for isIdentPart(l.peek()) {
		sb.WriteRune(l.advance())
	}
	return token.Token{Type: token.Param, Lit: sb.String(), Pos: pos}
}

func (l *Lexer) scanNumber(pos token.Position) token.Token {
	var sb strings.Builder
	isFloat := false
	// Hex literal.
	if l.peek() == '0' && (l.peek2() == 'x' || l.peek2() == 'X') {
		sb.WriteRune(l.advance())
		sb.WriteRune(l.advance())
		for isHexDigit(l.peek()) {
			sb.WriteRune(l.advance())
		}
		if sb.Len() == 2 {
			return l.errorf(pos, "malformed hex literal")
		}
		return token.Token{Type: token.Int, Lit: sb.String(), Pos: pos}
	}
	for unicode.IsDigit(l.peek()) {
		sb.WriteRune(l.advance())
	}
	// A fraction: avoid consuming the range operator "..".
	if l.peek() == '.' && unicode.IsDigit(l.peek2()) {
		isFloat = true
		sb.WriteRune(l.advance())
		for unicode.IsDigit(l.peek()) {
			sb.WriteRune(l.advance())
		}
	}
	if l.peek() == 'e' || l.peek() == 'E' {
		next := l.peek2()
		if unicode.IsDigit(next) || next == '+' || next == '-' {
			isFloat = true
			sb.WriteRune(l.advance()) // e
			if l.peek() == '+' || l.peek() == '-' {
				sb.WriteRune(l.advance())
			}
			if !unicode.IsDigit(l.peek()) {
				return l.errorf(pos, "malformed exponent")
			}
			for unicode.IsDigit(l.peek()) {
				sb.WriteRune(l.advance())
			}
		}
	}
	t := token.Int
	if isFloat {
		t = token.Float
	}
	return token.Token{Type: t, Lit: sb.String(), Pos: pos}
}

// scanFloatFraction handles literals beginning with '.', e.g. ".5".
// The leading dot has already been consumed.
func (l *Lexer) scanFloatFraction(pos token.Position) token.Token {
	var sb strings.Builder
	sb.WriteString("0.")
	for unicode.IsDigit(l.peek()) {
		sb.WriteRune(l.advance())
	}
	return token.Token{Type: token.Float, Lit: sb.String(), Pos: pos}
}

func isHexDigit(r rune) bool {
	return unicode.IsDigit(r) || (r >= 'a' && r <= 'f') || (r >= 'A' && r <= 'F')
}

func (l *Lexer) scanString(pos token.Position) token.Token {
	quote := l.advance()
	var sb strings.Builder
	for {
		r := l.peek()
		if r == 0 || r == '\n' {
			return l.errorf(pos, "unterminated string literal")
		}
		l.advance()
		if r == quote {
			return token.Token{Type: token.String, Lit: sb.String(), Pos: pos}
		}
		if r != '\\' {
			sb.WriteRune(r)
			continue
		}
		esc := l.advance()
		switch esc {
		case 'n':
			sb.WriteRune('\n')
		case 't':
			sb.WriteRune('\t')
		case 'r':
			sb.WriteRune('\r')
		case 'b':
			sb.WriteRune('\b')
		case 'f':
			sb.WriteRune('\f')
		case '\\':
			sb.WriteRune('\\')
		case '\'':
			sb.WriteRune('\'')
		case '"':
			sb.WriteRune('"')
		case 'u':
			var code rune
			for i := 0; i < 4; i++ {
				d := l.advance()
				if !isHexDigit(d) {
					return l.errorf(pos, "malformed unicode escape")
				}
				code = code*16 + hexVal(d)
			}
			sb.WriteRune(code)
		case 0:
			return l.errorf(pos, "unterminated string literal")
		default:
			return l.errorf(pos, "unknown escape sequence \\%c", esc)
		}
	}
}

func hexVal(r rune) rune {
	switch {
	case r >= '0' && r <= '9':
		return r - '0'
	case r >= 'a' && r <= 'f':
		return r - 'a' + 10
	default:
		return r - 'A' + 10
	}
}
