package core

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/graph"
	"repro/internal/parser"
	"repro/internal/plan"
)

// TestExecutorTriEquivalenceGolden replays both golden corpora under
// all three executors — batched streaming, row-at-a-time streaming, and
// materializing — and requires identical tables, stats, and final
// graphs. The batched path is the default; the row path is the
// pre-vectorization baseline it must not diverge from.
func TestExecutorTriEquivalenceGolden(t *testing.T) {
	executors := []Executor{ExecStreaming, ExecStreamingRows, ExecMaterializing}
	suites := []struct {
		name    string
		dialect Dialect
		cases   []goldenCase
	}{
		{"revised", DialectRevised, goldenCorpus},
		{"legacy", DialectCypher9, legacyGoldenCorpus},
	}
	for _, suite := range suites {
		for _, c := range suite.cases {
			t.Run(suite.name+"/"+c.name, func(t *testing.T) {
				base := graph.New()
				setupEng := NewEngine(Config{Dialect: suite.dialect})
				for _, s := range c.setup {
					stmt, err := parser.Parse(s)
					if err != nil {
						t.Fatalf("setup parse: %v", err)
					}
					if _, err := setupEng.ExecuteStatement(base, stmt, nil); err != nil {
						t.Fatalf("setup exec %q: %v", s, err)
					}
				}
				stmt, err := parser.Parse(c.query)
				if err != nil {
					t.Fatalf("parse: %v", err)
				}
				var tables []string
				var stats []UpdateStats
				var prints []string
				var errs []error
				for _, ex := range executors {
					g := base.Clone()
					res, err := NewEngine(Config{Dialect: suite.dialect, Executor: ex}).
						ExecuteStatement(g, stmt, nil)
					errs = append(errs, err)
					if err != nil {
						tables = append(tables, "")
						stats = append(stats, UpdateStats{})
						prints = append(prints, "")
						continue
					}
					tables = append(tables, renderTable(res))
					stats = append(stats, res.Stats)
					prints = append(prints, graph.Fingerprint(g))
				}
				for i := 1; i < len(executors); i++ {
					if (errs[0] == nil) != (errs[i] == nil) {
						t.Fatalf("error divergence: %v=%v vs %v=%v",
							executors[0], errs[0], executors[i], errs[i])
					}
					if errs[0] != nil {
						continue
					}
					if tables[i] != tables[0] {
						t.Errorf("table divergence %v vs %v:\n%s\nvs\n%s",
							executors[0], executors[i], tables[0], tables[i])
					}
					if stats[i] != stats[0] {
						t.Errorf("stats divergence %v vs %v: %v vs %v",
							executors[0], executors[i], stats[0], stats[i])
					}
					if prints[i] != prints[0] {
						t.Errorf("final graph divergence %v vs %v", executors[0], executors[i])
					}
				}
			})
		}
	}
}

// spiller is the stat surface every spilling barrier exposes.
type spiller interface {
	PeakBytes() int64
	SpillRuns() int64
}

// collectSpillers walks a plan gathering its barrier operators.
func collectSpillers(root plan.Operator) []spiller {
	var out []spiller
	var rec func(op plan.Operator)
	rec = func(op plan.Operator) {
		if s, ok := op.(spiller); ok {
			out = append(out, s)
		}
		for _, c := range op.Children() {
			rec(c)
		}
	}
	rec(root)
	return out
}

// TestTinyBudgetSpillEquivalence runs barrier-heavy read pipelines with
// an effectively-zero memory budget (every barrier spills) and requires
// output identical to the unlimited in-memory run — same rows, same
// order, same DISTINCT first occurrences — plus full temp-file cleanup.
func TestTinyBudgetSpillEquivalence(t *testing.T) {
	g := graph.New()
	eng := NewEngine(Config{Dialect: DialectRevised})
	for _, s := range []string{
		`UNWIND range(0, 400) AS i CREATE (:P{i:i, g:i % 7, s:'payload-' + toString(i % 13)})`,
	} {
		stmt, err := parser.Parse(s)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.ExecuteStatement(g, stmt, nil); err != nil {
			t.Fatal(err)
		}
	}
	queries := []string{
		`MATCH (a:P) RETURN a.i AS i ORDER BY a.s, i DESC`,
		`MATCH (a:P) RETURN a.g AS g, count(*) AS c, collect(a.i)[0] AS first ORDER BY g`,
		`MATCH (a:P) RETURN DISTINCT a.s AS s`,
		`MATCH (a:P) WITH DISTINCT a.g AS g ORDER BY g DESC RETURN g SKIP 1 LIMIT 3`,
		`MATCH (a:P) RETURN a.s AS s, count(DISTINCT a.g) AS dg ORDER BY s`,
		`MATCH (a:P{g:1}) RETURN a.i AS i UNION MATCH (b:P{g:1}) RETURN b.i AS i`,
	}
	for qi, q := range queries {
		stmt, err := parser.Parse(q)
		if err != nil {
			t.Fatalf("q%d parse: %v", qi, err)
		}
		want, err := NewEngine(Config{Dialect: DialectRevised}).ExecuteStatement(g.Clone(), stmt, nil)
		if err != nil {
			t.Fatalf("q%d unlimited: %v", qi, err)
		}
		var root plan.Operator
		// Parallelism pinned to 1: the test asserts serial barrier spill
		// counters (the parallel sweep covers the parallel intake).
		cfg := Config{Dialect: DialectRevised, MemoryBudget: 1, Parallelism: 1}
		cfg.onPlan = func(op plan.Operator) { root = op }
		got, err := NewEngine(cfg).ExecuteStatement(g.Clone(), stmt, nil)
		if err != nil {
			t.Fatalf("q%d budget=1: %v", qi, err)
		}
		if renderTable(got) != renderTable(want) {
			t.Errorf("q%d (%s) divergence under budget=1:\n%s\nvs unlimited:\n%s",
				qi, q, renderTable(got), renderTable(want))
		}
		if root == nil {
			t.Fatalf("q%d: onPlan hook not invoked", qi)
		}
		spilled := false
		for _, s := range collectSpillers(root) {
			if s.SpillRuns() > 0 {
				spilled = true
			}
		}
		if !spilled {
			t.Errorf("q%d (%s): no barrier spilled under budget=1", qi, q)
		}
		if live := plan.SpillFilesLive(); live != 0 {
			t.Fatalf("q%d: %d spill files still live", qi, live)
		}
	}
}

// TestBudgetBoundsBarrierPeak checks the budget is an actual bound: the
// accounted peak of every barrier stays within the budget plus one
// intake batch of slack, far below what the unlimited run holds.
func TestBudgetBoundsBarrierPeak(t *testing.T) {
	g := graph.New()
	eng := NewEngine(Config{Dialect: DialectRevised})
	stmt, err := parser.Parse(`UNWIND range(0, 20000) AS i CREATE (:Q{i:i, s:'some-reasonably-long-payload-string-' + toString(i % 500)})`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.ExecuteStatement(g, stmt, nil); err != nil {
		t.Fatal(err)
	}
	const budget = 64 << 10
	query := `MATCH (a:Q) RETURN a.s AS s, a.i AS i ORDER BY s, i`

	// Unlimited run: the sort holds everything; record its peak.
	var rootU plan.Operator
	cfgU := Config{Dialect: DialectRevised, MemoryBudget: 1 << 40, Parallelism: 1}
	cfgU.onPlan = func(op plan.Operator) { rootU = op }
	pstmt, err := parser.Parse(query)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewEngine(cfgU).ExecuteStatement(g.Clone(), pstmt, nil); err != nil {
		t.Fatal(err)
	}
	var unlimitedPeak int64
	for _, s := range collectSpillers(rootU) {
		if s.PeakBytes() > unlimitedPeak {
			unlimitedPeak = s.PeakBytes()
		}
	}
	if unlimitedPeak < 4*budget {
		t.Fatalf("workload too small to be meaningful: unlimited peak %d < 4×budget", unlimitedPeak)
	}

	var root plan.Operator
	cfg := Config{Dialect: DialectRevised, MemoryBudget: budget, Parallelism: 1}
	cfg.onPlan = func(op plan.Operator) { root = op }
	if _, err := NewEngine(cfg).ExecuteStatement(g.Clone(), pstmt, nil); err != nil {
		t.Fatal(err)
	}
	// One batch of rows may land between budget checks; allow generous
	// per-row slack beyond that.
	const slack = 64 << 10
	for _, s := range collectSpillers(root) {
		if s.PeakBytes() > budget+slack {
			t.Errorf("barrier peak %d exceeds budget %d + slack %d", s.PeakBytes(), budget, slack)
		}
		if s.SpillRuns() == 0 && s.PeakBytes() > 0 {
			t.Errorf("barrier held %d bytes without spilling under a %d budget", s.PeakBytes(), budget)
		}
	}
	if live := plan.SpillFilesLive(); live != 0 {
		t.Fatalf("%d spill files still live", live)
	}
}

// TestExplainShowsBudgetHeader checks the EXPLAIN header states the
// effective per-statement budget when one is configured.
func TestExplainShowsBudgetHeader(t *testing.T) {
	stmt, err := parser.Parse(`MATCH (a:P) RETURN a.i AS i ORDER BY i`)
	if err != nil {
		t.Fatal(err)
	}
	out, err := NewEngine(Config{Dialect: DialectRevised, MemoryBudget: 12345}).
		ExplainStatement(graph.New(), stmt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "budget=12345 bytes") {
		t.Errorf("explain header missing budget:\n%s", out)
	}
	out, err = NewEngine(Config{Dialect: DialectRevised}).
		ExplainStatement(graph.New(), stmt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "budget=") {
		t.Errorf("unbudgeted explain mentions a budget:\n%s", out)
	}
}

// TestSessionProfile checks PROFILE executes the statement and renders
// the plan with observed counters (and spill stats under a budget).
func TestSessionProfile(t *testing.T) {
	store := graph.NewStore(graph.New())
	sess := NewSession(NewEngine(Config{Dialect: DialectRevised, MemoryBudget: 1}), store)
	mustParse := func(q string) *ast.Statement {
		stmt, err := parser.Parse(q)
		if err != nil {
			t.Fatal(err)
		}
		return stmt
	}
	if _, err := sess.Execute(mustParse(`UNWIND range(0, 100) AS i CREATE (:R{i:i})`), nil); err != nil {
		t.Fatal(err)
	}
	res, planText, err := sess.Profile(mustParse(`MATCH (a:R) RETURN a.i AS i ORDER BY i DESC LIMIT 5`), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.Len() != 5 {
		t.Fatalf("rows = %d, want 5", res.Table.Len())
	}
	if !strings.Contains(planText, "rows=") || !strings.Contains(planText, "batches=") {
		t.Errorf("profile output lacks counters:\n%s", planText)
	}
	if !strings.Contains(planText, "spill-runs=") {
		t.Errorf("profile output lacks spill stats under budget=1:\n%s", planText)
	}
	if _, _, err := sess.Profile(mustParse(`BEGIN`), nil); err == nil {
		t.Error("profiling BEGIN must be rejected")
	}
}
