package core

import (
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/parser"
)

// The legacy golden corpus pins the *Cypher 9* pipeline behaviours that
// differ from (or are absent in) the revised dialect: per-record
// visibility of writes, bare MERGE, ON CREATE/ON MATCH, and the
// WITH-demarcation rule. Each case lists setup statements and a final
// query with expected rendered rows.
var legacyGoldenCorpus = []goldenCase{
	{
		name: "set sees earlier items (Example 1 degeneration)",
		setup: []string{
			`CREATE (:P{name:'a', v:1}), (:P{name:'b', v:2})`,
			`MATCH (x:P{name:'a'}), (y:P{name:'b'}) SET x.v = y.v, y.v = x.v`,
		},
		query: `MATCH (p:P) RETURN p.name AS n, p.v AS v ORDER BY n`,
		want:  []string{"'a' | 2", "'b' | 2"},
	},
	{
		name: "set item chain accumulates within one record",
		setup: []string{
			`CREATE (:Q{v:1})`,
			`MATCH (q:Q) SET q.v = q.v + 1, q.v = q.v * 10`,
		},
		// Legacy: ((1+1) * 10) = 20; revised would read v=1 twice and
		// conflict (2 vs 10).
		query: `MATCH (q:Q) RETURN q.v AS v`,
		want:  []string{"20"},
	},
	{
		name: "bare merge creates once",
		setup: []string{
			`MERGE (c:City{name:'Oslo'})`,
			`MERGE (c:City{name:'Oslo'})`,
		},
		query: `MATCH (c:City) RETURN count(*) AS c`,
		want:  []string{"1"},
	},
	{
		name: "on create / on match counters",
		setup: []string{
			`MERGE (c:Cnt{id:1}) ON CREATE SET c.n = 1 ON MATCH SET c.n = c.n + 1`,
			`MERGE (c:Cnt{id:1}) ON CREATE SET c.n = 1 ON MATCH SET c.n = c.n + 1`,
			`MERGE (c:Cnt{id:1}) ON CREATE SET c.n = 1 ON MATCH SET c.n = c.n + 1`,
		},
		query: `MATCH (c:Cnt) RETURN c.n AS n`,
		want:  []string{"3"},
	},
	{
		name: "merge reads its own writes within one statement",
		setup: []string{
			`CREATE (:Src{id:1}), (:Src{id:2})`,
			// Both records merge the same (by-value) target pattern; the
			// second record finds the first's creation.
			`MATCH (s:Src) MERGE (t:Tgt{key:'shared'})`,
		},
		query: `MATCH (t:Tgt) RETURN count(*) AS c`,
		want:  []string{"1"},
	},
	{
		name: "with demarcation makes updates visible",
		setup: []string{
			`CREATE (:W{v:1}) WITH 1 AS one MATCH (w:W) SET w.seen = true`,
		},
		query: `MATCH (w:W{seen:true}) RETURN count(*) AS c`,
		want:  []string{"1"},
	},
	{
		name: "undirected merge matches both directions",
		setup: []string{
			`CREATE (:L{id:1})`,
			`CREATE (:R{id:2})`,
			`MATCH (l:L), (r:R) CREATE (r)-[:T]->(l)`,
			// The undirected pattern is satisfied by the r->l rel.
			`MATCH (l:L), (r:R) MERGE (l)-[:T]-(r)`,
		},
		query: `MATCH ()-[t:T]-() RETURN count(DISTINCT t) AS c`,
		want:  []string{"1"},
	},
	{
		name: "foreach applies per element in order",
		setup: []string{
			`CREATE (:Acc{total:0})`,
			`MATCH (a:Acc) FOREACH (x IN [1,2,3] | SET a.total = a.total + x)`,
		},
		query: `MATCH (a:Acc) RETURN a.total AS t`,
		want:  []string{"6"},
	},
}

func TestLegacyGoldenCorpus(t *testing.T) {
	for _, c := range legacyGoldenCorpus {
		t.Run(c.name, func(t *testing.T) {
			g := graph.New()
			eng := NewEngine(Config{Dialect: DialectCypher9})
			for _, s := range c.setup {
				stmt, err := parser.Parse(s)
				if err != nil {
					t.Fatalf("setup parse: %v", err)
				}
				if _, err := eng.ExecuteStatement(g, stmt, nil); err != nil {
					t.Fatalf("setup exec %q: %v", s, err)
				}
			}
			stmt, err := parser.Parse(c.query)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			res, err := eng.ExecuteStatement(g, stmt, nil)
			if err != nil {
				t.Fatalf("exec: %v", err)
			}
			var got []string
			for i := 0; i < res.Table.Len(); i++ {
				var parts []string
				for _, v := range res.Table.Values(i) {
					parts = append(parts, renderValue(v))
				}
				got = append(got, strings.Join(parts, " | "))
			}
			if len(got) != len(c.want) {
				t.Fatalf("rows = %v, want %v", got, c.want)
			}
			for i := range got {
				if got[i] != c.want[i] {
					t.Errorf("row %d = %q, want %q", i, got[i], c.want[i])
				}
			}
		})
	}
}

// The second corpus case must genuinely diverge from the revised
// dialect: there the same SET is a conflict error.
func TestLegacySetChainConflictsInRevised(t *testing.T) {
	g := graph.New()
	run(t, DialectRevised, g, `CREATE (:Q{v:1})`)
	_, err := runErr(DialectRevised, g, `MATCH (q:Q) SET q.v = q.v + 1, q.v = q.v * 10`)
	if err == nil {
		t.Fatal("revised SET with overlapping writes should conflict (2 vs 10)")
	}
	if !strings.Contains(err.Error(), "conflicting SET") {
		t.Errorf("error = %v", err)
	}
}
