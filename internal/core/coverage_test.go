package core

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/parser"
	"repro/internal/table"
	"repro/internal/value"
)

func TestEnumStrings(t *testing.T) {
	if DialectCypher9.String() != "cypher9" || DialectRevised.String() != "revised" {
		t.Error("Dialect.String")
	}
	for s, want := range map[MergeStrategy]string{
		StrategyFromForm: "from-form", StrategyLegacy: "legacy",
		StrategyAtomic: "atomic", StrategyGrouping: "grouping",
		StrategyWeakCollapse: "weak-collapse", StrategyCollapse: "collapse",
		StrategyStrongCollapse: "strong-collapse",
	} {
		if s.String() != want {
			t.Errorf("MergeStrategy(%d).String() = %q, want %q", s, s.String(), want)
		}
	}
	stats := UpdateStats{NodesCreated: 1, RelsDeleted: 2}
	if stats.String() == "" {
		t.Error("UpdateStats.String")
	}
	e := NewEngine(Config{Dialect: DialectRevised})
	if e.Config().Dialect != DialectRevised {
		t.Error("Engine.Config")
	}
}

// ON CREATE / ON MATCH through the atomic-family path (strategy override
// in the Cypher 9 dialect exercises applyOnSets).
func TestAtomicMergeOnCreateOnMatch(t *testing.T) {
	g := graph.New()
	pre := g.CreateNode([]string{"Counter"}, map[string]value.Value{"id": value.Int(1), "hits": value.Int(10)})

	tbl := table.New("k")
	tbl.AppendRow(value.Int(1))
	tbl.AppendRow(value.Int(2))

	stmt, err := parser.Parse(`
		MERGE (n:Counter{id:k})
		ON CREATE SET n.hits = 1
		ON MATCH SET n.hits = n.hits + 1`)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Dialect: DialectCypher9, MergeStrategy: StrategyAtomic}
	if _, err := NewEngine(cfg).ExecuteWithTable(g, stmt, nil, tbl); err != nil {
		t.Fatal(err)
	}
	if g.Node(pre.ID).Props["hits"] != value.Int(11) {
		t.Errorf("ON MATCH: hits = %v, want 11", g.Node(pre.ID).Props["hits"])
	}
	created := g.NodeIDsByLabel("Counter")
	if len(created) != 2 {
		t.Fatalf("counters = %d", len(created))
	}
	for _, id := range created {
		if id == pre.ID {
			continue
		}
		if g.Node(id).Props["hits"] != value.Int(1) {
			t.Errorf("ON CREATE: hits = %v, want 1", g.Node(id).Props["hits"])
		}
	}
}

// Collapsed entities must be remapped inside paths, lists and maps bound
// by the merge (remapValue coverage).
func TestMergeSameRemapsNestedValues(t *testing.T) {
	g := graph.New()
	tbl := table.New("k")
	tbl.AppendRow(value.Int(7))
	tbl.AppendRow(value.Int(7))
	stmt, err := parser.Parse(`
		MERGE SAME pth = (a:N{id:k})-[r:T]->(b:M{id:k})
		RETURN pth, [a, b] AS lst, {rel: r} AS mp, a, b, r`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := NewEngine(Config{Dialect: DialectRevised}).ExecuteWithTable(g, stmt, nil, tbl)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 2 || g.NumRels() != 1 {
		t.Fatalf("graph: %s", graph.ComputeStats(g))
	}
	if res.Table.Len() != 2 {
		t.Fatalf("rows = %d", res.Table.Len())
	}
	// Both rows must reference the surviving entities everywhere.
	for i := 0; i < 2; i++ {
		a := res.Table.Get(i, "a").(value.Node)
		if g.Node(graph.NodeID(a.ID)) == nil {
			t.Fatal("a references a collapsed node")
		}
		r := res.Table.Get(i, "r").(value.Rel)
		if g.Rel(graph.RelID(r.ID)) == nil {
			t.Fatal("r references a collapsed relationship")
		}
		pth := res.Table.Get(i, "pth").(value.Path)
		for _, nid := range pth.Nodes {
			if g.Node(graph.NodeID(nid)) == nil {
				t.Fatal("path references a collapsed node")
			}
		}
		for _, rid := range pth.Rels {
			if g.Rel(graph.RelID(rid)) == nil {
				t.Fatal("path references a collapsed relationship")
			}
		}
		lst := res.Table.Get(i, "lst").(value.List)
		for _, el := range lst {
			if n, ok := el.(value.Node); ok && g.Node(graph.NodeID(n.ID)) == nil {
				t.Fatal("list references a collapsed node")
			}
		}
		mp := res.Table.Get(i, "mp").(value.Map)
		if rr, ok := mp["rel"].(value.Rel); ok && g.Rel(graph.RelID(rr.ID)) == nil {
			t.Fatal("map references a collapsed relationship")
		}
	}
	// The two rows bind identical representatives.
	if res.Table.Get(0, "a") != res.Table.Get(1, "a") {
		t.Error("rows disagree on the representative")
	}
}

// Legacy SET on relationships, and SET n = <rel> / <deleted entity>.
func TestLegacySetRelAndEntityCopies(t *testing.T) {
	g := graph.New()
	a := g.CreateNode([]string{"A"}, nil)
	b := g.CreateNode([]string{"B"}, nil)
	r, _ := g.CreateRel(a.ID, b.ID, "T", map[string]value.Value{"w": value.Int(1)})

	run(t, DialectCypher9, g, `MATCH ()-[r:T]->() SET r.w = 2, r.v = 3`)
	if g.Rel(r.ID).Props["w"] != value.Int(2) || g.Rel(r.ID).Props["v"] != value.Int(3) {
		t.Errorf("rel props = %v", g.Rel(r.ID).Props)
	}
	// Copy properties from a relationship into a node.
	run(t, DialectCypher9, g, `MATCH (x:A), ()-[r:T]->() SET x = r`)
	if g.Node(a.ID).Props["w"] != value.Int(2) {
		t.Errorf("node props after copy = %v", g.Node(a.ID).Props)
	}
	// Copy from a node into a relationship with +=.
	run(t, DialectCypher9, g, `MATCH (x:A), ()-[r:T]->() SET r += x`)
	if g.Rel(r.ID).Props["w"] != value.Int(2) {
		t.Errorf("rel props after += = %v", g.Rel(r.ID).Props)
	}
}

// Legacy writes to deleted entities (both nodes and relationships) are
// silent no-ops, including SET = / += forms (Section 4.2).
func TestLegacyWritesToDeletedEntities(t *testing.T) {
	g := graph.New()
	g.CreateNode([]string{"N"}, nil)
	run(t, DialectCypher9, g, `
		MATCH (n:N)
		DELETE n
		SET n.x = 1
		SET n = {a: 1}
		SET n += {b: 2}
		SET n:Label
		REMOVE n.x
		REMOVE n:Label`)
	if g.NumNodes() != 0 {
		t.Error("node should be gone")
	}

	g2 := graph.New()
	a := g2.CreateNode(nil, nil)
	b := g2.CreateNode(nil, nil)
	g2.CreateRel(a.ID, b.ID, "T", nil)
	run(t, DialectCypher9, g2, `
		MATCH ()-[r:T]->()
		DELETE r
		SET r.w = 1
		SET r = {a: 1}
		REMOVE r.w`)
	if g2.NumRels() != 0 {
		t.Error("rel should be gone")
	}
}

// Revised SET = / += with node and relationship sources (coerceToPropMap).
func TestRevisedSetFromEntities(t *testing.T) {
	g := graph.New()
	a := g.CreateNode([]string{"A"}, map[string]value.Value{"x": value.Int(1)})
	bNode := g.CreateNode([]string{"B"}, nil)
	r, _ := g.CreateRel(a.ID, bNode.ID, "T", map[string]value.Value{"w": value.Int(5)})

	run(t, DialectRevised, g, `MATCH (b:B), ()-[r:T]->() SET b = r`)
	if g.Node(bNode.ID).Props["w"] != value.Int(5) {
		t.Errorf("b props = %v", g.Node(bNode.ID).Props)
	}
	run(t, DialectRevised, g, `MATCH (a:A), (b:B) SET b += a`)
	if g.Node(bNode.ID).Props["x"] != value.Int(1) || g.Node(bNode.ID).Props["w"] != value.Int(5) {
		t.Errorf("b props after += = %v", g.Node(bNode.ID).Props)
	}
	if _, err := runErr(DialectRevised, g, `MATCH (b:B) SET b += 5`); err == nil {
		t.Error("SET += scalar should error")
	}
	_ = r
}

// Revised DELETE nulls references nested in lists, maps and paths.
func TestRevisedDeleteNullsNestedReferences(t *testing.T) {
	g := graph.New()
	a := g.CreateNode([]string{"A"}, nil)
	b := g.CreateNode([]string{"B"}, nil)
	if _, err := g.CreateRel(a.ID, b.ID, "T", nil); err != nil {
		t.Fatal(err)
	}
	res := run(t, DialectRevised, g, `
		MATCH pth = (x:A)-[r:T]->(y:B)
		WITH pth, x, r, [x, 1] AS lst, {node: x} AS mp
		DETACH DELETE x
		RETURN pth, lst, mp, r`)
	if !value.IsNull(res.Table.Get(0, "pth")) {
		t.Error("path touching deleted node should be null")
	}
	lst := res.Table.Get(0, "lst").(value.List)
	if !value.IsNull(lst[0]) || lst[1] != value.Int(1) {
		t.Errorf("list nulling = %v", lst)
	}
	mp := res.Table.Get(0, "mp").(value.Map)
	if !value.IsNull(mp["node"]) {
		t.Errorf("map nulling = %v", mp)
	}
	if !value.IsNull(res.Table.Get(0, "r")) {
		t.Error("detached relationship reference should be null")
	}
}

// Grouping strategy on patterns with relationship properties groups by
// them as well.
func TestGroupingKeyIncludesRelProps(t *testing.T) {
	g := graph.New()
	tbl := table.New("k", "w")
	tbl.AppendRow(value.Int(1), value.Int(10))
	tbl.AppendRow(value.Int(1), value.Int(20)) // same nodes, different rel props
	stmt, _ := parser.Parse(`MERGE ALL (:N{id:k})-[:T{w:w}]->(:M{id:k})`)
	cfg := Config{Dialect: DialectRevised, MergeStrategy: StrategyGrouping}
	if _, err := NewEngine(cfg).ExecuteWithTable(g, stmt, nil, tbl); err != nil {
		t.Fatal(err)
	}
	// Two groups (w differs) -> 4 nodes, 2 rels.
	if g.NumNodes() != 4 || g.NumRels() != 2 {
		t.Errorf("graph: %s, want 4 nodes / 2 rels", graph.ComputeStats(g))
	}
}

// Strong Collapse with multiple pattern parts in one MERGE SAME.
func TestMergeSameMultiplePatternParts(t *testing.T) {
	g := graph.New()
	tbl := table.New("k")
	tbl.AppendRow(value.Int(1))
	tbl.AppendRow(value.Int(1))
	stmt, err := parser.Parse(`MERGE SAME (:A{id:k})-[:T]->(:B{id:k}), (:C{id:k})`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewEngine(Config{Dialect: DialectRevised}).ExecuteWithTable(g, stmt, nil, tbl); err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumRels() != 1 {
		t.Errorf("graph: %s, want 3 nodes / 1 rel", graph.ComputeStats(g))
	}
}

// Merge stats reflect post-collapse counts.
func TestMergeSameStats(t *testing.T) {
	g := graph.New()
	tbl := table.New("k")
	for i := 0; i < 4; i++ {
		tbl.AppendRow(value.Int(9))
	}
	stmt, _ := parser.Parse(`MERGE SAME (:N{id:k})-[:T]->(:M{id:k})`)
	res, err := NewEngine(Config{Dialect: DialectRevised}).ExecuteWithTable(g, stmt, nil, tbl)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.NodesCreated != 2 || res.Stats.RelsCreated != 1 {
		t.Errorf("stats = %+v, want 2 nodes / 1 rel created", res.Stats)
	}
}

// A MERGE SAME whose collapse leaves a relationship with collapsed
// endpoints exercises the physical-rewrite branch (no member has
// representative endpoints).
func TestMergeSameEndpointRewrite(t *testing.T) {
	// Records differ in an auxiliary column not present in the pattern,
	// so Atomic creation yields distinct node copies that collapse.
	g := graph.New()
	tbl := table.New("k", "noise")
	tbl.AppendRow(value.Int(1), value.String("x"))
	tbl.AppendRow(value.Int(1), value.String("y"))
	stmt, _ := parser.Parse(`MERGE ALL (:N{id:k})-[:T]->(:M{id:k})`)
	cfg := Config{Dialect: DialectRevised, MergeStrategy: StrategyStrongCollapse}
	if _, err := NewEngine(cfg).ExecuteWithTable(g, stmt, nil, tbl); err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 2 || g.NumRels() != 1 {
		t.Errorf("graph: %s, want 2 nodes / 1 rel", graph.ComputeStats(g))
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
}
