package core

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/ast"
	"repro/internal/expr"
	"repro/internal/graph"
	"repro/internal/table"
	"repro/internal/value"
)

// execMerge dispatches a MERGE clause to the configured strategy.
func (x *executor) execMerge(cl *ast.MergeClause, t *table.Table) (*table.Table, error) {
	strategy := x.cfg.MergeStrategy
	if strategy == StrategyFromForm {
		switch cl.Form {
		case ast.MergeAll:
			strategy = StrategyAtomic
		case ast.MergeSame:
			strategy = StrategyStrongCollapse
		default: // legacy MERGE
			if x.cfg.Dialect == DialectRevised {
				return nil, fmt.Errorf("MERGE without ALL or SAME is no longer allowed (Section 7)")
			}
			strategy = StrategyLegacy
		}
	}
	if strategy == StrategyLegacy {
		return x.execMergeLegacy(cl, t)
	}
	return x.execMergeAtomicFamily(cl, t, strategy)
}

// execMergeAtomicFamily implements the deterministic MERGE semantics of
// Sections 6-8. All records are matched against the *input* graph first
// (so the clause can never read its own writes); the failing records then
// create pattern instances according to the strategy:
//
//	Atomic          one instance per failing record (MERGE ALL);
//	Grouping        one instance per group of records agreeing on the
//	                pattern's expressions;
//	Weak Collapse   grouping plus collapse of equal new entities at the
//	                same pattern position;
//	Collapse        node collapse across positions;
//	Strong Collapse relationship collapse across positions too
//	                (MERGE SAME; Definitions 1 and 2).
//
// The output table is T_match ⊎ T_create with created-entity references
// rewritten to class representatives.
func (x *executor) execMergeAtomicFamily(cl *ast.MergeClause, t *table.Table, strategy MergeStrategy) (*table.Table, error) {
	newVars := freshVarsForCreate(cl.Pattern, t)
	out := table.New(append(t.Columns(), newVars...)...)

	// Phase 1: match everything against the input graph.
	m := x.matcher()
	outcomes := make([]mergeOutcome, 0, t.Len())
	for i := 0; i < t.Len(); i++ {
		env := expr.Env(t.Row(i))
		matches, err := m.Match(cl.Pattern, env)
		if err != nil {
			return nil, err
		}
		outcomes = append(outcomes, mergeOutcome{row: i, matches: matches})
	}

	// Phase 2: create for the failing records.
	var allCreated []createdEntity
	createEnvs := make(map[int]expr.Env) // row index -> created bindings
	groups := make(map[string]expr.Env)  // grouping key -> shared bindings
	var matchRows, createRows int

	for _, oc := range outcomes {
		if len(oc.matches) > 0 {
			continue
		}
		env := expr.Env(t.Row(oc.row))
		if strategy == StrategyGrouping || strategy == StrategyWeakCollapse ||
			strategy == StrategyCollapse || strategy == StrategyStrongCollapse {
			key, err := x.mergeGroupKey(cl.Pattern, env)
			if err != nil {
				return nil, err
			}
			if shared, ok := groups[key]; ok {
				// Reuse the group's created entities for this record.
				env2 := env
				for _, v := range newVars {
					if bv, ok := shared[v]; ok {
						env2 = env2.With(v, bv)
					}
				}
				createEnvs[oc.row] = env2
				continue
			}
			env2, created, err := x.createInstanceTracked(cl.Pattern, env, true)
			if err != nil {
				return nil, err
			}
			allCreated = append(allCreated, created...)
			groups[key] = env2
			createEnvs[oc.row] = env2
			continue
		}
		// Atomic: one instance per record.
		env2, created, err := x.createInstanceTracked(cl.Pattern, env, true)
		if err != nil {
			return nil, err
		}
		allCreated = append(allCreated, created...)
		createEnvs[oc.row] = env2
	}

	// Phase 3: collapse (Weak/Collapse/Strong only).
	var nodeRemap map[graph.NodeID]graph.NodeID
	var relRemap map[graph.RelID]graph.RelID
	if strategy == StrategyWeakCollapse || strategy == StrategyCollapse || strategy == StrategyStrongCollapse {
		var err error
		nodeRemap, relRemap, err = x.collapseCreated(allCreated, strategy)
		if err != nil {
			return nil, err
		}
	}

	// Phase 4: assemble T_match ⊎ T_create in input-record order,
	// rewriting references to collapsed entities.
	for _, oc := range outcomes {
		if len(oc.matches) > 0 {
			for _, me := range oc.matches {
				out.AppendMap(me)
				matchRows++
			}
			continue
		}
		env := createEnvs[oc.row]
		if nodeRemap != nil {
			remapped := make(expr.Env, len(env))
			for k, v := range env {
				remapped[k] = remapValue(v, nodeRemap, relRemap)
			}
			env = remapped
		}
		out.AppendMap(env)
		createRows++
	}

	// ON CREATE / ON MATCH (legal in the Cypher 9 dialect only; the
	// revised validator rejects them) are applied as atomic SET passes.
	if len(cl.OnCreate) > 0 || len(cl.OnMatch) > 0 {
		if err := x.applyOnSets(cl, out, outcomes, t); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// mergeOutcome records, per input record, the matches found against the
// input graph (empty means the record is in T_fail).
type mergeOutcome struct {
	row     int
	matches []expr.Env
}

// applyOnSets runs ON MATCH SET over matched rows and ON CREATE SET over
// created rows, using the atomic (conflict-checked) SET semantics.
func (x *executor) applyOnSets(cl *ast.MergeClause, out *table.Table, outcomes []mergeOutcome, t *table.Table) error {
	cs := graph.NewChangeSet()
	rowIdx := 0
	for _, oc := range outcomes {
		if len(oc.matches) > 0 {
			for range oc.matches {
				env := expr.Env(out.Row(rowIdx))
				for _, item := range cl.OnMatch {
					if err := x.collectSetItem(cs, item, env); err != nil {
						return err
					}
				}
				rowIdx++
			}
			continue
		}
		env := expr.Env(out.Row(rowIdx))
		for _, item := range cl.OnCreate {
			if err := x.collectSetItem(cs, item, env); err != nil {
				return err
			}
		}
		rowIdx++
	}
	return cs.Apply(x.graph)
}

// mergeGroupKey canonically encodes the values of all expressions
// appearing in the pattern for one record: bound variables used in the
// pattern and every property map, under value equivalence (so nulls
// group together, matching Example 5's discussion of Grouping MERGE).
func (x *executor) mergeGroupKey(parts []*ast.PatternPart, env expr.Env) (string, error) {
	var sb strings.Builder
	for _, part := range parts {
		writeSlotKey := func(varName string, props ast.Expr) error {
			if varName != "" {
				if bound, ok := env[varName]; ok {
					sb.WriteString("b=")
					sb.WriteString(value.Key(bound))
					sb.WriteByte(0x1f)
					return nil
				}
			}
			m, err := x.ev.EvalPropMap(props, env)
			if err != nil {
				return err
			}
			sb.WriteString("p=")
			sb.WriteString(value.MapKey(m))
			sb.WriteByte(0x1f)
			return nil
		}
		for i, np := range part.Nodes {
			if err := writeSlotKey(np.Var, np.Props); err != nil {
				return "", err
			}
			if i < len(part.Rels) {
				if err := writeSlotKey(part.Rels[i].Var, part.Rels[i].Props); err != nil {
					return "", err
				}
			}
		}
		sb.WriteByte(0x1e)
	}
	return sb.String(), nil
}

// collapseCreated merges equal newly-created entities per Definitions 1
// and 2 of the paper:
//
//   - nodes are collapsible when they have the same labels and the same
//     properties (and, under Weak Collapse, were created at the same
//     pattern position); pre-existing nodes are only collapsible with
//     themselves, which is guaranteed here because only new entities
//     participate;
//   - relationships are collapsible when they have the same type, the
//     same properties and collapsible endpoints (and, under Weak and
//     plain Collapse, the same pattern position; Strong Collapse drops
//     the position restriction, which is what allows Figure 9b).
//
// The graph is rewritten so that each class keeps one physical entity;
// the returned remaps translate old ids to representatives.
func (x *executor) collapseCreated(created []createdEntity, strategy MergeStrategy) (map[graph.NodeID]graph.NodeID, map[graph.RelID]graph.RelID, error) {
	nodeRemap := make(map[graph.NodeID]graph.NodeID)
	relRemap := make(map[graph.RelID]graph.RelID)

	// Node classes.
	nodeClassRep := make(map[string]graph.NodeID)
	var collapsedNodes []graph.NodeID
	for _, ce := range created {
		if !ce.isNode {
			continue
		}
		n := x.graph.Node(ce.nodeID)
		key := strings.Join(n.SortedLabels(), ",") + "|" + value.MapKey(n.PropMap())
		if strategy == StrategyWeakCollapse {
			key += "|@" + strconv.Itoa(ce.part) + "." + strconv.Itoa(ce.slot)
		}
		if rep, ok := nodeClassRep[key]; ok {
			nodeRemap[ce.nodeID] = rep
			collapsedNodes = append(collapsedNodes, ce.nodeID)
		} else {
			nodeClassRep[key] = ce.nodeID
			nodeRemap[ce.nodeID] = ce.nodeID
		}
	}

	repOf := func(id graph.NodeID) graph.NodeID {
		if rep, ok := nodeRemap[id]; ok {
			return rep
		}
		return id // pre-existing node: its own representative
	}

	// Relationship classes keyed on type, properties and representative
	// endpoints (plus position except under Strong Collapse).
	type relClass struct {
		physical graph.RelID
		hasPhys  bool
		src, tgt graph.NodeID
		relType  string
		props    value.Map
		members  []graph.RelID
	}
	classes := make(map[string]*relClass)
	var classOrder []string
	for _, ce := range created {
		if ce.isNode {
			continue
		}
		r := x.graph.Rel(ce.relID)
		src, tgt := repOf(r.Src), repOf(r.Tgt)
		key := r.Type + "|" + value.MapKey(r.PropMap()) + "|" +
			strconv.FormatInt(int64(src), 10) + ">" + strconv.FormatInt(int64(tgt), 10)
		if strategy != StrategyStrongCollapse {
			key += "|@" + strconv.Itoa(ce.part) + "." + strconv.Itoa(ce.slot)
		}
		c, ok := classes[key]
		if !ok {
			c = &relClass{src: src, tgt: tgt, relType: r.Type, props: r.PropMap()}
			classes[key] = c
			classOrder = append(classOrder, key)
		}
		c.members = append(c.members, ce.relID)
		// A member whose endpoints are already the representatives can
		// serve as the physical relationship for the class.
		if !c.hasPhys && r.Src == src && r.Tgt == tgt {
			c.physical = ce.relID
			c.hasPhys = true
		}
	}

	// Rewrite the graph: one physical relationship per class.
	var relsRemoved int
	for _, key := range classOrder {
		c := classes[key]
		if !c.hasPhys {
			nr, err := x.graph.CreateRel(c.src, c.tgt, c.relType, c.props)
			if err != nil {
				return nil, nil, fmt.Errorf("merge collapse: %w", err)
			}
			c.physical = nr.ID
			c.hasPhys = true
		}
		for _, rid := range c.members {
			relRemap[rid] = c.physical
			if rid != c.physical {
				x.graph.DeleteRel(rid)
				relsRemoved++
			}
		}
	}
	for _, nid := range collapsedNodes {
		if err := x.graph.DeleteNode(nid); err != nil {
			return nil, nil, fmt.Errorf("merge collapse: %w", err)
		}
	}

	// Stats reflect the post-collapse creations.
	x.stats.NodesCreated -= len(collapsedNodes)
	x.stats.RelsCreated -= relsRemoved

	return nodeRemap, relRemap, nil
}

// remapValue rewrites entity references through the collapse remaps,
// descending into lists, maps and paths.
func remapValue(v value.Value, nodeRemap map[graph.NodeID]graph.NodeID, relRemap map[graph.RelID]graph.RelID) value.Value {
	switch e := v.(type) {
	case value.Node:
		if rep, ok := nodeRemap[graph.NodeID(e.ID)]; ok {
			return value.Node{ID: int64(rep)}
		}
	case value.Rel:
		if rep, ok := relRemap[graph.RelID(e.ID)]; ok {
			return value.Rel{ID: int64(rep)}
		}
	case value.Path:
		out := value.Path{Nodes: make([]int64, len(e.Nodes)), Rels: make([]int64, len(e.Rels))}
		for i, nid := range e.Nodes {
			if rep, ok := nodeRemap[graph.NodeID(nid)]; ok {
				out.Nodes[i] = int64(rep)
			} else {
				out.Nodes[i] = nid
			}
		}
		for i, rid := range e.Rels {
			if rep, ok := relRemap[graph.RelID(rid)]; ok {
				out.Rels[i] = int64(rep)
			} else {
				out.Rels[i] = rid
			}
		}
		return out
	case value.List:
		out := make(value.List, len(e))
		for i, el := range e {
			out[i] = remapValue(el, nodeRemap, relRemap)
		}
		return out
	case value.Map:
		out := make(value.Map, len(e))
		for k, el := range e {
			out[k] = remapValue(el, nodeRemap, relRemap)
		}
		return out
	}
	return v
}
