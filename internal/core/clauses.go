package core

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/expr"
	"repro/internal/match"
	"repro/internal/plan"
	"repro/internal/table"
	"repro/internal/value"
)

// execMatch implements MATCH and OPTIONAL MATCH: for every record, all
// pattern matches extend the record; WHERE filters; OPTIONAL MATCH with
// no surviving match emits one record with the new variables null.
func (x *executor) execMatch(cl *ast.MatchClause, t *table.Table) (*table.Table, error) {
	newVars := freshVars(match.PatternVariables(cl.Pattern), t)
	out := table.New(append(t.Columns(), newVars...)...)
	m := x.matcher()
	// Pushed WHERE conjuncts prune during enumeration; the full WHERE
	// below still runs on every complete match, so results (and their
	// order) are identical with or without the pushdown.
	m.SetPushdown(match.NewPushdown(cl.Where, cl.Pattern, t.Columns()))
	for i := 0; i < t.Len(); i++ {
		env := expr.Env(t.Row(i))
		matches, err := m.Match(cl.Pattern, env)
		if err != nil {
			return nil, err
		}
		emitted := 0
		for _, me := range matches {
			if cl.Where != nil {
				ok, err := x.ev.EvalBool(cl.Where, me)
				if err != nil {
					return nil, err
				}
				if ok != value.True {
					continue
				}
			}
			out.AppendMap(me)
			emitted++
		}
		if cl.Optional && emitted == 0 {
			row := t.Row(i)
			for _, v := range newVars {
				row[v] = value.NullValue
			}
			out.AppendMap(row)
		}
	}
	return out, nil
}

// freshVars returns the names from vars that are not yet columns of t.
func freshVars(vars []string, t *table.Table) []string {
	var out []string
	for _, v := range vars {
		if !t.HasColumn(v) {
			out = append(out, v)
		}
	}
	return out
}

// execUnwind expands a list expression into one record per element.
// Null yields no records; a non-list value is treated as a singleton.
func (x *executor) execUnwind(cl *ast.UnwindClause, t *table.Table) (*table.Table, error) {
	if t.HasColumn(cl.Var) {
		return nil, fmt.Errorf("variable `%s` already declared", cl.Var)
	}
	out := table.New(append(t.Columns(), cl.Var)...)
	for i := 0; i < t.Len(); i++ {
		env := expr.Env(t.Row(i))
		v, err := x.ev.Eval(cl.Expr, env)
		if err != nil {
			return nil, err
		}
		var elems value.List
		switch lv := v.(type) {
		case value.Null:
			continue
		case value.List:
			elems = lv
		default:
			elems = value.List{v}
		}
		for _, el := range elems {
			row := t.Row(i)
			row[cl.Var] = el
			out.AppendMap(row)
		}
	}
	return out, nil
}

// execLoadCSV reads a CSV file per record, binding each data row to the
// clause variable: a map when WITH HEADERS is given, a list of strings
// otherwise. file:// URLs and plain paths are accepted.
func (x *executor) execLoadCSV(cl *ast.LoadCSVClause, t *table.Table) (*table.Table, error) {
	if t.HasColumn(cl.Var) {
		return nil, fmt.Errorf("variable `%s` already declared", cl.Var)
	}
	out := table.New(append(t.Columns(), cl.Var)...)
	for i := 0; i < t.Len(); i++ {
		env := expr.Env(t.Row(i))
		urlVal, err := x.ev.Eval(cl.URL, env)
		if err != nil {
			return nil, err
		}
		url, ok := value.AsString(urlVal)
		if !ok {
			return nil, fmt.Errorf("LOAD CSV FROM expects a string, got %s", urlVal.Kind())
		}
		bound, err := plan.BindCSV(string(url), cl.FieldTerm, cl.WithHeaders)
		if err != nil {
			return nil, err
		}
		for _, bv := range bound {
			row := t.Row(i)
			row[cl.Var] = bv
			out.AppendMap(row)
		}
	}
	return out, nil
}

// execProjection implements WITH and RETURN: expansion of *, aliasing,
// grouping and aggregation, DISTINCT, ORDER BY, SKIP/LIMIT and the WITH
// WHERE filter.
func (x *executor) execProjection(proj *ast.Projection, where ast.Expr, t *table.Table) (*table.Table, error) {
	items, err := expandItems(proj, t)
	if err != nil {
		return nil, err
	}
	cols := make([]string, len(items))
	seen := make(map[string]bool, len(items))
	for i, it := range items {
		cols[i] = it.alias
		if seen[it.alias] {
			return nil, fmt.Errorf("duplicate column name %q in projection", it.alias)
		}
		seen[it.alias] = true
	}

	hasAgg := false
	for _, it := range items {
		if ast.ContainsAggregate(it.expr) {
			hasAgg = true
			break
		}
	}

	var out *table.Table
	if hasAgg {
		out, err = x.projectAggregating(items, cols, t)
	} else {
		out, err = x.projectPlain(items, cols, t)
	}
	if err != nil {
		return nil, err
	}

	if proj.Distinct {
		out.Distinct()
	}
	if len(proj.OrderBy) > 0 {
		if err := x.orderBy(out, t, proj.OrderBy, hasAgg || proj.Distinct); err != nil {
			return nil, err
		}
	}
	if proj.Skip != nil || proj.Limit != nil {
		from, to, err := x.skipLimit(proj, out.Len())
		if err != nil {
			return nil, err
		}
		out.Slice(from, to)
	}
	if where != nil {
		filtered := out.CloneEmpty()
		for i := 0; i < out.Len(); i++ {
			ok, err := x.ev.EvalBool(where, expr.Env(out.Row(i)))
			if err != nil {
				return nil, err
			}
			if ok == value.True {
				filtered.AppendMap(out.Row(i))
			}
		}
		out = filtered
	}
	return out, nil
}

type projItem struct {
	expr  ast.Expr
	alias string
}

func expandItems(proj *ast.Projection, t *table.Table) ([]projItem, error) {
	var items []projItem
	if proj.Star {
		cols := t.Columns()
		if len(cols) == 0 && len(proj.Items) == 0 {
			return nil, fmt.Errorf("RETURN * is not allowed when there are no variables in scope")
		}
		for _, c := range cols {
			items = append(items, projItem{expr: &ast.Variable{Name: c}, alias: c})
		}
	}
	for _, it := range proj.Items {
		alias := it.Alias
		if alias == "" {
			if v, ok := it.Expr.(*ast.Variable); ok {
				alias = v.Name
			} else {
				alias = it.Expr.String()
			}
		}
		items = append(items, projItem{expr: it.Expr, alias: alias})
	}
	return items, nil
}

func (x *executor) projectPlain(items []projItem, cols []string, t *table.Table) (*table.Table, error) {
	out := table.New(cols...)
	for i := 0; i < t.Len(); i++ {
		env := expr.Env(t.Row(i))
		row := make([]value.Value, len(items))
		for j, it := range items {
			v, err := x.ev.Eval(it.expr, env)
			if err != nil {
				return nil, err
			}
			row[j] = v
		}
		out.AppendRow(row...)
	}
	return out, nil
}

// projectAggregating groups records by the non-aggregating items and
// evaluates aggregates per group. An input with zero records and no
// grouping keys produces the single empty-group row (count(*) = 0).
func (x *executor) projectAggregating(items []projItem, cols []string, t *table.Table) (*table.Table, error) {
	type keyItem struct {
		idx int // position in items
	}
	var keyItems []keyItem
	var aggCalls []*ast.FuncCall
	for idx, it := range items {
		if !ast.ContainsAggregate(it.expr) {
			keyItems = append(keyItems, keyItem{idx: idx})
		}
		ast.Walk(it.expr, func(e ast.Expr) bool {
			if f, ok := e.(*ast.FuncCall); ok && ast.AggregateFuncs[f.Name] {
				aggCalls = append(aggCalls, f)
				return false // aggregates cannot nest
			}
			return true
		})
	}

	type group struct {
		rep  expr.Env // environment of the first record in the group
		aggs []expr.Aggregator
	}
	groups := make(map[string]*group)
	var order []string

	for i := 0; i < t.Len(); i++ {
		env := expr.Env(t.Row(i))
		keyVals := make([]value.Value, len(keyItems))
		for k, ki := range keyItems {
			v, err := x.ev.Eval(items[ki.idx].expr, env)
			if err != nil {
				return nil, err
			}
			keyVals[k] = v
		}
		key := value.KeyList(keyVals)
		grp, ok := groups[key]
		if !ok {
			grp = &group{rep: env}
			for _, f := range aggCalls {
				agg, err := expr.NewAggregator(f.Name, f.Distinct, f.Star)
				if err != nil {
					return nil, err
				}
				grp.aggs = append(grp.aggs, agg)
			}
			groups[key] = grp
			order = append(order, key)
		}
		for ai, f := range aggCalls {
			var v value.Value = value.NullValue
			if !f.Star {
				if len(f.Args) != 1 {
					return nil, fmt.Errorf("%s() expects 1 argument", f.Name)
				}
				var err error
				v, err = x.ev.Eval(f.Args[0], env)
				if err != nil {
					return nil, err
				}
			}
			if err := grp.aggs[ai].Add(v); err != nil {
				return nil, err
			}
		}
	}

	// Zero input rows with no grouping keys: a single global group.
	if t.Len() == 0 && len(keyItems) == 0 {
		grp := &group{rep: expr.Env{}}
		for _, f := range aggCalls {
			agg, err := expr.NewAggregator(f.Name, f.Distinct, f.Star)
			if err != nil {
				return nil, err
			}
			grp.aggs = append(grp.aggs, agg)
		}
		groups["_"] = grp
		order = append(order, "_")
	}

	out := table.New(cols...)
	for _, key := range order {
		grp := groups[key]
		aggResults := make(map[ast.Expr]value.Value, len(aggCalls))
		for ai, f := range aggCalls {
			aggResults[f] = grp.aggs[ai].Result()
		}
		x.ev.AggResults = aggResults
		row := make([]value.Value, len(items))
		for j, it := range items {
			v, err := x.ev.Eval(it.expr, grp.rep)
			if err != nil {
				x.ev.AggResults = nil
				return nil, err
			}
			row[j] = v
		}
		x.ev.AggResults = nil
		out.AppendRow(row...)
	}
	return out, nil
}

// orderBy sorts the projected table. Sort expressions may reference the
// projected columns; when the projection neither aggregates nor
// deduplicates, they may also reference the pre-projection variables of
// the corresponding input record.
func (x *executor) orderBy(out, in *table.Table, sorts []*ast.SortItem, projectedOnly bool) error {
	n := out.Len()
	keys := make([][]value.Value, n)
	sameCardinality := !projectedOnly && in.Len() == n
	for i := 0; i < n; i++ {
		env := expr.Env{}
		if sameCardinality {
			for k, v := range in.Row(i) {
				env[k] = v
			}
		}
		for k, v := range out.Row(i) {
			env[k] = v
		}
		keys[i] = make([]value.Value, len(sorts))
		for s, item := range sorts {
			v, err := x.ev.Eval(item.Expr, env)
			if err != nil {
				return err
			}
			keys[i][s] = v
		}
	}
	// table.SortStable passes original row indices to the comparator, so
	// indexing the precomputed keys by them is sound.
	out.SortStable(func(i, j int) bool {
		for s, item := range sorts {
			c := value.CompareOrder(keys[i][s], keys[j][s])
			if item.Desc {
				c = -c
			}
			if c != 0 {
				return c < 0
			}
		}
		return false
	})
	return nil
}

func (x *executor) skipLimit(proj *ast.Projection, n int) (from, to int, err error) {
	from, to = 0, n
	if proj.Skip != nil {
		v, err := x.ev.Eval(proj.Skip, expr.Env{})
		if err != nil {
			return 0, 0, err
		}
		s, ok := value.AsInt(v)
		if !ok || s < 0 {
			return 0, 0, fmt.Errorf("SKIP expects a non-negative integer, got %s", v)
		}
		from = int(s)
	}
	if proj.Limit != nil {
		v, err := x.ev.Eval(proj.Limit, expr.Env{})
		if err != nil {
			return 0, 0, err
		}
		l, ok := value.AsInt(v)
		if !ok || l < 0 {
			return 0, 0, fmt.Errorf("LIMIT expects a non-negative integer, got %s", v)
		}
		if from+int(l) < to {
			to = from + int(l)
		}
	}
	return from, to, nil
}
