package core

import (
	"testing"

	"repro/internal/expr"
	"repro/internal/fixtures"
	"repro/internal/graph"
	"repro/internal/parser"
	"repro/internal/table"
)

// Section 8.2 defines clause composition: [[C S]](G,T) = [[S]]([[C]](G,T)).
// This test checks the property operationally for a corpus of queries in
// both dialects: executing the whole clause sequence must equal folding
// the clauses one at a time over the same graph and driving table.
func TestClauseCompositionality(t *testing.T) {
	queries := []string{
		`MATCH (p:Product) SET p.touched = true RETURN count(*) AS c`,
		`MATCH (u:User) CREATE (u)-[:VISITED]->(:Page{n:1}) RETURN u`,
		`UNWIND [1,2,3] AS x CREATE (:T{v:x}) RETURN x`,
		`MATCH (u:User) WITH u.name AS name RETURN name ORDER BY name`,
		`MATCH (p:Product{id:85}) REMOVE p.name RETURN p`,
		`MATCH (v:Vendor) DETACH DELETE v RETURN 1 AS one`,
		`MATCH (u:User{id:89}) MERGE (u)-[:ORDERED]->(:Thing{id:7}) RETURN u`,
	}
	for _, d := range []Dialect{DialectCypher9, DialectRevised} {
		for _, q := range queries {
			stmt, err := parser.Parse(q)
			if err != nil {
				t.Fatalf("parse %q: %v", q, err)
			}
			if Validate(stmt, d) != nil {
				continue // not in this dialect's grammar
			}
			clauses := stmt.Queries[0].Clauses

			runWhole := func() (*graph.Graph, *table.Table, error) {
				g, _ := fixtures.Figure1()
				x := newTestExecutor(d, g)
				tbl, err := x.run(clauses, table.Unit())
				return g, tbl, err
			}
			runFolded := func() (*graph.Graph, *table.Table, error) {
				g, _ := fixtures.Figure1()
				tbl := table.Unit()
				var err error
				for _, c := range clauses {
					// A fresh executor per clause: the composition
					// property says no cross-clause state may matter.
					x := newTestExecutor(d, g)
					tbl, err = x.clause(c, tbl)
					if err != nil {
						return g, tbl, err
					}
				}
				return g, tbl, nil
			}

			g1, t1, err1 := runWhole()
			g2, t2, err2 := runFolded()
			if (err1 == nil) != (err2 == nil) {
				t.Errorf("[%v] %q: error mismatch %v vs %v", d, q, err1, err2)
				continue
			}
			if err1 != nil {
				continue
			}
			if graph.Fingerprint(g1) != graph.Fingerprint(g2) {
				t.Errorf("[%v] %q: graphs differ between whole and folded execution", d, q)
			}
			if t1.Len() != t2.Len() {
				t.Errorf("[%v] %q: tables differ: %d vs %d rows", d, q, t1.Len(), t2.Len())
			}
		}
	}
}

func newTestExecutor(d Dialect, g *graph.Graph) *executor {
	return &executor{
		cfg:   Config{Dialect: d},
		graph: g,
		ev:    &expr.Evaluator{Graph: g},
	}
}
