package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/parser"
	"repro/internal/table"
	"repro/internal/value"
	"repro/internal/workload"
)

// Property: legacy MERGE over an n-record table is equivalent to running
// MERGE ALL once per record, in the same order. (Legacy MERGE processes
// the table record by record against the live graph; MERGE ALL over a
// singleton table does exactly one match-or-create step against its
// input graph, so the two compositions coincide.)
func TestLegacyMergeEqualsSequentialMergeAll(t *testing.T) {
	legacyStmt, err := parser.Parse(`MERGE (:User{id:cid})-[:ORDERED]->(:Product{id:pid})`)
	if err != nil {
		t.Fatal(err)
	}
	allStmt, err := parser.Parse(`MERGE ALL (:User{id:cid})-[:ORDERED]->(:Product{id:pid})`)
	if err != nil {
		t.Fatal(err)
	}

	f := func(seed int64, nRows uint8) bool {
		rows := int(nRows%20) + 1
		imp := workload.OrderImport{Rows: rows, Customers: 4, Products: 3, NullRate: 0.3, Seed: seed}
		tbl := imp.Build()

		gLegacy := graph.New()
		if _, err := NewEngine(Config{Dialect: DialectCypher9}).
			ExecuteWithTable(gLegacy, legacyStmt, nil, tbl.Clone()); err != nil {
			t.Log(err)
			return false
		}

		gSeq := graph.New()
		eng := NewEngine(Config{Dialect: DialectRevised})
		for i := 0; i < tbl.Len(); i++ {
			single := table.New(tbl.Columns()...)
			single.AppendRow(tbl.Values(i)...)
			if _, err := eng.ExecuteWithTable(gSeq, allStmt, nil, single); err != nil {
				t.Log(err)
				return false
			}
		}
		return graph.Isomorphic(gLegacy, gSeq)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: MERGE SAME is idempotent on tables whose pattern keys are
// non-null — a second import of the same table changes nothing.
func TestMergeSameIdempotentOnNonNullKeys(t *testing.T) {
	stmt, err := parser.Parse(`MERGE SAME (:User{id:cid})-[:ORDERED]->(:Product{id:pid})`)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64, nRows uint8) bool {
		rows := int(nRows%30) + 1
		imp := workload.OrderImport{Rows: rows, Customers: 5, Products: 4, NullRate: 0, Seed: seed}
		tbl := imp.Build()
		g := graph.New()
		eng := NewEngine(Config{Dialect: DialectRevised})
		if _, err := eng.ExecuteWithTable(g, stmt, nil, tbl.Clone()); err != nil {
			return false
		}
		fp := graph.Fingerprint(g)
		res, err := eng.ExecuteWithTable(g, stmt, nil, tbl.Clone())
		if err != nil {
			return false
		}
		return graph.Fingerprint(g) == fp && res.Stats.NodesCreated == 0 && res.Stats.RelsCreated == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: under every revised MERGE strategy the result is invariant
// under driving-table permutation (up to id renaming) — the Section 7
// determinism requirement — on randomized clickstream workloads.
func TestMergeStrategiesPermutationInvariant(t *testing.T) {
	c := workload.Clickstream{Sessions: 6, PathLen: 3, Products: 3, Seed: 11}
	query := `MERGE ALL ` + c.PathQuery()
	stmt, err := parser.Parse(query)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []MergeStrategy{
		StrategyAtomic, StrategyGrouping, StrategyWeakCollapse,
		StrategyCollapse, StrategyStrongCollapse,
	} {
		var fp string
		for seed := int64(0); seed < 4; seed++ {
			g, tbl := c.Build()
			if seed > 0 {
				tbl.Permute(workload.Shuffle(tbl.Len(), seed))
			}
			cfg := Config{Dialect: DialectRevised, MergeStrategy: s}
			if _, err := NewEngine(cfg).ExecuteWithTable(g, stmt, nil, tbl); err != nil {
				t.Fatal(err)
			}
			f := graph.Fingerprint(g)
			if fp == "" {
				fp = f
			} else if f != fp {
				t.Errorf("%v: permutation changed the result", s)
			}
		}
	}
}

// statementPool is a generator of random, usually-valid statements used
// by the invariant fuzz test below.
func statementPool(rng *rand.Rand) string {
	k := func(n int) int64 { return int64(rng.Intn(n)) }
	pool := []func() string{
		func() string { return fmt.Sprintf(`CREATE (:A{id:%d})-[:T{w:%d}]->(:B{id:%d})`, k(5), k(3), k(5)) },
		func() string { return fmt.Sprintf(`CREATE (:C{id:%d})`, k(5)) },
		func() string { return fmt.Sprintf(`MATCH (a:A{id:%d}) SET a.touched = %d`, k(5), k(9)) },
		func() string { return fmt.Sprintf(`MATCH (a:A{id:%d}) REMOVE a.touched`, k(5)) },
		func() string { return fmt.Sprintf(`MATCH (a:A{id:%d}) DETACH DELETE a`, k(5)) },
		func() string { return fmt.Sprintf(`MATCH (a)-[r:T{w:%d}]->(b) DELETE r`, k(3)) },
		func() string { return fmt.Sprintf(`MATCH (c:C{id:%d}) SET c:Marked`, k(5)) },
		func() string { return `MATCH (c:Marked) REMOVE c:Marked` },
		func() string { return fmt.Sprintf(`FOREACH (i IN range(1,%d) | CREATE (:F{i:i}))`, 1+k(3)) },
		func() string { return fmt.Sprintf(`MATCH (f:F) WITH f LIMIT %d DETACH DELETE f`, 1+k(2)) },
	}
	return pool[rng.Intn(len(pool))]()
}

// Invariant fuzz: after any sequence of random statements — successful or
// not — the graph satisfies the no-dangling invariant, and failed
// statements leave the graph byte-identical.
func TestRandomStatementsPreserveInvariants(t *testing.T) {
	for _, d := range []Dialect{DialectCypher9, DialectRevised} {
		rng := rand.New(rand.NewSource(42))
		g := graph.New()
		eng := NewEngine(Config{Dialect: d})
		for i := 0; i < 300; i++ {
			src := statementPool(rng)
			stmt, err := parser.Parse(src)
			if err != nil {
				t.Fatalf("[%v] generator produced unparseable %q: %v", d, src, err)
			}
			before := graph.Fingerprint(g)
			if _, err := eng.ExecuteStatement(g, stmt, nil); err != nil {
				if graph.Fingerprint(g) != before {
					t.Fatalf("[%v] failed statement %q mutated the graph", d, src)
				}
				continue
			}
			if err := g.Validate(); err != nil {
				t.Fatalf("[%v] invariant broken after %q: %v", d, src, err)
			}
		}
	}
}

// Property: on single-record tables with non-overlapping reads and
// writes, the legacy and revised SET semantics agree.
func TestSetDialectsAgreeOnDisjointWrites(t *testing.T) {
	f := func(a, b int64) bool {
		query := fmt.Sprintf(`MATCH (n:N) SET n.a = %d, n.b = %d`, a, b)
		stmt, err := parser.Parse(query)
		if err != nil {
			return false
		}
		var fps []string
		for _, d := range []Dialect{DialectCypher9, DialectRevised} {
			g := graph.New()
			g.CreateNode([]string{"N"}, value.Map{"seed": value.Int(1)})
			if _, err := NewEngine(Config{Dialect: d}).ExecuteStatement(g, stmt, nil); err != nil {
				return false
			}
			fps = append(fps, graph.Fingerprint(g))
		}
		return fps[0] == fps[1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// The Example 1 phenomenon generalized: when SET items read what other
// items write, the dialects *disagree* — which is precisely the paper's
// point. This test pins the disagreement.
func TestSetDialectsDisagreeOnOverlappingWrites(t *testing.T) {
	query := `MATCH (n:N) SET n.a = n.b, n.b = n.a`
	stmt, err := parser.Parse(query)
	if err != nil {
		t.Fatal(err)
	}
	results := make(map[Dialect][2]value.Value)
	for _, d := range []Dialect{DialectCypher9, DialectRevised} {
		g := graph.New()
		n := g.CreateNode([]string{"N"}, value.Map{"a": value.Int(1), "b": value.Int(2)})
		if _, err := NewEngine(Config{Dialect: d}).ExecuteStatement(g, stmt, nil); err != nil {
			t.Fatal(err)
		}
		results[d] = [2]value.Value{g.Node(n.ID).Props["a"], g.Node(n.ID).Props["b"]}
	}
	if results[DialectCypher9] != [2]value.Value{value.Int(2), value.Int(2)} {
		t.Errorf("legacy = %v, want [2 2]", results[DialectCypher9])
	}
	if results[DialectRevised] != [2]value.Value{value.Int(2), value.Int(1)} {
		t.Errorf("revised = %v, want [2 1] (the swap)", results[DialectRevised])
	}
}
