package core
