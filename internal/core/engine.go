// Package core implements the execution engine for Cypher statements:
// the clause semantics [[C]] : (G, T) -> (G', T') of the paper's
// Section 8, in two selectable dialects.
//
//   - DialectCypher9 reproduces the legacy Neo4j behaviour the paper
//     critiques in Section 4: update clauses stream over the driving table
//     record by record against a continuously mutated graph. SET applies
//     immediately (Examples 1-2), DELETE tolerates dangling relationships
//     until the end of the statement and silently ignores writes to
//     deleted entities (Section 4.2), and MERGE reads its own writes,
//     making its result depend on record order (Example 3 / Figure 6).
//
//   - DialectRevised implements the redesign of Sections 7-8: SET and
//     REMOVE are two-phase and atomic with conflict detection, DELETE is
//     strict and replaces deleted references by null, and MERGE comes in
//     the MERGE ALL and MERGE SAME forms (plus the intermediate proposals
//     of Section 6 as selectable strategies).
//
// A statement executes under a journal: any error rolls the graph back to
// its pre-statement state, giving statements all-or-nothing semantics.
package core

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/ast"
	"repro/internal/expr"
	"repro/internal/graph"
	"repro/internal/match"
	"repro/internal/plan"
	"repro/internal/table"
	"repro/internal/value"
)

// Dialect selects the update semantics.
type Dialect int

// Dialects.
const (
	// DialectCypher9 is the legacy record-by-record pipeline of Section 3,
	// including the defects catalogued in Section 4.
	DialectCypher9 Dialect = iota
	// DialectRevised is the atomic, deterministic semantics of Section 7.
	DialectRevised
)

func (d Dialect) String() string {
	if d == DialectRevised {
		return "revised"
	}
	return "cypher9"
}

// MergeStrategy selects among the proposals of Section 6 for executing a
// MERGE clause's creating half.
type MergeStrategy int

// Merge strategies (Section 6 of the paper).
const (
	// StrategyFromForm derives the strategy from the clause form:
	// MERGE ALL -> StrategyAtomic, MERGE SAME -> StrategyStrongCollapse,
	// legacy MERGE -> the legacy read-own-writes loop (Cypher 9 only).
	StrategyFromForm MergeStrategy = iota
	// StrategyLegacy forces the Cypher 9 per-record match-or-create loop.
	StrategyLegacy
	// StrategyAtomic creates one pattern instance per failing record
	// ("Atomic MERGE"; the MERGE ALL semantics).
	StrategyAtomic
	// StrategyGrouping creates one instance per group of failing records
	// that agree on all expressions in the pattern ("Grouping MERGE").
	StrategyGrouping
	// StrategyWeakCollapse additionally collapses newly created nodes and
	// relationships that agree on labels/types, properties and pattern
	// position ("Weak Collapse MERGE").
	StrategyWeakCollapse
	// StrategyCollapse lifts the same-position restriction for nodes
	// ("Collapse MERGE").
	StrategyCollapse
	// StrategyStrongCollapse lifts it for relationships as well
	// ("Strong Collapse MERGE"; the MERGE SAME semantics, Definitions 1-2).
	StrategyStrongCollapse
)

func (s MergeStrategy) String() string {
	switch s {
	case StrategyLegacy:
		return "legacy"
	case StrategyAtomic:
		return "atomic"
	case StrategyGrouping:
		return "grouping"
	case StrategyWeakCollapse:
		return "weak-collapse"
	case StrategyCollapse:
		return "collapse"
	case StrategyStrongCollapse:
		return "strong-collapse"
	default:
		return "from-form"
	}
}

// ScanOrder controls the record iteration order of legacy update clauses.
// The revised semantics is order-independent; the legacy MERGE is not
// (Example 3), which this knob makes demonstrable.
type ScanOrder int

// Scan orders.
const (
	ScanForward ScanOrder = iota
	ScanReverse
)

// Executor selects the evaluation strategy for a statement's reading
// pipeline. Update clauses execute identically under both: the
// streaming executor inserts a materialization barrier before every
// update clause (and before ORDER BY/aggregation), so the paper's
// record-order-dependent legacy semantics and the revised two-phase
// semantics are preserved bit-for-bit.
type Executor int

// Executors.
const (
	// ExecStreaming (the default) lowers the statement to a tree of
	// cursor-driven operators (package plan) pulled in columnar batches
	// of up to plan.BatchTarget rows: per-row map allocation and
	// coroutine switches amortize over a batch, and LIMIT/EXISTS still
	// exit early (consumers bound how many rows they request).
	ExecStreaming Executor = iota
	// ExecMaterializing is the original clause-at-a-time interpreter
	// that builds every intermediate table in full. It is retained as
	// the executable specification the streaming executor is tested
	// against (golden equivalence), and for A/B benchmarking.
	ExecMaterializing
	// ExecStreamingRows is the streaming executor pulled row-at-a-time
	// (the pre-vectorization discipline). Retained as the baseline the
	// batched path is cross-checked and benchmarked against.
	ExecStreamingRows
)

func (e Executor) String() string {
	switch e {
	case ExecMaterializing:
		return "materializing"
	case ExecStreamingRows:
		return "streaming-rows"
	default:
		return "streaming"
	}
}

// PlannerMode selects how MATCH enumeration is planned.
type PlannerMode int

// Planner modes.
const (
	// PlannerCostBased (the default) picks scan anchors, part order and
	// walk direction from the graph's incrementally maintained
	// statistics, and prunes with pushed WHERE conjuncts.
	PlannerCostBased PlannerMode = iota
	// PlannerLeftToRight is the pre-planner enumeration: every part
	// starts at its first node and parts run in written order. Kept for
	// A/B benchmarking (B11/B12) and bisecting planner issues.
	PlannerLeftToRight
)

func (p PlannerMode) String() string {
	if p == PlannerLeftToRight {
		return "left-to-right"
	}
	return "cost-based"
}

// Config configures an Engine.
type Config struct {
	Dialect Dialect
	// MergeStrategy overrides the strategy for all MERGE clauses;
	// StrategyFromForm (the default) derives it from the clause form.
	MergeStrategy MergeStrategy
	// ScanOrder applies to legacy update clause processing.
	ScanOrder ScanOrder
	// MatchMode selects relationship isomorphism (default) or
	// homomorphism for pattern matching.
	MatchMode match.Mode
	// SkipValidation disables dialect grammar validation (used by tests
	// that exercise runtime errors directly).
	SkipValidation bool
	// Executor selects the streaming (default) or materializing
	// evaluation strategy.
	Executor Executor
	// Planner selects cost-based match planning (default) or the naive
	// left-to-right enumeration. Both executors honour it, so golden
	// cross-executor comparisons hold in either mode.
	Planner PlannerMode
	// MemoryBudget caps, in bytes, the accounted memory the streaming
	// executors' barriers (ORDER BY, aggregation, DISTINCT) may hold per
	// statement before spilling to temp files. Zero (the default) means
	// unlimited: no accounting, no spilling. Results are identical with
	// and without a budget; only peak memory and speed change.
	MemoryBudget int64
	// Parallelism is the worker-pool degree for morsel-driven parallel
	// execution of read-only statements on the batched streaming
	// executor. Zero (the default) means GOMAXPROCS; 1 disables
	// parallelism. Update statements, explicit-transaction pipelines and
	// the row-at-a-time/materializing executors always run serially.
	// Results are identical at any degree: morsel outputs are gathered
	// in morsel order, so parallel plans emit the exact row sequence of
	// a serial run.
	Parallelism int
	// Durability configures the write-ahead log when the database is
	// opened against a data directory (cypher.OpenDir /
	// cypher.WithDurability). The engine itself does not consult it —
	// the store's commit path does — but it is carried here so one
	// Config describes a session end to end.
	Durability graph.Durability

	// onPlan, when set, receives the root operator of every streaming
	// statement after execution finishes (tests use it to assert
	// early-exit visit counts).
	onPlan func(plan.Operator)
	// forceAnchor, when set, overrides the planner's anchor choice per
	// pattern part (the planner-equivalence test hook; see
	// match.Matcher.ForceAnchor).
	forceAnchor func(partIdx int, part *ast.PatternPart) int
}

// UpdateStats counts the effects of a statement.
type UpdateStats struct {
	NodesCreated  int
	NodesDeleted  int
	RelsCreated   int
	RelsDeleted   int
	PropsSet      int
	LabelsAdded   int
	LabelsRemoved int
}

// Add accumulates other into s.
func (s *UpdateStats) Add(other UpdateStats) {
	s.NodesCreated += other.NodesCreated
	s.NodesDeleted += other.NodesDeleted
	s.RelsCreated += other.RelsCreated
	s.RelsDeleted += other.RelsDeleted
	s.PropsSet += other.PropsSet
	s.LabelsAdded += other.LabelsAdded
	s.LabelsRemoved += other.LabelsRemoved
}

// String renders the stats compactly.
func (s UpdateStats) String() string {
	return fmt.Sprintf("+%dn -%dn +%dr -%dr %dp +%dl -%dl",
		s.NodesCreated, s.NodesDeleted, s.RelsCreated, s.RelsDeleted,
		s.PropsSet, s.LabelsAdded, s.LabelsRemoved)
}

// Engine executes statements. Beyond the configuration it carries the
// engine-wide caches shared by every session: the statement cache
// (query text -> parsed AST) and the cross-statement plan cache —
// together they make repeated parameterized queries, from any number
// of sessions, parse and plan exactly once.
type Engine struct {
	cfg   Config
	stmts *stmtCache
	plans *match.PlanCache
}

// spillSweepOnce guards the once-per-process orphan sweep below.
var spillSweepOnce sync.Once

// NewEngine returns an engine with the given configuration. The first
// engine of the process also sweeps spill temp files orphaned by an
// earlier killed process out of the spill directory (live processes'
// files are left alone; see plan.SweepSpillOrphans).
func NewEngine(cfg Config) *Engine {
	spillSweepOnce.Do(func() {
		_, _ = plan.SweepSpillOrphans(plan.SpillDir())
	})
	return &Engine{cfg: cfg, stmts: newStmtCache(), plans: match.NewPlanCache()}
}

// Config returns the engine configuration.
func (e *Engine) Config() Config { return e.cfg }

// Parse returns the parsed form of query, served from the engine's
// statement cache. All sessions of the engine receive the same AST for
// the same query text — the identity the shared plan cache keys on.
// The AST must be treated as read-only (every execution path does).
func (e *Engine) Parse(query string) (*ast.Statement, error) {
	return e.stmts.parse(query)
}

// PlanCache returns the engine's shared cross-statement plan cache
// (counters for tests, benchmarks and server statistics).
func (e *Engine) PlanCache() *match.PlanCache { return e.plans }

// CacheStats summarizes the engine-wide caches: the statement (parse)
// cache and the shared match-plan cache.
type CacheStats struct {
	// StmtHits / StmtMisses count statement-cache lookups by outcome.
	StmtHits, StmtMisses int64
	// Plan carries the shared plan cache's counters.
	Plan match.PlanCacheStats
}

// CacheStats returns the engine's current cache counters.
func (e *Engine) CacheStats() CacheStats {
	h, m := e.stmts.stats()
	return CacheStats{StmtHits: h, StmtMisses: m, Plan: e.plans.Stats()}
}

// Result is the output of a statement: the table produced by RETURN (or
// an empty zero-column table) and the update statistics.
type Result struct {
	Table *table.Table
	Stats UpdateStats
}

// ExecuteStatement runs a statement against g, starting from the unit
// table (the T() of Section 8.1). g is mutated in place; on error it is
// rolled back to its initial state.
func (e *Engine) ExecuteStatement(g *graph.Graph, stmt *ast.Statement, params map[string]value.Value) (*Result, error) {
	return e.ExecuteWithTable(g, stmt, params, nil)
}

// ExecuteWithTable runs a statement with an explicit initial driving
// table (nil means the unit table). This entry point is what the
// Section 6 experiments use: the paper's MERGE examples start from
// "an input table [that] is already populated".
func (e *Engine) ExecuteWithTable(g *graph.Graph, stmt *ast.Statement, params map[string]value.Value, t0 *table.Table) (*Result, error) {
	if stmt.TxnControl != ast.TxnNone {
		return nil, fmt.Errorf("%s requires a session (transaction control is session state)", stmt.TxnControl)
	}
	if !e.cfg.SkipValidation {
		if err := Validate(stmt, e.cfg.Dialect); err != nil {
			return nil, err
		}
	}
	if params == nil {
		params = map[string]value.Value{}
	}
	j := g.BeginJournal()
	res, err := e.executeUnion(g, stmt, params, t0)
	if err != nil {
		j.Rollback()
		return nil, err
	}
	// Legacy statements may transit illegal intermediate states
	// (Section 4.2); like Neo4j's commit-time check, the invariant must
	// hold at statement end.
	if err := statementInvariant(g); err != nil {
		j.Rollback()
		return nil, err
	}
	j.Commit()
	return res, nil
}

// executeIndexStmt applies a CREATE/DROP INDEX schema statement to the
// working graph. CREATE is idempotent (re-running a setup script is
// harmless); DROP of a missing index is an error (it catches typos, and
// statement rollback makes the failure side-effect free). Both are
// journaled by the graph, so transaction rollback undoes them.
func executeIndexStmt(g *graph.Graph, is *ast.IndexStmt) (*Result, error) {
	if is.Drop {
		if !g.DropIndex(is.Label, is.Prop) {
			return nil, fmt.Errorf("DROP INDEX: no index on :%s(%s)", is.Label, is.Prop)
		}
	} else {
		g.CreateIndex(is.Label, is.Prop)
	}
	return &Result{Table: table.New()}, nil
}

// statementInvariant is the commit-time dangling-relationship check run
// at every statement boundary (auto-commit and inside transactions).
func statementInvariant(g *graph.Graph) error {
	if err := g.Validate(); err != nil {
		return fmt.Errorf("statement left the graph inconsistent: %w", err)
	}
	return nil
}

// executeUnion applies UNION members left to right: each query sees the
// graph as modified by its predecessors, and the output tables are
// unioned (Section 8.2, "Composition of clauses"). The streaming
// executor expresses the same composition as a sequential Union
// operator; the materializing executor loops over the members.
func (e *Engine) executeUnion(g *graph.Graph, stmt *ast.Statement, params map[string]value.Value, t0 *table.Table) (*Result, error) {
	return e.executeUnionPar(g, stmt, params, t0, e.parallelism(stmt))
}

// parallelism resolves the exchange degree a statement may use: the
// configured Parallelism (0 = GOMAXPROCS), forced to 1 — fully serial —
// for update statements and for any executor other than the batched
// streaming one. Explicit-transaction pipelines pass 1 explicitly (see
// Session.executeInTxn): the single-writer baton stays untouched.
func (e *Engine) parallelism(stmt *ast.Statement) int {
	if e.cfg.Executor != ExecStreaming || stmt.Updating() {
		return 1
	}
	p := e.cfg.Parallelism
	if p == 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p < 1 {
		p = 1
	}
	return p
}

// executeUnionPar is executeUnion with an explicit exchange degree.
func (e *Engine) executeUnionPar(g *graph.Graph, stmt *ast.Statement, params map[string]value.Value, t0 *table.Table, par int) (*Result, error) {
	if stmt.Index != nil {
		return executeIndexStmt(g, stmt.Index)
	}
	if e.cfg.Executor != ExecMaterializing {
		return e.executeStreaming(g, stmt, params, t0, par)
	}
	var out *table.Table
	stats := UpdateStats{}
	for i, q := range stmt.Queries {
		init := table.Unit()
		if t0 != nil {
			init = t0.Clone()
		}
		x := &executor{
			cfg:    e.cfg,
			plans:  e.plans,
			graph:  g,
			params: params,
			ev:     &expr.Evaluator{Graph: g, Params: params},
		}
		t, err := x.run(q.Clauses, init)
		if err != nil {
			return nil, err
		}
		stats.Add(x.stats)
		if i == 0 {
			out = t
			continue
		}
		if err := unionCompatible(out, t); err != nil {
			return nil, err
		}
		if err := out.AppendTable(t); err != nil {
			return nil, err
		}
	}
	if len(stmt.Queries) > 1 {
		// Plain UNION deduplicates; UNION ALL anywhere keeps duplicates
		// (matching SQL/Cypher: mixed unions apply the strictest form
		// pairwise; we simplify to "any plain UNION dedupes", documented).
		allAll := true
		for _, a := range stmt.UnionAll {
			if !a {
				allAll = false
			}
		}
		if !allAll {
			out.Distinct()
		}
	}
	return &Result{Table: out, Stats: stats}, nil
}

func unionCompatible(a, b *table.Table) error {
	ca, cb := a.Columns(), b.Columns()
	if len(ca) != len(cb) {
		return fmt.Errorf("UNION requires the same return columns (%v vs %v)", ca, cb)
	}
	for i := range ca {
		if ca[i] != cb[i] {
			return fmt.Errorf("UNION requires the same return columns (%v vs %v)", ca, cb)
		}
	}
	return nil
}

// executeStreaming lowers the statement to a streaming operator plan
// and drains it. Update clauses run behind materialization barriers via
// the same per-clause functions as the materializing executor, so both
// dialects' update semantics are identical across executors.
func (e *Engine) executeStreaming(g *graph.Graph, stmt *ast.Statement, params map[string]value.Value, t0 *table.Table, par int) (*Result, error) {
	x := &executor{
		cfg:    e.cfg,
		plans:  e.plans,
		graph:  g,
		params: params,
		ev:     &expr.Evaluator{Graph: g, Params: params},
	}
	root, err := x.buildPlan(stmt, t0, par)
	if err != nil {
		return nil, err
	}
	if e.cfg.onPlan != nil {
		defer e.cfg.onPlan(root)
	}
	collect := plan.Collect
	if e.cfg.Executor == ExecStreamingRows {
		collect = plan.CollectRows
	}
	out, err := collect(root)
	if err != nil {
		return nil, err
	}
	return &Result{Table: out, Stats: x.stats}, nil
}

// buildPlan constructs the statement's operator tree. The builder's
// Write hook closes over this executor, so update barriers apply the
// dialect-selected clause functions and accumulate stats here.
func (x *executor) buildPlan(stmt *ast.Statement, t0 *table.Table, par int) (plan.Operator, error) {
	b := &plan.Builder{
		Ev:         x.ev,
		NewMatcher: x.matcherFor,
		Write: func(c ast.Clause, in *table.Table) (*table.Table, error) {
			return x.clause(c, in)
		},
		MemoryBudget: x.cfg.MemoryBudget,
		Parallelism:  par,
	}
	return b.BuildStatement(stmt, t0)
}

// ExplainStatement renders the streaming operator plan for a statement
// without executing it (the cypher-shell EXPLAIN command). The first
// line states the statement's transaction boundary — whether its
// operators stream from a pinned snapshot with no lock held, or run
// under the writer lock with journaled update barriers; the tree below
// tags each update barrier with [barrier:writer-lock].
func (e *Engine) ExplainStatement(g *graph.Graph, stmt *ast.Statement, params map[string]value.Value) (string, error) {
	return e.explainStatement(g, stmt, params, false)
}

// explainStatement is ExplainStatement with the session's transaction
// context: inTxn marks an open explicit transaction.
func (e *Engine) explainStatement(g *graph.Graph, stmt *ast.Statement, params map[string]value.Value, inTxn bool) (string, error) {
	if stmt.TxnControl != ast.TxnNone {
		return fmt.Sprintf("%s — transaction control, no operator plan", stmt.TxnControl), nil
	}
	if stmt.Index != nil {
		op := "CreateIndex"
		if stmt.Index.Drop {
			op = "DropIndex"
		}
		header := "txn: auto-commit write — schema statement, writer lock held for the statement, journaled"
		if inTxn {
			header = "txn: explicit (open transaction) — schema statement applies to the transaction's working graph, journaled"
		}
		return fmt.Sprintf("%s\n%s[barrier:writer-lock](:%s(%s))", header, op, stmt.Index.Label, stmt.Index.Prop), nil
	}
	if !e.cfg.SkipValidation {
		if err := Validate(stmt, e.cfg.Dialect); err != nil {
			return "", err
		}
	}
	if params == nil {
		params = map[string]value.Value{}
	}
	x := &executor{
		cfg:    e.cfg,
		plans:  e.plans,
		graph:  g,
		params: params,
		ev:     &expr.Evaluator{Graph: g, Params: params},
	}
	par := e.parallelism(stmt)
	if inTxn {
		par = 1
	}
	root, err := x.buildPlan(stmt, nil, par)
	if err != nil {
		return "", err
	}
	defer root.Close()
	var header string
	switch {
	case inTxn:
		header = "txn: explicit (open transaction) — operators run on the transaction's working graph, writer lock held until COMMIT/ROLLBACK"
	case stmt.Updating():
		header = "txn: auto-commit write — writer lock held for the statement; [barrier:writer-lock] operators apply journaled deltas"
	default:
		header = "txn: auto-commit read-only — streams from a pinned snapshot, no locks held"
	}
	if e.cfg.MemoryBudget > 0 {
		header += fmt.Sprintf("\nmem: budget=%d bytes per statement — barriers beyond it spill to temp files", e.cfg.MemoryBudget)
	}
	return header + "\n" + plan.Explain(root), nil
}

// executor runs one single query's clause list.
type executor struct {
	cfg    Config
	plans  *match.PlanCache // engine's shared plan cache (nil in bare-engine tests)
	graph  *graph.Graph
	params map[string]value.Value
	ev     *expr.Evaluator
	stats  UpdateStats
}

func (x *executor) matcher() *match.Matcher { return x.matcherFor(x.ev) }

// matcherFor builds a matcher bound to the given evaluator — the
// executor's own for serial pipelines, a worker's private clone inside
// a parallel exchange.
func (x *executor) matcherFor(ev *expr.Evaluator) *match.Matcher {
	return &match.Matcher{
		Graph:       x.graph,
		Ev:          ev,
		Mode:        x.cfg.MatchMode,
		Cache:       x.plans,
		DisablePlan: x.cfg.Planner == PlannerLeftToRight,
		ForceAnchor: x.cfg.forceAnchor,
	}
}

// run folds the clause semantics over the driving table, left to right
// (the materializing executor: every clause builds its full output
// table before the next one starts).
func (x *executor) run(clauses []ast.Clause, t *table.Table) (*table.Table, error) {
	var err error
	returned := false
	for _, c := range clauses {
		t, err = x.clause(c, t)
		if err != nil {
			return nil, err
		}
		if _, ok := c.(*ast.ReturnClause); ok {
			returned = true
		}
	}
	if !returned {
		// A query without RETURN outputs no table.
		return table.New(), nil
	}
	return t, nil
}

func (x *executor) clause(c ast.Clause, t *table.Table) (*table.Table, error) {
	switch cl := c.(type) {
	case *ast.MatchClause:
		return x.execMatch(cl, t)
	case *ast.UnwindClause:
		return x.execUnwind(cl, t)
	case *ast.LoadCSVClause:
		return x.execLoadCSV(cl, t)
	case *ast.WithClause:
		return x.execProjection(&cl.Projection, cl.Where, t)
	case *ast.ReturnClause:
		return x.execProjection(&cl.Projection, nil, t)
	case *ast.CreateClause:
		return x.execCreate(cl, t)
	case *ast.SetClause:
		if x.cfg.Dialect == DialectCypher9 {
			return x.execSetLegacy(cl.Items, t)
		}
		return x.execSetRevised(cl.Items, t)
	case *ast.RemoveClause:
		if x.cfg.Dialect == DialectCypher9 {
			return x.execRemoveLegacy(cl, t)
		}
		return x.execRemoveRevised(cl, t)
	case *ast.DeleteClause:
		if x.cfg.Dialect == DialectCypher9 {
			return x.execDeleteLegacy(cl, t)
		}
		return x.execDeleteRevised(cl, t)
	case *ast.MergeClause:
		return x.execMerge(cl, t)
	case *ast.ForeachClause:
		return x.execForeach(cl, t)
	default:
		return nil, fmt.Errorf("unsupported clause %T", c)
	}
}

// rowOrder yields row indices in the configured scan order (legacy mode).
func (x *executor) rowOrder(t *table.Table) []int {
	idx := make([]int, t.Len())
	for i := range idx {
		idx[i] = i
	}
	if x.cfg.ScanOrder == ScanReverse {
		for i, j := 0, len(idx)-1; i < j; i, j = i+1, j-1 {
			idx[i], idx[j] = idx[j], idx[i]
		}
	}
	return idx
}
