package core

import (
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/parser"
	"repro/internal/value"
)

// goldenCase is one query with its expected rendered output rows
// (pipe-separated, in order). Rendering uses Value.String, so entity
// references are excluded from this corpus; shape-level behaviour of
// entities is covered elsewhere.
type goldenCase struct {
	name  string
	setup []string // statements run first (revised dialect)
	query string
	want  []string // rendered rows; nil means "no rows"
	cols  string   // expected column header, pipe-separated (optional)
}

var goldenCorpus = []goldenCase{
	// --- scalar expressions and projections ---
	{name: "arith precedence", query: `RETURN 1 + 2 * 3 AS x`, want: []string{"7"}},
	{name: "string concat", query: `RETURN 'a' + 'b' + 'c' AS s`, want: []string{"'abc'"}},
	{name: "alias defaults to expr text", query: `RETURN 1 + 1`, cols: "(1 + 1)", want: []string{"2"}},
	{name: "boolean ternary", query: `RETURN null AND false AS x, null OR true AS y`, want: []string{"false | true"}},
	{name: "case simple", query: `RETURN CASE 2 WHEN 1 THEN 'a' WHEN 2 THEN 'b' END AS x`, want: []string{"'b'"}},
	{name: "case searched else", query: `RETURN CASE WHEN false THEN 1 ELSE 2 END AS x`, want: []string{"2"}},
	{name: "list literal and index", query: `RETURN [10,20,30][1] AS x, [10,20,30][-1] AS y`, want: []string{"20 | 30"}},
	{name: "list slice", query: `RETURN [1,2,3,4][1..3] AS x`, want: []string{"[2, 3]"}},
	{name: "map literal access", query: `RETURN {a: 1, b: 'x'}.b AS v`, want: []string{"'x'"}},
	{name: "comprehension", query: `RETURN [x IN range(1,5) WHERE x % 2 = 1 | x * x] AS sq`, want: []string{"[1, 9, 25]"}},
	{name: "reduce", query: `RETURN reduce(s = 0, x IN [1,2,3,4] | s + x) AS sum`, want: []string{"10"}},
	{name: "quantifiers", query: `RETURN all(x IN [1,2] WHERE x > 0) AS a, none(x IN [1,2] WHERE x > 5) AS n`, want: []string{"true | true"}},
	{name: "coalesce chain", query: `RETURN coalesce(null, null, 3) AS x`, want: []string{"3"}},
	{name: "in with null", query: `RETURN 3 IN [1, null] AS x`, want: []string{"null"}},
	{name: "is null", query: `RETURN null IS NULL AS a, 1 IS NOT NULL AS b`, want: []string{"true | true"}},
	{name: "string predicates", query: `RETURN 'graph' STARTS WITH 'gr' AS a, 'graph' CONTAINS 'ap' AS b`, want: []string{"true | true"}},

	// --- UNWIND / WITH pipelines ---
	{name: "unwind", query: `UNWIND [3,1,2] AS x RETURN x ORDER BY x`, want: []string{"1", "2", "3"}},
	{name: "unwind nested lists", query: `UNWIND [[1,2],[3]] AS xs UNWIND xs AS x RETURN x`, want: []string{"1", "2", "3"}},
	{name: "with filtering", query: `UNWIND range(1,10) AS x WITH x WHERE x > 8 RETURN x`, want: []string{"9", "10"}},
	{name: "with rename", query: `WITH 5 AS five RETURN five * 2 AS ten`, want: []string{"10"}},
	{name: "order desc skip limit", query: `UNWIND [1,2,3,4,5] AS x RETURN x ORDER BY x DESC SKIP 1 LIMIT 2`, want: []string{"4", "3"}},
	{name: "distinct", query: `UNWIND [1,1,2,1.0] AS x RETURN DISTINCT x`, want: []string{"1", "2"}},
	{name: "order by null last", query: `UNWIND [null, 2, 1] AS x RETURN x ORDER BY x`, want: []string{"1", "2", "null"}},

	// --- aggregation ---
	{name: "count sum avg", query: `UNWIND [1,2,3] AS x RETURN count(*) AS c, sum(x) AS s, avg(x) AS a`, want: []string{"3 | 6 | 2.0"}},
	{name: "min max collect", query: `UNWIND [3,1,2] AS x RETURN min(x) AS mn, max(x) AS mx, collect(x) AS all`, want: []string{"1 | 3 | [3, 1, 2]"}},
	{name: "count null skips", query: `UNWIND [1, null, 2] AS x RETURN count(x) AS c, count(*) AS star`, want: []string{"2 | 3"}},
	{name: "group by key", query: `UNWIND [1,1,2,2,2] AS x RETURN x, count(*) AS c ORDER BY x`, want: []string{"1 | 2", "2 | 3"}},
	{name: "distinct aggregate", query: `UNWIND [1,1,2] AS x RETURN count(DISTINCT x) AS c`, want: []string{"2"}},
	{name: "collect empty", query: `MATCH (n:Nope) RETURN collect(n.x) AS xs`, want: []string{"[]"}},

	// --- graph reads ---
	{
		name:  "labels and props",
		setup: []string{`CREATE (:Person{name:'Ada', age:36}), (:Person{name:'Bob'})`},
		query: `MATCH (p:Person) RETURN p.name AS name, p.age AS age ORDER BY name`,
		want:  []string{"'Ada' | 36", "'Bob' | null"},
	},
	{
		name:  "relationship traversal",
		setup: []string{`CREATE (:A{v:1})-[:T{w:9}]->(:B{v:2})`},
		query: `MATCH (a:A)-[r:T]->(b:B) RETURN a.v AS av, r.w AS w, b.v AS bv`,
		want:  []string{"1 | 9 | 2"},
	},
	{
		name:  "undirected traversal both rows",
		setup: []string{`CREATE (:A{v:1})-[:T]->(:A{v:2})`},
		query: `MATCH (x:A)-[:T]-(y:A) RETURN x.v AS xv ORDER BY xv`,
		want:  []string{"1", "2"},
	},
	{
		name:  "var length path",
		setup: []string{`CREATE (:P{i:1})-[:N]->(:P{i:2})-[:N]->(:P{i:3})`},
		query: `MATCH (a:P{i:1})-[:N*1..2]->(b) RETURN b.i AS i ORDER BY i`,
		want:  []string{"2", "3"},
	},
	{
		name:  "optional match null",
		setup: []string{`CREATE (:X{v:1})`},
		query: `MATCH (x:X) OPTIONAL MATCH (x)-[:MISSING]->(m) RETURN x.v AS v, m`,
		want:  []string{"1 | null"},
	},
	{
		name:  "path functions",
		setup: []string{`CREATE (:A{v:1})-[:T]->(:B{v:2})`},
		query: `MATCH pth = (:A)-[:T]->(:B) RETURN length(pth) AS len, size(nodes(pth)) AS n`,
		want:  []string{"1 | 2"},
	},
	{
		name:  "labels function",
		setup: []string{`CREATE (:A:B{v:1})`},
		query: `MATCH (n{v:1}) RETURN labels(n) AS ls`,
		want:  []string{"['A', 'B']"},
	},
	{
		name:  "exists and keys",
		setup: []string{`CREATE (:K{a:1})`},
		query: `MATCH (n:K) RETURN exists(n.a) AS ea, exists(n.b) AS eb, keys(n) AS ks`,
		want:  []string{"true | false | ['a']"},
	},

	// --- updates observed through reads (revised dialect) ---
	{
		name:  "create then read",
		setup: []string{`CREATE (:C{v:1})`, `MATCH (c:C) SET c.v = c.v + 1`},
		query: `MATCH (c:C) RETURN c.v AS v`,
		want:  []string{"2"},
	},
	{
		name: "merge same binds",
		setup: []string{
			`UNWIND [1,1,2] AS k MERGE SAME (:U{id:k})`,
		},
		query: `MATCH (u:U) RETURN count(*) AS c`,
		want:  []string{"2"},
	},
	{
		name:  "remove label",
		setup: []string{`CREATE (:Old:New{v:1})`, `MATCH (n:Old) REMOVE n:Old`},
		query: `MATCH (n:New) RETURN size(labels(n)) AS c`,
		want:  []string{"1"},
	},
	{
		name:  "delete then count",
		setup: []string{`CREATE (:D{v:1}), (:D{v:2})`, `MATCH (d:D{v:1}) DELETE d`},
		query: `MATCH (d:D) RETURN count(*) AS c`,
		want:  []string{"1"},
	},
	{
		name:  "foreach effect",
		setup: []string{`FOREACH (i IN range(1,3) | CREATE (:F{i:i}))`},
		query: `MATCH (f:F) RETURN sum(f.i) AS s`,
		want:  []string{"6"},
	},

	// --- union ---
	{
		name:  "union dedup",
		query: `RETURN 1 AS x UNION RETURN 1 AS x UNION RETURN 2 AS x`,
		want:  []string{"1", "2"},
	},
	{
		name:  "union all keeps",
		query: `RETURN 1 AS x UNION ALL RETURN 1 AS x`,
		want:  []string{"1", "1"},
	},

	// --- functions breadth ---
	{name: "string funcs", query: `RETURN toUpper('ab') + toLower('CD') AS s, substring('hello', 1, 3) AS sub`, want: []string{"'ABcd' | 'ell'"}},
	{name: "split join shape", query: `RETURN size(split('a,b,c', ',')) AS n`, want: []string{"3"}},
	{name: "numeric funcs", query: `RETURN abs(-2) AS a, sign(-9) AS s, round(2.5) AS r`, want: []string{"2 | -1 | 3.0"}},
	{name: "conversions", query: `RETURN toInteger('42') AS i, toFloat('1.5') AS f, toString(7) AS s`, want: []string{"42 | 1.5 | '7'"}},
	{name: "head last tail", query: `RETURN head([1,2,3]) AS h, last([1,2,3]) AS l, tail([1,2,3]) AS t`, want: []string{"1 | 3 | [2, 3]"}},
	{name: "reverse range", query: `RETURN reverse(range(1,3)) AS r`, want: []string{"[3, 2, 1]"}},
	{name: "chained comparison", query: `RETURN 1 < 2 < 3 AS t, 1 < 2 > 5 AS f`, want: []string{"true | false"}},
	{name: "modulo and power", query: `RETURN 7 % 3 AS m, 2 ^ 3 AS p`, want: []string{"1 | 8.0"}},
}

func TestGoldenCorpus(t *testing.T) {
	for _, c := range goldenCorpus {
		t.Run(c.name, func(t *testing.T) {
			g := graph.New()
			eng := NewEngine(Config{Dialect: DialectRevised})
			for _, s := range c.setup {
				stmt, err := parser.Parse(s)
				if err != nil {
					t.Fatalf("setup parse: %v", err)
				}
				if _, err := eng.ExecuteStatement(g, stmt, nil); err != nil {
					t.Fatalf("setup exec %q: %v", s, err)
				}
			}
			stmt, err := parser.Parse(c.query)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			res, err := eng.ExecuteStatement(g, stmt, nil)
			if err != nil {
				t.Fatalf("exec: %v", err)
			}
			if c.cols != "" {
				if got := strings.Join(res.Table.Columns(), " | "); got != c.cols {
					t.Errorf("columns = %q, want %q", got, c.cols)
				}
			}
			var got []string
			for i := 0; i < res.Table.Len(); i++ {
				var parts []string
				for _, v := range res.Table.Values(i) {
					parts = append(parts, renderValue(v))
				}
				got = append(got, strings.Join(parts, " | "))
			}
			if len(got) != len(c.want) {
				t.Fatalf("rows = %v, want %v", got, c.want)
			}
			for i := range got {
				if got[i] != c.want[i] {
					t.Errorf("row %d = %q, want %q", i, got[i], c.want[i])
				}
			}
		})
	}
}

func renderValue(v value.Value) string {
	if v == nil {
		return "null"
	}
	return v.String()
}
