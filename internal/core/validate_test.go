package core

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/parser"
)

// validateStr parses and validates a statement under a dialect.
func validateStr(t *testing.T, src string, d Dialect) error {
	t.Helper()
	stmt, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return Validate(stmt, d)
}

// The grammar acceptance matrix of Section 4.4 / Figure 10 (experiment
// E10): each statement is checked against both dialects.
func TestGrammarAcceptanceMatrix(t *testing.T) {
	cases := []struct {
		name    string
		src     string
		cypher9 bool
		revised bool
	}{
		{
			name:    "reading after update without WITH",
			src:     `CREATE (:A) MATCH (n) RETURN n`,
			cypher9: false, // Figure 2 requires WITH
			revised: true,  // Figure 10 interleaves freely
		},
		{
			name:    "reading after update with WITH",
			src:     `CREATE (a:A) WITH a MATCH (n) RETURN n`,
			cypher9: true,
			revised: true,
		},
		{
			name:    "update after reading",
			src:     `MATCH (n) SET n.x = 1`,
			cypher9: true,
			revised: true,
		},
		{
			name:    "RETURN directly after update",
			src:     `CREATE (a:A) RETURN a`,
			cypher9: true, // accepted by Neo4j and by the paper's own Query (5)
			revised: true,
		},
		{
			name:    "bare MERGE",
			src:     `MERGE (a:A{id:1})`,
			cypher9: true,
			revised: false, // "will no longer be allowed" (Section 7)
		},
		{
			name:    "MERGE ALL",
			src:     `MERGE ALL (a:A{id:1})-[:T]->(b:B)`,
			cypher9: false, // not part of Cypher 9
			revised: true,
		},
		{
			name:    "MERGE SAME",
			src:     `MERGE SAME (a:A{id:1})-[:T]->(b:B)`,
			cypher9: false,
			revised: true,
		},
		{
			name:    "MERGE ALL with pattern tuple",
			src:     `MERGE ALL (a:A)-[:T]->(b:B), (c:C)-[:U]->(d:D)`,
			cypher9: false,
			revised: true, // Figure 10 allows tuples
		},
		{
			name:    "legacy MERGE with pattern tuple",
			src:     `MERGE (a:A)-[:T]->(b:B), (c:C)`,
			cypher9: false, // Figure 3: single pattern only
			revised: false,
		},
		{
			name:    "legacy MERGE with undirected relationship",
			src:     `MERGE (a:A)-[:T]-(b:B)`,
			cypher9: true,  // Figure 5 <rel. upd. pat.> allows it
			revised: false, // Figure 10 requires directed patterns
		},
		{
			name:    "MERGE ALL with undirected relationship",
			src:     `MERGE ALL (a:A)-[:T]-(b:B)`,
			cypher9: false,
			revised: false,
		},
		{
			name:    "CREATE with undirected relationship",
			src:     `CREATE (a)-[:T]-(b)`,
			cypher9: false, // Figure 5 <dir. upd. pat.> requires direction
			revised: false,
		},
		{
			name:    "CREATE without relationship type",
			src:     `CREATE (a)-[r]->(b)`,
			cypher9: false,
			revised: false,
		},
		{
			name:    "CREATE with variable length",
			src:     `CREATE (a)-[:T*2]->(b)`,
			cypher9: false,
			revised: false,
		},
		{
			name:    "MERGE SAME with ON CREATE",
			src:     `MERGE SAME (a:A) ON CREATE SET a.x = 1`,
			cypher9: false,
			revised: false, // ON CREATE/ON MATCH dropped with the form
		},
		{
			name:    "legacy MERGE with ON CREATE/ON MATCH",
			src:     `MERGE (a:A{id:1}) ON CREATE SET a.x = 1 ON MATCH SET a.y = 2`,
			cypher9: true,
			revised: false,
		},
		{
			name:    "FOREACH with valid body",
			src:     `FOREACH (x IN [1] | CREATE (:N)-[:T]->(:M))`,
			cypher9: true,
			revised: true,
		},
		{
			name:    "FOREACH with undirected CREATE in body",
			src:     `FOREACH (x IN [1] | CREATE (:N)-[:T]-(:M))`,
			cypher9: false,
			revised: false,
		},
		{
			name:    "update clauses then WITH then reading",
			src:     `MATCH (n) SET n.x = 1 WITH n MATCH (m) RETURN m`,
			cypher9: true,
			revised: true,
		},
		{
			name:    "two reading clauses",
			src:     `MATCH (n) MATCH (m) RETURN n, m`,
			cypher9: true,
			revised: true,
		},
		{
			name:    "UNWIND after DELETE",
			src:     `MATCH (n) DETACH DELETE n UNWIND [1] AS x RETURN x`,
			cypher9: false,
			revised: true,
		},
	}
	for _, c := range cases {
		err9 := validateStr(t, c.src, DialectCypher9)
		if (err9 == nil) != c.cypher9 {
			t.Errorf("%s: cypher9 validation = %v, want accept=%v", c.name, err9, c.cypher9)
		}
		errR := validateStr(t, c.src, DialectRevised)
		if (errR == nil) != c.revised {
			t.Errorf("%s: revised validation = %v, want accept=%v", c.name, errR, c.revised)
		}
	}
}

// Executing a statement that the dialect rejects must fail without
// touching the graph.
func TestExecutionHonorsValidation(t *testing.T) {
	g := graph.New()
	if _, err := runErr(DialectRevised, g, `MERGE (a:A{id:1})`); err == nil {
		t.Fatal("bare MERGE must be rejected by the revised dialect at execution")
	}
	if g.NumNodes() != 0 {
		t.Error("rejected statement must not mutate")
	}
	// SkipValidation allows the engine-level error path to be exercised.
	stmt, err := parser.Parse(`MERGE (a:A{id:1})`)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(Config{Dialect: DialectRevised, SkipValidation: true})
	if _, err := e.ExecuteStatement(g, stmt, nil); err == nil {
		t.Error("legacy MERGE must still fail in the revised dialect at runtime")
	}
}
