package core

import (
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/parser"
)

// exprEquivSetup is a small graph with strings, numbers, lists and
// missing properties — the shapes the expression corpus below probes.
var exprEquivSetup = []string{
	`CREATE (:E{name:'Ada Lovelace', age:36, tags:'math,logic', email:'ada@x.io'}),
	        (:E{name:'bob', age:41, tags:'ops'}),
	        (:E{name:'CYD', age:23, tags:'db,graphs,cypher', email:'cyd@x.io'}),
	        (:E{name:'dee', age:55, tags:''})`,
}

// exprEquivQueries exercises the registry's new functions, list
// comprehensions, both CASE forms and reduce through full statements,
// so every executor lowers and evaluates them.
var exprEquivQueries = []string{
	`MATCH (e:E) RETURN e.name AS n, split(e.tags, ',') AS tags ORDER BY n`,
	`MATCH (e:E) RETURN replace(e.name, 'a', '_') AS r ORDER BY r`,
	`MATCH (e:E) RETURN left(e.name, 3) + '|' + right(e.name, 2) AS clip ORDER BY clip`,
	`MATCH (e:E) RETURN e.name AS n, sign(e.age - 40) AS s, round(e.age / 7.0, 2) AS r ORDER BY n`,
	`MATCH (e:E) WHERE exists(e.email) RETURN toUpper(e.name) AS n ORDER BY n`,
	`MATCH (e:E) RETURN e.name AS n,
	        [t IN split(e.tags, ',') WHERE size(t) > 2 | toUpper(t)] AS big ORDER BY n`,
	`MATCH (e:E) RETURN e.name AS n,
	        reduce(s = 0, t IN split(e.tags, ',') | s + size(t)) AS letters ORDER BY n`,
	`MATCH (e:E) RETURN e.name AS n,
	        CASE WHEN e.age < 30 THEN 'young' WHEN e.age < 50 THEN 'mid' ELSE 'old' END AS band ORDER BY n`,
	`MATCH (e:E) RETURN e.name AS n,
	        CASE size(split(e.tags, ',')) WHEN 1 THEN 'one' WHEN 3 THEN 'three' ELSE 'other' END AS k ORDER BY n`,
	`UNWIND range(1, 5) AS i RETURN i, tail(range(1, i)) AS t, last(range(0, i)) AS l ORDER BY i`,
	`MATCH (e:E) RETURN e.name AS n, datetime(e.age * 86400000).day AS d ORDER BY n`,
	`MATCH (e:E) WHERE toLower(e.name) STARTS WITH 'c' RETURN reverse(e.name) AS r`,
	`MATCH (e:E) RETURN coalesce(e.email, 'none') AS m ORDER BY m`,
}

// TestExpressionEquivalenceAcrossExecutors requires bit-identical
// rendered results for the expression corpus across all three
// executors, both dialects, and serial vs parallel execution — the
// acceptance bar for the registry migration: dispatch, scoping and
// folding must not depend on how the plan is driven.
func TestExpressionEquivalenceAcrossExecutors(t *testing.T) {
	base := graph.New()
	setup := NewEngine(Config{Dialect: DialectRevised})
	for _, s := range exprEquivSetup {
		stmt, err := parser.Parse(s)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := setup.ExecuteStatement(base, stmt, nil); err != nil {
			t.Fatal(err)
		}
	}
	for _, q := range exprEquivQueries {
		stmt, err := parser.Parse(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		var want string
		first := true
		for _, dialect := range []Dialect{DialectRevised, DialectCypher9} {
			for _, ex := range []Executor{ExecStreaming, ExecStreamingRows, ExecMaterializing} {
				for _, par := range []int{1, 4} {
					cfg := Config{Dialect: dialect, Executor: ex, Parallelism: par}
					res, err := NewEngine(cfg).ExecuteStatement(base.Clone(), stmt, nil)
					if err != nil {
						t.Fatalf("%s/%s/par%d: %q: %v", dialect, ex, par, q, err)
					}
					got := renderMultiset(res)
					if first {
						want, first = got, false
						continue
					}
					if got != want {
						t.Errorf("%s/%s/par%d: %q diverged:\n got:\n%s\nwant:\n%s",
							dialect, ex, par, q, got, want)
					}
				}
			}
		}
	}
}

// TestFunctionNamesCaseInsensitiveBothDialects is the satellite
// regression: Cypher function names match case-insensitively in both
// dialects, including through WHERE (where pushdown sees them).
func TestFunctionNamesCaseInsensitiveBothDialects(t *testing.T) {
	for _, dialect := range []Dialect{DialectRevised, DialectCypher9} {
		g := graph.New()
		eng := NewEngine(Config{Dialect: dialect})
		exec := func(q string) *Result {
			t.Helper()
			stmt, err := parser.Parse(q)
			if err != nil {
				t.Fatalf("%s: parse %q: %v", dialect, q, err)
			}
			res, err := eng.ExecuteStatement(g, stmt, nil)
			if err != nil {
				t.Fatalf("%s: %q: %v", dialect, q, err)
			}
			return res
		}
		exec(`CREATE (:C{name:'ada'}), (:C{})`)
		for _, q := range []string{
			`MATCH (c:C) WHERE EXISTS(c.name) RETURN TOUPPER(c.name) AS n`,
			`MATCH (c:C) WHERE exists(c.name) RETURN toUpper(c.name) AS n`,
			`MATCH (c:C) WHERE eXiStS(c.name) RETURN tOuPpEr(c.name) AS n`,
		} {
			res := exec(q)
			if res.Table.Len() != 1 || renderValue(res.Table.Values(0)[0]) != "'ADA'" {
				t.Errorf("%s: %q: got %s", dialect, q, renderMultiset(res))
			}
		}
	}
}

// TestExplainShowsFoldingAndPushdown pins the PR's two planner-visible
// acceptance behaviours in one place: a pure+total conjunct (exists)
// joins the comparison under pushed=, a parameter-free pure subtree is
// folded into the printed predicate, and a nondeterministic conjunct
// is never pushed.
func TestExplainShowsFoldingAndPushdown(t *testing.T) {
	g := graph.New()
	eng := NewEngine(Config{Dialect: DialectRevised})
	setup, err := parser.Parse(`CREATE (:P{age:36, email:'a@x'})`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.ExecuteStatement(g, setup, nil); err != nil {
		t.Fatal(err)
	}
	explain := func(q string) string {
		t.Helper()
		stmt, err := parser.Parse(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		out, err := eng.ExplainStatement(g, stmt, nil)
		if err != nil {
			t.Fatalf("explain %q: %v", q, err)
		}
		return out
	}

	out := explain(`MATCH (n:P) WHERE exists(n.email) AND n.age > 30 RETURN n.age AS a`)
	if !strings.Contains(out, "pushed=") ||
		!strings.Contains(out, "exists(n.email)") || !strings.Contains(out, "(n.age > 30)") {
		t.Errorf("exists + comparison should both be pushed:\n%s", out)
	}

	out = explain(`MATCH (n:P) WHERE n.age > 10 + 20 RETURN n.age AS a`)
	if !strings.Contains(out, "pushed=[(n.age > 30)]") {
		t.Errorf("constant 10 + 20 should fold to 30 inside the pushed predicate:\n%s", out)
	}

	out = explain(`MATCH (n:P) WHERE rand() < 0.5 AND n.age > 30 RETURN n.age AS a`)
	if strings.Contains(out, "rand") && strings.Contains(out, "pushed=") &&
		strings.Contains(out[strings.Index(out, "pushed="):], "rand") {
		t.Errorf("nondeterministic rand() must never appear under pushed=:\n%s", out)
	}

	out = explain(`UNWIND range(1, 3) AS i WITH i WHERE i > size('ab') RETURN i + size([1, 2]) AS x`)
	if !strings.Contains(out, "(i > 2)") {
		t.Errorf("size('ab') should fold to 2 in the filter:\n%s", out)
	}
}

// TestPushdownNeverPrunesErrors extends the error-preservation suite to
// function calls: a fallible conjunct alongside a pushable one must
// error identically whether or not the pushable conjunct pruned first.
func TestPushdownNeverPrunesErrors(t *testing.T) {
	g := graph.New()
	setup, err := parser.Parse(`CREATE (:N{name:'x', y:1})`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewEngine(Config{Dialect: DialectRevised}).ExecuteStatement(g, setup, nil); err != nil {
		t.Fatal(err)
	}
	queries := []string{
		`MATCH (a:N) WHERE toUpper(a.name) = 'X' AND 1/0 = 1 RETURN a.y AS y`,
		`MATCH (a:N) WHERE 1/0 = 1 AND exists(a.name) RETURN a.y AS y`,
		`MATCH (a:N) WHERE exists(a.missing) AND toUpper(a.y) = 'X' RETURN a.y AS y`,
	}
	for _, q := range queries {
		stmt, err := parser.Parse(q)
		if err != nil {
			t.Fatal(err)
		}
		for _, ex := range []Executor{ExecStreaming, ExecStreamingRows, ExecMaterializing} {
			_, errPlanned := NewEngine(Config{Dialect: DialectRevised, Executor: ex}).
				ExecuteStatement(g.Clone(), stmt, nil)
			_, errNaive := NewEngine(Config{Dialect: DialectRevised, Executor: ex, Planner: PlannerLeftToRight}).
				ExecuteStatement(g.Clone(), stmt, nil)
			if (errPlanned == nil) != (errNaive == nil) {
				t.Errorf("%s %q: error divergence planned=%v naive=%v", ex, q, errPlanned, errNaive)
			}
		}
	}
}
