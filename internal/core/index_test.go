package core

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/graph"
	"repro/internal/parser"
	"repro/internal/table"
	"repro/internal/value"
)

func mustParse(t *testing.T, src string) *ast.Statement {
	t.Helper()
	stmt, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return stmt
}

// indexEquivQueries are equality-anchored shapes the index seek
// rewrites; each must return the identical multiset with and without
// indexes, across executors and dialects.
var indexEquivQueries = []string{
	`MATCH (a:User{name:'ada'}) RETURN a.age AS age`,
	`MATCH (a:User) WHERE a.name = 'bob' RETURN a.age AS age`,
	`MATCH (a:User) WHERE 'cyd' = a.name RETURN a.age AS age`,
	`MATCH (a:User{name:'ada'})-[:KNOWS]->(b:User) RETURN b.name AS bn`,
	`MATCH (b:User)<-[:KNOWS]-(a:User) WHERE a.name = 'ada' RETURN b.name AS bn`,
	`MATCH (a:User)-[:WROTE]->(p:Post) WHERE p.id = 2 RETURN a.name AS an`,
	`MATCH (a:User{name:'nobody'}) RETURN a.age AS age`,
	`MATCH (a:User) WHERE a.name = 'ada' AND a.age < 50 RETURN a.age AS age`,
	`MATCH (a:User) OPTIONAL MATCH (a)-[:WROTE]->(p:Post) WHERE p.id = 1 RETURN a.name AS an, p.id AS pid`,
	`MATCH (x:User) WITH x.name AS nm MATCH (a:User) WHERE a.name = nm RETURN nm, a.age AS age`,
}

// indexEquivDDL creates the indexes the queries above can seek on.
var indexEquivDDL = []string{
	`CREATE INDEX ON :User(name)`,
	`CREATE INDEX ON :Post(id)`,
}

// TestIndexSeekEquivalence is the acceptance sweep: every corpus query
// must return a multiset identical between the index-seek plan and the
// label-scan plan, across both executors and both dialects (and the
// naive planner as a third reference).
func TestIndexSeekEquivalence(t *testing.T) {
	plain := graph.New()
	setupEng := NewEngine(Config{Dialect: DialectRevised})
	for _, s := range plannerEquivSetup {
		if _, err := setupEng.ExecuteStatement(plain, mustParse(t, s), nil); err != nil {
			t.Fatalf("setup: %v", err)
		}
	}
	indexed := plain.Clone()
	for _, s := range indexEquivDDL {
		if _, err := setupEng.ExecuteStatement(indexed, mustParse(t, s), nil); err != nil {
			t.Fatalf("ddl: %v", err)
		}
	}

	for _, q := range indexEquivQueries {
		stmt := mustParse(t, q)
		var want string
		first := true
		check := func(name string, g *graph.Graph, cfg Config) {
			t.Helper()
			res, err := NewEngine(cfg).ExecuteStatement(g.Clone(), stmt, nil)
			if err != nil {
				t.Fatalf("%s: %q: %v", name, q, err)
			}
			got := renderMultiset(res)
			if first {
				want, first = got, false
				return
			}
			if got != want {
				t.Errorf("%s: %q diverged:\n got:\n%s\nwant:\n%s", name, q, got, want)
			}
		}
		for _, dialect := range []Dialect{DialectRevised, DialectCypher9} {
			for _, ex := range []Executor{ExecStreaming, ExecMaterializing} {
				cfg := Config{Dialect: dialect, Executor: ex}
				check("scan/"+dialect.String()+"/"+ex.String(), plain, cfg)
				check("seek/"+dialect.String()+"/"+ex.String(), indexed, cfg)
				naive := cfg
				naive.Planner = PlannerLeftToRight
				check("naive/"+dialect.String()+"/"+ex.String(), indexed, naive)
			}
		}
	}
}

// TestIndexStatementSemantics pins the engine-level schema statement
// contract: CREATE INDEX is idempotent, DROP INDEX of a missing index
// errors without side effects, and EXPLAIN describes both.
func TestIndexStatementSemantics(t *testing.T) {
	g := graph.New()
	eng := NewEngine(Config{Dialect: DialectRevised})
	for _, s := range []string{`CREATE (:User{id:1})`, `CREATE INDEX ON :User(id)`, `CREATE INDEX ON :User(id)`} {
		if _, err := eng.ExecuteStatement(g, mustParse(t, s), nil); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
	}
	if got := g.Indexes(); len(got) != 1 {
		t.Fatalf("indexes = %v, want exactly one", got)
	}
	if _, err := eng.ExecuteStatement(g, mustParse(t, `DROP INDEX ON :User(nope)`), nil); err == nil {
		t.Fatal("DROP INDEX of a missing index must error")
	}
	if !g.HasIndex("User", "id") {
		t.Fatal("failed DROP INDEX disturbed the existing index")
	}

	out, err := eng.ExplainStatement(g, mustParse(t, `CREATE INDEX ON :User(age)`), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "CreateIndex") || !strings.Contains(out, ":User(age)") {
		t.Fatalf("EXPLAIN CREATE INDEX output: %s", out)
	}
	if g.HasIndex("User", "age") {
		t.Fatal("EXPLAIN must not execute the schema statement")
	}
	out, err = eng.ExplainStatement(g, mustParse(t, `DROP INDEX ON :User(id)`), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "DropIndex") {
		t.Fatalf("EXPLAIN DROP INDEX output: %s", out)
	}
}

// TestMergeUsesIndexSeek: the read phase of every MERGE family runs
// through the matcher, so with an index on the merge key a bulk upsert
// stops scanning — and produces a graph isomorphic to the unindexed
// run, with identical outcome stats.
func TestMergeUsesIndexSeek(t *testing.T) {
	build := func(rows int) *table.Table {
		tbl := table.New("cid")
		for i := 0; i < rows; i++ {
			tbl.AppendRow(value.Int(int64(i % 7)))
		}
		return tbl
	}
	cases := []struct {
		name string
		cfg  Config
		q    string
	}{
		{"legacy", Config{Dialect: DialectCypher9}, `MERGE (:User{id:cid})`},
		{"merge-all", Config{Dialect: DialectRevised}, `MERGE ALL (:User{id:cid})`},
		{"merge-same", Config{Dialect: DialectRevised}, `MERGE SAME (:User{id:cid})`},
	}
	for _, c := range cases {
		stmt := mustParse(t, c.q)
		run := func(withIndex bool) (*graph.Graph, string) {
			g := graph.New()
			if withIndex {
				if _, err := NewEngine(c.cfg).ExecuteStatement(g, mustParse(t, `CREATE INDEX ON :User(id)`), nil); err != nil {
					t.Fatal(err)
				}
			}
			res, err := NewEngine(c.cfg).ExecuteWithTable(g, stmt, nil, build(40))
			if err != nil {
				t.Fatalf("%s: %v", c.name, err)
			}
			return g, renderMultiset(res)
		}
		gScan, outScan := run(false)
		gSeek, outSeek := run(true)
		if outScan != outSeek {
			t.Errorf("%s: MERGE output diverged with index:\n%s\nvs\n%s", c.name, outSeek, outScan)
		}
		if !graph.Isomorphic(gScan, gSeek) {
			t.Errorf("%s: MERGE result graphs not isomorphic with/without index", c.name)
		}
	}
}
