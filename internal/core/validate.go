package core

import (
	"fmt"

	"repro/internal/ast"
)

// Validate enforces the dialect-specific grammar restrictions that the
// parser's superset grammar leaves open. This is where the Section 4.4
// syntax differences between Cypher 9 (Figures 2-5) and the revised
// language (Figure 10) live:
//
// Cypher 9:
//   - a reading clause may not directly follow an update clause; a WITH
//     is required in between ("it turns WITH into a clear demarcation
//     line", Section 4.4);
//   - MERGE takes exactly one pattern, whose relationships may be
//     undirected;
//   - MERGE ALL / MERGE SAME do not exist.
//
// Revised (Figure 10):
//   - reading and update clauses interleave freely;
//   - bare MERGE "will no longer be allowed" (Section 7): only MERGE ALL
//     and MERGE SAME are accepted, with tuples of fully *directed* path
//     patterns (same as CREATE);
//   - ON CREATE / ON MATCH sub-clauses are dropped together with the
//     match-or-create reading of MERGE.
//
// Both dialects:
//   - CREATE patterns must be directed, with exactly one relationship
//     type and no variable-length relationships (Figure 5);
//   - RETURN must be the final clause of its query.
func Validate(stmt *ast.Statement, d Dialect) error {
	if stmt.TxnControl != ast.TxnNone {
		// BEGIN/COMMIT/ROLLBACK are valid in both dialects; whether a
		// transaction is actually open is session state, checked by the
		// session at execution time.
		return nil
	}
	if stmt.Index != nil {
		// CREATE/DROP INDEX are valid in both dialects: indexes change
		// plans, never results, so neither grammar restricts them.
		return nil
	}
	for _, q := range stmt.Queries {
		if err := validateQuery(q.Clauses, d); err != nil {
			return err
		}
	}
	return nil
}

func validateQuery(clauses []ast.Clause, d Dialect) error {
	if len(clauses) == 0 {
		return fmt.Errorf("empty query")
	}
	for i, c := range clauses {
		if _, isRet := c.(*ast.ReturnClause); isRet && i != len(clauses)-1 {
			return fmt.Errorf("RETURN must be the final clause")
		}
	}
	if d == DialectCypher9 {
		if err := validateCypher9Sequence(clauses); err != nil {
			return err
		}
	}
	for _, c := range clauses {
		if err := validateClause(c, d); err != nil {
			return err
		}
	}
	return nil
}

// validateCypher9Sequence enforces the Figure 2 shape: reading clauses
// may not follow update clauses without an intervening WITH.
func validateCypher9Sequence(clauses []ast.Clause) error {
	sawUpdate := false
	for _, c := range clauses {
		switch c.(type) {
		case *ast.WithClause:
			sawUpdate = false
		case *ast.ReturnClause:
			// RETURN terminates the query and is allowed after updates.
		default:
			if c.Reading() && sawUpdate {
				return fmt.Errorf("Cypher 9 grammar: reading clause %T cannot follow update clauses without WITH (Section 4.4)", c)
			}
			if c.Updating() {
				sawUpdate = true
			}
		}
	}
	return nil
}

func validateClause(c ast.Clause, d Dialect) error {
	switch cl := c.(type) {
	case *ast.CreateClause:
		return validateUpdatePattern(cl.Pattern, "CREATE")
	case *ast.MergeClause:
		return validateMerge(cl, d)
	case *ast.ForeachClause:
		for _, body := range cl.Body {
			if err := validateClause(body, d); err != nil {
				return err
			}
		}
		return nil
	case *ast.MatchClause:
		return nil
	default:
		return nil
	}
}

func validateMerge(cl *ast.MergeClause, d Dialect) error {
	switch d {
	case DialectCypher9:
		if cl.Form != ast.MergeLegacy {
			return fmt.Errorf("%s is not part of Cypher 9 (Figure 10 syntax)", cl.Form)
		}
		if len(cl.Pattern) != 1 {
			return fmt.Errorf("Cypher 9 MERGE allows a single path pattern (Figure 3), got %d", len(cl.Pattern))
		}
		// Undirected relationships are allowed (Figure 5's <rel. upd.
		// pat.>), but each must still carry exactly one type and no
		// variable length.
		return validateRelConstraints(cl.Pattern, "MERGE", false)
	default: // DialectRevised
		if cl.Form == ast.MergeLegacy {
			return fmt.Errorf("MERGE without ALL or SAME is no longer allowed (Section 7); use MERGE ALL or MERGE SAME")
		}
		if len(cl.OnCreate) > 0 || len(cl.OnMatch) > 0 {
			return fmt.Errorf("ON CREATE / ON MATCH are not part of %s", cl.Form)
		}
		return validateUpdatePattern(cl.Pattern, cl.Form.String())
	}
}

// validateUpdatePattern enforces the <dir. upd. pat.> restrictions of
// Figures 5 and 10: directed relationships with exactly one type, no
// variable length.
func validateUpdatePattern(parts []*ast.PatternPart, clause string) error {
	return validateRelConstraints(parts, clause, true)
}

func validateRelConstraints(parts []*ast.PatternPart, clause string, requireDirected bool) error {
	for _, part := range parts {
		for _, r := range part.Rels {
			if requireDirected && r.Direction == ast.DirBoth {
				return fmt.Errorf("%s requires directed relationships", clause)
			}
			if len(r.Types) != 1 {
				return fmt.Errorf("%s requires exactly one relationship type, got %d", clause, len(r.Types))
			}
			if r.VarLength {
				return fmt.Errorf("%s does not allow variable-length relationships", clause)
			}
		}
	}
	return nil
}
