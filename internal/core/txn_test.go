package core

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/graph"
	"repro/internal/parser"
	"repro/internal/value"
)

func newTestSession(t *testing.T, d Dialect) (*Session, *graph.Store) {
	t.Helper()
	store := graph.NewStore(graph.New())
	return NewSession(NewEngine(Config{Dialect: d}), store), store
}

func sessExec(t *testing.T, s *Session, q string) *Result {
	t.Helper()
	res, err := sessTry(s, q)
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	return res
}

func sessTry(s *Session, q string) (*Result, error) {
	stmt, err := parser.Parse(q)
	if err != nil {
		return nil, err
	}
	return s.Execute(stmt, nil)
}

func countNodes(t *testing.T, s *Session, label string) int64 {
	t.Helper()
	res := sessExec(t, s, `MATCH (n:`+label+`) RETURN count(*) AS c`)
	n, ok := value.AsInt(res.Table.Get(0, "c"))
	if !ok {
		t.Fatalf("count not an int: %v", res.Table.Get(0, "c"))
	}
	return n
}

// TestSessionAutoCommitMatchesEngine: the session's implicit-transaction
// path must be observably identical to the engine's single-statement
// execution, including rollback of failing statements.
func TestSessionAutoCommitMatchesEngine(t *testing.T) {
	for _, d := range []Dialect{DialectRevised, DialectCypher9} {
		s, store := newTestSession(t, d)
		g := graph.New()
		eng := NewEngine(Config{Dialect: d})

		stmts := []string{
			`CREATE (:User{id:1, name:'Ada'})-[:KNOWS]->(:User{id:2, name:'Bob'})`,
			`MATCH (a:User) SET a.seen = true`,
			`MATCH (a:User{id:1})-[:KNOWS]->(b) RETURN a.name AS a, b.name AS b`,
		}
		for _, q := range stmts {
			stmt, err := parser.Parse(q)
			if err != nil {
				t.Fatal(err)
			}
			sres, serr := s.Execute(stmt, nil)
			eres, eerr := eng.ExecuteStatement(g, stmt, nil)
			if (serr == nil) != (eerr == nil) {
				t.Fatalf("%s dialect %s: session err %v, engine err %v", q, d, serr, eerr)
			}
			if serr == nil && sres.Table.String() != eres.Table.String() {
				t.Errorf("%s dialect %s: session and engine tables differ", q, d)
			}
		}
		// A failing statement must leave the store unchanged.
		if _, err := sessTry(s, `MATCH (a:User) DELETE a`); err == nil {
			t.Fatal("DELETE of attached node should fail")
		}
		snap := store.Acquire()
		if !graph.Isomorphic(snap.Graph(), g) {
			t.Errorf("dialect %s: session store diverged from engine graph", d)
		}
		snap.Release()
	}
}

func TestSessionExplicitCommit(t *testing.T) {
	s, store := newTestSession(t, DialectRevised)
	other := NewSession(s.Engine(), store)
	sessExec(t, s, `CREATE (:P{id:0})`)

	sessExec(t, s, `BEGIN`)
	if !s.InTransaction() {
		t.Fatal("BEGIN did not open a transaction")
	}
	sessExec(t, s, `CREATE (:P{id:1})`)
	sessExec(t, s, `CREATE (:P{id:2})-[:R]->(:Q{id:3})`)

	// The transaction reads its own uncommitted writes…
	if got := countNodes(t, s, "P"); got != 3 {
		t.Errorf("txn sees %d :P nodes, want 3", got)
	}
	// …while another session still reads the last committed epoch.
	if got := countNodes(t, other, "P"); got != 1 {
		t.Errorf("outside session sees %d :P nodes mid-txn, want 1", got)
	}

	res := sessExec(t, s, `COMMIT`)
	if s.InTransaction() {
		t.Fatal("COMMIT left the transaction open")
	}
	if res.Stats.NodesCreated != 3 || res.Stats.RelsCreated != 1 {
		t.Errorf("COMMIT stats = %+v, want 3 nodes / 1 rel", res.Stats)
	}
	if got := countNodes(t, other, "P"); got != 3 {
		t.Errorf("outside session sees %d :P nodes post-commit, want 3", got)
	}
}

func TestSessionExplicitRollback(t *testing.T) {
	s, _ := newTestSession(t, DialectRevised)
	sessExec(t, s, `CREATE (:P{id:0})`)
	sessExec(t, s, `BEGIN`)
	sessExec(t, s, `CREATE (:P{id:1})`)
	sessExec(t, s, `MATCH (p:P{id:0}) SET p.touched = true`)
	sessExec(t, s, `ROLLBACK`)
	if s.InTransaction() {
		t.Fatal("ROLLBACK left the transaction open")
	}
	if got := countNodes(t, s, "P"); got != 1 {
		t.Errorf("%d :P nodes after rollback, want 1", got)
	}
	res := sessExec(t, s, `MATCH (p:P{id:0}) RETURN p.touched AS x`)
	if !value.IsNull(res.Table.Get(0, "x")) {
		t.Error("rolled-back SET is visible")
	}
}

// TestSessionStatementErrorKeepsTxnOpen: a failing statement inside an
// explicit transaction undoes only itself (journal mark), leaving the
// transaction's earlier statements intact and the transaction open.
func TestSessionStatementErrorKeepsTxnOpen(t *testing.T) {
	s, _ := newTestSession(t, DialectRevised)
	sessExec(t, s, `BEGIN`)
	sessExec(t, s, `CREATE (:Keep{id:1})`)
	// Strict DELETE of a node with an attached relationship fails in the
	// revised dialect; its partial effects must be rolled back.
	sessExec(t, s, `CREATE (:Doomed)-[:R]->(:Other)`)
	if _, err := sessTry(s, `MATCH (d:Doomed) DELETE d`); err == nil {
		t.Fatal("strict DELETE should fail")
	}
	if !s.InTransaction() {
		t.Fatal("failed statement closed the transaction")
	}
	if got := countNodes(t, s, "Doomed"); got != 1 {
		t.Errorf("failed statement's target gone: %d :Doomed, want 1", got)
	}
	if got := countNodes(t, s, "Keep"); got != 1 {
		t.Errorf("earlier txn statement undone: %d :Keep, want 1", got)
	}
	sessExec(t, s, `COMMIT`)
	if got := countNodes(t, s, "Keep"); got != 1 {
		t.Errorf("commit after failed statement lost work: %d :Keep, want 1", got)
	}
}

func TestSessionTxnControlErrors(t *testing.T) {
	s, _ := newTestSession(t, DialectRevised)
	if _, err := sessTry(s, `COMMIT`); err == nil || !strings.Contains(err.Error(), "no open transaction") {
		t.Errorf("COMMIT without txn: %v", err)
	}
	if _, err := sessTry(s, `ROLLBACK`); err == nil || !strings.Contains(err.Error(), "no open transaction") {
		t.Errorf("ROLLBACK without txn: %v", err)
	}
	sessExec(t, s, `BEGIN`)
	if _, err := sessTry(s, `BEGIN`); err == nil || !strings.Contains(err.Error(), "already open") {
		t.Errorf("nested BEGIN: %v", err)
	}
	sessExec(t, s, `ROLLBACK`)

	// Engine-level execution (no session) rejects transaction control.
	eng := NewEngine(Config{Dialect: DialectRevised})
	stmt, err := parser.Parse(`BEGIN`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.ExecuteStatement(graph.New(), stmt, nil); err == nil {
		t.Error("engine should reject BEGIN without a session")
	}
}

func TestSessionCloseRollsBack(t *testing.T) {
	store := graph.NewStore(graph.New())
	eng := NewEngine(Config{Dialect: DialectRevised})
	s := NewSession(eng, store)
	sessExec(t, s, `BEGIN`)
	sessExec(t, s, `CREATE (:Gone)`)
	s.Close()
	// The writer baton must have been released: a new transaction opens.
	s2 := NewSession(eng, store)
	sessExec(t, s2, `BEGIN`)
	if got := countNodes(t, s2, "Gone"); got != 0 {
		t.Errorf("Close leaked %d uncommitted nodes", got)
	}
	sessExec(t, s2, `ROLLBACK`)
}

// TestSessionTxnKeywordsStayVariables: begin/commit/rollback remain
// usable as variable names (soft keywords).
func TestSessionTxnKeywordsStayVariables(t *testing.T) {
	s, _ := newTestSession(t, DialectRevised)
	res := sessExec(t, s, `WITH 1 AS commit, 2 AS rollback RETURN commit + rollback AS begin`)
	if n, _ := value.AsInt(res.Table.Get(0, "begin")); n != 3 {
		t.Errorf("soft-keyword variables broke: %v", res.Table.Get(0, "begin"))
	}
}

// TestSessionExplainTxnBoundaries: EXPLAIN states whether the plan
// streams from a pinned snapshot or runs under the writer lock, and
// tags update barriers.
func TestSessionExplainTxnBoundaries(t *testing.T) {
	s, _ := newTestSession(t, DialectRevised)
	explain := func(q string) string {
		stmt, err := parser.Parse(q)
		if err != nil {
			t.Fatal(err)
		}
		out, err := s.Explain(stmt, nil)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	if out := explain(`MATCH (n) RETURN n`); !strings.Contains(out, "pinned snapshot") {
		t.Errorf("read-only explain missing snapshot note:\n%s", out)
	}
	if out := explain(`CREATE (:X)`); !strings.Contains(out, "writer lock") ||
		!strings.Contains(out, "Update[barrier:writer-lock](CREATE)") {
		t.Errorf("write explain missing writer-lock boundary:\n%s", out)
	}
	if out := explain(`BEGIN`); !strings.Contains(out, "transaction control") {
		t.Errorf("txn-control explain: %s", out)
	}
	sessExec(t, s, `BEGIN`)
	if out := explain(`MATCH (n) RETURN n`); !strings.Contains(out, "explicit (open transaction)") {
		t.Errorf("in-txn explain missing context:\n%s", out)
	}
	sessExec(t, s, `ROLLBACK`)
}

// TestStatementStringTxnControl checks the canonical rendering.
func TestStatementStringTxnControl(t *testing.T) {
	for _, q := range []string{"BEGIN", "COMMIT", "ROLLBACK"} {
		stmt, err := parser.Parse(strings.ToLower(q) + " ;")
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if stmt.TxnControl == ast.TxnNone || stmt.String() != q {
			t.Errorf("parse(%q).String() = %q", q, stmt.String())
		}
		if stmt.Updating() {
			t.Errorf("%s must not count as updating", q)
		}
	}
}
