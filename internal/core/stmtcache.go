package core

import (
	"container/list"
	"sync"

	"repro/internal/ast"
	"repro/internal/parser"
)

// stmtCache caches parsed statements by query text. It exists for two
// reasons: it skips re-parsing hot queries, and — more importantly —
// it makes the shared plan cache work across sessions: all sessions of
// one engine receive the SAME parsed AST for the same query text, so
// plan-cache keys based on AST identity (match.PlanCache) hit across
// sessions and connections.
//
// Sharing one AST is sound because execution never mutates a parsed
// statement: the engine, the plan builder and the matcher treat it as
// read-only (pushdown classification and plans are per-execution side
// tables keyed BY the AST, never stored IN it).
//
// The cache key is the query text alone; the engine's dialect is fixed
// per engine, so (text, dialect) is implicit. Parse errors are not
// cached (failing statements are not a hot path worth memory).
type stmtCache struct {
	mu      sync.Mutex
	entries map[string]*list.Element
	order   *list.List // front = most recently used
	hits    int64
	misses  int64
}

// stmtCacheMaxEntries bounds the cache; beyond it the least recently
// used statement is evicted (its plan-cache entries age out of the
// bounded plan cache on their own).
const stmtCacheMaxEntries = 1024

type stmtCacheEntry struct {
	text string
	stmt *ast.Statement
}

func newStmtCache() *stmtCache {
	return &stmtCache{entries: make(map[string]*list.Element), order: list.New()}
}

// parse returns the cached parse of query, parsing and caching on miss.
func (c *stmtCache) parse(query string) (*ast.Statement, error) {
	c.mu.Lock()
	if el, ok := c.entries[query]; ok {
		c.hits++
		c.order.MoveToFront(el)
		stmt := el.Value.(*stmtCacheEntry).stmt
		c.mu.Unlock()
		return stmt, nil
	}
	c.misses++
	c.mu.Unlock()

	// Parse outside the lock; concurrent first parsers of the same text
	// race benignly (last one in wins the cache slot).
	stmt, err := parser.Parse(query)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[query]; ok {
		// Another goroutine cached it meanwhile; return THEIR statement
		// so every caller shares one AST identity.
		c.order.MoveToFront(el)
		return el.Value.(*stmtCacheEntry).stmt, nil
	}
	if c.order.Len() >= stmtCacheMaxEntries {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*stmtCacheEntry).text)
	}
	c.entries[query] = c.order.PushFront(&stmtCacheEntry{text: query, stmt: stmt})
	return stmt, nil
}

// stats returns the cache's hit/miss counters.
func (c *stmtCache) stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
