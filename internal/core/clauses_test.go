package core

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fixtures"
	"repro/internal/graph"
	"repro/internal/match"
	"repro/internal/parser"
	"repro/internal/table"
	"repro/internal/value"
)

func TestLoadCSVWithHeaders(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "orders.csv")
	data := "cid,pid\n98,125\n98,\n99,125\n"
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	g := graph.New()
	res := run(t, DialectRevised, g, `
		LOAD CSV WITH HEADERS FROM 'file://`+path+`' AS row
		RETURN row.cid AS cid, row.pid AS pid`)
	if res.Table.Len() != 3 {
		t.Fatalf("rows = %d", res.Table.Len())
	}
	if res.Table.Get(0, "cid") != value.String("98") {
		t.Errorf("cid = %v", res.Table.Get(0, "cid"))
	}
	if !value.IsNull(res.Table.Get(1, "pid")) {
		t.Errorf("empty field should be null, got %v", res.Table.Get(1, "pid"))
	}
}

func TestLoadCSVNoHeaders(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "plain.csv")
	if err := os.WriteFile(path, []byte("a;b\nc;d\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	g := graph.New()
	res := run(t, DialectRevised, g, `
		LOAD CSV FROM '`+path+`' AS line FIELDTERMINATOR ';'
		RETURN line[0] AS first, line[1] AS second`)
	if res.Table.Len() != 2 || res.Table.Get(1, "second") != value.String("d") {
		t.Errorf("result: %v", res.Table)
	}
}

func TestLoadCSVImportPipeline(t *testing.T) {
	// The full Section 5 scenario: CSV -> MERGE SAME population.
	dir := t.TempDir()
	path := filepath.Join(dir, "orders.csv")
	data := "cid,pid\n98,125\n98,125\n99,125\n"
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	g := graph.New()
	run(t, DialectRevised, g, `
		LOAD CSV WITH HEADERS FROM '`+path+`' AS row
		MERGE SAME (:User{id:toInteger(row.cid)})-[:ORDERED]->(:Product{id:toInteger(row.pid)})`)
	if g.NumNodes() != 3 || g.NumRels() != 2 {
		t.Errorf("imported graph: %s, want 3 nodes / 2 rels", graph.ComputeStats(g))
	}
}

func TestLoadCSVErrors(t *testing.T) {
	g := graph.New()
	if _, err := runErr(DialectRevised, g, `LOAD CSV FROM '/does/not/exist.csv' AS r RETURN r`); err == nil {
		t.Error("missing file should error")
	}
	if _, err := runErr(DialectRevised, g, `LOAD CSV FROM 42 AS r RETURN r`); err == nil {
		t.Error("non-string URL should error")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "x.csv")
	os.WriteFile(path, []byte("a,b\n"), 0o644)
	if _, err := runErr(DialectRevised, g, `LOAD CSV FROM '`+path+`' AS r FIELDTERMINATOR 'ab' RETURN r`); err == nil {
		t.Error("multi-char field terminator should error")
	}
}

func TestSetPlusEqualsAndReplace(t *testing.T) {
	for _, d := range []Dialect{DialectCypher9, DialectRevised} {
		g := graph.New()
		run(t, d, g, `CREATE (:N{a:1, b:2})`)
		// += merges; null values remove.
		run(t, d, g, `MATCH (n:N) SET n += {b: 20, c: 3, a: null}`)
		id := g.NodeIDsByLabel("N")[0]
		n := g.Node(id)
		if _, has := n.Props["a"]; has {
			t.Errorf("[%v] a should be removed by += null", d)
		}
		if n.Props["b"] != value.Int(20) || n.Props["c"] != value.Int(3) {
			t.Errorf("[%v] props = %v", d, n.Props)
		}
		// = replaces the whole map.
		run(t, d, g, `MATCH (n:N) SET n = {z: 9}`)
		n = g.Node(id)
		if len(n.Props) != 1 || n.Props["z"] != value.Int(9) {
			t.Errorf("[%v] after replace: %v", d, n.Props)
		}
		// = from another node copies its properties.
		run(t, d, g, `CREATE (:M{q:7})`)
		run(t, d, g, `MATCH (n:N), (m:M) SET n = m`)
		n = g.Node(id)
		if len(n.Props) != 1 || n.Props["q"] != value.Int(7) {
			t.Errorf("[%v] after copy from node: %v", d, n.Props)
		}
	}
}

func TestSetOnNullIsNoop(t *testing.T) {
	for _, d := range []Dialect{DialectCypher9, DialectRevised} {
		g := graph.New()
		g.CreateNode([]string{"N"}, nil)
		// OPTIONAL MATCH misses; SET on the null binding must be a no-op.
		run(t, d, g, `
			MATCH (n:N)
			OPTIONAL MATCH (m:Missing)
			SET m.x = 1, m:Label`)
		if g.NumNodes() != 1 {
			t.Errorf("[%v] graph changed", d)
		}
	}
}

func TestSetTypeErrors(t *testing.T) {
	for _, d := range []Dialect{DialectCypher9, DialectRevised} {
		g := graph.New()
		g.CreateNode([]string{"N"}, nil)
		if _, err := runErr(d, g, `MATCH (n:N) WITH 1 AS x, n SET x.k = 1`); err == nil {
			t.Errorf("[%v] SET on integer should error", d)
		}
		if _, err := runErr(d, g, `MATCH (n:N) WITH 1 AS x, n SET x:Label`); err == nil {
			t.Errorf("[%v] SET label on integer should error", d)
		}
		if _, err := runErr(d, g, `MATCH (n:N) SET n = 42`); err == nil {
			t.Errorf("[%v] SET n = non-map should error", d)
		}
	}
}

func TestRemoveClauseBothDialects(t *testing.T) {
	for _, d := range []Dialect{DialectCypher9, DialectRevised} {
		g := graph.New()
		g.CreateNode([]string{"A", "B"}, map[string]value.Value{"x": value.Int(1), "y": value.Int(2)})
		res := run(t, d, g, `MATCH (n:A) REMOVE n.x, n:B`)
		id := g.NodeIDsByLabel("A")[0]
		n := g.Node(id)
		if _, has := n.Props["x"]; has {
			t.Errorf("[%v] x not removed", d)
		}
		if n.HasLabel("B") {
			t.Errorf("[%v] label B not removed", d)
		}
		if n.Props["y"] != value.Int(2) {
			t.Errorf("[%v] y damaged", d)
		}
		_ = res
		// REMOVE on null: no-op.
		run(t, d, g, `OPTIONAL MATCH (m:Missing) REMOVE m.x, m:L`)
	}
}

func TestDeletePathValue(t *testing.T) {
	for _, d := range []Dialect{DialectCypher9, DialectRevised} {
		g := graph.New()
		a := g.CreateNode([]string{"A"}, nil)
		b := g.CreateNode([]string{"B"}, nil)
		if _, err := g.CreateRel(a.ID, b.ID, "T", nil); err != nil {
			t.Fatal(err)
		}
		run(t, d, g, `MATCH pth = (:A)-[:T]->(:B) DELETE pth`)
		if g.NumNodes() != 0 || g.NumRels() != 0 {
			t.Errorf("[%v] path delete left %s", d, graph.ComputeStats(g))
		}
	}
}

func TestDeleteTypeError(t *testing.T) {
	for _, d := range []Dialect{DialectCypher9, DialectRevised} {
		g := graph.New()
		if _, err := runErr(d, g, `UNWIND [1] AS x DELETE x`); err == nil {
			t.Errorf("[%v] DELETE of integer should error", d)
		}
	}
}

func TestForeachNestedAndUnwound(t *testing.T) {
	for _, d := range []Dialect{DialectCypher9, DialectRevised} {
		g := graph.New()
		run(t, d, g, `FOREACH (x IN [1,2] | FOREACH (y IN [10,20] | CREATE (:P{v: x*y})))`)
		if len(g.NodeIDsByLabel("P")) != 4 {
			t.Errorf("[%v] nested foreach created %d", d, len(g.NodeIDsByLabel("P")))
		}
		// FOREACH over null: no-op; over non-list: error.
		run(t, d, g, `OPTIONAL MATCH (m:Missing) FOREACH (x IN m.list | CREATE (:Q))`)
		if len(g.NodeIDsByLabel("Q")) != 0 {
			t.Errorf("[%v] foreach over null created nodes", d)
		}
		if _, err := runErr(d, g, `FOREACH (x IN 42 | CREATE (:Q))`); err == nil {
			t.Errorf("[%v] foreach over int should error", d)
		}
	}
}

func TestForeachSetOverMatchedNodes(t *testing.T) {
	// The classic FOREACH idiom: mark all nodes of a matched path.
	for _, d := range []Dialect{DialectCypher9, DialectRevised} {
		g := graph.New()
		a := g.CreateNode([]string{"A"}, nil)
		b := g.CreateNode([]string{"B"}, nil)
		if _, err := g.CreateRel(a.ID, b.ID, "T", nil); err != nil {
			t.Fatal(err)
		}
		run(t, d, g, `
			MATCH pth = (:A)-[:T]->(:B)
			FOREACH (n IN nodes(pth) | SET n.marked = true)`)
		for _, id := range g.NodeIDs() {
			if g.Node(id).Props["marked"] != value.Bool(true) {
				t.Errorf("[%v] node %d not marked", d, id)
			}
		}
	}
}

func TestCreateErrorCases(t *testing.T) {
	for _, d := range []Dialect{DialectCypher9, DialectRevised} {
		g := graph.New()
		g.CreateNode([]string{"A"}, nil)
		// Null endpoint.
		if _, err := runErr(d, g, `OPTIONAL MATCH (m:Missing) CREATE (m)-[:T]->(:B)`); err == nil {
			t.Errorf("[%v] CREATE with null endpoint should error", d)
		}
		// Bound var with labels in CREATE.
		if _, err := runErr(d, g, `MATCH (a:A) CREATE (a:B)`); err == nil {
			t.Errorf("[%v] CREATE redeclaring labels should error", d)
		}
		// Rel var reuse.
		if _, err := runErr(d, g, `MATCH (a:A) CREATE (a)-[r:T]->(b), (b)-[r:T]->(a)`); err == nil {
			t.Errorf("[%v] duplicate rel var should error", d)
		}
	}
}

func TestCreateNamedPath(t *testing.T) {
	g := graph.New()
	res := run(t, DialectRevised, g, `CREATE pth = (:A)-[:T]->(:B) RETURN length(pth) AS n`)
	if res.Table.Get(0, "n") != value.Int(1) {
		t.Errorf("path length = %v", res.Table.Get(0, "n"))
	}
}

func TestMergeWithMatchModeHomomorphism(t *testing.T) {
	// Under homomorphic matching, MERGE ALL finds matches that
	// isomorphic matching cannot, creating less.
	g := graph.New()
	a := g.CreateNode([]string{"N"}, value.Map{"k": value.Int(1)})
	if _, err := g.CreateRel(a.ID, a.ID, "T", nil); err != nil {
		t.Fatal(err)
	}
	query := `MERGE ALL (x:N{k:1})-[:T]->(y:N{k:1})`
	stmt, _ := parser.Parse(query)

	gIso := g.Clone()
	if _, err := NewEngine(Config{Dialect: DialectRevised}).ExecuteStatement(gIso, stmt, nil); err != nil {
		t.Fatal(err)
	}
	gHom := g.Clone()
	if _, err := NewEngine(Config{Dialect: DialectRevised, MatchMode: match.Homomorphism}).ExecuteStatement(gHom, stmt, nil); err != nil {
		t.Fatal(err)
	}
	// Isomorphism: x=y=a via self-loop is allowed even under isomorphism
	// (single rel slot); both should find the match and create nothing.
	if gIso.NumRels() != 1 || gHom.NumRels() != 1 {
		t.Errorf("iso %d rels, hom %d rels", gIso.NumRels(), gHom.NumRels())
	}
}

func TestOptionalMatchAfterUpdate(t *testing.T) {
	// Revised dialect allows reading after updates without WITH.
	g := graph.New()
	res := run(t, DialectRevised, g, `
		CREATE (:A{id:1})
		MATCH (a:A)
		RETURN a.id AS id`)
	if res.Table.Len() != 1 || res.Table.Get(0, "id") != value.Int(1) {
		t.Errorf("result: %v", res.Table)
	}
	// Cypher 9 dialect requires WITH.
	if _, err := runErr(DialectCypher9, g, `CREATE (:B) MATCH (b:B) RETURN b`); err == nil {
		t.Error("Cypher 9 must reject reading after update without WITH")
	}
}

func TestWithDistinctAndStar(t *testing.T) {
	g, _ := fixtures.Figure1()
	res := run(t, DialectRevised, g, `
		MATCH (u:User)-[:ORDERED]->(p:Product)
		WITH DISTINCT u
		RETURN count(*) AS c`)
	if res.Table.Get(0, "c") != value.Int(2) {
		t.Errorf("distinct users = %v", res.Table.Get(0, "c"))
	}
	res = run(t, DialectRevised, g, `
		MATCH (u:User) WITH *, u.name AS name RETURN name ORDER BY name LIMIT 1`)
	if res.Table.Get(0, "name") != value.String("Bob") {
		t.Errorf("WITH * result: %v", res.Table.Get(0, "name"))
	}
}

func TestSkipLimitValidation(t *testing.T) {
	g := graph.New()
	if _, err := runErr(DialectRevised, g, `RETURN 1 AS x SKIP -1`); err == nil {
		t.Error("negative SKIP should error")
	}
	if _, err := runErr(DialectRevised, g, `RETURN 1 AS x LIMIT 'a'`); err == nil {
		t.Error("non-integer LIMIT should error")
	}
}

func TestOrderByPreProjectionVariables(t *testing.T) {
	g, _ := fixtures.Figure1()
	// ORDER BY references u (pre-projection) while returning only name.
	res := run(t, DialectRevised, g, `
		MATCH (u:User)
		RETURN u.name AS name ORDER BY u.id DESC`)
	if res.Table.Get(0, "name") != value.String("Jane") {
		t.Errorf("order by pre-projection: %v", res.Table.Get(0, "name"))
	}
}

func TestAggregatesWithDistinctArg(t *testing.T) {
	g := graph.New()
	res := run(t, DialectRevised, g, `
		UNWIND [1,1,2,2,3] AS x
		RETURN count(DISTINCT x) AS c, sum(DISTINCT x) AS s`)
	if res.Table.Get(0, "c") != value.Int(3) || res.Table.Get(0, "s") != value.Int(6) {
		t.Errorf("distinct aggregates: %v", res.Table)
	}
}

func TestLegacyScanReverseOutputOrder(t *testing.T) {
	g := graph.New()
	stmt, _ := parser.Parse(`CREATE (:N{v:x})`)
	tbl := tableOf(t, "x", value.Int(1), value.Int(2), value.Int(3))
	cfg := Config{Dialect: DialectCypher9, ScanOrder: ScanReverse}
	if _, err := NewEngine(cfg).ExecuteWithTable(g, stmt, nil, tbl); err != nil {
		t.Fatal(err)
	}
	// Nodes created in reverse table order: first created node holds 3.
	first := g.Node(g.NodeIDs()[0])
	if first.Props["v"] != value.Int(3) {
		t.Errorf("reverse scan first create = %v", first.Props["v"])
	}
}

func tableOf(t *testing.T, col string, vals ...value.Value) *table.Table {
	t.Helper()
	tt := table.New(col)
	for _, v := range vals {
		tt.AppendRow(v)
	}
	return tt
}
