package core

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/expr"
	"repro/internal/graph"
	"repro/internal/table"
	"repro/internal/value"
)

// This file implements the legacy (Cypher 9) update semantics that
// Section 4 of the paper critiques. The defining property is that every
// clause streams over the driving table record by record, applying its
// effects to the live graph immediately, so that later records — and
// later items within a single clause — observe the writes of earlier
// ones.

// execSetLegacy applies SET items immediately, one record at a time and
// one item at a time. This is exactly the behaviour of Example 1 (the
// "swap" that degenerates into two sequential assignments) and Example 2
// (order-dependent final values when matches overlap).
func (x *executor) execSetLegacy(items []ast.SetItem, t *table.Table) (*table.Table, error) {
	for _, i := range x.rowOrder(t) {
		env := expr.Env(t.Row(i))
		for _, item := range items {
			if err := x.applySetItemLegacy(item, env); err != nil {
				return nil, err
			}
		}
	}
	return t, nil
}

func (x *executor) applySetItemLegacy(item ast.SetItem, env expr.Env) error {
	switch it := item.(type) {
	case *ast.SetProp:
		target, err := x.ev.Eval(it.Target, env)
		if err != nil {
			return err
		}
		v, err := x.ev.Eval(it.Value, env)
		if err != nil {
			return err
		}
		return x.legacySetProp(target, it.Key, v)
	case *ast.SetAllProps:
		target, ok := env[it.Var]
		if !ok {
			return fmt.Errorf("variable `%s` not defined", it.Var)
		}
		v, err := x.ev.Eval(it.Value, env)
		if err != nil {
			return err
		}
		return x.legacySetAllProps(target, v, it.Add)
	case *ast.SetLabels:
		target, ok := env[it.Var]
		if !ok {
			return fmt.Errorf("variable `%s` not defined", it.Var)
		}
		if value.IsNull(target) {
			return nil
		}
		n, ok := target.(value.Node)
		if !ok {
			return fmt.Errorf("SET label target must be a node, got %s", target.Kind())
		}
		if x.graph.Node(graph.NodeID(n.ID)) == nil {
			return nil // deleted node: legacy silently ignores (Section 4.2)
		}
		for _, l := range it.Labels {
			if err := x.graph.AddLabel(graph.NodeID(n.ID), l); err != nil {
				return err
			}
			x.stats.LabelsAdded++
		}
		return nil
	default:
		return fmt.Errorf("unsupported SET item %T", item)
	}
}

// legacySetProp writes a property, silently ignoring null targets and
// deleted entities — the Section 4.2 behaviour where a query may SET
// properties of deleted nodes "without an error".
func (x *executor) legacySetProp(target value.Value, key string, v value.Value) error {
	switch e := target.(type) {
	case value.Null:
		return nil
	case value.Node:
		if x.graph.Node(graph.NodeID(e.ID)) == nil {
			return nil
		}
		x.stats.PropsSet++
		return x.graph.SetNodeProp(graph.NodeID(e.ID), key, v)
	case value.Rel:
		if x.graph.Rel(graph.RelID(e.ID)) == nil {
			return nil
		}
		x.stats.PropsSet++
		return x.graph.SetRelProp(graph.RelID(e.ID), key, v)
	default:
		return fmt.Errorf("SET target must be a node or relationship, got %s", target.Kind())
	}
}

func (x *executor) legacySetAllProps(target, v value.Value, add bool) error {
	if value.IsNull(target) {
		return nil
	}
	m, ok := value.AsMap(v)
	if !ok {
		if nv, isNode := v.(value.Node); isNode {
			n := x.graph.Node(graph.NodeID(nv.ID))
			if n == nil {
				m = value.Map{}
			} else {
				m = n.PropMap()
			}
		} else if rv, isRel := v.(value.Rel); isRel {
			r := x.graph.Rel(graph.RelID(rv.ID))
			if r == nil {
				m = value.Map{}
			} else {
				m = r.PropMap()
			}
		} else {
			return fmt.Errorf("SET %s = ... expects a map, node or relationship, got %s", target.Kind(), v.Kind())
		}
	}
	existing, err := x.entityPropKeys(target)
	if err != nil {
		return err
	}
	if existing == nil {
		return nil // deleted entity
	}
	if !add {
		for _, k := range existing {
			if _, keep := m[k]; !keep {
				if err := x.legacySetProp(target, k, value.NullValue); err != nil {
					return err
				}
			}
		}
	}
	for _, k := range value.Map(m).Keys() {
		if err := x.legacySetProp(target, k, m[k]); err != nil {
			return err
		}
	}
	return nil
}

// entityPropKeys lists current property keys; nil result means the
// entity no longer exists.
func (x *executor) entityPropKeys(target value.Value) ([]string, error) {
	switch e := target.(type) {
	case value.Node:
		n := x.graph.Node(graph.NodeID(e.ID))
		if n == nil {
			return nil, nil
		}
		return n.PropMap().Keys(), nil
	case value.Rel:
		r := x.graph.Rel(graph.RelID(e.ID))
		if r == nil {
			return nil, nil
		}
		return r.PropMap().Keys(), nil
	default:
		return nil, fmt.Errorf("SET target must be a node or relationship, got %s", target.Kind())
	}
}

// execRemoveLegacy removes labels and properties immediately per record.
func (x *executor) execRemoveLegacy(cl *ast.RemoveClause, t *table.Table) (*table.Table, error) {
	for _, i := range x.rowOrder(t) {
		env := expr.Env(t.Row(i))
		for _, item := range cl.Items {
			switch it := item.(type) {
			case *ast.RemoveProp:
				target, err := x.ev.Eval(it.Target, env)
				if err != nil {
					return nil, err
				}
				if err := x.legacySetProp(target, it.Key, value.NullValue); err != nil {
					return nil, err
				}
			case *ast.RemoveLabels:
				target, ok := env[it.Var]
				if !ok {
					return nil, fmt.Errorf("variable `%s` not defined", it.Var)
				}
				if value.IsNull(target) {
					continue
				}
				n, ok := target.(value.Node)
				if !ok {
					return nil, fmt.Errorf("REMOVE label target must be a node, got %s", target.Kind())
				}
				if x.graph.Node(graph.NodeID(n.ID)) == nil {
					continue
				}
				for _, l := range it.Labels {
					if err := x.graph.RemoveLabel(graph.NodeID(n.ID), l); err != nil {
						return nil, err
					}
					x.stats.LabelsRemoved++
				}
			}
		}
	}
	return t, nil
}

// execDeleteLegacy deletes entities immediately per record. Deleting a
// node with attached relationships leaves them dangling mid-statement
// (Section 4.2's "illegal state"); the statement-end Validate in
// ExecuteWithTable plays the role of Neo4j's commit-time check. Deleted
// entities remain referenced by the driving table, which is how the
// Section 4.2 query can go on to SET and RETURN a deleted node.
func (x *executor) execDeleteLegacy(cl *ast.DeleteClause, t *table.Table) (*table.Table, error) {
	for _, i := range x.rowOrder(t) {
		env := expr.Env(t.Row(i))
		for _, e := range cl.Exprs {
			v, err := x.ev.Eval(e, env)
			if err != nil {
				return nil, err
			}
			if err := x.legacyDeleteValue(v, cl.Detach); err != nil {
				return nil, err
			}
		}
	}
	return t, nil
}

func (x *executor) legacyDeleteValue(v value.Value, detach bool) error {
	switch e := v.(type) {
	case value.Null:
		return nil
	case value.Rel:
		if x.graph.HasRel(graph.RelID(e.ID)) {
			x.graph.DeleteRel(graph.RelID(e.ID))
			x.stats.RelsDeleted++
		}
		return nil
	case value.Node:
		id := graph.NodeID(e.ID)
		if !x.graph.HasNode(id) {
			return nil
		}
		if detach {
			before := x.graph.NumRels()
			x.graph.DetachDeleteNode(id)
			x.stats.RelsDeleted += before - x.graph.NumRels()
		} else {
			x.graph.DeleteNodeUnchecked(id)
		}
		x.stats.NodesDeleted++
		return nil
	case value.Path:
		for _, rid := range e.Rels {
			if err := x.legacyDeleteValue(value.Rel{ID: rid}, detach); err != nil {
				return err
			}
		}
		for _, nid := range e.Nodes {
			if err := x.legacyDeleteValue(value.Node{ID: nid}, detach); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("DELETE expects nodes, relationships or paths, got %s", v.Kind())
	}
}

// execMergeLegacy is the Cypher 9 MERGE: per record, match-or-create
// against the live graph. Because earlier records' creations are visible
// to later records, the result depends on the scan order — the
// nondeterminism of Example 3 / Figure 6.
func (x *executor) execMergeLegacy(cl *ast.MergeClause, t *table.Table) (*table.Table, error) {
	newVars := freshVarsForCreate(cl.Pattern, t)
	out := table.New(append(t.Columns(), newVars...)...)
	m := x.matcher()
	for _, i := range x.rowOrder(t) {
		env := expr.Env(t.Row(i))
		matches, err := m.Match(cl.Pattern, env)
		if err != nil {
			return nil, err
		}
		if len(matches) > 0 {
			for _, me := range matches {
				for _, item := range cl.OnMatch {
					if err := x.applySetItemLegacy(item, me); err != nil {
						return nil, err
					}
				}
				out.AppendMap(me)
			}
			continue
		}
		env2, err := x.createInstance(cl.Pattern, env, true)
		if err != nil {
			return nil, err
		}
		for _, item := range cl.OnCreate {
			if err := x.applySetItemLegacy(item, env2); err != nil {
				return nil, err
			}
		}
		out.AppendMap(env2)
	}
	return out, nil
}

// execForeach expands each record by the list elements and runs the body
// update clauses over the expanded table, then restores the original
// table (FOREACH introduces no bindings downstream).
func (x *executor) execForeach(cl *ast.ForeachClause, t *table.Table) (*table.Table, error) {
	if t.HasColumn(cl.Var) {
		return nil, fmt.Errorf("variable `%s` already declared", cl.Var)
	}
	expanded := table.New(append(t.Columns(), cl.Var)...)
	for _, i := range x.rowOrder(t) {
		env := expr.Env(t.Row(i))
		v, err := x.ev.Eval(cl.List, env)
		if err != nil {
			return nil, err
		}
		if value.IsNull(v) {
			continue
		}
		lst, ok := value.AsList(v)
		if !ok {
			return nil, fmt.Errorf("FOREACH expects a list, got %s", v.Kind())
		}
		for _, el := range lst {
			row := t.Row(i)
			row[cl.Var] = el
			expanded.AppendMap(row)
		}
	}
	cur := expanded
	var err error
	for _, body := range cl.Body {
		cur, err = x.clause(body, cur)
		if err != nil {
			return nil, err
		}
	}
	return t, nil
}
