package core

import (
	"strings"
	"testing"

	"repro/internal/fixtures"
	"repro/internal/graph"
	"repro/internal/parser"
	"repro/internal/table"
	"repro/internal/value"
)

// run executes a query under the given dialect against g, starting from
// the unit table.
func run(t *testing.T, d Dialect, g *graph.Graph, query string) *Result {
	t.Helper()
	res, err := runErr(d, g, query)
	if err != nil {
		t.Fatalf("exec %q: %v", query, err)
	}
	return res
}

func runErr(d Dialect, g *graph.Graph, query string) (*Result, error) {
	stmt, err := parser.Parse(query)
	if err != nil {
		return nil, err
	}
	e := NewEngine(Config{Dialect: d})
	return e.ExecuteStatement(g, stmt, nil)
}

func runCfg(t *testing.T, cfg Config, g *graph.Graph, query string, t0 *table.Table) (*Result, error) {
	t.Helper()
	stmt, err := parser.Parse(query)
	if err != nil {
		t.Fatalf("parse %q: %v", query, err)
	}
	return NewEngine(cfg).ExecuteWithTable(g, stmt, nil, t0)
}

func TestMatchReturn(t *testing.T) {
	g, _ := fixtures.Figure1()
	res := run(t, DialectRevised, g, `MATCH (p:Product) RETURN p.name AS name ORDER BY name`)
	if res.Table.Len() != 3 {
		t.Fatalf("rows = %d", res.Table.Len())
	}
	if res.Table.Get(0, "name") != value.String("laptop") {
		t.Errorf("first = %v", res.Table.Get(0, "name"))
	}
}

// Query (1) of Section 2, including its bag-semantics discussion: without
// WHERE the table has two records; WHERE keeps one.
func TestPaperQuery1(t *testing.T) {
	g, ids := fixtures.Figure1()
	res := run(t, DialectRevised, g, `
		MATCH (p:Product)<-[:OFFERS]-(v:Vendor)-[:OFFERS]->(q:Product)
		RETURN v`)
	if res.Table.Len() != 2 {
		t.Fatalf("without WHERE: %d records, want 2 copies of (v:v1)", res.Table.Len())
	}
	res = run(t, DialectRevised, g, `
		MATCH (p:Product)<-[:OFFERS]-(v:Vendor)-[:OFFERS]->(q:Product)
		WHERE p.name = "laptop"
		RETURN v`)
	if res.Table.Len() != 1 {
		t.Fatalf("with WHERE: %d records", res.Table.Len())
	}
	if res.Table.Get(0, "v") != (value.Node{ID: int64(ids["v1"])}) {
		t.Errorf("v = %v", res.Table.Get(0, "v"))
	}
}

func TestOptionalMatch(t *testing.T) {
	g, _ := fixtures.Figure1()
	res := run(t, DialectRevised, g, `
		MATCH (u:User)
		OPTIONAL MATCH (u)-[:ORDERED]->(p:Product{name:'laptop'})
		RETURN u.name AS u, p ORDER BY u`)
	if res.Table.Len() != 2 {
		t.Fatalf("rows = %d", res.Table.Len())
	}
	// Bob ordered the laptop; Jane did not.
	if value.IsNull(res.Table.Get(0, "p")) {
		t.Error("Bob's laptop should match")
	}
	if !value.IsNull(res.Table.Get(1, "p")) {
		t.Error("Jane's p should be null")
	}
}

func TestWithPipelineAndWhere(t *testing.T) {
	g, _ := fixtures.Figure1()
	res := run(t, DialectRevised, g, `
		MATCH (u:User)-[:ORDERED]->(p:Product)
		WITH u, count(p) AS orders WHERE orders >= 2
		RETURN u.name AS name, orders`)
	if res.Table.Len() != 2 {
		t.Fatalf("rows = %d, want 2 (both users ordered 2)", res.Table.Len())
	}
}

func TestAggregationGrouping(t *testing.T) {
	g, _ := fixtures.Figure1()
	res := run(t, DialectRevised, g, `
		MATCH (u:User)-[:ORDERED]->(p:Product)
		RETURN u.name AS name, count(*) AS c, collect(p.name) AS names
		ORDER BY name`)
	if res.Table.Len() != 2 {
		t.Fatalf("groups = %d", res.Table.Len())
	}
	if res.Table.Get(0, "c") != value.Int(2) {
		t.Errorf("Bob count = %v", res.Table.Get(0, "c"))
	}
	names, _ := value.AsList(res.Table.Get(0, "names"))
	if len(names) != 2 {
		t.Errorf("Bob names = %v", names)
	}
}

func TestCountStarOnEmpty(t *testing.T) {
	g := graph.New()
	res := run(t, DialectRevised, g, `MATCH (n) RETURN count(*) AS c`)
	if res.Table.Len() != 1 || res.Table.Get(0, "c") != value.Int(0) {
		t.Errorf("count(*) over empty = %v", res.Table.Get(0, "c"))
	}
}

func TestUnwind(t *testing.T) {
	g := graph.New()
	res := run(t, DialectRevised, g, `UNWIND [1,2,3] AS x RETURN x * 10 AS y`)
	if res.Table.Len() != 3 || res.Table.Get(2, "y") != value.Int(30) {
		t.Errorf("unwind result: %v", res.Table)
	}
	res = run(t, DialectRevised, g, `UNWIND null AS x RETURN x`)
	if res.Table.Len() != 0 {
		t.Error("UNWIND null should produce no rows")
	}
}

func TestDistinctOrderSkipLimit(t *testing.T) {
	g := graph.New()
	res := run(t, DialectRevised, g, `
		UNWIND [3,1,2,3,1] AS x
		RETURN DISTINCT x ORDER BY x DESC SKIP 1 LIMIT 1`)
	if res.Table.Len() != 1 || res.Table.Get(0, "x") != value.Int(2) {
		t.Errorf("result: %v", res.Table)
	}
}

func TestReturnStarExec(t *testing.T) {
	g := graph.New()
	res := run(t, DialectRevised, g, `UNWIND [1] AS x UNWIND ['a'] AS y RETURN *`)
	cols := res.Table.Columns()
	if len(cols) != 2 || cols[0] != "x" || cols[1] != "y" {
		t.Errorf("columns = %v", cols)
	}
}

func TestCreateAndReturn(t *testing.T) {
	g := graph.New()
	res := run(t, DialectRevised, g, `
		CREATE (a:User{id:1})-[r:KNOWS{since:2020}]->(b:User{id:2})
		RETURN a, r, b`)
	if g.NumNodes() != 2 || g.NumRels() != 1 {
		t.Fatalf("graph: %d nodes %d rels", g.NumNodes(), g.NumRels())
	}
	if res.Stats.NodesCreated != 2 || res.Stats.RelsCreated != 1 {
		t.Errorf("stats: %+v", res.Stats)
	}
	if _, ok := res.Table.Get(0, "r").(value.Rel); !ok {
		t.Error("r not returned as relationship")
	}
}

// Query (2): CREATE anchored on a matched node (the dotted additions of
// Figure 1).
func TestPaperQuery2(t *testing.T) {
	g, ids := fixtures.Figure1()
	res := run(t, DialectCypher9, g, `
		MATCH (u:User{id:89})
		CREATE (u)-[:ORDERED]->(:New_Product{id:0})`)
	if g.NumNodes() != 7 || g.NumRels() != 7 {
		t.Fatalf("graph: %d nodes %d rels", g.NumNodes(), g.NumRels())
	}
	if res.Stats.NodesCreated != 1 || res.Stats.RelsCreated != 1 {
		t.Errorf("stats: %+v", res.Stats)
	}
	// The new node is attached to u1.
	if len(g.Outgoing(ids["u1"])) != 3 {
		t.Error("new ORDERED relationship not attached to u1")
	}
}

// Query (3): SET with labels and properties plus REMOVE.
func TestPaperQuery3(t *testing.T) {
	for _, d := range []Dialect{DialectCypher9, DialectRevised} {
		g, _ := fixtures.Figure1()
		run(t, d, g, `
			MATCH (u:User{id:89})
			CREATE (u)-[:ORDERED]->(:New_Product{id:0})`)
		run(t, d, g, `
			MATCH (p:New_Product{id:0})
			SET p:Product, p.id=120, p.name="smartphone"
			REMOVE p:New_Product`)
		prods := g.NodeIDsByLabel("Product")
		if len(prods) != 4 {
			t.Fatalf("[%v] products = %d", d, len(prods))
		}
		if len(g.NodeIDsByLabel("New_Product")) != 0 {
			t.Errorf("[%v] New_Product label not removed", d)
		}
		found := false
		for _, id := range prods {
			n := g.Node(id)
			if n.Props["id"] == value.Int(120) && n.Props["name"] == value.String("smartphone") {
				found = true
			}
		}
		if !found {
			t.Errorf("[%v] updated product not found", d)
		}
	}
}

// The DELETE progression of Section 3: plain DELETE fails on an attached
// node, succeeds when the relationship is deleted too, and DETACH DELETE
// does it in one clause (Query (4)).
func TestPaperSection3Deletes(t *testing.T) {
	for _, d := range []Dialect{DialectCypher9, DialectRevised} {
		g, _ := fixtures.Figure1()
		run(t, d, g, `MATCH (u:User{id:89}) CREATE (u)-[:ORDERED]->(:Product{id:120})`)

		if _, err := runErr(d, g, `MATCH (p:Product{id:120}) DELETE p`); err == nil {
			t.Fatalf("[%v] DELETE of attached node should fail", d)
		}
		// Failure must roll back: node still there.
		if len(g.NodeIDsByLabel("Product")) != 4 {
			t.Fatalf("[%v] failed DELETE must not mutate", d)
		}
		res := run(t, d, g, `MATCH ()-[r]->(p:Product{id:120}) DELETE r,p`)
		if res.Stats.NodesDeleted != 1 || res.Stats.RelsDeleted != 1 {
			t.Errorf("[%v] stats: %+v", d, res.Stats)
		}
		if len(g.NodeIDsByLabel("Product")) != 3 {
			t.Errorf("[%v] delete r,p failed", d)
		}

		// DETACH DELETE variant (Query 4).
		run(t, d, g, `MATCH (u:User{id:89}) CREATE (u)-[:ORDERED]->(:Product{id:120})`)
		run(t, d, g, `MATCH (p:Product{id:120}) DETACH DELETE p`)
		if len(g.NodeIDsByLabel("Product")) != 3 {
			t.Errorf("[%v] detach delete failed", d)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("[%v] %v", d, err)
		}
	}
}

// The intertwined example of Section 3: create, mutate, delete in one
// statement.
func TestPaperIntertwined(t *testing.T) {
	g, _ := fixtures.Figure1()
	run(t, DialectCypher9, g, `
		MATCH (u:User{id:89})
		CREATE (u)-[:ORDERED]->(p:New_Product{id:0})
		SET p:Product,p.id=120,p.name="phone"
		REMOVE p:New_Product
		DETACH DELETE p`)
	if g.NumNodes() != 6 || g.NumRels() != 6 {
		t.Errorf("graph should be back to Figure 1: %d nodes %d rels", g.NumNodes(), g.NumRels())
	}
}

// Query (5): MERGE in a reading context, creating v2 for the unoffered
// product (the dashed additions of Figure 1).
func TestPaperQuery5(t *testing.T) {
	g, ids := fixtures.Figure1()
	res := run(t, DialectCypher9, g, `
		MATCH (p:Product)
		MERGE (p)<-[:OFFERS]-(v:Vendor)
		RETURN p,v`)
	if res.Table.Len() != 3 {
		t.Fatalf("rows = %d, want 3", res.Table.Len())
	}
	if len(g.NodeIDsByLabel("Vendor")) != 2 {
		t.Errorf("vendors = %d, want 2 (v2 created)", len(g.NodeIDsByLabel("Vendor")))
	}
	// p3 now offered by the new vendor: ORDERED from u1 and u2, plus the
	// new OFFERS from v2.
	if len(g.Incoming(ids["p3"])) != 3 {
		t.Errorf("p3 incoming = %d", len(g.Incoming(ids["p3"])))
	}
	if res.Stats.NodesCreated != 1 || res.Stats.RelsCreated != 1 {
		t.Errorf("stats: %+v", res.Stats)
	}
}

func TestUnionSemantics(t *testing.T) {
	g, _ := fixtures.Figure1()
	res := run(t, DialectRevised, g, `
		MATCH (u:User) RETURN u.name AS name
		UNION MATCH (v:Vendor) RETURN v.name AS name`)
	if res.Table.Len() != 3 {
		t.Errorf("union rows = %d", res.Table.Len())
	}
	// UNION dedups; UNION ALL keeps.
	res = run(t, DialectRevised, g, `
		MATCH (u:User) RETURN 'x' AS tag
		UNION MATCH (v:User) RETURN 'x' AS tag`)
	if res.Table.Len() != 1 {
		t.Errorf("UNION dedup rows = %d", res.Table.Len())
	}
	res = run(t, DialectRevised, g, `
		MATCH (u:User) RETURN 'x' AS tag
		UNION ALL MATCH (v:User) RETURN 'x' AS tag`)
	if res.Table.Len() != 4 {
		t.Errorf("UNION ALL rows = %d", res.Table.Len())
	}
	// Column mismatch errors.
	if _, err := runErr(DialectRevised, g, `RETURN 1 AS a UNION RETURN 2 AS b`); err == nil {
		t.Error("union column mismatch should fail")
	}
}

// Updates in UNION members apply left to right as side effects.
func TestUnionUpdatesSideEffects(t *testing.T) {
	g := graph.New()
	res := run(t, DialectRevised, g, `
		CREATE (:A) RETURN 1 AS one
		UNION ALL CREATE (:B) RETURN 1 AS one`)
	if g.NumNodes() != 2 {
		t.Errorf("nodes = %d", g.NumNodes())
	}
	if res.Stats.NodesCreated != 2 {
		t.Errorf("stats: %+v", res.Stats)
	}
}

func TestForeach(t *testing.T) {
	for _, d := range []Dialect{DialectCypher9, DialectRevised} {
		g := graph.New()
		run(t, d, g, `FOREACH (x IN [1,2,3] | CREATE (:N{v:x}))`)
		if len(g.NodeIDsByLabel("N")) != 3 {
			t.Errorf("[%v] foreach created %d", d, len(g.NodeIDsByLabel("N")))
		}
		// FOREACH introduces no bindings downstream.
		if _, err := runErr(d, g, `FOREACH (x IN [1] | CREATE (:M)) RETURN x`); err == nil {
			t.Errorf("[%v] foreach variable must not leak", d)
		}
	}
}

func TestParametersExec(t *testing.T) {
	g := graph.New()
	stmt, err := parser.Parse(`CREATE (n:User $props) RETURN n.name AS name`)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(Config{Dialect: DialectRevised})
	params := map[string]value.Value{
		"props": value.Map{"name": value.String("alice"), "age": value.Int(3)},
	}
	res, err := e.ExecuteStatement(g, stmt, params)
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.Get(0, "name") != value.String("alice") {
		t.Errorf("param props: %v", res.Table.Get(0, "name"))
	}
}

func TestStatementRollbackOnError(t *testing.T) {
	g, _ := fixtures.Figure1()
	before := graph.Fingerprint(g)
	// The CREATE succeeds, then the ambiguous SET errors (revised):
	// everything must roll back.
	_, err := runErr(DialectRevised, g, `
		CREATE (:Extra)
		WITH 1 AS one
		MATCH (p1:Product{id:85}),(p2:Product{id:125})
		SET p1.name = p2.name`)
	if err == nil {
		t.Fatal("expected conflict error")
	}
	if graph.Fingerprint(g) != before {
		t.Error("failed statement must leave the graph untouched")
	}
}

func TestDanglingCheckAtStatementEnd(t *testing.T) {
	g, _ := fixtures.Figure1()
	before := graph.Fingerprint(g)
	// Legacy DELETE of a node with attached rels succeeds mid-statement
	// but the statement-end check must fail and roll back.
	_, err := runErr(DialectCypher9, g, `MATCH (u:User{id:89}) DELETE u`)
	if err == nil || !strings.Contains(err.Error(), "inconsistent") {
		t.Fatalf("err = %v", err)
	}
	if graph.Fingerprint(g) != before {
		t.Error("rollback failed")
	}
}

func TestReturnNotLastRejected(t *testing.T) {
	g := graph.New()
	if _, err := runErr(DialectRevised, g, `RETURN 1 AS one CREATE (:X)`); err == nil {
		t.Error("clauses after RETURN should be rejected")
	}
}

func TestDuplicateProjectionName(t *testing.T) {
	g := graph.New()
	if _, err := runErr(DialectRevised, g, `RETURN 1 AS a, 2 AS a`); err == nil {
		t.Error("duplicate column names should be rejected")
	}
}

func TestExecuteWithTable(t *testing.T) {
	g := graph.New()
	t0 := table.New("x")
	t0.AppendRow(value.Int(1))
	t0.AppendRow(value.Int(2))
	stmt, _ := parser.Parse(`CREATE (:N{v:x})`)
	_, err := NewEngine(Config{Dialect: DialectRevised}).ExecuteWithTable(g, stmt, nil, t0)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.NodeIDsByLabel("N")) != 2 {
		t.Errorf("nodes = %d", g.NumNodes())
	}
}
