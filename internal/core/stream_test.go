package core

import (
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/parser"
	"repro/internal/plan"
	"repro/internal/value"
)

// renderTable flattens a result table to "col | col" header plus one
// rendered line per row, for exact cross-executor comparison.
func renderTable(t *Result) string {
	var sb strings.Builder
	sb.WriteString(strings.Join(t.Table.Columns(), " | "))
	for i := 0; i < t.Table.Len(); i++ {
		var parts []string
		for _, v := range t.Table.Values(i) {
			parts = append(parts, renderValue(v))
		}
		sb.WriteString("\n" + strings.Join(parts, " | "))
	}
	return sb.String()
}

// TestStreamingMatchesMaterializingGolden replays every query of both
// golden corpora under the streaming and the materializing executor and
// requires identical output tables, identical update stats, and
// isomorphic final graphs — the plan-vs-legacy equivalence contract in
// both dialects.
func TestStreamingMatchesMaterializingGolden(t *testing.T) {
	suites := []struct {
		name    string
		dialect Dialect
		cases   []goldenCase
	}{
		{"revised", DialectRevised, goldenCorpus},
		{"legacy", DialectCypher9, legacyGoldenCorpus},
	}
	for _, suite := range suites {
		for _, c := range suite.cases {
			t.Run(suite.name+"/"+c.name, func(t *testing.T) {
				base := graph.New()
				setupEng := NewEngine(Config{Dialect: suite.dialect})
				for _, s := range c.setup {
					stmt, err := parser.Parse(s)
					if err != nil {
						t.Fatalf("setup parse: %v", err)
					}
					if _, err := setupEng.ExecuteStatement(base, stmt, nil); err != nil {
						t.Fatalf("setup exec %q: %v", s, err)
					}
				}
				stmt, err := parser.Parse(c.query)
				if err != nil {
					t.Fatalf("parse: %v", err)
				}

				gS, gM := base.Clone(), base.Clone()
				resS, errS := NewEngine(Config{Dialect: suite.dialect, Executor: ExecStreaming}).
					ExecuteStatement(gS, stmt, nil)
				resM, errM := NewEngine(Config{Dialect: suite.dialect, Executor: ExecMaterializing}).
					ExecuteStatement(gM, stmt, nil)
				if (errS == nil) != (errM == nil) {
					t.Fatalf("error divergence: streaming=%v materializing=%v", errS, errM)
				}
				if errS != nil {
					return
				}
				if got, want := renderTable(resS), renderTable(resM); got != want {
					t.Errorf("table divergence:\nstreaming:\n%s\nmaterializing:\n%s", got, want)
				}
				if resS.Stats != resM.Stats {
					t.Errorf("stats divergence: streaming=%v materializing=%v", resS.Stats, resM.Stats)
				}
				if graph.Fingerprint(gS) != graph.Fingerprint(gM) {
					t.Error("final graph divergence between executors")
				}
			})
		}
	}
}

// TestStreamingMatchesMaterializingScanOrders replays an order-sensitive
// legacy MERGE (the Example 3 nondeterminism) under both scan orders and
// both executors: the streaming barrier must feed update clauses the
// records in exactly the materializing order.
func TestStreamingMatchesMaterializingScanOrders(t *testing.T) {
	setup := []string{
		`CREATE (:U{n:'u1'}), (:U{n:'u2'}), (:P{n:'p'})`,
	}
	query := `
		UNWIND ['u1','u2','u1'] AS un
		MATCH (u:U{n:un}), (p:P)
		WITH u, p
		MERGE (u)-[:ORDERED]->(p)
		RETURN count(*) AS c`
	for _, order := range []ScanOrder{ScanForward, ScanReverse} {
		t.Run(order.String(), func(t *testing.T) {
			var graphs []*graph.Graph
			var rendered []string
			for _, ex := range []Executor{ExecStreaming, ExecMaterializing} {
				g := graph.New()
				eng := NewEngine(Config{Dialect: DialectCypher9, ScanOrder: order, Executor: ex})
				for _, s := range setup {
					stmt, err := parser.Parse(s)
					if err != nil {
						t.Fatal(err)
					}
					if _, err := eng.ExecuteStatement(g, stmt, nil); err != nil {
						t.Fatal(err)
					}
				}
				stmt, err := parser.Parse(query)
				if err != nil {
					t.Fatal(err)
				}
				res, err := eng.ExecuteStatement(g, stmt, nil)
				if err != nil {
					t.Fatal(err)
				}
				graphs = append(graphs, g)
				rendered = append(rendered, renderTable(res))
			}
			if rendered[0] != rendered[1] {
				t.Errorf("table divergence:\nstreaming:\n%s\nmaterializing:\n%s", rendered[0], rendered[1])
			}
			if graph.Fingerprint(graphs[0]) != graph.Fingerprint(graphs[1]) {
				t.Error("final graph divergence between executors")
			}
		})
	}
}

func (s ScanOrder) String() string {
	if s == ScanReverse {
		return "reverse"
	}
	return "forward"
}

// findMatchOps walks a plan collecting its Match operators.
func findMatchOps(root plan.Operator) []*plan.Match {
	var out []*plan.Match
	var rec func(op plan.Operator)
	rec = func(op plan.Operator) {
		if m, ok := op.(*plan.Match); ok {
			out = append(out, m)
		}
		for _, c := range op.Children() {
			rec(c)
		}
	}
	rec(root)
	return out
}

// TestLimitEarlyExitStopsEnumeration is the streaming-semantics
// acceptance test: MATCH … RETURN … LIMIT k must stop pattern
// enumeration after k rows instead of visiting all n nodes.
func TestLimitEarlyExitStopsEnumeration(t *testing.T) {
	const n = 5000
	g := graph.New()
	for i := 0; i < n; i++ {
		g.CreateNode([]string{"N"}, value.Map{"i": value.Int(int64(i))})
	}

	var root plan.Operator
	// Parallelism pinned to 1: the test asserts per-operator visit
	// counters on the serial Match, which an Exchange would replace
	// with a never-opened prototype.
	cfg := Config{Dialect: DialectRevised, Parallelism: 1}
	cfg.onPlan = func(op plan.Operator) { root = op }
	eng := NewEngine(cfg)
	stmt, err := parser.Parse(`MATCH (m:N) RETURN m.i AS i LIMIT 3`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.ExecuteStatement(g, stmt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.Len() != 3 {
		t.Fatalf("rows = %d, want 3", res.Table.Len())
	}
	if root == nil {
		t.Fatal("onPlan hook not invoked")
	}
	matches := findMatchOps(root)
	if len(matches) != 1 {
		t.Fatalf("match operators = %d, want 1", len(matches))
	}
	st := matches[0].MatchStats()
	if st.Emitted != 3 {
		t.Errorf("match emitted %d environments, want exactly 3", st.Emitted)
	}
	// The scan must have visited only the candidates needed for 3 rows,
	// not the full node set.
	if st.NodeVisits >= n/10 {
		t.Errorf("match visited %d of %d nodes; early exit did not prune", st.NodeVisits, n)
	}
	if got := matches[0].RowsEmitted(); got != 3 {
		t.Errorf("match operator emitted %d rows, want 3", got)
	}
}

// TestLimitEarlyExitExpand covers the relationship-expansion side: a
// two-hop pattern under LIMIT must not enumerate the whole adjacency
// structure.
func TestLimitEarlyExitExpand(t *testing.T) {
	const hubs = 50
	g := graph.New()
	for h := 0; h < hubs; h++ {
		hub := g.CreateNode([]string{"Hub"}, value.Map{"h": value.Int(int64(h))})
		for i := 0; i < 40; i++ {
			spoke := g.CreateNode([]string{"Spoke"}, nil)
			if _, err := g.CreateRel(hub.ID, spoke.ID, "T", nil); err != nil {
				t.Fatal(err)
			}
		}
	}
	var root plan.Operator
	// Parallelism: 1 — same visit-counter pinning as above.
	cfg := Config{Dialect: DialectRevised, Parallelism: 1}
	cfg.onPlan = func(op plan.Operator) { root = op }
	stmt, err := parser.Parse(`MATCH (h:Hub)-[:T]->(s:Spoke) RETURN h.h AS h LIMIT 2`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := NewEngine(cfg).ExecuteStatement(g, stmt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.Len() != 2 {
		t.Fatalf("rows = %d, want 2", res.Table.Len())
	}
	st := findMatchOps(root)[0].MatchStats()
	if st.RelVisits >= 100 {
		t.Errorf("expand visited %d relationships for LIMIT 2; early exit did not prune", st.RelVisits)
	}
}

// TestExplainStatement exercises the plan rendering used by the shell's
// EXPLAIN command.
func TestExplainStatement(t *testing.T) {
	eng := NewEngine(Config{Dialect: DialectRevised})
	g := graph.New()
	stmt, err := parser.Parse(`MATCH (a:User)-[:KNOWS]->(b) WHERE a.age > 30 CREATE (b)-[:SEEN]->(:Event) RETURN b.name AS name ORDER BY name LIMIT 5`)
	if err != nil {
		t.Fatal(err)
	}
	out, err := eng.ExplainStatement(g, stmt, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"Limit(5)", "Sort[barrier]", "Project[name]",
		"Update[barrier:writer-lock](CREATE)", "txn: auto-commit write", "Match(", "WHERE …", "Unit",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("explain output missing %q:\n%s", want, out)
		}
	}
	// The plan must be a single chain: each line below the first is
	// indented under its parent.
	lines := strings.Split(out, "\n")
	if len(lines) < 6 {
		t.Errorf("explain output too shallow:\n%s", out)
	}
}

// TestExplainUnion checks member sequencing and statement-level
// deduplication in the rendered plan.
func TestExplainUnion(t *testing.T) {
	eng := NewEngine(Config{Dialect: DialectRevised})
	stmt, err := parser.Parse(`RETURN 1 AS x UNION RETURN 2 AS x`)
	if err != nil {
		t.Fatal(err)
	}
	out, err := eng.ExplainStatement(graph.New(), stmt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Union(2 members)") || !strings.Contains(out, "Distinct") {
		t.Errorf("union plan missing Union/Distinct:\n%s", out)
	}
}

// TestStreamingStatementErrorsRollBack ensures a mid-stream error in the
// new executor still restores the pre-statement graph.
func TestStreamingStatementErrorsRollBack(t *testing.T) {
	g := graph.New()
	eng := NewEngine(Config{Dialect: DialectRevised})
	mustExec := func(q string) {
		stmt, err := parser.Parse(q)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.ExecuteStatement(g, stmt, nil); err != nil {
			t.Fatal(err)
		}
	}
	mustExec(`CREATE (:A{v:1}), (:A{v:2})`)
	before := graph.Fingerprint(g)
	stmt, err := parser.Parse(`MATCH (a:A) CREATE (:B{v:a.v}) WITH a RETURN a.v + 'boom' AS x`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.ExecuteStatement(g, stmt, nil); err == nil {
		t.Fatal("expected type error")
	}
	if graph.Fingerprint(g) != before {
		t.Error("failed streaming statement must roll back its writes")
	}
}

// TestStreamingPropertyRandomQueries cross-checks the executors over a
// generated mix of read pipelines on a random-ish graph.
func TestStreamingPropertyRandomQueries(t *testing.T) {
	g := graph.New()
	eng := NewEngine(Config{Dialect: DialectRevised})
	var setup strings.Builder
	setup.WriteString("UNWIND range(0, 40) AS i CREATE (:P{i:i, g:i % 5})")
	stmt, err := parser.Parse(setup.String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.ExecuteStatement(g, stmt, nil); err != nil {
		t.Fatal(err)
	}
	stmt, err = parser.Parse(`MATCH (a:P), (b:P) WHERE a.g = b.g AND a.i < b.i CREATE (a)-[:SAME]->(b)`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.ExecuteStatement(g, stmt, nil); err != nil {
		t.Fatal(err)
	}

	queries := []string{
		`MATCH (a:P) RETURN a.i AS i ORDER BY i DESC SKIP 3 LIMIT 7`,
		`MATCH (a:P)-[:SAME]->(b:P) RETURN a.g AS g, count(*) AS c ORDER BY g`,
		`MATCH (a:P) WHERE a.i % 3 = 0 WITH a.g AS g, collect(a.i) AS xs RETURN g, size(xs) AS n ORDER BY g`,
		`MATCH (a:P)-[:SAME]->(b) WITH DISTINCT a.g AS g ORDER BY g RETURN g`,
		`MATCH (a:P) OPTIONAL MATCH (a)-[:SAME]->(b:P{i:999}) RETURN a.i AS i, b ORDER BY i LIMIT 5`,
		`UNWIND range(1,5) AS x MATCH (a:P{i:x}) RETURN x, a.g AS g`,
		`MATCH (a:P{g:0}) RETURN a.i AS i UNION MATCH (a:P{g:1}) RETURN a.i AS i`,
		`MATCH (a:P{g:0}) RETURN a.g AS g UNION MATCH (b:P{g:0}) RETURN b.g AS g`,
	}
	for qi, q := range queries {
		stmt, err := parser.Parse(q)
		if err != nil {
			t.Fatalf("q%d parse: %v", qi, err)
		}
		resS, errS := NewEngine(Config{Dialect: DialectRevised, Executor: ExecStreaming}).
			ExecuteStatement(g.Clone(), stmt, nil)
		resM, errM := NewEngine(Config{Dialect: DialectRevised, Executor: ExecMaterializing}).
			ExecuteStatement(g.Clone(), stmt, nil)
		if (errS == nil) != (errM == nil) {
			t.Fatalf("q%d error divergence: %v vs %v", qi, errS, errM)
		}
		if errS != nil {
			continue
		}
		if got, want := renderTable(resS), renderTable(resM); got != want {
			t.Errorf("q%d (%s) divergence:\nstreaming:\n%s\nmaterializing:\n%s", qi, q, got, want)
		}
	}
}
