package core

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/graph"
	"repro/internal/parser"
	"repro/internal/plan"
)

// renderMultiset flattens a result to its column header plus one line
// per row, row order ignored — the equivalence notion for queries whose
// enumeration order is planner-dependent.
func renderMultiset(res *Result) string {
	var rows []string
	for i := 0; i < res.Table.Len(); i++ {
		var parts []string
		for _, v := range res.Table.Values(i) {
			parts = append(parts, renderValue(v))
		}
		rows = append(rows, strings.Join(parts, " | "))
	}
	sort.Strings(rows)
	return strings.Join(res.Table.Columns(), " | ") + "\n" + strings.Join(rows, "\n")
}

// plannerEquivSetup builds a small social graph with enough label skew
// that different anchors genuinely change the enumeration order.
var plannerEquivSetup = []string{
	`CREATE (:User{name:'ada', age:36}), (:User{name:'bob', age:41}),
	        (:User{name:'cyd', age:23}), (:User{name:'dee', age:55})`,
	`CREATE (:Post{id:1, score:3}), (:Post{id:2, score:1}), (:Post{id:3, score:2})`,
	`MATCH (a:User{name:'ada'}), (b:User{name:'bob'}) CREATE (a)-[:KNOWS{w:1}]->(b)`,
	`MATCH (b:User{name:'bob'}), (c:User{name:'cyd'}) CREATE (b)-[:KNOWS{w:2}]->(c)`,
	`MATCH (c:User{name:'cyd'}), (a:User{name:'ada'}) CREATE (c)-[:KNOWS{w:3}]->(a)`,
	`MATCH (a:User{name:'ada'}), (d:User{name:'dee'}) CREATE (a)-[:KNOWS{w:4}]->(d)`,
	`MATCH (a:User{name:'ada'}), (p:Post{id:1}) CREATE (a)-[:WROTE]->(p)`,
	`MATCH (b:User{name:'bob'}), (p:Post{id:2}) CREATE (b)-[:WROTE]->(p)`,
	`MATCH (c:User{name:'cyd'}), (p:Post{id:3}) CREATE (c)-[:WROTE]->(p)`,
}

// plannerEquivQueries is the corpus of multi-part MATCH shapes: paths,
// reversed selectivity, undirected and variable-length relationships,
// named paths, cartesian parts, bound-variable connections, WHERE
// pushdown and OPTIONAL MATCH.
var plannerEquivQueries = []string{
	`MATCH (a:User)-[:KNOWS]->(b:User) RETURN a.name AS an, b.name AS bn`,
	`MATCH (a:User)-[:KNOWS]->(b:User)-[:WROTE]->(p:Post) RETURN a.name AS an, p.id AS pid`,
	`MATCH (a:User)-[:KNOWS]-(b:User) RETURN a.name AS an, b.name AS bn`,
	`MATCH (a:User)-[k:KNOWS]->(b:User) WHERE k.w > 1 AND a.age < 50 RETURN a.name AS an, k.w AS w`,
	`MATCH (a:User)-[:KNOWS*1..3]->(b:User) RETURN a.name AS an, b.name AS bn`,
	`MATCH pth = (a:User)-[:KNOWS*1..2]->(b:User)-[:WROTE]->(p:Post) RETURN a.name AS an, p.id AS pid, length(pth) AS n`,
	`MATCH (a:User)-[:WROTE]->(p:Post), (x:User)-[:KNOWS]->(a) RETURN a.name AS an, p.id AS pid, x.name AS xn`,
	`MATCH (a:User{name:'ada'}) MATCH (a)-[:KNOWS]->(b)-[:WROTE]->(p:Post) WHERE p.score >= 1 RETURN b.name AS bn, p.id AS pid`,
	`MATCH (p:Post), (a:User) WHERE a.age < 40 RETURN a.name AS an, p.id AS pid`,
	`MATCH (a:User) OPTIONAL MATCH (a)-[:WROTE]->(p:Post) WHERE p.score > 1 RETURN a.name AS an, p.id AS pid`,
	`MATCH (c:User)<-[:KNOWS]-(b:User)<-[:KNOWS]-(a:User) RETURN a.name AS an, c.name AS cn`,
}

// maxPartWidth finds the widest pattern part (node count) over all
// MATCH clauses, which bounds the forced-anchor choices worth trying.
func maxPartWidth(stmt *ast.Statement) int {
	w := 1
	for _, q := range stmt.Queries {
		for _, c := range q.Clauses {
			if mc, ok := c.(*ast.MatchClause); ok {
				for _, part := range mc.Pattern {
					if len(part.Nodes) > w {
						w = len(part.Nodes)
					}
				}
			}
		}
	}
	return w
}

// TestPlannerEquivalenceForcedAnchors is the planner's correctness
// suite: for every corpus query, every forced anchor position, both
// executors and both dialects must produce the same result multiset as
// the cost-based default. (The anchor hook pins all parts of all MATCH
// clauses to one position, clamped per part, which sweeps the whole
// per-part choice space as positions range over the widest part.)
func TestPlannerEquivalenceForcedAnchors(t *testing.T) {
	base := graph.New()
	setupEng := NewEngine(Config{Dialect: DialectRevised})
	for _, s := range plannerEquivSetup {
		stmt, err := parser.Parse(s)
		if err != nil {
			t.Fatalf("setup parse: %v", err)
		}
		if _, err := setupEng.ExecuteStatement(base, stmt, nil); err != nil {
			t.Fatalf("setup exec: %v", err)
		}
	}

	for _, q := range plannerEquivQueries {
		stmt, err := parser.Parse(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		width := maxPartWidth(stmt)

		var want string
		first := true
		check := func(name string, cfg Config) {
			t.Helper()
			res, err := NewEngine(cfg).ExecuteStatement(base.Clone(), stmt, nil)
			if err != nil {
				t.Fatalf("%s: %q: %v", name, q, err)
			}
			got := renderMultiset(res)
			if first {
				want, first = got, false
				return
			}
			if got != want {
				t.Errorf("%s: %q diverged:\n got:\n%s\nwant:\n%s", name, q, got, want)
			}
		}

		for _, dialect := range []Dialect{DialectRevised, DialectCypher9} {
			for _, ex := range []Executor{ExecStreaming, ExecMaterializing} {
				check("default/"+dialect.String()+"/"+ex.String(),
					Config{Dialect: dialect, Executor: ex})
				check("naive/"+dialect.String()+"/"+ex.String(),
					Config{Dialect: dialect, Executor: ex, Planner: PlannerLeftToRight})
				for pos := 0; pos < width; pos++ {
					pos := pos
					cfg := Config{Dialect: dialect, Executor: ex}
					cfg.forceAnchor = func(_ int, part *ast.PatternPart) int {
						if pos < len(part.Nodes) {
							return pos
						}
						return len(part.Nodes) - 1
					}
					check("forced/"+dialect.String()+"/"+ex.String(), cfg)
				}
			}
		}
	}
}

// TestPlannerPreservesWhereErrors: pushdown pruning must not suppress
// runtime errors other WHERE conjuncts raise on complete matches — the
// planner modes must agree on errors, not just on result multisets.
func TestPlannerPreservesWhereErrors(t *testing.T) {
	g := graph.New()
	setup, err := parser.Parse(`CREATE (:N{y:1})`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewEngine(Config{Dialect: DialectRevised}).ExecuteStatement(g, setup, nil); err != nil {
		t.Fatal(err)
	}
	queries := []string{
		// The erroring conjunct precedes a pushable false/null one.
		`MATCH (a:N) WHERE 1/0 = 1 AND a.x = 1 RETURN a.y AS y`,
		`MATCH (a:N) WHERE a.y/0 = 1 AND a.x = 1 RETURN a.y AS y`,
		// And the reverse order.
		`MATCH (a:N) WHERE a.x = 1 AND 1/0 = 1 RETURN a.y AS y`,
	}
	for _, q := range queries {
		stmt, err := parser.Parse(q)
		if err != nil {
			t.Fatal(err)
		}
		for _, ex := range []Executor{ExecStreaming, ExecMaterializing} {
			_, errPlanned := NewEngine(Config{Dialect: DialectRevised, Executor: ex}).
				ExecuteStatement(g.Clone(), stmt, nil)
			_, errNaive := NewEngine(Config{Dialect: DialectRevised, Executor: ex, Planner: PlannerLeftToRight}).
				ExecuteStatement(g.Clone(), stmt, nil)
			if (errPlanned == nil) != (errNaive == nil) {
				t.Errorf("%s %q: error divergence planned=%v naive=%v", ex, q, errPlanned, errNaive)
			}
		}
	}
}

// TestPlannerPreservesBindingAndPropsErrors: anchoring away from a slot
// must not suppress the seed's runtime errors — a pattern variable
// bound to a non-node value, or an inline property expression that
// errors, must fail identically under both planner modes even when the
// other end of the pattern has zero candidates.
func TestPlannerPreservesBindingAndPropsErrors(t *testing.T) {
	g := graph.New()
	setup, err := parser.Parse(`CREATE (:N{y:1})`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewEngine(Config{Dialect: DialectRevised}).ExecuteStatement(g, setup, nil); err != nil {
		t.Fatal(err)
	}
	queries := []string{
		// `a` is bound to an integer; :L is empty, so an :L anchor would
		// never touch `a`.
		`WITH 5 AS a MATCH (a)-->(b:L) RETURN b`,
		// The property map on the written-first slot errors; again :L is
		// empty.
		`MATCH (a {k: 1/0})-->(b:L) RETURN b`,
		// A missing parameter inside a property map.
		`MATCH (a {k: $nope})-->(b:L) RETURN b`,
	}
	for _, q := range queries {
		stmt, err := parser.Parse(q)
		if err != nil {
			t.Fatal(err)
		}
		for _, ex := range []Executor{ExecStreaming, ExecMaterializing} {
			_, errPlanned := NewEngine(Config{Dialect: DialectRevised, Executor: ex}).
				ExecuteStatement(g.Clone(), stmt, nil)
			_, errNaive := NewEngine(Config{Dialect: DialectRevised, Executor: ex, Planner: PlannerLeftToRight}).
				ExecuteStatement(g.Clone(), stmt, nil)
			if (errPlanned == nil) != (errNaive == nil) {
				t.Errorf("%s %q: error divergence planned=%v naive=%v", ex, q, errPlanned, errNaive)
			}
		}
	}
}

// TestPlannerAnchorsRareLabel pins the headline behaviour: a rare label
// at the right end of a path is chosen as the anchor, and the visit
// counts shrink by orders of magnitude against the naive walk.
func TestPlannerAnchorsRareLabel(t *testing.T) {
	g := graph.New()
	eng := NewEngine(Config{Dialect: DialectRevised})
	mustExec := func(q string) {
		t.Helper()
		stmt, err := parser.Parse(q)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.ExecuteStatement(g, stmt, nil); err != nil {
			t.Fatal(err)
		}
	}
	mustExec(`UNWIND range(1, 2000) AS i CREATE (:Common{i:i})`)
	mustExec(`CREATE (:Rare{name:'hub'})`)
	mustExec(`MATCH (c:Common) WHERE c.i <= 40 MATCH (r:Rare) CREATE (c)-[:R]->(r)`)

	query := `MATCH (c:Common)-[:R]->(r:Rare) RETURN count(*) AS n`
	stmt, err := parser.Parse(query)
	if err != nil {
		t.Fatal(err)
	}

	run := func(planner PlannerMode) (int64, int64) {
		var root plan.Operator
		// Parallelism pinned to 1: the test reads the serial Match
		// operator's visit counters.
		cfg := Config{Dialect: DialectRevised, Planner: planner, Parallelism: 1}
		cfg.onPlan = func(op plan.Operator) { root = op }
		res, err := NewEngine(cfg).ExecuteStatement(g.Clone(), stmt, nil)
		if err != nil {
			t.Fatal(err)
		}
		if n := res.Table.Len(); n != 1 {
			t.Fatalf("rows = %d", n)
		}
		ms := findMatchOps(root)
		if len(ms) != 1 {
			t.Fatalf("match ops = %d", len(ms))
		}
		st := ms[0].MatchStats()
		if st.Emitted != 40 {
			t.Fatalf("planner=%v emitted %d matches, want 40", planner, st.Emitted)
		}
		return st.NodeVisits, st.RelVisits
	}
	plannedNodes, _ := run(PlannerCostBased)
	naiveNodes, _ := run(PlannerLeftToRight)
	if plannedNodes > 10 {
		t.Errorf("planned walk visited %d anchor candidates, want ≤10 (the single :Rare node)", plannedNodes)
	}
	if naiveNodes < 2000 {
		t.Errorf("naive walk visited %d nodes; expected the full :Common scan", naiveNodes)
	}
}
