package core

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/fixtures"
	"repro/internal/graph"
	"repro/internal/match"
	"repro/internal/parser"
	"repro/internal/table"
	"repro/internal/value"
)

// ---------------------------------------------------------------------
// Example 1 (Section 4.1): the id swap. Legacy SET degrades into two
// sequential assignments; revised SET performs the swap.
// ---------------------------------------------------------------------

const example1Query = `
	MATCH (p1:Product{name:"laptop"}), (p2:Product{name:"tablet"})
	SET p1.id = p2.id, p2.id = p1.id`

func TestExample1LegacySetIsSequential(t *testing.T) {
	g, ids := fixtures.Figure1() // laptop id 125, tablet id 85
	run(t, DialectCypher9, g, example1Query)
	laptop := g.Node(ids["p1"]).Props["id"]
	tablet := g.Node(ids["p3"]).Props["id"]
	// Legacy: laptop takes tablet's id, then the second item is a no-op.
	if laptop != value.Int(85) || tablet != value.Int(85) {
		t.Errorf("legacy: laptop=%v tablet=%v, want both 85", laptop, tablet)
	}
}

func TestExample1RevisedSetSwaps(t *testing.T) {
	g, ids := fixtures.Figure1()
	run(t, DialectRevised, g, example1Query)
	laptop := g.Node(ids["p1"]).Props["id"]
	tablet := g.Node(ids["p3"]).Props["id"]
	if laptop != value.Int(85) || tablet != value.Int(125) {
		t.Errorf("revised: laptop=%v tablet=%v, want swap 85/125", laptop, tablet)
	}
}

// ---------------------------------------------------------------------
// Example 2 (Section 4.1): two products share id 125 with different
// names. Legacy SET silently picks an order-dependent winner; revised
// SET aborts with a conflict.
// ---------------------------------------------------------------------

const example2Query = `
	MATCH (p1:Product{id:85}),(p2:Product{id:125})
	SET p1.name = p2.name`

func TestExample2LegacyOrderDependent(t *testing.T) {
	outcomes := make(map[string]bool)
	for _, order := range []ScanOrder{ScanForward, ScanReverse} {
		g, ids := fixtures.Figure1()
		stmt, _ := parser.Parse(example2Query)
		_, err := NewEngine(Config{Dialect: DialectCypher9, ScanOrder: order}).
			ExecuteStatement(g, stmt, nil)
		if err != nil {
			t.Fatal(err)
		}
		name, _ := value.AsString(g.Node(ids["p3"]).Props["name"])
		outcomes[string(name)] = true
	}
	// The paper: "node p3 might end up with name set to either
	// 'notebook' or 'laptop'".
	if !outcomes["notebook"] || !outcomes["laptop"] {
		t.Errorf("legacy outcomes = %v, want both notebook and laptop reachable", outcomes)
	}
}

func TestExample2RevisedConflictError(t *testing.T) {
	g, _ := fixtures.Figure1()
	before := graph.Fingerprint(g)
	_, err := runErr(DialectRevised, g, example2Query)
	var ce *graph.ConflictError
	if !errors.As(err, &ce) {
		t.Fatalf("want ConflictError, got %v", err)
	}
	if graph.Fingerprint(g) != before {
		t.Error("conflicting SET must roll back")
	}
}

func TestExample2RevisedNoConflictWhenUnambiguous(t *testing.T) {
	// With distinct ids the same query is fine under revised semantics.
	g, ids := fixtures.CleanFigure1()
	run(t, DialectRevised, g, example2Query)
	if g.Node(ids["p3"]).Props["name"] != value.String("laptop") {
		t.Errorf("name = %v", g.Node(ids["p3"]).Props["name"])
	}
}

// ---------------------------------------------------------------------
// Section 4.2: the DELETE atomicity violation. Legacy: the query runs,
// SET on the deleted node is ignored, and an "empty node" reference is
// returned. Revised: strict DELETE errors immediately.
// ---------------------------------------------------------------------

const section42Query = `
	MATCH (user)-[order:ORDERED]->(product)
	DELETE user
	SET user.id = 999
	DELETE order
	RETURN user`

func TestSection42LegacyDeleteThenSet(t *testing.T) {
	// A reduced graph where deleting all matched users leaves no dangling
	// relationships at statement end: one user, one product, one order.
	g := graph.New()
	u := g.CreateNode([]string{"User"}, value.Map{"id": value.Int(89)})
	p := g.CreateNode([]string{"Product"}, nil)
	if _, err := g.CreateRel(u.ID, p.ID, "ORDERED", nil); err != nil {
		t.Fatal(err)
	}
	res := run(t, DialectCypher9, g, section42Query)
	// The query "goes through without an error and returns an empty
	// node": the reference survives in the table but the node is gone.
	if res.Table.Len() != 1 {
		t.Fatalf("rows = %d", res.Table.Len())
	}
	ref, ok := res.Table.Get(0, "user").(value.Node)
	if !ok {
		t.Fatalf("user = %v, want a (stale) node reference", res.Table.Get(0, "user"))
	}
	if g.Node(graph.NodeID(ref.ID)) != nil {
		t.Error("node should be deleted from the graph")
	}
	if g.NumNodes() != 1 || g.NumRels() != 0 {
		t.Errorf("graph: %d nodes %d rels", g.NumNodes(), g.NumRels())
	}
}

func TestSection42RevisedStrictDelete(t *testing.T) {
	g := graph.New()
	u := g.CreateNode([]string{"User"}, value.Map{"id": value.Int(89)})
	p := g.CreateNode([]string{"Product"}, nil)
	if _, err := g.CreateRel(u.ID, p.ID, "ORDERED", nil); err != nil {
		t.Fatal(err)
	}
	before := graph.Fingerprint(g)
	_, err := runErr(DialectRevised, g, section42Query)
	if err == nil || !strings.Contains(err.Error(), "dangling") {
		t.Fatalf("want dangling-relationship error, got %v", err)
	}
	if graph.Fingerprint(g) != before {
		t.Error("strict DELETE failure must roll back")
	}
}

func TestRevisedDeleteNullsReferences(t *testing.T) {
	g := graph.New()
	g.CreateNode([]string{"User"}, nil)
	res := run(t, DialectRevised, g, `MATCH (u:User) DELETE u RETURN u`)
	if !value.IsNull(res.Table.Get(0, "u")) {
		t.Errorf("deleted reference = %v, want null (Section 7)", res.Table.Get(0, "u"))
	}
}

// ---------------------------------------------------------------------
// Example 3 / Figure 6: legacy MERGE reads its own writes, so the result
// depends on the scan order. Top-down yields Figure 6b (4 rels, the
// third record matches the creations of the first two); bottom-up yields
// Figure 6a (6 rels).
// ---------------------------------------------------------------------

const example3Query = `MERGE (user)-[:ORDERED]->(product)<-[:OFFERS]-(vendor)`

func runExample3(t *testing.T, cfg Config) *graph.Graph {
	t.Helper()
	g, tbl, _ := fixtures.Example3()
	stmt, err := parser.Parse(example3Query)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewEngine(cfg).ExecuteWithTable(g, stmt, nil, tbl); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestExample3LegacyMergeOrderDependence(t *testing.T) {
	topDown := runExample3(t, Config{Dialect: DialectCypher9, ScanOrder: ScanForward})
	bottomUp := runExample3(t, Config{Dialect: DialectCypher9, ScanOrder: ScanReverse})
	if topDown.NumRels() != 4 {
		t.Errorf("top-down (Figure 6b): %d rels, want 4", topDown.NumRels())
	}
	if bottomUp.NumRels() != 6 {
		t.Errorf("bottom-up (Figure 6a): %d rels, want 6", bottomUp.NumRels())
	}
	if graph.Isomorphic(topDown, bottomUp) {
		t.Error("the two orders must yield non-isomorphic graphs (the Example 3 nondeterminism)")
	}
}

// ---------------------------------------------------------------------
// Example 4: the proposed semantics are order-independent on the
// Example 3 workload. Atomic/Grouping give Figure 6a (6 rels); all
// collapse variants give Figure 6b (4 rels).
// ---------------------------------------------------------------------

func TestExample4VariantsOnFigure6(t *testing.T) {
	cases := []struct {
		strategy MergeStrategy
		rels     int
	}{
		{StrategyAtomic, 6},
		{StrategyGrouping, 6},
		{StrategyWeakCollapse, 4},
		{StrategyCollapse, 4},
		{StrategyStrongCollapse, 4},
	}
	for _, c := range cases {
		var graphs []*graph.Graph
		for _, order := range []ScanOrder{ScanForward, ScanReverse} {
			g := runExample3(t, Config{
				Dialect:       DialectCypher9,
				MergeStrategy: c.strategy,
				ScanOrder:     order,
			})
			if g.NumRels() != c.rels {
				t.Errorf("%v: %d rels, want %d", c.strategy, g.NumRels(), c.rels)
			}
			if g.NumNodes() != 5 {
				t.Errorf("%v: %d nodes, want 5 (all pre-existing)", c.strategy, g.NumNodes())
			}
			graphs = append(graphs, g)
		}
		if !graph.Isomorphic(graphs[0], graphs[1]) {
			t.Errorf("%v must be order-independent", c.strategy)
		}
	}
}

// ---------------------------------------------------------------------
// Example 5 / Figure 7: the order-import table with duplicates and
// nulls on an empty graph.
//
//	Atomic  -> 12 nodes / 6 rels  (Figure 7a)
//	Grouping -> 8 nodes / 4 rels  (Figure 7b)
//	collapse family -> 4 nodes / 4 rels (Figure 7c)
// ---------------------------------------------------------------------

const example5Query = `MERGE ALL (:User{id:cid})-[:ORDERED]->(:Product{id:pid})`

func runExample5(t *testing.T, strategy MergeStrategy) (*graph.Graph, *Result) {
	t.Helper()
	g := graph.New()
	tbl := fixtures.Example5Table()
	stmt, err := parser.Parse(example5Query)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Dialect: DialectRevised, MergeStrategy: strategy}
	res, err := NewEngine(cfg).ExecuteWithTable(g, stmt, nil, tbl)
	if err != nil {
		t.Fatal(err)
	}
	return g, res
}

func TestExample5Figure7(t *testing.T) {
	cases := []struct {
		strategy    MergeStrategy
		nodes, rels int
		figure      string
	}{
		{StrategyAtomic, 12, 6, "7a"},
		{StrategyGrouping, 8, 4, "7b"},
		{StrategyWeakCollapse, 4, 4, "7c"},
		{StrategyCollapse, 4, 4, "7c"},
		{StrategyStrongCollapse, 4, 4, "7c"},
	}
	for _, c := range cases {
		g, _ := runExample5(t, c.strategy)
		if g.NumNodes() != c.nodes || g.NumRels() != c.rels {
			t.Errorf("%v (Figure %s): %d nodes / %d rels, want %d / %d",
				c.strategy, c.figure, g.NumNodes(), g.NumRels(), c.nodes, c.rels)
		}
	}
}

func TestExample5Figure7cShape(t *testing.T) {
	// Under the collapse family there is exactly one User 98, one User
	// 99, one Product 125 and one property-less Product (the null pid),
	// with rels 98->125, 98->null, 99->125, 99->null.
	g, _ := runExample5(t, StrategyStrongCollapse)
	users := g.NodeIDsByLabel("User")
	products := g.NodeIDsByLabel("Product")
	if len(users) != 2 || len(products) != 2 {
		t.Fatalf("users=%d products=%d", len(users), len(products))
	}
	nullProducts := 0
	for _, id := range products {
		if _, has := g.Node(id).Props["id"]; !has {
			nullProducts++
		}
	}
	if nullProducts != 1 {
		t.Errorf("null-id products = %d, want 1 (nulls collapse together)", nullProducts)
	}
	for _, uid := range users {
		if len(g.Outgoing(uid)) != 2 {
			t.Errorf("user %d has %d orders, want 2", uid, len(g.Outgoing(uid)))
		}
	}
}

// MERGE ALL / MERGE SAME surface forms map to Atomic / Strong Collapse.
func TestSection7MergeAllAndSameForms(t *testing.T) {
	g := graph.New()
	tbl := fixtures.Example5Table()
	stmt, _ := parser.Parse(example5Query) // MERGE ALL
	if _, err := NewEngine(Config{Dialect: DialectRevised}).ExecuteWithTable(g, stmt, nil, tbl); err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 12 || g.NumRels() != 6 {
		t.Errorf("MERGE ALL: %d/%d, want 12/6 (Figure 7a)", g.NumNodes(), g.NumRels())
	}

	g2 := graph.New()
	stmt2, _ := parser.Parse(`MERGE SAME (:User{id:cid})-[:ORDERED]->(:Product{id:pid})`)
	if _, err := NewEngine(Config{Dialect: DialectRevised}).ExecuteWithTable(g2, stmt2, nil, fixtures.Example5Table()); err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != 4 || g2.NumRels() != 4 {
		t.Errorf("MERGE SAME: %d/%d, want 4/4 (Figure 7c)", g2.NumNodes(), g2.NumRels())
	}
}

// ---------------------------------------------------------------------
// Example 6 / Figure 8: Weak Collapse keeps two copies of User 98
// (different pattern positions); Collapse and Strong Collapse merge them.
// ---------------------------------------------------------------------

const example6Query = `
	MERGE ALL (:User{id:bid})-[:ORDERED]->(:Product{id:pid})<-[:OFFERS]-(:User{id:sid})`

func TestExample6Figure8(t *testing.T) {
	cases := []struct {
		strategy    MergeStrategy
		nodes, rels int
		figure      string
	}{
		{StrategyAtomic, 6, 4, "8a"},
		{StrategyGrouping, 6, 4, "8a"},
		{StrategyWeakCollapse, 6, 4, "8a"},
		{StrategyCollapse, 5, 4, "8b"},
		{StrategyStrongCollapse, 5, 4, "8b"},
	}
	for _, c := range cases {
		g := graph.New()
		stmt, err := parser.Parse(example6Query)
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{Dialect: DialectRevised, MergeStrategy: c.strategy}
		if _, err := NewEngine(cfg).ExecuteWithTable(g, stmt, nil, fixtures.Example6Table()); err != nil {
			t.Fatal(err)
		}
		if g.NumNodes() != c.nodes || g.NumRels() != c.rels {
			t.Errorf("%v (Figure %s): %d nodes / %d rels, want %d / %d",
				c.strategy, c.figure, g.NumNodes(), g.NumRels(), c.nodes, c.rels)
		}
	}
}

// ---------------------------------------------------------------------
// Example 7 / Figure 9: the clickstream path. Collapse keeps both
// p1->p2 :TO relationships (different positions, Figure 9a, 5 rels);
// Strong Collapse merges them (Figure 9b, 4 rels). Re-matching the
// pattern after Strong Collapse fails under relationship isomorphism but
// succeeds under homomorphism.
// ---------------------------------------------------------------------

const example7Query = `
	MERGE ALL (a)-[:TO]->(b)-[:TO]->(c)-[:TO]->(d)-[:TO]->(e)-[:BOUGHT]->(tgt)`

func runExample7(t *testing.T, strategy MergeStrategy) *graph.Graph {
	t.Helper()
	g, tbl, _ := fixtures.Example7()
	stmt, err := parser.Parse(example7Query)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Dialect: DialectRevised, MergeStrategy: strategy}
	if _, err := NewEngine(cfg).ExecuteWithTable(g, stmt, nil, tbl); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestExample7Figure9(t *testing.T) {
	collapse := runExample7(t, StrategyCollapse)
	if collapse.NumRels() != 5 {
		t.Errorf("Collapse (Figure 9a): %d rels, want 5", collapse.NumRels())
	}
	strong := runExample7(t, StrategyStrongCollapse)
	if strong.NumRels() != 4 {
		t.Errorf("Strong Collapse (Figure 9b): %d rels, want 4", strong.NumRels())
	}
	if collapse.NumNodes() != 4 || strong.NumNodes() != 4 {
		t.Error("no new nodes should be created (all endpoints bound)")
	}
}

func TestExample7RematchIsoVsHomomorphism(t *testing.T) {
	strong := runExample7(t, StrategyStrongCollapse)
	rematch := `
		MATCH (a)-[:TO]->(b)-[:TO]->(c)-[:TO]->(d)-[:TO]->(e)-[:BOUGHT]->(tgt)
		RETURN a`
	stmt, err := parser.Parse(rematch)
	if err != nil {
		t.Fatal(err)
	}
	// Isomorphism (Cypher default): no matches after Strong Collapse.
	res, err := NewEngine(Config{Dialect: DialectRevised}).ExecuteStatement(strong, stmt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.Len() != 0 {
		t.Errorf("isomorphic re-match found %d rows, want 0", res.Table.Len())
	}
	// Homomorphism: the pattern is matchable again.
	res, err = NewEngine(Config{Dialect: DialectRevised, MatchMode: match.Homomorphism}).ExecuteStatement(strong, stmt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.Len() == 0 {
		t.Error("homomorphic re-match should succeed")
	}
}

// ---------------------------------------------------------------------
// Determinism (Section 8): the revised semantics yields the same graph
// up to id renaming for every permutation of the driving table; the
// output of MERGE ALL is T_match ⊎ T_create.
// ---------------------------------------------------------------------

func TestRevisedMergeOrderIndependence(t *testing.T) {
	for _, strategy := range []MergeStrategy{
		StrategyAtomic, StrategyGrouping, StrategyWeakCollapse,
		StrategyCollapse, StrategyStrongCollapse,
	} {
		var ref *graph.Graph
		perms := [][]int{{0, 1, 2, 3, 4, 5}, {5, 4, 3, 2, 1, 0}, {2, 0, 5, 1, 4, 3}}
		for _, perm := range perms {
			g := graph.New()
			tbl := fixtures.Example5Table()
			tbl.Permute(perm)
			stmt, _ := parser.Parse(example5Query)
			cfg := Config{Dialect: DialectRevised, MergeStrategy: strategy}
			if _, err := NewEngine(cfg).ExecuteWithTable(g, stmt, nil, tbl); err != nil {
				t.Fatal(err)
			}
			if ref == nil {
				ref = g
				continue
			}
			if !graph.Isomorphic(ref, g) {
				t.Errorf("%v: permutation %v yields a different graph", strategy, perm)
			}
		}
	}
}

func TestMergeAllOutputTable(t *testing.T) {
	// Pre-create User 98 ordering Product 125 so the first two records
	// match and the rest create.
	g := graph.New()
	u := g.CreateNode([]string{"User"}, value.Map{"id": value.Int(98)})
	p := g.CreateNode([]string{"Product"}, value.Map{"id": value.Int(125)})
	if _, err := g.CreateRel(u.ID, p.ID, "ORDERED", nil); err != nil {
		t.Fatal(err)
	}
	stmt, _ := parser.Parse(`MERGE ALL (x:User{id:cid})-[:ORDERED]->(y:Product{id:pid}) RETURN cid, pid, x, y`)
	res, err := NewEngine(Config{Dialect: DialectRevised}).ExecuteWithTable(g, stmt, nil, fixtures.Example5Table())
	if err != nil {
		t.Fatal(err)
	}
	// T_match has 2 rows (records 1-2 match), T_create has 4: 6 total.
	if res.Table.Len() != 6 {
		t.Errorf("output rows = %d, want 6 (T_match ⊎ T_create)", res.Table.Len())
	}
	// 4 failing records create 4 instances: 8 new nodes + 4 rels.
	if res.Stats.NodesCreated != 8 || res.Stats.RelsCreated != 4 {
		t.Errorf("stats = %+v", res.Stats)
	}
}

// Legacy MERGE matching still extends the table with all matches.
func TestLegacyMergeBindsMatches(t *testing.T) {
	g, _ := fixtures.Figure1()
	res := run(t, DialectCypher9, g, `
		MATCH (p:Product{name:'laptop'})
		MERGE (p)<-[:OFFERS]-(v:Vendor)
		RETURN v`)
	if res.Table.Len() != 1 {
		t.Fatalf("rows = %d", res.Table.Len())
	}
	if res.Stats.NodesCreated != 0 {
		t.Error("existing pattern must not create")
	}
}

func TestLegacyMergeOnCreateOnMatch(t *testing.T) {
	g := graph.New()
	run(t, DialectCypher9, g, `
		MERGE (n:Counter{id:1})
		ON CREATE SET n.hits = 1
		ON MATCH SET n.hits = n.hits + 1`)
	id := g.NodeIDsByLabel("Counter")[0]
	if g.Node(id).Props["hits"] != value.Int(1) {
		t.Errorf("after create: hits = %v", g.Node(id).Props["hits"])
	}
	run(t, DialectCypher9, g, `
		MERGE (n:Counter{id:1})
		ON CREATE SET n.hits = 1
		ON MATCH SET n.hits = n.hits + 1`)
	if g.Node(id).Props["hits"] != value.Int(2) {
		t.Errorf("after match: hits = %v", g.Node(id).Props["hits"])
	}
}

// Undirected legacy MERGE matches either direction but creates left to
// right (Section 7 notes the revised syntax drops this).
func TestLegacyMergeUndirected(t *testing.T) {
	g := graph.New()
	a := g.CreateNode([]string{"A"}, nil)
	b := g.CreateNode([]string{"B"}, nil)
	if _, err := g.CreateRel(b.ID, a.ID, "T", nil); err != nil {
		t.Fatal(err)
	}
	// The b->a relationship satisfies the undirected pattern: no create.
	res := run(t, DialectCypher9, g, `
		MATCH (x:A), (y:B)
		MERGE (x)-[:T]-(y)`)
	if res.Stats.RelsCreated != 0 {
		t.Errorf("undirected merge should match either direction: %+v", res.Stats)
	}
}

func TestMergeTableDrivenGrouping(t *testing.T) {
	// Grouping binds all records of a group to the same created entities.
	g := graph.New()
	tbl := table.New("k")
	tbl.AppendRow(value.Int(7))
	tbl.AppendRow(value.Int(7))
	stmt, _ := parser.Parse(`MERGE ALL (n:N{id:k}) RETURN n`)
	cfg := Config{Dialect: DialectRevised, MergeStrategy: StrategyGrouping}
	res, err := NewEngine(cfg).ExecuteWithTable(g, stmt, nil, tbl)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 1 {
		t.Fatalf("nodes = %d, want 1", g.NumNodes())
	}
	if res.Table.Len() != 2 {
		t.Fatalf("rows = %d, want 2", res.Table.Len())
	}
	if res.Table.Get(0, "n") != res.Table.Get(1, "n") {
		t.Error("both records must bind the same created node")
	}
}
