package core

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/graph"
	"repro/internal/plan"
	"repro/internal/table"
	"repro/internal/value"
)

// Session executes statements against a graph.Store with transactional
// semantics. Every statement runs inside a transaction:
//
//   - By default each statement is its own implicit transaction
//     (auto-commit): an updating statement acquires the store's writer
//     baton, runs under a journal, and commits (or rolls back) at the
//     statement boundary — observably identical to the pre-session
//     engine, including the commit-time dangling-relationship check. A
//     read-only statement instead pins the latest committed snapshot
//     and streams from it with no lock held, so any number of sessions
//     read concurrently while a writer works.
//
//   - BEGIN opens an explicit transaction: the session holds the writer
//     baton until COMMIT publishes a new epoch or ROLLBACK discards the
//     transaction. Statements inside the transaction (reads included)
//     run against the transaction's working graph and see its
//     uncommitted writes; other sessions keep reading the last
//     committed epoch. A failing statement inside the transaction is
//     rolled back to its own start (the journal mark), leaving the
//     transaction open with its earlier statements intact — the
//     statement-level atomicity of the paper, nested in the
//     transaction-level atomicity of the store.
//
// A Session is not safe for concurrent use by multiple goroutines; use
// one session per goroutine (sessions of the same store coordinate
// through the store's locks).
type Session struct {
	e     *Engine
	store *graph.Store
	txn   *Txn // non-nil while an explicit transaction is open
}

// NewSession returns a session executing on store with e's semantics.
func NewSession(e *Engine, store *graph.Store) *Session {
	return &Session{e: e, store: store}
}

// Engine returns the engine the session executes with.
func (s *Session) Engine() *Engine { return s.e }

// Parse parses query through the engine's shared statement cache, so
// every session of one engine receives the same AST for the same text.
func (s *Session) Parse(query string) (*ast.Statement, error) { return s.e.Parse(query) }

// Txn is an open explicit transaction: the store's write transaction
// (working graph + spanning journal) plus the session-level bookkeeping.
type Txn struct {
	w *graph.WriteTxn
	// stats accumulates the update counts of the transaction's
	// statements, reported by Commit.
	stats UpdateStats
}

// InTransaction reports whether an explicit transaction is open.
func (s *Session) InTransaction() bool { return s.txn != nil }

// Execute runs one statement — a query or BEGIN/COMMIT/ROLLBACK —
// inside the session's current transaction context.
func (s *Session) Execute(stmt *ast.Statement, params map[string]value.Value) (*Result, error) {
	return s.ExecuteWithTable(stmt, params, nil)
}

// ExecuteWithTable is Execute with an explicit initial driving table
// (nil means the unit table).
func (s *Session) ExecuteWithTable(stmt *ast.Statement, params map[string]value.Value, t0 *table.Table) (*Result, error) {
	if stmt.TxnControl != ast.TxnNone {
		return s.executeTxnControl(stmt.TxnControl)
	}
	if !s.e.cfg.SkipValidation {
		if err := Validate(stmt, s.e.cfg.Dialect); err != nil {
			return nil, err
		}
	}
	if params == nil {
		params = map[string]value.Value{}
	}
	if s.txn != nil {
		return s.executeInTxn(stmt, params, t0)
	}
	if !stmt.Updating() {
		return s.executeReadOnly(stmt, params, t0)
	}
	return s.executeAutoCommit(stmt, params, t0)
}

// executeTxnControl handles BEGIN/COMMIT/ROLLBACK. The result of each
// is an empty table; COMMIT reports the transaction's accumulated
// update statistics.
func (s *Session) executeTxnControl(ctl ast.TxnControl) (*Result, error) {
	empty := &Result{Table: table.New()}
	switch ctl {
	case ast.TxnBegin:
		if s.txn != nil {
			return nil, fmt.Errorf("BEGIN: a transaction is already open (COMMIT or ROLLBACK it first)")
		}
		// Acquiring the writer baton up front makes the transaction a
		// writer transaction for its whole lifetime: the simplest
		// serialization that still lets every other session read the
		// last committed epoch concurrently. The isolated (always-clone)
		// variant keeps readers unblocked for however long the
		// transaction stays open.
		s.txn = &Txn{w: s.store.BeginWriteIsolated()}
		return empty, nil
	case ast.TxnCommit:
		if s.txn == nil {
			return nil, fmt.Errorf("COMMIT: no open transaction")
		}
		empty.Stats = s.txn.stats
		_, err := s.txn.w.Commit()
		s.txn = nil
		if err != nil {
			// The transaction is published in memory but did not reach
			// the write-ahead log; surface that as the COMMIT's error.
			return nil, fmt.Errorf("COMMIT: %w", err)
		}
		return empty, nil
	case ast.TxnRollback:
		if s.txn == nil {
			return nil, fmt.Errorf("ROLLBACK: no open transaction")
		}
		s.txn.w.Rollback()
		s.txn = nil
		return empty, nil
	default:
		return nil, fmt.Errorf("unknown transaction control statement")
	}
}

// executeInTxn runs one statement of an open explicit transaction
// against the transaction's working graph. Errors roll back to the
// statement's journal mark; the transaction stays open.
func (s *Session) executeInTxn(stmt *ast.Statement, params map[string]value.Value, t0 *table.Table) (*Result, error) {
	g, j := s.txn.w.Graph(), s.txn.w.Journal()
	mark := j.Mark()
	// Explicit-transaction pipelines run serially (degree 1): the
	// transaction's working graph is private to this session but the
	// single-writer baton and journal discipline stay untouched.
	res, err := s.e.executeUnionPar(g, stmt, params, t0, 1)
	if err == nil {
		err = statementInvariant(g)
	}
	if err != nil {
		j.RollbackTo(mark)
		return nil, err
	}
	s.txn.stats.Add(res.Stats)
	return res, nil
}

// executeReadOnly streams a statement with no updating clauses from a
// pinned snapshot: no journal, no writer lock, fully concurrent with
// other readers and with a writer preparing the next epoch.
func (s *Session) executeReadOnly(stmt *ast.Statement, params map[string]value.Value, t0 *table.Table) (*Result, error) {
	snap := s.store.Acquire()
	defer snap.Release()
	return s.e.executeUnion(snap.Graph(), stmt, params, t0)
}

// executeAutoCommit wraps one updating statement in an implicit write
// transaction: begin, execute under the journal, enforce the
// statement-boundary invariant, commit (or roll back on error).
func (s *Session) executeAutoCommit(stmt *ast.Statement, params map[string]value.Value, t0 *table.Table) (*Result, error) {
	w := s.store.BeginWrite()
	res, err := s.e.executeUnion(w.Graph(), stmt, params, t0)
	if err == nil {
		err = statementInvariant(w.Graph())
	}
	if err != nil {
		w.Rollback()
		return nil, err
	}
	if _, err := w.Commit(); err != nil {
		// Executed and published in memory, but not durably logged.
		return nil, err
	}
	return res, nil
}

// Begin opens an explicit transaction (the programmatic BEGIN).
func (s *Session) Begin() error {
	_, err := s.executeTxnControl(ast.TxnBegin)
	return err
}

// Commit publishes the open transaction and returns its accumulated
// update statistics (the programmatic COMMIT).
func (s *Session) Commit() (UpdateStats, error) {
	res, err := s.executeTxnControl(ast.TxnCommit)
	if err != nil {
		return UpdateStats{}, err
	}
	return res.Stats, nil
}

// Rollback discards the open transaction (the programmatic ROLLBACK).
func (s *Session) Rollback() error {
	_, err := s.executeTxnControl(ast.TxnRollback)
	return err
}

// Explain renders the statement's plan with its transaction boundaries
// (see Engine.ExplainStatement) against the graph the statement would
// run on: the open transaction's working graph, or the latest committed
// snapshot.
func (s *Session) Explain(stmt *ast.Statement, params map[string]value.Value) (string, error) {
	if s.txn != nil {
		return s.e.explainStatement(s.txn.w.Graph(), stmt, params, true)
	}
	snap := s.store.Acquire()
	defer snap.Release()
	return s.e.explainStatement(snap.Graph(), stmt, params, false)
}

// Profile executes the statement on the streaming executor and renders
// the operator tree annotated with its observed execution counters —
// per-operator rows and batches, and for barriers the peak accounted
// memory and spill-run count when a memory budget is in force. Unlike
// Explain it RUNS the statement: updates apply exactly as in Execute.
// Transaction control cannot be profiled (it has no operator plan).
func (s *Session) Profile(stmt *ast.Statement, params map[string]value.Value) (*Result, string, error) {
	if stmt.TxnControl != ast.TxnNone {
		return nil, "", fmt.Errorf("PROFILE: %s is transaction control — no operator plan", stmt.TxnControl)
	}
	// Run on a temporary engine copy that captures the executed plan
	// (chaining any existing hook) and never picks the plan-less
	// materializing executor.
	var root plan.Operator
	prof := *s.e
	prev := prof.cfg.onPlan
	prof.cfg.onPlan = func(op plan.Operator) {
		root = op
		if prev != nil {
			prev(op)
		}
	}
	if prof.cfg.Executor == ExecMaterializing {
		prof.cfg.Executor = ExecStreaming
	}
	saved := s.e
	s.e = &prof
	res, err := s.Execute(stmt, params)
	s.e = saved
	if err != nil {
		return nil, "", err
	}
	if root == nil {
		// Schema statements (CREATE/DROP INDEX) have no operator plan.
		return res, "(no operator plan)", nil
	}
	return res, plan.Explain(root), nil
}

// Stats summarizes the graph the session's next statement would see:
// the open transaction's working graph (own writes included), or the
// latest committed snapshot.
func (s *Session) Stats() graph.Stats {
	if s.txn != nil {
		return graph.ComputeStats(s.txn.w.Graph())
	}
	snap := s.store.Acquire()
	defer snap.Release()
	return graph.ComputeStats(snap.Graph())
}

// Indexes lists the property indexes the session's next statement would
// see: the open transaction's working graph (its own uncommitted
// CREATE/DROP INDEX statements included), or the latest committed
// snapshot.
func (s *Session) Indexes() []graph.IndexKey {
	if s.txn != nil {
		return s.txn.w.Graph().Indexes()
	}
	snap := s.store.Acquire()
	defer snap.Release()
	return snap.Graph().Indexes()
}

// Close rolls back any open transaction and invalidates the session.
func (s *Session) Close() {
	if s.txn != nil {
		s.txn.w.Rollback()
		s.txn = nil
	}
}
