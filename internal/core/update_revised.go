package core

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/expr"
	"repro/internal/graph"
	"repro/internal/table"
	"repro/internal/value"
)

// This file implements the revised update semantics of Section 7/8:
// every clause is two-phase. Phase one evaluates all expressions for all
// records against the *input* graph and accumulates the induced changes;
// phase two validates the accumulated set (conflicts, dangling
// relationships) and applies it atomically.

// execSetRevised implements the atomic SET: propchanges/labchanges are
// collected over the whole driving table, conflicting property writes
// abort the statement (Example 2), and the collected changes are applied
// in one step — so Example 1's swap reads both old values.
func (x *executor) execSetRevised(items []ast.SetItem, t *table.Table) (*table.Table, error) {
	cs := graph.NewChangeSet()
	for i := 0; i < t.Len(); i++ {
		env := expr.Env(t.Row(i))
		for _, item := range items {
			if err := x.collectSetItem(cs, item, env); err != nil {
				return nil, err
			}
		}
	}
	n := cs.Len()
	if err := cs.Apply(x.graph); err != nil {
		return nil, err
	}
	x.stats.PropsSet += n // approximate: counts label changes too
	return t, nil
}

// collectSetItem records the changes a single SET item induces for one
// record into the change set, evaluating all expressions against the
// input graph.
func (x *executor) collectSetItem(cs *graph.ChangeSet, item ast.SetItem, env expr.Env) error {
	switch it := item.(type) {
	case *ast.SetProp:
		target, err := x.ev.Eval(it.Target, env)
		if err != nil {
			return err
		}
		ref, ok, err := entityRef(target, "SET")
		if err != nil || !ok {
			return err
		}
		v, err := x.ev.Eval(it.Value, env)
		if err != nil {
			return err
		}
		return cs.SetProp(ref, it.Key, v)
	case *ast.SetAllProps:
		target, ok := env[it.Var]
		if !ok {
			return fmt.Errorf("variable `%s` not defined", it.Var)
		}
		ref, ok, err := entityRef(target, "SET")
		if err != nil || !ok {
			return err
		}
		v, err := x.ev.Eval(it.Value, env)
		if err != nil {
			return err
		}
		m, err := x.coerceToPropMap(v)
		if err != nil {
			return err
		}
		if !it.Add {
			existing, err := x.entityPropKeys(target)
			if err != nil {
				return err
			}
			for _, k := range existing {
				if _, keep := m[k]; !keep {
					if err := cs.SetProp(ref, k, value.NullValue); err != nil {
						return err
					}
				}
			}
		}
		for _, k := range m.Keys() {
			if err := cs.SetProp(ref, k, m[k]); err != nil {
				return err
			}
		}
		return nil
	case *ast.SetLabels:
		target, ok := env[it.Var]
		if !ok {
			return fmt.Errorf("variable `%s` not defined", it.Var)
		}
		if value.IsNull(target) {
			return nil
		}
		n, isNode := target.(value.Node)
		if !isNode {
			return fmt.Errorf("SET label target must be a node, got %s", target.Kind())
		}
		for _, l := range it.Labels {
			cs.AddLabel(graph.NodeID(n.ID), l)
		}
		return nil
	default:
		return fmt.Errorf("unsupported SET item %T", item)
	}
}

func (x *executor) coerceToPropMap(v value.Value) (value.Map, error) {
	switch e := v.(type) {
	case value.Map:
		return e, nil
	case value.Node:
		n := x.graph.Node(graph.NodeID(e.ID))
		if n == nil {
			return value.Map{}, nil
		}
		return n.PropMap(), nil
	case value.Rel:
		r := x.graph.Rel(graph.RelID(e.ID))
		if r == nil {
			return value.Map{}, nil
		}
		return r.PropMap(), nil
	default:
		return nil, fmt.Errorf("SET = / += expects a map, node or relationship, got %s", v.Kind())
	}
}

// entityRef converts a SET/REMOVE target value to an entity reference.
// ok=false (with nil error) means the target is null and the item is
// skipped, following SQL convention.
func entityRef(target value.Value, clause string) (graph.EntityRef, bool, error) {
	switch e := target.(type) {
	case value.Null:
		return graph.EntityRef{}, false, nil
	case value.Node:
		return graph.NodeRef(graph.NodeID(e.ID)), true, nil
	case value.Rel:
		return graph.RelRef(graph.RelID(e.ID)), true, nil
	default:
		return graph.EntityRef{}, false, fmt.Errorf("%s target must be a node or relationship, got %s", clause, target.Kind())
	}
}

// execRemoveRevised collects all removals and applies them atomically.
// Removals cannot conflict (Section 8.2), so no conflict errors arise
// from REMOVE alone.
func (x *executor) execRemoveRevised(cl *ast.RemoveClause, t *table.Table) (*table.Table, error) {
	cs := graph.NewChangeSet()
	for i := 0; i < t.Len(); i++ {
		env := expr.Env(t.Row(i))
		for _, item := range cl.Items {
			switch it := item.(type) {
			case *ast.RemoveProp:
				target, err := x.ev.Eval(it.Target, env)
				if err != nil {
					return nil, err
				}
				ref, ok, err := entityRef(target, "REMOVE")
				if err != nil {
					return nil, err
				}
				if !ok {
					continue
				}
				if err := cs.RemoveProp(ref, it.Key); err != nil {
					return nil, err
				}
			case *ast.RemoveLabels:
				target, ok := env[it.Var]
				if !ok {
					return nil, fmt.Errorf("variable `%s` not defined", it.Var)
				}
				if value.IsNull(target) {
					continue
				}
				n, isNode := target.(value.Node)
				if !isNode {
					return nil, fmt.Errorf("REMOVE label target must be a node, got %s", target.Kind())
				}
				for _, l := range it.Labels {
					cs.RemoveLabel(graph.NodeID(n.ID), l)
				}
			}
		}
	}
	n := cs.Len()
	if err := cs.Apply(x.graph); err != nil {
		return nil, err
	}
	x.stats.LabelsRemoved += n
	return t, nil
}

// execDeleteRevised implements the strict semantics of Section 7: all
// entities to delete are collected first; DETACH expands to attached
// relationships; plain DELETE errors if a dangling relationship would
// remain; everything is removed in one step, and every reference to a
// deleted entity in the driving table is replaced by null.
func (x *executor) execDeleteRevised(cl *ast.DeleteClause, t *table.Table) (*table.Table, error) {
	ds := graph.NewDeleteSet()
	for i := 0; i < t.Len(); i++ {
		env := expr.Env(t.Row(i))
		for _, e := range cl.Exprs {
			v, err := x.ev.Eval(e, env)
			if err != nil {
				return nil, err
			}
			if err := collectDelete(ds, v); err != nil {
				return nil, err
			}
		}
	}
	if cl.Detach {
		ds.Expand(x.graph)
	}
	if err := ds.Check(x.graph); err != nil {
		return nil, fmt.Errorf("DELETE would leave dangling relationships: %w (use DETACH DELETE)", err)
	}
	nodesBefore, relsBefore := x.graph.NumNodes(), x.graph.NumRels()
	if err := ds.Apply(x.graph); err != nil {
		return nil, err
	}
	x.stats.NodesDeleted += nodesBefore - x.graph.NumNodes()
	x.stats.RelsDeleted += relsBefore - x.graph.NumRels()

	// Null out references to deleted entities everywhere in the table.
	out := t.CloneEmpty()
	for i := 0; i < t.Len(); i++ {
		row := t.Values(i)
		for j, v := range row {
			row[j] = nullDeleted(v, ds)
		}
		out.AppendRow(row...)
	}
	return out, nil
}

func collectDelete(ds *graph.DeleteSet, v value.Value) error {
	switch e := v.(type) {
	case value.Null:
		return nil
	case value.Node:
		ds.AddNode(graph.NodeID(e.ID))
		return nil
	case value.Rel:
		ds.AddRel(graph.RelID(e.ID))
		return nil
	case value.Path:
		for _, rid := range e.Rels {
			ds.AddRel(graph.RelID(rid))
		}
		for _, nid := range e.Nodes {
			ds.AddNode(graph.NodeID(nid))
		}
		return nil
	default:
		return fmt.Errorf("DELETE expects nodes, relationships or paths, got %s", v.Kind())
	}
}

// nullDeleted replaces references to deleted entities by null, descending
// into lists, maps and paths (a path touching a deleted entity becomes
// null as a whole).
func nullDeleted(v value.Value, ds *graph.DeleteSet) value.Value {
	switch e := v.(type) {
	case value.Node:
		if ds.HasNode(graph.NodeID(e.ID)) {
			return value.NullValue
		}
	case value.Rel:
		if ds.HasRel(graph.RelID(e.ID)) {
			return value.NullValue
		}
	case value.Path:
		for _, nid := range e.Nodes {
			if ds.HasNode(graph.NodeID(nid)) {
				return value.NullValue
			}
		}
		for _, rid := range e.Rels {
			if ds.HasRel(graph.RelID(rid)) {
				return value.NullValue
			}
		}
	case value.List:
		out := make(value.List, len(e))
		for i, el := range e {
			out[i] = nullDeleted(el, ds)
		}
		return out
	case value.Map:
		out := make(value.Map, len(e))
		for k, el := range e {
			out[k] = nullDeleted(el, ds)
		}
		return out
	}
	return v
}
