package core

import (
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/parser"
	"repro/internal/plan"
	"repro/internal/value"
)

// parallelTestGraph builds a graph big enough to clear the morsel
// thresholds: n :U nodes (i, g properties) in a ring of :F
// relationships with chords every 7 nodes.
func parallelTestGraph(t testing.TB, n int) *graph.Graph {
	t.Helper()
	g := graph.New()
	nodes := make([]graph.NodeID, n)
	for i := 0; i < n; i++ {
		nd := g.CreateNode([]string{"U"}, value.Map{"i": value.Int(int64(i)), "g": value.Int(int64(i % 64))})
		nodes[i] = nd.ID
	}
	for i := 0; i < n; i++ {
		if _, err := g.CreateRel(nodes[i], nodes[(i+1)%n], "F", nil); err != nil {
			t.Fatal(err)
		}
		if i%7 == 0 {
			if _, err := g.CreateRel(nodes[i], nodes[(i+13)%n], "F", nil); err != nil {
				t.Fatal(err)
			}
		}
	}
	return g
}

// TestParallelExecutorEquivalence runs read pipelines at parallelism
// 1, 2 and 8 against the serial plan and requires BIT-IDENTICAL output
// — not just multiset equality — for every shape, ordered or not: the
// exchange gathers morsels in index order, so a parallel plan must
// emit exactly the serial row sequence. The sweep runs with and
// without a memory budget (the budgeted pass exercises the parallel
// Sort spill intake).
func TestParallelExecutorEquivalence(t *testing.T) {
	g := parallelTestGraph(t, 3000)
	queries := []struct {
		q            string
		wantExchange bool
	}{
		{`MATCH (u:U) WHERE u.i % 3 = 0 RETURN u.i AS i`, true},
		{`MATCH (u:U) WITH u.i AS i WHERE i % 3 = 0 RETURN i % 7 AS r, i ORDER BY r, i DESC`, true},
		{`MATCH (u:U) RETURN u.g AS g, count(*) AS c, collect(u.i)[0] AS first`, true},
		{`MATCH (u:U) WHERE u.i < 500 RETURN DISTINCT u.g AS g`, true},
		{`MATCH (u:U) RETURN u.i AS i SKIP 10 LIMIT 7`, true},
		{`MATCH (u:U)-[:F]->(v:U) WHERE u.g = 3 RETURN u.i AS a, v.i AS b ORDER BY a, b`, true},
		{`MATCH (u:U) UNWIND [1, 2] AS k RETURN u.i + k AS v ORDER BY v LIMIT 11`, true},
		{`MATCH (u:U) OPTIONAL MATCH (u)-[:F]->(w:U) WHERE w.i = u.i + 1 RETURN u.i AS i, w.i AS wi ORDER BY i LIMIT 40`, true},
		{`MATCH (u:U) WHERE u.i < 64 MATCH (v:U) WHERE v.i = u.i + 1 RETURN u.i AS a, v.i AS b`, true},
		// Two unit-source union members, each its own exchange.
		{`MATCH (u:U) WHERE u.g = 1 RETURN u.i AS i UNION ALL MATCH (v:U) WHERE v.g = 2 RETURN v.i AS i`, true},
	}
	for _, budget := range []int64{0, 1 << 12} {
		for qi, tc := range queries {
			stmt, err := parser.Parse(tc.q)
			if err != nil {
				t.Fatalf("q%d parse: %v", qi, err)
			}
			var base string
			for _, par := range []int{1, 2, 8} {
				var root plan.Operator
				cfg := Config{Dialect: DialectRevised, Parallelism: par, MemoryBudget: budget}
				cfg.onPlan = func(op plan.Operator) { root = op }
				res, err := NewEngine(cfg).ExecuteStatement(g, stmt, nil)
				if err != nil {
					t.Fatalf("q%d par=%d budget=%d: %v", qi, par, budget, err)
				}
				out := res.Table.String()
				if par == 1 {
					base = out
					continue
				}
				if out != base {
					t.Errorf("q%d (%s) par=%d budget=%d output differs from serial:\n%s\n--- serial ---\n%s",
						qi, tc.q, par, budget, out, base)
				}
				rendered := plan.Explain(root)
				if tc.wantExchange && !strings.Contains(rendered, "Exchange(") {
					t.Errorf("q%d (%s) par=%d: plan has no exchange:\n%s", qi, tc.q, par, rendered)
				}
				if strings.Contains(rendered, "Exchange(") &&
					(!strings.Contains(rendered, "workers=") || !strings.Contains(rendered, "morsels=")) {
					t.Errorf("q%d par=%d: executed exchange lacks workers=/morsels= counters:\n%s", qi, par, rendered)
				}
			}
			if live := plan.SpillFilesLive(); live != 0 {
				t.Fatalf("q%d budget=%d: %d spill files still live", qi, budget, live)
			}
		}
	}
}

// TestParallelUpdatesStaySerial checks the gate: an updating statement
// never gets an exchange, whatever the configured parallelism.
func TestParallelUpdatesStaySerial(t *testing.T) {
	g := parallelTestGraph(t, 3000)
	stmt, err := parser.Parse(`MATCH (u:U) WHERE u.i % 2 = 0 SET u.g = u.g + 1 RETURN count(*) AS n`)
	if err != nil {
		t.Fatal(err)
	}
	var root plan.Operator
	cfg := Config{Dialect: DialectRevised, Parallelism: 8}
	cfg.onPlan = func(op plan.Operator) { root = op }
	if _, err := NewEngine(cfg).ExecuteStatement(g, stmt, nil); err != nil {
		t.Fatal(err)
	}
	if s := plan.Explain(root); strings.Contains(s, "Exchange(") {
		t.Fatalf("updating statement got a parallel plan:\n%s", s)
	}
}

// TestParallelErrorPropagation checks a runtime error inside a morsel
// surfaces as the statement error with the same message the serial run
// produces (morsels are claimed and gathered in index order, so the
// first error seen is the serial-first one), and that no spill files
// or workers leak afterwards.
func TestParallelErrorPropagation(t *testing.T) {
	g := parallelTestGraph(t, 3000)
	stmt, err := parser.Parse(`MATCH (u:U) RETURN 1 / (u.i - 2500) AS v`)
	if err != nil {
		t.Fatal(err)
	}
	serialErr := func() string {
		_, err := NewEngine(Config{Dialect: DialectRevised, Parallelism: 1}).ExecuteStatement(g, stmt, nil)
		if err == nil {
			t.Fatal("serial run: expected division error")
		}
		return err.Error()
	}()
	for _, par := range []int{2, 8} {
		_, err := NewEngine(Config{Dialect: DialectRevised, Parallelism: par}).ExecuteStatement(g, stmt, nil)
		if err == nil {
			t.Fatalf("par=%d: expected division error", par)
		}
		if err.Error() != serialErr {
			t.Errorf("par=%d error %q differs from serial %q", par, err.Error(), serialErr)
		}
	}
	if live := plan.SpillFilesLive(); live != 0 {
		t.Fatalf("%d spill files still live after error", live)
	}
}

// TestParallelCancellationDrainsWorkers exercises the two early-exit
// paths of an exchange under a spill-forcing budget: a LIMIT that
// abandons the pipeline mid-stream, and a runtime error mid-morsels.
// After each statement every worker goroutine must have drained and
// every spill temp file must be gone.
func TestParallelCancellationDrainsWorkers(t *testing.T) {
	g := parallelTestGraph(t, 3000)
	baseline := runtime.NumGoroutine()
	cases := []struct {
		q       string
		wantErr bool
	}{
		// LIMIT above the exchange: the gatherer stops pulling after 3
		// rows and Close cancels the in-flight morsels.
		{`MATCH (u:U) RETURN u.i AS i LIMIT 3`, false},
		// ORDER BY + LIMIT with a tiny budget: the parallel sort intake
		// spills per-worker runs; LIMIT abandons the merge early.
		{`MATCH (u:U) RETURN u.i AS i ORDER BY u.g, i LIMIT 5`, false},
		// Error mid-stream while workers are fanned out.
		{`MATCH (u:U) RETURN 1 / (u.i - 2900) AS v ORDER BY v`, true},
	}
	for ci, tc := range cases {
		stmt, err := parser.Parse(tc.q)
		if err != nil {
			t.Fatalf("case %d parse: %v", ci, err)
		}
		cfg := Config{Dialect: DialectRevised, Parallelism: 8, MemoryBudget: 1 << 10}
		_, err = NewEngine(cfg).ExecuteStatement(g, stmt, nil)
		if tc.wantErr && err == nil {
			t.Fatalf("case %d (%s): expected error", ci, tc.q)
		}
		if !tc.wantErr && err != nil {
			t.Fatalf("case %d (%s): %v", ci, tc.q, err)
		}
		if live := plan.SpillFilesLive(); live != 0 {
			t.Fatalf("case %d (%s): %d spill files still live", ci, tc.q, live)
		}
	}
	// Workers must drain: allow the runtime a moment to retire exited
	// goroutines, then require no residue beyond the baseline.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not drain: %d > baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestParallelExplainShowsExchange checks EXPLAIN (no execution)
// renders the exchange boundary with its configured degree and the
// morsel partitioning, without execution counters.
func TestParallelExplainShowsExchange(t *testing.T) {
	g := parallelTestGraph(t, 3000)
	eng := NewEngine(Config{Dialect: DialectRevised, Parallelism: 4})
	stmt, err := parser.Parse(`MATCH (u:U) WHERE u.g = 5 RETURN u.i AS i`)
	if err != nil {
		t.Fatal(err)
	}
	out, err := eng.ExplainStatement(g, stmt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Exchange(workers=4") {
		t.Fatalf("EXPLAIN lacks exchange boundary:\n%s", out)
	}
	if !strings.Contains(out, "anchor-morsels(") {
		t.Fatalf("EXPLAIN lacks morsel partitioning:\n%s", out)
	}
	if strings.Contains(out, "morsels=") && strings.Contains(out, "{rows=") {
		t.Fatalf("EXPLAIN of an unexecuted plan shows execution counters:\n%s", out)
	}
}
