package core

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/expr"
	"repro/internal/graph"
	"repro/internal/table"
	"repro/internal/value"
)

// execCreate implements CREATE for both dialects (Section 8.2): per
// record, unnamed pattern entities are saturated with temporary
// variables, nodes are created, then relationships; new bindings for
// *named* variables extend the driving table, while saturation
// temporaries are projected out (they simply never receive columns).
//
// CREATE behaves identically in both dialects because it never reads the
// pattern against the graph; each record creates fresh instances.
func (x *executor) execCreate(cl *ast.CreateClause, t *table.Table) (*table.Table, error) {
	newVars := freshVarsForCreate(cl.Pattern, t)
	out := table.New(append(t.Columns(), newVars...)...)
	for _, i := range x.rowOrder(t) {
		env := expr.Env(t.Row(i))
		env2, err := x.createInstance(cl.Pattern, env, false)
		if err != nil {
			return nil, err
		}
		out.AppendMap(env2)
	}
	return out, nil
}

// freshVarsForCreate lists the named variables a CREATE/MERGE pattern
// introduces beyond the existing columns.
func freshVarsForCreate(parts []*ast.PatternPart, t *table.Table) []string {
	var out []string
	seen := make(map[string]bool)
	add := func(name string) {
		if name != "" && !seen[name] && !t.HasColumn(name) {
			seen[name] = true
			out = append(out, name)
		}
	}
	for _, part := range parts {
		add(part.Var)
		for i, n := range part.Nodes {
			add(n.Var)
			if i < len(part.Rels) {
				add(part.Rels[i].Var)
			}
		}
	}
	return out
}

// createdEntity records one entity created by createInstanceTracked,
// together with its pattern position (part index plus node- or rel-slot
// index). Positions are what the Weak Collapse and Collapse strategies
// of Section 6 condition on.
type createdEntity struct {
	isNode bool
	nodeID graph.NodeID
	relID  graph.RelID
	part   int
	slot   int
}

// createInstance creates one instance of the pattern tuple for the given
// environment, returning the environment extended with the new bindings.
// When reuseBound is false, a bound node variable is reused as an
// endpoint only if its pattern carries no labels or properties (Cypher's
// rule for CREATE); MERGE creation passes reuseBound=true for the same
// behaviour (bound variables always anchor).
func (x *executor) createInstance(parts []*ast.PatternPart, env expr.Env, reuseBound bool) (expr.Env, error) {
	env2, _, err := x.createInstanceTracked(parts, env, reuseBound)
	return env2, err
}

// createInstanceTracked is createInstance with position tracking of the
// newly created entities, used by the MERGE collapse strategies.
func (x *executor) createInstanceTracked(parts []*ast.PatternPart, env expr.Env, reuseBound bool) (expr.Env, []createdEntity, error) {
	var created []createdEntity
	out := make(expr.Env, len(env)+4)
	for k, v := range env {
		out[k] = v
	}
	for partIdx, part := range parts {
		var pathNodes []int64
		var pathRels []int64

		resolveNode := func(np *ast.NodePattern, slot int) (graph.NodeID, error) {
			if np.Var != "" {
				if bound, ok := out[np.Var]; ok {
					nv, isNode := bound.(value.Node)
					if !isNode {
						if value.IsNull(bound) {
							return 0, fmt.Errorf("cannot create a relationship with a null endpoint (variable `%s`)", np.Var)
						}
						return 0, fmt.Errorf("variable `%s` is bound to %s, expected Node", np.Var, bound.Kind())
					}
					if !reuseBound && (len(np.Labels) > 0 || np.Props != nil) {
						return 0, fmt.Errorf("variable `%s` already declared; CREATE cannot add labels or properties to it", np.Var)
					}
					return graph.NodeID(nv.ID), nil
				}
			}
			props, err := x.ev.EvalPropMap(np.Props, out)
			if err != nil {
				return 0, err
			}
			n := x.graph.CreateNode(np.Labels, props)
			x.stats.NodesCreated++
			created = append(created, createdEntity{isNode: true, nodeID: n.ID, part: partIdx, slot: slot})
			if np.Var != "" {
				out[np.Var] = value.Node{ID: int64(n.ID)}
			}
			return n.ID, nil
		}

		prev, err := resolveNode(part.Nodes[0], 0)
		if err != nil {
			return nil, nil, err
		}
		pathNodes = append(pathNodes, int64(prev))
		for ri, rp := range part.Rels {
			next, err := resolveNode(part.Nodes[ri+1], ri+1)
			if err != nil {
				return nil, nil, err
			}
			src, tgt := prev, next
			// An undirected relationship (legal only in legacy MERGE
			// patterns) is created left to right.
			if rp.Direction == ast.DirIn {
				src, tgt = next, prev
			}
			props, err := x.ev.EvalPropMap(rp.Props, out)
			if err != nil {
				return nil, nil, err
			}
			r, err := x.graph.CreateRel(src, tgt, rp.Types[0], props)
			if err != nil {
				return nil, nil, err
			}
			x.stats.RelsCreated++
			created = append(created, createdEntity{isNode: false, relID: r.ID, part: partIdx, slot: ri})
			if rp.Var != "" {
				if _, bound := out[rp.Var]; bound {
					return nil, nil, fmt.Errorf("relationship variable `%s` already declared", rp.Var)
				}
				out[rp.Var] = value.Rel{ID: int64(r.ID)}
			}
			pathNodes = append(pathNodes, int64(next))
			pathRels = append(pathRels, int64(r.ID))
			prev = next
		}
		if part.Var != "" {
			if _, bound := env[part.Var]; bound {
				return nil, nil, fmt.Errorf("path variable `%s` already declared", part.Var)
			}
			out[part.Var] = value.Path{Nodes: pathNodes, Rels: pathRels}
		}
	}
	return out, created, nil
}
