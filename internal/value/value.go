// Package value implements the Cypher value system used throughout the
// interpreter: null, booleans, 64-bit integers, 64-bit floats, strings,
// lists, maps, and references to graph entities (nodes, relationships,
// paths).
//
// The package distinguishes the three comparison regimes of Cypher, which
// the paper relies on:
//
//   - equality ("="), which follows SQL-style ternary logic where null
//     propagates (see Equal);
//   - equivalence, a reflexive total relation used by DISTINCT, grouping,
//     and the collapsing relations of MERGE SAME, where null is equivalent
//     to null (see Equivalent and Key);
//   - orderability, a total order over all values used by ORDER BY
//     (see Compare).
package value

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Kind identifies the dynamic type of a Value.
type Kind int

// The kinds of values, in global orderability rank order (see Compare).
const (
	KindMap Kind = iota
	KindNode
	KindRel
	KindList
	KindPath
	KindString
	KindBool
	KindInt
	KindFloat
	KindNull
)

// String returns the Cypher type name of the kind.
func (k Kind) String() string {
	switch k {
	case KindMap:
		return "Map"
	case KindNode:
		return "Node"
	case KindRel:
		return "Relationship"
	case KindList:
		return "List"
	case KindPath:
		return "Path"
	case KindString:
		return "String"
	case KindBool:
		return "Boolean"
	case KindInt:
		return "Integer"
	case KindFloat:
		return "Float"
	case KindNull:
		return "Null"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Value is a Cypher runtime value.
type Value interface {
	// Kind reports the dynamic type of the value.
	Kind() Kind
	// String renders the value in Cypher literal-like notation.
	String() string
}

// Null is the SQL-style null value. The zero Null is ready to use; the
// package-level NullValue is the canonical instance.
type Null struct{}

// NullValue is the canonical null.
var NullValue = Null{}

// Kind implements Value.
func (Null) Kind() Kind { return KindNull }

// String implements Value.
func (Null) String() string { return "null" }

// Bool is a Cypher boolean.
type Bool bool

// Kind implements Value.
func (Bool) Kind() Kind { return KindBool }

// String implements Value.
func (b Bool) String() string {
	if b {
		return "true"
	}
	return "false"
}

// Int is a Cypher 64-bit integer.
type Int int64

// Kind implements Value.
func (Int) Kind() Kind { return KindInt }

// String implements Value.
func (i Int) String() string { return strconv.FormatInt(int64(i), 10) }

// Float is a Cypher 64-bit float.
type Float float64

// Kind implements Value.
func (Float) Kind() Kind { return KindFloat }

// String implements Value.
func (f Float) String() string {
	if math.IsInf(float64(f), 1) {
		return "Infinity"
	}
	if math.IsInf(float64(f), -1) {
		return "-Infinity"
	}
	if math.IsNaN(float64(f)) {
		return "NaN"
	}
	s := strconv.FormatFloat(float64(f), 'g', -1, 64)
	// Ensure floats always render distinguishably from integers.
	if !strings.ContainsAny(s, ".eE") {
		s += ".0"
	}
	return s
}

// String is a Cypher string.
type String string

// Kind implements Value.
func (String) Kind() Kind { return KindString }

// String implements Value.
func (s String) String() string { return "'" + strings.ReplaceAll(string(s), "'", "\\'") + "'" }

// List is a Cypher list. Lists are heterogeneous and may contain nulls.
type List []Value

// Kind implements Value.
func (List) Kind() Kind { return KindList }

// String implements Value.
func (l List) String() string {
	parts := make([]string, len(l))
	for i, v := range l {
		parts[i] = v.String()
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

// Map is a Cypher map with string keys. A key mapped to null is treated as
// absent by the property-setting machinery; Map values themselves may hold
// nulls transiently (e.g. results of projections).
type Map map[string]Value

// Kind implements Value.
func (Map) Kind() Kind { return KindMap }

// String implements Value.
func (m Map) String() string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + ": " + m[k].String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// Keys returns the map's keys in sorted order.
func (m Map) Keys() []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Node is a reference to a graph node by id. Property and label access go
// through the graph the expression evaluator carries.
type Node struct {
	ID int64
}

// Kind implements Value.
func (Node) Kind() Kind { return KindNode }

// String implements Value.
func (n Node) String() string { return fmt.Sprintf("Node(%d)", n.ID) }

// Rel is a reference to a graph relationship by id.
type Rel struct {
	ID int64
}

// Kind implements Value.
func (Rel) Kind() Kind { return KindRel }

// String implements Value.
func (r Rel) String() string { return fmt.Sprintf("Rel(%d)", r.ID) }

// Path is an alternating sequence of node and relationship ids,
// beginning and ending with a node: n0 r0 n1 r1 ... n_k.
type Path struct {
	Nodes []int64 // len(Nodes) == len(Rels)+1
	Rels  []int64
}

// Kind implements Value.
func (Path) Kind() Kind { return KindPath }

// String implements Value.
func (p Path) String() string {
	var b strings.Builder
	b.WriteString("Path(")
	for i, n := range p.Nodes {
		if i > 0 {
			fmt.Fprintf(&b, "-[%d]-", p.Rels[i-1])
		}
		fmt.Fprintf(&b, "(%d)", n)
	}
	b.WriteString(")")
	return b.String()
}

// Len reports the number of relationships in the path.
func (p Path) Len() int { return len(p.Rels) }

// IsNull reports whether v is the null value (or a nil interface).
func IsNull(v Value) bool {
	if v == nil {
		return true
	}
	return v.Kind() == KindNull
}

// AsBool extracts a boolean; ok is false for any non-boolean value.
func AsBool(v Value) (b, ok bool) {
	bv, ok := v.(Bool)
	return bool(bv), ok
}

// AsInt extracts an integer; ok is false for any non-integer value.
func AsInt(v Value) (int64, bool) {
	iv, ok := v.(Int)
	return int64(iv), ok
}

// AsFloat extracts a numeric value as float64; ok is false for
// non-numeric values.
func AsFloat(v Value) (float64, bool) {
	switch x := v.(type) {
	case Int:
		return float64(x), true
	case Float:
		return float64(x), true
	}
	return 0, false
}

// AsString extracts a string; ok is false for any non-string value.
func AsString(v Value) (string, bool) {
	sv, ok := v.(String)
	return string(sv), ok
}

// AsList extracts a list; ok is false for any non-list value.
func AsList(v Value) (List, bool) {
	lv, ok := v.(List)
	return lv, ok
}

// AsMap extracts a map; ok is false for any non-map value.
func AsMap(v Value) (Map, bool) {
	mv, ok := v.(Map)
	return mv, ok
}

// IsNumber reports whether v is an Int or Float.
func IsNumber(v Value) bool {
	k := v.Kind()
	return k == KindInt || k == KindFloat
}

// FromGo converts a native Go value into a Value. Supported inputs:
// nil, bool, all int/uint widths, float32/64, string, []any,
// map[string]any, []string, []int, []int64, []float64, and Value itself.
// Unsupported types yield an error.
func FromGo(x any) (Value, error) {
	switch v := x.(type) {
	case nil:
		return NullValue, nil
	case Value:
		return v, nil
	case bool:
		return Bool(v), nil
	case int:
		return Int(v), nil
	case int8:
		return Int(v), nil
	case int16:
		return Int(v), nil
	case int32:
		return Int(v), nil
	case int64:
		return Int(v), nil
	case uint:
		return Int(v), nil
	case uint8:
		return Int(v), nil
	case uint16:
		return Int(v), nil
	case uint32:
		return Int(v), nil
	case uint64:
		if v > math.MaxInt64 {
			return nil, fmt.Errorf("value: uint64 %d overflows Cypher integer", v)
		}
		return Int(v), nil
	case float32:
		return Float(v), nil
	case float64:
		return Float(v), nil
	case string:
		return String(v), nil
	case []string:
		l := make(List, len(v))
		for i, e := range v {
			l[i] = String(e)
		}
		return l, nil
	case []int:
		l := make(List, len(v))
		for i, e := range v {
			l[i] = Int(e)
		}
		return l, nil
	case []int64:
		l := make(List, len(v))
		for i, e := range v {
			l[i] = Int(e)
		}
		return l, nil
	case []float64:
		l := make(List, len(v))
		for i, e := range v {
			l[i] = Float(e)
		}
		return l, nil
	case []any:
		l := make(List, len(v))
		for i, e := range v {
			ev, err := FromGo(e)
			if err != nil {
				return nil, err
			}
			l[i] = ev
		}
		return l, nil
	case map[string]any:
		m := make(Map, len(v))
		for k, e := range v {
			ev, err := FromGo(e)
			if err != nil {
				return nil, err
			}
			m[k] = ev
		}
		return m, nil
	default:
		return nil, fmt.Errorf("value: unsupported Go type %T", x)
	}
}

// ToGo converts a Value back into a plain Go value (inverse of FromGo for
// scalar, list and map kinds). Entity references convert to their ids.
func ToGo(v Value) any {
	switch x := v.(type) {
	case Null:
		return nil
	case Bool:
		return bool(x)
	case Int:
		return int64(x)
	case Float:
		return float64(x)
	case String:
		return string(x)
	case List:
		out := make([]any, len(x))
		for i, e := range x {
			out[i] = ToGo(e)
		}
		return out
	case Map:
		out := make(map[string]any, len(x))
		for k, e := range x {
			out[k] = ToGo(e)
		}
		return out
	case Node:
		return x.ID
	case Rel:
		return x.ID
	case Path:
		return x
	default:
		return nil
	}
}
