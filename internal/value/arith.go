package value

import (
	"fmt"
	"math"
)

// TypeError reports an operation applied to values of unsupported kinds.
type TypeError struct {
	Op   string
	A, B Value
}

// Error implements error.
func (e *TypeError) Error() string {
	if e.B == nil {
		return fmt.Sprintf("type error: cannot apply %s to %s", e.Op, e.A.Kind())
	}
	return fmt.Sprintf("type error: cannot apply %s to %s and %s", e.Op, e.A.Kind(), e.B.Kind())
}

// Add implements the Cypher "+" operator: numeric addition, string
// concatenation, and list concatenation/append/prepend. Null propagates.
func Add(a, b Value) (Value, error) {
	if IsNull(a) || IsNull(b) {
		return NullValue, nil
	}
	if ai, ok := a.(Int); ok {
		if bi, ok := b.(Int); ok {
			return Int(int64(ai) + int64(bi)), nil
		}
	}
	if IsNumber(a) && IsNumber(b) {
		af, _ := AsFloat(a)
		bf, _ := AsFloat(b)
		return Float(af + bf), nil
	}
	if as, ok := a.(String); ok {
		if bs, ok := b.(String); ok {
			return as + bs, nil
		}
	}
	if al, ok := a.(List); ok {
		if bl, ok := b.(List); ok {
			out := make(List, 0, len(al)+len(bl))
			out = append(out, al...)
			out = append(out, bl...)
			return out, nil
		}
		out := make(List, 0, len(al)+1)
		out = append(out, al...)
		out = append(out, b)
		return out, nil
	}
	if bl, ok := b.(List); ok {
		out := make(List, 0, len(bl)+1)
		out = append(out, a)
		out = append(out, bl...)
		return out, nil
	}
	return nil, &TypeError{Op: "+", A: a, B: b}
}

// Sub implements numeric subtraction. Null propagates.
func Sub(a, b Value) (Value, error) {
	if IsNull(a) || IsNull(b) {
		return NullValue, nil
	}
	if ai, ok := a.(Int); ok {
		if bi, ok := b.(Int); ok {
			return Int(int64(ai) - int64(bi)), nil
		}
	}
	if IsNumber(a) && IsNumber(b) {
		af, _ := AsFloat(a)
		bf, _ := AsFloat(b)
		return Float(af - bf), nil
	}
	return nil, &TypeError{Op: "-", A: a, B: b}
}

// Mul implements numeric multiplication. Null propagates.
func Mul(a, b Value) (Value, error) {
	if IsNull(a) || IsNull(b) {
		return NullValue, nil
	}
	if ai, ok := a.(Int); ok {
		if bi, ok := b.(Int); ok {
			return Int(int64(ai) * int64(bi)), nil
		}
	}
	if IsNumber(a) && IsNumber(b) {
		af, _ := AsFloat(a)
		bf, _ := AsFloat(b)
		return Float(af * bf), nil
	}
	return nil, &TypeError{Op: "*", A: a, B: b}
}

// Div implements Cypher division: integer division truncates; division of
// an integer by integer zero is an error; float division by zero follows
// IEEE 754. Null propagates.
func Div(a, b Value) (Value, error) {
	if IsNull(a) || IsNull(b) {
		return NullValue, nil
	}
	if ai, ok := a.(Int); ok {
		if bi, ok := b.(Int); ok {
			if bi == 0 {
				return nil, fmt.Errorf("division by zero")
			}
			return Int(int64(ai) / int64(bi)), nil
		}
	}
	if IsNumber(a) && IsNumber(b) {
		af, _ := AsFloat(a)
		bf, _ := AsFloat(b)
		return Float(af / bf), nil
	}
	return nil, &TypeError{Op: "/", A: a, B: b}
}

// Mod implements the Cypher "%" operator. Null propagates.
func Mod(a, b Value) (Value, error) {
	if IsNull(a) || IsNull(b) {
		return NullValue, nil
	}
	if ai, ok := a.(Int); ok {
		if bi, ok := b.(Int); ok {
			if bi == 0 {
				return nil, fmt.Errorf("modulo by zero")
			}
			return Int(int64(ai) % int64(bi)), nil
		}
	}
	if IsNumber(a) && IsNumber(b) {
		af, _ := AsFloat(a)
		bf, _ := AsFloat(b)
		return Float(math.Mod(af, bf)), nil
	}
	return nil, &TypeError{Op: "%", A: a, B: b}
}

// Pow implements the Cypher "^" operator; the result is always a float.
// Null propagates.
func Pow(a, b Value) (Value, error) {
	if IsNull(a) || IsNull(b) {
		return NullValue, nil
	}
	if IsNumber(a) && IsNumber(b) {
		af, _ := AsFloat(a)
		bf, _ := AsFloat(b)
		return Float(math.Pow(af, bf)), nil
	}
	return nil, &TypeError{Op: "^", A: a, B: b}
}

// Neg implements unary minus. Null propagates.
func Neg(a Value) (Value, error) {
	switch x := a.(type) {
	case Null:
		return NullValue, nil
	case Int:
		return Int(-int64(x)), nil
	case Float:
		return Float(-float64(x)), nil
	default:
		return nil, &TypeError{Op: "unary -", A: a}
	}
}
