package value

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAdd(t *testing.T) {
	cases := []struct {
		a, b, want Value
	}{
		{Int(1), Int(2), Int(3)},
		{Int(1), Float(0.5), Float(1.5)},
		{Float(0.5), Int(1), Float(1.5)},
		{String("a"), String("b"), String("ab")},
		{List{Int(1)}, List{Int(2)}, List{Int(1), Int(2)}},
		{List{Int(1)}, Int(2), List{Int(1), Int(2)}},
		{Int(0), List{Int(1)}, List{Int(0), Int(1)}},
		{NullValue, Int(1), NullValue},
		{Int(1), NullValue, NullValue},
	}
	for _, c := range cases {
		got, err := Add(c.a, c.b)
		if err != nil {
			t.Errorf("Add(%v,%v): %v", c.a, c.b, err)
			continue
		}
		if !Equivalent(got, c.want) {
			t.Errorf("Add(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
	if _, err := Add(Bool(true), Int(1)); err == nil {
		t.Error("Add(bool,int): want type error")
	}
}

func TestSubMulDivModPow(t *testing.T) {
	check := func(name string, f func(a, b Value) (Value, error), a, b, want Value) {
		t.Helper()
		got, err := f(a, b)
		if err != nil {
			t.Errorf("%s(%v,%v): %v", name, a, b, err)
			return
		}
		if !Equivalent(got, want) {
			t.Errorf("%s(%v,%v) = %v, want %v", name, a, b, got, want)
		}
	}
	check("Sub", Sub, Int(5), Int(2), Int(3))
	check("Sub", Sub, Float(5), Int(2), Float(3))
	check("Sub", Sub, NullValue, Int(2), NullValue)
	check("Mul", Mul, Int(5), Int(2), Int(10))
	check("Mul", Mul, Float(2.5), Int(2), Float(5))
	check("Div", Div, Int(7), Int(2), Int(3)) // integer division truncates
	check("Div", Div, Int(-7), Int(2), Int(-3))
	check("Div", Div, Float(7), Int(2), Float(3.5))
	check("Mod", Mod, Int(7), Int(3), Int(1))
	check("Mod", Mod, Float(7.5), Int(3), Float(1.5))
	check("Pow", Pow, Int(2), Int(10), Float(1024))
	check("Pow", Pow, NullValue, Int(2), NullValue)

	if _, err := Div(Int(1), Int(0)); err == nil {
		t.Error("Div by integer zero: want error")
	}
	if v, err := Div(Float(1), Float(0)); err != nil || !math.IsInf(float64(v.(Float)), 1) {
		t.Errorf("Float div by zero = %v, %v; want +Inf", v, err)
	}
	if _, err := Mod(Int(1), Int(0)); err == nil {
		t.Error("Mod by integer zero: want error")
	}
	if _, err := Sub(String("a"), Int(1)); err == nil {
		t.Error("Sub(string,int): want type error")
	}
	if _, err := Mul(String("a"), Int(1)); err == nil {
		t.Error("Mul(string,int): want type error")
	}
	if _, err := Pow(String("a"), Int(1)); err == nil {
		t.Error("Pow(string,int): want type error")
	}
}

func TestNeg(t *testing.T) {
	if v, _ := Neg(Int(4)); v != Int(-4) {
		t.Error("Neg(4)")
	}
	if v, _ := Neg(Float(1.5)); v != Float(-1.5) {
		t.Error("Neg(1.5)")
	}
	if v, _ := Neg(NullValue); !IsNull(v) {
		t.Error("Neg(null)")
	}
	if _, err := Neg(String("a")); err == nil {
		t.Error("Neg(string): want error")
	}
}

func TestTypeErrorMessages(t *testing.T) {
	_, err := Add(Bool(true), Int(1))
	if err == nil || err.Error() == "" {
		t.Fatal("expected descriptive type error")
	}
	_, err = Neg(String("a"))
	if err == nil || err.Error() == "" {
		t.Fatal("expected descriptive unary type error")
	}
}

// Property: integer addition is commutative and associative in the value
// domain (wrapping semantics of int64 carry over).
func TestAddCommutativeAssociative(t *testing.T) {
	f := func(a, b, c int64) bool {
		ab, _ := Add(Int(a), Int(b))
		ba, _ := Add(Int(b), Int(a))
		if !Equivalent(ab, ba) {
			return false
		}
		abc1, _ := Add(ab, Int(c))
		bc, _ := Add(Int(b), Int(c))
		abc2, _ := Add(Int(a), bc)
		return Equivalent(abc1, abc2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: null propagates through every arithmetic operator.
func TestNullPropagation(t *testing.T) {
	ops := []func(a, b Value) (Value, error){Add, Sub, Mul, Div, Mod, Pow}
	f := func(x int64) bool {
		for _, op := range ops {
			l, err := op(NullValue, Int(x))
			if err != nil || !IsNull(l) {
				return false
			}
			r, err := op(Int(x), NullValue)
			if err != nil || !IsNull(r) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
