package value

import (
	"math"
	"testing"
)

func TestKindStrings(t *testing.T) {
	cases := map[Kind]string{
		KindNull: "Null", KindBool: "Boolean", KindInt: "Integer",
		KindFloat: "Float", KindString: "String", KindList: "List",
		KindMap: "Map", KindNode: "Node", KindRel: "Relationship",
		KindPath: "Path",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestValueStrings(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{NullValue, "null"},
		{Bool(true), "true"},
		{Bool(false), "false"},
		{Int(42), "42"},
		{Int(-7), "-7"},
		{Float(1.5), "1.5"},
		{Float(2), "2.0"},
		{Float(math.Inf(1)), "Infinity"},
		{Float(math.Inf(-1)), "-Infinity"},
		{Float(math.NaN()), "NaN"},
		{String("hi"), "'hi'"},
		{List{Int(1), String("a")}, "[1, 'a']"},
		{Map{"b": Int(2), "a": Int(1)}, "{a: 1, b: 2}"},
		{Node{ID: 3}, "Node(3)"},
		{Rel{ID: 4}, "Rel(4)"},
		{Path{Nodes: []int64{1, 2}, Rels: []int64{9}}, "Path((1)-[9]-(2))"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("%v.String() = %q, want %q", c.v.Kind(), got, c.want)
		}
	}
}

func TestFromGoRoundTrip(t *testing.T) {
	in := map[string]any{
		"n":    nil,
		"b":    true,
		"i":    int(5),
		"i64":  int64(6),
		"f":    1.25,
		"s":    "x",
		"list": []any{int64(1), "two", nil},
		"m":    map[string]any{"k": int64(9)},
	}
	v, err := FromGo(in)
	if err != nil {
		t.Fatalf("FromGo: %v", err)
	}
	m, ok := v.(Map)
	if !ok {
		t.Fatalf("FromGo returned %T, want Map", v)
	}
	if got := m["i"]; got != Int(5) {
		t.Errorf("m[i] = %v", got)
	}
	if got := m["n"]; !IsNull(got) {
		t.Errorf("m[n] = %v, want null", got)
	}
	back := ToGo(v).(map[string]any)
	if back["s"] != "x" {
		t.Errorf("ToGo round trip s = %v", back["s"])
	}
	if back["n"] != nil {
		t.Errorf("ToGo round trip n = %v, want nil", back["n"])
	}
	if lst := back["list"].([]any); lst[1] != "two" {
		t.Errorf("ToGo list = %v", lst)
	}
}

func TestFromGoErrors(t *testing.T) {
	if _, err := FromGo(struct{}{}); err == nil {
		t.Error("FromGo(struct{}{}): want error")
	}
	if _, err := FromGo(uint64(math.MaxUint64)); err == nil {
		t.Error("FromGo(maxuint64): want overflow error")
	}
	if _, err := FromGo([]any{struct{}{}}); err == nil {
		t.Error("FromGo(list with bad element): want error")
	}
	if _, err := FromGo(map[string]any{"k": struct{}{}}); err == nil {
		t.Error("FromGo(map with bad element): want error")
	}
}

func TestAsAccessors(t *testing.T) {
	if b, ok := AsBool(Bool(true)); !ok || !b {
		t.Error("AsBool(true) failed")
	}
	if _, ok := AsBool(Int(1)); ok {
		t.Error("AsBool(Int) should fail")
	}
	if i, ok := AsInt(Int(7)); !ok || i != 7 {
		t.Error("AsInt(7) failed")
	}
	if f, ok := AsFloat(Int(7)); !ok || f != 7 {
		t.Error("AsFloat(Int 7) failed")
	}
	if f, ok := AsFloat(Float(2.5)); !ok || f != 2.5 {
		t.Error("AsFloat(2.5) failed")
	}
	if _, ok := AsFloat(String("x")); ok {
		t.Error("AsFloat(String) should fail")
	}
	if s, ok := AsString(String("x")); !ok || s != "x" {
		t.Error("AsString failed")
	}
	if l, ok := AsList(List{Int(1)}); !ok || len(l) != 1 {
		t.Error("AsList failed")
	}
	if m, ok := AsMap(Map{"a": Int(1)}); !ok || len(m) != 1 {
		t.Error("AsMap failed")
	}
	if !IsNull(nil) || !IsNull(NullValue) || IsNull(Int(0)) {
		t.Error("IsNull misbehaves")
	}
}

func TestMapKeysSorted(t *testing.T) {
	m := Map{"z": Int(1), "a": Int(2), "m": Int(3)}
	keys := m.Keys()
	want := []string{"a", "m", "z"}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("Keys() = %v, want %v", keys, want)
		}
	}
}

func TestPathLen(t *testing.T) {
	p := Path{Nodes: []int64{1, 2, 3}, Rels: []int64{10, 11}}
	if p.Len() != 2 {
		t.Errorf("Len = %d, want 2", p.Len())
	}
}
