package value

// ApproxSize estimates the heap footprint of a value in bytes. The
// estimate is used by the executor's memory accounting (barrier
// operators charge buffered rows against a per-statement budget and
// spill to disk beyond it); it deliberately trades exactness for speed:
// interface headers, small-object rounding and allocator overhead are
// folded into flat per-kind constants.
func ApproxSize(v Value) int64 {
	switch x := v.(type) {
	case nil, Null, Bool, Int, Float, Node, Rel:
		// One interface word pair; the payload fits the header or a
		// single word.
		return 16
	case String:
		return 16 + int64(len(x))
	case Path:
		return 48 + 8*int64(len(x.Nodes)+len(x.Rels))
	case List:
		n := int64(24)
		for _, e := range x {
			n += ApproxSize(e)
		}
		return n
	case Map:
		n := int64(48)
		for k, e := range x {
			n += 16 + int64(len(k)) + ApproxSize(e)
		}
		return n
	default:
		return 16
	}
}
