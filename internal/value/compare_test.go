package value

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestTriLogic(t *testing.T) {
	// Kleene truth tables.
	if True.And(Unknown) != Unknown || False.And(Unknown) != False {
		t.Error("And truth table broken")
	}
	if True.Or(Unknown) != True || False.Or(Unknown) != Unknown {
		t.Error("Or truth table broken")
	}
	if True.Xor(False) != True || True.Xor(True) != False || True.Xor(Unknown) != Unknown {
		t.Error("Xor truth table broken")
	}
	if True.Not() != False || False.Not() != True || Unknown.Not() != Unknown {
		t.Error("Not truth table broken")
	}
	if True.Value() != Bool(true) || False.Value() != Bool(false) || !IsNull(Unknown.Value()) {
		t.Error("Value conversion broken")
	}
}

func TestTriOf(t *testing.T) {
	if tr, ok := TriOf(Bool(true)); !ok || tr != True {
		t.Error("TriOf(true)")
	}
	if tr, ok := TriOf(NullValue); !ok || tr != Unknown {
		t.Error("TriOf(null)")
	}
	if _, ok := TriOf(Int(1)); ok {
		t.Error("TriOf(Int) should not be ok")
	}
}

func TestEqualTernary(t *testing.T) {
	cases := []struct {
		a, b Value
		want Tri
	}{
		{NullValue, NullValue, Unknown},
		{NullValue, Int(1), Unknown},
		{Int(1), Int(1), True},
		{Int(1), Int(2), False},
		{Int(1), Float(1.0), True},
		{Float(0.5), Float(0.5), True},
		{Float(math.NaN()), Float(math.NaN()), False},
		{Int(1), String("1"), False},
		{String("a"), String("a"), True},
		{Bool(true), Bool(true), True},
		{Bool(true), Bool(false), False},
		{Node{ID: 1}, Node{ID: 1}, True},
		{Node{ID: 1}, Node{ID: 2}, False},
		{Node{ID: 1}, Rel{ID: 1}, False},
		{List{Int(1), Int(2)}, List{Int(1), Int(2)}, True},
		{List{Int(1)}, List{Int(1), Int(2)}, False},
		{List{Int(1), NullValue}, List{Int(1), NullValue}, Unknown},
		{List{Int(1), NullValue}, List{Int(2), NullValue}, False},
		{Map{"a": Int(1)}, Map{"a": Int(1)}, True},
		{Map{"a": Int(1)}, Map{"a": Int(2)}, False},
		{Map{"a": Int(1)}, Map{"b": Int(1)}, False},
		{Map{"a": NullValue}, Map{"a": NullValue}, Unknown},
		{Map{"a": Int(1)}, Map{"a": Int(1), "b": Int(2)}, False},
		{Path{Nodes: []int64{1, 2}, Rels: []int64{5}}, Path{Nodes: []int64{1, 2}, Rels: []int64{5}}, True},
		{Path{Nodes: []int64{1, 2}, Rels: []int64{5}}, Path{Nodes: []int64{1, 3}, Rels: []int64{5}}, False},
	}
	for _, c := range cases {
		if got := Equal(c.a, c.b); got != c.want {
			t.Errorf("Equal(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestEquivalent(t *testing.T) {
	cases := []struct {
		a, b Value
		want bool
	}{
		{NullValue, NullValue, true},
		{NullValue, Int(0), false},
		{nil, NullValue, true},
		{Int(1), Float(1.0), true},
		{Float(math.NaN()), Float(math.NaN()), true},
		{Float(math.NaN()), Float(1), false},
		{List{NullValue}, List{NullValue}, true},
		{List{NullValue}, List{Int(1)}, false},
		{Map{"a": NullValue}, Map{"a": NullValue}, true},
		{Map{"a": Int(1)}, Map{}, false},
		{String("x"), String("x"), true},
		{Bool(true), Int(1), false},
		{Path{Nodes: []int64{1}, Rels: nil}, Path{Nodes: []int64{1}, Rels: nil}, true},
	}
	for _, c := range cases {
		if got := Equivalent(c.a, c.b); got != c.want {
			t.Errorf("Equivalent(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

// Property: Key agrees exactly with Equivalent on generated scalar values.
func TestKeyMatchesEquivalent(t *testing.T) {
	gen := func(seed int64) Value {
		switch seed % 7 {
		case 0:
			return NullValue
		case 1:
			return Bool(seed%2 == 0)
		case 2:
			return Int(seed % 5)
		case 3:
			return Float(float64(seed%5) / 2)
		case 4:
			return String(string(rune('a' + seed%3)))
		case 5:
			return List{Int(seed % 3), NullValue}
		default:
			return Map{"k": Int(seed % 3)}
		}
	}
	f := func(x, y int64) bool {
		a, b := gen(abs64(x)), gen(abs64(y))
		return (Key(a) == Key(b)) == Equivalent(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func abs64(x int64) int64 {
	if x < 0 {
		if x == math.MinInt64 {
			return 0
		}
		return -x
	}
	return x
}

func TestKeyIntFloatUnify(t *testing.T) {
	if Key(Int(1)) != Key(Float(1.0)) {
		t.Error("Key(1) != Key(1.0)")
	}
	if Key(Float(1.5)) == Key(Int(1)) {
		t.Error("Key(1.5) == Key(1)")
	}
	if Key(Float(math.NaN())) != Key(Float(math.NaN())) {
		t.Error("NaN keys differ")
	}
	if KeyList([]Value{Int(1), Int(2)}) == KeyList([]Value{Int(12)}) {
		t.Error("KeyList ambiguity between [1,2] and [12]")
	}
}

func TestMapKeyIgnoresNullProps(t *testing.T) {
	a := Map{"id": NullValue}
	b := Map{}
	if MapKey(a) != MapKey(b) {
		t.Errorf("MapKey should treat null-valued keys as absent: %q vs %q", MapKey(a), MapKey(b))
	}
	c := Map{"id": Int(1)}
	if MapKey(a) == MapKey(c) {
		t.Error("MapKey collision between null and 1")
	}
}

func TestCompareOrderTotalOrder(t *testing.T) {
	vals := []Value{
		Map{"a": Int(1)}, Node{ID: 1}, Rel{ID: 1}, List{Int(1)},
		Path{Nodes: []int64{1}}, String("s"), Bool(false), Bool(true),
		Int(1), Int(2), Float(2.5), Float(math.NaN()), NullValue,
	}
	sorted := make([]Value, len(vals))
	copy(sorted, vals)
	sort.SliceStable(sorted, func(i, j int) bool { return CompareOrder(sorted[i], sorted[j]) < 0 })
	// Null must sort last; map kinds first.
	if !IsNull(sorted[len(sorted)-1]) {
		t.Errorf("null should sort last, got %v", sorted[len(sorted)-1])
	}
	if sorted[0].Kind() != KindMap {
		t.Errorf("map should sort first, got %v", sorted[0])
	}
	// Antisymmetry + reflexivity on the sample.
	for _, a := range vals {
		if CompareOrder(a, a) != 0 {
			t.Errorf("CompareOrder(%v, %v) != 0", a, a)
		}
		for _, b := range vals {
			if CompareOrder(a, b) != -CompareOrder(b, a) {
				// Allow sign asymmetry magnitude, only direction matters.
				ab, ba := CompareOrder(a, b), CompareOrder(b, a)
				if (ab < 0) == (ba < 0) && ab != 0 && ba != 0 {
					t.Errorf("CompareOrder not antisymmetric on %v, %v", a, b)
				}
			}
		}
	}
}

func TestCompareOrderTransitivity(t *testing.T) {
	vals := []Value{
		NullValue, Bool(true), Bool(false), Int(-1), Int(3), Float(2.2),
		Float(math.NaN()), String("a"), String("b"), List{Int(1)},
		List{Int(1), Int(2)}, Map{}, Map{"a": Int(1)}, Node{ID: 5}, Rel{ID: 5},
	}
	for _, a := range vals {
		for _, b := range vals {
			for _, c := range vals {
				if CompareOrder(a, b) <= 0 && CompareOrder(b, c) <= 0 && CompareOrder(a, c) > 0 {
					t.Fatalf("transitivity violated: %v <= %v <= %v but %v > %v", a, b, c, a, c)
				}
			}
		}
	}
}

func TestLessTernary(t *testing.T) {
	cases := []struct {
		a, b Value
		want Tri
	}{
		{Int(1), Int(2), True},
		{Int(2), Int(1), False},
		{Int(1), Float(1.5), True},
		{Float(math.NaN()), Int(1), Unknown},
		{NullValue, Int(1), Unknown},
		{String("a"), String("b"), True},
		{String("b"), String("a"), False},
		{Bool(false), Bool(true), True},
		{Int(1), String("a"), Unknown},
		{List{Int(1)}, List{Int(2)}, True},
		{List{Int(1)}, List{Int(1), Int(2)}, True},
		{List{NullValue}, List{Int(1)}, Unknown},
	}
	for _, c := range cases {
		if got := Less(c.a, c.b); got != c.want {
			t.Errorf("Less(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

// Property: Equivalent is an equivalence relation (reflexive, symmetric)
// on arbitrary scalar values built via quick.
func TestEquivalentReflexiveSymmetric(t *testing.T) {
	f := func(i int64, s string, b bool, fl float64) bool {
		vals := []Value{Int(i), String(s), Bool(b), Float(fl), NullValue,
			List{Int(i), String(s)}, Map{"a": Float(fl)}}
		for _, v := range vals {
			if !Equivalent(v, v) {
				return false
			}
		}
		for _, v := range vals {
			for _, w := range vals {
				if Equivalent(v, w) != Equivalent(w, v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: where Less is defined (returns True/False), it agrees with
// the global orderability CompareOrder.
func TestLessConsistentWithCompareOrder(t *testing.T) {
	vals := []Value{
		Int(-3), Int(0), Int(7), Float(-1.5), Float(2.5), Float(7),
		String(""), String("a"), String("zz"), Bool(false), Bool(true),
	}
	for _, a := range vals {
		for _, b := range vals {
			switch Less(a, b) {
			case True:
				if CompareOrder(a, b) >= 0 {
					t.Errorf("Less(%v,%v)=true but CompareOrder=%d", a, b, CompareOrder(a, b))
				}
			case False:
				// a >= b under comparability; orderability must agree
				// unless they are equal.
				if CompareOrder(a, b) < 0 && Equal(a, b) != True {
					t.Errorf("Less(%v,%v)=false but CompareOrder=%d", a, b, CompareOrder(a, b))
				}
			}
		}
	}
}

// Property: Equal==True implies Equivalent, and Equivalent implies
// CompareOrder == 0, on a mixed sample.
func TestEqualityLattice(t *testing.T) {
	vals := []Value{
		NullValue, Int(1), Float(1.0), Float(1.5), String("a"), Bool(true),
		List{Int(1)}, List{Float(1.0)}, Map{"k": Int(2)}, Map{"k": Float(2)},
		Node{ID: 3}, Rel{ID: 3},
	}
	for _, a := range vals {
		for _, b := range vals {
			if Equal(a, b) == True && !Equivalent(a, b) {
				t.Errorf("Equal(%v,%v)=true but not Equivalent", a, b)
			}
			if Equivalent(a, b) && CompareOrder(a, b) != 0 {
				t.Errorf("Equivalent(%v,%v) but CompareOrder=%d", a, b, CompareOrder(a, b))
			}
		}
	}
}
