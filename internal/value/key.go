package value

import (
	"math"
	"strconv"
	"strings"
)

// Key renders a canonical encoding of v such that Key(a) == Key(b) exactly
// when Equivalent(a, b). It is used for grouping (DISTINCT, aggregation
// keys, the Grouping MERGE strategy) and for bucketing candidates in the
// MERGE SAME collapse pass.
//
// Numeric values that are equivalent across Int/Float (e.g. 1 and 1.0)
// share a key; NaN has its own key; null has its own key.
func Key(v Value) string {
	var b strings.Builder
	writeKey(&b, v)
	return b.String()
}

// KeyList renders the canonical key of a tuple of values, used for
// multi-column grouping.
func KeyList(vs []Value) string {
	var b strings.Builder
	for _, v := range vs {
		writeKey(&b, v)
		b.WriteByte(0x1f) // unit separator between tuple elements
	}
	return b.String()
}

func writeKey(b *strings.Builder, v Value) {
	if v == nil {
		b.WriteString("0:")
		return
	}
	switch x := v.(type) {
	case Null:
		b.WriteString("0:")
	case Bool:
		if x {
			b.WriteString("b:1")
		} else {
			b.WriteString("b:0")
		}
	case Int:
		writeNumericKey(b, float64(x), int64(x), true)
	case Float:
		f := float64(x)
		if f == math.Trunc(f) && f >= math.MinInt64 && f <= math.MaxInt64 && !math.IsInf(f, 0) {
			writeNumericKey(b, f, int64(f), true)
		} else {
			writeNumericKey(b, f, 0, false)
		}
	case String:
		b.WriteString("s:")
		b.WriteString(strconv.Quote(string(x)))
	case Node:
		b.WriteString("n:")
		b.WriteString(strconv.FormatInt(x.ID, 10))
	case Rel:
		b.WriteString("r:")
		b.WriteString(strconv.FormatInt(x.ID, 10))
	case Path:
		b.WriteString("p:[")
		for i, n := range x.Nodes {
			if i > 0 {
				b.WriteString(",")
				b.WriteString(strconv.FormatInt(x.Rels[i-1], 10))
				b.WriteString(",")
			}
			b.WriteString(strconv.FormatInt(n, 10))
		}
		b.WriteString("]")
	case List:
		b.WriteString("l:[")
		for i, e := range x {
			if i > 0 {
				b.WriteByte(';')
			}
			writeKey(b, e)
		}
		b.WriteString("]")
	case Map:
		b.WriteString("m:{")
		for i, k := range x.Keys() {
			if i > 0 {
				b.WriteByte(';')
			}
			b.WriteString(strconv.Quote(k))
			b.WriteByte('=')
			writeKey(b, x[k])
		}
		b.WriteString("}")
	}
}

func writeNumericKey(b *strings.Builder, f float64, i int64, integral bool) {
	switch {
	case math.IsNaN(f):
		b.WriteString("d:nan")
	case math.IsInf(f, 1):
		b.WriteString("d:+inf")
	case math.IsInf(f, -1):
		b.WriteString("d:-inf")
	case integral:
		b.WriteString("d:")
		b.WriteString(strconv.FormatInt(i, 10))
	default:
		b.WriteString("d:")
		b.WriteString(strconv.FormatUint(math.Float64bits(f), 16))
	}
}

// MapKey renders a canonical key for a property map, with keys mapped to
// null treated as absent. This is the notion of "same properties" used by
// the collapsibility relations (Definitions 1 and 2 of the paper), where
// iota(n, k) = null means key k is not present.
func MapKey(m Map) string {
	var b strings.Builder
	b.WriteString("{")
	first := true
	for _, k := range m.Keys() {
		if IsNull(m[k]) {
			continue
		}
		if !first {
			b.WriteByte(';')
		}
		first = false
		b.WriteString(strconv.Quote(k))
		b.WriteByte('=')
		writeKey(&b, m[k])
	}
	b.WriteString("}")
	return b.String()
}
