package value

import (
	"math"
)

// Tri is the three-valued logic domain of Cypher comparisons: true, false,
// or unknown (null).
type Tri int

// The three truth values.
const (
	False Tri = iota
	True
	Unknown
)

// Not negates a truth value; Unknown stays Unknown.
func (t Tri) Not() Tri {
	switch t {
	case True:
		return False
	case False:
		return True
	default:
		return Unknown
	}
}

// And is Kleene conjunction.
func (t Tri) And(u Tri) Tri {
	if t == False || u == False {
		return False
	}
	if t == True && u == True {
		return True
	}
	return Unknown
}

// Or is Kleene disjunction.
func (t Tri) Or(u Tri) Tri {
	if t == True || u == True {
		return True
	}
	if t == False && u == False {
		return False
	}
	return Unknown
}

// Xor is Kleene exclusive-or: unknown if either side is unknown.
func (t Tri) Xor(u Tri) Tri {
	if t == Unknown || u == Unknown {
		return Unknown
	}
	if (t == True) != (u == True) {
		return True
	}
	return False
}

// Value converts a truth value to a Cypher value (Bool or null).
func (t Tri) Value() Value {
	switch t {
	case True:
		return Bool(true)
	case False:
		return Bool(false)
	default:
		return NullValue
	}
}

// TriOf converts a Value to a truth value: booleans map to True/False,
// null to Unknown. Any other kind is not a valid predicate result; it is
// reported via ok=false.
func TriOf(v Value) (t Tri, ok bool) {
	switch x := v.(type) {
	case Bool:
		if x {
			return True, true
		}
		return False, true
	case Null:
		return Unknown, true
	default:
		return Unknown, false
	}
}

// Equal implements Cypher's ternary equality ("="):
//
//   - if either operand is null the result is Unknown;
//   - numbers compare numerically across Int/Float;
//   - lists compare element-wise with ternary logic (length mismatch is
//     False; any Unknown element comparison with otherwise-equal prefix
//     makes the result Unknown);
//   - maps compare key-wise with ternary logic;
//   - nodes/relationships compare by identity;
//   - values of different, non-coercible kinds compare False.
func Equal(a, b Value) Tri {
	if IsNull(a) || IsNull(b) {
		return Unknown
	}
	if IsNumber(a) && IsNumber(b) {
		return equalNumeric(a, b)
	}
	if a.Kind() != b.Kind() {
		return False
	}
	switch x := a.(type) {
	case Bool:
		return triBool(x == b.(Bool))
	case String:
		return triBool(x == b.(String))
	case Node:
		return triBool(x.ID == b.(Node).ID)
	case Rel:
		return triBool(x.ID == b.(Rel).ID)
	case Path:
		return triBool(samePath(x, b.(Path)))
	case List:
		return equalList(x, b.(List))
	case Map:
		return equalMap(x, b.(Map))
	default:
		return False
	}
}

func triBool(b bool) Tri {
	if b {
		return True
	}
	return False
}

func equalNumeric(a, b Value) Tri {
	ai, aIsInt := a.(Int)
	bi, bIsInt := b.(Int)
	if aIsInt && bIsInt {
		return triBool(ai == bi)
	}
	af, _ := AsFloat(a)
	bf, _ := AsFloat(b)
	// NaN is not equal to anything under ternary equality.
	return triBool(af == bf)
}

func equalList(a, b List) Tri {
	if len(a) != len(b) {
		return False
	}
	result := True
	for i := range a {
		switch Equal(a[i], b[i]) {
		case False:
			return False
		case Unknown:
			result = Unknown
		}
	}
	return result
}

func equalMap(a, b Map) Tri {
	if len(a) != len(b) {
		return False
	}
	result := True
	for k, av := range a {
		bv, ok := b[k]
		if !ok {
			return False
		}
		switch Equal(av, bv) {
		case False:
			return False
		case Unknown:
			result = Unknown
		}
	}
	return result
}

func samePath(a, b Path) bool {
	if len(a.Nodes) != len(b.Nodes) || len(a.Rels) != len(b.Rels) {
		return false
	}
	for i := range a.Nodes {
		if a.Nodes[i] != b.Nodes[i] {
			return false
		}
	}
	for i := range a.Rels {
		if a.Rels[i] != b.Rels[i] {
			return false
		}
	}
	return true
}

// Equivalent is the reflexive total relation used by DISTINCT, grouping
// and the MERGE SAME collapsibility relations: like Equal, except that
// null is equivalent to null and NaN is equivalent to NaN.
func Equivalent(a, b Value) bool {
	if a == nil {
		a = NullValue
	}
	if b == nil {
		b = NullValue
	}
	if IsNull(a) || IsNull(b) {
		return IsNull(a) && IsNull(b)
	}
	if IsNumber(a) && IsNumber(b) {
		ai, aIsInt := a.(Int)
		bi, bIsInt := b.(Int)
		if aIsInt && bIsInt {
			return ai == bi
		}
		af, _ := AsFloat(a)
		bf, _ := AsFloat(b)
		if math.IsNaN(af) || math.IsNaN(bf) {
			return math.IsNaN(af) && math.IsNaN(bf)
		}
		return af == bf
	}
	if a.Kind() != b.Kind() {
		return false
	}
	switch x := a.(type) {
	case Bool:
		return x == b.(Bool)
	case String:
		return x == b.(String)
	case Node:
		return x.ID == b.(Node).ID
	case Rel:
		return x.ID == b.(Rel).ID
	case Path:
		return samePath(x, b.(Path))
	case List:
		y := b.(List)
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if !Equivalent(x[i], y[i]) {
				return false
			}
		}
		return true
	case Map:
		y := b.(Map)
		if len(x) != len(y) {
			return false
		}
		for k, xv := range x {
			yv, ok := y[k]
			if !ok || !Equivalent(xv, yv) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// CompareOrder is the global orderability total order used by ORDER BY.
// It returns a negative number, zero, or a positive number as a sorts
// before, the same as, or after b. The order across kinds follows Kind
// rank (maps, nodes, relationships, lists, paths, strings, booleans,
// numbers, null last); within numbers Int and Float interoperate, NaN
// sorts after all other numbers.
func CompareOrder(a, b Value) int {
	if a == nil {
		a = NullValue
	}
	if b == nil {
		b = NullValue
	}
	ra, rb := orderRank(a), orderRank(b)
	if ra != rb {
		return ra - rb
	}
	switch x := a.(type) {
	case Null:
		return 0
	case Bool:
		y := b.(Bool)
		switch {
		case x == y:
			return 0
		case !bool(x): // false < true
			return -1
		default:
			return 1
		}
	case String:
		y := b.(String)
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		default:
			return 0
		}
	case Node:
		return compareInt64(x.ID, b.(Node).ID)
	case Rel:
		return compareInt64(x.ID, b.(Rel).ID)
	case Path:
		return comparePath(x, b.(Path))
	case List:
		return compareList(x, b.(List))
	case Map:
		return compareMap(x, b.(Map))
	default: // numbers
		return compareNumeric(a, b)
	}
}

func orderRank(v Value) int {
	switch v.Kind() {
	case KindMap:
		return 0
	case KindNode:
		return 1
	case KindRel:
		return 2
	case KindList:
		return 3
	case KindPath:
		return 4
	case KindString:
		return 5
	case KindBool:
		return 6
	case KindInt, KindFloat:
		return 7
	default: // null
		return 8
	}
}

func compareInt64(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func compareNumeric(a, b Value) int {
	ai, aIsInt := a.(Int)
	bi, bIsInt := b.(Int)
	if aIsInt && bIsInt {
		return compareInt64(int64(ai), int64(bi))
	}
	af, _ := AsFloat(a)
	bf, _ := AsFloat(b)
	aNaN, bNaN := math.IsNaN(af), math.IsNaN(bf)
	switch {
	case aNaN && bNaN:
		return 0
	case aNaN:
		return 1 // NaN sorts after all other numbers
	case bNaN:
		return -1
	case af < bf:
		return -1
	case af > bf:
		return 1
	default:
		return 0
	}
}

func compareList(a, b List) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if c := CompareOrder(a[i], b[i]); c != 0 {
			return c
		}
	}
	return len(a) - len(b)
}

func comparePath(a, b Path) int {
	la := List(nil)
	for i, n := range a.Nodes {
		la = append(la, Node{ID: n})
		if i < len(a.Rels) {
			la = append(la, Rel{ID: a.Rels[i]})
		}
	}
	lb := List(nil)
	for i, n := range b.Nodes {
		lb = append(lb, Node{ID: n})
		if i < len(b.Rels) {
			lb = append(lb, Rel{ID: b.Rels[i]})
		}
	}
	return compareList(la, lb)
}

func compareMap(a, b Map) int {
	ka, kb := a.Keys(), b.Keys()
	n := len(ka)
	if len(kb) < n {
		n = len(kb)
	}
	for i := 0; i < n; i++ {
		if ka[i] != kb[i] {
			if ka[i] < kb[i] {
				return -1
			}
			return 1
		}
		if c := CompareOrder(a[ka[i]], b[kb[i]]); c != 0 {
			return c
		}
	}
	return len(ka) - len(kb)
}

// Less implements the comparability semantics of the "<" operator under
// ternary logic: numbers compare with numbers, strings with strings,
// booleans with booleans; any null operand or cross-kind comparison is
// Unknown.
func Less(a, b Value) Tri {
	if IsNull(a) || IsNull(b) {
		return Unknown
	}
	if IsNumber(a) && IsNumber(b) {
		af, _ := AsFloat(a)
		bf, _ := AsFloat(b)
		if math.IsNaN(af) || math.IsNaN(bf) {
			return Unknown
		}
		ai, aIsInt := a.(Int)
		bi, bIsInt := b.(Int)
		if aIsInt && bIsInt {
			return triBool(ai < bi)
		}
		return triBool(af < bf)
	}
	if a.Kind() != b.Kind() {
		return Unknown
	}
	switch x := a.(type) {
	case String:
		return triBool(x < b.(String))
	case Bool:
		return triBool(!bool(x) && bool(b.(Bool)))
	case List:
		// Lists are comparable element-wise when all elements are.
		return lessList(x, b.(List))
	default:
		return Unknown
	}
}

func lessList(a, b List) Tri {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		eq := Equal(a[i], b[i])
		if eq == Unknown {
			return Unknown
		}
		if eq == False {
			return Less(a[i], b[i])
		}
	}
	return triBool(len(a) < len(b))
}
