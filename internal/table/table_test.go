package table

import (
	"testing"

	"repro/internal/value"
)

func TestUnit(t *testing.T) {
	u := Unit()
	if u.Len() != 1 || len(u.Columns()) != 0 {
		t.Fatalf("Unit: %d rows, %d cols", u.Len(), len(u.Columns()))
	}
}

func TestAppendAndGet(t *testing.T) {
	tb := New("a", "b")
	tb.AppendRow(value.Int(1), value.String("x"))
	tb.AppendMap(map[string]value.Value{"b": value.Int(2)})
	if tb.Len() != 2 {
		t.Fatal("len")
	}
	if tb.Get(0, "a") != value.Int(1) || tb.Get(0, "b") != value.String("x") {
		t.Error("row 0")
	}
	if !value.IsNull(tb.Get(1, "a")) || tb.Get(1, "b") != value.Int(2) {
		t.Error("row 1: missing map column should be null")
	}
	if !value.IsNull(tb.Get(0, "zzz")) {
		t.Error("missing column should read null")
	}
	if !tb.HasColumn("a") || tb.HasColumn("zzz") {
		t.Error("HasColumn")
	}
}

func TestAppendRowWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	New("a").AppendRow(value.Int(1), value.Int(2))
}

func TestDuplicateColumnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	New("a", "a")
}

func TestRowAndValues(t *testing.T) {
	tb := New("x", "y")
	tb.AppendRow(value.Int(1), value.NullValue)
	m := tb.Row(0)
	if m["x"] != value.Int(1) || !value.IsNull(m["y"]) {
		t.Error("Row map")
	}
	vs := tb.Values(0)
	if vs[0] != value.Int(1) || !value.IsNull(vs[1]) {
		t.Error("Values")
	}
	// Mutating the returned map must not affect the table.
	m["x"] = value.Int(99)
	if tb.Get(0, "x") != value.Int(1) {
		t.Error("Row map aliased")
	}
}

func TestSet(t *testing.T) {
	tb := New("x")
	tb.AppendRow(value.Int(1))
	tb.Set(0, "x", value.Int(5))
	if tb.Get(0, "x") != value.Int(5) {
		t.Error("Set")
	}
}

func TestCloneIndependence(t *testing.T) {
	tb := New("x")
	tb.AppendRow(value.Int(1))
	c := tb.Clone()
	c.Set(0, "x", value.Int(2))
	c.AppendRow(value.Int(3))
	if tb.Get(0, "x") != value.Int(1) || tb.Len() != 1 {
		t.Error("clone aliased")
	}
	e := tb.CloneEmpty()
	if e.Len() != 0 || !e.HasColumn("x") {
		t.Error("CloneEmpty")
	}
}

func TestAppendTableColumnPermutation(t *testing.T) {
	a := New("x", "y")
	a.AppendRow(value.Int(1), value.Int(2))
	b := New("y", "x")
	b.AppendRow(value.Int(20), value.Int(10))
	if err := a.AppendTable(b); err != nil {
		t.Fatal(err)
	}
	if a.Get(1, "x") != value.Int(10) || a.Get(1, "y") != value.Int(20) {
		t.Error("column permutation not honored")
	}
	c := New("z")
	if err := a.AppendTable(c); err == nil {
		t.Error("incompatible union should fail")
	}
	d := New("x", "z")
	if err := a.AppendTable(d); err == nil {
		t.Error("mismatched names should fail")
	}
}

func TestReversePermute(t *testing.T) {
	tb := New("x")
	for i := 1; i <= 3; i++ {
		tb.AppendRow(value.Int(int64(i)))
	}
	tb.Reverse()
	if tb.Get(0, "x") != value.Int(3) || tb.Get(2, "x") != value.Int(1) {
		t.Error("Reverse")
	}
	tb.Permute([]int{2, 0, 1})
	if tb.Get(0, "x") != value.Int(1) || tb.Get(1, "x") != value.Int(3) {
		t.Error("Permute")
	}
}

func TestSortStable(t *testing.T) {
	tb := New("k", "tag")
	tb.AppendRow(value.Int(2), value.String("a"))
	tb.AppendRow(value.Int(1), value.String("b"))
	tb.AppendRow(value.Int(2), value.String("c"))
	tb.SortStable(func(i, j int) bool {
		return value.CompareOrder(tb.Get(i, "k"), tb.Get(j, "k")) < 0
	})
	if tb.Get(0, "k") != value.Int(1) {
		t.Error("sort order")
	}
	// Stability: the two k=2 rows keep a-before-c.
	if tb.Get(1, "tag") != value.String("a") || tb.Get(2, "tag") != value.String("c") {
		t.Error("not stable")
	}
}

func TestDistinct(t *testing.T) {
	tb := New("x", "y")
	tb.AppendRow(value.Int(1), value.NullValue)
	tb.AppendRow(value.Int(1), value.NullValue)     // duplicate incl. null
	tb.AppendRow(value.Float(1.0), value.NullValue) // equivalent to Int(1)
	tb.AppendRow(value.Int(2), value.NullValue)
	tb.Distinct()
	if tb.Len() != 2 {
		t.Errorf("Distinct: %d rows, want 2", tb.Len())
	}
}

func TestSlice(t *testing.T) {
	tb := New("x")
	for i := 0; i < 5; i++ {
		tb.AppendRow(value.Int(int64(i)))
	}
	tb.Slice(1, 3)
	if tb.Len() != 2 || tb.Get(0, "x") != value.Int(1) {
		t.Error("Slice")
	}
	tb.Slice(5, 10)
	if tb.Len() != 0 {
		t.Error("out of range slice should empty")
	}
}

func TestString(t *testing.T) {
	tb := New("x")
	tb.AppendRow(value.Int(1))
	if tb.String() == "" {
		t.Error("empty render")
	}
}
