package table

import "repro/internal/value"

// Cursor iterates a table's records one at a time, in row order. It is
// the read-side primitive of the streaming executor: source operators
// pull records through a cursor instead of indexing the whole table, so
// a pipeline that stops early (LIMIT, EXISTS) never touches the
// remaining rows.
//
// A cursor is invalidated by any structural mutation of its table
// (append, sort, slice); the engine only cursors over tables it has
// finished building.
type Cursor struct {
	t *Table
	i int
}

// Iter returns a cursor positioned before the first record.
func (t *Table) Iter() *Cursor { return &Cursor{t: t, i: -1} }

// Next advances to the next record, reporting whether one exists.
func (c *Cursor) Next() bool {
	if c.i+1 >= len(c.t.rows) {
		return false
	}
	c.i++
	return true
}

// Row returns the current record as a freshly allocated column-name map
// (missing values are explicit nulls, like Table.Row).
func (c *Cursor) Row() map[string]value.Value { return c.t.Row(c.i) }

// Values returns the current record as a value slice in column order.
func (c *Cursor) Values() []value.Value { return c.t.Values(c.i) }
