// Package table implements driving tables: the bags of consistent records
// that Cypher clauses consume and produce (Section 2 of the paper). A
// record maps a fixed set of column names to values; a table is an ordered
// bag of such records.
//
// Although tables are semantically unordered bags, the implementation
// keeps an explicit row order: the legacy Cypher 9 semantics processes
// updates record by record, and the paper's Example 3 shows that the
// *choice* of that order changes the result. Making the order explicit
// (and controllable via ScanOrder in the engine) is what lets the
// experiments demonstrate the nondeterminism deterministically.
package table

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/value"
)

// Table is a bag of records over a fixed column set.
type Table struct {
	cols   []string
	colIdx map[string]int
	rows   [][]value.Value
}

// New returns an empty table with the given columns.
func New(cols ...string) *Table {
	t := &Table{cols: append([]string(nil), cols...), colIdx: make(map[string]int, len(cols))}
	for i, c := range t.cols {
		if _, dup := t.colIdx[c]; dup {
			panic(fmt.Sprintf("table: duplicate column %q", c))
		}
		t.colIdx[c] = i
	}
	return t
}

// Unit returns the table containing a single empty record T(), the
// starting point of query evaluation (Section 8.1).
func Unit() *Table {
	t := New()
	t.rows = append(t.rows, nil)
	return t
}

// Columns returns the column names in order.
func (t *Table) Columns() []string { return append([]string(nil), t.cols...) }

// HasColumn reports whether the column exists.
func (t *Table) HasColumn(name string) bool {
	_, ok := t.colIdx[name]
	return ok
}

// Len reports the number of records.
func (t *Table) Len() int { return len(t.rows) }

// AppendRow adds a record given as a value slice in column order.
// The row is copied.
func (t *Table) AppendRow(vals ...value.Value) {
	if len(vals) != len(t.cols) {
		panic(fmt.Sprintf("table: row width %d != %d columns", len(vals), len(t.cols)))
	}
	row := make([]value.Value, len(vals))
	for i, v := range vals {
		if v == nil {
			v = value.NullValue
		}
		row[i] = v
	}
	t.rows = append(t.rows, row)
}

// AppendValues adds a record given as a value slice in column order,
// taking ownership of the slice (it must not be mutated afterwards).
// Nil entries become null.
func (t *Table) AppendValues(vals []value.Value) {
	if len(vals) != len(t.cols) {
		panic(fmt.Sprintf("table: row width %d != %d columns", len(vals), len(t.cols)))
	}
	for i, v := range vals {
		if v == nil {
			vals[i] = value.NullValue
		}
	}
	t.rows = append(t.rows, vals)
}

// AppendColumns adds n records given as columnar slices (cols[j][r] is
// row r of column j, matching the table's column order), transposing
// into the table's row-major layout. This is the batch append used by
// the vectorized executor's Collect: one row-slice allocation per
// record, no per-record map.
func (t *Table) AppendColumns(cols [][]value.Value, n int) {
	if len(cols) != len(t.cols) {
		panic(fmt.Sprintf("table: batch width %d != %d columns", len(cols), len(t.cols)))
	}
	for r := 0; r < n; r++ {
		row := make([]value.Value, len(cols))
		for j := range cols {
			v := cols[j][r]
			if v == nil {
				v = value.NullValue
			}
			row[j] = v
		}
		t.rows = append(t.rows, row)
	}
}

// ReadColumns appends rows [from, to) to dst, a columnar buffer with
// one slice per column in table order (dst[j] receives column j's
// values). This is the batch read used by the vectorized table scan:
// values are appended without per-row map or slice allocation. Nil
// cells are surfaced as null, matching Get.
func (t *Table) ReadColumns(from, to int, dst [][]value.Value) {
	if len(dst) != len(t.cols) {
		panic(fmt.Sprintf("table: batch width %d != %d columns", len(dst), len(t.cols)))
	}
	for i := from; i < to; i++ {
		row := t.rows[i]
		for j := range dst {
			v := row[j]
			if v == nil {
				v = value.NullValue
			}
			dst[j] = append(dst[j], v)
		}
	}
}

// AppendMap adds a record given as a map; missing columns become null.
func (t *Table) AppendMap(m map[string]value.Value) {
	row := make([]value.Value, len(t.cols))
	for i, c := range t.cols {
		if v, ok := m[c]; ok && v != nil {
			row[i] = v
		} else {
			row[i] = value.NullValue
		}
	}
	t.rows = append(t.rows, row)
}

// Get returns the value of the named column in row i (null for a missing
// column, which arises when legacy FOREACH bodies reference outer rows).
func (t *Table) Get(i int, col string) value.Value {
	j, ok := t.colIdx[col]
	if !ok {
		return value.NullValue
	}
	v := t.rows[i][j]
	if v == nil {
		return value.NullValue
	}
	return v
}

// Set overwrites the value of the named column in row i.
func (t *Table) Set(i int, col string, v value.Value) {
	j, ok := t.colIdx[col]
	if !ok {
		panic(fmt.Sprintf("table: no column %q", col))
	}
	if v == nil {
		v = value.NullValue
	}
	t.rows[i][j] = v
}

// Row returns row i as a map from column names to values. The map is
// freshly allocated; mutating it does not affect the table.
func (t *Table) Row(i int) map[string]value.Value {
	m := make(map[string]value.Value, len(t.cols))
	for j, c := range t.cols {
		v := t.rows[i][j]
		if v == nil {
			v = value.NullValue
		}
		m[c] = v
	}
	return m
}

// Values returns row i as a value slice in column order (not aliased).
func (t *Table) Values(i int) []value.Value {
	out := make([]value.Value, len(t.cols))
	for j := range t.cols {
		v := t.rows[i][j]
		if v == nil {
			v = value.NullValue
		}
		out[j] = v
	}
	return out
}

// Clone returns a deep copy of the table structure (values are shared,
// rows are not).
func (t *Table) Clone() *Table {
	n := New(t.cols...)
	n.rows = make([][]value.Value, len(t.rows))
	for i, r := range t.rows {
		n.rows[i] = append([]value.Value(nil), r...)
	}
	return n
}

// CloneEmpty returns an empty table with the same columns.
func (t *Table) CloneEmpty() *Table { return New(t.cols...) }

// AppendTable appends all rows of other, which must have the same column
// set (in any order). This is bag union (the ⊎ of the MERGE ALL
// semantics).
func (t *Table) AppendTable(other *Table) error {
	if len(other.cols) != len(t.cols) {
		return fmt.Errorf("table: bag union of incompatible tables (%v vs %v)", t.cols, other.cols)
	}
	perm := make([]int, len(t.cols))
	for i, c := range t.cols {
		j, ok := other.colIdx[c]
		if !ok {
			return fmt.Errorf("table: bag union of incompatible tables (%v vs %v)", t.cols, other.cols)
		}
		perm[i] = j
	}
	for r := range other.rows {
		row := make([]value.Value, len(t.cols))
		for i := range t.cols {
			row[i] = other.rows[r][perm[i]]
		}
		t.rows = append(t.rows, row)
	}
	return nil
}

// Reverse reverses the row order in place (the "bottom-up" evaluation
// order of Example 3).
func (t *Table) Reverse() {
	for i, j := 0, len(t.rows)-1; i < j; i, j = i+1, j-1 {
		t.rows[i], t.rows[j] = t.rows[j], t.rows[i]
	}
}

// Permute reorders rows by the given permutation of indices.
func (t *Table) Permute(perm []int) {
	if len(perm) != len(t.rows) {
		panic("table: bad permutation length")
	}
	out := make([][]value.Value, len(t.rows))
	for i, p := range perm {
		out[i] = t.rows[p]
	}
	t.rows = out
}

// SortStable sorts rows by the given less function over row indices,
// keeping the relative order of equal rows.
func (t *Table) SortStable(less func(i, j int) bool) {
	idx := make([]int, len(t.rows))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return less(idx[a], idx[b]) })
	t.Permute(idx)
}

// Distinct removes duplicate rows under value equivalence, keeping first
// occurrences in order.
func (t *Table) Distinct() {
	seen := make(map[string]bool, len(t.rows))
	out := t.rows[:0]
	for _, row := range t.rows {
		k := value.KeyList(row)
		if !seen[k] {
			seen[k] = true
			out = append(out, row)
		}
	}
	t.rows = out
}

// Slice keeps rows [from, to) (clamped), implementing SKIP/LIMIT.
func (t *Table) Slice(from, to int) {
	if from < 0 {
		from = 0
	}
	if to > len(t.rows) {
		to = len(t.rows)
	}
	if from >= to {
		t.rows = nil
		return
	}
	t.rows = t.rows[from:to]
}

// String renders the table for debugging and the REPL.
func (t *Table) String() string {
	var sb strings.Builder
	sb.WriteString(strings.Join(t.cols, " | "))
	sb.WriteString("\n")
	for i := range t.rows {
		var parts []string
		for j := range t.cols {
			v := t.rows[i][j]
			if v == nil {
				v = value.NullValue
			}
			parts = append(parts, v.String())
		}
		sb.WriteString(strings.Join(parts, " | "))
		sb.WriteString("\n")
	}
	return sb.String()
}
