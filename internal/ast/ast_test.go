package ast

import (
	"strings"
	"testing"
)

func TestMergeFormString(t *testing.T) {
	if MergeLegacy.String() != "MERGE" || MergeAll.String() != "MERGE ALL" || MergeSame.String() != "MERGE SAME" {
		t.Error("MergeForm strings")
	}
}

func TestQuantKindString(t *testing.T) {
	want := map[QuantKind]string{QuantAll: "all", QuantAny: "any", QuantNone: "none", QuantSingle: "single"}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("QuantKind(%d) = %q, want %q", k, k.String(), s)
		}
	}
}

func TestReadingUpdatingClassification(t *testing.T) {
	reading := []Clause{&MatchClause{}, &UnwindClause{}, &LoadCSVClause{}}
	for _, c := range reading {
		if !c.Reading() || c.Updating() {
			t.Errorf("%T should be reading-only", c)
		}
	}
	updating := []Clause{&CreateClause{}, &MergeClause{}, &SetClause{}, &RemoveClause{}, &DeleteClause{}, &ForeachClause{}}
	for _, c := range updating {
		if c.Reading() || !c.Updating() {
			t.Errorf("%T should be updating-only", c)
		}
	}
	neither := []Clause{&WithClause{}, &ReturnClause{}}
	for _, c := range neither {
		if c.Reading() || c.Updating() {
			t.Errorf("%T should be neither", c)
		}
	}
}

func TestWalkPrune(t *testing.T) {
	// a + count(b): pruning at the FuncCall must not descend into b.
	e := &BinaryOp{
		Op:   OpAdd,
		Left: &Variable{Name: "a"},
		Right: &FuncCall{
			Name: "count",
			Args: []Expr{&Variable{Name: "b"}},
		},
	}
	var visited []string
	Walk(e, func(x Expr) bool {
		if v, ok := x.(*Variable); ok {
			visited = append(visited, v.Name)
		}
		_, isCall := x.(*FuncCall)
		return !isCall
	})
	if len(visited) != 1 || visited[0] != "a" {
		t.Errorf("visited = %v, want [a]", visited)
	}
}

func TestWalkAllNodeKinds(t *testing.T) {
	// A deliberately deep expression touching every Walk branch.
	e := &CaseExpr{
		Test: &Index{Expr: &Variable{Name: "xs"}, Index: &Literal{Value: int64(0)}},
		Whens: []Expr{
			&Slice{Expr: &Variable{Name: "xs"}, From: &Literal{Value: int64(0)}, To: nil},
		},
		Thens: []Expr{
			&ListComprehension{
				Var:   "x",
				List:  &ListLit{Elems: []Expr{&Literal{Value: int64(1)}}},
				Where: &IsNull{Expr: &Variable{Name: "x"}},
				Proj:  &UnaryOp{Op: OpNeg, Expr: &Variable{Name: "x"}},
			},
		},
		Else: &Reduce{
			Acc:  "acc",
			Init: &Literal{Value: int64(0)},
			Var:  "v",
			List: &MapLit{Keys: []string{"k"}, Vals: []Expr{&Parameter{Name: "p"}}},
			Expr: &Quantifier{
				Kind:  QuantAny,
				Var:   "q",
				List:  &Variable{Name: "lst"},
				Where: &PropAccess{Expr: &Variable{Name: "q"}, Key: "ok"},
			},
		},
	}
	count := 0
	Walk(e, func(Expr) bool { count++; return true })
	if count < 15 {
		t.Errorf("visited %d nodes, expected a deep traversal", count)
	}
}

func TestVariablesExcludesBound(t *testing.T) {
	// reduce(acc = init, v IN lst | acc + v + free)
	e := &Reduce{
		Acc:  "acc",
		Init: &Variable{Name: "init"},
		Var:  "v",
		List: &Variable{Name: "lst"},
		Expr: &BinaryOp{
			Op:    OpAdd,
			Left:  &BinaryOp{Op: OpAdd, Left: &Variable{Name: "acc"}, Right: &Variable{Name: "v"}},
			Right: &Variable{Name: "free"},
		},
	}
	vars := Variables(e)
	want := []string{"init", "lst", "free"}
	if len(vars) != len(want) {
		t.Fatalf("Variables = %v, want %v", vars, want)
	}
	for i := range want {
		if vars[i] != want[i] {
			t.Fatalf("Variables = %v, want %v", vars, want)
		}
	}
	// Quantifier binder.
	q := &Quantifier{Kind: QuantAll, Var: "x", List: &Variable{Name: "xs"},
		Where: &BinaryOp{Op: OpLt, Left: &Variable{Name: "x"}, Right: &Variable{Name: "lim"}}}
	vars = Variables(q)
	if len(vars) != 2 || vars[0] != "xs" || vars[1] != "lim" {
		t.Errorf("quantifier Variables = %v", vars)
	}
}

func TestContainsAggregateDirect(t *testing.T) {
	agg := &FuncCall{Name: "collect", Args: []Expr{&Variable{Name: "x"}}}
	if !ContainsAggregate(agg) {
		t.Error("collect is an aggregate")
	}
	if ContainsAggregate(&FuncCall{Name: "size", Args: []Expr{agg}}) != true {
		t.Error("nested aggregate must be detected")
	}
	if ContainsAggregate(&Variable{Name: "x"}) {
		t.Error("variable is not an aggregate")
	}
	if ContainsAggregate(nil) {
		t.Error("nil expression")
	}
}

func TestPrinterEdgeCases(t *testing.T) {
	cases := []struct {
		node interface{ String() string }
		want string
	}{
		{&NodePattern{}, "()"},
		{&NodePattern{Var: "n", Labels: []string{"A", "B"}}, "(n:A:B)"},
		{&RelPattern{Direction: DirBoth}, "--"},
		{&RelPattern{Direction: DirOut, Types: []string{"T"}}, "-[:T]->"},
		{&RelPattern{Direction: DirIn, Var: "r"}, "<-[r]-"},
		{&RelPattern{Direction: DirOut, VarLength: true, MinHops: -1, MaxHops: -1}, "-[*]->"},
		{&RelPattern{Direction: DirOut, VarLength: true, MinHops: 2, MaxHops: 2}, "-[*2]->"},
		{&RelPattern{Direction: DirOut, VarLength: true, MinHops: 2, MaxHops: 4}, "-[*2..4]->"},
		{&RelPattern{Direction: DirOut, VarLength: true, MinHops: -1, MaxHops: 4}, "-[*..4]->"},
		{&Literal{Value: nil}, "null"},
		{&Literal{Value: "a'b"}, `'a\'b'`},
		{&Literal{Value: true}, "true"},
		{&Literal{Value: int64(3)}, "3"},
		{&Literal{Value: 2.5}, "2.5"},
		{&IsNull{Expr: &Variable{Name: "x"}, Not: true}, "x IS NOT NULL"},
		{&UnaryOp{Op: OpPos, Expr: &Literal{Value: int64(1)}}, "+(1)"},
		{&FuncCall{Name: "count", Star: true}, "count(*)"},
		{&FuncCall{Name: "count", Distinct: true, Args: []Expr{&Variable{Name: "x"}}}, "count(DISTINCT x)"},
		{&Slice{Expr: &Variable{Name: "xs"}}, "xs[..]"},
	}
	for _, c := range cases {
		if got := c.node.String(); got != c.want {
			t.Errorf("%T.String() = %q, want %q", c.node, got, c.want)
		}
	}
}

func TestClauseStrings(t *testing.T) {
	del := &DeleteClause{Detach: true, Exprs: []Expr{&Variable{Name: "n"}}}
	if del.String() != "DETACH DELETE n" {
		t.Errorf("delete = %q", del.String())
	}
	lc := &LoadCSVClause{WithHeaders: true, URL: &Literal{Value: "f.csv"}, Var: "row", FieldTerm: ";"}
	if !strings.Contains(lc.String(), "WITH HEADERS") || !strings.Contains(lc.String(), "FIELDTERMINATOR") {
		t.Errorf("load csv = %q", lc.String())
	}
	m := &MergeClause{
		Form:    MergeLegacy,
		Pattern: []*PatternPart{{Nodes: []*NodePattern{{Var: "n"}}}},
		OnCreate: []SetItem{
			&SetProp{Target: &Variable{Name: "n"}, Key: "x", Value: &Literal{Value: int64(1)}},
		},
		OnMatch: []SetItem{
			&SetLabels{Var: "n", Labels: []string{"L"}},
		},
	}
	s := m.String()
	if !strings.Contains(s, "ON CREATE SET n.x = 1") || !strings.Contains(s, "ON MATCH SET n:L") {
		t.Errorf("merge = %q", s)
	}
}
