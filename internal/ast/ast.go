// Package ast defines the abstract syntax of Cypher statements as used by
// the parser and the execution engine. It covers the union of the Cypher 9
// grammar (Figures 2-5 of the paper) and the revised grammar (Figure 10):
// the parser accepts the superset, and per-dialect validation (package
// core) enforces each grammar's restrictions, so the paper's Section 4.4
// syntax comparison is expressible.
package ast

import (
	"strings"

	"repro/internal/value"
)

// TxnControl distinguishes transaction-control statements from queries.
type TxnControl int

// Transaction-control statement kinds.
const (
	// TxnNone marks an ordinary query statement.
	TxnNone TxnControl = iota
	// TxnBegin is BEGIN: open an explicit transaction.
	TxnBegin
	// TxnCommit is COMMIT: publish the open transaction's writes.
	TxnCommit
	// TxnRollback is ROLLBACK: discard the open transaction's writes.
	TxnRollback
)

func (t TxnControl) String() string {
	switch t {
	case TxnBegin:
		return "BEGIN"
	case TxnCommit:
		return "COMMIT"
	case TxnRollback:
		return "ROLLBACK"
	default:
		return ""
	}
}

// IndexStmt is a schema statement: CREATE INDEX ON :Label(prop) or, with
// Drop set, DROP INDEX ON :Label(prop). Index statements carry no
// clauses; like transaction control they are whole statements of their
// own, but unlike it they mutate the store and therefore run under the
// writer lock with journaled rollback.
type IndexStmt struct {
	Drop  bool
	Label string
	Prop  string
}

// String renders the statement as Cypher.
func (s *IndexStmt) String() string {
	verb := "CREATE"
	if s.Drop {
		verb = "DROP"
	}
	return verb + " INDEX ON :" + s.Label + "(" + s.Prop + ")"
}

// Statement is a top-level Cypher statement: one or more single queries
// combined with UNION [ALL], a transaction-control statement
// (BEGIN/COMMIT/ROLLBACK), or a schema statement (CREATE/DROP INDEX);
// for the latter two Queries is empty.
type Statement struct {
	Queries  []*SingleQuery // len >= 1 when TxnControl == TxnNone and Index == nil
	UnionAll []bool         // len == len(Queries)-1; true for UNION ALL
	// TxnControl is TxnNone for queries; BEGIN/COMMIT/ROLLBACK
	// statements carry the control kind and no queries.
	TxnControl TxnControl
	// Index is non-nil for CREATE INDEX / DROP INDEX statements, which
	// carry no queries.
	Index *IndexStmt
}

// Updating reports whether the statement writes: any clause of any
// query updates the graph, or the statement is a schema statement
// (CREATE/DROP INDEX mutate the store). The session layer uses it to
// route a statement: updating statements run under the writer lock,
// read-only statements stream from a pinned snapshot, transaction-
// control statements update nothing themselves.
func (s *Statement) Updating() bool {
	if s.Index != nil {
		return true
	}
	for _, q := range s.Queries {
		for _, c := range q.Clauses {
			if c.Updating() {
				return true
			}
		}
	}
	return false
}

// SingleQuery is a sequence of clauses.
type SingleQuery struct {
	Clauses []Clause
}

// Clause is implemented by all clause nodes.
type Clause interface {
	clause()
	// Reading reports whether this is a reading clause (MATCH, UNWIND,
	// LOAD CSV); WITH/RETURN are projections, everything else updates.
	Reading() bool
	// Updating reports whether this is an update clause per Figure 3.
	Updating() bool
	String() string
}

// MatchClause is MATCH or OPTIONAL MATCH with an optional WHERE.
type MatchClause struct {
	Optional bool
	Pattern  []*PatternPart
	Where    Expr // may be nil
}

// UnwindClause is UNWIND <expr> AS <var>.
type UnwindClause struct {
	Expr Expr
	Var  string
}

// LoadCSVClause is LOAD CSV [WITH HEADERS] FROM <expr> AS <var>
// [FIELDTERMINATOR <string>].
type LoadCSVClause struct {
	WithHeaders bool
	URL         Expr
	Var         string
	FieldTerm   string // empty means ','
}

// SortItem is one ORDER BY key.
type SortItem struct {
	Expr Expr
	Desc bool
}

// Projection is the shared body of WITH and RETURN.
type Projection struct {
	Distinct bool
	Star     bool
	Items    []*ReturnItem
	OrderBy  []*SortItem
	Skip     Expr // may be nil
	Limit    Expr // may be nil
}

// ReturnItem is an expression with an optional alias.
type ReturnItem struct {
	Expr  Expr
	Alias string // empty means use the expression text
}

// WithClause is WITH <projection> [WHERE <expr>].
type WithClause struct {
	Projection
	Where Expr // may be nil
}

// ReturnClause is RETURN <projection>.
type ReturnClause struct {
	Projection
}

// CreateClause is CREATE <pattern tuple>.
type CreateClause struct {
	Pattern []*PatternPart
}

// MergeForm distinguishes the three surface forms of MERGE.
type MergeForm int

// Merge forms.
const (
	MergeLegacy MergeForm = iota // Cypher 9 MERGE (single pattern, may be undirected)
	MergeAll                     // MERGE ALL (Figure 10)
	MergeSame                    // MERGE SAME (Figure 10)
)

func (f MergeForm) String() string {
	switch f {
	case MergeAll:
		return "MERGE ALL"
	case MergeSame:
		return "MERGE SAME"
	default:
		return "MERGE"
	}
}

// MergeClause is MERGE / MERGE ALL / MERGE SAME, with the optional
// ON CREATE SET / ON MATCH SET sub-clauses of Cypher 9.
type MergeClause struct {
	Form     MergeForm
	Pattern  []*PatternPart // legacy form: exactly one part
	OnCreate []SetItem
	OnMatch  []SetItem
}

// SetClause is SET <set items>.
type SetClause struct {
	Items []SetItem
}

// SetItem is one item of a SET clause (Figure 4).
type SetItem interface {
	setItem()
	String() string
}

// SetProp is SET <expr>.<key> = <expr>.
type SetProp struct {
	Target Expr // must evaluate to a node or relationship
	Key    string
	Value  Expr
}

// SetAllProps is SET <var> = <expr> (replace) or SET <var> += <expr> (merge).
type SetAllProps struct {
	Var   string
	Value Expr
	Add   bool // true for +=
}

// SetLabels is SET <var>:Label1:Label2.
type SetLabels struct {
	Var    string
	Labels []string
}

// RemoveClause is REMOVE <remove items>.
type RemoveClause struct {
	Items []RemoveItem
}

// RemoveItem is one item of a REMOVE clause (Figure 4).
type RemoveItem interface {
	removeItem()
	String() string
}

// RemoveProp is REMOVE <expr>.<key>.
type RemoveProp struct {
	Target Expr
	Key    string
}

// RemoveLabels is REMOVE <var>:Label1:Label2.
type RemoveLabels struct {
	Var    string
	Labels []string
}

// DeleteClause is [DETACH] DELETE <exprs>.
type DeleteClause struct {
	Detach bool
	Exprs  []Expr
}

// ForeachClause is FOREACH (<var> IN <expr> | <update clauses>).
type ForeachClause struct {
	Var  string
	List Expr
	Body []Clause // update clauses only
}

func (*MatchClause) clause()   {}
func (*UnwindClause) clause()  {}
func (*LoadCSVClause) clause() {}
func (*WithClause) clause()    {}
func (*ReturnClause) clause()  {}
func (*CreateClause) clause()  {}
func (*MergeClause) clause()   {}
func (*SetClause) clause()     {}
func (*RemoveClause) clause()  {}
func (*DeleteClause) clause()  {}
func (*ForeachClause) clause() {}

// Reading implements Clause.
func (*MatchClause) Reading() bool   { return true }
func (*UnwindClause) Reading() bool  { return true }
func (*LoadCSVClause) Reading() bool { return true }
func (*WithClause) Reading() bool    { return false }
func (*ReturnClause) Reading() bool  { return false }
func (*CreateClause) Reading() bool  { return false }
func (*MergeClause) Reading() bool   { return false }
func (*SetClause) Reading() bool     { return false }
func (*RemoveClause) Reading() bool  { return false }
func (*DeleteClause) Reading() bool  { return false }
func (*ForeachClause) Reading() bool { return false }

// Updating implements Clause (the update clauses of Figure 3).
func (*MatchClause) Updating() bool   { return false }
func (*UnwindClause) Updating() bool  { return false }
func (*LoadCSVClause) Updating() bool { return false }
func (*WithClause) Updating() bool    { return false }
func (*ReturnClause) Updating() bool  { return false }
func (*CreateClause) Updating() bool  { return true }
func (*MergeClause) Updating() bool   { return true }
func (*SetClause) Updating() bool     { return true }
func (*RemoveClause) Updating() bool  { return true }
func (*DeleteClause) Updating() bool  { return true }
func (*ForeachClause) Updating() bool { return true }

func (*SetProp) setItem()     {}
func (*SetAllProps) setItem() {}
func (*SetLabels) setItem()   {}

func (*RemoveProp) removeItem()   {}
func (*RemoveLabels) removeItem() {}

// Direction of a relationship pattern.
type Direction int

// Relationship pattern directions.
const (
	DirBoth Direction = iota // -[..]-
	DirOut                   // -[..]->
	DirIn                    // <-[..]-
)

// PatternPart is an optionally named path pattern: a sequence of node
// patterns separated by relationship patterns.
type PatternPart struct {
	Var   string // path variable; empty if unnamed
	Nodes []*NodePattern
	Rels  []*RelPattern // len == len(Nodes)-1
}

// NodePattern is ( var? :Label* {props}? ).
type NodePattern struct {
	Var    string
	Labels []string
	Props  Expr // nil, a MapLit, or a Parameter
}

// RelPattern is -[ var? :TYPE|TYPE2* {props}? *min..max? ]-> etc.
type RelPattern struct {
	Var       string
	Types     []string
	Props     Expr
	Direction Direction
	VarLength bool
	MinHops   int // valid when VarLength; -1 means unbounded below (defaults to 1)
	MaxHops   int // valid when VarLength; -1 means unbounded above
}

// Expr is implemented by all expression nodes.
type Expr interface {
	expr()
	String() string
}

// Literal is a constant value: int64, float64, string, bool, or nil.
type Literal struct {
	Value any
}

// Const is a plan-time constant: the result of evaluating a closed,
// pure, deterministic subtree during the constant-folding pass
// (internal/expr.Fold). The parser never produces one. Unlike Literal
// it carries an already-computed runtime value, so lists, maps and
// folded function results are representable and evaluation is a direct
// return.
type Const struct {
	Val value.Value
}

// Variable references a binding in the driving table.
type Variable struct {
	Name string
}

// Parameter is $name.
type Parameter struct {
	Name string
}

// PropAccess is <expr>.key.
type PropAccess struct {
	Expr Expr
	Key  string
}

// Index is <expr>[<expr>] subscripting.
type Index struct {
	Expr  Expr
	Index Expr
}

// Slice is <expr>[from..to].
type Slice struct {
	Expr Expr
	From Expr // may be nil
	To   Expr // may be nil
}

// UnaryOp codes.
type UnaryOpKind int

// Unary operators.
const (
	OpNot UnaryOpKind = iota
	OpNeg
	OpPos
)

// UnaryOp is NOT/-/+ applied to one operand.
type UnaryOp struct {
	Op   UnaryOpKind
	Expr Expr
}

// BinaryOpKind codes.
type BinaryOpKind int

// Binary operators.
const (
	OpAnd BinaryOpKind = iota
	OpOr
	OpXor
	OpEq
	OpNeq
	OpLt
	OpLeq
	OpGt
	OpGeq
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpPow
	OpIn
	OpStartsWith
	OpEndsWith
	OpContains
)

var binOpNames = map[BinaryOpKind]string{
	OpAnd: "AND", OpOr: "OR", OpXor: "XOR", OpEq: "=", OpNeq: "<>",
	OpLt: "<", OpLeq: "<=", OpGt: ">", OpGeq: ">=", OpAdd: "+",
	OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%", OpPow: "^",
	OpIn: "IN", OpStartsWith: "STARTS WITH", OpEndsWith: "ENDS WITH",
	OpContains: "CONTAINS",
}

// BinaryOp is a binary operator application.
type BinaryOp struct {
	Op          BinaryOpKind
	Left, Right Expr
}

// IsNull is <expr> IS [NOT] NULL.
type IsNull struct {
	Expr Expr
	Not  bool
}

// ListLit is [e1, e2, ...].
type ListLit struct {
	Elems []Expr
}

// MapLit is {k1: e1, k2: e2, ...} with deterministic key order.
type MapLit struct {
	Keys []string
	Vals []Expr
}

// FuncCall is name(args...) with optional DISTINCT; Star marks count(*).
type FuncCall struct {
	Name     string // lower-cased
	Distinct bool
	Star     bool
	Args     []Expr
}

// CaseExpr covers both the simple form (Test != nil) and the searched form.
type CaseExpr struct {
	Test  Expr // may be nil
	Whens []Expr
	Thens []Expr
	Else  Expr // may be nil
}

// ListComprehension is [x IN list WHERE pred | proj].
type ListComprehension struct {
	Var   string
	List  Expr
	Where Expr // may be nil
	Proj  Expr // may be nil (identity)
}

// QuantKind is the kind of a quantifier expression.
type QuantKind int

// Quantifier kinds.
const (
	QuantAll QuantKind = iota
	QuantAny
	QuantNone
	QuantSingle
)

func (q QuantKind) String() string {
	switch q {
	case QuantAll:
		return "all"
	case QuantAny:
		return "any"
	case QuantNone:
		return "none"
	default:
		return "single"
	}
}

// Quantifier is all/any/none/single(x IN list WHERE pred).
type Quantifier struct {
	Kind  QuantKind
	Var   string
	List  Expr
	Where Expr
}

// Reduce is reduce(acc = init, x IN list | expr).
type Reduce struct {
	Acc  string
	Init Expr
	Var  string
	List Expr
	Expr Expr
}

func (*Literal) expr()           {}
func (*Const) expr()             {}
func (*Variable) expr()          {}
func (*Parameter) expr()         {}
func (*PropAccess) expr()        {}
func (*Index) expr()             {}
func (*Slice) expr()             {}
func (*UnaryOp) expr()           {}
func (*BinaryOp) expr()          {}
func (*IsNull) expr()            {}
func (*ListLit) expr()           {}
func (*MapLit) expr()            {}
func (*FuncCall) expr()          {}
func (*CaseExpr) expr()          {}
func (*ListComprehension) expr() {}
func (*Quantifier) expr()        {}
func (*Reduce) expr()            {}

// AggregateFuncs lists the aggregation function names recognized by the
// projection machinery.
var AggregateFuncs = map[string]bool{
	"count": true, "sum": true, "avg": true, "min": true, "max": true,
	"collect": true, "stdev": true, "stdevp": true,
}

// ContainsAggregate reports whether the expression tree contains an
// aggregation function call.
func ContainsAggregate(e Expr) bool {
	found := false
	Walk(e, func(x Expr) bool {
		if f, ok := x.(*FuncCall); ok && AggregateFuncs[strings.ToLower(f.Name)] {
			found = true
			return false
		}
		return !found
	})
	return found
}

// Walk visits e and its subexpressions in preorder; if f returns false the
// walk does not descend into the current node's children.
func Walk(e Expr, f func(Expr) bool) {
	if e == nil || !f(e) {
		return
	}
	switch x := e.(type) {
	case *PropAccess:
		Walk(x.Expr, f)
	case *Index:
		Walk(x.Expr, f)
		Walk(x.Index, f)
	case *Slice:
		Walk(x.Expr, f)
		Walk(x.From, f)
		Walk(x.To, f)
	case *UnaryOp:
		Walk(x.Expr, f)
	case *BinaryOp:
		Walk(x.Left, f)
		Walk(x.Right, f)
	case *IsNull:
		Walk(x.Expr, f)
	case *ListLit:
		for _, el := range x.Elems {
			Walk(el, f)
		}
	case *MapLit:
		for _, v := range x.Vals {
			Walk(v, f)
		}
	case *FuncCall:
		for _, a := range x.Args {
			Walk(a, f)
		}
	case *CaseExpr:
		Walk(x.Test, f)
		for i := range x.Whens {
			Walk(x.Whens[i], f)
			Walk(x.Thens[i], f)
		}
		Walk(x.Else, f)
	case *ListComprehension:
		Walk(x.List, f)
		Walk(x.Where, f)
		Walk(x.Proj, f)
	case *Quantifier:
		Walk(x.List, f)
		Walk(x.Where, f)
	case *Reduce:
		Walk(x.Init, f)
		Walk(x.List, f)
		Walk(x.Expr, f)
	}
}

// Variables returns the free variable names referenced in the expression,
// in first-appearance order, excluding those bound by comprehensions,
// quantifiers or reduce within their bodies.
func Variables(e Expr) []string {
	var out []string
	seen := make(map[string]bool)
	var visit func(e Expr, bound map[string]bool)
	visit = func(e Expr, bound map[string]bool) {
		if e == nil {
			return
		}
		switch x := e.(type) {
		case *Variable:
			if !bound[x.Name] && !seen[x.Name] {
				seen[x.Name] = true
				out = append(out, x.Name)
			}
		case *ListComprehension:
			visit(x.List, bound)
			inner := withBound(bound, x.Var)
			visit(x.Where, inner)
			visit(x.Proj, inner)
		case *Quantifier:
			visit(x.List, bound)
			visit(x.Where, withBound(bound, x.Var))
		case *Reduce:
			visit(x.Init, bound)
			visit(x.List, bound)
			visit(x.Expr, withBound(bound, x.Acc, x.Var))
		case *PropAccess:
			visit(x.Expr, bound)
		case *Index:
			visit(x.Expr, bound)
			visit(x.Index, bound)
		case *Slice:
			visit(x.Expr, bound)
			visit(x.From, bound)
			visit(x.To, bound)
		case *UnaryOp:
			visit(x.Expr, bound)
		case *BinaryOp:
			visit(x.Left, bound)
			visit(x.Right, bound)
		case *IsNull:
			visit(x.Expr, bound)
		case *ListLit:
			for _, el := range x.Elems {
				visit(el, bound)
			}
		case *MapLit:
			for _, v := range x.Vals {
				visit(v, bound)
			}
		case *FuncCall:
			for _, a := range x.Args {
				visit(a, bound)
			}
		case *CaseExpr:
			visit(x.Test, bound)
			for i := range x.Whens {
				visit(x.Whens[i], bound)
				visit(x.Thens[i], bound)
			}
			visit(x.Else, bound)
		}
	}
	visit(e, map[string]bool{})
	return out
}

func withBound(bound map[string]bool, names ...string) map[string]bool {
	inner := make(map[string]bool, len(bound)+len(names))
	for k := range bound {
		inner[k] = true
	}
	for _, n := range names {
		inner[n] = true
	}
	return inner
}
