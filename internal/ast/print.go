package ast

import (
	"fmt"
	"strconv"
	"strings"
)

// String renders the statement as approximately round-trippable Cypher.
func (s *Statement) String() string {
	if s.TxnControl != TxnNone {
		return s.TxnControl.String()
	}
	if s.Index != nil {
		return s.Index.String()
	}
	var parts []string
	for i, q := range s.Queries {
		if i > 0 {
			if s.UnionAll[i-1] {
				parts = append(parts, "UNION ALL")
			} else {
				parts = append(parts, "UNION")
			}
		}
		parts = append(parts, q.String())
	}
	return strings.Join(parts, " ")
}

// String renders the query's clauses space-separated.
func (q *SingleQuery) String() string {
	parts := make([]string, len(q.Clauses))
	for i, c := range q.Clauses {
		parts[i] = c.String()
	}
	return strings.Join(parts, " ")
}

func (c *MatchClause) String() string {
	s := "MATCH " + patternString(c.Pattern)
	if c.Optional {
		s = "OPTIONAL " + s
	}
	if c.Where != nil {
		s += " WHERE " + c.Where.String()
	}
	return s
}

func (c *UnwindClause) String() string {
	return "UNWIND " + c.Expr.String() + " AS " + c.Var
}

func (c *LoadCSVClause) String() string {
	s := "LOAD CSV "
	if c.WithHeaders {
		s += "WITH HEADERS "
	}
	s += "FROM " + c.URL.String() + " AS " + c.Var
	if c.FieldTerm != "" {
		s += " FIELDTERMINATOR " + strconv.Quote(c.FieldTerm)
	}
	return s
}

func (p *Projection) body() string {
	var sb strings.Builder
	if p.Distinct {
		sb.WriteString("DISTINCT ")
	}
	if p.Star {
		sb.WriteString("*")
	}
	for i, it := range p.Items {
		if i > 0 || p.Star {
			sb.WriteString(", ")
		}
		sb.WriteString(it.Expr.String())
		if it.Alias != "" {
			sb.WriteString(" AS " + it.Alias)
		}
	}
	if len(p.OrderBy) > 0 {
		sb.WriteString(" ORDER BY ")
		for i, s := range p.OrderBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(s.Expr.String())
			if s.Desc {
				sb.WriteString(" DESC")
			}
		}
	}
	if p.Skip != nil {
		sb.WriteString(" SKIP " + p.Skip.String())
	}
	if p.Limit != nil {
		sb.WriteString(" LIMIT " + p.Limit.String())
	}
	return sb.String()
}

func (c *WithClause) String() string {
	s := "WITH " + c.body()
	if c.Where != nil {
		s += " WHERE " + c.Where.String()
	}
	return s
}

func (c *ReturnClause) String() string { return "RETURN " + c.body() }

func (c *CreateClause) String() string { return "CREATE " + patternString(c.Pattern) }

func (c *MergeClause) String() string {
	s := c.Form.String() + " " + patternString(c.Pattern)
	if len(c.OnCreate) > 0 {
		s += " ON CREATE SET " + setItemsString(c.OnCreate)
	}
	if len(c.OnMatch) > 0 {
		s += " ON MATCH SET " + setItemsString(c.OnMatch)
	}
	return s
}

func (c *SetClause) String() string { return "SET " + setItemsString(c.Items) }

func setItemsString(items []SetItem) string {
	parts := make([]string, len(items))
	for i, it := range items {
		parts[i] = it.String()
	}
	return strings.Join(parts, ", ")
}

func (c *RemoveClause) String() string {
	parts := make([]string, len(c.Items))
	for i, it := range c.Items {
		parts[i] = it.String()
	}
	return "REMOVE " + strings.Join(parts, ", ")
}

func (c *DeleteClause) String() string {
	parts := make([]string, len(c.Exprs))
	for i, e := range c.Exprs {
		parts[i] = e.String()
	}
	s := "DELETE " + strings.Join(parts, ", ")
	if c.Detach {
		s = "DETACH " + s
	}
	return s
}

func (c *ForeachClause) String() string {
	var body []string
	for _, cl := range c.Body {
		body = append(body, cl.String())
	}
	return fmt.Sprintf("FOREACH (%s IN %s | %s)", c.Var, c.List.String(), strings.Join(body, " "))
}

func (i *SetProp) String() string {
	return i.Target.String() + "." + i.Key + " = " + i.Value.String()
}

func (i *SetAllProps) String() string {
	op := " = "
	if i.Add {
		op = " += "
	}
	return i.Var + op + i.Value.String()
}

func (i *SetLabels) String() string {
	return i.Var + ":" + strings.Join(i.Labels, ":")
}

func (i *RemoveProp) String() string { return i.Target.String() + "." + i.Key }

func (i *RemoveLabels) String() string {
	return i.Var + ":" + strings.Join(i.Labels, ":")
}

func patternString(parts []*PatternPart) string {
	out := make([]string, len(parts))
	for i, p := range parts {
		out[i] = p.String()
	}
	return strings.Join(out, ", ")
}

// String renders the pattern part in ASCII-art notation.
func (p *PatternPart) String() string {
	var sb strings.Builder
	if p.Var != "" {
		sb.WriteString(p.Var + " = ")
	}
	for i, n := range p.Nodes {
		if i > 0 {
			sb.WriteString(p.Rels[i-1].String())
		}
		sb.WriteString(n.String())
	}
	return sb.String()
}

// String renders the node pattern.
func (n *NodePattern) String() string {
	var sb strings.Builder
	sb.WriteString("(")
	sb.WriteString(n.Var)
	for _, l := range n.Labels {
		sb.WriteString(":" + l)
	}
	if n.Props != nil {
		if n.Var != "" || len(n.Labels) > 0 {
			sb.WriteString(" ")
		}
		sb.WriteString(n.Props.String())
	}
	sb.WriteString(")")
	return sb.String()
}

// String renders the relationship pattern.
func (r *RelPattern) String() string {
	var body strings.Builder
	body.WriteString(r.Var)
	for i, t := range r.Types {
		if i == 0 {
			body.WriteString(":" + t)
		} else {
			body.WriteString("|" + t)
		}
	}
	if r.VarLength {
		body.WriteString("*")
		if r.MinHops >= 0 {
			body.WriteString(strconv.Itoa(r.MinHops))
		}
		if r.MaxHops >= 0 || r.MinHops >= 0 {
			if !(r.MinHops >= 0 && r.MaxHops == r.MinHops) {
				body.WriteString("..")
				if r.MaxHops >= 0 {
					body.WriteString(strconv.Itoa(r.MaxHops))
				}
			}
		}
	}
	if r.Props != nil {
		body.WriteString(" " + r.Props.String())
	}
	mid := ""
	if body.Len() > 0 {
		mid = "[" + body.String() + "]"
	}
	switch r.Direction {
	case DirOut:
		return "-" + mid + "->"
	case DirIn:
		return "<-" + mid + "-"
	default:
		return "-" + mid + "-"
	}
}

func (e *Literal) String() string {
	switch v := e.Value.(type) {
	case nil:
		return "null"
	case string:
		return "'" + strings.ReplaceAll(v, "'", "\\'") + "'"
	case bool:
		return strconv.FormatBool(v)
	case int64:
		return strconv.FormatInt(v, 10)
	case float64:
		return strconv.FormatFloat(v, 'g', -1, 64)
	default:
		return fmt.Sprintf("%v", v)
	}
}

// String renders the folded value; value.Value rendering matches
// Literal rendering for scalars, so folded predicates read naturally in
// EXPLAIN output.
func (e *Const) String() string { return e.Val.String() }

func (e *Variable) String() string  { return e.Name }
func (e *Parameter) String() string { return "$" + e.Name }

func (e *PropAccess) String() string { return e.Expr.String() + "." + e.Key }

func (e *Index) String() string {
	return e.Expr.String() + "[" + e.Index.String() + "]"
}

func (e *Slice) String() string {
	from, to := "", ""
	if e.From != nil {
		from = e.From.String()
	}
	if e.To != nil {
		to = e.To.String()
	}
	return e.Expr.String() + "[" + from + ".." + to + "]"
}

func (e *UnaryOp) String() string {
	switch e.Op {
	case OpNot:
		return "NOT (" + e.Expr.String() + ")"
	case OpNeg:
		return "-(" + e.Expr.String() + ")"
	default:
		return "+(" + e.Expr.String() + ")"
	}
}

func (e *BinaryOp) String() string {
	return "(" + e.Left.String() + " " + binOpNames[e.Op] + " " + e.Right.String() + ")"
}

func (e *IsNull) String() string {
	if e.Not {
		return e.Expr.String() + " IS NOT NULL"
	}
	return e.Expr.String() + " IS NULL"
}

func (e *ListLit) String() string {
	parts := make([]string, len(e.Elems))
	for i, el := range e.Elems {
		parts[i] = el.String()
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

func (e *MapLit) String() string {
	parts := make([]string, len(e.Keys))
	for i, k := range e.Keys {
		parts[i] = k + ": " + e.Vals[i].String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

func (e *FuncCall) String() string {
	var sb strings.Builder
	sb.WriteString(e.Name + "(")
	if e.Distinct {
		sb.WriteString("DISTINCT ")
	}
	if e.Star {
		sb.WriteString("*")
	}
	for i, a := range e.Args {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(a.String())
	}
	sb.WriteString(")")
	return sb.String()
}

func (e *CaseExpr) String() string {
	var sb strings.Builder
	sb.WriteString("CASE")
	if e.Test != nil {
		sb.WriteString(" " + e.Test.String())
	}
	for i := range e.Whens {
		sb.WriteString(" WHEN " + e.Whens[i].String() + " THEN " + e.Thens[i].String())
	}
	if e.Else != nil {
		sb.WriteString(" ELSE " + e.Else.String())
	}
	sb.WriteString(" END")
	return sb.String()
}

func (e *ListComprehension) String() string {
	var sb strings.Builder
	sb.WriteString("[" + e.Var + " IN " + e.List.String())
	if e.Where != nil {
		sb.WriteString(" WHERE " + e.Where.String())
	}
	if e.Proj != nil {
		sb.WriteString(" | " + e.Proj.String())
	}
	sb.WriteString("]")
	return sb.String()
}

func (e *Quantifier) String() string {
	return fmt.Sprintf("%s(%s IN %s WHERE %s)", e.Kind, e.Var, e.List.String(), e.Where.String())
}

func (e *Reduce) String() string {
	return fmt.Sprintf("reduce(%s = %s, %s IN %s | %s)",
		e.Acc, e.Init.String(), e.Var, e.List.String(), e.Expr.String())
}
