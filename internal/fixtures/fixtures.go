// Package fixtures builds the graphs and driving tables of the paper's
// worked examples, shared by tests, the experiment runner and the
// examples. Node handles are returned by name (v1, p1, u1, ... exactly as
// in Figure 1) so assertions can reference the paper's notation directly.
package fixtures

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/table"
	"repro/internal/value"
)

// Figure1 builds the solid-line marketplace graph of Figure 1: one
// vendor, three products, two users, and the OFFERS/ORDERED
// relationships. The returned map gives the paper's node names.
func Figure1() (*graph.Graph, map[string]graph.NodeID) {
	g := graph.New()
	ids := make(map[string]graph.NodeID)
	node := func(name, label string, props value.Map) {
		ids[name] = g.CreateNode([]string{label}, props).ID
	}
	node("v1", "Vendor", value.Map{"id": value.Int(60), "name": value.String("cStore")})
	node("p1", "Product", value.Map{"id": value.Int(125), "name": value.String("laptop")})
	node("p2", "Product", value.Map{"id": value.Int(125), "name": value.String("notebook")})
	node("u1", "User", value.Map{"id": value.Int(89), "name": value.String("Bob")})
	node("u2", "User", value.Map{"id": value.Int(99), "name": value.String("Jane")})
	node("p3", "Product", value.Map{"id": value.Int(85), "name": value.String("tablet")})
	rel := func(src, tgt, typ string) {
		if _, err := g.CreateRel(ids[src], ids[tgt], typ, nil); err != nil {
			panic(fmt.Sprintf("fixtures: %v", err))
		}
	}
	rel("v1", "p1", "OFFERS")
	rel("v1", "p2", "OFFERS")
	rel("u1", "p1", "ORDERED")
	rel("u1", "p3", "ORDERED")
	rel("u2", "p3", "ORDERED")
	rel("u2", "p2", "ORDERED")
	return g, ids
}

// CleanFigure1 builds Figure 1 but with distinct product ids (125, 126,
// 85), the state assumed by Example 2's "clean" variant and by queries
// that need unambiguous products.
func CleanFigure1() (*graph.Graph, map[string]graph.NodeID) {
	g, ids := Figure1()
	if err := g.SetNodeProp(ids["p2"], "id", value.Int(126)); err != nil {
		panic(err)
	}
	return g, ids
}

// Example3 builds the setting of Example 3 / Figure 6: five nodes
// (u1, u2, p, v1, v2) with no relationships, and the three-record driving
// table
//
//	user product vendor
//	u1   p       v1
//	u2   p       v2
//	u1   p       v2
//
// over the columns user, product, vendor.
func Example3() (*graph.Graph, *table.Table, map[string]graph.NodeID) {
	g := graph.New()
	ids := make(map[string]graph.NodeID)
	for _, name := range []string{"u1", "u2", "p", "v1", "v2"} {
		ids[name] = g.CreateNode(nil, value.Map{"name": value.String(name)}).ID
	}
	t := table.New("user", "product", "vendor")
	row := func(u, p, v string) {
		t.AppendRow(value.Node{ID: int64(ids[u])}, value.Node{ID: int64(ids[p])}, value.Node{ID: int64(ids[v])})
	}
	row("u1", "p", "v1")
	row("u2", "p", "v2")
	row("u1", "p", "v2")
	return g, t, ids
}

// Example5Table builds the driving table of Example 5 / Figure 7:
//
//	cid pid  date
//	98  125  2018-06-23
//	98  125  2018-07-06
//	98  null null
//	98  null null
//	99  125  2018-03-11
//	99  null null
func Example5Table() *table.Table {
	t := table.New("cid", "pid", "date")
	row := func(cid value.Value, pid value.Value, date value.Value) {
		t.AppendRow(cid, pid, date)
	}
	row(value.Int(98), value.Int(125), value.String("2018-06-23"))
	row(value.Int(98), value.Int(125), value.String("2018-07-06"))
	row(value.Int(98), value.NullValue, value.NullValue)
	row(value.Int(98), value.NullValue, value.NullValue)
	row(value.Int(99), value.Int(125), value.String("2018-03-11"))
	row(value.Int(99), value.NullValue, value.NullValue)
	return t
}

// Example6Table builds the driving table of Example 6 / Figure 8:
//
//	bid pid sid
//	98  125 97
//	99  85  98
func Example6Table() *table.Table {
	t := table.New("bid", "pid", "sid")
	t.AppendRow(value.Int(98), value.Int(125), value.Int(97))
	t.AppendRow(value.Int(99), value.Int(85), value.Int(98))
	return t
}

// Example7 builds the setting of Example 7 / Figure 9: four product
// nodes p1..p4 and the single-record driving table binding
// a,b,c,d,e,tgt to p1,p2,p3,p1,p2,p4.
func Example7() (*graph.Graph, *table.Table, map[string]graph.NodeID) {
	g := graph.New()
	ids := make(map[string]graph.NodeID)
	for _, name := range []string{"p1", "p2", "p3", "p4"} {
		ids[name] = g.CreateNode([]string{"Product"}, value.Map{"name": value.String(name)}).ID
	}
	t := table.New("a", "b", "c", "d", "e", "tgt")
	t.AppendRow(
		value.Node{ID: int64(ids["p1"])},
		value.Node{ID: int64(ids["p2"])},
		value.Node{ID: int64(ids["p3"])},
		value.Node{ID: int64(ids["p1"])},
		value.Node{ID: int64(ids["p2"])},
		value.Node{ID: int64(ids["p4"])},
	)
	return g, t, ids
}
