package graph

import (
	"errors"
	"testing"

	"repro/internal/value"
)

func TestCreateNode(t *testing.T) {
	g := New()
	n := g.CreateNode([]string{"Product", "New"}, value.Map{"id": value.Int(1), "gone": value.NullValue})
	if g.NumNodes() != 1 {
		t.Fatalf("NumNodes = %d", g.NumNodes())
	}
	if !n.HasLabel("Product") || !n.HasLabel("New") || n.HasLabel("User") {
		t.Error("labels wrong")
	}
	if got := n.SortedLabels(); len(got) != 2 || got[0] != "New" || got[1] != "Product" {
		t.Errorf("SortedLabels = %v", got)
	}
	if _, has := n.Props["gone"]; has {
		t.Error("null property should not be stored")
	}
	if n.Props["id"] != value.Int(1) {
		t.Error("id property missing")
	}
	if ids := g.NodeIDsByLabel("Product"); len(ids) != 1 || ids[0] != n.ID {
		t.Errorf("label index = %v", ids)
	}
}

func TestCreateRelValidation(t *testing.T) {
	g := New()
	a := g.CreateNode(nil, nil)
	b := g.CreateNode(nil, nil)
	if _, err := g.CreateRel(a.ID, b.ID, "", nil); err == nil {
		t.Error("empty type should fail")
	}
	if _, err := g.CreateRel(a.ID, 999, "T", nil); err == nil {
		t.Error("missing target should fail")
	}
	if _, err := g.CreateRel(999, b.ID, "T", nil); err == nil {
		t.Error("missing source should fail")
	}
	r, err := g.CreateRel(a.ID, b.ID, "KNOWS", value.Map{"w": value.Int(2), "nul": value.NullValue})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumRels() != 1 {
		t.Fatal("NumRels != 1")
	}
	if _, has := r.Props["nul"]; has {
		t.Error("null rel property stored")
	}
	if out := g.Outgoing(a.ID); len(out) != 1 || out[0] != r.ID {
		t.Errorf("Outgoing = %v", out)
	}
	if in := g.Incoming(b.ID); len(in) != 1 || in[0] != r.ID {
		t.Errorf("Incoming = %v", in)
	}
	if g.Degree(a.ID) != 1 || g.Degree(b.ID) != 1 {
		t.Error("degrees wrong")
	}
}

func TestDeleteNodeStrict(t *testing.T) {
	g := New()
	a := g.CreateNode(nil, nil)
	b := g.CreateNode(nil, nil)
	r, _ := g.CreateRel(a.ID, b.ID, "T", nil)
	err := g.DeleteNode(a.ID)
	var de *DanglingError
	if !errors.As(err, &de) {
		t.Fatalf("DeleteNode with attached rel: got %v, want DanglingError", err)
	}
	g.DeleteRel(r.ID)
	if err := g.DeleteNode(a.ID); err != nil {
		t.Fatalf("DeleteNode after rel removal: %v", err)
	}
	if g.NumNodes() != 1 {
		t.Error("node not deleted")
	}
	// Deleting missing entities is a no-op.
	if err := g.DeleteNode(a.ID); err != nil {
		t.Error("double delete should be no-op")
	}
	g.DeleteRel(r.ID)
}

func TestDeleteNodeUncheckedLeavesDangling(t *testing.T) {
	g := New()
	a := g.CreateNode(nil, nil)
	b := g.CreateNode(nil, nil)
	g.CreateRel(a.ID, b.ID, "T", nil)
	g.DeleteNodeUnchecked(a.ID)
	if err := g.Validate(); err == nil {
		t.Error("Validate should report dangling relationship")
	}
	if g.NumRels() != 1 {
		t.Error("rel should survive unchecked node deletion")
	}
}

func TestDetachDelete(t *testing.T) {
	g := New()
	a := g.CreateNode(nil, nil)
	b := g.CreateNode(nil, nil)
	c := g.CreateNode(nil, nil)
	g.CreateRel(a.ID, b.ID, "T", nil)
	g.CreateRel(c.ID, a.ID, "T", nil)
	g.CreateRel(a.ID, a.ID, "LOOP", nil)
	g.DetachDeleteNode(a.ID)
	if g.NumNodes() != 2 || g.NumRels() != 0 {
		t.Errorf("after detach delete: %d nodes %d rels", g.NumNodes(), g.NumRels())
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestSetAndRemoveProps(t *testing.T) {
	g := New()
	n := g.CreateNode(nil, nil)
	if err := g.SetNodeProp(n.ID, "x", value.Int(1)); err != nil {
		t.Fatal(err)
	}
	if n.Props["x"] != value.Int(1) {
		t.Error("prop not set")
	}
	// Setting null removes.
	if err := g.SetNodeProp(n.ID, "x", value.NullValue); err != nil {
		t.Fatal(err)
	}
	if _, has := n.Props["x"]; has {
		t.Error("null set should remove")
	}
	if err := g.SetNodeProp(999, "x", value.Int(1)); err == nil {
		t.Error("setting prop on missing node should fail")
	}

	a := g.CreateNode(nil, nil)
	r, _ := g.CreateRel(n.ID, a.ID, "T", nil)
	if err := g.SetRelProp(r.ID, "w", value.Float(1.5)); err != nil {
		t.Fatal(err)
	}
	if r.Props["w"] != value.Float(1.5) {
		t.Error("rel prop not set")
	}
	if err := g.SetRelProp(r.ID, "w", value.NullValue); err != nil {
		t.Fatal(err)
	}
	if _, has := r.Props["w"]; has {
		t.Error("null rel set should remove")
	}
	if err := g.SetRelProp(999, "w", value.Int(1)); err == nil {
		t.Error("setting prop on missing rel should fail")
	}
}

func TestLabels(t *testing.T) {
	g := New()
	n := g.CreateNode([]string{"A"}, nil)
	if err := g.AddLabel(n.ID, "B"); err != nil {
		t.Fatal(err)
	}
	if err := g.AddLabel(n.ID, "B"); err != nil { // idempotent
		t.Fatal(err)
	}
	if len(g.NodeIDsByLabel("B")) != 1 {
		t.Error("label index after add")
	}
	if err := g.RemoveLabel(n.ID, "A"); err != nil {
		t.Fatal(err)
	}
	if err := g.RemoveLabel(n.ID, "A"); err != nil { // idempotent
		t.Fatal(err)
	}
	if len(g.NodeIDsByLabel("A")) != 0 {
		t.Error("label index after remove")
	}
	if err := g.AddLabel(999, "X"); err == nil {
		t.Error("AddLabel on missing node should fail")
	}
	if err := g.RemoveLabel(999, "X"); err == nil {
		t.Error("RemoveLabel on missing node should fail")
	}
}

func TestCloneIndependence(t *testing.T) {
	g := New()
	a := g.CreateNode([]string{"L"}, value.Map{"x": value.Int(1)})
	b := g.CreateNode(nil, nil)
	g.CreateRel(a.ID, b.ID, "T", nil)

	c := g.Clone()
	c.SetNodeProp(a.ID, "x", value.Int(99))
	c.CreateNode([]string{"Extra"}, nil)
	c.DetachDeleteNode(b.ID)

	if g.Node(a.ID).Props["x"] != value.Int(1) {
		t.Error("clone mutation leaked into original (props)")
	}
	if g.NumNodes() != 2 || g.NumRels() != 1 {
		t.Error("clone mutation leaked into original (structure)")
	}
	// IDs continue independently but from the same point.
	n1 := g.CreateNode(nil, nil)
	n2 := c.CreateNode(nil, nil)
	if n1.ID == 0 || n2.ID == 0 {
		t.Error("id assignment broken")
	}
}

func TestNodeIDsSorted(t *testing.T) {
	g := New()
	for i := 0; i < 10; i++ {
		g.CreateNode(nil, nil)
	}
	ids := g.NodeIDs()
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatal("NodeIDs not ascending")
		}
	}
}

func TestJournalRollback(t *testing.T) {
	g := New()
	keep := g.CreateNode([]string{"Keep"}, value.Map{"v": value.Int(1)})
	other := g.CreateNode(nil, nil)
	relKept, _ := g.CreateRel(keep.ID, other.ID, "K", value.Map{"w": value.Int(5)})
	before := Fingerprint(g)

	j := g.BeginJournal()
	// A mix of every mutation kind.
	n := g.CreateNode([]string{"Temp"}, nil)
	g.CreateRel(n.ID, keep.ID, "T", nil)
	g.SetNodeProp(keep.ID, "v", value.Int(2))
	g.SetNodeProp(keep.ID, "new", value.Int(3))
	g.SetRelProp(relKept.ID, "w", value.Int(6))
	g.SetRelProp(relKept.ID, "w2", value.Int(7))
	g.AddLabel(keep.ID, "Added")
	g.RemoveLabel(keep.ID, "Keep")
	g.DeleteRel(relKept.ID)
	g.DetachDeleteNode(other.ID)
	if j.Len() == 0 {
		t.Fatal("journal recorded nothing")
	}
	j.Rollback()

	if after := Fingerprint(g); after != before {
		t.Errorf("rollback did not restore graph:\nbefore %q\nafter  %q", before, after)
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate after rollback: %v", err)
	}
	if g.Node(keep.ID).Props["v"] != value.Int(1) {
		t.Error("prop not restored")
	}
	if !g.Node(keep.ID).HasLabel("Keep") || g.Node(keep.ID).HasLabel("Added") {
		t.Error("labels not restored")
	}
	if g.Rel(relKept.ID) == nil || g.Rel(relKept.ID).Props["w"] != value.Int(5) {
		t.Error("rel not restored")
	}
}

func TestJournalCommit(t *testing.T) {
	g := New()
	j := g.BeginJournal()
	g.CreateNode(nil, nil)
	j.Commit()
	if g.NumNodes() != 1 {
		t.Error("commit dropped changes")
	}
	// A new journal can start after commit.
	j2 := g.BeginJournal()
	g.CreateNode(nil, nil)
	j2.Rollback()
	if g.NumNodes() != 1 {
		t.Error("rollback after commit wrong")
	}
}

func TestNestedJournalPanics(t *testing.T) {
	g := New()
	g.BeginJournal()
	defer func() {
		if recover() == nil {
			t.Error("nested journal should panic")
		}
	}()
	g.BeginJournal()
}
