package graph

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/value"
)

// This file implements a JSON snapshot format for property graphs, so
// databases can be persisted and the experiment figures exported. The
// format is stable and human-readable:
//
//	{
//	  "nodes": [{"id": 1, "labels": ["User"], "props": {"id": {"int": 89}}}],
//	  "rels":  [{"id": 1, "type": "ORDERED", "src": 1, "tgt": 2, "props": {}}]
//	}
//
// Property values carry explicit type tags so integers and floats
// round-trip exactly (a bare JSON number would not).

type jsonValue struct {
	Null   bool         `json:"null,omitempty"`
	Bool   *bool        `json:"bool,omitempty"`
	Int    *int64       `json:"int,omitempty"`
	Float  *float64     `json:"float,omitempty"`
	FloatS string       `json:"floatSpecial,omitempty"` // "nan", "+inf", "-inf"
	Str    *string      `json:"string,omitempty"`
	List   []jsonValue  `json:"list,omitempty"`
	IsList bool         `json:"isList,omitempty"`
	Map    mapJSONValue `json:"map,omitempty"`
	IsMap  bool         `json:"isMap,omitempty"`
}

type mapJSONValue map[string]jsonValue

func encodeValue(v value.Value) (jsonValue, error) {
	switch x := v.(type) {
	case value.Null:
		return jsonValue{Null: true}, nil
	case value.Bool:
		b := bool(x)
		return jsonValue{Bool: &b}, nil
	case value.Int:
		i := int64(x)
		return jsonValue{Int: &i}, nil
	case value.Float:
		f := float64(x)
		switch {
		case math.IsNaN(f):
			return jsonValue{FloatS: "nan"}, nil
		case math.IsInf(f, 1):
			return jsonValue{FloatS: "+inf"}, nil
		case math.IsInf(f, -1):
			return jsonValue{FloatS: "-inf"}, nil
		}
		return jsonValue{Float: &f}, nil
	case value.String:
		s := string(x)
		return jsonValue{Str: &s}, nil
	case value.List:
		out := jsonValue{IsList: true, List: make([]jsonValue, len(x))}
		for i, el := range x {
			ev, err := encodeValue(el)
			if err != nil {
				return jsonValue{}, err
			}
			out.List[i] = ev
		}
		return out, nil
	case value.Map:
		out := jsonValue{IsMap: true, Map: make(mapJSONValue, len(x))}
		for k, el := range x {
			ev, err := encodeValue(el)
			if err != nil {
				return jsonValue{}, err
			}
			out.Map[k] = ev
		}
		return out, nil
	default:
		return jsonValue{}, fmt.Errorf("graph: cannot serialize %s property", v.Kind())
	}
}

func decodeValue(j jsonValue) (value.Value, error) {
	switch {
	case j.Null:
		return value.NullValue, nil
	case j.Bool != nil:
		return value.Bool(*j.Bool), nil
	case j.Int != nil:
		return value.Int(*j.Int), nil
	case j.Float != nil:
		return value.Float(*j.Float), nil
	case j.FloatS != "":
		switch j.FloatS {
		case "nan":
			return value.Float(math.NaN()), nil
		case "+inf":
			return value.Float(math.Inf(1)), nil
		case "-inf":
			return value.Float(math.Inf(-1)), nil
		}
		return nil, fmt.Errorf("graph: unknown float special %q", j.FloatS)
	case j.Str != nil:
		return value.String(*j.Str), nil
	case j.IsList:
		out := make(value.List, len(j.List))
		for i, el := range j.List {
			v, err := decodeValue(el)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	case j.IsMap:
		out := make(value.Map, len(j.Map))
		for k, el := range j.Map {
			v, err := decodeValue(el)
			if err != nil {
				return nil, err
			}
			out[k] = v
		}
		return out, nil
	default:
		return nil, fmt.Errorf("graph: malformed serialized value")
	}
}

type jsonNode struct {
	ID     int64                `json:"id"`
	Labels []string             `json:"labels"`
	Props  map[string]jsonValue `json:"props"`
}

type jsonRel struct {
	ID    int64                `json:"id"`
	Type  string               `json:"type"`
	Src   int64                `json:"src"`
	Tgt   int64                `json:"tgt"`
	Props map[string]jsonValue `json:"props"`
}

type jsonIndex struct {
	Label string `json:"label"`
	Prop  string `json:"prop"`
}

type jsonGraph struct {
	Nodes   []jsonNode  `json:"nodes"`
	Rels    []jsonRel   `json:"rels"`
	Indexes []jsonIndex `json:"indexes,omitempty"`
	// NextNode/NextRel persist the id counters so recovery resumes
	// allocation above every id ever handed out, including ids whose
	// entities no longer exist (ids are never reused). Absent in
	// snapshots from before durability; readers fall back to the
	// maximum id seen.
	NextNode int64 `json:"nextNode,omitempty"`
	NextRel  int64 `json:"nextRel,omitempty"`
	// Epoch is the store epoch a durability checkpoint covers; plain
	// Save snapshots omit it.
	Epoch int64 `json:"epoch,omitempty"`
}

// maxEntityID bounds the entity ids (and id counters) any decoder —
// JSON snapshot or WAL record — will accept. The id maps of cow.go
// grow their shard directory proportionally to the largest id, so a
// corrupt or hostile file claiming id 2^60 would otherwise make the
// reader attempt an enormous allocation. 2^28 entities is far beyond
// what fits in memory anyway.
const maxEntityID = 1 << 28

// WriteJSON serializes the graph to w in the stable snapshot format.
func (g *Graph) WriteJSON(w io.Writer) error {
	return writeJSONState(w, g, 0)
}

// writeJSONState is WriteJSON plus the store epoch, for durability
// checkpoints.
func writeJSONState(w io.Writer, g *Graph, epoch int64) error {
	out := jsonGraph{
		Nodes:    []jsonNode{},
		Rels:     []jsonRel{},
		NextNode: int64(g.nextNode),
		NextRel:  int64(g.nextRel),
		Epoch:    epoch,
	}
	for _, id := range g.NodeIDs() {
		n := g.Node(id)
		jn := jsonNode{ID: int64(id), Labels: n.SortedLabels(), Props: map[string]jsonValue{}}
		for k, v := range n.Props {
			ev, err := encodeValue(v)
			if err != nil {
				return err
			}
			jn.Props[k] = ev
		}
		out.Nodes = append(out.Nodes, jn)
	}
	for _, id := range g.RelIDs() {
		r := g.Rel(id)
		jr := jsonRel{ID: int64(id), Type: r.Type, Src: int64(r.Src), Tgt: int64(r.Tgt), Props: map[string]jsonValue{}}
		for k, v := range r.Props {
			ev, err := encodeValue(v)
			if err != nil {
				return err
			}
			jr.Props[k] = ev
		}
		out.Rels = append(out.Rels, jr)
	}
	for _, k := range g.Indexes() {
		out.Indexes = append(out.Indexes, jsonIndex{Label: k.Label, Prop: k.Prop})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadJSON deserializes a snapshot into a fresh graph. Entity ids are
// preserved; the id counters resume above the maximum seen (or the
// persisted counters, whichever is larger).
func ReadJSON(r io.Reader) (*Graph, error) {
	g, _, err := readJSONState(r)
	return g, err
}

// readJSONState is ReadJSON plus the persisted store epoch (0 for
// plain Save snapshots), for durability recovery.
func readJSONState(r io.Reader) (*Graph, int64, error) {
	var in jsonGraph
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, 0, fmt.Errorf("graph: decode snapshot: %w", err)
	}
	g := New()
	for _, jn := range in.Nodes {
		if jn.ID <= 0 || jn.ID > maxEntityID {
			return nil, 0, fmt.Errorf("graph: invalid node id %d", jn.ID)
		}
		if g.HasNode(NodeID(jn.ID)) {
			return nil, 0, fmt.Errorf("graph: duplicate node id %d", jn.ID)
		}
		n := &Node{
			ID:     NodeID(jn.ID),
			Labels: make(map[string]struct{}, len(jn.Labels)),
			Props:  make(map[string]value.Value, len(jn.Props)),
		}
		for _, l := range jn.Labels {
			n.Labels[l] = struct{}{}
		}
		for k, jv := range jn.Props {
			v, err := decodeValue(jv)
			if err != nil {
				return nil, 0, err
			}
			if !value.IsNull(v) {
				n.Props[k] = v
			}
		}
		g.restoreNode(n)
		if NodeID(jn.ID) > g.nextNode {
			g.nextNode = NodeID(jn.ID)
		}
	}
	for _, jr := range in.Rels {
		if jr.ID <= 0 || jr.ID > maxEntityID {
			return nil, 0, fmt.Errorf("graph: invalid relationship id %d", jr.ID)
		}
		if g.HasRel(RelID(jr.ID)) {
			return nil, 0, fmt.Errorf("graph: duplicate relationship id %d", jr.ID)
		}
		if jr.Type == "" {
			return nil, 0, fmt.Errorf("graph: relationship %d has no type", jr.ID)
		}
		if !g.HasNode(NodeID(jr.Src)) || !g.HasNode(NodeID(jr.Tgt)) {
			return nil, 0, fmt.Errorf("graph: relationship %d has dangling endpoints", jr.ID)
		}
		rel := &Rel{
			ID:    RelID(jr.ID),
			Type:  jr.Type,
			Src:   NodeID(jr.Src),
			Tgt:   NodeID(jr.Tgt),
			Props: make(map[string]value.Value, len(jr.Props)),
		}
		for k, jv := range jr.Props {
			v, err := decodeValue(jv)
			if err != nil {
				return nil, 0, err
			}
			if !value.IsNull(v) {
				rel.Props[k] = v
			}
		}
		g.restoreRel(rel)
		if RelID(jr.ID) > g.nextRel {
			g.nextRel = RelID(jr.ID)
		}
	}
	// Index definitions round-trip; contents are rebuilt by the scan in
	// CreateIndex (the snapshot carries only the schema, not buckets).
	for _, ji := range in.Indexes {
		if ji.Label == "" || ji.Prop == "" {
			return nil, 0, fmt.Errorf("graph: malformed index definition %q(%q)", ji.Label, ji.Prop)
		}
		g.CreateIndex(ji.Label, ji.Prop)
	}
	// Persisted id counters (if any) win over the maximum id seen: ids
	// are never reused, even across deletion of their entities.
	if in.NextNode < 0 || in.NextNode > maxEntityID || in.NextRel < 0 || in.NextRel > maxEntityID || in.Epoch < 0 {
		return nil, 0, fmt.Errorf("graph: snapshot counters out of range")
	}
	if NodeID(in.NextNode) > g.nextNode {
		g.nextNode = NodeID(in.NextNode)
	}
	if RelID(in.NextRel) > g.nextRel {
		g.nextRel = RelID(in.NextRel)
	}
	return g, in.Epoch, nil
}

// WriteDOT renders the graph in Graphviz DOT format, suitable for
// visualizing the paper's figures (cmd/experiments -dot uses it).
func (g *Graph) WriteDOT(w io.Writer, title string) error {
	if _, err := fmt.Fprintf(w, "digraph %q {\n  rankdir=LR;\n  node [shape=ellipse];\n", title); err != nil {
		return err
	}
	for _, id := range g.NodeIDs() {
		n := g.Node(id)
		label := fmt.Sprintf("%d", id)
		if len(n.Labels) > 0 {
			label += "\n:" + joinSorted(n.Labels, ":")
		}
		if len(n.Props) > 0 {
			label += "\n" + value.Map(n.PropMap()).String()
		}
		if _, err := fmt.Fprintf(w, "  n%d [label=%q];\n", id, label); err != nil {
			return err
		}
	}
	for _, id := range g.RelIDs() {
		r := g.Rel(id)
		label := ":" + r.Type
		if len(r.Props) > 0 {
			label += " " + value.Map(r.PropMap()).String()
		}
		if _, err := fmt.Fprintf(w, "  n%d -> n%d [label=%q];\n", r.Src, r.Tgt, label); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

func joinSorted(set map[string]struct{}, sep string) string {
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := ""
	for i, k := range keys {
		if i > 0 {
			out += sep
		}
		out += k
	}
	return out
}
