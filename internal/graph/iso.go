package graph

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/value"
)

// Isomorphic reports whether two property graphs are equal up to id
// renaming: there is a bijection between node sets preserving labels and
// properties, and a bijection between relationship sets preserving type,
// properties, and (mapped) endpoints. This is the notion of sameness under
// which the paper's revised semantics is deterministic ("the output
// graph-table pairs are the same up to id renaming", Section 8).
//
// The checker does signature-based partition refinement first, then
// backtracking within signature classes; it is intended for the
// experiment-scale graphs of the paper (and is exercised up to a few
// thousand entities in tests).
func Isomorphic(a, b *Graph) bool {
	if a.NumNodes() != b.NumNodes() || a.NumRels() != b.NumRels() {
		return false
	}
	if Fingerprint(a) != Fingerprint(b) {
		return false
	}
	return findIso(a, b) != nil
}

// IsoMapping computes a node mapping witnessing isomorphism, or nil.
func IsoMapping(a, b *Graph) map[NodeID]NodeID {
	if a.NumNodes() != b.NumNodes() || a.NumRels() != b.NumRels() {
		return nil
	}
	return findIso(a, b)
}

func nodeSig(g *Graph, n *Node) string {
	var sb strings.Builder
	sb.WriteString(strings.Join(n.SortedLabels(), ","))
	sb.WriteByte('|')
	sb.WriteString(value.MapKey(n.PropMap()))
	// Local relationship structure: multiset of (dir, type, props) of
	// incident relationships.
	var inc []string
	for _, rid := range g.Outgoing(n.ID) {
		r := g.Rel(rid)
		inc = append(inc, ">"+r.Type+value.MapKey(r.PropMap()))
	}
	for _, rid := range g.Incoming(n.ID) {
		r := g.Rel(rid)
		inc = append(inc, "<"+r.Type+value.MapKey(r.PropMap()))
	}
	sort.Strings(inc)
	sb.WriteByte('|')
	sb.WriteString(strings.Join(inc, ";"))
	return sb.String()
}

// Fingerprint returns an order-independent structural summary of the
// graph: the sorted multiset of node signatures together with the sorted
// multiset of relationship signatures. Isomorphic graphs have equal
// fingerprints (the converse holds for all graphs in the paper's
// experiments but not in general).
func Fingerprint(g *Graph) string {
	var nodeSigs []string
	for _, id := range g.NodeIDs() {
		nodeSigs = append(nodeSigs, nodeSig(g, g.Node(id)))
	}
	sort.Strings(nodeSigs)
	var relSigs []string
	for _, id := range g.RelIDs() {
		r := g.Rel(id)
		relSigs = append(relSigs, fmt.Sprintf("%s|%s|%s->%s",
			r.Type, value.MapKey(r.PropMap()),
			nodeSig(g, g.Node(r.Src)), nodeSig(g, g.Node(r.Tgt))))
	}
	sort.Strings(relSigs)
	return strings.Join(nodeSigs, "\x1e") + "\x1d" + strings.Join(relSigs, "\x1e")
}

func findIso(a, b *Graph) map[NodeID]NodeID {
	// Partition b's nodes by signature.
	bBySig := make(map[string][]NodeID)
	for _, id := range b.NodeIDs() {
		s := nodeSig(b, b.Node(id))
		bBySig[s] = append(bBySig[s], id)
	}
	aIDs := a.NodeIDs()
	aSigs := make([]string, len(aIDs))
	for i, id := range aIDs {
		aSigs[i] = nodeSig(a, a.Node(id))
	}
	// Order a's nodes to try most-constrained first (smallest candidate set).
	order := make([]int, len(aIDs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool {
		return len(bBySig[aSigs[order[i]]]) < len(bBySig[aSigs[order[j]]])
	})

	mapping := make(map[NodeID]NodeID, len(aIDs))
	used := make(map[NodeID]bool, len(aIDs))

	var try func(k int) bool
	try = func(k int) bool {
		if k == len(order) {
			return relsConsistent(a, b, mapping)
		}
		i := order[k]
		aid := aIDs[i]
		for _, bid := range bBySig[aSigs[i]] {
			if used[bid] {
				continue
			}
			mapping[aid] = bid
			used[bid] = true
			if partialConsistent(a, b, mapping, aid) && try(k+1) {
				return true
			}
			delete(mapping, aid)
			used[bid] = false
		}
		return false
	}
	if try(0) {
		return mapping
	}
	return nil
}

// partialConsistent checks that relationships between already-mapped nodes
// can be matched as multisets.
func partialConsistent(a, b *Graph, mapping map[NodeID]NodeID, newest NodeID) bool {
	for other := range mapping {
		if !relMultisetMatch(a, b, mapping, newest, other) {
			return false
		}
		if other != newest && !relMultisetMatch(a, b, mapping, other, newest) {
			return false
		}
	}
	return true
}

func relMultisetMatch(a, b *Graph, mapping map[NodeID]NodeID, src, tgt NodeID) bool {
	key := func(t string, props value.Map) string { return t + "|" + value.MapKey(props) }
	aCount := make(map[string]int)
	for _, rid := range a.Outgoing(src) {
		r := a.Rel(rid)
		if r.Tgt == tgt {
			aCount[key(r.Type, r.PropMap())]++
		}
	}
	bCount := make(map[string]int)
	bs, bt := mapping[src], mapping[tgt]
	for _, rid := range b.Outgoing(bs) {
		r := b.Rel(rid)
		if r.Tgt == bt {
			bCount[key(r.Type, r.PropMap())]++
		}
	}
	if len(aCount) != len(bCount) {
		return false
	}
	for k, c := range aCount {
		if bCount[k] != c {
			return false
		}
	}
	return true
}

func relsConsistent(a, b *Graph, mapping map[NodeID]NodeID) bool {
	// With a complete node mapping, verify the full relationship multisets.
	type edgeKey struct {
		src, tgt NodeID
		sig      string
	}
	aEdges := make(map[edgeKey]int)
	for _, rid := range a.RelIDs() {
		r := a.Rel(rid)
		aEdges[edgeKey{mapping[r.Src], mapping[r.Tgt], r.Type + "|" + value.MapKey(r.PropMap())}]++
	}
	bEdges := make(map[edgeKey]int)
	for _, rid := range b.RelIDs() {
		r := b.Rel(rid)
		bEdges[edgeKey{r.Src, r.Tgt, r.Type + "|" + value.MapKey(r.PropMap())}]++
	}
	if len(aEdges) != len(bEdges) {
		return false
	}
	for k, c := range aEdges {
		if bEdges[k] != c {
			return false
		}
	}
	return true
}

// Stats summarizes a graph: entity counts plus the degree counters the
// match planner's cost model reads. Graph.Stats() assembles it from the
// incrementally maintained counters; ComputeStats recounts from scratch
// (the reference implementation the incremental counters are tested
// against).
type Stats struct {
	Nodes    int
	Rels     int
	Labels   map[string]int    // nodes per label
	RelTypes map[string]int    // rels per type
	OutDeg   map[LabelType]int // rels of Type whose existing source carries Label
	InDeg    map[LabelType]int // rels of Type whose existing target carries Label
}

// ComputeStats gathers summary statistics by a full recount.
func ComputeStats(g *Graph) Stats {
	s := Stats{
		Nodes:    g.NumNodes(),
		Rels:     g.NumRels(),
		Labels:   make(map[string]int),
		RelTypes: make(map[string]int),
		OutDeg:   make(map[LabelType]int),
		InDeg:    make(map[LabelType]int),
	}
	for _, id := range g.NodeIDs() {
		for l := range g.Node(id).Labels {
			s.Labels[l]++
		}
	}
	for _, id := range g.RelIDs() {
		r := g.Rel(id)
		s.RelTypes[r.Type]++
		if src := g.Node(r.Src); src != nil {
			for l := range src.Labels {
				s.OutDeg[LabelType{l, r.Type}]++
			}
		}
		if tgt := g.Node(r.Tgt); tgt != nil {
			for l := range tgt.Labels {
				s.InDeg[LabelType{l, r.Type}]++
			}
		}
	}
	return s
}

// String renders stats compactly, e.g. "4 nodes (Product:3, User:1), 3 rels (ORDERED:3)".
func (s Stats) String() string {
	var lb []string
	for l, c := range s.Labels {
		lb = append(lb, fmt.Sprintf("%s:%d", l, c))
	}
	sort.Strings(lb)
	var tb []string
	for t, c := range s.RelTypes {
		tb = append(tb, fmt.Sprintf("%s:%d", t, c))
	}
	sort.Strings(tb)
	return fmt.Sprintf("%d nodes (%s), %d rels (%s)",
		s.Nodes, strings.Join(lb, ", "), s.Rels, strings.Join(tb, ", "))
}
