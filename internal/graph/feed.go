package graph

// The change feed: every committed epoch carries a structural Delta
// describing the net effect of its transaction, derived from the
// transaction's undo journal at commit time. Consumers subscribe with
// Store.OnCommit or read Snapshot.Delta off a pinned epoch; the deltas
// are the hook the incremental-view-maintenance direction needs
// (maintain a materialized view by applying per-epoch deltas instead of
// recomputing), and the natural unit for cross-epoch batching or
// replication.

import "sort"

// NodeLabel identifies one (node, label) pair in a Delta.
type NodeLabel struct {
	Node  NodeID
	Label string
}

// PropTouch identifies one property written (set or removed) by a
// transaction. The delta records which properties changed, not their
// values: a consumer reads current values from the committed snapshot
// the delta arrived with.
type PropTouch struct {
	Entity EntityRef
	Key    string
}

// Delta is the net structural change one committed transaction applied,
// relative to the previous epoch. Entities both created and deleted
// within the transaction cancel out and do not appear; property and
// label changes on entities the same transaction created or deleted are
// absorbed into the creation/deletion entries. A property set back to
// its original value still registers as touched (the journal records
// writes, not value transitions) — deltas are a conservative superset
// of the true content difference. All slices are sorted.
type Delta struct {
	// Epoch is the committed epoch this delta produced.
	Epoch int64

	// NodesCreated and NodesDeleted list surviving entity creations and
	// deletions of pre-existing entities.
	NodesCreated []NodeID
	NodesDeleted []NodeID
	// RelsCreated and RelsDeleted are the relationship counterparts.
	RelsCreated []RelID
	RelsDeleted []RelID

	// PropsTouched lists properties written on entities that existed
	// before the transaction and survived it.
	PropsTouched []PropTouch
	// LabelsAdded and LabelsRemoved list net label changes on surviving
	// pre-existing nodes.
	LabelsAdded   []NodeLabel
	LabelsRemoved []NodeLabel

	// IndexesCreated and IndexesDropped list net schema changes.
	IndexesCreated []IndexKey
	IndexesDropped []IndexKey
}

// Empty reports whether the delta carries no change at all.
func (d *Delta) Empty() bool {
	return d == nil ||
		len(d.NodesCreated) == 0 && len(d.NodesDeleted) == 0 &&
			len(d.RelsCreated) == 0 && len(d.RelsDeleted) == 0 &&
			len(d.PropsTouched) == 0 &&
			len(d.LabelsAdded) == 0 && len(d.LabelsRemoved) == 0 &&
			len(d.IndexesCreated) == 0 && len(d.IndexesDropped) == 0
}

// netDelta derives a transaction's net Delta from its journal entries.
// It returns nil when the transaction made no net change. The journal
// is the single source of truth for "what changed": every mutation
// path records an entry, and RollbackTo has already trimmed entries for
// statement-level rollbacks, so netting the remaining entries in order
// yields exactly the epoch-to-epoch difference (up to the value-blind
// PropTouch conservatism documented on Delta). The store derives
// lazily — on the first Snapshot.Delta call or, when OnCommit hooks
// are registered, at commit time — so delta-free workloads never pay
// the netting pass.
func netDelta(entries []undoEntry) *Delta {
	if len(entries) == 0 {
		return nil
	}
	nodes := map[NodeID]int{} // +1 created here, -1 pre-existing deleted
	rels := map[RelID]int{}   // same
	// nodeChurn/relChurn record every entity the transaction created or
	// deleted at any point — including created-then-deleted churn whose
	// net count is zero — so their property/label writes are absorbed.
	nodeChurn := map[NodeID]struct{}{}
	relChurn := map[RelID]struct{}{}
	props := map[PropTouch]struct{}{}
	labels := map[NodeLabel]int{} // net +1 added, -1 removed
	indexes := map[IndexKey]int{} // net +1 created, -1 dropped
	for _, e := range entries {
		switch u := e.(type) {
		case undoCreateNode:
			nodes[u.id]++
			nodeChurn[u.id] = struct{}{}
		case undoDeleteNode:
			nodes[u.node.ID]--
			nodeChurn[u.node.ID] = struct{}{}
		case undoCreateRel:
			rels[u.id]++
			relChurn[u.id] = struct{}{}
		case undoDeleteRel:
			rels[u.rel.ID]--
			relChurn[u.rel.ID] = struct{}{}
		case undoSetNodeProp:
			props[PropTouch{Entity: NodeRef(u.id), Key: u.key}] = struct{}{}
		case undoSetRelProp:
			props[PropTouch{Entity: RelRef(u.id), Key: u.key}] = struct{}{}
		case undoAddLabel:
			labels[NodeLabel{Node: u.id, Label: u.label}]++
		case undoRemoveLabel:
			labels[NodeLabel{Node: u.id, Label: u.label}]--
		case undoCreateIndex:
			indexes[u.key]++
		case undoDropIndex:
			indexes[u.key]--
		}
	}
	d := &Delta{}
	for id, c := range nodes {
		switch {
		case c > 0:
			d.NodesCreated = append(d.NodesCreated, id)
		case c < 0:
			d.NodesDeleted = append(d.NodesDeleted, id)
		}
	}
	for id, c := range rels {
		switch {
		case c > 0:
			d.RelsCreated = append(d.RelsCreated, id)
		case c < 0:
			d.RelsDeleted = append(d.RelsDeleted, id)
		}
	}
	// Property and label changes on entities this transaction created or
	// deleted (even transiently) are absorbed by the creation/deletion
	// entries — or vanished with the entity.
	churned := func(e EntityRef) bool {
		if e.Kind == EntityNode {
			_, ok := nodeChurn[NodeID(e.ID)]
			return ok
		}
		_, ok := relChurn[RelID(e.ID)]
		return ok
	}
	for t := range props {
		if !churned(t.Entity) {
			d.PropsTouched = append(d.PropsTouched, t)
		}
	}
	for nl, c := range labels {
		if _, ok := nodeChurn[nl.Node]; ok || c == 0 {
			continue
		}
		if c > 0 {
			d.LabelsAdded = append(d.LabelsAdded, nl)
		} else {
			d.LabelsRemoved = append(d.LabelsRemoved, nl)
		}
	}
	for k, c := range indexes {
		switch {
		case c > 0:
			d.IndexesCreated = append(d.IndexesCreated, k)
		case c < 0:
			d.IndexesDropped = append(d.IndexesDropped, k)
		}
	}
	if d.Empty() {
		return nil
	}
	d.sort()
	return d
}

func (d *Delta) sort() {
	sort.Slice(d.NodesCreated, func(i, j int) bool { return d.NodesCreated[i] < d.NodesCreated[j] })
	sort.Slice(d.NodesDeleted, func(i, j int) bool { return d.NodesDeleted[i] < d.NodesDeleted[j] })
	sort.Slice(d.RelsCreated, func(i, j int) bool { return d.RelsCreated[i] < d.RelsCreated[j] })
	sort.Slice(d.RelsDeleted, func(i, j int) bool { return d.RelsDeleted[i] < d.RelsDeleted[j] })
	sort.Slice(d.PropsTouched, func(i, j int) bool {
		a, b := d.PropsTouched[i], d.PropsTouched[j]
		if a.Entity.Kind != b.Entity.Kind {
			return a.Entity.Kind < b.Entity.Kind
		}
		if a.Entity.ID != b.Entity.ID {
			return a.Entity.ID < b.Entity.ID
		}
		return a.Key < b.Key
	})
	labelLess := func(s []NodeLabel) func(i, j int) bool {
		return func(i, j int) bool {
			if s[i].Node != s[j].Node {
				return s[i].Node < s[j].Node
			}
			return s[i].Label < s[j].Label
		}
	}
	sort.Slice(d.LabelsAdded, labelLess(d.LabelsAdded))
	sort.Slice(d.LabelsRemoved, labelLess(d.LabelsRemoved))
	indexLess := func(s []IndexKey) func(i, j int) bool {
		return func(i, j int) bool {
			if s[i].Label != s[j].Label {
				return s[i].Label < s[j].Label
			}
			return s[i].Prop < s[j].Prop
		}
	}
	sort.Slice(d.IndexesCreated, indexLess(d.IndexesCreated))
	sort.Slice(d.IndexesDropped, indexLess(d.IndexesDropped))
}
