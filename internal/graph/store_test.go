package graph

import (
	"sync"
	"testing"

	"repro/internal/value"
)

func storeWithNodes(t *testing.T, n int) *Store {
	t.Helper()
	g := New()
	for i := 0; i < n; i++ {
		g.CreateNode([]string{"N"}, value.Map{"i": value.Int(int64(i))})
	}
	return NewStore(g)
}

func TestStoreCommitPublishesNewEpoch(t *testing.T) {
	s := storeWithNodes(t, 3)
	before := s.Acquire()
	defer before.Release()

	w := s.BeginWrite()
	w.Graph().CreateNode([]string{"N"}, nil)
	if got := w.Graph().NumNodes(); got != 4 {
		t.Fatalf("writer sees %d nodes, want 4", got)
	}
	// The pinned snapshot must not see the uncommitted write.
	if got := before.Graph().NumNodes(); got != 3 {
		t.Fatalf("pinned reader sees %d nodes mid-write, want 3", got)
	}
	epoch, _ := w.Commit()
	if epoch != 1 {
		t.Fatalf("epoch = %d, want 1", epoch)
	}

	after := s.Acquire()
	defer after.Release()
	if got := after.Graph().NumNodes(); got != 4 {
		t.Fatalf("post-commit snapshot sees %d nodes, want 4", got)
	}
	// The old pin still reads the old epoch.
	if got := before.Graph().NumNodes(); got != 3 {
		t.Fatalf("pre-commit snapshot now sees %d nodes, want 3", got)
	}
	if before.Epoch() == after.Epoch() {
		t.Fatal("epochs must differ across a commit")
	}
}

func TestStoreRollbackRestoresState(t *testing.T) {
	s := storeWithNodes(t, 2)
	w := s.BeginWrite()
	w.Graph().CreateNode([]string{"Extra"}, nil)
	w.Graph().CreateNode([]string{"Extra"}, nil)
	w.Rollback()

	sn := s.Acquire()
	defer sn.Release()
	if got := sn.Graph().NumNodes(); got != 2 {
		t.Fatalf("post-rollback snapshot sees %d nodes, want 2", got)
	}
	if len(sn.Graph().NodeIDsByLabel("Extra")) != 0 {
		t.Fatal("rolled-back nodes visible")
	}
}

// TestStoreRollbackWithPinnedReader exercises the clone path: the
// writer works on a copy, so rollback must leave both the old snapshot
// and the newly published epoch at the pre-transaction state.
func TestStoreRollbackWithPinnedReader(t *testing.T) {
	s := storeWithNodes(t, 2)
	pin := s.Acquire()
	defer pin.Release()

	w := s.BeginWrite()
	w.Graph().CreateNode([]string{"Extra"}, nil)
	w.Rollback()

	sn := s.Acquire()
	defer sn.Release()
	for _, g := range []*Graph{pin.Graph(), sn.Graph()} {
		if got := g.NumNodes(); got != 2 {
			t.Fatalf("snapshot sees %d nodes after rollback, want 2", got)
		}
	}
}

// TestStoreInPlaceFastPath: with no pinned readers the writer must
// mutate the published graph itself (no clone), the single-threaded
// fast path.
func TestStoreInPlaceFastPath(t *testing.T) {
	s := storeWithNodes(t, 1)
	before := s.cur.g
	w := s.BeginWrite()
	if w.cloned {
		t.Fatal("writer cloned with no pinned readers")
	}
	if w.Graph() != before {
		t.Fatal("in-place writer must work on the published graph")
	}
	w.Commit()
	if s.cur.g != before {
		t.Fatal("in-place commit must republish the same graph")
	}
}

// TestStoreCloneOnPinnedReader: a pinned reader forces the writer onto
// a private clone.
func TestStoreCloneOnPinnedReader(t *testing.T) {
	s := storeWithNodes(t, 1)
	pin := s.Acquire()
	w := s.BeginWrite()
	if !w.cloned {
		t.Fatal("writer must clone while a reader is pinned")
	}
	if w.Graph() == pin.Graph() {
		t.Fatal("clone must not alias the pinned graph")
	}
	w.Commit()
	pin.Release()
}

// TestStoreConcurrentReadersSeeCommittedEpochsOnly hammers the store
// with concurrent readers while a writer commits batches, asserting
// every reader observes a node count some commit produced (multiples of
// the batch size) — never a torn intermediate.
func TestStoreConcurrentReadersSeeCommittedEpochsOnly(t *testing.T) {
	const (
		batch   = 7
		commits = 50
		readers = 8
	)
	s := NewStore(New())
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				sn := s.Acquire()
				n := 0
				for _, id := range sn.Graph().NodeIDs() {
					if sn.Graph().Node(id) != nil {
						n++
					}
				}
				sn.Release()
				if n%batch != 0 {
					t.Errorf("reader saw %d nodes, not a committed multiple of %d", n, batch)
					return
				}
			}
		}()
	}
	for c := 0; c < commits; c++ {
		w := s.BeginWrite()
		for i := 0; i < batch; i++ {
			w.Graph().CreateNode([]string{"N"}, nil)
		}
		if c%5 == 4 {
			// Every fifth batch is rolled back; its nodes must never
			// become visible (the count stays a multiple of batch).
			w.Graph().CreateNode([]string{"Torn"}, nil)
			w.Rollback()
		} else {
			w.Commit()
		}
	}
	close(stop)
	wg.Wait()

	sn := s.Acquire()
	defer sn.Release()
	if got := sn.Graph().NumNodes(); got != batch*commits/5*4 {
		t.Fatalf("final node count %d, want %d", got, batch*commits/5*4)
	}
	if len(sn.Graph().NodeIDsByLabel("Torn")) != 0 {
		t.Fatal("rolled-back node visible after the run")
	}
}

func TestJournalMarkRollbackTo(t *testing.T) {
	g := New()
	a := g.CreateNode([]string{"A"}, nil) // pre-journal
	j := g.BeginJournal()
	g.CreateNode([]string{"B"}, nil)
	mark := j.Mark()
	c := g.CreateNode([]string{"C"}, nil)
	if err := g.SetNodeProp(a.ID, "x", value.Int(1)); err != nil {
		t.Fatal(err)
	}
	j.RollbackTo(mark)
	if g.HasNode(c.ID) {
		t.Fatal("post-mark create survived RollbackTo")
	}
	if _, ok := g.Node(a.ID).Props["x"]; ok {
		t.Fatal("post-mark property write survived RollbackTo")
	}
	if len(g.NodeIDsByLabel("B")) != 1 {
		t.Fatal("pre-mark create was undone")
	}
	// The journal stays attached: a full rollback still undoes the rest.
	j.Rollback()
	if len(g.NodeIDsByLabel("B")) != 0 {
		t.Fatal("full rollback after RollbackTo did not undo pre-mark entries")
	}
	if !g.HasNode(a.ID) {
		t.Fatal("pre-journal node lost")
	}
}
