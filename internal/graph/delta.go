package graph

import (
	"fmt"
	"sort"

	"repro/internal/value"
)

// EntityKind distinguishes node from relationship references in change sets.
type EntityKind int

// Entity kinds.
const (
	EntityNode EntityKind = iota
	EntityRel
)

// EntityRef identifies a node or relationship in a change set.
type EntityRef struct {
	Kind EntityKind
	ID   int64
}

// NodeRef returns an EntityRef for a node.
func NodeRef(id NodeID) EntityRef { return EntityRef{Kind: EntityNode, ID: int64(id)} }

// RelRef returns an EntityRef for a relationship.
func RelRef(id RelID) EntityRef { return EntityRef{Kind: EntityRel, ID: int64(id)} }

// String renders the reference for error messages ("node 3",
// "relationship 7").
func (e EntityRef) String() string {
	if e.Kind == EntityNode {
		return fmt.Sprintf("node %d", e.ID)
	}
	return fmt.Sprintf("relationship %d", e.ID)
}

// ConflictError reports two SET items in the same clause assigning
// non-equivalent values to the same property of the same entity — the
// situation of Example 2 in the paper, which the revised semantics turns
// into an error instead of a nondeterministic result.
type ConflictError struct {
	Entity   EntityRef
	Key      string
	Old, New value.Value
}

// Error implements error.
func (e *ConflictError) Error() string {
	return fmt.Sprintf("conflicting SET: property %q of %s assigned both %s and %s",
		e.Key, e.Entity, e.Old, e.New)
}

type propChangeKey struct {
	entity EntityRef
	key    string
}

// ChangeSet accumulates the two relations of the revised SET semantics
// (Section 8.2): propchanges(T, s) and labchanges(T, s, n), plus label and
// property removals for REMOVE. All expressions are evaluated against the
// *input* graph before any change is applied; Apply then installs the
// whole set atomically. SetProp detects conflicting writes and returns a
// ConflictError, implementing the decision of Section 7.
type ChangeSet struct {
	props     map[propChangeKey]value.Value
	propOrder []propChangeKey
	addLabels map[NodeID]map[string]struct{}
	remLabels map[NodeID]map[string]struct{}
}

// NewChangeSet returns an empty change set.
func NewChangeSet() *ChangeSet {
	return &ChangeSet{
		props:     make(map[propChangeKey]value.Value),
		addLabels: make(map[NodeID]map[string]struct{}),
		remLabels: make(map[NodeID]map[string]struct{}),
	}
}

// Len reports the number of accumulated changes.
func (c *ChangeSet) Len() int {
	n := len(c.props)
	for _, s := range c.addLabels {
		n += len(s)
	}
	for _, s := range c.remLabels {
		n += len(s)
	}
	return n
}

// SetProp records the assignment of v (null meaning removal) to a
// property. Recording the same value twice is permitted; recording a
// different value for an already-recorded (entity, key) pair is a
// conflict.
func (c *ChangeSet) SetProp(entity EntityRef, key string, v value.Value) error {
	if v == nil {
		v = value.NullValue
	}
	k := propChangeKey{entity: entity, key: key}
	if old, ok := c.props[k]; ok {
		if !value.Equivalent(old, v) {
			return &ConflictError{Entity: entity, Key: key, Old: old, New: v}
		}
		return nil
	}
	c.props[k] = v
	c.propOrder = append(c.propOrder, k)
	return nil
}

// RemoveProp records removal of a property (REMOVE item). Removals do not
// conflict with each other; a removal recorded against an entity/key also
// assigned a non-null value by SET in the same change set is a conflict.
func (c *ChangeSet) RemoveProp(entity EntityRef, key string) error {
	return c.SetProp(entity, key, value.NullValue)
}

// AddLabel records a label addition. Label changes never conflict
// (Section 8.2: "the latter relation is unproblematic").
func (c *ChangeSet) AddLabel(id NodeID, label string) {
	set, ok := c.addLabels[id]
	if !ok {
		set = make(map[string]struct{})
		c.addLabels[id] = set
	}
	set[label] = struct{}{}
}

// RemoveLabel records a label removal.
func (c *ChangeSet) RemoveLabel(id NodeID, label string) {
	set, ok := c.remLabels[id]
	if !ok {
		set = make(map[string]struct{})
		c.remLabels[id] = set
	}
	set[label] = struct{}{}
}

// Apply installs all accumulated changes into g. Changes to entities that
// no longer exist are an error (the engine nulls references to deleted
// entities before SET can see them, so this indicates an engine bug).
func (c *ChangeSet) Apply(g *Graph) error {
	for _, k := range c.propOrder {
		v := c.props[k]
		switch k.entity.Kind {
		case EntityNode:
			if err := g.SetNodeProp(NodeID(k.entity.ID), k.key, v); err != nil {
				return err
			}
		case EntityRel:
			if err := g.SetRelProp(RelID(k.entity.ID), k.key, v); err != nil {
				return err
			}
		}
	}
	for _, id := range sortedNodeKeys(c.addLabels) {
		labels := sortedStringSet(c.addLabels[id])
		for _, l := range labels {
			if err := g.AddLabel(id, l); err != nil {
				return err
			}
		}
	}
	for _, id := range sortedNodeKeys(c.remLabels) {
		labels := sortedStringSet(c.remLabels[id])
		for _, l := range labels {
			if err := g.RemoveLabel(id, l); err != nil {
				return err
			}
		}
	}
	return nil
}

func sortedNodeKeys[V any](m map[NodeID]V) []NodeID {
	out := make([]NodeID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortedStringSet(s map[string]struct{}) []string {
	out := make([]string, 0, len(s))
	for k := range s {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// DeleteSet collects the entities a (DETACH) DELETE clause will remove,
// implementing the strict semantics of Section 7: all deletions are
// gathered first; for plain DELETE, deleting a node whose attached
// relationships are not all also being deleted is an error; for DETACH
// DELETE the attached relationships are added to the set. Apply removes
// everything at once.
type DeleteSet struct {
	nodes map[NodeID]struct{}
	rels  map[RelID]struct{}
}

// NewDeleteSet returns an empty delete set.
func NewDeleteSet() *DeleteSet {
	return &DeleteSet{
		nodes: make(map[NodeID]struct{}),
		rels:  make(map[RelID]struct{}),
	}
}

// AddNode marks a node for deletion.
func (d *DeleteSet) AddNode(id NodeID) { d.nodes[id] = struct{}{} }

// AddRel marks a relationship for deletion.
func (d *DeleteSet) AddRel(id RelID) { d.rels[id] = struct{}{} }

// HasNode reports whether the node is marked.
func (d *DeleteSet) HasNode(id NodeID) bool { _, ok := d.nodes[id]; return ok }

// HasRel reports whether the relationship is marked.
func (d *DeleteSet) HasRel(id RelID) bool { _, ok := d.rels[id]; return ok }

// Nodes returns the marked node ids in ascending order.
func (d *DeleteSet) Nodes() []NodeID {
	out := make([]NodeID, 0, len(d.nodes))
	for id := range d.nodes {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Rels returns the marked relationship ids in ascending order.
func (d *DeleteSet) Rels() []RelID {
	out := make([]RelID, 0, len(d.rels))
	for id := range d.rels {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Expand adds, for every marked node, all attached relationships
// (DETACH DELETE).
func (d *DeleteSet) Expand(g *Graph) {
	for id := range d.nodes {
		for _, rid := range g.Outgoing(id) {
			d.rels[rid] = struct{}{}
		}
		for _, rid := range g.Incoming(id) {
			d.rels[rid] = struct{}{}
		}
	}
}

// Check verifies that removing the set leaves no dangling relationships,
// returning a DanglingError naming the first offending node otherwise.
func (d *DeleteSet) Check(g *Graph) error {
	for _, id := range d.Nodes() {
		if !g.HasNode(id) {
			continue
		}
		attached := 0
		for _, rid := range g.Outgoing(id) {
			if !d.HasRel(rid) {
				attached++
			}
		}
		for _, rid := range g.Incoming(id) {
			if !d.HasRel(rid) {
				attached++
			}
		}
		if attached > 0 {
			return &DanglingError{Node: id, Attached: attached}
		}
	}
	return nil
}

// Apply removes all marked relationships, then all marked nodes. Callers
// must have run Check (or Expand) first; Apply reports an error if a node
// removal would dangle.
func (d *DeleteSet) Apply(g *Graph) error {
	for _, rid := range d.Rels() {
		g.DeleteRel(rid)
	}
	for _, nid := range d.Nodes() {
		if err := g.DeleteNode(nid); err != nil {
			return err
		}
	}
	return nil
}
