// Package graph implements the property graph data model of the paper
// (Section 8): G = <N, R, src, tgt, iota, lambda, tau>, where N is a set of
// nodes, R a set of relationships, src/tgt assign endpoints, lambda assigns
// label sets to nodes, tau assigns a type to each relationship, and iota
// assigns property maps to nodes and relationships.
//
// The store enforces the model's single structural invariant: there are no
// dangling relationships — every relationship's source and target node
// exist (Section 2 of the paper). The legacy Cypher 9 execution mode
// deliberately suspends this invariant mid-statement (Section 4.2); the
// store supports that through the unchecked deletion entry points, and
// exposes Validate to re-check the invariant.
//
// The package also provides:
//   - deltas (ChangeSet) implementing the revised two-phase atomic update
//     semantics of Section 7 (collect changes, detect conflicts, apply);
//   - a journal for statement-level rollback;
//   - an isomorphism checker used to verify "equal up to id renaming"
//     determinism claims (Section 8);
//   - a transactional epoch store (store.go) whose writers commit in
//     O(changes) via the copy-on-write containers of cow.go, and whose
//     committed epochs carry a structural Delta for change-feed
//     consumers (feed.go).
package graph

import (
	"fmt"
	"sort"

	"repro/internal/value"
)

// NodeID identifies a node. IDs are assigned monotonically and never
// reused within a Graph lifetime.
type NodeID int64

// RelID identifies a relationship.
type RelID int64

// Node is a stored node: a label set and a property map.
type Node struct {
	ID     NodeID
	Labels map[string]struct{}
	Props  map[string]value.Value

	// owner tags the graph generation that may mutate this node in
	// place; other generations sharing it copy-on-write first (cow.go).
	owner uint64
}

// HasLabel reports whether the node carries the given label.
func (n *Node) HasLabel(label string) bool {
	_, ok := n.Labels[label]
	return ok
}

// SortedLabels returns the node's labels in sorted order.
func (n *Node) SortedLabels() []string {
	out := make([]string, 0, len(n.Labels))
	for l := range n.Labels {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// PropMap returns the node's properties as a value.Map (shallow copy).
func (n *Node) PropMap() value.Map {
	m := make(value.Map, len(n.Props))
	for k, v := range n.Props {
		m[k] = v
	}
	return m
}

// Rel is a stored relationship: exactly one type, one source, one target,
// and a property map.
type Rel struct {
	ID       RelID
	Type     string
	Src, Tgt NodeID
	Props    map[string]value.Value

	// owner is the copy-on-write generation tag, as on Node.
	owner uint64
}

// PropMap returns the relationship's properties as a value.Map (shallow copy).
func (r *Rel) PropMap() value.Map {
	m := make(value.Map, len(r.Props))
	for k, v := range r.Props {
		m[k] = v
	}
	return m
}

// Graph is an in-memory property graph. It is not safe for concurrent
// mutation; the database layer serializes statements. Its containers are
// the copy-on-write structures of cow.go, so a graph produced by
// cloneCOW shares unmodified shards with its parent and a mutation
// copies only the bucket it touches.
type Graph struct {
	// tag is this graph generation's ownership tag: shards, rows,
	// buckets and entities carrying a different tag are shared with
	// another epoch and must be copied before mutation.
	tag uint64

	nodes idMap[*Node]
	rels  idMap[*Rel]

	outgoing idMap[*adjRow]
	incoming idMap[*adjRow]
	byLabel  map[string]*labelSet

	nextNode NodeID
	nextRel  RelID

	// stats holds the incrementally maintained planner statistics
	// (stats.go); every mutation path below keeps it in sync with a
	// from-scratch recount.
	stats statsCounters
	// version counts structural mutations (nodes, relationships,
	// labels — everything the planner statistics reflect; property
	// writes excluded). The match planner caches plans against it.
	version int64

	// indexes holds the property indexes (index.go), maintained
	// incrementally by every mutation path; indexEpoch counts index
	// creations/drops so cached match plans invalidate on schema change.
	indexes    map[IndexKey]*propIndex
	indexEpoch int64

	journal *Journal // non-nil while a statement's undo journal is active
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		tag:     newCowTag(),
		byLabel: make(map[string]*labelSet),
	}
}

// Version reports the structural mutation counter: it changes whenever
// nodes, relationships or labels do (but not on property writes), so
// cached match plans can be invalidated cheaply.
func (g *Graph) Version() int64 { return g.version }

// NumNodes reports the number of nodes.
func (g *Graph) NumNodes() int { return g.nodes.size() }

// NumRels reports the number of relationships.
func (g *Graph) NumRels() int { return g.rels.size() }

// Node returns the node with the given id, or nil.
func (g *Graph) Node(id NodeID) *Node {
	n, _ := g.nodes.get(int64(id))
	return n
}

// Rel returns the relationship with the given id, or nil.
func (g *Graph) Rel(id RelID) *Rel {
	r, _ := g.rels.get(int64(id))
	return r
}

// HasNode reports whether a node with the given id exists.
func (g *Graph) HasNode(id NodeID) bool { _, ok := g.nodes.get(int64(id)); return ok }

// HasRel reports whether a relationship with the given id exists.
func (g *Graph) HasRel(id RelID) bool { _, ok := g.rels.get(int64(id)); return ok }

// NodeIDs returns all node ids in ascending order. The deterministic order
// is what makes legacy-mode scans reproducible for a given graph state.
func (g *Graph) NodeIDs() []NodeID {
	ids := make([]NodeID, 0, g.nodes.size())
	g.nodes.each(func(id int64, _ *Node) {
		ids = append(ids, NodeID(id))
	})
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// RelIDs returns all relationship ids in ascending order.
func (g *Graph) RelIDs() []RelID {
	ids := make([]RelID, 0, g.rels.size())
	g.rels.each(func(id int64, _ *Rel) {
		ids = append(ids, RelID(id))
	})
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// NodeIDsByLabel returns the ids of nodes carrying the label, ascending.
func (g *Graph) NodeIDsByLabel(label string) []NodeID {
	set := g.byLabel[label]
	if set == nil {
		return nil
	}
	ids := make([]NodeID, 0, set.size())
	set.each(func(id int64, _ struct{}) {
		ids = append(ids, NodeID(id))
	})
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Outgoing returns the ids of relationships whose source is the node,
// in ascending order. The returned slice is the store's own adjacency
// list — a read-only view that is invalidated by the next mutation of
// the graph; callers must not modify it or hold it across writes.
// (Adjacency lists are maintained sorted on insert: ids are monotonic,
// so creation appends in order, and deletion/restore preserve order.)
func (g *Graph) Outgoing(id NodeID) []RelID {
	return adjIDs(&g.outgoing, id)
}

// Incoming returns the ids of relationships whose target is the node,
// in ascending order, under the same read-only-view contract as
// Outgoing.
func (g *Graph) Incoming(id NodeID) []RelID {
	return adjIDs(&g.incoming, id)
}

// insertRelIDSorted inserts id into an ascending slice, keeping it
// sorted. Restores (rollback, codec decode) may reinstate a
// relationship with an id smaller than later-created survivors, so a
// plain append would break the sorted-adjacency invariant.
func insertRelIDSorted(ids []RelID, id RelID) []RelID {
	i := sort.Search(len(ids), func(k int) bool { return ids[k] >= id })
	ids = append(ids, 0)
	copy(ids[i+1:], ids[i:])
	ids[i] = id
	return ids
}

// Degree reports the total number of relationships attached to the node
// (a self-loop counts twice: once outgoing, once incoming).
func (g *Graph) Degree(id NodeID) int {
	return len(g.Outgoing(id)) + len(g.Incoming(id))
}

// CreateNode adds a node with the given labels and properties and returns
// it. Properties mapped to null are not stored (iota(n,k)=null means
// "absent" in the formal model).
func (g *Graph) CreateNode(labels []string, props value.Map) *Node {
	g.version++
	g.nextNode++
	n := &Node{
		ID:     g.nextNode,
		Labels: make(map[string]struct{}, len(labels)),
		Props:  make(map[string]value.Value, len(props)),
		owner:  g.tag,
	}
	for _, l := range labels {
		n.Labels[l] = struct{}{}
	}
	for k, v := range props {
		if !value.IsNull(v) {
			n.Props[k] = v
		}
	}
	g.nodes.put(g.tag, int64(n.ID), n)
	for l := range n.Labels {
		g.indexLabel(l, n.ID)
	}
	g.indexNode(n, true)
	if g.journal != nil {
		g.journal.record(undoCreateNode{id: n.ID})
	}
	return n
}

// CreateRel adds a relationship from src to tgt with the given type and
// properties. It returns an error if either endpoint does not exist
// (no dangling relationships) or if the type is empty (every relationship
// has exactly one type; Section 2).
func (g *Graph) CreateRel(src, tgt NodeID, relType string, props value.Map) (*Rel, error) {
	if relType == "" {
		return nil, fmt.Errorf("graph: relationship must have a type")
	}
	if !g.HasNode(src) {
		return nil, fmt.Errorf("graph: source node %d does not exist", src)
	}
	if !g.HasNode(tgt) {
		return nil, fmt.Errorf("graph: target node %d does not exist", tgt)
	}
	g.nextRel++
	r := &Rel{
		ID:    g.nextRel,
		Type:  relType,
		Src:   src,
		Tgt:   tgt,
		Props: make(map[string]value.Value, len(props)),
		owner: g.tag,
	}
	for k, v := range props {
		if !value.IsNull(v) {
			r.Props[k] = v
		}
	}
	g.rels.put(g.tag, int64(r.ID), r)
	// A freshly created id exceeds every stored one, so appending keeps
	// the adjacency rows sorted.
	out := g.adjWritable(&g.outgoing, src)
	out.ids = append(out.ids, r.ID)
	in := g.adjWritable(&g.incoming, tgt)
	in.ids = append(in.ids, r.ID)
	g.statsRel(r, +1)
	if g.journal != nil {
		g.journal.record(undoCreateRel{id: r.ID})
	}
	return r, nil
}

// DeleteRel removes a relationship. Removing a missing relationship is a
// no-op (it may have been deleted earlier in the same statement).
func (g *Graph) DeleteRel(id RelID) {
	r, ok := g.rels.get(int64(id))
	if !ok {
		return
	}
	if g.journal != nil {
		g.journal.record(undoDeleteRel{rel: copyRel(r)})
	}
	g.statsRel(r, -1)
	g.rels.del(g.tag, int64(id))
	g.adjRemove(&g.outgoing, r.Src, id)
	g.adjRemove(&g.incoming, r.Tgt, id)
}

// DeleteNode removes a node, returning an error if relationships are still
// attached (the DELETE failure mode described in Section 3 of the paper).
func (g *Graph) DeleteNode(id NodeID) error {
	n, ok := g.nodes.get(int64(id))
	if !ok {
		return nil
	}
	if g.Degree(id) > 0 {
		return &DanglingError{Node: id, Attached: g.Degree(id)}
	}
	if g.journal != nil {
		g.journal.record(undoDeleteNode{node: copyNode(n)})
	}
	g.removeNodeInternal(n)
	return nil
}

// DeleteNodeUnchecked removes a node even if relationships are attached,
// leaving them dangling. This reproduces the non-atomic mid-statement
// state of legacy Cypher 9 DELETE (Section 4.2); Validate will fail until
// the dangling relationships are also removed.
func (g *Graph) DeleteNodeUnchecked(id NodeID) {
	n, ok := g.nodes.get(int64(id))
	if !ok {
		return
	}
	if g.journal != nil {
		g.journal.record(undoDeleteNode{node: copyNode(n)})
	}
	g.removeNodeInternal(n)
}

func (g *Graph) removeNodeInternal(n *Node) {
	g.version++
	// The node's labels stop contributing to the degree counters; any
	// relationships it leaves dangling (legacy unchecked deletion) keep
	// only their surviving endpoint's contribution.
	g.statsNodeRels(n, -1)
	g.indexNode(n, false)
	g.nodes.del(g.tag, int64(n.ID))
	for l := range n.Labels {
		g.unindexLabel(l, n.ID)
	}
	// Adjacency rows for the node are retained only if non-empty
	// (dangling rels keep referring to the removed node id).
	if len(adjIDs(&g.outgoing, n.ID)) == 0 {
		g.outgoing.del(g.tag, int64(n.ID))
	}
	if len(adjIDs(&g.incoming, n.ID)) == 0 {
		g.incoming.del(g.tag, int64(n.ID))
	}
}

// DetachDeleteNode removes a node along with all attached relationships.
func (g *Graph) DetachDeleteNode(id NodeID) {
	if !g.HasNode(id) {
		return
	}
	// Copy the adjacency lists before deleting: DeleteRel mutates them.
	for _, rid := range append([]RelID(nil), g.Outgoing(id)...) {
		g.DeleteRel(rid)
	}
	for _, rid := range append([]RelID(nil), g.Incoming(id)...) {
		g.DeleteRel(rid)
	}
	g.DeleteNodeUnchecked(id)
}

// SetNodeProp sets (or, when v is null, removes) a node property.
func (g *Graph) SetNodeProp(id NodeID, key string, v value.Value) error {
	n := g.mutableNode(id)
	if n == nil {
		return fmt.Errorf("graph: node %d does not exist", id)
	}
	old, had := n.Props[key]
	if g.journal != nil {
		g.journal.record(undoSetNodeProp{id: id, key: key, old: old, had: had})
	}
	if value.IsNull(v) {
		g.indexPropWrite(n, key, old, had, nil, false)
		delete(n.Props, key)
	} else {
		g.indexPropWrite(n, key, old, had, v, true)
		n.Props[key] = v
	}
	return nil
}

// SetRelProp sets (or, when v is null, removes) a relationship property.
func (g *Graph) SetRelProp(id RelID, key string, v value.Value) error {
	r := g.mutableRel(id)
	if r == nil {
		return fmt.Errorf("graph: relationship %d does not exist", id)
	}
	if g.journal != nil {
		old, had := r.Props[key]
		g.journal.record(undoSetRelProp{id: id, key: key, old: old, had: had})
	}
	if value.IsNull(v) {
		delete(r.Props, key)
	} else {
		r.Props[key] = v
	}
	return nil
}

// AddLabel adds a label to a node.
func (g *Graph) AddLabel(id NodeID, label string) error {
	n := g.mutableNode(id)
	if n == nil {
		return fmt.Errorf("graph: node %d does not exist", id)
	}
	if _, has := n.Labels[label]; has {
		return nil
	}
	if g.journal != nil {
		g.journal.record(undoAddLabel{id: id, label: label})
	}
	n.Labels[label] = struct{}{}
	g.indexLabel(label, id)
	g.indexNodeLabel(n, label, true)
	g.statsLabel(id, label, +1)
	return nil
}

// RemoveLabel removes a label from a node.
func (g *Graph) RemoveLabel(id NodeID, label string) error {
	n := g.mutableNode(id)
	if n == nil {
		return fmt.Errorf("graph: node %d does not exist", id)
	}
	if _, has := n.Labels[label]; !has {
		return nil
	}
	if g.journal != nil {
		g.journal.record(undoRemoveLabel{id: id, label: label})
	}
	g.statsLabel(id, label, -1)
	g.indexNodeLabel(n, label, false)
	delete(n.Labels, label)
	g.unindexLabel(label, id)
	return nil
}

func (g *Graph) indexLabel(label string, id NodeID) {
	set, ok := g.byLabel[label]
	if !ok {
		set = &labelSet{}
		g.byLabel[label] = set
	}
	set.put(g.tag, int64(id), struct{}{})
}

func (g *Graph) unindexLabel(label string, id NodeID) {
	if set, ok := g.byLabel[label]; ok {
		set.del(g.tag, int64(id))
		if set.size() == 0 {
			delete(g.byLabel, label)
		}
	}
}

func removeRelID(ids []RelID, id RelID) []RelID {
	for i, x := range ids {
		if x == id {
			return append(ids[:i], ids[i+1:]...)
		}
	}
	return ids
}

// DanglingError reports a deletion that would leave (or has left)
// relationships without an endpoint.
type DanglingError struct {
	Node     NodeID
	Attached int
}

// Error implements error.
func (e *DanglingError) Error() string {
	return fmt.Sprintf("cannot delete node %d: %d relationship(s) still attached", e.Node, e.Attached)
}

// Validate checks the structural invariant that every relationship's
// endpoints exist, returning the first violation found.
func (g *Graph) Validate() error {
	for _, id := range g.RelIDs() {
		r := g.Rel(id)
		if !g.HasNode(r.Src) {
			return fmt.Errorf("graph: relationship %d has dangling source %d", r.ID, r.Src)
		}
		if !g.HasNode(r.Tgt) {
			return fmt.Errorf("graph: relationship %d has dangling target %d", r.ID, r.Tgt)
		}
	}
	return nil
}

// Clone returns a deep copy of the graph sharing no mutable state. Stored
// property values are immutable by convention (the evaluator never mutates
// a stored List/Map in place), so values themselves are shared. Contrast
// cloneCOW (cow.go), which shares structure and is what write
// transactions use; Clone remains the independent-database copy
// (DB.Snapshot, dialect switching) and the baseline the copy-on-write
// paths are property-tested against.
func (g *Graph) Clone() *Graph {
	ng := New()
	ng.nextNode = g.nextNode
	ng.nextRel = g.nextRel
	ng.version = g.version
	ng.indexEpoch = g.indexEpoch
	g.nodes.each(func(id int64, n *Node) {
		c := copyNode(n)
		c.owner = ng.tag
		ng.nodes.put(ng.tag, id, c)
	})
	g.rels.each(func(id int64, r *Rel) {
		c := copyRel(r)
		c.owner = ng.tag
		ng.rels.put(ng.tag, id, c)
	})
	g.outgoing.each(func(id int64, row *adjRow) {
		ng.outgoing.put(ng.tag, id, &adjRow{ids: append([]RelID(nil), row.ids...), owner: ng.tag})
	})
	g.incoming.each(func(id int64, row *adjRow) {
		ng.incoming.put(ng.tag, id, &adjRow{ids: append([]RelID(nil), row.ids...), owner: ng.tag})
	})
	for l, set := range g.byLabel {
		ns := &labelSet{}
		set.each(func(id int64, _ struct{}) {
			ns.put(ng.tag, id, struct{}{})
		})
		ng.byLabel[l] = ns
	}
	if len(g.indexes) > 0 {
		ng.indexes = make(map[IndexKey]*propIndex, len(g.indexes))
		for k, idx := range g.indexes {
			ng.indexes[k] = idx.cloneDeep(ng.tag)
		}
	}
	ng.stats = g.stats.clone()
	return ng
}

func copyNode(n *Node) *Node {
	c := &Node{
		ID:     n.ID,
		Labels: make(map[string]struct{}, len(n.Labels)),
		Props:  make(map[string]value.Value, len(n.Props)),
	}
	for l := range n.Labels {
		c.Labels[l] = struct{}{}
	}
	for k, v := range n.Props {
		c.Props[k] = v
	}
	return c
}

func copyRel(r *Rel) *Rel {
	c := &Rel{
		ID:    r.ID,
		Type:  r.Type,
		Src:   r.Src,
		Tgt:   r.Tgt,
		Props: make(map[string]value.Value, len(r.Props)),
	}
	for k, v := range r.Props {
		c.Props[k] = v
	}
	return c
}

// restoreNode reinstates a node with its original id (journal rollback).
// The node object becomes owned by this graph generation: journal
// captures are private copies, so no other epoch can hold it.
func (g *Graph) restoreNode(n *Node) {
	g.version++
	n.owner = g.tag
	g.nodes.put(g.tag, int64(n.ID), n)
	for l := range n.Labels {
		g.indexLabel(l, n.ID)
	}
	g.indexNode(n, true)
	// Attached relationships that survived (or were restored first)
	// regain this endpoint's label contribution.
	g.statsNodeRels(n, +1)
}

// restoreRel reinstates a relationship with its original id (journal
// rollback, codec decode). The insert keeps adjacency lists sorted:
// restored ids may be smaller than those of surviving relationships.
func (g *Graph) restoreRel(r *Rel) {
	r.owner = g.tag
	g.rels.put(g.tag, int64(r.ID), r)
	out := g.adjWritable(&g.outgoing, r.Src)
	out.ids = insertRelIDSorted(out.ids, r.ID)
	in := g.adjWritable(&g.incoming, r.Tgt)
	in.ids = insertRelIDSorted(in.ids, r.ID)
	g.statsRel(r, +1)
}
