// Package graph implements the property graph data model of the paper
// (Section 8): G = <N, R, src, tgt, iota, lambda, tau>, where N is a set of
// nodes, R a set of relationships, src/tgt assign endpoints, lambda assigns
// label sets to nodes, tau assigns a type to each relationship, and iota
// assigns property maps to nodes and relationships.
//
// The store enforces the model's single structural invariant: there are no
// dangling relationships — every relationship's source and target node
// exist (Section 2 of the paper). The legacy Cypher 9 execution mode
// deliberately suspends this invariant mid-statement (Section 4.2); the
// store supports that through the unchecked deletion entry points, and
// exposes Validate to re-check the invariant.
//
// The package also provides:
//   - deltas (ChangeSet) implementing the revised two-phase atomic update
//     semantics of Section 7 (collect changes, detect conflicts, apply);
//   - a journal for statement-level rollback;
//   - an isomorphism checker used to verify "equal up to id renaming"
//     determinism claims (Section 8).
package graph

import (
	"fmt"
	"sort"

	"repro/internal/value"
)

// NodeID identifies a node. IDs are assigned monotonically and never
// reused within a Graph lifetime.
type NodeID int64

// RelID identifies a relationship.
type RelID int64

// Node is a stored node: a label set and a property map.
type Node struct {
	ID     NodeID
	Labels map[string]struct{}
	Props  map[string]value.Value
}

// HasLabel reports whether the node carries the given label.
func (n *Node) HasLabel(label string) bool {
	_, ok := n.Labels[label]
	return ok
}

// SortedLabels returns the node's labels in sorted order.
func (n *Node) SortedLabels() []string {
	out := make([]string, 0, len(n.Labels))
	for l := range n.Labels {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// PropMap returns the node's properties as a value.Map (shallow copy).
func (n *Node) PropMap() value.Map {
	m := make(value.Map, len(n.Props))
	for k, v := range n.Props {
		m[k] = v
	}
	return m
}

// Rel is a stored relationship: exactly one type, one source, one target,
// and a property map.
type Rel struct {
	ID       RelID
	Type     string
	Src, Tgt NodeID
	Props    map[string]value.Value
}

// PropMap returns the relationship's properties as a value.Map (shallow copy).
func (r *Rel) PropMap() value.Map {
	m := make(value.Map, len(r.Props))
	for k, v := range r.Props {
		m[k] = v
	}
	return m
}

// Graph is an in-memory property graph. It is not safe for concurrent
// mutation; the database layer serializes statements.
type Graph struct {
	nodes map[NodeID]*Node
	rels  map[RelID]*Rel

	outgoing map[NodeID][]RelID
	incoming map[NodeID][]RelID
	byLabel  map[string]map[NodeID]struct{}

	nextNode NodeID
	nextRel  RelID

	// stats holds the incrementally maintained planner statistics
	// (stats.go); every mutation path below keeps it in sync with a
	// from-scratch recount.
	stats statsCounters
	// version counts structural mutations (nodes, relationships,
	// labels — everything the planner statistics reflect; property
	// writes excluded). The match planner caches plans against it.
	version int64

	// indexes holds the property indexes (index.go), maintained
	// incrementally by every mutation path; indexEpoch counts index
	// creations/drops so cached match plans invalidate on schema change.
	indexes    map[IndexKey]*propIndex
	indexEpoch int64

	journal *Journal // non-nil while a statement's undo journal is active
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		nodes:    make(map[NodeID]*Node),
		rels:     make(map[RelID]*Rel),
		outgoing: make(map[NodeID][]RelID),
		incoming: make(map[NodeID][]RelID),
		byLabel:  make(map[string]map[NodeID]struct{}),
	}
}

// Version reports the structural mutation counter: it changes whenever
// nodes, relationships or labels do (but not on property writes), so
// cached match plans can be invalidated cheaply.
func (g *Graph) Version() int64 { return g.version }

// NumNodes reports the number of nodes.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumRels reports the number of relationships.
func (g *Graph) NumRels() int { return len(g.rels) }

// Node returns the node with the given id, or nil.
func (g *Graph) Node(id NodeID) *Node { return g.nodes[id] }

// Rel returns the relationship with the given id, or nil.
func (g *Graph) Rel(id RelID) *Rel { return g.rels[id] }

// HasNode reports whether a node with the given id exists.
func (g *Graph) HasNode(id NodeID) bool { _, ok := g.nodes[id]; return ok }

// HasRel reports whether a relationship with the given id exists.
func (g *Graph) HasRel(id RelID) bool { _, ok := g.rels[id]; return ok }

// NodeIDs returns all node ids in ascending order. The deterministic order
// is what makes legacy-mode scans reproducible for a given graph state.
func (g *Graph) NodeIDs() []NodeID {
	ids := make([]NodeID, 0, len(g.nodes))
	for id := range g.nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// RelIDs returns all relationship ids in ascending order.
func (g *Graph) RelIDs() []RelID {
	ids := make([]RelID, 0, len(g.rels))
	for id := range g.rels {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// NodeIDsByLabel returns the ids of nodes carrying the label, ascending.
func (g *Graph) NodeIDsByLabel(label string) []NodeID {
	set := g.byLabel[label]
	ids := make([]NodeID, 0, len(set))
	for id := range set {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Outgoing returns the ids of relationships whose source is the node,
// in ascending order. The returned slice is the store's own adjacency
// list — a read-only view that is invalidated by the next mutation of
// the graph; callers must not modify it or hold it across writes.
// (Adjacency lists are maintained sorted on insert: ids are monotonic,
// so creation appends in order, and deletion/restore preserve order.)
func (g *Graph) Outgoing(id NodeID) []RelID {
	return g.outgoing[id]
}

// Incoming returns the ids of relationships whose target is the node,
// in ascending order, under the same read-only-view contract as
// Outgoing.
func (g *Graph) Incoming(id NodeID) []RelID {
	return g.incoming[id]
}

// insertRelIDSorted inserts id into an ascending slice, keeping it
// sorted. Restores (rollback, codec decode) may reinstate a
// relationship with an id smaller than later-created survivors, so a
// plain append would break the sorted-adjacency invariant.
func insertRelIDSorted(ids []RelID, id RelID) []RelID {
	i := sort.Search(len(ids), func(k int) bool { return ids[k] >= id })
	ids = append(ids, 0)
	copy(ids[i+1:], ids[i:])
	ids[i] = id
	return ids
}

// Degree reports the total number of relationships attached to the node
// (a self-loop counts twice: once outgoing, once incoming).
func (g *Graph) Degree(id NodeID) int {
	return len(g.outgoing[id]) + len(g.incoming[id])
}

// CreateNode adds a node with the given labels and properties and returns
// it. Properties mapped to null are not stored (iota(n,k)=null means
// "absent" in the formal model).
func (g *Graph) CreateNode(labels []string, props value.Map) *Node {
	g.version++
	g.nextNode++
	n := &Node{
		ID:     g.nextNode,
		Labels: make(map[string]struct{}, len(labels)),
		Props:  make(map[string]value.Value, len(props)),
	}
	for _, l := range labels {
		n.Labels[l] = struct{}{}
	}
	for k, v := range props {
		if !value.IsNull(v) {
			n.Props[k] = v
		}
	}
	g.nodes[n.ID] = n
	for l := range n.Labels {
		g.indexLabel(l, n.ID)
	}
	g.indexNode(n, true)
	if g.journal != nil {
		g.journal.record(undoCreateNode{id: n.ID})
	}
	return n
}

// CreateRel adds a relationship from src to tgt with the given type and
// properties. It returns an error if either endpoint does not exist
// (no dangling relationships) or if the type is empty (every relationship
// has exactly one type; Section 2).
func (g *Graph) CreateRel(src, tgt NodeID, relType string, props value.Map) (*Rel, error) {
	if relType == "" {
		return nil, fmt.Errorf("graph: relationship must have a type")
	}
	if !g.HasNode(src) {
		return nil, fmt.Errorf("graph: source node %d does not exist", src)
	}
	if !g.HasNode(tgt) {
		return nil, fmt.Errorf("graph: target node %d does not exist", tgt)
	}
	g.nextRel++
	r := &Rel{
		ID:    g.nextRel,
		Type:  relType,
		Src:   src,
		Tgt:   tgt,
		Props: make(map[string]value.Value, len(props)),
	}
	for k, v := range props {
		if !value.IsNull(v) {
			r.Props[k] = v
		}
	}
	g.rels[r.ID] = r
	g.outgoing[src] = append(g.outgoing[src], r.ID)
	g.incoming[tgt] = append(g.incoming[tgt], r.ID)
	g.statsRel(r, +1)
	if g.journal != nil {
		g.journal.record(undoCreateRel{id: r.ID})
	}
	return r, nil
}

// DeleteRel removes a relationship. Removing a missing relationship is a
// no-op (it may have been deleted earlier in the same statement).
func (g *Graph) DeleteRel(id RelID) {
	r, ok := g.rels[id]
	if !ok {
		return
	}
	if g.journal != nil {
		g.journal.record(undoDeleteRel{rel: copyRel(r)})
	}
	g.statsRel(r, -1)
	delete(g.rels, id)
	g.outgoing[r.Src] = removeRelID(g.outgoing[r.Src], id)
	g.incoming[r.Tgt] = removeRelID(g.incoming[r.Tgt], id)
}

// DeleteNode removes a node, returning an error if relationships are still
// attached (the DELETE failure mode described in Section 3 of the paper).
func (g *Graph) DeleteNode(id NodeID) error {
	n, ok := g.nodes[id]
	if !ok {
		return nil
	}
	if g.Degree(id) > 0 {
		return &DanglingError{Node: id, Attached: g.Degree(id)}
	}
	if g.journal != nil {
		g.journal.record(undoDeleteNode{node: copyNode(n)})
	}
	g.removeNodeInternal(n)
	return nil
}

// DeleteNodeUnchecked removes a node even if relationships are attached,
// leaving them dangling. This reproduces the non-atomic mid-statement
// state of legacy Cypher 9 DELETE (Section 4.2); Validate will fail until
// the dangling relationships are also removed.
func (g *Graph) DeleteNodeUnchecked(id NodeID) {
	n, ok := g.nodes[id]
	if !ok {
		return
	}
	if g.journal != nil {
		g.journal.record(undoDeleteNode{node: copyNode(n)})
	}
	g.removeNodeInternal(n)
}

func (g *Graph) removeNodeInternal(n *Node) {
	g.version++
	// The node's labels stop contributing to the degree counters; any
	// relationships it leaves dangling (legacy unchecked deletion) keep
	// only their surviving endpoint's contribution.
	g.statsNodeRels(n, -1)
	g.indexNode(n, false)
	delete(g.nodes, n.ID)
	for l := range n.Labels {
		g.unindexLabel(l, n.ID)
	}
	// Adjacency lists for the node are retained only if non-empty
	// (dangling rels keep referring to the removed node id).
	if len(g.outgoing[n.ID]) == 0 {
		delete(g.outgoing, n.ID)
	}
	if len(g.incoming[n.ID]) == 0 {
		delete(g.incoming, n.ID)
	}
}

// DetachDeleteNode removes a node along with all attached relationships.
func (g *Graph) DetachDeleteNode(id NodeID) {
	if !g.HasNode(id) {
		return
	}
	// Copy the adjacency lists before deleting: DeleteRel mutates them.
	for _, rid := range append([]RelID(nil), g.outgoing[id]...) {
		g.DeleteRel(rid)
	}
	for _, rid := range append([]RelID(nil), g.incoming[id]...) {
		g.DeleteRel(rid)
	}
	g.DeleteNodeUnchecked(id)
}

// SetNodeProp sets (or, when v is null, removes) a node property.
func (g *Graph) SetNodeProp(id NodeID, key string, v value.Value) error {
	n, ok := g.nodes[id]
	if !ok {
		return fmt.Errorf("graph: node %d does not exist", id)
	}
	old, had := n.Props[key]
	if g.journal != nil {
		g.journal.record(undoSetNodeProp{id: id, key: key, old: old, had: had})
	}
	if value.IsNull(v) {
		g.indexPropWrite(n, key, old, had, nil, false)
		delete(n.Props, key)
	} else {
		g.indexPropWrite(n, key, old, had, v, true)
		n.Props[key] = v
	}
	return nil
}

// SetRelProp sets (or, when v is null, removes) a relationship property.
func (g *Graph) SetRelProp(id RelID, key string, v value.Value) error {
	r, ok := g.rels[id]
	if !ok {
		return fmt.Errorf("graph: relationship %d does not exist", id)
	}
	if g.journal != nil {
		old, had := r.Props[key]
		g.journal.record(undoSetRelProp{id: id, key: key, old: old, had: had})
	}
	if value.IsNull(v) {
		delete(r.Props, key)
	} else {
		r.Props[key] = v
	}
	return nil
}

// AddLabel adds a label to a node.
func (g *Graph) AddLabel(id NodeID, label string) error {
	n, ok := g.nodes[id]
	if !ok {
		return fmt.Errorf("graph: node %d does not exist", id)
	}
	if _, has := n.Labels[label]; has {
		return nil
	}
	if g.journal != nil {
		g.journal.record(undoAddLabel{id: id, label: label})
	}
	n.Labels[label] = struct{}{}
	g.indexLabel(label, id)
	g.indexNodeLabel(n, label, true)
	g.statsLabel(id, label, +1)
	return nil
}

// RemoveLabel removes a label from a node.
func (g *Graph) RemoveLabel(id NodeID, label string) error {
	n, ok := g.nodes[id]
	if !ok {
		return fmt.Errorf("graph: node %d does not exist", id)
	}
	if _, has := n.Labels[label]; !has {
		return nil
	}
	if g.journal != nil {
		g.journal.record(undoRemoveLabel{id: id, label: label})
	}
	g.statsLabel(id, label, -1)
	g.indexNodeLabel(n, label, false)
	delete(n.Labels, label)
	g.unindexLabel(label, id)
	return nil
}

func (g *Graph) indexLabel(label string, id NodeID) {
	set, ok := g.byLabel[label]
	if !ok {
		set = make(map[NodeID]struct{})
		g.byLabel[label] = set
	}
	set[id] = struct{}{}
}

func (g *Graph) unindexLabel(label string, id NodeID) {
	if set, ok := g.byLabel[label]; ok {
		delete(set, id)
		if len(set) == 0 {
			delete(g.byLabel, label)
		}
	}
}

func removeRelID(ids []RelID, id RelID) []RelID {
	for i, x := range ids {
		if x == id {
			return append(ids[:i], ids[i+1:]...)
		}
	}
	return ids
}

// DanglingError reports a deletion that would leave (or has left)
// relationships without an endpoint.
type DanglingError struct {
	Node     NodeID
	Attached int
}

// Error implements error.
func (e *DanglingError) Error() string {
	return fmt.Sprintf("cannot delete node %d: %d relationship(s) still attached", e.Node, e.Attached)
}

// Validate checks the structural invariant that every relationship's
// endpoints exist, returning the first violation found.
func (g *Graph) Validate() error {
	for _, id := range g.RelIDs() {
		r := g.rels[id]
		if !g.HasNode(r.Src) {
			return fmt.Errorf("graph: relationship %d has dangling source %d", r.ID, r.Src)
		}
		if !g.HasNode(r.Tgt) {
			return fmt.Errorf("graph: relationship %d has dangling target %d", r.ID, r.Tgt)
		}
	}
	return nil
}

// Clone returns a deep copy of the graph sharing no mutable state. Stored
// property values are immutable by convention (the evaluator never mutates
// a stored List/Map in place), so values themselves are shared.
func (g *Graph) Clone() *Graph {
	ng := &Graph{
		nodes:      make(map[NodeID]*Node, len(g.nodes)),
		rels:       make(map[RelID]*Rel, len(g.rels)),
		outgoing:   make(map[NodeID][]RelID, len(g.outgoing)),
		incoming:   make(map[NodeID][]RelID, len(g.incoming)),
		byLabel:    make(map[string]map[NodeID]struct{}, len(g.byLabel)),
		nextNode:   g.nextNode,
		nextRel:    g.nextRel,
		version:    g.version,
		indexes:    cloneIndexes(g.indexes),
		indexEpoch: g.indexEpoch,
	}
	for id, n := range g.nodes {
		ng.nodes[id] = copyNode(n)
	}
	for id, r := range g.rels {
		ng.rels[id] = copyRel(r)
	}
	for id, rs := range g.outgoing {
		ng.outgoing[id] = append([]RelID(nil), rs...)
	}
	for id, rs := range g.incoming {
		ng.incoming[id] = append([]RelID(nil), rs...)
	}
	for l, set := range g.byLabel {
		ns := make(map[NodeID]struct{}, len(set))
		for id := range set {
			ns[id] = struct{}{}
		}
		ng.byLabel[l] = ns
	}
	ng.stats = g.stats.clone()
	return ng
}

func copyNode(n *Node) *Node {
	c := &Node{
		ID:     n.ID,
		Labels: make(map[string]struct{}, len(n.Labels)),
		Props:  make(map[string]value.Value, len(n.Props)),
	}
	for l := range n.Labels {
		c.Labels[l] = struct{}{}
	}
	for k, v := range n.Props {
		c.Props[k] = v
	}
	return c
}

func copyRel(r *Rel) *Rel {
	c := &Rel{
		ID:    r.ID,
		Type:  r.Type,
		Src:   r.Src,
		Tgt:   r.Tgt,
		Props: make(map[string]value.Value, len(r.Props)),
	}
	for k, v := range r.Props {
		c.Props[k] = v
	}
	return c
}

// restoreNode reinstates a node with its original id (journal rollback).
func (g *Graph) restoreNode(n *Node) {
	g.version++
	g.nodes[n.ID] = n
	for l := range n.Labels {
		g.indexLabel(l, n.ID)
	}
	g.indexNode(n, true)
	// Attached relationships that survived (or were restored first)
	// regain this endpoint's label contribution.
	g.statsNodeRels(n, +1)
}

// restoreRel reinstates a relationship with its original id (journal
// rollback, codec decode). The insert keeps adjacency lists sorted:
// restored ids may be smaller than those of surviving relationships.
func (g *Graph) restoreRel(r *Rel) {
	g.rels[r.ID] = r
	g.outgoing[r.Src] = insertRelIDSorted(g.outgoing[r.Src], r.ID)
	g.incoming[r.Tgt] = insertRelIDSorted(g.incoming[r.Tgt], r.ID)
	g.statsRel(r, +1)
}
