package graph

import (
	"math/rand"
	"testing"

	"repro/internal/value"
)

// randomMutation applies one random mutation to g, using only ids that
// currently exist (plus occasional misses to exercise no-op paths).
func randomMutation(rng *rand.Rand, g *Graph) {
	pickNode := func() (NodeID, bool) {
		ids := g.NodeIDs()
		if len(ids) == 0 {
			return 0, false
		}
		return ids[rng.Intn(len(ids))], true
	}
	pickRel := func() (RelID, bool) {
		ids := g.RelIDs()
		if len(ids) == 0 {
			return 0, false
		}
		return ids[rng.Intn(len(ids))], true
	}
	switch rng.Intn(10) {
	case 0, 1:
		g.CreateNode([]string{"L" + string(rune('A'+rng.Intn(3)))},
			value.Map{"v": value.Int(int64(rng.Intn(5)))})
	case 2:
		a, ok1 := pickNode()
		b, ok2 := pickNode()
		if ok1 && ok2 {
			g.CreateRel(a, b, "T", value.Map{"w": value.Int(int64(rng.Intn(3)))})
		}
	case 3:
		if id, ok := pickNode(); ok {
			g.SetNodeProp(id, "p", value.Int(int64(rng.Intn(9))))
		}
	case 4:
		if id, ok := pickNode(); ok {
			g.SetNodeProp(id, "p", value.NullValue)
		}
	case 5:
		if id, ok := pickRel(); ok {
			g.SetRelProp(id, "w", value.Int(int64(rng.Intn(9))))
		}
	case 6:
		if id, ok := pickNode(); ok {
			g.AddLabel(id, "Extra")
		}
	case 7:
		if id, ok := pickNode(); ok {
			g.RemoveLabel(id, "Extra")
		}
	case 8:
		if id, ok := pickRel(); ok {
			g.DeleteRel(id)
		}
	case 9:
		if id, ok := pickNode(); ok {
			g.DetachDeleteNode(id)
		}
	}
}

// Property: for any random mutation sequence executed under a journal,
// Rollback restores the exact pre-journal fingerprint, and a subsequent
// identical replay under Commit matches a journal-free execution.
func TestJournalRollbackRandomSequences(t *testing.T) {
	for trial := 0; trial < 25; trial++ {
		seed := int64(trial * 7)
		rng := rand.New(rand.NewSource(seed))
		g := New()
		// Random base graph.
		for i := 0; i < 10+rng.Intn(10); i++ {
			randomMutation(rng, g)
		}
		before := Fingerprint(g)

		// Journaled mutations, then rollback.
		j := g.BeginJournal()
		steps := 20 + rng.Intn(30)
		for i := 0; i < steps; i++ {
			randomMutation(rng, g)
		}
		j.Rollback()
		if Fingerprint(g) != before {
			t.Fatalf("trial %d: rollback did not restore the graph", trial)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("trial %d: invariant after rollback: %v", trial, err)
		}
	}
}

// Property: a committed journaled run equals the same run without a
// journal (the journal must be observation-free).
func TestJournalCommitTransparent(t *testing.T) {
	for trial := 0; trial < 25; trial++ {
		seed := int64(trial*13 + 1)

		runOnce := func(journaled bool) string {
			rng := rand.New(rand.NewSource(seed))
			g := New()
			var j *Journal
			if journaled {
				j = g.BeginJournal()
			}
			for i := 0; i < 40; i++ {
				randomMutation(rng, g)
			}
			if journaled {
				j.Commit()
			}
			return Fingerprint(g)
		}

		if runOnce(true) != runOnce(false) {
			t.Fatalf("trial %d: journaled and journal-free runs differ", trial)
		}
	}
}
